#!/usr/bin/env python3
"""Perf-smoke regression gate over BENCH_fig4.json.

CI boxes vary too much for absolute FPS gates, so every check is a
ratio computed inside one run of the benchmark on one machine:

  * sparse-vs-dense speedup at the anchor resolution (the Figure-4
    headline) must not collapse;
  * node_eval_fraction at the anchor must stay below the flat-grid
    plateau -- this is the octree + auto-block-size win, and it is a
    pure counter ratio, immune to machine speed;
  * the ablation's simd+octree row must actually beat scalar+flat
    (otherwise the SIMD dispatch or the octree descent silently
    regressed to the slow path);
  * the temporal cache must still be reusing blocks;
  * the block-local table-driven extractor must beat the legacy serial
    extractor on the same sampled grid, single core (the "extraction"
    section), and must have emitted the identical triangle set.

Exit status 0 = gate passed. Any failure prints the offending metric
and exits 1 so the CI step fails.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("json_path", help="path to BENCH_fig4.json")
    ap.add_argument("--anchor-resolution", type=int, default=128,
                    help="resolution row the gates apply to")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="minimum sparse-vs-dense speedup at the anchor")
    ap.add_argument("--max-eval-fraction", type=float, default=0.30,
                    help="maximum node_eval_fraction at the anchor")
    ap.add_argument("--min-ablation-speedup", type=float, default=1.15,
                    help="minimum simd+octree speedup over scalar+flat")
    ap.add_argument("--min-cache-hit", type=float, default=0.30,
                    help="minimum temporal block cache-hit ratio")
    ap.add_argument("--min-extract-speedup", type=float, default=2.0,
                    help="minimum block-extractor vs legacy single-core speedup")
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)

    if data.get("schema_version", 0) < 4:
        fail(f"schema_version {data.get('schema_version')} < 4 "
             "(bench binary predates the extraction instrumentation)")
    backend = data.get("simd_backend")
    if backend not in ("avx2", "neon", "scalar"):
        fail(f"simd_backend missing or unknown: {backend!r}")
    print(f"simd_backend: {backend}")

    anchor = next((r for r in data.get("rows", [])
                   if r.get("resolution") == args.anchor_resolution), None)
    if anchor is None:
        fail(f"no row at resolution {args.anchor_resolution}")
    if anchor.get("sparse_measured") != "yes":
        fail(f"anchor row {args.anchor_resolution} was extrapolated, not "
             "measured; raise SEMHOLO_FIG4_MAX_RES")

    speedup = anchor.get("speedup", 0.0)
    print(f"sparse-vs-dense speedup at {args.anchor_resolution}: "
          f"{speedup:.2f}x (gate: >= {args.min_speedup})")
    if speedup < args.min_speedup:
        fail("sparse reconstruction speedup regressed")

    frac = anchor.get("node_eval_fraction", 1.0)
    print(f"node_eval_fraction at {args.anchor_resolution}: {frac:.3f} "
          f"(gate: <= {args.max_eval_fraction})")
    if frac > args.max_eval_fraction:
        fail("node_eval_fraction regressed (certificates firing less)")

    ablation = {row.get("config"): row for row in data.get("ablation", [])}
    for config in ("scalar+flat", "scalar+octree", "simd+flat", "simd+octree"):
        if config not in ablation:
            fail(f"ablation row '{config}' missing")
    abl = ablation["simd+octree"].get("speedup_vs_scalar_flat", 0.0)
    print(f"simd+octree vs scalar+flat: {abl:.2f}x "
          f"(gate: >= {args.min_ablation_speedup})")
    if abl < args.min_ablation_speedup:
        fail("simd+octree ablation no longer beats the scalar flat path")
    if ablation["simd+octree"].get("node_eval_fraction", 1.0) > \
            ablation["simd+flat"].get("node_eval_fraction", 0.0) + 1e-9:
        fail("octree descent evaluates more nodes than the flat grid")

    hit = data.get("temporal", {}).get("cache_hit_ratio", 0.0)
    print(f"temporal cache-hit ratio: {hit:.2f} (gate: >= {args.min_cache_hit})")
    if hit < args.min_cache_hit:
        fail("temporal block cache stopped reusing blocks")

    ext = data.get("extraction")
    if ext is None:
        fail("extraction section missing")
    if ext.get("canonical_match") != "yes":
        fail("block extractor and legacy extractor emitted different "
             "triangle sets")
    ext_speedup = ext.get("speedup_single_core", 0.0)
    print(f"extraction speedup (block vs legacy, 1 core, "
          f"{ext.get('resolution')}^3): {ext_speedup:.2f}x "
          f"(gate: >= {args.min_extract_speedup})")
    if ext_speedup < args.min_extract_speedup:
        fail("block-local extractor no longer beats the legacy extractor")
    if ext.get("active_cells", 0) <= 0:
        fail("extraction section reports zero active cells")

    print("PASS: Figure-4 perf gate")


if __name__ == "__main__":
    main()
