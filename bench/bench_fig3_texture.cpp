// Regenerates Figure 3: ground-truth texture vs the texture/expression a
// learned avatar produces.
//
// Paper observation: the X-Avatar-learned appearance misses fine
// expression detail — the subject's open mouth is reproduced but the
// pout is lost. We reproduce both effects: (a) the capacity-limited
// learned texture loses high-frequency colour detail (cloth stripes);
// (b) a learned avatar that carries only the dominant expression channel
// (jaw) misses the secondary ones (pout), measured as face-region
// geometry error.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/recon/texture.hpp"

using namespace semholo;

namespace {

// Face-region vertex error between two deformations of the same template.
double faceRegionError(const mesh::TriMesh& a, const mesh::TriMesh& b,
                       const mesh::TriMesh& restTemplate) {
    const geom::Vec3f mouth{0.0f, 0.66f, 0.10f};
    double err = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < restTemplate.vertexCount(); ++i) {
        if ((restTemplate.vertices[i] - mouth).norm() > 0.08f) continue;
        err += (a.vertices[i] - b.vertices[i]).norm();
        ++n;
    }
    return n > 0 ? err / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
    bench::banner("Figure 3: ground-truth vs learned texture & expression");

    const body::BodyModel model(body::ShapeParams{}, 110);

    // (a) Texture detail: learned (low-pass) vs delivered ground truth.
    mesh::TriMesh gtTex = model.templateMesh();
    mesh::TriMesh learnedTex = gtTex;
    recon::applyLearnedTexture(learnedTex);
    mesh::TriMesh projectedTex = gtTex;
    // Re-projected compressed texture: what section 3.1 proposes instead.
    recon::projectTexture(projectedTex, gtTex);

    bench::Table texTable({"appearance path", "mean color error", "paper analogue"});
    texTable.addRow({"delivered texture (projection mapping)",
                     bench::fmt("%.4f", recon::colorError(gtTex, projectedTex)),
                     "raw RGB-D texture (Fig 3 left)"});
    texTable.addRow({"learned texture (capacity-limited)",
                     bench::fmt("%.4f", recon::colorError(gtTex, learnedTex)),
                     "X-Avatar learned (Fig 3 right)"});
    texTable.print();

    // (b) Expression detail: open mouth with a pout.
    body::Pose expressive;
    expressive.shape = model.shape();
    expressive.expression.coeffs[0] = 1.0;  // mouth open
    expressive.expression.coeffs[1] = 0.9;  // pout

    body::Pose learnedPose = expressive;
    learnedPose.expression.coeffs[1] = 0.0;  // learned avatar drops the pout
    body::Pose neutralPose = expressive;
    neutralPose.expression.coeffs[0] = 0.0;
    neutralPose.expression.coeffs[1] = 0.0;

    const mesh::TriMesh gtFace = model.deform(expressive);
    const mesh::TriMesh learnedFace = model.deform(learnedPose);
    const mesh::TriMesh neutralFace = model.deform(neutralPose);
    const double learnedErr =
        faceRegionError(gtFace, learnedFace, model.templateMesh());
    const double neutralErr =
        faceRegionError(gtFace, neutralFace, model.templateMesh());

    bench::Table exprTable({"avatar", "face-region error (mm)", "interpretation"});
    exprTable.addRow({"ground truth (open mouth + pout)", "0.00", "Fig 3 left"});
    exprTable.addRow({"learned (open mouth only)", bench::fmt("%.2f", learnedErr * 1e3),
                      "pout missing (Fig 3 right)"});
    exprTable.addRow({"no expression", bench::fmt("%.2f", neutralErr * 1e3),
                      "everything missing"});
    exprTable.print();

    std::printf(
        "\nShape check: the learned avatar reproduces the dominant action "
        "(%.0f%% of the\nfull expression error recovered) but a measurable "
        "residual remains where the\npout should be — the Figure 3 failure "
        "mode.\n",
        100.0 * (1.0 - learnedErr / neutralErr));
    return 0;
}
