// Ablation F (section 3.1): the trade-off between the number of
// extracted keypoints, computation overhead and visual quality. Three
// detector granularities (body-25 / extended-40 / full-55) drive the
// same IK + reconstruction; quality is scored overall and on the hands,
// where the extra keypoints matter.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/body/ik.hpp"
#include "semholo/capture/keypoints.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/recon/keypoint_recon.hpp"

using namespace semholo;

int main() {
    bench::banner("Ablation F: keypoint count vs compute vs quality (section 3.1)");

    const body::BodyModel model(body::ShapeParams{}, 72);
    capture::RigConfig rigCfg;
    rigCfg.addNoise = false;
    const capture::CaptureRig rig(rigCfg);

    // A hand-heavy pose: pointing while talking.
    body::Pose pose =
        body::MotionGenerator(body::MotionKind::Collaborate, model.shape()).poseAt(1.2);
    const auto frames = rig.capture(model.deform(pose), 21);
    const mesh::TriMesh groundTruth = model.deform(pose);
    const auto gtKps = body::jointKeypoints(pose);

    bench::Table table({"keypoint set", "joints", "detect ms (sim)", "IK residual mm",
                        "chamfer mm", "index-tip err mm"});
    for (const auto set : {capture::KeypointSet::Body25,
                           capture::KeypointSet::Extended40,
                           capture::KeypointSet::Full55}) {
        const auto obs =
            capture::detectKeypoints3DDirect(rig, frames, pose, 2, {}, {}, set);
        body::IkOptions ik;
        ik.shape = model.shape();
        const auto fit = body::fitPoseToKeypoints(obs.positions, obs.confidence, ik);

        recon::ReconstructionOptions ro;
        ro.resolution = 64;
        ro.shape = model.shape();
        const auto recon = recon::reconstructFromPose(fit.pose, ro);
        const auto err = mesh::compareMeshes(groundTruth, recon.mesh, 12000);
        const auto tip = body::index(body::JointId::RightIndex3);
        const float tipErr =
            (body::jointKeypoints(fit.pose)[tip] - gtKps[tip]).norm();

        table.addRow({std::string(capture::keypointSetName(set)),
                      std::to_string(capture::keypointSetCount(set)),
                      bench::fmt("%.1f", obs.simulatedLatencyMs),
                      bench::fmt("%.1f", fit.residual * 1000.0),
                      bench::fmt("%.2f", err.chamfer * 1000.0),
                      bench::fmt("%.1f", tipErr * 1000.0)});
    }
    table.print();

    std::printf(
        "\nShape check: extraction cost rises with keypoint count while the\n"
        "payload stays 1.91 KB; overall chamfer barely moves but hand detail\n"
        "(index fingertip) improves sharply — quality gains concentrate where\n"
        "the extra keypoints are, the section 3.1 trade-off.\n");
    return 0;
}
