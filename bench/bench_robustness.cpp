// Robustness: frame delivery through injected link faults (an outage,
// a deep bandwidth collapse, and Gilbert-Elliott burst loss) for three
// delivery strategies over the same 25 Mbps bottleneck:
//
//   fixed      compressed traditional mesh at a fixed quality
//   abr        rate-adaptive LOD ladder driven by throughput estimates
//   abr+deg    the same ladder plus the closed-loop DegradationPolicy
//
// The estimator-only loop is blind to failures that produce no sample
// (burst-lost frames, queue-overflow drops); the degradation policy
// reacts to exactly those, stepping the ladder down until frames get
// through again. Results land in BENCH_robustness.json with the full
// engine telemetry (fault windows, degradations, queue drops).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "semholo/core/conference.hpp"

using namespace semholo;

namespace {

core::SessionConfig faultySession() {
    core::SessionConfig cfg;
    cfg.frames = 240;  // 8 s at 30 fps
    cfg.fps = 30.0;
    cfg.timing = core::TimingModel::Simulated;
    cfg.transfer.reliable = false;  // live streaming: late frames are dead
    cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
    cfg.link.propagationDelayS = 0.01;
    cfg.link.jitterStddevS = 0.002;
    cfg.link.lossRate = 0.0;
    cfg.link.queueCapacityBytes = 256 * 1024;
    // Fault script: a radio outage at t=2, a 10x bandwidth collapse over
    // t=[4.5,7.5], a second outage inside the recovery, and burst loss
    // (mean burst ~8 packets, ~2.4% of packets in the bad state).
    cfg.link.faults.outages.push_back({2.0, 0.6});
    cfg.link.faults.outages.push_back({7.2, 0.5});
    cfg.link.faults.collapses.push_back({4.5, 3.0, 0.1});
    cfg.link.faults.burstLoss.enabled = true;
    cfg.link.faults.burstLoss.pGoodToBad = 0.003;
    cfg.link.faults.burstLoss.pBadToGood = 0.12;
    cfg.link.faults.burstLoss.lossGood = 0.0;
    cfg.link.faults.burstLoss.lossBad = 0.5;
    return cfg;
}

core::DegradationConfig benchPolicy() {
    core::DegradationConfig cfg;
    cfg.enabled = true;
    cfg.maxLevel = 3;
    cfg.stepScale = 0.5;
    cfg.latencyBudgetFrames = 2.0;
    cfg.queuePressure = 0.5;
    cfg.downgradeAfter = 1;  // react to the first failed frame
    cfg.upgradeAfter = 45;   // ~1.5 s clean before probing upward
    return cfg;
}

struct Row {
    std::string label;
    std::unique_ptr<core::SemanticChannel> channel;
    bool degradation{false};
};

}  // namespace

int main() {
    bench::banner("Robustness: delivery through outage + collapse + burst loss");

    const body::BodyModel model(body::ShapeParams{}, 48);

    std::vector<Row> rows;
    rows.push_back({"fixed", core::makeTraditionalChannel({true, false}), false});
    rows.push_back({"abr", core::makeAdaptiveMeshChannel({}), false});
    rows.push_back({"abr+degradation", core::makeAdaptiveMeshChannel({}), true});

    core::telemetry::JsonWriter json;
    json.beginObject();
    json.field("schema_version", core::telemetry::kBenchSchemaVersion);
    json.field("bench", std::string("robustness"));
    json.field("frames", std::uint64_t{240});
    json.beginArray("rows");

    bench::Table table({"strategy", "delivered", "delivery %", "mean transfer ms",
                        "queue drops", "fault events", "downs/ups"});
    double fixedPct = 0.0, degradedPct = 0.0;
    for (Row& row : rows) {
        core::SessionConfig cfg = faultySession();
        if (row.degradation) cfg.degradation = benchPolicy();
        const auto stats = core::runSession(*row.channel, model, cfg);

        const double pct = 100.0 * static_cast<double>(stats.deliveredFrames) /
                           static_cast<double>(stats.frames.size());
        if (row.label == "fixed") fixedPct = pct;
        if (row.degradation) degradedPct = pct;
        const auto& c = stats.telemetry.counters;
        table.addRow({row.label,
                      std::to_string(stats.deliveredFrames) + "/" +
                          std::to_string(stats.frames.size()),
                      bench::fmt("%.1f", pct),
                      bench::fmt("%.1f", stats.meanTransferMs),
                      std::to_string(c.queueDrops), std::to_string(c.faultEvents),
                      std::to_string(c.degradations) + "/" + std::to_string(c.upgrades)});
        json.beginObject()
            .field("strategy", row.label)
            .field("delivered_frames", static_cast<std::uint64_t>(stats.deliveredFrames))
            .field("delivery_pct", pct)
            .field("mean_transfer_ms", stats.meanTransferMs)
            .field("mean_bytes_per_frame", stats.meanBytesPerFrame)
            .raw("telemetry", core::telemetry::toJsonValue(stats.telemetry))
            .endObject();
    }
    table.print();
    json.endArray();

    // Conference variant: three adaptive-mesh participants share the
    // same faulty bottleneck. The per-tick feedback scheduler runs one
    // DegradationPolicy per participant, so each user sheds quality
    // against its own observed failures instead of the whole conference
    // stalling together.
    bench::banner("Conference robustness: 3 users through the fault script");
    const std::size_t confUsers = 3;
    const auto runFaultyConference = [&](bool withDegradation) {
        core::ConferenceConfig conf;
        conf.session = faultySession();
        // Three ladders share what one stream had to itself.
        conf.session.link.queueCapacityBytes = 64 * 1024;
        if (withDegradation) conf.session.degradation = benchPolicy();
        conf.enableDownlinks = false;  // uplink robustness comparison
        conf.participants.resize(confUsers);
        for (auto& p : conf.participants) p.channel = {"adaptive-mesh", {}};
        return core::runConference(conf, model);
    };
    const auto confOff = runFaultyConference(false);
    const auto confOn = runFaultyConference(true);

    const auto confDelivery = [&](const core::MultiSessionStats& s) {
        std::size_t delivered = 0;
        for (const auto& u : s.perUser) delivered += u.deliveredFrames;
        return 100.0 * static_cast<double>(delivered) /
               static_cast<double>(confUsers * 240);
    };
    bench::Table confTable({"policy", "delivery %", "per-user delivery %",
                            "downs/ups", "fairness (Jain)"});
    const auto confRow = [&](const char* label,
                             const core::MultiSessionStats& s) {
        std::string perUser;
        for (const core::UserFairnessStats& fs : s.fairness) {
            if (!perUser.empty()) perUser += " / ";
            perUser += bench::fmt("%.0f", fs.deliveryRatio * 100.0);
        }
        confTable.addRow({label, bench::fmt("%.1f", confDelivery(s)), perUser,
                          std::to_string(s.telemetry.counters.degradations) +
                              "/" +
                              std::to_string(s.telemetry.counters.upgrades),
                          bench::fmt("%.3f", s.fairnessIndex)});
    };
    confRow("off", confOff);
    confRow("on", confOn);
    confTable.print();

    bool confAdapted = confDelivery(confOn) > confDelivery(confOff);
    for (const core::UserFairnessStats& fs : confOn.fairness)
        confAdapted = confAdapted && fs.degradations > 0;
    std::printf("\nConference closed loop %s: %.1f%% -> %.1f%% delivery\n",
                confAdapted ? "engaged" : "FAILED TO ENGAGE (scheduler bug)",
                confDelivery(confOff), confDelivery(confOn));

    json.beginObject("conference")
        .field("users", static_cast<std::uint64_t>(confUsers))
        .raw("degradation_off", core::toJsonValue(confOff))
        .raw("degradation_on", core::toJsonValue(confOn))
        .endObject();
    json.endObject();

    std::FILE* f = std::fopen("BENCH_robustness.json", "w");
    if (f) {
        std::fputs(json.str().c_str(), f);
        std::fclose(f);
        std::printf("\nwrote BENCH_robustness.json\n");
    }

    std::printf(
        "\nShape check: the fixed-rate baseline falls below 50%% delivery\n"
        "(%.1f%%) while the degradation loop holds 90%%+ (%.1f%%) through\n"
        "the same fault script.\n",
        fixedPct, degradedPct);
    return fixedPct < 50.0 && degradedPct >= 90.0 && confAdapted ? 0 : 1;
}
