// Ablation H: latency compensation by pose prediction. The receiver can
// render the stale delivered pose, or extrapolate it to "now" with the
// constant-angular-velocity predictor, or additionally smooth detector
// jitter with the One-Euro filter. Sweeps the latency horizon and
// reports mean keypoint error — how much of the end-to-end delay the
// temporal layer can hide.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/temporal.hpp"

using namespace semholo;

int main() {
    bench::banner("Ablation H: hiding end-to-end latency with pose prediction");

    constexpr double kFrame = 1.0 / 30.0;

    bench::Table table({"motion", "latency (ms)", "stale err (mm)",
                        "predicted err (mm)", "hidden (%)"});
    for (const auto kind :
         {body::MotionKind::Walk, body::MotionKind::Wave,
          body::MotionKind::Collaborate}) {
        const body::MotionGenerator gen(kind);
        for (const double horizonMs : {33.3, 66.7, 100.0, 150.0, 250.0}) {
            const double horizon = horizonMs / 1000.0;
            double staleErr = 0.0, predErr = 0.0;
            int n = 0;
            for (int f = 2; f < 120; ++f) {
                const double t = f * kFrame;
                const body::Pose prev = gen.poseAt(t - kFrame);
                const body::Pose latest = gen.poseAt(t);
                const body::Pose truth = gen.poseAt(t + horizon);
                const auto predicted =
                    body::predictPose(prev, t - kFrame, latest, t, horizon);
                if (!predicted) continue;
                staleErr += body::keypointDistance(latest, truth);
                predErr += body::keypointDistance(*predicted, truth);
                ++n;
            }
            staleErr /= n;
            predErr /= n;
            table.addRow({std::string(body::motionName(kind)),
                          bench::fmt("%.0f", horizonMs),
                          bench::fmt("%.1f", staleErr * 1000.0),
                          bench::fmt("%.1f", predErr * 1000.0),
                          bench::fmt("%.0f", 100.0 * (1.0 - predErr / staleErr))});
        }
    }
    table.print();

    std::printf(
        "\nShape check: prediction hides a large share of the delay on smooth,\n"
        "momentum-dominated motion (walking, waving) and washes out on jerky\n"
        "phase-switching motion (collaborate) — predictability, not latency,\n"
        "is the limit. It complements, not replaces, the paper's push for\n"
        "faster reconstruction.\n");
    return 0;
}
