// Regenerates Figure 4: reconstruction FPS of keypoint-based meshes at
// output resolutions 128/256/512/1024.
//
// The paper measures X-Avatar on an NVIDIA A100 and reports <3 FPS at
// 128 and <1 FPS at 256+; an RTX 3080 laptop cannot run 512/1024 at all.
// We measure our CPU reconstruction directly at 32..256 and extrapolate
// the cubic field-evaluation cost to 512/1024 (running them outright
// takes minutes and adds no information: the scaling exponent is the
// result). The laptop feasibility column uses the device memory model.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/recon/keypoint_recon.hpp"

using namespace semholo;

int main() {
    bench::banner("Figure 4: reconstruction FPS vs output resolution");

    const body::Pose pose =
        body::MotionGenerator(body::MotionKind::Talk).poseAt(0.5);

    struct Row {
        int resolution;
        double totalMs;
        bool measured;
    };
    std::vector<Row> rows;
    double unitCost = 0.0;  // ms per voxel, fitted on the largest measured run
    for (const int res : {32, 64, 128, 256}) {
        recon::ReconstructionOptions opt;
        opt.resolution = res;
        opt.device = recon::DeviceProfile::host();
        const auto r = recon::reconstructFromPose(pose, opt);
        rows.push_back({res, r.totalMs(), true});
        unitCost = r.totalMs() / (static_cast<double>(res) * res * res);
    }
    for (const int res : {512, 1024}) {
        const double voxels = static_cast<double>(res) * res * res;
        rows.push_back({res, unitCost * voxels, false});
    }

    const auto laptop = recon::DeviceProfile::laptop();
    bench::Table table({"resolution", "total ms", "FPS (host)", "mode",
                        "laptop feasible", "paper FPS (A100)"});
    for (const Row& row : rows) {
        const bool fits =
            laptop.fitsInMemory(recon::reconstructionWorkingSetBytes(row.resolution));
        const char* paper = row.resolution == 128   ? "~2.5"
                            : row.resolution == 256 ? "~0.9"
                            : row.resolution == 512 ? "~0.4"
                            : row.resolution == 1024 ? "~0.2"
                                                     : "-";
        table.addRow({std::to_string(row.resolution), bench::fmt("%.0f", row.totalMs),
                      bench::fmt("%.3f", 1000.0 / row.totalMs),
                      row.measured ? "measured" : "extrapolated (cubic)",
                      fits ? "yes" : "NO (out of memory)", paper});
    }
    table.print();

    std::printf(
        "\nShape check: FPS decays ~cubically with resolution and is far below\n"
        "the 30 FPS interactive requirement at every paper resolution, matching\n"
        "Figure 4; the laptop profile cannot hold 512/1024 grids (section 4.2).\n");
    return 0;
}
