// Regenerates Figure 4: reconstruction FPS of keypoint-based meshes at
// output resolutions 128/256/512/1024.
//
// The paper measures X-Avatar on an NVIDIA A100 and reports <3 FPS at
// 128 and <1 FPS at 256+; an RTX 3080 laptop cannot run 512/1024 at all.
// We measure our CPU reconstruction directly at 32..256 and extrapolate
// the cubic field-evaluation cost to 512/1024 (running them outright
// takes minutes and adds no information: the scaling exponent is the
// result). The laptop feasibility column uses the device memory model.
//
// Per-resolution wall times are recorded into telemetry histograms
// (several repeats at the small resolutions) and exported to
// BENCH_fig4.json so perf PRs can track the reconstruction trajectory.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/core/telemetry.hpp"
#include "semholo/recon/keypoint_recon.hpp"

using namespace semholo;

int main() {
    bench::banner("Figure 4: reconstruction FPS vs output resolution");

    const body::Pose pose =
        body::MotionGenerator(body::MotionKind::Talk).poseAt(0.5);

    struct Row {
        int resolution;
        core::telemetry::Histogram reconMs;
        bool measured;
    };
    std::vector<Row> rows;
    double unitCost = 0.0;  // ms per voxel, fitted on the largest measured run
    for (const int res : {32, 64, 128, 256}) {
        recon::ReconstructionOptions opt;
        opt.resolution = res;
        opt.device = recon::DeviceProfile::host();
        Row row{res, {}, true};
        // Repeat the cheap resolutions so the histogram has a spread;
        // one pass of 256 already costs seconds on a laptop-class CPU.
        const int repeats = res <= 64 ? 5 : (res <= 128 ? 2 : 1);
        for (int i = 0; i < repeats; ++i) {
            const auto r = recon::reconstructFromPose(pose, opt);
            row.reconMs.record(r.totalMs());
            unitCost = r.totalMs() / (static_cast<double>(res) * res * res);
        }
        rows.push_back(std::move(row));
    }
    for (const int res : {512, 1024}) {
        const double voxels = static_cast<double>(res) * res * res;
        Row row{res, {}, false};
        row.reconMs.record(unitCost * voxels);
        rows.push_back(std::move(row));
    }

    const auto laptop = recon::DeviceProfile::laptop();
    bench::Table table({"resolution", "total ms (p50)", "p95 ms", "FPS (host)",
                        "mode", "laptop feasible", "paper FPS (A100)"});
    core::telemetry::JsonWriter json;
    json.beginObject();
    json.field("bench", std::string("fig4_fps"));
    json.beginArray("rows");
    for (const Row& row : rows) {
        const double totalMs = row.reconMs.p50();
        const bool fits =
            laptop.fitsInMemory(recon::reconstructionWorkingSetBytes(row.resolution));
        const char* paper = row.resolution == 128   ? "~2.5"
                            : row.resolution == 256 ? "~0.9"
                            : row.resolution == 512 ? "~0.4"
                            : row.resolution == 1024 ? "~0.2"
                                                     : "-";
        table.addRow({std::to_string(row.resolution), bench::fmt("%.0f", totalMs),
                      bench::fmt("%.0f", row.reconMs.p95()),
                      bench::fmt("%.3f", 1000.0 / totalMs),
                      row.measured ? "measured" : "extrapolated (cubic)",
                      fits ? "yes" : "NO (out of memory)", paper});
        json.beginObject()
            .field("resolution", static_cast<std::uint64_t>(row.resolution))
            .field("measured", std::string(row.measured ? "yes" : "no"))
            .field("samples", static_cast<std::uint64_t>(row.reconMs.count()))
            .field("recon_ms_p50", row.reconMs.p50())
            .field("recon_ms_p95", row.reconMs.p95())
            .field("recon_ms_p99", row.reconMs.p99())
            .field("recon_ms_mean", row.reconMs.mean())
            .field("fps_p50", 1000.0 / totalMs)
            .field("laptop_feasible", std::string(fits ? "yes" : "no"))
            .endObject();
    }
    json.endArray();
    json.endObject();
    table.print();
    {
        std::FILE* f = std::fopen("BENCH_fig4.json", "w");
        if (f != nullptr) {
            std::fputs(json.str().c_str(), f);
            std::fputs("\n", f);
            std::fclose(f);
            std::printf("\nwrote BENCH_fig4.json\n");
        }
    }

    std::printf(
        "\nShape check: FPS decays ~cubically with resolution and is far below\n"
        "the 30 FPS interactive requirement at every paper resolution, matching\n"
        "Figure 4; the laptop profile cannot hold 512/1024 grids (section 4.2).\n");
    return 0;
}
