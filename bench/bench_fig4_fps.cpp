// Regenerates Figure 4: reconstruction FPS of keypoint-based meshes at
// output resolutions 128/256/512/1024 — now for both the legacy dense
// field pass and the sparse block-pruned pipeline.
//
// The paper measures X-Avatar on an NVIDIA A100 and reports <3 FPS at
// 128 and <1 FPS at 256+; an RTX 3080 laptop cannot run 512/1024 at all.
// We measure the dense CPU reconstruction directly at 32..256 and
// extrapolate its cubic field cost to 512/1024 (running dense 512 takes
// minutes and adds no information: the scaling exponent is the result).
// The sparse pipeline is measured outright through 512 — block pruning
// reduces the field pass to the O(surface) shell, so 512 runs in seconds
// — and through 1024 when SEMHOLO_FIG4_FULL is set. A final section
// replays an animated sequence through the temporal block cache and
// reports the cache-hit ratio.
//
// Environment:
//   SEMHOLO_FIG4_MAX_RES — cap on measured resolutions (CI smoke runs
//                          use a small cap); rows above the cap fall
//                          back to extrapolation.
//   SEMHOLO_FIG4_FULL    — also measure sparse 1024 (minutes, off by
//                          default).
//
// Per-resolution wall times land in telemetry histograms (several
// repeats at the small resolutions; per-row costs fitted on histogram
// p50s, not single runs) and are exported to BENCH_fig4.json so perf
// PRs can track the reconstruction trajectory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "semholo/mesh/isosurface.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/core/telemetry.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/recon/keypoint_recon.hpp"
#include "semholo/recon/sparse_recon.hpp"

using namespace semholo;

namespace {

int envInt(const char* name, int fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    return std::atoi(v);
}

bool envFlag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

}  // namespace

int main() {
    bench::banner("Figure 4: reconstruction FPS vs output resolution");

    const body::Pose pose =
        body::MotionGenerator(body::MotionKind::Talk).poseAt(0.5);

    const int maxRes = envInt("SEMHOLO_FIG4_MAX_RES", 512);
    const int sparseMeasuredMax =
        std::min(maxRes, envFlag("SEMHOLO_FIG4_FULL") ? 1024 : 512);
    const int denseMeasuredMax = std::min(maxRes, 256);

    struct Row {
        int resolution{};
        core::telemetry::Histogram denseMs, sparseMs;
        // Extraction-stage slice of the totals above (measured rows only).
        core::telemetry::Histogram denseExtractMs, sparseExtractMs;
        bool denseMeasured{}, sparseMeasured{};
        mesh::FieldSampleStats sparseStats;  // from the last sparse repeat
        std::uint64_t activeCells{};         // from the last sparse repeat
        std::uint64_t reusedTopologyBlocks{};
    };
    std::vector<Row> rows;
    // Cost models for the unmeasured tail, fitted on the LARGEST measured
    // run's histogram p50 (single-run timings at these scales are noisy):
    // dense scales with the full voxel volume, sparse with the surface
    // shell (the pruner only evaluates blocks the iso-surface crosses).
    double denseUnitCost = 0.0;   // ms per voxel
    double sparseUnitCost = 0.0;  // ms per surface cell (~R^2)
    for (const int res : {32, 64, 128, 256, 512, 1024}) {
        Row row;
        row.resolution = res;
        row.denseMeasured = res <= denseMeasuredMax;
        row.sparseMeasured = res <= sparseMeasuredMax;
        // Repeat the cheap resolutions so the histograms have a spread.
        const int repeats = res <= 64 ? 5 : (res <= 128 ? 3 : (res <= 256 ? 2 : 1));
        if (row.denseMeasured) {
            recon::ReconstructionOptions opt;
            opt.resolution = res;
            opt.mode = recon::ReconMode::Dense;
            opt.device = recon::DeviceProfile::host();
            for (int i = 0; i < repeats; ++i) {
                const auto r = recon::reconstructFromPose(pose, opt);
                row.denseMs.record(r.totalMs());
                row.denseExtractMs.record(r.extractMs);
            }
            denseUnitCost =
                row.denseMs.p50() / (static_cast<double>(res) * res * res);
        }
        if (row.sparseMeasured) {
            recon::ReconstructionOptions opt;
            opt.resolution = res;
            opt.mode = recon::ReconMode::Sparse;
            opt.device = recon::DeviceProfile::host();
            for (int i = 0; i < repeats; ++i) {
                const auto r = recon::reconstructFromPose(pose, opt);
                row.sparseMs.record(r.totalMs());
                row.sparseExtractMs.record(r.extractMs);
                row.activeCells = r.stats.activeCells;
                row.reusedTopologyBlocks = r.stats.reusedTopologyBlocks;
                row.sparseStats.blocksTotal = r.stats.blocksTotal;
                row.sparseStats.blocksSampled = r.stats.blocksSampled;
                row.sparseStats.blocksSkipped = r.stats.blocksSkipped;
                row.sparseStats.blocksCoarseFilled = r.stats.blocksCoarseFilled;
                row.sparseStats.nodesEvaluated = r.stats.nodesEvaluated;
                row.sparseStats.nodesTotal = r.stats.nodesTotal;
                row.sparseStats.certTests = r.stats.certTests;
            }
            sparseUnitCost = row.sparseMs.p50() / (static_cast<double>(res) * res);
        }
        if (!row.denseMeasured)
            row.denseMs.record(denseUnitCost * static_cast<double>(res) * res * res);
        if (!row.sparseMeasured)
            row.sparseMs.record(sparseUnitCost * static_cast<double>(res) * res);
        rows.push_back(std::move(row));
    }

    const auto laptop = recon::DeviceProfile::laptop();
    bench::Table table({"resolution", "dense ms (p50)", "dense mode",
                        "sparse ms (p50)", "sparse mode", "speedup",
                        "sparse FPS", "laptop dense/sparse", "paper FPS (A100)"});
    core::telemetry::JsonWriter json;
    json.beginObject();
    json.field("schema_version", core::telemetry::kBenchSchemaVersion);
    json.field("bench", std::string("fig4_fps"));
    json.field("simd_backend", std::string(body::bodyBatchBackend()));
    json.beginArray("rows");
    for (const Row& row : rows) {
        const double denseMs = row.denseMs.p50();
        const double sparseMs = row.sparseMs.p50();
        const double speedup = sparseMs > 0.0 ? denseMs / sparseMs : 0.0;
        const bool fitsDense = laptop.fitsInMemory(recon::reconstructionWorkingSetBytes(
            row.resolution, recon::ReconMode::Dense));
        const bool fitsSparse = laptop.fitsInMemory(recon::reconstructionWorkingSetBytes(
            row.resolution, recon::ReconMode::Sparse));
        const char* paper = row.resolution == 128   ? "~2.5"
                            : row.resolution == 256 ? "~0.9"
                            : row.resolution == 512 ? "~0.4"
                            : row.resolution == 1024 ? "~0.2"
                                                     : "-";
        table.addRow(
            {std::to_string(row.resolution), bench::fmt("%.0f", denseMs),
             row.denseMeasured ? "measured" : "extrapolated (cubic)",
             bench::fmt("%.0f", sparseMs),
             row.sparseMeasured ? "measured" : "extrapolated (quadratic)",
             bench::fmt("%.1fx", speedup), bench::fmt("%.2f", 1000.0 / sparseMs),
             std::string(fitsDense ? "yes" : "NO") + " / " +
                 (fitsSparse ? "yes" : "NO"),
             paper});
        json.beginObject()
            .field("resolution", static_cast<std::uint64_t>(row.resolution))
            .field("dense_measured", std::string(row.denseMeasured ? "yes" : "no"))
            .field("dense_samples", static_cast<std::uint64_t>(row.denseMs.count()))
            .field("dense_ms_p50", row.denseMs.p50())
            .field("dense_ms_p95", row.denseMs.p95())
            .field("sparse_measured", std::string(row.sparseMeasured ? "yes" : "no"))
            .field("sparse_samples", static_cast<std::uint64_t>(row.sparseMs.count()))
            .field("sparse_ms_p50", row.sparseMs.p50())
            .field("sparse_ms_p95", row.sparseMs.p95())
            .field("dense_extract_ms_p50", row.denseExtractMs.p50())
            .field("extract_ms_p50", row.sparseExtractMs.p50())
            .field("extract_ms_p95", row.sparseExtractMs.p95())
            .field("active_cells", row.activeCells)
            .field("reused_topology_blocks", row.reusedTopologyBlocks)
            .field("speedup", speedup)
            .field("sparse_fps_p50", 1000.0 / sparseMs)
            .field("blocks_total", row.sparseStats.blocksTotal)
            .field("blocks_skipped", row.sparseStats.blocksSkipped)
            .field("blocks_coarse_filled", row.sparseStats.blocksCoarseFilled)
            .field("cert_tests", row.sparseStats.certTests)
            .field("node_eval_fraction", row.sparseStats.evalFraction())
            .field("laptop_dense", std::string(fitsDense ? "yes" : "no"))
            .field("laptop_sparse", std::string(fitsSparse ? "yes" : "no"))
            .endObject();
    }
    json.endArray();
    table.print();

    // ---- Ablation: SIMD batch x octree certificates, one core ----------
    // Each lever off in turn, on a single worker so the numbers are the
    // per-core cost the 30-FPS budget is judged against. The batch
    // kernel and the octree both leave the mesh byte-identical, so any
    // row disagreeing on output is a bug, not a tradeoff.
    bench::banner("Ablation at the Figure-4 anchor resolution (1 worker)");
    const int ablRes = std::min(maxRes, 128);
    core::ThreadPool oneCore(1);
    struct AblationRow {
        const char* name;
        bool simd, octree;
        core::telemetry::Histogram ms;
        mesh::FieldSampleStats stats;
    };
    AblationRow ablations[] = {
        {"scalar+flat", false, false, {}, {}},
        {"scalar+octree", false, true, {}, {}},
        {"simd+flat", true, false, {}, {}},
        {"simd+octree", true, true, {}, {}},
    };
    for (AblationRow& abl : ablations) {
        recon::ReconstructionOptions opt;
        opt.resolution = ablRes;
        opt.mode = recon::ReconMode::Sparse;
        opt.device = recon::DeviceProfile::host();
        opt.pool = &oneCore;
        opt.simdBatch = abl.simd;
        opt.octreeCertificates = abl.octree;
        for (int i = 0; i < 3; ++i) {
            const auto r = recon::reconstructFromPose(pose, opt);
            abl.ms.record(r.totalMs());
            abl.stats.nodesEvaluated = r.stats.nodesEvaluated;
            abl.stats.nodesTotal = r.stats.nodesTotal;
            abl.stats.certTests = r.stats.certTests;
            abl.stats.blocksCoarseFilled = r.stats.blocksCoarseFilled;
        }
    }
    const double ablBaseMs = ablations[0].ms.p50();
    bench::Table ablTable({"config", "ms (p50)", "FPS", "speedup vs scalar+flat",
                           "node eval fraction", "cert tests",
                           "coarse-filled blocks"});
    json.beginArray("ablation");
    for (const AblationRow& abl : ablations) {
        const double ms = abl.ms.p50();
        ablTable.addRow({abl.name, bench::fmt("%.1f", ms),
                         bench::fmt("%.2f", 1000.0 / ms),
                         bench::fmt("%.2fx", ablBaseMs / ms),
                         bench::fmt("%.3f", abl.stats.evalFraction()),
                         std::to_string(abl.stats.certTests),
                         std::to_string(abl.stats.blocksCoarseFilled)});
        json.beginObject()
            .field("config", std::string(abl.name))
            .field("resolution", static_cast<std::uint64_t>(ablRes))
            .field("ms_p50", ms)
            .field("fps_p50", 1000.0 / ms)
            .field("speedup_vs_scalar_flat", ablBaseMs / ms)
            .field("node_eval_fraction", abl.stats.evalFraction())
            .field("cert_tests", abl.stats.certTests)
            .field("blocks_coarse_filled", abl.stats.blocksCoarseFilled)
            .endObject();
    }
    json.endArray();
    ablTable.print();

    // ---- Extraction: block-local table-driven vs legacy, single core ----
    // Same sampled grid, same options, both extractors serial — the
    // speedup is a pure algorithmic ratio, immune to machine speed. The
    // two extractors must emit the same triangle set (canonical soup
    // equality); a mismatch is a correctness bug and fails the run.
    bench::banner("Extraction: block-local marching tetrahedra vs legacy (1 core)");
    const int extRes = std::min(maxRes, 128);
    bool extractionMatch = true;
    {
        body::BodyFieldOptions fieldOpt;
        const body::BodyField body =
            body::makeBodyField(pose, body::Skeleton::canonical(), fieldOpt);
        const int extBlock = recon::resolveBlockSize(0, extRes);
        mesh::VoxelGrid grid(body.bounds, {extRes, extRes, extRes});
        mesh::BlockSampler sampler(grid, extBlock);
        mesh::FieldSampleOptions sampling;
        sampling.blockSize = extBlock;
        sampling.lipschitz = body.lipschitz;
        sampling.margin = body.margin;
        sampling.certificate = [&body](geom::Vec3f c, float r) {
            return body.certificate(c, r, 0.0f);
        };
        sampling.batch = body.batch;
        sampler.sample(body.field, sampling);

        mesh::IsoSurfaceOptions extOpt;  // recon-path config for both sides
        extOpt.weldVertices = false;
        core::telemetry::Histogram legacyMs, blockMs;
        mesh::ExtractStats es;
        mesh::TriMesh legacyMesh, blockMesh;
        for (int i = 0; i < 5; ++i) {
            auto t0 = std::chrono::steady_clock::now();
            legacyMesh = mesh::extractIsoSurfaceLegacy(grid, sampler, extOpt);
            legacyMs.record(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
            t0 = std::chrono::steady_clock::now();
            blockMesh = mesh::extractIsoSurface(grid, &sampler, extOpt, nullptr, &es);
            blockMs.record(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
        }

        const auto legacySoup = mesh::canonicalTriangleSoup(legacyMesh);
        const auto blockSoup = mesh::canonicalTriangleSoup(blockMesh);
        extractionMatch = legacySoup.size() == blockSoup.size();
        for (std::size_t i = 0; extractionMatch && i < legacySoup.size(); ++i)
            for (int v = 0; v < 3 && extractionMatch; ++v)
                extractionMatch = legacySoup[i][v].x == blockSoup[i][v].x &&
                                  legacySoup[i][v].y == blockSoup[i][v].y &&
                                  legacySoup[i][v].z == blockSoup[i][v].z;

        const double extSpeedup =
            blockMs.p50() > 0.0 ? legacyMs.p50() / blockMs.p50() : 0.0;
        bench::Table ext({"resolution", "legacy ms (p50)", "block ms (p50)",
                          "speedup (1 core)", "active cells", "triangles",
                          "canonical match"});
        ext.addRow({std::to_string(extRes), bench::fmt("%.1f", legacyMs.p50()),
                    bench::fmt("%.1f", blockMs.p50()),
                    bench::fmt("%.2fx", extSpeedup),
                    std::to_string(es.activeCells),
                    std::to_string(blockMesh.triangleCount()),
                    extractionMatch ? "yes" : "NO"});
        ext.print();
        json.beginObject("extraction")
            .field("resolution", static_cast<std::uint64_t>(extRes))
            .field("legacy_ms_p50", legacyMs.p50())
            .field("block_ms_p50", blockMs.p50())
            .field("speedup_single_core", extSpeedup)
            .field("canonical_match", std::string(extractionMatch ? "yes" : "no"))
            .field("active_cells", es.activeCells)
            .field("vertices", es.vertices)
            .field("triangles", es.triangles)
            .endObject();
    }

    // ---- Temporal block cache over an animated sequence -----------------
    bench::banner("Temporal cache: Talk sequence, re-sampling moved blocks only");
    const int seqRes = std::min(maxRes, 96);
    const int seqFrames = 24;
    recon::SparseReconstructorOptions seqOpt;
    seqOpt.recon.resolution = seqRes;
    seqOpt.recon.device = recon::DeviceProfile::host();
    recon::SparseReconstructor cached(seqOpt);
    body::MotionGenerator talk(body::MotionKind::Talk);
    core::telemetry::Histogram cachedMs, freshMs;
    std::uint64_t cachedBlocks = 0, totalBlocks = 0, reusedTopology = 0;
    for (int f = 0; f < seqFrames; ++f) {
        const body::Pose p = talk.poseAt(static_cast<double>(f) / 15.0);
        const auto r = cached.reconstruct(p);
        if (f > 0) {  // frame 0 is the cold fill
            cachedMs.record(r.totalMs());
            cachedBlocks += r.stats.blocksCached;
            totalBlocks += r.stats.blocksTotal;
            reusedTopology += r.stats.reusedTopologyBlocks;
        }
        recon::ReconstructionOptions fresh = seqOpt.recon;
        fresh.mode = recon::ReconMode::Sparse;
        freshMs.record(recon::reconstructFromPose(p, fresh).totalMs());
    }
    const double hitRatio = totalBlocks > 0
                                ? static_cast<double>(cachedBlocks) /
                                      static_cast<double>(totalBlocks)
                                : 0.0;
    bench::Table seq({"frames", "resolution", "cached ms (p50)", "fresh ms (p50)",
                      "cache speedup", "block cache-hit ratio"});
    seq.addRow({std::to_string(seqFrames), std::to_string(seqRes),
                bench::fmt("%.1f", cachedMs.p50()), bench::fmt("%.1f", freshMs.p50()),
                bench::fmt("%.2fx", freshMs.p50() / std::max(1e-9, cachedMs.p50())),
                bench::fmt("%.2f", hitRatio)});
    seq.print();
    json.beginObject("temporal")
        .field("frames", static_cast<std::uint64_t>(seqFrames))
        .field("resolution", static_cast<std::uint64_t>(seqRes))
        .field("cached_ms_p50", cachedMs.p50())
        .field("fresh_ms_p50", freshMs.p50())
        .field("cache_hit_ratio", hitRatio)
        .field("reused_topology_blocks", reusedTopology)
        .endObject();
    json.endObject();
    {
        std::FILE* f = std::fopen("BENCH_fig4.json", "w");
        if (f != nullptr) {
            std::fputs(json.str().c_str(), f);
            std::fputs("\n", f);
            std::fclose(f);
            std::printf("\nwrote BENCH_fig4.json\n");
        }
    }

    std::printf(
        "\nShape check: dense FPS decays ~cubically and sits far below the 30 FPS\n"
        "interactive requirement at every paper resolution (Figure 4); the laptop\n"
        "profile cannot hold dense 512/1024 grids (section 4.2) but the sparse\n"
        "working set fits. Sparse reconstruction prunes interior/exterior blocks,\n"
        "so its cost tracks the surface shell (~R^2) instead of the volume.\n");
    if (!extractionMatch) {
        std::fprintf(stderr,
                     "FAIL: block extractor and legacy extractor disagree on the "
                     "triangle set at %d^3\n",
                     extRes);
        return 1;
    }
    return 0;
}
