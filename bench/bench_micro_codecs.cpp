// Microbenchmarks + the codec v2 Pareto sweep.
//
// Part 1 (google-benchmark): per-call costs of the compression
// substrates — LZC and the codec v2 pipeline on the 1.91 KB pose
// payload (the per-frame sender hot path of the keypoint channel) and
// the mesh codec on the body template (the traditional channel hot
// path). These quantify the codec contribution to the Table 1
// extraction overheads.
//
// Part 2 (after the microbenches): the full sweep over
// filter chain x entropy backend x lzc level, run on real serialized
// pose sequences (Talk + Collaborate, per-frame payloads exactly as the
// keypoint channel sends them). Emits BENCH_codec_pareto.json with the
// ratio-vs-throughput frontier for regression tracking, and exits
// nonzero if any combination fails its bit-exact round trip — CI runs
// this binary as a correctness gate, not just a stopwatch.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/compress/codec2.hpp"
#include "semholo/compress/lzc.hpp"
#include "semholo/compress/meshcodec.hpp"
#include "semholo/compress/texturecodec.hpp"
#include "semholo/core/telemetry.hpp"

namespace semholo {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 72};
    return model;
}

std::vector<std::uint8_t> posePayload() {
    const body::MotionGenerator gen(body::MotionKind::Talk);
    return body::serializePose(gen.poseAt(0.5));
}

void BM_LzcCompressPosePayload(benchmark::State& state) {
    const auto payload = posePayload();
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::lzcCompress(payload));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_LzcCompressPosePayload);

void BM_LzcDecompressPosePayload(benchmark::State& state) {
    const auto compressed = compress::lzcCompress(posePayload());
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::lzcDecompress(compressed));
    }
}
BENCHMARK(BM_LzcDecompressPosePayload);

void BM_Codec2CompressPosePayload(benchmark::State& state) {
    const auto payload = posePayload();
    const auto options = compress::poseCodecDefaults();
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::codec2Encode(payload, options));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload.size()));
    state.counters["enc_bytes"] = static_cast<double>(
        compress::codec2Encode(payload, options).size());
}
BENCHMARK(BM_Codec2CompressPosePayload);

void BM_Codec2DecompressPosePayload(benchmark::State& state) {
    const auto container =
        compress::codec2Encode(posePayload(), compress::poseCodecDefaults());
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::codec2Decode(container));
    }
}
BENCHMARK(BM_Codec2DecompressPosePayload);

void BM_FilterPosePayload(benchmark::State& state) {
    const auto payload = posePayload();
    const auto chain = compress::poseCodecDefaults().filters;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::applyFilters(chain, payload));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_FilterPosePayload);

// The production bitshuffle (8 rows per 64-bit transpose) against the
// bit-at-a-time reference it must stay byte-identical to; the ratio of
// these two rows is the speedup the transpose path buys.
void BM_BitshuffleFast(benchmark::State& state) {
    const auto payload = posePayload();
    const compress::FilterChain chain{.ops = {compress::FilterOp::Bitshuffle},
                                      .stride = 8};
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::applyFilters(chain, payload));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_BitshuffleFast);

void BM_BitshuffleScalarReference(benchmark::State& state) {
    const auto payload = posePayload();
    std::vector<std::uint8_t> out(payload.size());
    for (auto _ : state) {
        compress::detail::bitshuffleScalar(payload, out.data(), 8);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_BitshuffleScalarReference);

void BM_MeshEncode(benchmark::State& state) {
    const mesh::TriMesh& m = sharedModel().templateMesh();
    compress::MeshCodecOptions opt;
    opt.encodeColors = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::encodeMesh(m, opt));
    }
    state.counters["raw_bytes"] = static_cast<double>(m.rawGeometryBytes());
    state.counters["enc_bytes"] =
        static_cast<double>(compress::encodeMesh(m, opt).size());
}
BENCHMARK(BM_MeshEncode);

void BM_MeshDecode(benchmark::State& state) {
    compress::MeshCodecOptions opt;
    opt.encodeColors = false;
    const auto data = compress::encodeMesh(sharedModel().templateMesh(), opt);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::decodeMesh(data));
    }
}
BENCHMARK(BM_MeshDecode);

void BM_TextureBlocks(benchmark::State& state) {
    const auto& colors = sharedModel().templateMesh().colors;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::encodeColorBlocks(colors));
    }
    state.counters["colors"] = static_cast<double>(colors.size());
}
BENCHMARK(BM_TextureBlocks);

void BM_PoseSerialize(benchmark::State& state) {
    const body::MotionGenerator gen(body::MotionKind::Talk);
    const body::Pose pose = gen.poseAt(0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(body::serializePose(pose));
    }
}
BENCHMARK(BM_PoseSerialize);

// ---------------------------------------------------------------------
// Pareto sweep: filter chain x backend x lzc maxChainSteps level over
// real serialized pose sequences.

struct SweepRow {
    std::string chain;
    std::string backend;
    int level{};  // lzc maxChainSteps; 0 for the Store backend
    std::size_t rawBytes{};
    std::size_t encBytes{};
    double encMs{};
    double decMs{};
    bool roundTripOk{true};
    bool pareto{false};

    double ratio() const {
        return encBytes > 0 ? static_cast<double>(rawBytes) /
                                  static_cast<double>(encBytes)
                            : 0.0;
    }
    double encMBps() const {
        return encMs > 0.0 ? static_cast<double>(rawBytes) / 1e6 / (encMs / 1e3)
                           : 0.0;
    }
    double decMBps() const {
        return decMs > 0.0 ? static_cast<double>(rawBytes) / 1e6 / (decMs / 1e3)
                           : 0.0;
    }
};

double wallMs(const std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int runParetoSweep() {
    bench::banner(
        "Codec v2 Pareto sweep: filter chain x backend x level on pose streams");

    // The workload: per-frame pose payloads exactly as the keypoint
    // channel sends them, from two motion sequences.
    std::vector<std::vector<std::uint8_t>> frames;
    std::size_t rawBytes = 0;
    for (const body::MotionKind kind :
         {body::MotionKind::Talk, body::MotionKind::Collaborate}) {
        const body::MotionGenerator gen(kind);
        for (const body::Pose& pose : gen.sequence(64, 30.0)) {
            frames.push_back(body::serializePose(pose));
            rawBytes += frames.back().size();
        }
    }

    using compress::EntropyBackend;
    using compress::FilterChain;
    using compress::FilterOp;
    const std::vector<FilterChain> chains = {
        FilterChain{.ops = {}, .stride = 8},
        FilterChain{.ops = {FilterOp::DeltaDiff}, .stride = 8},
        FilterChain{.ops = {FilterOp::ByteTranspose}, .stride = 8},
        FilterChain{.ops = {FilterOp::ByteTranspose, FilterOp::DeltaDiff},
                    .stride = 8},
        FilterChain{.ops = {FilterOp::ByteTranspose, FilterOp::XorDiff},
                    .stride = 8},
        FilterChain{.ops = {FilterOp::Bitshuffle}, .stride = 8},
        FilterChain{.ops = {FilterOp::Bitshuffle, FilterOp::DeltaDiff},
                    .stride = 8},
    };
    const std::vector<int> lzcLevels = {4, 64, 256};
    constexpr int kRepeats = 3;

    std::vector<SweepRow> rows;
    bool allRoundTripsOk = true;
    for (const FilterChain& chain : chains) {
        for (const EntropyBackend backend :
             {EntropyBackend::Store, EntropyBackend::Lzc}) {
            const std::vector<int> levels =
                backend == EntropyBackend::Lzc ? lzcLevels : std::vector<int>{0};
            for (const int level : levels) {
                compress::Codec2Options options;
                options.filters = chain;
                options.backend = backend;
                options.lzc.maxChainSteps = level;

                SweepRow row;
                row.chain = compress::filterChainName(chain);
                row.backend = backend == EntropyBackend::Lzc ? "lzc" : "store";
                row.level = level;
                row.rawBytes = rawBytes;

                std::vector<std::vector<std::uint8_t>> encoded(frames.size());
                row.encMs = 1e30;
                for (int rep = 0; rep < kRepeats; ++rep) {
                    const auto t0 = std::chrono::steady_clock::now();
                    for (std::size_t f = 0; f < frames.size(); ++f)
                        encoded[f] = compress::codec2Encode(frames[f], options);
                    row.encMs = std::min(row.encMs, wallMs(t0));
                }
                row.encBytes = 0;
                for (const auto& e : encoded) row.encBytes += e.size();

                std::vector<std::optional<std::vector<std::uint8_t>>> decoded(
                    frames.size());
                row.decMs = 1e30;
                for (int rep = 0; rep < kRepeats; ++rep) {
                    const auto t0 = std::chrono::steady_clock::now();
                    for (std::size_t f = 0; f < frames.size(); ++f)
                        decoded[f] = compress::codec2Decode(encoded[f]);
                    row.decMs = std::min(row.decMs, wallMs(t0));
                }
                for (std::size_t f = 0; f < frames.size(); ++f) {
                    if (!decoded[f] || *decoded[f] != frames[f]) {
                        row.roundTripOk = false;
                        allRoundTripsOk = false;
                    }
                }
                rows.push_back(std::move(row));
            }
        }
    }

    // Pareto frontier on (ratio, encode throughput): a row is on the
    // frontier when no other row is at least as good on both axes and
    // strictly better on one.
    for (SweepRow& row : rows) {
        row.pareto = true;
        for (const SweepRow& other : rows) {
            if (&other == &row) continue;
            const bool geq = other.ratio() >= row.ratio() &&
                             other.encMBps() >= row.encMBps();
            const bool strict = other.ratio() > row.ratio() ||
                                other.encMBps() > row.encMBps();
            if (geq && strict) {
                row.pareto = false;
                break;
            }
        }
    }

    // Acceptance probe: does some filter chain strictly dominate plain
    // lzc (better ratio at >= equal encode throughput) at the default
    // level?
    const SweepRow* plain = nullptr;
    for (const SweepRow& row : rows)
        if (row.chain == "none" && row.backend == "lzc" && row.level == 64)
            plain = &row;
    std::string dominatingChain;
    double dominatingRatio = 0.0;
    if (plain != nullptr) {
        for (const SweepRow& row : rows) {
            if (row.backend != "lzc" || row.chain == "none") continue;
            if (row.ratio() > plain->ratio() &&
                row.encMBps() >= plain->encMBps() &&
                row.ratio() > dominatingRatio) {
                dominatingRatio = row.ratio();
                dominatingChain = row.chain + "@" + std::to_string(row.level);
            }
        }
    }

    bench::Table table({"filter chain", "backend", "level", "enc KB", "ratio",
                        "enc MB/s", "dec MB/s", "round trip", "pareto"});
    core::telemetry::JsonWriter json;
    json.beginObject();
    json.field("schema_version", core::telemetry::kBenchSchemaVersion);
    json.field("bench", std::string("codec_pareto"));
    json.field("frames", static_cast<std::uint64_t>(frames.size()));
    json.field("raw_bytes", static_cast<std::uint64_t>(rawBytes));
    json.beginArray("rows");
    for (const SweepRow& row : rows) {
        table.addRow({row.chain, row.backend, std::to_string(row.level),
                      bench::fmt("%.1f", static_cast<double>(row.encBytes) / 1e3),
                      bench::fmt("%.3f", row.ratio()),
                      bench::fmt("%.1f", row.encMBps()),
                      bench::fmt("%.1f", row.decMBps()),
                      row.roundTripOk ? "ok" : "FAIL", row.pareto ? "*" : ""});
        json.beginObject()
            .field("chain", row.chain)
            .field("backend", row.backend)
            .field("level", static_cast<std::uint64_t>(row.level))
            .field("enc_bytes", static_cast<std::uint64_t>(row.encBytes))
            .field("ratio", row.ratio())
            .field("enc_mbps", row.encMBps())
            .field("dec_mbps", row.decMBps())
            .field("round_trip", std::string(row.roundTripOk ? "ok" : "fail"))
            .field("pareto", std::string(row.pareto ? "yes" : "no"))
            .endObject();
    }
    json.endArray();
    if (plain != nullptr) {
        json.field("plain_lzc_ratio", plain->ratio());
        json.field("plain_lzc_enc_mbps", plain->encMBps());
    }
    json.field("dominating_chain", dominatingChain);
    json.field("all_round_trips",
               std::string(allRoundTripsOk ? "ok" : "fail"));
    json.endObject();
    table.print();

    if (std::FILE* f = std::fopen("BENCH_codec_pareto.json", "w")) {
        std::fputs(json.str().c_str(), f);
        std::fputs("\n", f);
        std::fclose(f);
        std::printf("\nwrote BENCH_codec_pareto.json\n");
    }

    if (plain != nullptr) {
        std::printf(
            "\nplain lzc@64: ratio %.3f at %.1f MB/s; %s\n", plain->ratio(),
            plain->encMBps(),
            dominatingChain.empty()
                ? "WARNING: no filter chain dominates plain lzc on this host"
                : ("dominated by " + dominatingChain).c_str());
    }
    if (!allRoundTripsOk) {
        std::printf("FAIL: at least one (chain x backend x level) combination "
                    "did not round-trip bit-exactly\n");
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace semholo

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return semholo::runParetoSweep();
}
