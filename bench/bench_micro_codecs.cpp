// google-benchmark microbenchmarks for the compression substrates: LZC
// on the 1.91 KB pose payload (the per-frame sender hot path of the
// keypoint channel) and the mesh codec on the body template (the
// traditional channel hot path). These quantify the codec contribution
// to the Table 1 extraction overheads.
#include <benchmark/benchmark.h>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/compress/lzc.hpp"
#include "semholo/compress/meshcodec.hpp"
#include "semholo/compress/texturecodec.hpp"

namespace semholo {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 72};
    return model;
}

std::vector<std::uint8_t> posePayload() {
    const body::MotionGenerator gen(body::MotionKind::Talk);
    return body::serializePose(gen.poseAt(0.5));
}

void BM_LzcCompressPosePayload(benchmark::State& state) {
    const auto payload = posePayload();
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::lzcCompress(payload));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_LzcCompressPosePayload);

void BM_LzcDecompressPosePayload(benchmark::State& state) {
    const auto compressed = compress::lzcCompress(posePayload());
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::lzcDecompress(compressed));
    }
}
BENCHMARK(BM_LzcDecompressPosePayload);

void BM_MeshEncode(benchmark::State& state) {
    const mesh::TriMesh& m = sharedModel().templateMesh();
    compress::MeshCodecOptions opt;
    opt.encodeColors = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::encodeMesh(m, opt));
    }
    state.counters["raw_bytes"] = static_cast<double>(m.rawGeometryBytes());
    state.counters["enc_bytes"] =
        static_cast<double>(compress::encodeMesh(m, opt).size());
}
BENCHMARK(BM_MeshEncode);

void BM_MeshDecode(benchmark::State& state) {
    compress::MeshCodecOptions opt;
    opt.encodeColors = false;
    const auto data = compress::encodeMesh(sharedModel().templateMesh(), opt);
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::decodeMesh(data));
    }
}
BENCHMARK(BM_MeshDecode);

void BM_TextureBlocks(benchmark::State& state) {
    const auto& colors = sharedModel().templateMesh().colors;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress::encodeColorBlocks(colors));
    }
    state.counters["colors"] = static_cast<double>(colors.size());
}
BENCHMARK(BM_TextureBlocks);

void BM_PoseSerialize(benchmark::State& state) {
    const body::MotionGenerator gen(body::MotionKind::Talk);
    const body::Pose pose = gen.poseAt(0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(body::serializePose(pose));
    }
}
BENCHMARK(BM_PoseSerialize);

}  // namespace
}  // namespace semholo

BENCHMARK_MAIN();
