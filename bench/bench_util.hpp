// Shared helpers for the experiment harnesses: fixed-width table
// printing in the style of the paper's tables, and common workload
// setup. Each bench binary regenerates one table or figure (see the
// DESIGN.md experiment index) and prints paper-vs-measured rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace semholo::bench {

class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto printRow = [&](const std::vector<std::string>& row) {
            std::printf("|");
            for (std::size_t c = 0; c < widths.size(); ++c) {
                const std::string& cell = c < row.size() ? row[c] : std::string();
                std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
            }
            std::printf("\n");
        };
        printRow(headers_);
        std::printf("|");
        for (const std::size_t w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
            std::printf("|");
        }
        std::printf("\n");
        for (const auto& row : rows_) printRow(row);
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

inline void banner(const char* title) {
    std::printf("\n==== %s ====\n\n", title);
}

}  // namespace semholo::bench
