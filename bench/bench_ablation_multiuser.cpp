// Ablation I: multi-user scaling over a shared bottleneck — how many
// telepresence participants fit through one uplink per semantic type.
// The multi-user volumetric delivery literature the paper cites ([105],
// [106]) motivates exactly this: traditional mesh streams collide at 2-3
// users on broadband, keypoint streams scale to rooms full of people.
//
// This bench drives the conference engine through the ConferenceConfig
// API: participants are data (one ChannelSpec per row), every row runs
// under the deterministic timing model so the serial (workers=1) and
// parallel (workers=N) engines are byte-identical, and the 8-user row is
// re-run at both worker counts to report the engine's wall-clock
// speedup. A congested conference section then runs adaptive-mesh
// participants through a faulty 8 Mbps bottleneck with closed-loop
// degradation off and on, reporting per-user fairness (delivery ratio,
// bandwidth share, ladder transitions) from the per-tick feedback
// scheduler. Per-stage telemetry (p50/p95/p99 plus
// drop/retransmission/queue counters) is exported to
// BENCH_multiuser.json.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "semholo/core/conference.hpp"
#include "semholo/core/thread_pool.hpp"

using namespace semholo;

namespace {

struct Workload {
    const char* label;
    core::ChannelSpec spec;
};

// A conference of 'users' identical participants publishing 'spec'.
core::ConferenceConfig makeConference(const core::ChannelSpec& spec,
                                      std::size_t users,
                                      const core::SessionConfig& session) {
    core::ConferenceConfig conf;
    conf.session = session;
    conf.enableDownlinks = false;  // uplink-scaling ablation
    conf.participants.resize(users);
    for (auto& p : conf.participants) p.channel = spec;
    return conf;
}

double nowMs() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

int main() {
    bench::banner("Ablation I: participants per shared 25 Mbps uplink");

    const body::BodyModel model(body::ShapeParams{}, 48);

    // The sweep is data: add a row here to add a channel configuration.
    const std::vector<Workload> workloads{
        {"keypoint", {"keypoint", {{"reconResolution", 24}}}},
        {"traditional", {"traditional", {{"compress", 1}, {"withColors", 0}}}},
    };

    core::SessionConfig cfg;
    cfg.frames = 12;
    cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
    cfg.link.queueCapacityBytes = 2 * 1024 * 1024;
    // Deterministic pipeline clocks: identical drop/delivery sequences
    // at any worker count, so rows are reproducible and the speedup
    // comparison below is apples-to-apples.
    cfg.timing = core::TimingModel::Simulated;

    core::telemetry::JsonWriter json;
    json.beginObject();
    json.field("schema_version", core::telemetry::kBenchSchemaVersion);
    json.field("bench", std::string("ablation_multiuser"));
    json.field("hardware_workers",
               static_cast<std::uint64_t>(core::ThreadPool::defaultWorkers()));
    json.beginArray("rows");

    bench::Table table({"channel", "users", "aggregate Mbps", "mean e2e ms",
                        "users <= 150 ms"});
    for (const Workload& workload : workloads) {
        for (const std::size_t users : {1u, 2u, 4u, 8u}) {
            const auto stats =
                core::runConference(makeConference(workload.spec, users, cfg),
                                    model);
            table.addRow({workload.label, std::to_string(users),
                          bench::fmt("%.2f", stats.aggregateMbps),
                          bench::fmt("%.0f", stats.meanE2eMs),
                          std::to_string(stats.usersWithinLatency(150.0)) + "/" +
                              std::to_string(users)});
            json.beginObject()
                .field("channel", std::string(workload.label))
                .field("users", static_cast<std::uint64_t>(users))
                .field("aggregate_mbps", stats.aggregateMbps)
                .field("mean_e2e_ms", stats.meanE2eMs)
                .raw("telemetry", core::telemetry::toJsonValue(stats.telemetry))
                .endObject();
        }
    }
    table.print();

    // Engine speedup: the 8-user keypoint row, serial vs parallel. The
    // deterministic clocks mean both runs produce byte-identical
    // per-frame sequences — verified below — so the only difference is
    // wall time.
    const std::size_t speedupUsers = 8;
    const std::size_t parallelWorkers =
        std::max<std::size_t>(4, core::ThreadPool::defaultWorkers());
    core::MultiSessionStats serialStats, parallelStats;
    double serialMs = 0.0, parallelMs = 0.0;
    {
        cfg.workers = 1;
        const double t0 = nowMs();
        serialStats = core::runConference(
            makeConference(workloads[0].spec, speedupUsers, cfg), model);
        serialMs = nowMs() - t0;
    }
    {
        cfg.workers = parallelWorkers;
        const double t0 = nowMs();
        parallelStats = core::runConference(
            makeConference(workloads[0].spec, speedupUsers, cfg), model);
        parallelMs = nowMs() - t0;
    }
    bool identical = true;
    for (std::size_t u = 0; u < speedupUsers; ++u) {
        const auto& a = serialStats.perUser[u].frames;
        const auto& b = parallelStats.perUser[u].frames;
        if (a.size() != b.size()) identical = false;
        for (std::size_t f = 0; identical && f < a.size(); ++f)
            identical = a[f].bytes == b[f].bytes &&
                        a[f].delivered == b[f].delivered &&
                        a[f].droppedAtSender == b[f].droppedAtSender &&
                        a[f].droppedAtReceiver == b[f].droppedAtReceiver;
    }
    const double speedup = parallelMs > 0.0 ? serialMs / parallelMs : 0.0;
    std::printf(
        "\nEngine: %zu users, workers=1 %.0f ms vs workers=%zu %.0f ms -> "
        "%.2fx speedup (%zu hardware threads); sequences %s\n",
        speedupUsers, serialMs, parallelWorkers, parallelMs, speedup,
        core::ThreadPool::defaultWorkers(),
        identical ? "byte-identical" : "DIVERGED (engine bug)");

    // Congested conference: adaptive-mesh participants on a link too
    // narrow for everyone's top rung, with a scripted outage and a
    // bandwidth collapse. Run once with SessionConfig::degradation
    // disabled and once enabled: the per-tick feedback scheduler lets
    // every user's DegradationPolicy observe its own link outcomes, so
    // the enabled run sheds quality instead of frames.
    bench::banner("Congested conference: closed-loop degradation on/off");
    core::SessionConfig congested;
    congested.frames = 90;
    congested.fps = 30.0;
    congested.timing = core::TimingModel::Simulated;
    congested.transfer.reliable = false;
    congested.link.bandwidth = net::BandwidthTrace::constant(8e6);
    congested.link.propagationDelayS = 0.01;
    congested.link.jitterStddevS = 0.0;
    congested.link.queueCapacityBytes = 16 * 1024;
    congested.link.faults.outages.push_back({1.0, 0.5});
    congested.link.faults.collapses.push_back({2.0, 1.0, 0.08});

    const std::size_t confUsers = 3;
    core::AdaptiveMeshOptions meshOpt;
    meshOpt.ladderTriangles = {400, 1500, 6000};
    // ladderTriangles is vector-valued, which a ChannelSpec cannot carry
    // — this is what Participant::channelFactory is for.
    const auto adaptiveConference = [&](const core::SessionConfig& session) {
        core::ConferenceConfig conf;
        conf.session = session;
        conf.enableDownlinks = false;
        conf.participants.resize(confUsers);
        for (auto& p : conf.participants)
            p.channelFactory = [meshOpt](const body::BodyModel&) {
                return core::makeAdaptiveMeshChannel(meshOpt);
            };
        return conf;
    };

    core::MultiSessionStats confOff, confOn;
    confOff = core::runConference(adaptiveConference(congested), model);
    {
        core::SessionConfig withPolicy = congested;
        withPolicy.degradation.enabled = true;
        withPolicy.degradation.maxLevel = 3;
        withPolicy.degradation.downgradeAfter = 2;
        withPolicy.degradation.upgradeAfter = 8;
        confOn = core::runConference(adaptiveConference(withPolicy), model);
    }

    const auto deliveryRatio = [&](const core::MultiSessionStats& s) {
        std::size_t delivered = 0;
        for (const auto& u : s.perUser) delivered += u.deliveredFrames;
        return static_cast<double>(delivered) /
               static_cast<double>(confUsers * congested.frames);
    };
    bench::Table confTable({"policy", "delivery", "aggregate Mbps",
                            "degradations", "fairness (Jain)"});
    const auto confRow = [&](const char* label,
                             const core::MultiSessionStats& s) {
        confTable.addRow(
            {label, bench::fmt("%.1f%%", deliveryRatio(s) * 100.0),
             bench::fmt("%.2f", s.aggregateMbps),
             std::to_string(s.telemetry.counters.degradations),
             bench::fmt("%.3f", s.fairnessIndex)});
    };
    confRow("off", confOff);
    confRow("on", confOn);
    confTable.print();

    bench::Table fairTable({"user", "delivered", "delivery", "Mbps", "share",
                            "degr", "upgr", "final lvl"});
    for (const core::UserFairnessStats& f : confOn.fairness) {
        fairTable.addRow({std::to_string(f.user),
                          std::to_string(f.deliveredFrames) + "/" +
                              std::to_string(f.capturedFrames),
                          bench::fmt("%.1f%%", f.deliveryRatio * 100.0),
                          bench::fmt("%.2f", f.bandwidthMbps),
                          bench::fmt("%.2f", f.bandwidthShare),
                          std::to_string(f.degradations),
                          std::to_string(f.upgrades),
                          std::to_string(f.finalDegradationLevel)});
    }
    fairTable.print();

    bool adapted = confOn.telemetry.counters.degradations > 0 &&
                   deliveryRatio(confOn) > deliveryRatio(confOff);
    for (const core::UserFairnessStats& f : confOn.fairness)
        adapted = adapted && f.degradations > 0;
    std::printf(
        "\nClosed loop %s: delivery %.1f%% -> %.1f%% with per-user "
        "degradation engaged for %zu/%zu users\n",
        adapted ? "engaged" : "FAILED TO ENGAGE (scheduler bug)",
        deliveryRatio(confOff) * 100.0, deliveryRatio(confOn) * 100.0,
        confOn.fairness.size(), confUsers);

    json.endArray();
    json.beginObject("congested_conference")
        .field("users", static_cast<std::uint64_t>(confUsers))
        .field("frames", static_cast<std::uint64_t>(congested.frames))
        .raw("degradation_off", core::toJsonValue(confOff))
        .raw("degradation_on", core::toJsonValue(confOn))
        .endObject();
    json.beginObject("speedup")
        .field("users", static_cast<std::uint64_t>(speedupUsers))
        .field("serial_ms", serialMs)
        .field("parallel_ms", parallelMs)
        .field("parallel_workers", static_cast<std::uint64_t>(parallelWorkers))
        .field("speedup", speedup)
        .field("sequences_identical", std::string(identical ? "yes" : "no"))
        .endObject();
    json.raw("telemetry_8user_parallel",
             core::telemetry::toJsonValue(parallelStats.telemetry));
    json.endObject();
    {
        std::FILE* f = std::fopen("BENCH_multiuser.json", "w");
        if (f != nullptr) {
            std::fputs(json.str().c_str(), f);
            std::fputs("\n", f);
            std::fclose(f);
            std::printf("wrote BENCH_multiuser.json\n");
        }
    }

    std::printf(
        "\nShape check: eight keypoint participants use ~2 Mbps aggregate and\n"
        "all meet the latency budget; two mesh participants already saturate\n"
        "the 25 Mbps uplink and latency collapses — semantic streams make\n"
        "multi-party holographic conferences feasible on today's links.\n");
    return identical && adapted ? 0 : 1;
}
