// Ablation I: multi-user scaling over a shared bottleneck — how many
// telepresence participants fit through one uplink per semantic type.
// The multi-user volumetric delivery literature the paper cites ([105],
// [106]) motivates exactly this: traditional mesh streams collide at 2-3
// users on broadband, keypoint streams scale to rooms full of people.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "semholo/core/session.hpp"

using namespace semholo;

int main() {
    bench::banner("Ablation I: participants per shared 25 Mbps uplink");

    const body::BodyModel model(body::ShapeParams{}, 48);

    bench::Table table({"channel", "users", "aggregate Mbps", "mean e2e ms",
                        "users <= 150 ms"});
    for (const char* kind : {"keypoint", "traditional"}) {
        for (const std::size_t users : {1u, 2u, 4u, 8u}) {
            std::vector<std::unique_ptr<core::SemanticChannel>> owned;
            std::vector<core::SemanticChannel*> channels;
            for (std::size_t u = 0; u < users; ++u) {
                if (std::string(kind) == "keypoint") {
                    core::KeypointChannelOptions opt;
                    opt.reconResolution = 24;
                    owned.push_back(core::makeKeypointChannel(opt));
                } else {
                    owned.push_back(core::makeTraditionalChannel({true, false}));
                }
                channels.push_back(owned.back().get());
            }
            core::SessionConfig cfg;
            cfg.frames = 12;
            cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
            cfg.link.queueCapacityBytes = 2 * 1024 * 1024;
            const auto stats = core::runMultiUserSession(channels, model, cfg);
            table.addRow({kind, std::to_string(users),
                          bench::fmt("%.2f", stats.aggregateMbps),
                          bench::fmt("%.0f", stats.meanE2eMs),
                          std::to_string(stats.usersWithinLatency(150.0)) + "/" +
                              std::to_string(users)});
        }
    }
    table.print();

    std::printf(
        "\nShape check: eight keypoint participants use ~2 Mbps aggregate and\n"
        "all meet the latency budget; two mesh participants already saturate\n"
        "the 25 Mbps uplink and latency collapses — semantic streams make\n"
        "multi-party holographic conferences feasible on today's links.\n");
    return 0;
}
