// Regenerates Table 2: required bandwidth (Mbps) at 30 FPS for
// keypoint-based semantic vs traditional communication, before and after
// compression (LZC standing in for LZMA, our mesh codec for Draco).
//
// Paper values: semantic 0.46 / 0.30 Mbps; traditional 95.4 / 10.1 Mbps;
// savings ~207x (raw) and ~34x (compressed).
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/compress/lzc.hpp"
#include "semholo/compress/meshcodec.hpp"
#include "semholo/compress/pointcloudcodec.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/mesh/sampling.hpp"

using namespace semholo;

int main() {
    bench::banner("Table 2: bandwidth at 30 FPS, keypoint semantics vs traditional");

    // Default template resolution: ~10.5k vertices, the SMPL-X scale the
    // paper's traditional baseline streams (~398 KB/frame raw).
    const body::BodyModel model(body::ShapeParams{});
    const body::MotionGenerator gen(body::MotionKind::Talk, model.shape());
    constexpr int kFrames = 30;
    constexpr double kFps = 30.0;

    double semRaw = 0.0, semComp = 0.0, tradRaw = 0.0, tradComp = 0.0;
    for (int f = 0; f < kFrames; ++f) {
        body::Pose pose = gen.poseAt(f / kFps);
        pose.frameId = static_cast<std::uint32_t>(f);
        const auto payload = body::serializePose(pose);
        semRaw += static_cast<double>(payload.size());
        semComp += static_cast<double>(compress::lzcCompress(payload).size());

        mesh::TriMesh m = model.deform(pose);
        m.colors.clear();  // Table 2 uses the untextured mesh
        tradRaw += static_cast<double>(m.rawGeometryBytes());
        compress::MeshCodecOptions codec;
        codec.encodeColors = false;
        tradComp += static_cast<double>(compress::encodeMesh(m, codec).size());
    }
    semRaw /= kFrames;
    semComp /= kFrames;
    tradRaw /= kFrames;
    tradComp /= kFrames;

    auto mbps = [](double bytesPerFrame) { return bytesPerFrame * 8.0 * 30.0 / 1e6; };

    bench::Table table({"approach", "KB/frame", "Mbps@30FPS", "paper Mbps"});
    table.addRow({"semantic w/o compression", bench::fmt("%.2f", semRaw / 1024.0),
                  bench::fmt("%.2f", mbps(semRaw)), "0.46"});
    table.addRow({"semantic w/ compression (LZC~LZMA)",
                  bench::fmt("%.2f", semComp / 1024.0), bench::fmt("%.2f", mbps(semComp)),
                  "0.30"});
    table.addRow({"traditional w/o compression", bench::fmt("%.1f", tradRaw / 1024.0),
                  bench::fmt("%.1f", mbps(tradRaw)), "95.4"});
    table.addRow({"traditional w/ compression (~Draco)",
                  bench::fmt("%.1f", tradComp / 1024.0),
                  bench::fmt("%.1f", mbps(tradComp)), "10.1"});
    table.print();

    std::printf("\nBandwidth savings (raw):        %.0fx   (paper: ~207x)\n",
                tradRaw / semRaw);
    std::printf("Bandwidth savings (compressed): %.0fx   (paper: ~34x)\n",
                tradComp / semComp);

    // Supplementary: the point-cloud flavour of the traditional format
    // (section 2.1 lists both), through the octree codec.
    {
        const body::Pose pose = gen.poseAt(0.5);
        const auto cloud = mesh::sampleSurface(model.deform(pose), 100000, 3);
        compress::PointCloudCodecOptions pc;
        pc.encodeColors = false;
        const auto encoded = compress::encodePointCloud(cloud, pc);
        std::printf(
            "\nSupplementary (point-cloud representation, 100k points/frame):\n"
            "  raw %.1f KB -> octree-coded %.1f KB (%.1fx); at 30 FPS: %.1f -> "
            "%.1f Mbps\n",
            cloud.rawBytes() / 1024.0, encoded.size() / 1024.0,
            static_cast<double>(cloud.rawBytes()) /
                static_cast<double>(encoded.size()),
            mbps(static_cast<double>(cloud.rawBytes())),
            mbps(static_cast<double>(encoded.size())));
    }
    return 0;
}
