// Regenerates Table 2: required bandwidth (Mbps) at 30 FPS for
// keypoint-based semantic vs traditional communication, before and after
// compression (LZC standing in for LZMA, our mesh codec for Draco).
//
// Paper values: semantic 0.46 / 0.30 Mbps; traditional 95.4 / 10.1 Mbps;
// savings ~207x (raw) and ~34x (compressed).
//
// Each table row is a ChannelSpec: the sweep iterates over data, and the
// wire bytes come from the same channel implementations the session
// engines run, so this table can never drift from the real pipeline.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/compress/pointcloudcodec.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/core/conference.hpp"
#include "semholo/mesh/sampling.hpp"

using namespace semholo;

int main() {
    bench::banner("Table 2: bandwidth at 30 FPS, keypoint semantics vs traditional");

    // Default template resolution: ~10.5k vertices, the SMPL-X scale the
    // paper's traditional baseline streams (~398 KB/frame raw).
    const body::BodyModel model(body::ShapeParams{});
    const body::MotionGenerator gen(body::MotionKind::Talk, model.shape());
    constexpr int kFrames = 30;
    constexpr double kFps = 30.0;

    struct Row {
        const char* label;
        core::ChannelSpec spec;
        const char* paperMbps;
        const char* byteFormat;
    };
    const std::vector<Row> rows{
        {"semantic w/o compression",
         {"keypoint", {{"compressPayload", 0}}},
         "0.46",
         "%.2f"},
        {"semantic w/ compression (LZC~LZMA)",
         {"keypoint", {{"compressPayload", 1}}},
         "0.30",
         "%.2f"},
        {"traditional w/o compression",
         {"traditional", {{"compress", 0}}},
         "95.4",
         "%.1f"},
        {"traditional w/ compression (~Draco)",
         {"traditional", {{"compress", 1}}},
         "10.1",
         "%.1f"},
    };

    auto mbps = [](double bytesPerFrame) { return bytesPerFrame * 8.0 * 30.0 / 1e6; };

    std::vector<double> meanBytes;
    bench::Table table({"approach", "KB/frame", "Mbps@30FPS", "paper Mbps"});
    for (const Row& row : rows) {
        auto channel = core::makeChannel(row.spec, &model);
        double bytes = 0.0;
        for (int f = 0; f < kFrames; ++f) {
            core::FrameContext ctx;
            ctx.pose = gen.poseAt(f / kFps);
            ctx.pose.frameId = static_cast<std::uint32_t>(f);
            ctx.model = &model;
            ctx.timestamp = f / kFps;
            bytes += static_cast<double>(channel->encode(ctx).bytes());
        }
        bytes /= kFrames;
        meanBytes.push_back(bytes);
        table.addRow({row.label, bench::fmt(row.byteFormat, bytes / 1024.0),
                      bench::fmt(row.byteFormat, mbps(bytes)), row.paperMbps});
    }
    table.print();

    std::printf("\nBandwidth savings (raw):        %.0fx   (paper: ~207x)\n",
                meanBytes[2] / meanBytes[0]);
    std::printf("Bandwidth savings (compressed): %.0fx   (paper: ~34x)\n",
                meanBytes[3] / meanBytes[1]);

    // Supplementary: the point-cloud flavour of the traditional format
    // (section 2.1 lists both), through the octree codec.
    {
        const body::Pose pose = gen.poseAt(0.5);
        const auto cloud = mesh::sampleSurface(model.deform(pose), 100000, 3);
        compress::PointCloudCodecOptions pc;
        pc.encodeColors = false;
        const auto encoded = compress::encodePointCloud(cloud, pc);
        std::printf(
            "\nSupplementary (point-cloud representation, 100k points/frame):\n"
            "  raw %.1f KB -> octree-coded %.1f KB (%.1fx); at 30 FPS: %.1f -> "
            "%.1f Mbps\n",
            cloud.rawBytes() / 1024.0, encoded.size() / 1024.0,
            static_cast<double>(cloud.rawBytes()) /
                static_cast<double>(encoded.size()),
            mbps(static_cast<double>(cloud.rawBytes())),
            mbps(static_cast<double>(encoded.size())));
    }

    // Conference aggregate: the same Table 2 formats as a 4-party
    // conference over one 25 Mbps uplink, measured through the
    // multi-user session engine (per-tick scheduler). Reports each
    // user's bandwidth share so the table reflects wire bytes that
    // actually survived the shared bottleneck, not just encode sizes.
    bench::banner("Conference aggregate: 4 users, one 25 Mbps uplink");
    // Coarser template than the single-stream table: session rows decode
    // every frame, and the aggregate/share split is resolution-agnostic.
    const body::BodyModel confModel(body::ShapeParams{}, 48);
    const std::vector<Row> confRows{
        {"semantic w/ compression (LZC~LZMA)",
         {"keypoint", {{"compressPayload", 1}, {"reconResolution", 24}}},
         "0.30",
         "%.2f"},
        {"traditional w/ compression (~Draco)",
         {"traditional", {{"compress", 1}}},
         "10.1",
         "%.1f"},
    };
    bench::Table confTable({"approach", "aggregate Mbps", "per-user share",
                            "delivery %", "fairness (Jain)"});
    for (const Row& row : confRows) {
        constexpr std::size_t kUsers = 4;
        core::ConferenceConfig conf;
        conf.session.frames = 30;
        conf.session.timing = core::TimingModel::Simulated;
        conf.session.link.bandwidth = net::BandwidthTrace::constant(25e6);
        conf.session.link.queueCapacityBytes = 2 * 1024 * 1024;
        conf.enableDownlinks = false;  // uplink-share table
        conf.participants.resize(kUsers);
        for (auto& p : conf.participants) p.channel = row.spec;
        const auto stats = core::runConference(conf, confModel);

        std::string shares;
        std::size_t delivered = 0;
        for (const core::UserFairnessStats& f : stats.fairness) {
            if (!shares.empty()) shares += "/";
            shares += bench::fmt("%.2f", f.bandwidthShare);
            delivered += f.deliveredFrames;
        }
        confTable.addRow(
            {row.label, bench::fmt("%.2f", stats.aggregateMbps), shares,
             bench::fmt("%.1f",
                        100.0 * static_cast<double>(delivered) /
                            static_cast<double>(kUsers * conf.session.frames)),
             bench::fmt("%.3f", stats.fairnessIndex)});
    }
    confTable.print();
    std::printf(
        "\nShape check: four semantic users fit in ~2%% of the uplink with\n"
        "equal shares; four compressed-mesh users contend for all of it.\n");
    return 0;
}
