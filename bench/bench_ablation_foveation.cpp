// Ablation A (section 3.1): the foveated hybrid trade-off. A larger
// foveal region ships more full-quality mesh (more bytes) but leaves
// less for the keypoint-reconstructed periphery (less receiver compute
// and less refinement needed); a smaller region saves bandwidth at the
// cost of peripheral reconstruction work.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/core/session.hpp"

using namespace semholo;

int main() {
    bench::banner("Ablation A: foveal radius vs bandwidth vs reconstruction cost");

    const body::BodyModel model(body::ShapeParams{}, 72);
    core::SessionConfig cfg;
    cfg.frames = 6;
    cfg.qualityEvalInterval = 3;
    cfg.qualitySamples = 6000;
    cfg.link.bandwidth = net::BandwidthTrace::constant(50e6);

    bench::Table table({"foveal radius (deg)", "KB/frame", "Mbps@30", "recon ms",
                        "chamfer (mm)", "e2e ms"});
    for (const double radius : {0.0, 4.0, 7.5, 12.0, 20.0, 35.0}) {
        core::FoveatedOptions opt;
        opt.fovealRadiusDeg = radius;
        opt.peripheralResolution = 40;
        auto channel = core::makeFoveatedChannel(opt);
        const auto stats = core::runSession(*channel, model, cfg);
        table.addRow({bench::fmt("%.1f", radius),
                      bench::fmt("%.1f", stats.meanBytesPerFrame / 1024.0),
                      bench::fmt("%.2f", stats.bandwidthMbps),
                      bench::fmt("%.0f", stats.meanReconMs),
                      bench::fmt("%.2f", stats.meanChamfer * 1000.0),
                      bench::fmt("%.0f", stats.meanE2eMs)});
    }
    table.print();

    std::printf(
        "\nShape check: bytes/frame grows monotonically with the foveal radius\n"
        "(radius 0 = pure keypoints, ~35 deg = full mesh in view), while foveal\n"
        "quality improves; the trade-off of section 3.1 made measurable.\n");
    return 0;
}
