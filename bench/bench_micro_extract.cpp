// Microbenchmarks for iso-surface extraction (google-benchmark): the
// legacy serial cell scan vs the two-pass block-local table-driven
// extractor, serial and pooled, plus the warm topology-reuse path the
// temporal reconstructor hits when block signs are unchanged between
// frames. All variants run over the same sampled body grid so the
// ratios isolate the extraction algorithm from field evaluation.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/blocksampler.hpp"
#include "semholo/mesh/isosurface.hpp"
#include "semholo/recon/keypoint_recon.hpp"

namespace semholo {
namespace {

// One sampled grid per resolution, shared by every benchmark variant
// (sampling a 128^3 body field is far more expensive than extraction).
struct Workload {
    std::unique_ptr<mesh::VoxelGrid> grid;
    std::unique_ptr<mesh::BlockSampler> sampler;
};

Workload& workload(int res) {
    static std::map<int, Workload> cache;
    Workload& w = cache[res];
    if (!w.grid) {
        const body::Pose pose =
            body::MotionGenerator(body::MotionKind::Talk).poseAt(0.5);
        const body::BodyField body =
            body::makeBodyField(pose, body::Skeleton::canonical(), {});
        const int block = recon::resolveBlockSize(0, res);
        w.grid = std::make_unique<mesh::VoxelGrid>(body.bounds,
                                                   mesh::Vec3i{res, res, res});
        w.sampler = std::make_unique<mesh::BlockSampler>(*w.grid, block);
        mesh::FieldSampleOptions sampling;
        sampling.blockSize = block;
        sampling.lipschitz = body.lipschitz;
        sampling.margin = body.margin;
        sampling.certificate = [&body](geom::Vec3f c, float r) {
            return body.certificate(c, r, 0.0f);
        };
        sampling.batch = body.batch;
        w.sampler->sample(body.field, sampling);
    }
    return w;
}

mesh::IsoSurfaceOptions reconOptions() {
    mesh::IsoSurfaceOptions opt;  // recon-path config: weld elided
    opt.weldVertices = false;
    return opt;
}

void BM_ExtractLegacy(benchmark::State& state) {
    Workload& w = workload(static_cast<int>(state.range(0)));
    const auto opt = reconOptions();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            mesh::extractIsoSurfaceLegacy(*w.grid, *w.sampler, opt));
}
BENCHMARK(BM_ExtractLegacy)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_ExtractBlockSerial(benchmark::State& state) {
    Workload& w = workload(static_cast<int>(state.range(0)));
    const auto opt = reconOptions();
    for (auto _ : state)
        benchmark::DoNotOptimize(mesh::extractIsoSurface(
            *w.grid, w.sampler.get(), opt, nullptr, nullptr));
}
BENCHMARK(BM_ExtractBlockSerial)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_ExtractBlockPooled(benchmark::State& state) {
    Workload& w = workload(static_cast<int>(state.range(0)));
    core::ThreadPool pool(static_cast<std::size_t>(state.range(1)));
    auto opt = reconOptions();
    opt.pool = &pool;
    for (auto _ : state)
        benchmark::DoNotOptimize(mesh::extractIsoSurface(
            *w.grid, w.sampler.get(), opt, nullptr, nullptr));
}
BENCHMARK(BM_ExtractBlockPooled)
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ExtractTopologyReuse(benchmark::State& state) {
    Workload& w = workload(static_cast<int>(state.range(0)));
    const auto opt = reconOptions();
    mesh::IsoExtractCache cache;
    // Cold fill outside the timed loop; every timed pass re-extracts the
    // unchanged grid, so all live blocks hit the sign-unchanged reuse
    // path (only vertex positions are recomputed).
    mesh::extractIsoSurface(*w.grid, w.sampler.get(), opt, &cache, nullptr);
    mesh::ExtractStats stats;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            mesh::extractIsoSurface(*w.grid, w.sampler.get(), opt, &cache, &stats));
    state.counters["reused_blocks"] =
        static_cast<double>(stats.reusedTopologyBlocks);
}
BENCHMARK(BM_ExtractTopologyReuse)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace semholo

BENCHMARK_MAIN();
