// Ablation G (section 2.2): the vector-semantics (autoencoder) baseline
// the paper dismisses. A PCA autoencoder fitted to a training motion is
// compared against the keypoint channel on payload size and on in- vs
// out-of-distribution quality, quantifying "limited compression ratio
// and poor visual quality".
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/mesh/metrics.hpp"

using namespace semholo;

namespace {

core::FrameContext frameFor(const body::BodyModel& model, body::MotionKind kind,
                            double t) {
    core::FrameContext ctx;
    ctx.pose = body::MotionGenerator(kind, model.shape()).poseAt(t);
    ctx.model = &model;
    return ctx;
}

}  // namespace

int main() {
    bench::banner("Ablation G: vector semantics (PCA autoencoder) vs keypoints");

    const body::BodyModel model(body::ShapeParams{}, 48);

    core::VectorChannelOptions vopt;
    vopt.latentDim = 48;
    vopt.trainingFrames = 90;
    vopt.trainingMotion = body::MotionKind::Talk;
    auto vector = core::makeVectorChannel(model, vopt);

    core::KeypointChannelOptions kopt;
    kopt.reconResolution = 64;
    kopt.shape = model.shape();
    auto keypoint = core::makeKeypointChannel(kopt);

    bench::Table table({"channel", "motion", "bytes/frame", "chamfer mm",
                        "hausdorff mm"});
    for (const auto kind : {body::MotionKind::Talk, body::MotionKind::Wave,
                            body::MotionKind::Collaborate}) {
        for (auto* entry : {&vector, &keypoint}) {
            auto& channel = *entry;
            double bytes = 0.0, chamfer = 0.0, hausdorff = 0.0;
            int n = 0;
            for (const double t : {0.3, 1.1, 2.4}) {
                const auto ctx = frameFor(model, kind, t);
                const auto encoded = channel->encode(ctx);
                const auto decoded = channel->decode(encoded);
                if (!decoded.valid) continue;
                const auto err =
                    mesh::compareMeshes(ctx.groundTruth(), decoded.mesh, 6000);
                bytes += static_cast<double>(encoded.bytes());
                chamfer += err.chamfer;
                hausdorff += err.hausdorff;
                ++n;
            }
            if (n == 0) continue;
            const char* note =
                kind == body::MotionKind::Talk ? " (in-distribution)" : "";
            table.addRow({channel->name(),
                          std::string(body::motionName(kind)) + note,
                          bench::fmt("%.0f", bytes / n),
                          bench::fmt("%.2f", chamfer / n * 1000.0),
                          bench::fmt("%.1f", hausdorff / n * 1000.0)});
        }
    }
    table.print();

    std::printf(
        "\nShape check (section 2.2): the autoencoder matches keypoints on\n"
        "payload size and beats them on the motion it was trained on, but its\n"
        "linear latent cannot represent unseen articulation — worst-case error\n"
        "explodes on wave/collaborate, while the keypoint channel is motion-\n"
        "agnostic. This is why SemHolo builds on structural semantics instead.\n");
    return 0;
}
