// Regenerates Figure 2: visual quality of meshes reconstructed from
// keypoints at increasing output resolutions, against the ground-truth
// capture mesh (RGB-D textured mesh in the paper).
//
// The paper shows the comparison qualitatively; we quantify it with
// Chamfer distance, Hausdorff distance and normal consistency, and
// verify the two paper observations: (1) detail increases with
// resolution, (2) 512-class output ~ 1024-class output because clothing
// folds are unrecoverable from keypoints.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/recon/keypoint_recon.hpp"

using namespace semholo;

int main() {
    bench::banner("Figure 2: reconstruction quality vs output resolution");

    const body::BodyModel model(body::ShapeParams{}, 110);
    const body::Pose pose =
        body::MotionGenerator(body::MotionKind::Talk, model.shape()).poseAt(0.6);
    const mesh::TriMesh groundTruth = model.deform(pose);

    bench::Table table({"resolution", "chamfer (mm)", "hausdorff (mm)",
                        "normal consistency", "triangles", "paper observation"});
    double prevChamfer = 0.0;
    for (const int res : {16, 24, 32, 64, 128, 192}) {
        recon::ReconstructionOptions opt;
        opt.resolution = res;
        opt.shape = model.shape();
        opt.device = recon::DeviceProfile::host();
        const auto recon = recon::reconstructFromPose(pose, opt);
        const auto err = mesh::compareMeshes(groundTruth, recon.mesh, 20000);
        const char* note = res <= 24    ? "coarse blobs (Fig 2b)"
                           : res <= 64  ? "limbs resolved (Fig 2c)"
                           : res == 128 ? "hands/face contours (Fig 2d)"
                                        : "saturating: folds missing";
        table.addRow({std::to_string(res), bench::fmt("%.2f", err.chamfer * 1000.0),
                      bench::fmt("%.1f", err.hausdorff * 1000.0),
                      bench::fmt("%.3f", err.normalConsistency),
                      std::to_string(recon.mesh.triangleCount()), note});
        if (res == 128) prevChamfer = err.chamfer;
    }
    table.print();

    // Saturation check corresponding to "512 is similar to 1024".
    recon::ReconstructionOptions hi;
    hi.resolution = 192;
    hi.shape = model.shape();
    hi.device = recon::DeviceProfile::host();
    const auto reconHi = recon::reconstructFromPose(pose, hi);
    const double hiChamfer =
        mesh::compareMeshes(groundTruth, reconHi.mesh, 20000).chamfer;
    std::printf(
        "\nSaturation: chamfer improves only %.0f%% from 128 to 192 "
        "(paper: 512 ~= 1024); the clothing-fold floor dominates.\n",
        100.0 * (prevChamfer - hiChamfer) / prevChamfer);
    return 0;
}
