// Ablation D (section 2.3): the two 3D keypoint detection routes —
// per-view 2D detection + learned lifting vs direct RGB-D extraction —
// compared on accuracy, dropout and simulated inference latency.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/capture/keypoints.hpp"

using namespace semholo;

int main() {
    bench::banner("Ablation D: 2D+lifting vs direct RGB-D keypoint detection");

    const body::BodyModel model(body::ShapeParams{}, 72);
    capture::RigConfig rigCfg;
    rigCfg.addNoise = false;  // detector noise modelled separately
    const capture::CaptureRig rig(rigCfg);

    const body::MotionGenerator gen(body::MotionKind::Collaborate, model.shape());

    double errLifted = 0.0, errDirect = 0.0;
    double latLifted = 0.0, latDirect = 0.0;
    double confLifted = 0.0, confDirect = 0.0;
    constexpr int kFrames = 6;
    for (int f = 0; f < kFrames; ++f) {
        const body::Pose pose = gen.poseAt(f * 0.4);
        const auto frames = rig.capture(model.deform(pose), 100 + f);
        const auto lifted = capture::detectKeypoints2DLifted(
            rig, frames, pose, static_cast<std::uint64_t>(f) + 1);
        const auto direct = capture::detectKeypoints3DDirect(
            rig, frames, pose, static_cast<std::uint64_t>(f) + 1);
        errLifted += capture::keypointError(lifted, pose);
        errDirect += capture::keypointError(direct, pose);
        latLifted += lifted.simulatedLatencyMs;
        latDirect += direct.simulatedLatencyMs;
        for (const float c : lifted.confidence) confLifted += c;
        for (const float c : direct.confidence) confDirect += c;
    }
    const double norm = 1.0 / kFrames;
    const double confNorm = norm / static_cast<double>(body::kJointCount);

    bench::Table table({"route", "mean error (mm)", "mean confidence",
                        "sim latency (ms)", "input"});
    table.addRow({"2D detection + lifting", bench::fmt("%.1f", errLifted * norm * 1e3),
                  bench::fmt("%.2f", confLifted * confNorm),
                  bench::fmt("%.1f", latLifted * norm), "RGB only"});
    table.addRow({"direct 3D from RGB-D", bench::fmt("%.1f", errDirect * norm * 1e3),
                  bench::fmt("%.2f", confDirect * confNorm),
                  bench::fmt("%.1f", latDirect * norm), "RGB-D"});
    table.print();

    std::printf(
        "\nShape check (section 2.3): the direct RGB-D route is both faster and\n"
        "more accurate than 2D-then-lift, at the cost of requiring depth sensors.\n");
    return 0;
}
