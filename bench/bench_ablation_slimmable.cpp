// Ablation B (section 3.2): slimmable-NeRF rate adaptation. A single
// weight-shared field serves multiple width fractions; narrower
// sub-networks fine-tune and render faster and ship fewer parameters,
// matching lower delivered image resolutions.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/capture/rasterizer.hpp"
#include "semholo/nerf/trainer.hpp"

using namespace semholo;

namespace {

std::vector<nerf::TrainView> renderViews(const body::BodyModel& model,
                                         const body::Pose& pose, int w, int h) {
    std::vector<nerf::TrainView> views;
    const mesh::TriMesh gt = model.deform(pose);
    for (int i = 0; i < 3; ++i) {
        const float angle = 2.0f * static_cast<float>(M_PI) * i / 3.0f;
        const geom::Vec3f eye{2.6f * std::sin(angle), 0.2f, 2.6f * std::cos(angle)};
        const auto cam = geom::Camera::lookAt(
            eye, {0, 0, 0}, {0, 1, 0}, geom::CameraIntrinsics::fromFov(w, h, 0.8f));
        views.push_back({cam, capture::rasterize(gt, cam).color});
    }
    return views;
}

}  // namespace

int main() {
    bench::banner("Ablation B: slimmable NeRF width vs latency / size / quality");

    const body::BodyModel model(body::ShapeParams{}, 72);
    const body::Pose pose =
        body::MotionGenerator(body::MotionKind::Talk, model.shape()).poseAt(0.3);

    // One shared slimmable field, trained with the sandwich rule: each
    // pretraining step alternates between the narrowest and the full
    // sub-network so every width stays usable.
    nerf::FieldConfig fc;
    fc.hiddenWidth = 48;
    fc.hiddenLayers = 3;
    nerf::RadianceField field(fc);

    struct Level {
        float width;
        int imgW, imgH;
    };
    const std::vector<Level> ladder{{0.25f, 16, 12}, {0.5f, 24, 18}, {1.0f, 32, 24}};

    // Sandwich pretraining on the highest-resolution views.
    {
        const auto views = renderViews(model, pose, 32, 24);
        for (const float frac : {1.0f, 0.25f, 1.0f, 0.5f}) {
            nerf::TrainerConfig tc;
            tc.render.near = 1.3f;
            tc.render.far = 3.9f;
            tc.render.samplesPerRay = 20;
            tc.render.widthFraction = frac;
            tc.raysPerStep = 96;
            nerf::NerfTrainer trainer(field, tc);
            trainer.pretrain(views, 40);
        }
    }

    bench::Table table({"width", "model KB", "fine-tune ms (10 steps)",
                        "render ms", "PSNR (dB)", "suits resolution"});
    for (const Level& level : ladder) {
        nerf::TrainerConfig tc;
        tc.render.near = 1.3f;
        tc.render.far = 3.9f;
        tc.render.samplesPerRay = 20;
        tc.render.widthFraction = level.width;
        tc.raysPerStep = 96;
        nerf::NerfTrainer trainer(field, tc);

        const auto views = renderViews(model, pose, level.imgW, level.imgH);
        const auto ft = trainer.pretrain(views, 10);

        const auto t0 = std::chrono::steady_clock::now();
        const double psnr = trainer.evaluatePSNR(views[0]);
        const double renderMs = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();

        char res[32];
        std::snprintf(res, sizeof(res), "%dx%d", level.imgW, level.imgH);
        table.addRow({bench::fmt("%.2f", level.width),
                      bench::fmt("%.1f", static_cast<double>(field.modelBytes(
                                             level.width)) / 1024.0),
                      bench::fmt("%.0f", ft.wallMs), bench::fmt("%.0f", renderMs),
                      bench::fmt("%.1f", psnr), res});
    }
    table.print();

    std::printf(
        "\nShape check: sub-network size, fine-tune time and render time all\n"
        "shrink with width while PSNR degrades gracefully — one model serving\n"
        "the whole rate ladder, as section 3.2 proposes.\n");
    return 0;
}
