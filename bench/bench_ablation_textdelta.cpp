// Ablation C (section 3.3): full-frame vs inter-frame delta captioning.
// Exploiting the continuity of human motion, delta frames carry only the
// changed cells, cutting both bytes and the simulated captioning /
// text-to-3D inference.
#include <cstdio>

#include "bench_util.hpp"
#include "semholo/body/animation.hpp"
#include "semholo/textsem/delta.hpp"

using namespace semholo;

int main() {
    bench::banner("Ablation C: text semantics, full-frame vs delta captioning");

    bench::Table table({"motion", "mode", "bytes/frame", "cells/frame",
                        "extract ms (sim)", "recon ms (sim)"});

    for (const auto kind :
         {body::MotionKind::Idle, body::MotionKind::Talk, body::MotionKind::Wave,
          body::MotionKind::Collaborate}) {
        const body::MotionGenerator gen(kind);
        const auto poses = gen.sequence(60, 30.0);

        // Full-frame mode: every frame re-captions every cell.
        {
            double bytes = 0.0;
            textsem::DeltaEncoder enc;
            for (const auto& pose : poses)
                bytes += static_cast<double>(
                    enc.encode(pose, /*forceKeyframe=*/true).wireBytes());
            table.addRow({motionName(kind), "full", bench::fmt("%.0f", bytes / 60.0),
                          std::to_string(textsem::kCellCount),
                          bench::fmt("%.0f", textsem::captionCostMs(textsem::kCellCount)),
                          bench::fmt("%.0f", textsem::reconCostMs(textsem::kCellCount))});
        }
        // Delta mode.
        {
            double bytes = 0.0, cells = 0.0, extract = 0.0, recon = 0.0;
            textsem::DeltaEncoder enc;
            for (const auto& pose : poses) {
                const auto packet = enc.encode(pose);
                bytes += static_cast<double>(packet.wireBytes());
                cells += static_cast<double>(packet.cellsEncoded());
                extract += textsem::captionCostMs(packet.cellsEncoded());
                recon += textsem::reconCostMs(packet.cellsEncoded());
            }
            table.addRow({motionName(kind), "delta", bench::fmt("%.0f", bytes / 60.0),
                          bench::fmt("%.1f", cells / 60.0),
                          bench::fmt("%.0f", extract / 60.0),
                          bench::fmt("%.0f", recon / 60.0)});
        }
    }
    table.print();

    std::printf(
        "\nShape check: delta captioning cuts bytes and simulated inference in\n"
        "proportion to how localised the motion is (idle ~ everything saved,\n"
        "collaborate ~ least saved), validating the section 3.3 proposal.\n");
    return 0;
}
