// Conference bench: the SFU topology with cross-user bandwidth
// arbitration, on the congested 3-user scenario where uncoordinated
// closed loops go unfair. Three adaptive-mesh participants share an
// 8 Mbps server-ingest bottleneck with a scripted outage and a bandwidth
// collapse; each run uses the same per-user DegradationPolicy, and the
// rows differ only in the BandwidthArbiter strategy:
//
//   none       N independent loops fight over the queue; whoever's
//              policy recovers first grabs the headroom and the rest
//              stay degraded (first-to-recover-wins).
//   max-min    the server water-fills the instantaneous capacity across
//              users each tick; everyone's target collapses together
//              during faults and recovers together after.
//   prop-fair  shares weighted by inverse historical throughput, so
//              users the link has been starving get priority.
//
// A second section turns the downlink fan-out on and checks the SFU
// accounting: per-viewer bytes sum to the server's fan-out totals and
// packets are conserved on every uplink and downlink.
//
// A third section exercises the event-driven stage-graph runtime on a
// straggler mix (synthetic channels with heterogeneous encode/decode
// costs) and gates the deterministic schedule comparison: with pipeline
// depth 4 the stage graph must beat the legacy per-tick barrier by at
// least 1.3x in simulated tick throughput and strictly shrink worker
// idle time, while depth 1 collapses back to barrier performance.
// Results (per-uplink and per-downlink shares included) land in
// BENCH_conference.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "semholo/core/conference.hpp"

using namespace semholo;

namespace {

constexpr std::size_t kUsers = 3;
constexpr std::size_t kFrames = 90;

// The congested scenario from the multi-user ablation: a link too
// narrow for everyone's top rung, plus an outage and a collapse.
core::SessionConfig congestedSession() {
    core::SessionConfig cfg;
    cfg.frames = kFrames;
    cfg.fps = 30.0;
    cfg.timing = core::TimingModel::Simulated;
    cfg.transfer.reliable = false;
    cfg.link.bandwidth = net::BandwidthTrace::constant(8e6);
    cfg.link.propagationDelayS = 0.01;
    cfg.link.jitterStddevS = 0.0;
    cfg.link.queueCapacityBytes = 16 * 1024;
    cfg.link.faults.outages.push_back({1.0, 0.5});
    cfg.link.faults.collapses.push_back({2.0, 1.0, 0.08});
    cfg.degradation.enabled = true;
    cfg.degradation.maxLevel = 3;
    cfg.degradation.downgradeAfter = 2;
    cfg.degradation.upgradeAfter = 8;
    return cfg;
}

core::ConferenceConfig congestedConference(core::ArbiterStrategy strategy,
                                           bool downlinks) {
    core::ConferenceConfig conf;
    conf.session = congestedSession();
    conf.arbiter.strategy = strategy;
    conf.enableDownlinks = downlinks;
    conf.downlink.bandwidth = net::BandwidthTrace::constant(50e6);
    conf.downlink.propagationDelayS = 0.01;
    conf.downlink.queueCapacityBytes = 512 * 1024;
    conf.participants.resize(kUsers);
    core::AdaptiveMeshOptions meshOpt;
    meshOpt.ladderTriangles = {400, 1500, 6000};
    for (auto& p : conf.participants)
        p.channelFactory = [meshOpt](const body::BodyModel&) {
            return core::makeAdaptiveMeshChannel(meshOpt);
        };
    return conf;
}

std::size_t deliveredFrames(const core::MultiSessionStats& s) {
    std::size_t delivered = 0;
    for (const auto& u : s.perUser) delivered += u.deliveredFrames;
    return delivered;
}

// The stage-graph straggler scenario: one encode-heavy user, one
// decode-heavy user, two in between. The legacy barrier pays
// max(encode) + max(decode) per tick; per-user chains pay only their
// own costs, so overlapping ticks recovers the difference.
struct StragglerCost {
    double extractMs;
    double reconMs;
};
const std::vector<StragglerCost>& stragglerCosts() {
    static const std::vector<StragglerCost> costs{
        {12.0, 2.0}, {2.0, 12.0}, {6.0, 6.0}, {3.0, 3.0}};
    return costs;
}

core::ConferenceConfig stragglerConference(std::size_t workers,
                                           std::size_t depth) {
    core::ConferenceConfig conf;
    conf.session = congestedSession();
    conf.session.frames = 60;
    conf.session.workers = workers;
    conf.session.link.queueCapacityBytes = 32 * 1024;
    conf.arbiter.strategy = core::ArbiterStrategy::MaxMin;
    conf.enableDownlinks = true;
    conf.downlink.bandwidth = net::BandwidthTrace::constant(50e6);
    conf.downlink.propagationDelayS = 0.01;
    conf.downlink.queueCapacityBytes = 512 * 1024;
    conf.pipelineDepth = depth;
    for (const StragglerCost& c : stragglerCosts()) {
        core::Participant p;
        p.channel = {"synthetic",
                     {{"payloadBytes", 24 * 1024},
                      {"simulatedExtractMs", c.extractMs},
                      {"simulatedReconMs", c.reconMs}}};
        conf.participants.push_back(std::move(p));
    }
    return conf;
}

void pipelineJson(core::telemetry::JsonWriter& json, const char* name,
                  const core::PipelineStats& p) {
    json.beginObject(name)
        .field("pipeline_depth", static_cast<std::uint64_t>(p.pipelineDepth))
        .field("workers", static_cast<std::uint64_t>(p.workers))
        .field("max_ticks_in_flight",
               static_cast<std::uint64_t>(p.maxTicksInFlight))
        .field("simulated_stage_graph_ms", p.simulatedStageGraphMs)
        .field("simulated_barrier_ms", p.simulatedBarrierMs)
        .field("simulated_speedup", p.simulatedSpeedup)
        .field("simulated_idle_ms", p.simulatedIdleMs)
        .field("simulated_barrier_idle_ms", p.simulatedBarrierIdleMs)
        .endObject();
}

}  // namespace

int main() {
    bench::banner("Conference: bandwidth arbitration on a congested uplink");

    const body::BodyModel model(body::ShapeParams{}, 48);

    struct Row {
        const char* label;
        core::ArbiterStrategy strategy;
        core::MultiSessionStats stats;
    };
    std::vector<Row> rows{
        {"degradation only", core::ArbiterStrategy::None, {}},
        {"max-min arbiter", core::ArbiterStrategy::MaxMin, {}},
        {"prop-fair arbiter", core::ArbiterStrategy::ProportionalFair, {}},
    };
    for (Row& row : rows)
        row.stats = core::runConference(
            congestedConference(row.strategy, /*downlinks=*/false), model);

    bench::Table table({"strategy", "delivered", "aggregate Mbps",
                        "fairness (Jain)", "per-user delivery %"});
    for (const Row& row : rows) {
        std::string perUser;
        for (const core::UserFairnessStats& f : row.stats.fairness) {
            if (!perUser.empty()) perUser += " / ";
            perUser += bench::fmt("%.0f", f.deliveryRatio * 100.0);
        }
        table.addRow({row.label,
                      std::to_string(deliveredFrames(row.stats)) + "/" +
                          std::to_string(kUsers * kFrames),
                      bench::fmt("%.2f", row.stats.aggregateMbps),
                      bench::fmt("%.3f", row.stats.fairnessIndex), perUser});
    }
    table.print();

    const core::MultiSessionStats& noArb = rows[0].stats;
    const core::MultiSessionStats& maxMin = rows[1].stats;

    bench::Table fairTable({"user", "delivered", "target Mbps", "Mbps", "share",
                            "degr", "upgr", "final lvl"});
    for (const core::UserFairnessStats& f : maxMin.fairness) {
        fairTable.addRow({std::to_string(f.user),
                          std::to_string(f.deliveredFrames) + "/" +
                              std::to_string(f.capturedFrames),
                          bench::fmt("%.2f", f.targetRateMbps),
                          bench::fmt("%.2f", f.bandwidthMbps),
                          bench::fmt("%.2f", f.bandwidthShare),
                          std::to_string(f.degradations),
                          std::to_string(f.upgrades),
                          std::to_string(f.finalDegradationLevel)});
    }
    fairTable.print();

    // SFU fan-out: the same max-min conference with downlinks on. The
    // server forwards each delivered uplink frame to the other two
    // viewers; the accounting must conserve bytes and packets exactly.
    bench::banner("SFU fan-out: per-viewer downlink accounting");
    const auto sfu = core::runConference(
        congestedConference(core::ArbiterStrategy::MaxMin, /*downlinks=*/true),
        model);

    std::uint64_t fanoutBytes = 0, fanoutFrames = 0;
    bool conserved = true;
    for (const core::DownlinkStats& d : sfu.downlinks) {
        fanoutBytes += d.bytesForwarded;
        fanoutFrames += d.framesForwarded;
        conserved = conserved &&
                    d.packets == d.packetsDelivered + d.packetsUnrecovered;
        std::uint64_t streamBytes = 0;
        for (const core::DownlinkStreamStats& s : d.streams) {
            streamBytes += s.bytesForwarded;
            conserved = conserved &&
                        s.packets == s.packetsDelivered + s.packetsUnrecovered;
        }
        conserved = conserved && streamBytes == d.bytesForwarded;
    }
    for (const core::SessionStats& u : sfu.perUser) {
        const auto& c = u.telemetry.counters;
        conserved = conserved &&
                    c.packets == c.packetsDelivered + c.packetsUnrecovered;
    }
    conserved = conserved && fanoutBytes == sfu.serverFanoutBytes &&
                fanoutFrames == sfu.serverFanoutFrames;

    bench::Table sfuTable(
        {"viewer", "frames fwd", "frames dlv", "MB fwd", "share", "xfer ms"});
    for (const core::DownlinkStats& d : sfu.downlinks)
        sfuTable.addRow({std::to_string(d.viewer),
                         std::to_string(d.framesForwarded),
                         std::to_string(d.framesDelivered),
                         bench::fmt("%.2f",
                                    static_cast<double>(d.bytesForwarded) / 1e6),
                         bench::fmt("%.2f", d.fanoutShare),
                         bench::fmt("%.1f", d.meanTransferMs)});
    sfuTable.print();
    std::printf("\nServer fan-out: %llu frames, %.2f MB; accounting %s\n",
                static_cast<unsigned long long>(sfu.serverFanoutFrames),
                static_cast<double>(sfu.serverFanoutBytes) / 1e6,
                conserved ? "conserved" : "LEAKED (engine bug)");

    // Stage-graph pipelining: the same engine at pipeline depth 1
    // (barrier-equivalent) vs depth 4, both at 8 workers, on the
    // straggler mix. The schedule comparison is deterministic — a list
    // schedule of the recorded simulated stage costs — so the gate is
    // exact and machine-independent.
    bench::banner("Stage graph: pipelined straggler conference vs barrier");
    const auto barrierRun =
        core::runConference(stragglerConference(8, 1), model);
    const auto pipelinedRun =
        core::runConference(stragglerConference(8, 4), model);
    const core::PipelineStats& pBar = barrierRun.pipeline;
    const core::PipelineStats& pPipe = pipelinedRun.pipeline;

    bench::Table pipeTable({"depth", "ticks in flight", "graph ms",
                            "barrier ms", "speedup", "idle ms"});
    for (const core::PipelineStats* p : {&pBar, &pPipe})
        pipeTable.addRow({std::to_string(p->pipelineDepth),
                          std::to_string(p->maxTicksInFlight),
                          bench::fmt("%.1f", p->simulatedStageGraphMs),
                          bench::fmt("%.1f", p->simulatedBarrierMs),
                          bench::fmt("%.2fx", p->simulatedSpeedup),
                          bench::fmt("%.1f", p->simulatedIdleMs)});
    pipeTable.print();

    // Gate: depth 4 clears 1.3x over the barrier schedule and strictly
    // shrinks idle time; depth 1 stays within noise of the barrier.
    const bool pipelined = pPipe.simulatedSpeedup >= 1.3 &&
                           pPipe.simulatedIdleMs < pPipe.simulatedBarrierIdleMs &&
                           pBar.simulatedSpeedup < 1.05;
    std::printf(
        "\nPipelining %s: depth 4 speedup %.2fx (gate 1.30x), idle "
        "%.1f -> %.1f ms, depth 1 speedup %.2fx\n",
        pipelined ? "engaged" : "FAILED", pPipe.simulatedSpeedup,
        pPipe.simulatedBarrierIdleMs, pPipe.simulatedIdleMs,
        pBar.simulatedSpeedup);

    // Acceptance: the arbiter must make the congested conference fair
    // (Jain >= 0.95, vs ~0.80 for uncoordinated loops) without costing
    // aggregate delivery.
    const bool fair = maxMin.fairnessIndex >= 0.95;
    const bool noRegression = deliveredFrames(maxMin) >= deliveredFrames(noArb);
    std::printf(
        "\nArbiter %s: Jain %.3f -> %.3f, delivered %zu -> %zu of %zu\n",
        fair && noRegression ? "engaged" : "FAILED",
        noArb.fairnessIndex, maxMin.fairnessIndex, deliveredFrames(noArb),
        deliveredFrames(maxMin), kUsers * kFrames);

    core::telemetry::JsonWriter json;
    json.beginObject();
    json.field("schema_version", core::telemetry::kBenchSchemaVersion);
    json.field("bench", std::string("conference"));
    json.field("users", static_cast<std::uint64_t>(kUsers));
    json.field("frames", static_cast<std::uint64_t>(kFrames));
    json.beginArray("strategies");
    for (const Row& row : rows) {
        json.beginObject()
            .field("strategy", std::string(row.label))
            .field("delivered_frames",
                   static_cast<std::uint64_t>(deliveredFrames(row.stats)))
            .raw("stats", core::toJsonValue(row.stats))
            .endObject();
    }
    json.endArray();
    json.raw("sfu_fanout", core::toJsonValue(sfu));
    json.beginObject("straggler_pipeline");
    json.field("users",
               static_cast<std::uint64_t>(stragglerCosts().size()));
    json.field("gate_speedup", 1.3);
    json.raw("passed", pipelined ? "true" : "false");
    pipelineJson(json, "depth1", pBar);
    pipelineJson(json, "depth4", pPipe);
    json.endObject();
    json.endObject();
    {
        std::FILE* f = std::fopen("BENCH_conference.json", "w");
        if (f != nullptr) {
            std::fputs(json.str().c_str(), f);
            std::fputs("\n", f);
            std::fclose(f);
            std::printf("wrote BENCH_conference.json\n");
        }
    }

    std::printf(
        "\nShape check: uncoordinated per-user loops leave the congested\n"
        "uplink split unevenly (first to recover wins); the max-min arbiter\n"
        "hands every participant the same target each tick, so the ladders\n"
        "settle on the rung the fair share affords and delivery equalises\n"
        "without losing aggregate frames. With stragglers, de-staggering\n"
        "the per-user stage chains across ticks reclaims the barrier's\n"
        "tail wait.\n");
    return fair && noRegression && conserved && pipelined ? 0 : 1;
}
