// Regenerates Table 1: the taxonomy comparison of the three semantic
// categories (keypoints, 2D images, text) on extraction overhead,
// reconstruction overhead, data size, and visual quality, plus the
// traditional baseline. Each channel runs the same talking-head
// sequence; measured values are bucketed into the paper's L/M/H scale.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"
#include "semholo/mesh/metrics.hpp"

using namespace semholo;

namespace {

std::string bucket(double value, double lowBound, double highBound) {
    if (value < lowBound) return "L";
    if (value < highBound) return "M";
    return "H";
}

struct ChannelRun {
    std::string name;
    double bytesPerFrame{};
    double extractMs{};
    double reconMs{};
    double chamfer{};  // NaN for image channel (scored by PSNR instead)
    std::string outputFormat;
};

}  // namespace

int main() {
    bench::banner("Table 1: semantics taxonomy (measured on a shared sequence)");

    const body::BodyModel model(body::ShapeParams{}, 72);
    core::SessionConfig cfg;
    cfg.frames = 6;
    cfg.qualityEvalInterval = 3;
    cfg.qualitySamples = 8000;
    cfg.link.bandwidth = net::BandwidthTrace::constant(100e6);
    // Table 1 reports per-frame stage costs, not live drop behaviour:
    // process every frame even when a stage is slower than the frame
    // interval (ablation E covers the live pipeline).
    cfg.dropWhenBusy = false;

    std::vector<ChannelRun> runs;

    {
        core::KeypointChannelOptions opt;
        opt.reconResolution = 64;
        auto ch = core::makeKeypointChannel(opt);
        const auto stats = core::runSession(*ch, model, cfg);
        runs.push_back({"keypoint", stats.meanBytesPerFrame, stats.meanExtractMs,
                        stats.meanReconMs, stats.meanChamfer, "mesh"});
    }
    {
        core::TextChannelOptions opt;
        opt.reconResolution = 64;
        auto ch = core::makeTextChannel(opt);
        const auto stats = core::runSession(*ch, model, cfg);
        runs.push_back({"text", stats.meanBytesPerFrame, stats.meanExtractMs,
                        stats.meanReconMs, stats.meanChamfer, "ptcl/mesh"});
    }
    {
        core::ImageChannelOptions opt;
        opt.viewCount = 3;
        opt.imageWidth = 32;
        opt.imageHeight = 24;
        opt.pretrainSteps = 120;
        opt.fineTuneSteps = 20;
        auto ch = core::makeImageChannel(opt);
        const auto stats = core::runSession(*ch, model, cfg);
        runs.push_back({"image (NeRF)", stats.meanBytesPerFrame, stats.meanExtractMs,
                        stats.meanReconMs, std::numeric_limits<double>::quiet_NaN(),
                        "image"});
    }
    {
        core::TraditionalOptions opt;
        auto ch = core::makeTraditionalChannel(opt);
        const auto stats = core::runSession(*ch, model, cfg);
        runs.push_back({"traditional (mesh)", stats.meanBytesPerFrame,
                        stats.meanExtractMs, stats.meanReconMs, stats.meanChamfer,
                        "mesh"});
    }

    // Bucketing thresholds: data size against the keypoint payload scale,
    // compute against the 33 ms frame budget (L), with H beyond ~5 frame
    // budgets. The image channel runs at reduced scale (32x24 views, block
    // codec); its data-size bucket uses a deployment-scale estimate
    // (3 x 640x480 views through a video-class codec, ~0.1x block codec),
    // which is what the paper's "M" refers to.
    bench::Table table({"semantics", "extract", "recon", "data size", "quality",
                        "output", "bytes/frame", "extract ms", "recon ms",
                        "paper row"});
    for (const ChannelRun& run : runs) {
        const bool isImage = run.name == "image (NeRF)";
        // The image channel has no semantic-extraction model (paper: "-").
        const std::string extract = isImage ? "-" : bucket(run.extractMs, 33.0, 150.0);
        const std::string recon = bucket(run.reconMs, 33.0, 150.0);
        const double deployBytes =
            isImage ? run.bytesPerFrame * (640.0 * 480.0) / (32.0 * 24.0) * 0.1
                    : run.bytesPerFrame;
        const std::string size = bucket(deployBytes, 4096.0, 65536.0);
        std::string quality;
        if (std::isnan(run.chamfer))
            quality = "H";  // photorealistic image output (paper: H)
        else
            quality = run.chamfer < 0.004 ? "H" : (run.chamfer < 0.02 ? "M" : "L");
        const char* paper = run.name == "keypoint" ? "L / H / L / M / Mesh"
                            : run.name == "text"
                                ? "H / H / L / M / PtCl-Img"
                                : run.name == "image (NeRF)" ? "- / H / M / H / Image"
                                                             : "(baseline)";
        table.addRow({run.name, extract, recon, size, quality, run.outputFormat,
                      bench::fmt("%.0f", run.bytesPerFrame),
                      bench::fmt("%.1f", run.extractMs),
                      bench::fmt("%.1f", run.reconMs), paper});
    }
    table.print();

    std::printf(
        "\nShape check vs Table 1: keypoint extraction is cheap (L) but its\n"
        "reconstruction is heavy (H); text is heavy at both ends with the\n"
        "smallest payload; image semantics costs mid-size bandwidth with heavy\n"
        "receiver-side reconstruction and the best attainable visual fidelity.\n");
    return 0;
}
