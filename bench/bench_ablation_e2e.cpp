// Ablation E: end-to-end latency budget per semantic channel across link
// bandwidths — where each channel's time goes (extract / network /
// reconstruct) and whether it meets the paper's <100 ms interactive
// bound and the 25 Mbps US-broadband baseline (section 2.1).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"

using namespace semholo;

int main() {
    bench::banner("Ablation E: end-to-end latency budget vs link bandwidth");

    const body::BodyModel model(body::ShapeParams{}, 72);

    struct ChannelSpec {
        std::string label;
        std::function<std::unique_ptr<core::SemanticChannel>()> make;
    };
    const std::vector<ChannelSpec> channels{
        {"keypoint(res=48)",
         [] {
             core::KeypointChannelOptions opt;
             opt.reconResolution = 48;
             return core::makeKeypointChannel(opt);
         }},
        {"text(res=48)",
         [] {
             core::TextChannelOptions opt;
             opt.reconResolution = 48;
             return core::makeTextChannel(opt);
         }},
        {"traditional+codec",
         [] { return core::makeTraditionalChannel({true, false}); }},
        {"traditional raw",
         [] { return core::makeTraditionalChannel({false, false}); }},
        {"traditional ABR (LOD)",
         [] { return core::makeAdaptiveMeshChannel({}); }},
    };

    bench::Table table({"channel", "link Mbps", "Mbps used", "extract ms", "net ms",
                        "recon ms", "e2e ms", "<100ms", "QoE"});
    for (const double mbps : {5.0, 25.0, 100.0}) {
        for (const auto& spec : channels) {
            auto channel = spec.make();
            core::SessionConfig cfg;
            cfg.frames = 16;
            cfg.link.bandwidth = net::BandwidthTrace::constant(mbps * 1e6);
            cfg.link.propagationDelayS = 0.02;
            const auto stats = core::runSession(*channel, model, cfg);
            const auto qoe = core::computeQoE(stats);
            table.addRow({spec.label, bench::fmt("%.0f", mbps),
                          bench::fmt("%.2f", stats.bandwidthMbps),
                          bench::fmt("%.0f", stats.meanExtractMs),
                          bench::fmt("%.0f", stats.meanTransferMs),
                          bench::fmt("%.0f", stats.meanReconMs),
                          bench::fmt("%.0f", stats.meanE2eMs),
                          stats.meanE2eMs <= 100.0 ? "yes" : "NO",
                          bench::fmt("%.2f", qoe.mos)});
        }
    }
    table.print();

    std::printf(
        "\nShape check: raw mesh streaming needs ~4x US broadband and collapses\n"
        "below it; compressed mesh fits 25 Mbps but not 5; semantic channels\n"
        "fit every link, and their latency is reconstruction-bound, not\n"
        "network-bound — the paper's central argument in one table.\n");
    return 0;
}
