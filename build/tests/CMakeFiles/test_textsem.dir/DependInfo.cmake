
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/textsem/test_captioner.cpp" "tests/CMakeFiles/test_textsem.dir/textsem/test_captioner.cpp.o" "gcc" "tests/CMakeFiles/test_textsem.dir/textsem/test_captioner.cpp.o.d"
  "/root/repo/tests/textsem/test_delta.cpp" "tests/CMakeFiles/test_textsem.dir/textsem/test_delta.cpp.o" "gcc" "tests/CMakeFiles/test_textsem.dir/textsem/test_delta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/textsem/CMakeFiles/semholo_textsem.dir/DependInfo.cmake"
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/semholo_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
