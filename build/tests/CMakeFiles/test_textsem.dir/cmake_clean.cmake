file(REMOVE_RECURSE
  "CMakeFiles/test_textsem.dir/textsem/test_captioner.cpp.o"
  "CMakeFiles/test_textsem.dir/textsem/test_captioner.cpp.o.d"
  "CMakeFiles/test_textsem.dir/textsem/test_delta.cpp.o"
  "CMakeFiles/test_textsem.dir/textsem/test_delta.cpp.o.d"
  "test_textsem"
  "test_textsem.pdb"
  "test_textsem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textsem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
