# Empty dependencies file for test_textsem.
# This may be replaced when dependencies are built.
