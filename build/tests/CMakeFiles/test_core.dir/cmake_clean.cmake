file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adaptive_mesh.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adaptive_mesh.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_channels.cpp.o"
  "CMakeFiles/test_core.dir/core/test_channels.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_multiuser.cpp.o"
  "CMakeFiles/test_core.dir/core/test_multiuser.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_vector_channel.cpp.o"
  "CMakeFiles/test_core.dir/core/test_vector_channel.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
