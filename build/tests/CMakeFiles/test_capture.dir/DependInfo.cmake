
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/capture/test_keypoint_sets.cpp" "tests/CMakeFiles/test_capture.dir/capture/test_keypoint_sets.cpp.o" "gcc" "tests/CMakeFiles/test_capture.dir/capture/test_keypoint_sets.cpp.o.d"
  "/root/repo/tests/capture/test_keypoints.cpp" "tests/CMakeFiles/test_capture.dir/capture/test_keypoints.cpp.o" "gcc" "tests/CMakeFiles/test_capture.dir/capture/test_keypoints.cpp.o.d"
  "/root/repo/tests/capture/test_rasterizer.cpp" "tests/CMakeFiles/test_capture.dir/capture/test_rasterizer.cpp.o" "gcc" "tests/CMakeFiles/test_capture.dir/capture/test_rasterizer.cpp.o.d"
  "/root/repo/tests/capture/test_rig.cpp" "tests/CMakeFiles/test_capture.dir/capture/test_rig.cpp.o" "gcc" "tests/CMakeFiles/test_capture.dir/capture/test_rig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/semholo_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
