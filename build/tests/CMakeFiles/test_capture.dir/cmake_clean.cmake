file(REMOVE_RECURSE
  "CMakeFiles/test_capture.dir/capture/test_keypoint_sets.cpp.o"
  "CMakeFiles/test_capture.dir/capture/test_keypoint_sets.cpp.o.d"
  "CMakeFiles/test_capture.dir/capture/test_keypoints.cpp.o"
  "CMakeFiles/test_capture.dir/capture/test_keypoints.cpp.o.d"
  "CMakeFiles/test_capture.dir/capture/test_rasterizer.cpp.o"
  "CMakeFiles/test_capture.dir/capture/test_rasterizer.cpp.o.d"
  "CMakeFiles/test_capture.dir/capture/test_rig.cpp.o"
  "CMakeFiles/test_capture.dir/capture/test_rig.cpp.o.d"
  "test_capture"
  "test_capture.pdb"
  "test_capture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
