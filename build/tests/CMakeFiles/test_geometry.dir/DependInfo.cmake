
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geometry/test_camera.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_camera.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_camera.cpp.o.d"
  "/root/repo/tests/geometry/test_eigen.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_eigen.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_eigen.cpp.o.d"
  "/root/repo/tests/geometry/test_mat.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_mat.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_mat.cpp.o.d"
  "/root/repo/tests/geometry/test_quat.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_quat.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_quat.cpp.o.d"
  "/root/repo/tests/geometry/test_transform.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_transform.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_transform.cpp.o.d"
  "/root/repo/tests/geometry/test_vec.cpp" "tests/CMakeFiles/test_geometry.dir/geometry/test_vec.cpp.o" "gcc" "tests/CMakeFiles/test_geometry.dir/geometry/test_vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
