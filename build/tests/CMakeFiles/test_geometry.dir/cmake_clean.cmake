file(REMOVE_RECURSE
  "CMakeFiles/test_geometry.dir/geometry/test_camera.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_camera.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_eigen.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_eigen.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_mat.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_mat.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_quat.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_quat.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_transform.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_transform.cpp.o.d"
  "CMakeFiles/test_geometry.dir/geometry/test_vec.cpp.o"
  "CMakeFiles/test_geometry.dir/geometry/test_vec.cpp.o.d"
  "test_geometry"
  "test_geometry.pdb"
  "test_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
