file(REMOVE_RECURSE
  "CMakeFiles/test_gaze.dir/gaze/test_foveation.cpp.o"
  "CMakeFiles/test_gaze.dir/gaze/test_foveation.cpp.o.d"
  "CMakeFiles/test_gaze.dir/gaze/test_gaze.cpp.o"
  "CMakeFiles/test_gaze.dir/gaze/test_gaze.cpp.o.d"
  "test_gaze"
  "test_gaze.pdb"
  "test_gaze[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gaze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
