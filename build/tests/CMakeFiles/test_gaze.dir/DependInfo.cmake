
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gaze/test_foveation.cpp" "tests/CMakeFiles/test_gaze.dir/gaze/test_foveation.cpp.o" "gcc" "tests/CMakeFiles/test_gaze.dir/gaze/test_foveation.cpp.o.d"
  "/root/repo/tests/gaze/test_gaze.cpp" "tests/CMakeFiles/test_gaze.dir/gaze/test_gaze.cpp.o" "gcc" "tests/CMakeFiles/test_gaze.dir/gaze/test_gaze.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gaze/CMakeFiles/semholo_gaze.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
