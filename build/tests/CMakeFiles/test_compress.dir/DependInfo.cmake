
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compress/test_lzc.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_lzc.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_lzc.cpp.o.d"
  "/root/repo/tests/compress/test_meshcodec.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_meshcodec.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_meshcodec.cpp.o.d"
  "/root/repo/tests/compress/test_pointcloudcodec.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_pointcloudcodec.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_pointcloudcodec.cpp.o.d"
  "/root/repo/tests/compress/test_rangecoder.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_rangecoder.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_rangecoder.cpp.o.d"
  "/root/repo/tests/compress/test_texturecodec.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_texturecodec.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_texturecodec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/semholo_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
