file(REMOVE_RECURSE
  "CMakeFiles/test_compress.dir/compress/test_lzc.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_lzc.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_meshcodec.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_meshcodec.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_pointcloudcodec.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_pointcloudcodec.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_rangecoder.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_rangecoder.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_texturecodec.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_texturecodec.cpp.o.d"
  "test_compress"
  "test_compress.pdb"
  "test_compress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
