# Empty dependencies file for test_nerf.
# This may be replaced when dependencies are built.
