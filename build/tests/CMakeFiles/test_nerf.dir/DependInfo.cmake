
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nerf/test_field.cpp" "tests/CMakeFiles/test_nerf.dir/nerf/test_field.cpp.o" "gcc" "tests/CMakeFiles/test_nerf.dir/nerf/test_field.cpp.o.d"
  "/root/repo/tests/nerf/test_gradients.cpp" "tests/CMakeFiles/test_nerf.dir/nerf/test_gradients.cpp.o" "gcc" "tests/CMakeFiles/test_nerf.dir/nerf/test_gradients.cpp.o.d"
  "/root/repo/tests/nerf/test_mlp.cpp" "tests/CMakeFiles/test_nerf.dir/nerf/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/test_nerf.dir/nerf/test_mlp.cpp.o.d"
  "/root/repo/tests/nerf/test_renderer.cpp" "tests/CMakeFiles/test_nerf.dir/nerf/test_renderer.cpp.o" "gcc" "tests/CMakeFiles/test_nerf.dir/nerf/test_renderer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nerf/CMakeFiles/semholo_nerf.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/semholo_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
