file(REMOVE_RECURSE
  "CMakeFiles/test_nerf.dir/nerf/test_field.cpp.o"
  "CMakeFiles/test_nerf.dir/nerf/test_field.cpp.o.d"
  "CMakeFiles/test_nerf.dir/nerf/test_gradients.cpp.o"
  "CMakeFiles/test_nerf.dir/nerf/test_gradients.cpp.o.d"
  "CMakeFiles/test_nerf.dir/nerf/test_mlp.cpp.o"
  "CMakeFiles/test_nerf.dir/nerf/test_mlp.cpp.o.d"
  "CMakeFiles/test_nerf.dir/nerf/test_renderer.cpp.o"
  "CMakeFiles/test_nerf.dir/nerf/test_renderer.cpp.o.d"
  "test_nerf"
  "test_nerf.pdb"
  "test_nerf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nerf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
