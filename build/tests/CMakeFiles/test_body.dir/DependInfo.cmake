
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/body/test_animation.cpp" "tests/CMakeFiles/test_body.dir/body/test_animation.cpp.o" "gcc" "tests/CMakeFiles/test_body.dir/body/test_animation.cpp.o.d"
  "/root/repo/tests/body/test_body_model.cpp" "tests/CMakeFiles/test_body.dir/body/test_body_model.cpp.o" "gcc" "tests/CMakeFiles/test_body.dir/body/test_body_model.cpp.o.d"
  "/root/repo/tests/body/test_ik.cpp" "tests/CMakeFiles/test_body.dir/body/test_ik.cpp.o" "gcc" "tests/CMakeFiles/test_body.dir/body/test_ik.cpp.o.d"
  "/root/repo/tests/body/test_pose.cpp" "tests/CMakeFiles/test_body.dir/body/test_pose.cpp.o" "gcc" "tests/CMakeFiles/test_body.dir/body/test_pose.cpp.o.d"
  "/root/repo/tests/body/test_skeleton.cpp" "tests/CMakeFiles/test_body.dir/body/test_skeleton.cpp.o" "gcc" "tests/CMakeFiles/test_body.dir/body/test_skeleton.cpp.o.d"
  "/root/repo/tests/body/test_temporal.cpp" "tests/CMakeFiles/test_body.dir/body/test_temporal.cpp.o" "gcc" "tests/CMakeFiles/test_body.dir/body/test_temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
