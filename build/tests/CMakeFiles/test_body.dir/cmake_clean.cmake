file(REMOVE_RECURSE
  "CMakeFiles/test_body.dir/body/test_animation.cpp.o"
  "CMakeFiles/test_body.dir/body/test_animation.cpp.o.d"
  "CMakeFiles/test_body.dir/body/test_body_model.cpp.o"
  "CMakeFiles/test_body.dir/body/test_body_model.cpp.o.d"
  "CMakeFiles/test_body.dir/body/test_ik.cpp.o"
  "CMakeFiles/test_body.dir/body/test_ik.cpp.o.d"
  "CMakeFiles/test_body.dir/body/test_pose.cpp.o"
  "CMakeFiles/test_body.dir/body/test_pose.cpp.o.d"
  "CMakeFiles/test_body.dir/body/test_skeleton.cpp.o"
  "CMakeFiles/test_body.dir/body/test_skeleton.cpp.o.d"
  "CMakeFiles/test_body.dir/body/test_temporal.cpp.o"
  "CMakeFiles/test_body.dir/body/test_temporal.cpp.o.d"
  "test_body"
  "test_body.pdb"
  "test_body[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_body.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
