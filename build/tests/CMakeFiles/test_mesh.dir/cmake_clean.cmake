file(REMOVE_RECURSE
  "CMakeFiles/test_mesh.dir/mesh/test_io.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_io.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_isosurface.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_isosurface.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_kdtree.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_kdtree.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_metrics.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_metrics.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_pointcloud.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_pointcloud.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_simplify.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_simplify.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_trimesh.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_trimesh.cpp.o.d"
  "test_mesh"
  "test_mesh.pdb"
  "test_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
