
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mesh/test_io.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_io.cpp.o.d"
  "/root/repo/tests/mesh/test_isosurface.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_isosurface.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_isosurface.cpp.o.d"
  "/root/repo/tests/mesh/test_kdtree.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_kdtree.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_kdtree.cpp.o.d"
  "/root/repo/tests/mesh/test_metrics.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_metrics.cpp.o.d"
  "/root/repo/tests/mesh/test_pointcloud.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_pointcloud.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_pointcloud.cpp.o.d"
  "/root/repo/tests/mesh/test_simplify.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_simplify.cpp.o.d"
  "/root/repo/tests/mesh/test_trimesh.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/test_trimesh.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/test_trimesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
