# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_body[1]_include.cmake")
include("/root/repo/build/tests/test_capture[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_textsem[1]_include.cmake")
include("/root/repo/build/tests/test_nerf[1]_include.cmake")
include("/root/repo/build/tests/test_gaze[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_recon[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
