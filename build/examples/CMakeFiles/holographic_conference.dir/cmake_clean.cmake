file(REMOVE_RECURSE
  "CMakeFiles/holographic_conference.dir/holographic_conference.cpp.o"
  "CMakeFiles/holographic_conference.dir/holographic_conference.cpp.o.d"
  "holographic_conference"
  "holographic_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holographic_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
