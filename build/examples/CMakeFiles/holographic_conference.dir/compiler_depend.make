# Empty compiler generated dependencies file for holographic_conference.
# This may be replaced when dependencies are built.
