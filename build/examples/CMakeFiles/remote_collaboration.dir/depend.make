# Empty dependencies file for remote_collaboration.
# This may be replaced when dependencies are built.
