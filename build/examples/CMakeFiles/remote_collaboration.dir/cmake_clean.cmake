file(REMOVE_RECURSE
  "CMakeFiles/remote_collaboration.dir/remote_collaboration.cpp.o"
  "CMakeFiles/remote_collaboration.dir/remote_collaboration.cpp.o.d"
  "remote_collaboration"
  "remote_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
