# Empty compiler generated dependencies file for adaptive_streaming.
# This may be replaced when dependencies are built.
