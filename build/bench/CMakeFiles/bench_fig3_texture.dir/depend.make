# Empty dependencies file for bench_fig3_texture.
# This may be replaced when dependencies are built.
