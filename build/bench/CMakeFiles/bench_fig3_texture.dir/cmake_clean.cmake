file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_texture.dir/bench_fig3_texture.cpp.o"
  "CMakeFiles/bench_fig3_texture.dir/bench_fig3_texture.cpp.o.d"
  "bench_fig3_texture"
  "bench_fig3_texture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
