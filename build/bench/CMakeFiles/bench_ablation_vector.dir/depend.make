# Empty dependencies file for bench_ablation_vector.
# This may be replaced when dependencies are built.
