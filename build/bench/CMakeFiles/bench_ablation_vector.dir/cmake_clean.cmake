file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vector.dir/bench_ablation_vector.cpp.o"
  "CMakeFiles/bench_ablation_vector.dir/bench_ablation_vector.cpp.o.d"
  "bench_ablation_vector"
  "bench_ablation_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
