# Empty dependencies file for bench_ablation_foveation.
# This may be replaced when dependencies are built.
