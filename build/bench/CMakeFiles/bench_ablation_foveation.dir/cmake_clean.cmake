file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_foveation.dir/bench_ablation_foveation.cpp.o"
  "CMakeFiles/bench_ablation_foveation.dir/bench_ablation_foveation.cpp.o.d"
  "bench_ablation_foveation"
  "bench_ablation_foveation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_foveation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
