# Empty dependencies file for bench_fig2_quality.
# This may be replaced when dependencies are built.
