# Empty dependencies file for bench_ablation_keypoints.
# This may be replaced when dependencies are built.
