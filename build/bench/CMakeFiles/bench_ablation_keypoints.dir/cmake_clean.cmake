file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_keypoints.dir/bench_ablation_keypoints.cpp.o"
  "CMakeFiles/bench_ablation_keypoints.dir/bench_ablation_keypoints.cpp.o.d"
  "bench_ablation_keypoints"
  "bench_ablation_keypoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_keypoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
