# Empty dependencies file for bench_fig4_fps.
# This may be replaced when dependencies are built.
