file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fps.dir/bench_fig4_fps.cpp.o"
  "CMakeFiles/bench_fig4_fps.dir/bench_fig4_fps.cpp.o.d"
  "bench_fig4_fps"
  "bench_fig4_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
