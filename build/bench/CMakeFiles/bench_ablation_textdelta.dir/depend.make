# Empty dependencies file for bench_ablation_textdelta.
# This may be replaced when dependencies are built.
