file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_textdelta.dir/bench_ablation_textdelta.cpp.o"
  "CMakeFiles/bench_ablation_textdelta.dir/bench_ablation_textdelta.cpp.o.d"
  "bench_ablation_textdelta"
  "bench_ablation_textdelta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_textdelta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
