file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slimmable.dir/bench_ablation_slimmable.cpp.o"
  "CMakeFiles/bench_ablation_slimmable.dir/bench_ablation_slimmable.cpp.o.d"
  "bench_ablation_slimmable"
  "bench_ablation_slimmable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slimmable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
