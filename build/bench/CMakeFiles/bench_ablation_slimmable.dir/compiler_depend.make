# Empty compiler generated dependencies file for bench_ablation_slimmable.
# This may be replaced when dependencies are built.
