
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_multiuser.cpp" "bench/CMakeFiles/bench_ablation_multiuser.dir/bench_ablation_multiuser.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_multiuser.dir/bench_ablation_multiuser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/semholo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/semholo_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/semholo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gaze/CMakeFiles/semholo_gaze.dir/DependInfo.cmake"
  "/root/repo/build/src/nerf/CMakeFiles/semholo_nerf.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/semholo_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/textsem/CMakeFiles/semholo_textsem.dir/DependInfo.cmake"
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/semholo_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
