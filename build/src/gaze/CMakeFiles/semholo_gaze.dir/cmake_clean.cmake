file(REMOVE_RECURSE
  "CMakeFiles/semholo_gaze.dir/src/foveation.cpp.o"
  "CMakeFiles/semholo_gaze.dir/src/foveation.cpp.o.d"
  "CMakeFiles/semholo_gaze.dir/src/gaze.cpp.o"
  "CMakeFiles/semholo_gaze.dir/src/gaze.cpp.o.d"
  "libsemholo_gaze.a"
  "libsemholo_gaze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_gaze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
