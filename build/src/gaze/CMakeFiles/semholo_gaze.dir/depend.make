# Empty dependencies file for semholo_gaze.
# This may be replaced when dependencies are built.
