file(REMOVE_RECURSE
  "libsemholo_gaze.a"
)
