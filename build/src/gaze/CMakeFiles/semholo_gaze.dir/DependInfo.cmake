
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gaze/src/foveation.cpp" "src/gaze/CMakeFiles/semholo_gaze.dir/src/foveation.cpp.o" "gcc" "src/gaze/CMakeFiles/semholo_gaze.dir/src/foveation.cpp.o.d"
  "/root/repo/src/gaze/src/gaze.cpp" "src/gaze/CMakeFiles/semholo_gaze.dir/src/gaze.cpp.o" "gcc" "src/gaze/CMakeFiles/semholo_gaze.dir/src/gaze.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
