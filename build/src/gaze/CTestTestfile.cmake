# CMake generated Testfile for 
# Source directory: /root/repo/src/gaze
# Build directory: /root/repo/build/src/gaze
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
