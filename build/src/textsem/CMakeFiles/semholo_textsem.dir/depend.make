# Empty dependencies file for semholo_textsem.
# This may be replaced when dependencies are built.
