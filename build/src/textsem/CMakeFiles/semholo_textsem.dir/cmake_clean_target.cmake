file(REMOVE_RECURSE
  "libsemholo_textsem.a"
)
