file(REMOVE_RECURSE
  "CMakeFiles/semholo_textsem.dir/src/captioner.cpp.o"
  "CMakeFiles/semholo_textsem.dir/src/captioner.cpp.o.d"
  "CMakeFiles/semholo_textsem.dir/src/delta.cpp.o"
  "CMakeFiles/semholo_textsem.dir/src/delta.cpp.o.d"
  "libsemholo_textsem.a"
  "libsemholo_textsem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_textsem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
