file(REMOVE_RECURSE
  "libsemholo_recon.a"
)
