# Empty dependencies file for semholo_recon.
# This may be replaced when dependencies are built.
