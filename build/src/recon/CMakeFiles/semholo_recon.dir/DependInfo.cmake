
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recon/src/device_profile.cpp" "src/recon/CMakeFiles/semholo_recon.dir/src/device_profile.cpp.o" "gcc" "src/recon/CMakeFiles/semholo_recon.dir/src/device_profile.cpp.o.d"
  "/root/repo/src/recon/src/keypoint_recon.cpp" "src/recon/CMakeFiles/semholo_recon.dir/src/keypoint_recon.cpp.o" "gcc" "src/recon/CMakeFiles/semholo_recon.dir/src/keypoint_recon.cpp.o.d"
  "/root/repo/src/recon/src/texture.cpp" "src/recon/CMakeFiles/semholo_recon.dir/src/texture.cpp.o" "gcc" "src/recon/CMakeFiles/semholo_recon.dir/src/texture.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/semholo_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
