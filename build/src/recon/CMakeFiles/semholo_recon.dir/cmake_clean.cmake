file(REMOVE_RECURSE
  "CMakeFiles/semholo_recon.dir/src/device_profile.cpp.o"
  "CMakeFiles/semholo_recon.dir/src/device_profile.cpp.o.d"
  "CMakeFiles/semholo_recon.dir/src/keypoint_recon.cpp.o"
  "CMakeFiles/semholo_recon.dir/src/keypoint_recon.cpp.o.d"
  "CMakeFiles/semholo_recon.dir/src/texture.cpp.o"
  "CMakeFiles/semholo_recon.dir/src/texture.cpp.o.d"
  "libsemholo_recon.a"
  "libsemholo_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
