
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/src/keypoints.cpp" "src/capture/CMakeFiles/semholo_capture.dir/src/keypoints.cpp.o" "gcc" "src/capture/CMakeFiles/semholo_capture.dir/src/keypoints.cpp.o.d"
  "/root/repo/src/capture/src/noise.cpp" "src/capture/CMakeFiles/semholo_capture.dir/src/noise.cpp.o" "gcc" "src/capture/CMakeFiles/semholo_capture.dir/src/noise.cpp.o.d"
  "/root/repo/src/capture/src/rasterizer.cpp" "src/capture/CMakeFiles/semholo_capture.dir/src/rasterizer.cpp.o" "gcc" "src/capture/CMakeFiles/semholo_capture.dir/src/rasterizer.cpp.o.d"
  "/root/repo/src/capture/src/rig.cpp" "src/capture/CMakeFiles/semholo_capture.dir/src/rig.cpp.o" "gcc" "src/capture/CMakeFiles/semholo_capture.dir/src/rig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
