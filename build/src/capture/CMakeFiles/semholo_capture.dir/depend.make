# Empty dependencies file for semholo_capture.
# This may be replaced when dependencies are built.
