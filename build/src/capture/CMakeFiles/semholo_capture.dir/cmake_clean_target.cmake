file(REMOVE_RECURSE
  "libsemholo_capture.a"
)
