file(REMOVE_RECURSE
  "CMakeFiles/semholo_capture.dir/src/keypoints.cpp.o"
  "CMakeFiles/semholo_capture.dir/src/keypoints.cpp.o.d"
  "CMakeFiles/semholo_capture.dir/src/noise.cpp.o"
  "CMakeFiles/semholo_capture.dir/src/noise.cpp.o.d"
  "CMakeFiles/semholo_capture.dir/src/rasterizer.cpp.o"
  "CMakeFiles/semholo_capture.dir/src/rasterizer.cpp.o.d"
  "CMakeFiles/semholo_capture.dir/src/rig.cpp.o"
  "CMakeFiles/semholo_capture.dir/src/rig.cpp.o.d"
  "libsemholo_capture.a"
  "libsemholo_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
