file(REMOVE_RECURSE
  "CMakeFiles/semholo_nerf.dir/src/field.cpp.o"
  "CMakeFiles/semholo_nerf.dir/src/field.cpp.o.d"
  "CMakeFiles/semholo_nerf.dir/src/mlp.cpp.o"
  "CMakeFiles/semholo_nerf.dir/src/mlp.cpp.o.d"
  "CMakeFiles/semholo_nerf.dir/src/renderer.cpp.o"
  "CMakeFiles/semholo_nerf.dir/src/renderer.cpp.o.d"
  "CMakeFiles/semholo_nerf.dir/src/trainer.cpp.o"
  "CMakeFiles/semholo_nerf.dir/src/trainer.cpp.o.d"
  "libsemholo_nerf.a"
  "libsemholo_nerf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_nerf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
