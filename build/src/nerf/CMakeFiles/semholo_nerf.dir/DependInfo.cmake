
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nerf/src/field.cpp" "src/nerf/CMakeFiles/semholo_nerf.dir/src/field.cpp.o" "gcc" "src/nerf/CMakeFiles/semholo_nerf.dir/src/field.cpp.o.d"
  "/root/repo/src/nerf/src/mlp.cpp" "src/nerf/CMakeFiles/semholo_nerf.dir/src/mlp.cpp.o" "gcc" "src/nerf/CMakeFiles/semholo_nerf.dir/src/mlp.cpp.o.d"
  "/root/repo/src/nerf/src/renderer.cpp" "src/nerf/CMakeFiles/semholo_nerf.dir/src/renderer.cpp.o" "gcc" "src/nerf/CMakeFiles/semholo_nerf.dir/src/renderer.cpp.o.d"
  "/root/repo/src/nerf/src/trainer.cpp" "src/nerf/CMakeFiles/semholo_nerf.dir/src/trainer.cpp.o" "gcc" "src/nerf/CMakeFiles/semholo_nerf.dir/src/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/semholo_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/body/CMakeFiles/semholo_body.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
