# Empty compiler generated dependencies file for semholo_nerf.
# This may be replaced when dependencies are built.
