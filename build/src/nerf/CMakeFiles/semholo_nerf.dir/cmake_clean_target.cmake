file(REMOVE_RECURSE
  "libsemholo_nerf.a"
)
