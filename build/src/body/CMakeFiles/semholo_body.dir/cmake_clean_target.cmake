file(REMOVE_RECURSE
  "libsemholo_body.a"
)
