# Empty dependencies file for semholo_body.
# This may be replaced when dependencies are built.
