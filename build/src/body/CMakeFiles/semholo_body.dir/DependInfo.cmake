
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/body/src/animation.cpp" "src/body/CMakeFiles/semholo_body.dir/src/animation.cpp.o" "gcc" "src/body/CMakeFiles/semholo_body.dir/src/animation.cpp.o.d"
  "/root/repo/src/body/src/body_model.cpp" "src/body/CMakeFiles/semholo_body.dir/src/body_model.cpp.o" "gcc" "src/body/CMakeFiles/semholo_body.dir/src/body_model.cpp.o.d"
  "/root/repo/src/body/src/ik.cpp" "src/body/CMakeFiles/semholo_body.dir/src/ik.cpp.o" "gcc" "src/body/CMakeFiles/semholo_body.dir/src/ik.cpp.o.d"
  "/root/repo/src/body/src/pose.cpp" "src/body/CMakeFiles/semholo_body.dir/src/pose.cpp.o" "gcc" "src/body/CMakeFiles/semholo_body.dir/src/pose.cpp.o.d"
  "/root/repo/src/body/src/skeleton.cpp" "src/body/CMakeFiles/semholo_body.dir/src/skeleton.cpp.o" "gcc" "src/body/CMakeFiles/semholo_body.dir/src/skeleton.cpp.o.d"
  "/root/repo/src/body/src/temporal.cpp" "src/body/CMakeFiles/semholo_body.dir/src/temporal.cpp.o" "gcc" "src/body/CMakeFiles/semholo_body.dir/src/temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
