file(REMOVE_RECURSE
  "CMakeFiles/semholo_body.dir/src/animation.cpp.o"
  "CMakeFiles/semholo_body.dir/src/animation.cpp.o.d"
  "CMakeFiles/semholo_body.dir/src/body_model.cpp.o"
  "CMakeFiles/semholo_body.dir/src/body_model.cpp.o.d"
  "CMakeFiles/semholo_body.dir/src/ik.cpp.o"
  "CMakeFiles/semholo_body.dir/src/ik.cpp.o.d"
  "CMakeFiles/semholo_body.dir/src/pose.cpp.o"
  "CMakeFiles/semholo_body.dir/src/pose.cpp.o.d"
  "CMakeFiles/semholo_body.dir/src/skeleton.cpp.o"
  "CMakeFiles/semholo_body.dir/src/skeleton.cpp.o.d"
  "CMakeFiles/semholo_body.dir/src/temporal.cpp.o"
  "CMakeFiles/semholo_body.dir/src/temporal.cpp.o.d"
  "libsemholo_body.a"
  "libsemholo_body.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_body.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
