file(REMOVE_RECURSE
  "libsemholo_mesh.a"
)
