
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/src/io.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/io.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/io.cpp.o.d"
  "/root/repo/src/mesh/src/isosurface.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/isosurface.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/isosurface.cpp.o.d"
  "/root/repo/src/mesh/src/kdtree.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/kdtree.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/kdtree.cpp.o.d"
  "/root/repo/src/mesh/src/metrics.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/metrics.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/metrics.cpp.o.d"
  "/root/repo/src/mesh/src/pointcloud.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/pointcloud.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/pointcloud.cpp.o.d"
  "/root/repo/src/mesh/src/sampling.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/sampling.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/sampling.cpp.o.d"
  "/root/repo/src/mesh/src/simplify.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/simplify.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/simplify.cpp.o.d"
  "/root/repo/src/mesh/src/trimesh.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/trimesh.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/trimesh.cpp.o.d"
  "/root/repo/src/mesh/src/voxelgrid.cpp" "src/mesh/CMakeFiles/semholo_mesh.dir/src/voxelgrid.cpp.o" "gcc" "src/mesh/CMakeFiles/semholo_mesh.dir/src/voxelgrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
