# Empty compiler generated dependencies file for semholo_mesh.
# This may be replaced when dependencies are built.
