file(REMOVE_RECURSE
  "CMakeFiles/semholo_mesh.dir/src/io.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/io.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/isosurface.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/isosurface.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/kdtree.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/kdtree.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/metrics.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/metrics.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/pointcloud.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/pointcloud.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/sampling.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/sampling.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/simplify.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/simplify.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/trimesh.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/trimesh.cpp.o.d"
  "CMakeFiles/semholo_mesh.dir/src/voxelgrid.cpp.o"
  "CMakeFiles/semholo_mesh.dir/src/voxelgrid.cpp.o.d"
  "libsemholo_mesh.a"
  "libsemholo_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
