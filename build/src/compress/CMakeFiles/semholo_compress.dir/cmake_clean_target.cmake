file(REMOVE_RECURSE
  "libsemholo_compress.a"
)
