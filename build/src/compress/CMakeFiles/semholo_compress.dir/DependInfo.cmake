
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/src/lzc.cpp" "src/compress/CMakeFiles/semholo_compress.dir/src/lzc.cpp.o" "gcc" "src/compress/CMakeFiles/semholo_compress.dir/src/lzc.cpp.o.d"
  "/root/repo/src/compress/src/meshcodec.cpp" "src/compress/CMakeFiles/semholo_compress.dir/src/meshcodec.cpp.o" "gcc" "src/compress/CMakeFiles/semholo_compress.dir/src/meshcodec.cpp.o.d"
  "/root/repo/src/compress/src/pointcloudcodec.cpp" "src/compress/CMakeFiles/semholo_compress.dir/src/pointcloudcodec.cpp.o" "gcc" "src/compress/CMakeFiles/semholo_compress.dir/src/pointcloudcodec.cpp.o.d"
  "/root/repo/src/compress/src/rangecoder.cpp" "src/compress/CMakeFiles/semholo_compress.dir/src/rangecoder.cpp.o" "gcc" "src/compress/CMakeFiles/semholo_compress.dir/src/rangecoder.cpp.o.d"
  "/root/repo/src/compress/src/texturecodec.cpp" "src/compress/CMakeFiles/semholo_compress.dir/src/texturecodec.cpp.o" "gcc" "src/compress/CMakeFiles/semholo_compress.dir/src/texturecodec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/semholo_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
