file(REMOVE_RECURSE
  "CMakeFiles/semholo_compress.dir/src/lzc.cpp.o"
  "CMakeFiles/semholo_compress.dir/src/lzc.cpp.o.d"
  "CMakeFiles/semholo_compress.dir/src/meshcodec.cpp.o"
  "CMakeFiles/semholo_compress.dir/src/meshcodec.cpp.o.d"
  "CMakeFiles/semholo_compress.dir/src/pointcloudcodec.cpp.o"
  "CMakeFiles/semholo_compress.dir/src/pointcloudcodec.cpp.o.d"
  "CMakeFiles/semholo_compress.dir/src/rangecoder.cpp.o"
  "CMakeFiles/semholo_compress.dir/src/rangecoder.cpp.o.d"
  "CMakeFiles/semholo_compress.dir/src/texturecodec.cpp.o"
  "CMakeFiles/semholo_compress.dir/src/texturecodec.cpp.o.d"
  "libsemholo_compress.a"
  "libsemholo_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
