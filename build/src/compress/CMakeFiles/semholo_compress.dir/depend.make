# Empty dependencies file for semholo_compress.
# This may be replaced when dependencies are built.
