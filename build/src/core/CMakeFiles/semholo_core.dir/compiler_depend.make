# Empty compiler generated dependencies file for semholo_core.
# This may be replaced when dependencies are built.
