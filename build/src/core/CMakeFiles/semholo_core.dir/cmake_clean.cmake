file(REMOVE_RECURSE
  "CMakeFiles/semholo_core.dir/src/adaptive_mesh_channel.cpp.o"
  "CMakeFiles/semholo_core.dir/src/adaptive_mesh_channel.cpp.o.d"
  "CMakeFiles/semholo_core.dir/src/channels.cpp.o"
  "CMakeFiles/semholo_core.dir/src/channels.cpp.o.d"
  "CMakeFiles/semholo_core.dir/src/image_channel.cpp.o"
  "CMakeFiles/semholo_core.dir/src/image_channel.cpp.o.d"
  "CMakeFiles/semholo_core.dir/src/qoe.cpp.o"
  "CMakeFiles/semholo_core.dir/src/qoe.cpp.o.d"
  "CMakeFiles/semholo_core.dir/src/session.cpp.o"
  "CMakeFiles/semholo_core.dir/src/session.cpp.o.d"
  "CMakeFiles/semholo_core.dir/src/vector_channel.cpp.o"
  "CMakeFiles/semholo_core.dir/src/vector_channel.cpp.o.d"
  "libsemholo_core.a"
  "libsemholo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
