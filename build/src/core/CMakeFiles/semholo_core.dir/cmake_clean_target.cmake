file(REMOVE_RECURSE
  "libsemholo_core.a"
)
