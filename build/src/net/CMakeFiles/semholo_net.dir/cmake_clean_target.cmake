file(REMOVE_RECURSE
  "libsemholo_net.a"
)
