file(REMOVE_RECURSE
  "CMakeFiles/semholo_net.dir/src/abr.cpp.o"
  "CMakeFiles/semholo_net.dir/src/abr.cpp.o.d"
  "CMakeFiles/semholo_net.dir/src/link.cpp.o"
  "CMakeFiles/semholo_net.dir/src/link.cpp.o.d"
  "CMakeFiles/semholo_net.dir/src/simulator.cpp.o"
  "CMakeFiles/semholo_net.dir/src/simulator.cpp.o.d"
  "libsemholo_net.a"
  "libsemholo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
