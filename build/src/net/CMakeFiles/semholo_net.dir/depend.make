# Empty dependencies file for semholo_net.
# This may be replaced when dependencies are built.
