
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/src/abr.cpp" "src/net/CMakeFiles/semholo_net.dir/src/abr.cpp.o" "gcc" "src/net/CMakeFiles/semholo_net.dir/src/abr.cpp.o.d"
  "/root/repo/src/net/src/link.cpp" "src/net/CMakeFiles/semholo_net.dir/src/link.cpp.o" "gcc" "src/net/CMakeFiles/semholo_net.dir/src/link.cpp.o.d"
  "/root/repo/src/net/src/simulator.cpp" "src/net/CMakeFiles/semholo_net.dir/src/simulator.cpp.o" "gcc" "src/net/CMakeFiles/semholo_net.dir/src/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/semholo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
