file(REMOVE_RECURSE
  "CMakeFiles/semholo_geometry.dir/src/camera.cpp.o"
  "CMakeFiles/semholo_geometry.dir/src/camera.cpp.o.d"
  "CMakeFiles/semholo_geometry.dir/src/eigen.cpp.o"
  "CMakeFiles/semholo_geometry.dir/src/eigen.cpp.o.d"
  "CMakeFiles/semholo_geometry.dir/src/mat.cpp.o"
  "CMakeFiles/semholo_geometry.dir/src/mat.cpp.o.d"
  "CMakeFiles/semholo_geometry.dir/src/quat.cpp.o"
  "CMakeFiles/semholo_geometry.dir/src/quat.cpp.o.d"
  "CMakeFiles/semholo_geometry.dir/src/transform.cpp.o"
  "CMakeFiles/semholo_geometry.dir/src/transform.cpp.o.d"
  "libsemholo_geometry.a"
  "libsemholo_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semholo_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
