# Empty compiler generated dependencies file for semholo_geometry.
# This may be replaced when dependencies are built.
