
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/src/camera.cpp" "src/geometry/CMakeFiles/semholo_geometry.dir/src/camera.cpp.o" "gcc" "src/geometry/CMakeFiles/semholo_geometry.dir/src/camera.cpp.o.d"
  "/root/repo/src/geometry/src/eigen.cpp" "src/geometry/CMakeFiles/semholo_geometry.dir/src/eigen.cpp.o" "gcc" "src/geometry/CMakeFiles/semholo_geometry.dir/src/eigen.cpp.o.d"
  "/root/repo/src/geometry/src/mat.cpp" "src/geometry/CMakeFiles/semholo_geometry.dir/src/mat.cpp.o" "gcc" "src/geometry/CMakeFiles/semholo_geometry.dir/src/mat.cpp.o.d"
  "/root/repo/src/geometry/src/quat.cpp" "src/geometry/CMakeFiles/semholo_geometry.dir/src/quat.cpp.o" "gcc" "src/geometry/CMakeFiles/semholo_geometry.dir/src/quat.cpp.o.d"
  "/root/repo/src/geometry/src/transform.cpp" "src/geometry/CMakeFiles/semholo_geometry.dir/src/transform.cpp.o" "gcc" "src/geometry/CMakeFiles/semholo_geometry.dir/src/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
