file(REMOVE_RECURSE
  "libsemholo_geometry.a"
)
