// Taxonomy tour: runs the same talking-participant sequence through all
// four channels — keypoint, text, image/NeRF, and the traditional mesh
// baseline — and prints a Table-1-style comparison, then the foveated
// hybrid as the section 3.1 middle ground.
#include <cstdio>
#include <memory>

#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"

using namespace semholo;

int main() {
    std::printf("SemHolo taxonomy tour: one sequence, every semantics\n\n");

    const body::BodyModel model{body::ShapeParams{}};
    core::SessionConfig cfg;
    cfg.frames = 9;
    cfg.motion = body::MotionKind::Talk;
    cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);  // US broadband
    cfg.qualityEvalInterval = 4;
    cfg.qualitySamples = 5000;
    cfg.dropWhenBusy = false;

    struct Entry {
        const char* label;
        std::unique_ptr<core::SemanticChannel> channel;
    };
    std::vector<Entry> entries;
    {
        core::KeypointChannelOptions opt;
        opt.reconResolution = 48;
        entries.push_back({"keypoint", core::makeKeypointChannel(opt)});
    }
    {
        core::TextChannelOptions opt;
        opt.reconResolution = 48;
        entries.push_back({"text", core::makeTextChannel(opt)});
    }
    {
        core::ImageChannelOptions opt;
        opt.pretrainSteps = 100;
        opt.fineTuneSteps = 10;
        entries.push_back({"image (NeRF)", core::makeImageChannel(opt)});
    }
    {
        core::FoveatedOptions opt;
        entries.push_back({"foveated hybrid", core::makeFoveatedChannel(opt)});
    }
    entries.push_back({"traditional (codec)", core::makeTraditionalChannel({})});

    std::printf("%-20s %12s %12s %12s %12s %8s\n", "semantics", "KB/frame",
                "Mbps@30", "extract ms", "recon ms", "QoE");
    for (auto& entry : entries) {
        const auto stats = core::runSession(*entry.channel, model, cfg);
        const auto qoe = core::computeQoE(stats);
        std::printf("%-20s %12.2f %12.2f %12.1f %12.0f %8.2f\n", entry.label,
                    stats.meanBytesPerFrame / 1024.0, stats.bandwidthMbps,
                    stats.meanExtractMs, stats.meanReconMs, qoe.mos);
    }

    std::printf(
        "\nReading the rows against Table 1: keypoints are tiny but expensive\n"
        "to reconstruct; text is tinier and more expensive still; images give\n"
        "the best fidelity for medium bandwidth; meshes are cheap to render\n"
        "but dominate the link. No single semantics wins on every axis - the\n"
        "paper's core observation.\n");
    return 0;
}
