// SemHolo quickstart: one frame through the keypoint-semantics pipeline.
//
//   capture (synthetic subject) -> keypoint payload (1.91 KB)
//   -> LZC compression -> [Internet] -> reconstruction -> metrics
//
// Writes the ground-truth and reconstructed meshes as OBJ files you can
// open in any viewer, under an output/ directory next to the binary
// (SEMHOLO_OUTPUT_DIR overrides) so repeated runs never litter the
// source tree.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "semholo/body/animation.hpp"
#include "semholo/compress/lzc.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/mesh/io.hpp"
#include "semholo/mesh/metrics.hpp"

using namespace semholo;

int main() {
    std::printf("SemHolo quickstart\n==================\n\n");

    // 1. A subject: parametric body with default shape, talking.
    const body::BodyModel model{body::ShapeParams{}};
    const body::MotionGenerator motion(body::MotionKind::Talk, model.shape());
    std::printf("subject template: %zu vertices, %zu triangles\n",
                model.templateMesh().vertexCount(),
                model.templateMesh().triangleCount());

    // 2. Capture one frame (the pose a detector + IK would produce).
    core::FrameContext frame;
    frame.pose = motion.poseAt(0.5);
    frame.model = &model;

    // 3. Sender: encode the frame on the keypoint channel. Channels are
    // built from data — swap the kind or params to try another column of
    // the taxonomy (core::listChannelKinds() enumerates them).
    const core::ChannelSpec spec{"keypoint", {{"reconResolution", 96}}};
    auto channel = core::makeChannel(spec, &model);
    const core::EncodedFrame encoded = channel->encode(frame);
    std::printf("keypoint payload: %zu bytes (%.2f KB; paper: 1.91 KB raw, "
                "1.23 KB after LZMA)\n",
                encoded.bytes(), encoded.bytes() / 1024.0);

    // 4. Receiver: reconstruct the remote participant.
    const core::DecodedFrame decoded = channel->decode(encoded);
    if (!decoded.valid) {
        std::printf("reconstruction failed\n");
        return 1;
    }
    std::printf("reconstructed mesh: %zu triangles in %.0f ms (%.2f FPS)\n",
                decoded.mesh.triangleCount(), decoded.reconMs(),
                1000.0 / decoded.reconMs());

    // 5. Compare with the ground-truth capture mesh.
    const mesh::TriMesh groundTruth = frame.groundTruth();
    const auto err = mesh::compareMeshes(groundTruth, decoded.mesh, 20000);
    std::printf("quality vs ground truth: chamfer %.2f mm, hausdorff %.1f mm, "
                "PSNR %.1f dB\n",
                err.chamfer * 1000.0, err.hausdorff * 1000.0, err.psnr);

    const char* outEnv = std::getenv("SEMHOLO_OUTPUT_DIR");
    const std::filesystem::path outDir = outEnv != nullptr ? outEnv : "output";
    std::error_code ec;
    std::filesystem::create_directories(outDir, ec);
    const std::string gtPath = (outDir / "quickstart_ground_truth.obj").string();
    const std::string reconPath =
        (outDir / "quickstart_reconstruction.obj").string();
    mesh::saveOBJ(groundTruth, gtPath);
    mesh::saveOBJ(decoded.mesh, reconPath);
    std::printf("\nwrote %s and %s\n", gtPath.c_str(), reconPath.c_str());
    std::printf("bandwidth at 30 FPS: %.2f Mbps (traditional raw mesh: %.1f Mbps)\n",
                encoded.bytes() * 8.0 * 30.0 / 1e6,
                groundTruth.rawGeometryBytes() * 8.0 * 30.0 / 1e6);
    return 0;
}
