// Holographic conference: six participants share one uplink. Compares
// three strategies for the same meeting — raw meshes, LOD-ABR meshes,
// and keypoint semantics — and prints who actually fits. This is the 6G
// telepresence vision of the paper's introduction, run end to end.
#include <cstdio>
#include <memory>

#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"

using namespace semholo;

namespace {

struct Strategy {
    const char* label;
    std::function<std::unique_ptr<core::SemanticChannel>()> make;
};

}  // namespace

int main() {
    std::printf("SemHolo holographic conference: 6 participants, one 25 Mbps uplink\n\n");

    const body::BodyModel model{body::ShapeParams{}};
    constexpr std::size_t kUsers = 6;

    const std::vector<Strategy> strategies{
        {"raw mesh", [] { return core::makeTraditionalChannel({false, false}); }},
        {"LOD-ABR mesh",
         [] {
             core::AdaptiveMeshOptions opt;
             opt.ladderTriangles = {800, 3000, 10000, 25000};
             return core::makeAdaptiveMeshChannel(opt);
         }},
        {"keypoint semantics",
         [] {
             core::KeypointChannelOptions opt;
             opt.reconResolution = 32;
             return core::makeKeypointChannel(opt);
         }},
    };

    std::printf("%-20s %16s %12s %14s %16s\n", "strategy", "aggregate Mbps",
                "mean e2e ms", "within 150 ms", "frames rendered");
    for (const Strategy& strategy : strategies) {
        std::vector<std::unique_ptr<core::SemanticChannel>> owned;
        std::vector<core::SemanticChannel*> channels;
        for (std::size_t u = 0; u < kUsers; ++u) {
            owned.push_back(strategy.make());
            channels.push_back(owned.back().get());
        }
        core::SessionConfig cfg;
        cfg.frames = 15;
        cfg.motion = body::MotionKind::Talk;
        cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
        cfg.link.propagationDelayS = 0.03;
        cfg.link.queueCapacityBytes = 4 * 1024 * 1024;

        const auto stats = core::runMultiUserSession(channels, model, cfg);
        std::size_t rendered = 0;
        for (const auto& user : stats.perUser) rendered += user.decodedFrames;
        std::printf("%-20s %16.2f %12.0f %11zu/%zu %13zu/%zu\n", strategy.label,
                    stats.aggregateMbps, stats.meanE2eMs,
                    stats.usersWithinLatency(150.0), kUsers, rendered,
                    kUsers * cfg.frames);
    }

    std::printf(
        "\nRaw meshes want %.0fx the uplink and stall for everyone; the LOD-ABR\n"
        "baseline survives by degrading geometry; keypoint semantics carries\n"
        "all six participants in under a tenth of the link — the paper's\n"
        "argument for semantic holographic communication, at conference scale.\n",
        6.0 * 95.0 / 25.0);
    return 0;
}
