// Holographic conference: six participants share one uplink. Compares
// five strategies for the same meeting — raw meshes, LOD-ABR meshes,
// LOD-ABR with the closed-loop degradation policy, LOD-ABR with the
// conference server's max-min bandwidth arbiter coordinating everyone's
// targets, and keypoint semantics — and prints who actually fits, plus
// how fairly the link was shared. This is the 6G telepresence vision of
// the paper's introduction, run end to end through the SFU conference
// engine (runConference): every user's policy observes its own link
// outcomes each capture tick, and the server fans the other five
// streams back out over per-viewer downlinks.
#include <cstdio>
#include <memory>

#include "semholo/core/conference.hpp"
#include "semholo/core/qoe.hpp"

using namespace semholo;

namespace {

struct Strategy {
    const char* label;
    std::function<std::unique_ptr<core::SemanticChannel>(const body::BodyModel&)>
        make;
    bool degradation{false};
    core::ArbiterStrategy arbiter{core::ArbiterStrategy::None};
};

std::unique_ptr<core::SemanticChannel> makeAbrChannel(const body::BodyModel&) {
    core::AdaptiveMeshOptions opt;
    opt.ladderTriangles = {800, 3000, 10000, 25000};
    return core::makeAdaptiveMeshChannel(opt);
}

}  // namespace

int main() {
    std::printf("SemHolo holographic conference: 6 participants, one 25 Mbps uplink\n\n");

    const body::BodyModel model{body::ShapeParams{}};
    constexpr std::size_t kUsers = 6;

    const std::vector<Strategy> strategies{
        {"raw mesh",
         [](const body::BodyModel&) {
             return core::makeTraditionalChannel({false, false});
         }},
        {"LOD-ABR mesh", makeAbrChannel},
        {"LOD-ABR + degradation", makeAbrChannel, true},
        {"LOD-ABR + arbiter", makeAbrChannel, true,
         core::ArbiterStrategy::MaxMin},
        {"keypoint semantics",
         [](const body::BodyModel&) {
             core::KeypointChannelOptions opt;
             opt.reconResolution = 32;
             return core::makeKeypointChannel(opt);
         }},
    };

    core::MultiSessionStats arbiterStats;
    std::printf("%-22s %14s %12s %14s %14s %10s\n", "strategy", "aggregate Mbps",
                "mean e2e ms", "within 150 ms", "frames rendered", "fairness");
    for (const Strategy& strategy : strategies) {
        core::ConferenceConfig conf;
        conf.session.frames = 15;
        conf.session.motion = body::MotionKind::Talk;
        conf.session.link.bandwidth = net::BandwidthTrace::constant(25e6);
        conf.session.link.propagationDelayS = 0.03;
        conf.session.link.queueCapacityBytes = 4 * 1024 * 1024;
        if (strategy.degradation) {
            conf.session.degradation.enabled = true;
            conf.session.degradation.maxLevel = 3;
            conf.session.degradation.downgradeAfter = 1;
            conf.session.degradation.upgradeAfter = 10;
        }
        conf.arbiter.strategy = strategy.arbiter;
        // Server fan-out: every viewer receives the other five streams
        // over a broadband downlink.
        conf.downlink.bandwidth = net::BandwidthTrace::constant(100e6);
        conf.downlink.queueCapacityBytes = 8 * 1024 * 1024;
        conf.participants.resize(kUsers);
        for (auto& p : conf.participants) p.channelFactory = strategy.make;

        const auto stats = core::runConference(conf, model);
        if (strategy.arbiter != core::ArbiterStrategy::None)
            arbiterStats = stats;
        std::size_t rendered = 0;
        for (const auto& user : stats.perUser) rendered += user.decodedFrames;
        std::printf("%-22s %14.2f %12.0f %11zu/%zu %13zu/%zu %10.3f\n",
                    strategy.label, stats.aggregateMbps, stats.meanE2eMs,
                    stats.usersWithinLatency(150.0), kUsers, rendered,
                    kUsers * conf.session.frames, stats.fairnessIndex);
    }

    // Per-user fairness for the arbiter strategy: what uplink rate the
    // server asked each participant to hold, who backed off, and what
    // slice of the uplink each participant ended with.
    std::printf("\nLOD-ABR + max-min arbiter, per participant:\n");
    std::printf("%-6s %12s %12s %12s %8s %12s %10s\n", "user", "delivered",
                "target Mbps", "share", "e2e ms", "downs/ups", "final lvl");
    for (const core::UserFairnessStats& f : arbiterStats.fairness) {
        std::printf("%-6zu %9zu/%zu %12.2f %12.2f %8.0f %9llu/%llu %10zu\n",
                    f.user, f.deliveredFrames, f.capturedFrames,
                    f.targetRateMbps, f.bandwidthShare, f.meanE2eMs,
                    static_cast<unsigned long long>(f.degradations),
                    static_cast<unsigned long long>(f.upgrades),
                    f.finalDegradationLevel);
    }

    // Downlink fan-out: how much the server pushed to each viewer (the
    // other five streams, thinned by that viewer's subscription ladder).
    std::printf("\nServer fan-out (arbiter run): %llu frames, %.2f MB total\n",
                static_cast<unsigned long long>(arbiterStats.serverFanoutFrames),
                static_cast<double>(arbiterStats.serverFanoutBytes) / 1e6);
    for (const core::DownlinkStats& d : arbiterStats.downlinks)
        std::printf("  viewer %zu: %zu/%zu frames delivered, share %.2f\n",
                    d.viewer, d.framesDelivered, d.framesForwarded,
                    d.fanoutShare);

    std::printf(
        "\nRaw meshes want %.0fx the uplink and stall for everyone; the LOD-ABR\n"
        "baseline survives by degrading geometry; the closed loop lets each\n"
        "participant shed quality against its observed link outcomes, and the\n"
        "bandwidth arbiter coordinates those loops so the link is split evenly\n"
        "instead of first-to-recover-wins; keypoint semantics carries all six\n"
        "participants in under a tenth of the link — the paper's argument for\n"
        "semantic holographic communication, at conference scale.\n",
        6.0 * 95.0 / 25.0);
    return 0;
}
