// Holographic conference: six participants share one uplink. Compares
// four strategies for the same meeting — raw meshes, LOD-ABR meshes,
// LOD-ABR with the closed-loop degradation policy, and keypoint
// semantics — and prints who actually fits, plus how fairly the link
// was shared. This is the 6G telepresence vision of the paper's
// introduction, run end to end through the per-tick conference
// scheduler (every user's policy observes its own link outcomes each
// capture tick).
#include <cstdio>
#include <memory>

#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"

using namespace semholo;

namespace {

struct Strategy {
    const char* label;
    std::function<std::unique_ptr<core::SemanticChannel>()> make;
    bool degradation{false};
};

std::unique_ptr<core::SemanticChannel> makeAbrChannel() {
    core::AdaptiveMeshOptions opt;
    opt.ladderTriangles = {800, 3000, 10000, 25000};
    return core::makeAdaptiveMeshChannel(opt);
}

}  // namespace

int main() {
    std::printf("SemHolo holographic conference: 6 participants, one 25 Mbps uplink\n\n");

    const body::BodyModel model{body::ShapeParams{}};
    constexpr std::size_t kUsers = 6;

    const std::vector<Strategy> strategies{
        {"raw mesh", [] { return core::makeTraditionalChannel({false, false}); }},
        {"LOD-ABR mesh", makeAbrChannel},
        {"LOD-ABR + degradation", makeAbrChannel, true},
        {"keypoint semantics",
         [] {
             core::KeypointChannelOptions opt;
             opt.reconResolution = 32;
             return core::makeKeypointChannel(opt);
         }},
    };

    core::MultiSessionStats degradedStats;
    std::printf("%-22s %14s %12s %14s %14s %10s\n", "strategy", "aggregate Mbps",
                "mean e2e ms", "within 150 ms", "frames rendered", "fairness");
    for (const Strategy& strategy : strategies) {
        std::vector<std::unique_ptr<core::SemanticChannel>> owned;
        std::vector<core::SemanticChannel*> channels;
        for (std::size_t u = 0; u < kUsers; ++u) {
            owned.push_back(strategy.make());
            channels.push_back(owned.back().get());
        }
        core::SessionConfig cfg;
        cfg.frames = 15;
        cfg.motion = body::MotionKind::Talk;
        cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
        cfg.link.propagationDelayS = 0.03;
        cfg.link.queueCapacityBytes = 4 * 1024 * 1024;
        if (strategy.degradation) {
            cfg.degradation.enabled = true;
            cfg.degradation.maxLevel = 3;
            cfg.degradation.downgradeAfter = 1;
            cfg.degradation.upgradeAfter = 10;
        }

        const auto stats = core::runMultiUserSession(channels, model, cfg);
        if (strategy.degradation) degradedStats = stats;
        std::size_t rendered = 0;
        for (const auto& user : stats.perUser) rendered += user.decodedFrames;
        std::printf("%-22s %14.2f %12.0f %11zu/%zu %13zu/%zu %10.3f\n",
                    strategy.label, stats.aggregateMbps, stats.meanE2eMs,
                    stats.usersWithinLatency(150.0), kUsers, rendered,
                    kUsers * cfg.frames, stats.fairnessIndex);
    }

    // Per-user fairness for the closed-loop strategy: who backed off,
    // how far, and what slice of the uplink each participant ended with.
    std::printf("\nLOD-ABR + degradation, per participant:\n");
    std::printf("%-6s %12s %12s %8s %12s %10s\n", "user", "delivered",
                "share", "e2e ms", "downs/ups", "final lvl");
    for (const core::UserFairnessStats& f : degradedStats.fairness) {
        std::printf("%-6zu %9zu/%zu %12.2f %8.0f %9llu/%llu %10zu\n", f.user,
                    f.deliveredFrames, f.capturedFrames, f.bandwidthShare,
                    f.meanE2eMs,
                    static_cast<unsigned long long>(f.degradations),
                    static_cast<unsigned long long>(f.upgrades),
                    f.finalDegradationLevel);
    }

    std::printf(
        "\nRaw meshes want %.0fx the uplink and stall for everyone; the LOD-ABR\n"
        "baseline survives by degrading geometry — and with the closed loop on,\n"
        "each participant's own policy sheds quality against its observed link\n"
        "outcomes; keypoint semantics carries all six participants in under a\n"
        "tenth of the link — the paper's argument for semantic holographic\n"
        "communication, at conference scale.\n",
        6.0 * 95.0 / 25.0);
    return 0;
}
