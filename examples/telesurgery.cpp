// Telesurgery (section 1): a latency-critical session using the foveated
// hybrid channel of section 3.1. The remote surgeon's gaze is tracked;
// the region they look at streams as full-quality mesh while the
// periphery is reconstructed from keypoints. Demonstrates gaze
// classification, saccade landing prediction, and the foveal-radius
// trade-off under a tight latency budget.
#include <cstdio>

#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"
#include "semholo/gaze/foveation.hpp"

using namespace semholo;

int main() {
    std::printf("SemHolo telesurgery: foveated hybrid channel under a tight "
                "latency budget\n\n");

    // 1. The surgeon's gaze over the procedure.
    gaze::GazeModelConfig gazeCfg;
    gazeCfg.fixationMeanDurationS = 0.6;  // surgeons fixate long
    gazeCfg.saccadeMeanAmplitudeDeg = 6.0;
    const auto gazeStream = gaze::generateGazeStream(3.0, gazeCfg, 11);
    const auto events = gaze::classifyGaze(gazeStream);
    std::size_t fixations = 0, pursuits = 0, saccades = 0;
    for (const auto& e : events) {
        if (e.type == gaze::EyeMovement::Fixation) ++fixations;
        if (e.type == gaze::EyeMovement::SmoothPursuit) ++pursuits;
        if (e.type == gaze::EyeMovement::Saccade) ++saccades;
    }
    std::printf("gaze: %zu samples -> %zu fixations, %zu pursuits, %zu saccades\n",
                gazeStream.size(), fixations, pursuits, saccades);

    // 2. Saccade landing prediction accuracy (the hard gaze case).
    double predErr = 0.0, naiveErr = 0.0;
    int predicted = 0;
    for (const auto& e : events) {
        if (e.type != gaze::EyeMovement::Saccade || e.endIndex - e.beginIndex < 5)
            continue;
        const std::size_t mid = e.beginIndex + (e.endIndex - e.beginIndex) * 2 / 5;
        const auto pred = gaze::predictSaccadeLanding(gazeStream, e.beginIndex, mid);
        if (!pred.valid) continue;
        predErr += (pred.predicted - gazeStream[e.endIndex].angles).norm();
        naiveErr += (gazeStream[mid].angles - gazeStream[e.endIndex].angles).norm();
        ++predicted;
    }
    if (predicted > 0)
        std::printf("saccade landing prediction: %.1f deg error vs %.1f deg for "
                    "no-prediction (over %d saccades)\n\n",
                    predErr / predicted, naiveErr / predicted, predicted);

    // 3. The operating-room link: metro fibre, 8 ms one way.
    const body::BodyModel model{body::ShapeParams{}};
    core::SessionConfig cfg;
    cfg.frames = 45;
    cfg.motion = body::MotionKind::Collaborate;  // instrument handling
    cfg.link.bandwidth = net::BandwidthTrace::constant(100e6);
    cfg.link.propagationDelayS = 0.008;
    cfg.qualityEvalInterval = 15;
    cfg.qualitySamples = 5000;

    std::printf("%-22s %10s %10s %12s %8s\n", "foveal radius", "Mbps", "e2e ms",
                "chamfer mm", "QoE");
    for (const double radius : {4.0, 7.5, 15.0}) {
        core::FoveatedOptions opt;
        opt.fovealRadiusDeg = radius;
        opt.peripheralResolution = 36;
        auto channel = core::makeFoveatedChannel(opt);
        const auto stats = core::runSession(*channel, model, cfg);
        const auto qoe = core::computeQoE(stats);
        std::printf("%-22.1f %10.2f %10.0f %12.2f %8.2f\n", radius,
                    stats.bandwidthMbps, stats.meanE2eMs, stats.meanChamfer * 1000.0,
                    qoe.mos);
    }

    std::printf(
        "\nThe foveal radius dials bandwidth against peripheral reconstruction\n"
        "cost (section 3.1); gaze prediction keeps the foveal region ahead of\n"
        "the surgeon's saccades.\n");
    return 0;
}
