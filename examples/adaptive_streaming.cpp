// Adaptive image-semantics streaming (section 3.2): a slimmable NeRF
// receiver under a fluctuating link. A harmonic-mean throughput
// estimator feeds a buffer-aware ABR controller that picks the image
// resolution + sub-network width each second; the receiver fine-tunes
// the matching sub-network and renders the remote participant.
#include <cstdio>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/capture/rasterizer.hpp"
#include "semholo/net/abr.hpp"
#include "semholo/net/simulator.hpp"
#include "semholo/nerf/trainer.hpp"

using namespace semholo;

namespace {

struct Level {
    net::QualityLevel q;
    int imgW, imgH;
    float width;
};

std::vector<nerf::TrainView> renderViews(const body::BodyModel& model,
                                         const body::Pose& pose, int w, int h) {
    std::vector<nerf::TrainView> views;
    const mesh::TriMesh gt = model.deform(pose);
    for (int i = 0; i < 3; ++i) {
        const float angle = 2.0f * static_cast<float>(M_PI) * i / 3.0f;
        const geom::Vec3f eye{2.6f * std::sin(angle), 0.2f, 2.6f * std::cos(angle)};
        const auto cam = geom::Camera::lookAt(
            eye, {0, 0, 0}, {0, 1, 0}, geom::CameraIntrinsics::fromFov(w, h, 0.8f));
        views.push_back({cam, capture::rasterize(gt, cam).color});
    }
    return views;
}

std::size_t viewBytes(const std::vector<nerf::TrainView>& views) {
    std::size_t bytes = 0;
    for (const auto& v : views)
        bytes += v.image.pixelCount() / 2;  // block codec: ~0.5 B/pixel
    return bytes;
}

}  // namespace

int main() {
    std::printf("SemHolo adaptive image-semantics streaming\n\n");

    // Ladder bitrates = the actual one-second segment rates of each level
    // (3 views/frame, 30 frames/s, block codec ~0.5 B/pixel).
    const std::vector<Level> ladder{
        {{"low 16x12 / width 0.25", 0.07e6, 1.0}, 16, 12, 0.25f},
        {{"mid 24x18 / width 0.5", 0.16e6, 2.0}, 24, 18, 0.5f},
        {{"high 32x24 / width 1.0", 0.28e6, 3.0}, 32, 24, 1.0f},
    };
    std::vector<net::QualityLevel> qualities;
    for (const Level& l : ladder) qualities.push_back(l.q);
    net::BufferAwareAbr abr(qualities, 0.3, 0.85);
    net::HarmonicEstimator estimator(4);

    // A last-mile that collapses mid-call: 0.4 Mbps for 5 s, then a
    // congestion episode at 0.09 Mbps, then recovery — plus injected
    // faults: a 1 s radio outage at t=11 and Gilbert-Elliott burst loss
    // (reliable segments, so bursts surface as retransmission stalls).
    net::LinkConfig linkCfg;
    linkCfg.bandwidth = net::BandwidthTrace::square(0.4e6, 0.09e6, 5.0);
    linkCfg.propagationDelayS = 0.005;
    linkCfg.faults.outages.push_back({11.0, 1.0});
    linkCfg.faults.burstLoss.enabled = true;
    linkCfg.faults.burstLoss.pGoodToBad = 0.04;
    linkCfg.faults.burstLoss.pBadToGood = 0.25;
    linkCfg.faults.burstLoss.lossBad = 0.5;
    net::LinkSimulator link(linkCfg);

    const body::BodyModel model{body::ShapeParams{}};
    const body::MotionGenerator motion(body::MotionKind::Talk, model.shape());

    // One shared slimmable field serving the entire ladder.
    nerf::FieldConfig fc;
    fc.hiddenWidth = 48;
    fc.hiddenLayers = 3;
    nerf::RadianceField field(fc);
    bool coldStarted = false;
    std::vector<nerf::TrainView> previous;
    double bufferS = 0.3;

    std::printf("%6s %26s %10s %12s %6s %10s %10s\n", "t(s)", "level",
                "est Mbps", "transfer ms", "retx", "PSNR dB", "buffer s");
    for (int second = 0; second < 14; ++second) {
        const double t = static_cast<double>(second);
        const std::size_t levelIdx =
            estimator.hasEstimate() ? abr.chooseLevel(estimator.estimate(), bufferS)
                                    : 0;
        const Level& level = ladder[levelIdx];

        const body::Pose pose = motion.poseAt(t);
        const auto views = renderViews(model, pose, level.imgW, level.imgH);
        // One DASH-style segment: a second's worth of frames at this level.
        const std::size_t segmentBytes = viewBytes(views) * 30;
        const auto transfer = link.sendMessage(segmentBytes, t);
        const double serializationS =
            std::max(1e-4, transfer.durationS() - linkCfg.propagationDelayS);
        estimator.addSample(static_cast<double>(segmentBytes) * 8.0 / serializationS);
        // Buffer drains while the segment downloads, refills by 1 s of it.
        bufferS = std::max(0.0, bufferS - transfer.durationS()) + 1.0 / 3.0;

        nerf::TrainerConfig tc;
        tc.render.near = 1.3f;
        tc.render.far = 3.9f;
        tc.render.samplesPerRay = 18;
        tc.render.widthFraction = level.width;
        tc.raysPerStep = 96;
        nerf::NerfTrainer trainer(field, tc);
        if (!coldStarted) {
            trainer.pretrain(views, 120);  // section 3.2 cold start
            coldStarted = true;
        } else {
            trainer.fineTuneOnChanges(previous, views, 12);
        }
        previous = views;

        const double psnr = trainer.evaluatePSNR(views[0]);
        std::printf("%6.0f %26s %10.2f %12.0f %6zu %10.1f %10.2f\n", t,
                    level.q.name.c_str(), estimator.estimate() / 1e6,
                    transfer.durationS() * 1000.0, transfer.retransmissions,
                    psnr, bufferS);
    }

    std::printf(
        "\nThe controller rides out the congestion episode: width and\n"
        "resolution step down together as throughput collapses and recover\n"
        "afterwards — one shared slimmable model, no per-level retraining\n"
        "(the section 3.2 design). The injected outage and loss bursts show\n"
        "up as retransmission stalls that drain the buffer, and the\n"
        "buffer-aware controller answers by holding the lower rungs.\n");
    return 0;
}
