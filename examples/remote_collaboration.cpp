// Remote collaboration (the paper's section 1 motivating use case): two
// sites exchange keypoint semantics over a simulated broadband path
// while both participants gesture over a shared task. Prints live
// per-second statistics and the end-of-call summary for each direction.
#include <cstdio>

#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"

using namespace semholo;

namespace {

void report(const char* direction, const core::SessionStats& stats) {
    const auto qoe = core::computeQoE(stats);
    std::printf("\n[%s]\n", direction);
    std::printf("  frames: %zu sent, %zu rendered (%zu dropped busy)\n",
                stats.frames.size(), stats.decodedFrames,
                stats.droppedSenderFrames + stats.droppedReceiverFrames);
    std::printf("  bandwidth: %.2f Mbps (raw mesh would need ~95 Mbps)\n",
                stats.bandwidthMbps);
    std::printf("  latency: mean %.0f ms, p95 %.0f ms (interactive bound: 100 ms)\n",
                stats.meanE2eMs, stats.p95E2eMs);
    std::printf("  pipeline: extract %.1f ms + network %.1f ms + reconstruct %.0f ms\n",
                stats.meanExtractMs, stats.meanTransferMs, stats.meanReconMs);
    std::printf("  quality: chamfer %.2f mm | QoE %.2f / 5\n",
                stats.meanChamfer * 1000.0, qoe.mos);
}

}  // namespace

int main() {
    std::printf("SemHolo remote collaboration: two sites, keypoint semantics\n");

    // Two different subjects.
    body::ShapeParams shapeA;  // default adult
    body::ShapeParams shapeB;
    shapeB.betas[0] = -1.5;  // shorter participant
    shapeB.betas[2] = 1.0;   // stockier
    const body::BodyModel alice(shapeA);
    const body::BodyModel bob(shapeB);

    // A transatlantic-ish broadband path: 25 Mbps, 45 ms one way, jitter.
    core::SessionConfig cfg;
    cfg.frames = 90;  // 3 seconds at 30 FPS
    cfg.motion = body::MotionKind::Collaborate;
    cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
    cfg.link.propagationDelayS = 0.045;
    cfg.link.jitterStddevS = 0.004;
    cfg.link.lossRate = 0.002;
    cfg.qualityEvalInterval = 30;
    cfg.qualitySamples = 6000;

    core::KeypointChannelOptions chOpt;
    chOpt.reconResolution = 48;

    // Direction A -> B.
    chOpt.shape = shapeA;
    cfg.motionSeed = 1;
    auto channelAB = core::makeKeypointChannel(chOpt);
    const auto statsAB = core::runSession(*channelAB, alice, cfg);
    report("alice -> bob", statsAB);

    // Direction B -> A (mirrors the structure, per Figure 1).
    chOpt.shape = shapeB;
    cfg.motionSeed = 2;
    auto channelBA = core::makeKeypointChannel(chOpt);
    const auto statsBA = core::runSession(*channelBA, bob, cfg);
    report("bob -> alice", statsBA);

    std::printf(
        "\nBoth directions fit comfortably in broadband; latency is dominated\n"
        "by receiver-side reconstruction, the bottleneck the paper's research\n"
        "agenda (section 3.1) targets.\n");
    return 0;
}
