#include "semholo/geometry/camera.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace semholo::geom {
namespace {

TEST(CameraIntrinsics, ProjectUnprojectRoundTrip) {
    const CameraIntrinsics k = CameraIntrinsics::fromFov(640, 480, 1.0f);
    const Vec3f p{0.3f, -0.2f, 2.5f};
    Vec2f pix;
    ASSERT_TRUE(k.project(p, pix));
    const Vec3f back = k.unproject(pix, p.z);
    EXPECT_NEAR(back.x, p.x, 1e-4f);
    EXPECT_NEAR(back.y, p.y, 1e-4f);
    EXPECT_NEAR(back.z, p.z, 1e-4f);
}

TEST(CameraIntrinsics, BehindCameraRejected) {
    const CameraIntrinsics k;
    Vec2f pix;
    EXPECT_FALSE(k.project({0, 0, -1.0f}, pix));
    EXPECT_FALSE(k.project({0, 0, 0.0f}, pix));
}

TEST(CameraIntrinsics, PrincipalPointProjectsToCenter) {
    const CameraIntrinsics k = CameraIntrinsics::fromFov(640, 480, 1.2f);
    Vec2f pix;
    ASSERT_TRUE(k.project({0, 0, 1.0f}, pix));
    EXPECT_NEAR(pix.x, 320.0f, 1e-4f);
    EXPECT_NEAR(pix.y, 240.0f, 1e-4f);
}

TEST(CameraIntrinsics, FovMatchesGeometry) {
    const float fov = 1.0f;
    const CameraIntrinsics k = CameraIntrinsics::fromFov(640, 480, fov);
    // A point at the top edge of the image should subtend fov/2.
    const Vec3f dir = k.unproject({320.0f, 0.0f}, 1.0f);
    const float angle = std::atan2(std::fabs(dir.y), dir.z);
    EXPECT_NEAR(angle, fov * 0.5f, 1e-4f);
}

TEST(CameraIntrinsics, PixelRayIsNormalizedAndForward) {
    const CameraIntrinsics k;
    const Ray r = k.pixelRay({100.0f, 200.0f});
    EXPECT_NEAR(r.direction.norm(), 1.0f, 1e-5f);
    EXPECT_GT(r.direction.z, 0.0f);
}

TEST(CameraIntrinsics, InBounds) {
    const CameraIntrinsics k = CameraIntrinsics::fromFov(640, 480, 1.0f);
    EXPECT_TRUE(k.inBounds({0, 0}));
    EXPECT_TRUE(k.inBounds({639.5f, 479.5f}));
    EXPECT_FALSE(k.inBounds({640, 100}));
    EXPECT_FALSE(k.inBounds({-1, 100}));
}

TEST(Camera, LookAtSeesTargetAtImageCenter) {
    const CameraIntrinsics k = CameraIntrinsics::fromFov(640, 480, 1.0f);
    const Vec3f eye{2, 1, -3};
    const Vec3f target{0, 1, 0};
    const Camera cam = Camera::lookAt(eye, target, {0, 1, 0}, k);
    Vec2f pix;
    float depth;
    ASSERT_TRUE(cam.projectWorld(target, pix, depth));
    EXPECT_NEAR(pix.x, k.cx, 1e-2f);
    EXPECT_NEAR(pix.y, k.cy, 1e-2f);
    EXPECT_NEAR(depth, (target - eye).norm(), 1e-4f);
}

TEST(Camera, WorldCameraRoundTrip) {
    const Camera cam = Camera::lookAt({1, 2, 3}, {0, 0, 0}, {0, 1, 0},
                                      CameraIntrinsics::fromFov(320, 240, 1.0f));
    const Vec3f p{0.4f, -0.6f, 0.9f};
    const Vec3f back = cam.cameraToWorld(cam.worldToCamera(p));
    EXPECT_NEAR(back.x, p.x, 1e-4f);
    EXPECT_NEAR(back.y, p.y, 1e-4f);
    EXPECT_NEAR(back.z, p.z, 1e-4f);
}

TEST(Camera, PixelRayWorldPassesThroughProjectedPoint) {
    const Camera cam = Camera::lookAt({0, 0, -5}, {0, 0, 0}, {0, 1, 0},
                                      CameraIntrinsics::fromFov(640, 480, 1.0f));
    const Vec3f p{0.5f, 0.3f, 1.0f};
    Vec2f pix;
    float depth;
    ASSERT_TRUE(cam.projectWorld(p, pix, depth));
    const Ray r = cam.pixelRayWorld(pix);
    // The point should lie on the ray.
    const Vec3f onRay = r.at((p - r.origin).dot(r.direction));
    EXPECT_NEAR((onRay - p).norm(), 0.0f, 1e-3f);
}

TEST(Camera, ImageYAxisPointsDown) {
    // A point above the target must land in the upper half of the image
    // (smaller y pixel coordinate).
    const Camera cam = Camera::lookAt({0, 0, -5}, {0, 0, 0}, {0, 1, 0},
                                      CameraIntrinsics::fromFov(640, 480, 1.0f));
    Vec2f above, below;
    float d;
    ASSERT_TRUE(cam.projectWorld({0, 0.5f, 0}, above, d));
    ASSERT_TRUE(cam.projectWorld({0, -0.5f, 0}, below, d));
    EXPECT_LT(above.y, below.y);
}

}  // namespace
}  // namespace semholo::geom
