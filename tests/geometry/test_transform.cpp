#include "semholo/geometry/transform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace semholo::geom {
namespace {

TEST(RigidTransform, IdentityIsNeutral) {
    const RigidTransform id = RigidTransform::identity();
    const Vec3f p{1, 2, 3};
    EXPECT_EQ(id.apply(p), p);
}

TEST(RigidTransform, InverseUndoes) {
    std::mt19937 rng(2);
    std::uniform_real_distribution<float> uni(-2.0f, 2.0f);
    for (int trial = 0; trial < 50; ++trial) {
        const RigidTransform xf{Quat::fromAxisAngle({uni(rng), uni(rng), uni(rng)}),
                                {uni(rng), uni(rng), uni(rng)}};
        const Vec3f p{uni(rng), uni(rng), uni(rng)};
        const Vec3f back = xf.inverse().apply(xf.apply(p));
        EXPECT_NEAR(back.x, p.x, 1e-4f);
        EXPECT_NEAR(back.y, p.y, 1e-4f);
        EXPECT_NEAR(back.z, p.z, 1e-4f);
    }
}

TEST(RigidTransform, CompositionMatchesSequentialApplication) {
    const RigidTransform a{Quat::fromAxisAngle({0, 0.5f, 0}), {1, 0, 0}};
    const RigidTransform b{Quat::fromAxisAngle({0.3f, 0, 0}), {0, 2, 0}};
    const Vec3f p{1, 1, 1};
    const Vec3f seq = a.apply(b.apply(p));
    const Vec3f comp = (a * b).apply(p);
    EXPECT_NEAR(seq.x, comp.x, 1e-5f);
    EXPECT_NEAR(seq.y, comp.y, 1e-5f);
    EXPECT_NEAR(seq.z, comp.z, 1e-5f);
}

TEST(RigidTransform, Mat4RoundTrip) {
    const RigidTransform xf{Quat::fromAxisAngle({0.4f, -0.2f, 0.9f}), {3, -1, 2}};
    const RigidTransform back = RigidTransform::fromMat4(xf.toMat4());
    const Vec3f p{0.5f, -0.7f, 1.2f};
    const Vec3f a = xf.apply(p), b = back.apply(p);
    EXPECT_NEAR(a.x, b.x, 1e-4f);
    EXPECT_NEAR(a.y, b.y, 1e-4f);
    EXPECT_NEAR(a.z, b.z, 1e-4f);
}

TEST(RigidTransform, InterpolateEndpoints) {
    const RigidTransform a{Quat::identity(), {0, 0, 0}};
    const RigidTransform b{Quat::fromAxisAngle({0, 1, 0}), {2, 2, 2}};
    const Vec3f p{1, 0, 0};
    EXPECT_EQ(interpolate(a, b, 0.0f).apply(p), a.apply(p));
    const Vec3f atB = interpolate(a, b, 1.0f).apply(p);
    const Vec3f expectB = b.apply(p);
    EXPECT_NEAR(atB.x, expectB.x, 1e-5f);
    EXPECT_NEAR(atB.z, expectB.z, 1e-5f);
}

TEST(AABB, ExpandAndContain) {
    AABB box;
    EXPECT_TRUE(box.empty());
    box.expand({0, 0, 0});
    box.expand({1, 2, 3});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains({0.5f, 1.0f, 1.5f}));
    EXPECT_FALSE(box.contains({2, 0, 0}));
    EXPECT_EQ(box.center(), (Vec3f{0.5f, 1.0f, 1.5f}));
    EXPECT_EQ(box.extent(), (Vec3f{1, 2, 3}));
}

TEST(AABB, InflateGrowsAllSides) {
    AABB box;
    box.expand({0, 0, 0});
    box.expand({1, 1, 1});
    box.inflate(0.5f);
    EXPECT_TRUE(box.contains({-0.4f, -0.4f, -0.4f}));
    EXPECT_TRUE(box.contains({1.4f, 1.4f, 1.4f}));
}

TEST(AABB, Intersects) {
    AABB a, b, c;
    a.expand({0, 0, 0});
    a.expand({1, 1, 1});
    b.expand({0.5f, 0.5f, 0.5f});
    b.expand({2, 2, 2});
    c.expand({3, 3, 3});
    c.expand({4, 4, 4});
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(c));
}

TEST(AABB, RayIntersection) {
    AABB box;
    box.expand({-1, -1, -1});
    box.expand({1, 1, 1});
    float t0, t1;
    // Straight through the middle.
    EXPECT_TRUE(box.intersectRay({{-5, 0, 0}, {1, 0, 0}}, t0, t1));
    EXPECT_NEAR(t0, 4.0f, 1e-5f);
    EXPECT_NEAR(t1, 6.0f, 1e-5f);
    // Misses.
    EXPECT_FALSE(box.intersectRay({{-5, 3, 0}, {1, 0, 0}}, t0, t1));
    // Axis-parallel ray inside the slab.
    EXPECT_TRUE(box.intersectRay({{0, 0, -5}, {0, 0, 1}}, t0, t1));
}

TEST(PointSegmentDistance, InteriorAndEndpoints) {
    float t;
    // Closest to the middle of the segment.
    EXPECT_NEAR(pointSegmentDistance({0, 1, 0}, {-1, 0, 0}, {1, 0, 0}, t), 1.0f, 1e-5f);
    EXPECT_NEAR(t, 0.5f, 1e-5f);
    // Clamped to an endpoint.
    EXPECT_NEAR(pointSegmentDistance({3, 0, 0}, {-1, 0, 0}, {1, 0, 0}, t), 2.0f, 1e-5f);
    EXPECT_NEAR(t, 1.0f, 1e-5f);
    // Degenerate segment.
    EXPECT_NEAR(pointSegmentDistance({1, 0, 0}, {0, 0, 0}, {0, 0, 0}, t), 1.0f, 1e-5f);
}

TEST(ClosestPointOnTriangle, RegionsCovered) {
    const Vec3f a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0};
    // Interior projection.
    const Vec3f pi = closestPointOnTriangle({0.5f, 0.5f, 3.0f}, a, b, c);
    EXPECT_NEAR(pi.x, 0.5f, 1e-5f);
    EXPECT_NEAR(pi.y, 0.5f, 1e-5f);
    EXPECT_NEAR(pi.z, 0.0f, 1e-5f);
    // Vertex region.
    EXPECT_EQ(closestPointOnTriangle({-1, -1, 0}, a, b, c), a);
    // Edge region (edge ab).
    const Vec3f pe = closestPointOnTriangle({1, -2, 0}, a, b, c);
    EXPECT_NEAR(pe.x, 1.0f, 1e-5f);
    EXPECT_NEAR(pe.y, 0.0f, 1e-5f);
}

}  // namespace
}  // namespace semholo::geom
