#include "semholo/geometry/vec.hpp"

#include <gtest/gtest.h>

namespace semholo::geom {
namespace {

TEST(Vec3, ArithmeticBasics) {
    const Vec3f a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, (Vec3f{5, 7, 9}));
    EXPECT_EQ(b - a, (Vec3f{3, 3, 3}));
    EXPECT_EQ(a * 2.0f, (Vec3f{2, 4, 6}));
    EXPECT_EQ(2.0f * a, a * 2.0f);
    EXPECT_EQ(-a, (Vec3f{-1, -2, -3}));
}

TEST(Vec3, DotAndCross) {
    const Vec3f x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_FLOAT_EQ(x.dot(y), 0.0f);
    EXPECT_EQ(x.cross(y), z);
    EXPECT_EQ(y.cross(z), x);
    EXPECT_EQ(z.cross(x), y);
    EXPECT_EQ(x.cross(x), (Vec3f{}));
}

TEST(Vec3, NormAndNormalize) {
    const Vec3f v{3, 4, 0};
    EXPECT_FLOAT_EQ(v.norm(), 5.0f);
    EXPECT_FLOAT_EQ(v.normalized().norm(), 1.0f);
    // Normalizing zero stays zero rather than producing NaN.
    EXPECT_EQ((Vec3f{}).normalized(), (Vec3f{}));
}

TEST(Vec3, IndexingMatchesComponents) {
    Vec3f v{7, 8, 9};
    EXPECT_FLOAT_EQ(v[0], 7.0f);
    EXPECT_FLOAT_EQ(v[1], 8.0f);
    EXPECT_FLOAT_EQ(v[2], 9.0f);
    v[1] = 42.0f;
    EXPECT_FLOAT_EQ(v.y, 42.0f);
}

TEST(Vec3, MinMaxCoeff) {
    const Vec3f v{-2, 5, 1};
    EXPECT_FLOAT_EQ(v.minCoeff(), -2.0f);
    EXPECT_FLOAT_EQ(v.maxCoeff(), 5.0f);
}

TEST(Vec3, CwiseProduct) {
    EXPECT_EQ((Vec3f{1, 2, 3}).cwise({4, 5, 6}), (Vec3f{4, 10, 18}));
}

TEST(Vec3, CastConvertsComponentTypes) {
    const Vec3f v{1.7f, -2.3f, 3.0f};
    const Vec3<int> i = v.cast<int>();
    EXPECT_EQ(i.x, 1);
    EXPECT_EQ(i.y, -2);
    EXPECT_EQ(i.z, 3);
}

TEST(Vec2, Basics) {
    const Vec2f a{1, 2}, b{3, 4};
    EXPECT_EQ(a + b, (Vec2f{4, 6}));
    EXPECT_FLOAT_EQ(a.dot(b), 11.0f);
    EXPECT_FLOAT_EQ((Vec2f{3, 4}).norm(), 5.0f);
}

TEST(Vec4, BasicsAndXYZ) {
    const Vec4f v{1, 2, 3, 4};
    EXPECT_EQ(v.xyz(), (Vec3f{1, 2, 3}));
    EXPECT_FLOAT_EQ(v.dot(v), 30.0f);
    const Vec4f fromVec3{Vec3f{1, 2, 3}, 1.0f};
    EXPECT_FLOAT_EQ(fromVec3.w, 1.0f);
}

TEST(Lerp, EndpointsAndMidpoint) {
    const Vec3f a{0, 0, 0}, b{2, 4, 8};
    EXPECT_EQ(lerp(a, b, 0.0f), a);
    EXPECT_EQ(lerp(a, b, 1.0f), b);
    EXPECT_EQ(lerp(a, b, 0.5f), (Vec3f{1, 2, 4}));
}

TEST(Clamp, Bounds) {
    EXPECT_FLOAT_EQ(clamp(5.0f, 0.0f, 1.0f), 1.0f);
    EXPECT_FLOAT_EQ(clamp(-5.0f, 0.0f, 1.0f), 0.0f);
    EXPECT_FLOAT_EQ(clamp(0.5f, 0.0f, 1.0f), 0.5f);
}

}  // namespace
}  // namespace semholo::geom
