#include "semholo/geometry/quat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace semholo::geom {
namespace {

Quat randomRotation(std::mt19937& rng) {
    std::uniform_real_distribution<float> uni(-3.0f, 3.0f);
    return Quat::fromAxisAngle({uni(rng), uni(rng), uni(rng)});
}

TEST(Quat, IdentityRotatesNothing) {
    const Vec3f v{1, 2, 3};
    EXPECT_EQ(Quat::identity().rotate(v), v);
}

TEST(Quat, AxisAngleRoundTrip) {
    std::mt19937 rng(3);
    std::uniform_real_distribution<float> uni(-1.0f, 1.0f);
    for (int trial = 0; trial < 100; ++trial) {
        Vec3f aa{uni(rng), uni(rng), uni(rng)};
        aa = aa.normalized() * std::fabs(uni(rng)) * 3.0f;  // |angle| < pi
        const Quat q = Quat::fromAxisAngle(aa);
        const Vec3f back = q.toAxisAngle();
        if (aa.norm() > static_cast<float>(M_PI)) continue;  // wraps; skip
        EXPECT_NEAR(back.x, aa.x, 1e-4f);
        EXPECT_NEAR(back.y, aa.y, 1e-4f);
        EXPECT_NEAR(back.z, aa.z, 1e-4f);
    }
}

TEST(Quat, MatrixRoundTrip) {
    std::mt19937 rng(4);
    for (int trial = 0; trial < 100; ++trial) {
        const Quat q = randomRotation(rng);
        const Quat back = Quat::fromMatrix(q.toMatrix());
        // q and -q encode the same rotation.
        EXPECT_NEAR(std::fabs(q.dot(back)), 1.0f, 1e-5f);
    }
}

TEST(Quat, RotateMatchesMatrix) {
    std::mt19937 rng(6);
    std::uniform_real_distribution<float> uni(-2.0f, 2.0f);
    for (int trial = 0; trial < 50; ++trial) {
        const Quat q = randomRotation(rng);
        const Vec3f v{uni(rng), uni(rng), uni(rng)};
        const Vec3f a = q.rotate(v);
        const Vec3f b = q.toMatrix() * v;
        EXPECT_NEAR(a.x, b.x, 1e-4f);
        EXPECT_NEAR(a.y, b.y, 1e-4f);
        EXPECT_NEAR(a.z, b.z, 1e-4f);
    }
}

TEST(Quat, CompositionMatchesSequentialRotation) {
    std::mt19937 rng(8);
    std::uniform_real_distribution<float> uni(-2.0f, 2.0f);
    for (int trial = 0; trial < 50; ++trial) {
        const Quat q1 = randomRotation(rng);
        const Quat q2 = randomRotation(rng);
        const Vec3f v{uni(rng), uni(rng), uni(rng)};
        const Vec3f seq = q1.rotate(q2.rotate(v));
        const Vec3f comp = (q1 * q2).rotate(v);
        EXPECT_NEAR(seq.x, comp.x, 1e-4f);
        EXPECT_NEAR(seq.y, comp.y, 1e-4f);
        EXPECT_NEAR(seq.z, comp.z, 1e-4f);
    }
}

TEST(Quat, ConjugateInvertsRotation) {
    const Quat q = Quat::fromAxisAngle({0.5f, 1.0f, -0.3f});
    const Vec3f v{2, -1, 4};
    const Vec3f back = q.conjugate().rotate(q.rotate(v));
    EXPECT_NEAR(back.x, v.x, 1e-5f);
    EXPECT_NEAR(back.y, v.y, 1e-5f);
    EXPECT_NEAR(back.z, v.z, 1e-5f);
}

TEST(Quat, FromTwoVectors) {
    std::mt19937 rng(9);
    std::uniform_real_distribution<float> uni(-1.0f, 1.0f);
    for (int trial = 0; trial < 50; ++trial) {
        const Vec3f a = Vec3f{uni(rng), uni(rng), uni(rng)}.normalized();
        const Vec3f b = Vec3f{uni(rng), uni(rng), uni(rng)}.normalized();
        if (a.norm2() < 0.1f || b.norm2() < 0.1f) continue;
        const Quat q = Quat::fromTwoVectors(a, b);
        const Vec3f rotated = q.rotate(a);
        EXPECT_NEAR(rotated.x, b.x, 1e-4f);
        EXPECT_NEAR(rotated.y, b.y, 1e-4f);
        EXPECT_NEAR(rotated.z, b.z, 1e-4f);
    }
}

TEST(Quat, FromTwoVectorsAntipodal) {
    const Vec3f a{1, 0, 0};
    const Quat q = Quat::fromTwoVectors(a, -a);
    const Vec3f r = q.rotate(a);
    EXPECT_NEAR(r.x, -1.0f, 1e-5f);
    EXPECT_NEAR(r.norm(), 1.0f, 1e-5f);
}

TEST(Quat, SlerpEndpointsAndUnitNorm) {
    const Quat a = Quat::fromAxisAngle({0.2f, 0, 0});
    const Quat b = Quat::fromAxisAngle({0, 1.5f, 0});
    EXPECT_NEAR(std::fabs(slerp(a, b, 0.0f).dot(a)), 1.0f, 1e-5f);
    EXPECT_NEAR(std::fabs(slerp(a, b, 1.0f).dot(b)), 1.0f, 1e-5f);
    for (float t = 0.0f; t <= 1.0f; t += 0.1f)
        EXPECT_NEAR(slerp(a, b, t).norm(), 1.0f, 1e-5f);
}

TEST(Quat, SlerpHalfwayHasHalfAngle) {
    const Quat a = Quat::identity();
    const Quat b = Quat::fromAxisAngle({0, 0, 1.0f});
    const Quat mid = slerp(a, b, 0.5f);
    EXPECT_NEAR(angularDistance(a, mid), 0.5f, 1e-4f);
    EXPECT_NEAR(angularDistance(mid, b), 0.5f, 1e-4f);
}

TEST(Quat, AngularDistanceProperties) {
    const Quat a = Quat::fromAxisAngle({0.4f, 0.1f, 0});
    EXPECT_NEAR(angularDistance(a, a), 0.0f, 1e-4f);
    const Quat b = Quat::fromAxisAngle({0, 0, 2.0f});
    EXPECT_NEAR(angularDistance(Quat::identity(), b), 2.0f, 1e-4f);
    // Symmetric.
    EXPECT_NEAR(angularDistance(a, b), angularDistance(b, a), 1e-5f);
}

TEST(Quat, NormalizedHandlesZero) {
    const Quat z{0, 0, 0, 0};
    EXPECT_EQ(z.normalized(), Quat::identity());
}

}  // namespace
}  // namespace semholo::geom
