#include "semholo/geometry/mat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace semholo::geom {
namespace {

void expectNear(const Mat3& a, const Mat3& b, float tol = 1e-5f) {
    for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(a.m[i], b.m[i], tol) << "index " << i;
}

void expectNear(const Mat4& a, const Mat4& b, float tol = 1e-5f) {
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(a.m[i], b.m[i], tol) << "index " << i;
}

TEST(Mat3, IdentityIsNeutral) {
    const Mat3 i = Mat3::identity();
    const Vec3f v{1, -2, 3};
    EXPECT_EQ(i * v, v);
    expectNear(i * i, i);
}

TEST(Mat3, RotationZRotatesXToY) {
    const Mat3 r = Mat3::rotationZ(static_cast<float>(M_PI) / 2.0f);
    const Vec3f v = r * Vec3f{1, 0, 0};
    EXPECT_NEAR(v.x, 0.0f, 1e-6f);
    EXPECT_NEAR(v.y, 1.0f, 1e-6f);
}

TEST(Mat3, AxisAngleMatchesEulerRotations) {
    const float angle = 0.7f;
    expectNear(Mat3::fromAxisAngle({angle, 0, 0}), Mat3::rotationX(angle));
    expectNear(Mat3::fromAxisAngle({0, angle, 0}), Mat3::rotationY(angle));
    expectNear(Mat3::fromAxisAngle({0, 0, angle}), Mat3::rotationZ(angle));
}

TEST(Mat3, AxisAngleSmallAngleStable) {
    const Mat3 r = Mat3::fromAxisAngle({1e-10f, 0, 0});
    expectNear(r, Mat3::identity(), 1e-6f);
}

TEST(Mat3, RotationsAreOrthonormal) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<float> uni(-3.0f, 3.0f);
    for (int trial = 0; trial < 50; ++trial) {
        const Mat3 r = Mat3::fromAxisAngle({uni(rng), uni(rng), uni(rng)});
        expectNear(r * r.transposed(), Mat3::identity(), 1e-5f);
        EXPECT_NEAR(r.determinant(), 1.0f, 1e-5f);
    }
}

TEST(Mat3, InverseTimesSelfIsIdentity) {
    Mat3 m;
    m(0, 0) = 2;
    m(0, 1) = 1;
    m(1, 1) = 3;
    m(2, 0) = -1;
    m(2, 2) = 4;
    expectNear(m * m.inverse(), Mat3::identity(), 1e-5f);
}

TEST(Mat3, SingularInverseReturnsIdentity) {
    const Mat3 z = Mat3::zero();
    expectNear(z.inverse(), Mat3::identity());
}

TEST(Mat3, SkewReproducesCrossProduct) {
    const Vec3f v{1, 2, 3}, w{-4, 0, 2};
    const Vec3f viaMatrix = Mat3::skew(v) * w;
    const Vec3f direct = v.cross(w);
    EXPECT_NEAR(viaMatrix.x, direct.x, 1e-6f);
    EXPECT_NEAR(viaMatrix.y, direct.y, 1e-6f);
    EXPECT_NEAR(viaMatrix.z, direct.z, 1e-6f);
}

TEST(Mat3, OuterProduct) {
    const Mat3 o = Mat3::outer({1, 2, 3}, {4, 5, 6});
    EXPECT_FLOAT_EQ(o(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(o(1, 2), 12.0f);
    EXPECT_FLOAT_EQ(o(2, 1), 15.0f);
}

TEST(Mat4, TranslationMovesPoints) {
    const Mat4 t = Mat4::translation({1, 2, 3});
    EXPECT_EQ(t.transformPoint({0, 0, 0}), (Vec3f{1, 2, 3}));
    // Directions are unaffected by translation.
    EXPECT_EQ(t.transformVector({1, 0, 0}), (Vec3f{1, 0, 0}));
}

TEST(Mat4, CompositionOrder) {
    const Mat4 t = Mat4::translation({1, 0, 0});
    const Mat4 r = Mat4::fromRT(Mat3::rotationZ(static_cast<float>(M_PI) / 2.0f), {});
    // (t * r) applies rotation first, then translation.
    const Vec3f p = (t * r).transformPoint({1, 0, 0});
    EXPECT_NEAR(p.x, 1.0f, 1e-6f);
    EXPECT_NEAR(p.y, 1.0f, 1e-6f);
}

TEST(Mat4, GeneralInverse) {
    std::mt19937 rng(5);
    std::uniform_real_distribution<float> uni(-2.0f, 2.0f);
    for (int trial = 0; trial < 20; ++trial) {
        Mat4 m;
        for (std::size_t i = 0; i < 16; ++i) m.m[i] = uni(rng);
        m(3, 0) = 0;
        m(3, 1) = 0;
        m(3, 2) = 0;
        m(3, 3) = 1;
        // Skip near-singular draws.
        const Mat4 inv = m.inverse();
        const Mat4 prod = m * inv;
        if (std::fabs(prod(0, 0) - 1.0f) > 0.5f) continue;
        expectNear(prod, Mat4::identity(), 1e-3f);
    }
}

TEST(Mat4, RigidInverseMatchesGeneralInverse) {
    const Mat3 r = Mat3::fromAxisAngle({0.3f, -0.8f, 0.5f});
    const Mat4 m = Mat4::fromRT(r, {1, -2, 3});
    expectNear(m.rigidInverse(), m.inverse(), 1e-4f);
}

TEST(Mat4, RotationAndTranslationAccessors) {
    const Mat3 r = Mat3::rotationY(0.4f);
    const Mat4 m = Mat4::fromRT(r, {5, 6, 7});
    expectNear(Mat4::fromRT(m.rotation(), m.translationPart()), m);
    EXPECT_EQ(m.translationPart(), (Vec3f{5, 6, 7}));
}

}  // namespace
}  // namespace semholo::geom
