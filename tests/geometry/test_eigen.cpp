#include "semholo/geometry/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace semholo::geom {
namespace {

TEST(JacobiEigen, DiagonalMatrix) {
    const std::vector<double> m{3.0, 0.0, 0.0,  //
                                0.0, 1.0, 0.0,  //
                                0.0, 0.0, 2.0};
    const auto eig = jacobiEigenSymmetric(m, 3);
    ASSERT_EQ(eig.values.size(), 3u);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
    // Leading eigenvector is +-e_x.
    EXPECT_NEAR(std::fabs(eig.vector(0)[0]), 1.0, 1e-10);
}

TEST(JacobiEigen, Known2x2) {
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    const std::vector<double> m{2.0, 1.0, 1.0, 2.0};
    const auto eig = jacobiEigenSymmetric(m, 2);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
    // Eigenvector of 3 is (1,1)/sqrt(2).
    EXPECT_NEAR(std::fabs(eig.vector(0)[0]), std::sqrt(0.5), 1e-8);
    EXPECT_NEAR(std::fabs(eig.vector(0)[1]), std::sqrt(0.5), 1e-8);
}

TEST(JacobiEigen, ReconstructsRandomSymmetricMatrix) {
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> uni(-1.0, 1.0);
    const std::size_t n = 12;
    std::vector<double> m(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) m[i * n + j] = m[j * n + i] = uni(rng);

    const auto eig = jacobiEigenSymmetric(m, n);
    // A == sum_k lambda_k v_k v_k^T.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double rebuilt = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                rebuilt += eig.values[k] * eig.vector(k)[i] * eig.vector(k)[j];
            EXPECT_NEAR(rebuilt, m[i * n + j], 1e-8);
        }
    }
}

TEST(JacobiEigen, EigenvectorsOrthonormal) {
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> uni(-2.0, 2.0);
    const std::size_t n = 20;
    std::vector<double> m(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) m[i * n + j] = m[j * n + i] = uni(rng);
    const auto eig = jacobiEigenSymmetric(m, n);
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a; b < n; ++b) {
            double dot = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                dot += eig.vector(a)[i] * eig.vector(b)[i];
            EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
        }
    }
}

TEST(JacobiEigen, PsdGramMatrixNonNegative) {
    // Gram matrices (the PCA use case) must yield non-negative spectra.
    std::mt19937 rng(13);
    std::normal_distribution<double> g(0.0, 1.0);
    const std::size_t samples = 6, dim = 40;
    std::vector<std::vector<double>> x(samples, std::vector<double>(dim));
    for (auto& row : x)
        for (double& v : row) v = g(rng);
    std::vector<double> gram(samples * samples);
    for (std::size_t i = 0; i < samples; ++i)
        for (std::size_t j = 0; j < samples; ++j) {
            double dot = 0.0;
            for (std::size_t d = 0; d < dim; ++d) dot += x[i][d] * x[j][d];
            gram[i * samples + j] = dot;
        }
    const auto eig = jacobiEigenSymmetric(gram, samples);
    for (const double v : eig.values) EXPECT_GT(v, -1e-8);
    // Descending order.
    for (std::size_t k = 1; k < eig.values.size(); ++k)
        EXPECT_GE(eig.values[k - 1], eig.values[k] - 1e-12);
}

TEST(JacobiEigen, EmptyAndUndersizedInputs) {
    EXPECT_TRUE(jacobiEigenSymmetric({}, 0).values.empty());
    EXPECT_TRUE(jacobiEigenSymmetric({1.0}, 2).values.empty());  // too small
}

}  // namespace
}  // namespace semholo::geom
