#include "semholo/geometry/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

namespace semholo::geom::simd {
namespace {

using f32x8 = f32xN<8>;
using b32x8 = b32xN<8>;

TEST(Simd, LoadStoreRoundTrips) {
    float in[8] = {1.0f, -2.5f, 0.0f, 3.25f, -0.125f, 1e6f, -1e-6f, 42.0f};
    const f32x8 v = f32x8::load(in);
    float out[8] = {};
    v.store(out);
    EXPECT_EQ(std::memcmp(in, out, sizeof in), 0);
}

TEST(Simd, ArithmeticMatchesScalarPerLane) {
    std::mt19937 rng(7);
    std::uniform_real_distribution<float> uni(-10.0f, 10.0f);
    for (int trial = 0; trial < 100; ++trial) {
        float a[8], b[8];
        for (int i = 0; i < 8; ++i) {
            a[i] = uni(rng);
            b[i] = uni(rng);
        }
        const f32x8 va = f32x8::load(a), vb = f32x8::load(b);
        float sum[8], dif[8], prd[8], quo[8], mn[8], mx[8], sq[8], cl[8];
        (va + vb).store(sum);
        (va - vb).store(dif);
        (va * vb).store(prd);
        (va / vb).store(quo);
        min(va, vb).store(mn);
        max(va, vb).store(mx);
        sqrt(max(va, f32x8::broadcast(0.0f))).store(sq);
        clamp(va, f32x8::broadcast(-1.0f), f32x8::broadcast(1.0f)).store(cl);
        for (int i = 0; i < 8; ++i) {
            // Bit-equality, not approximate: the determinism contract.
            EXPECT_EQ(sum[i], a[i] + b[i]);
            EXPECT_EQ(dif[i], a[i] - b[i]);
            EXPECT_EQ(prd[i], a[i] * b[i]);
            EXPECT_EQ(quo[i], a[i] / b[i]);
            EXPECT_EQ(mn[i], a[i] < b[i] ? a[i] : b[i]);
            EXPECT_EQ(mx[i], a[i] > b[i] ? a[i] : b[i]);
            EXPECT_EQ(sq[i], std::sqrt(a[i] > 0.0f ? a[i] : 0.0f));
            EXPECT_EQ(cl[i], a[i] < -1.0f ? -1.0f : (a[i] > 1.0f ? 1.0f : a[i]));
        }
    }
}

TEST(Simd, CompareSelectAndMaskOps) {
    float a[8] = {1, 5, 3, 7, 2, 8, 0, -4};
    float b[8] = {4, 4, 4, 4, 4, 4, 4, 4};
    const f32x8 va = f32x8::load(a), vb = f32x8::load(b);
    const b32x8 lt = cmpLt(va, vb);
    const b32x8 gt = cmpGt(va, vb);
    EXPECT_TRUE(lt.any());
    EXPECT_FALSE(lt.all());
    EXPECT_EQ(lt.count(), 5);
    EXPECT_EQ(gt.count(), 3);
    EXPECT_EQ((lt | gt).count(), 8);
    EXPECT_FALSE((lt & gt).any());
    EXPECT_EQ((~lt).count(), 3);
    float sel[8];
    select(lt, va, vb).store(sel);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(sel[i], a[i] < b[i] ? a[i] : b[i]);
}

TEST(Simd, BitTranspose8x8MapsBitRCToCR) {
    // Treating the u64 as an 8x8 bit matrix (byte r = row r), the
    // transpose must map bit (8r + c) to bit (8c + r) — the property the
    // compress::filter bitshuffle fast path relies on.
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const std::uint64_t x = std::uint64_t{1} << (8 * r + c);
            EXPECT_EQ(bitTranspose8x8(x), std::uint64_t{1} << (8 * c + r))
                << "r=" << r << " c=" << c;
        }
    }
}

TEST(Simd, BitTranspose8x8IsAnInvolution) {
    std::mt19937_64 rng(11);
    for (int trial = 0; trial < 1000; ++trial) {
        const std::uint64_t x = rng();
        EXPECT_EQ(bitTranspose8x8(bitTranspose8x8(x)), x);
    }
}

TEST(Simd, BackendNamesAreStable) {
    EXPECT_STREQ(backendName(Backend::Scalar), "scalar");
    EXPECT_STREQ(backendName(Backend::Avx2), "avx2");
    EXPECT_STREQ(backendName(Backend::Neon), "neon");
    // Whatever the host is, the baseline backend must name itself.
    EXPECT_NE(backendName(baselineBackend()), nullptr);
}

}  // namespace
}  // namespace semholo::geom::simd
