// Property-based suites over randomized inputs (parameterized gtest):
// invariants that must hold for *every* seed, not just a hand-picked
// example.
#include <gtest/gtest.h>

#include <random>

#include "semholo/body/animation.hpp"
#include "semholo/body/ik.hpp"
#include "semholo/compress/lzc.hpp"
#include "semholo/compress/meshcodec.hpp"
#include "semholo/mesh/isosurface.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/textsem/delta.hpp"

namespace semholo {
namespace {

// ---- Iso-surface: watertight for any smooth blob field -----------------

class IsoSurfaceBlobProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IsoSurfaceBlobProperty, RandomBlobUnionIsWatertightAndOutward) {
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<float> pos(-0.6f, 0.6f);
    std::uniform_real_distribution<float> rad(0.25f, 0.5f);
    struct Blob {
        geom::Vec3f c;
        float r;
    };
    std::vector<Blob> blobs;
    const int count = 2 + static_cast<int>(GetParam() % 3);
    for (int i = 0; i < count; ++i)
        blobs.push_back({{pos(rng), pos(rng), pos(rng)}, rad(rng)});

    const mesh::ScalarField field = [blobs](geom::Vec3f p) {
        float d = 1e9f;
        for (const Blob& b : blobs) d = std::min(d, (p - b.c).norm() - b.r);
        return d;
    };
    geom::AABB bounds;
    bounds.expand({-1.3f, -1.3f, -1.3f});
    bounds.expand({1.3f, 1.3f, 1.3f});
    const mesh::TriMesh m = mesh::extractIsoSurface(field, bounds, 28);

    ASSERT_GT(m.triangleCount(), 0u);
    EXPECT_EQ(m.countBoundaryEdges(), 0u) << "seed " << GetParam();
    EXPECT_EQ(m.countNonManifoldEdges(), 0u) << "seed " << GetParam();
    // Every vertex lies near the zero level set.
    for (std::size_t i = 0; i < m.vertexCount(); i += 13)
        EXPECT_LT(std::fabs(field(m.vertices[i])), 0.08f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsoSurfaceBlobProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- LZC: round-trip over structured random generators ------------------

struct LzcCase {
    std::uint32_t seed;
    int mode;  // 0 text-ish, 1 floats, 2 sparse, 3 adversarial backrefs
};

class LzcProperty : public ::testing::TestWithParam<LzcCase> {};

TEST_P(LzcProperty, RoundTripExact) {
    const auto [seed, mode] = GetParam();
    std::mt19937 rng(seed);
    std::vector<std::uint8_t> data;
    const std::size_t n = 1000 + (seed * 7919) % 30000;
    switch (mode) {
        case 0: {  // Markov-ish text
            std::uniform_int_distribution<int> c('a', 'z');
            std::uniform_int_distribution<int> rep(1, 9);
            while (data.size() < n) {
                const auto ch = static_cast<std::uint8_t>(c(rng));
                for (int r = rep(rng); r-- > 0 && data.size() < n;)
                    data.push_back(ch);
            }
            break;
        }
        case 1: {  // float32 stream
            std::normal_distribution<float> g(0.0f, 2.0f);
            while (data.size() < n) {
                const float f = g(rng);
                const auto* p = reinterpret_cast<const std::uint8_t*>(&f);
                data.insert(data.end(), p, p + 4);
            }
            break;
        }
        case 2: {  // sparse: mostly zeros with random spikes
            data.assign(n, 0);
            std::uniform_int_distribution<std::size_t> at(0, n - 1);
            std::uniform_int_distribution<int> val(1, 255);
            for (std::size_t k = 0; k < n / 50; ++k)
                data[at(rng)] = static_cast<std::uint8_t>(val(rng));
            break;
        }
        default: {  // adversarial: period exactly at the min-match edge
            for (std::size_t i = 0; i < n; ++i)
                data.push_back(static_cast<std::uint8_t>(i % 3));
            break;
        }
    }
    const auto compressed = compress::lzcCompress(data);
    const auto back = compress::lzcDecompress(compressed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LzcProperty,
    ::testing::Values(LzcCase{1, 0}, LzcCase{2, 0}, LzcCase{3, 1}, LzcCase{4, 1},
                      LzcCase{5, 2}, LzcCase{6, 2}, LzcCase{7, 3}, LzcCase{8, 3},
                      LzcCase{9, 0}, LzcCase{10, 1}));

// ---- Mesh codec: topology exact, geometry bounded, any watertight input --

class MeshCodecProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MeshCodecProperty, RandomBlobMeshSurvivesCodec) {
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<float> pos(-0.5f, 0.5f);
    const geom::Vec3f c1{pos(rng), pos(rng), pos(rng)};
    const geom::Vec3f c2{pos(rng), pos(rng), pos(rng)};
    const mesh::ScalarField field = [&](geom::Vec3f p) {
        return std::min((p - c1).norm() - 0.45f, (p - c2).norm() - 0.35f);
    };
    geom::AABB bounds;
    bounds.expand({-1.2f, -1.2f, -1.2f});
    bounds.expand({1.2f, 1.2f, 1.2f});
    const mesh::TriMesh m = mesh::extractIsoSurface(field, bounds, 20);
    ASSERT_GT(m.triangleCount(), 0u);

    const auto decoded = compress::decodeMesh(compress::encodeMesh(m));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->triangleCount(), m.triangleCount());
    const float bound = compress::quantizationError(m, 11);
    for (std::size_t i = 0; i < m.vertexCount(); ++i)
        EXPECT_LE((decoded->vertices[i] - m.vertices[i]).norm(), bound * 1.01f);
    // Topology preserved => boundary-edge count identical.
    EXPECT_EQ(decoded->countBoundaryEdges(), m.countBoundaryEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshCodecProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

// ---- IK: keypoints of the fit always land near the observations ----------

class IkProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IkProperty, FitResidualBoundedForRandomReachablePoses) {
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<float> angle(-0.8f, 0.8f);
    body::Pose pose;
    for (auto& r : pose.jointRotations) r = {angle(rng), angle(rng), angle(rng)};
    pose.rootTranslation = {angle(rng), angle(rng), angle(rng)};
    const auto kps = body::jointKeypoints(pose);
    const auto fit = body::fitPoseToKeypoints(kps);
    // The frame-alignment solver is exact for single-child chains and
    // near-exact elsewhere: residual stays in the centimetre class even
    // for extreme random poses.
    EXPECT_LT(fit.residual, 0.05f) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IkProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u, 27u, 28u));

// ---- Text delta codec: decoder state always converges to encoder state ---

class DeltaProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeltaProperty, StreamingRoundTripForEveryMotion) {
    const auto kind = static_cast<body::MotionKind>(GetParam());
    const body::MotionGenerator gen(kind);
    textsem::DeltaEncoder enc;
    textsem::DeltaDecoder dec;
    for (int f = 0; f < 40; ++f) {
        body::Pose pose = gen.poseAt(f / 30.0);
        pose.frameId = static_cast<std::uint32_t>(f);
        const auto packet = enc.encode(pose);
        const auto decoded = dec.decode(packet);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_LT(body::poseDistance(pose, *decoded), 0.09f)
            << body::motionName(kind) << " frame " << f;
    }
}

INSTANTIATE_TEST_SUITE_P(Motions, DeltaProperty, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace semholo
