// Cross-module integration tests: the full Figure 1 pipeline assembled
// from real parts, with no channel-level shortcuts.
#include <gtest/gtest.h>

#include "semholo/body/ik.hpp"
#include "semholo/capture/keypoints.hpp"
#include "semholo/compress/lzc.hpp"
#include "semholo/core/qoe.hpp"
#include "semholo/core/session.hpp"
#include "semholo/gaze/foveation.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/recon/keypoint_recon.hpp"
#include "semholo/recon/texture.hpp"

namespace semholo {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 56};
    return model;
}

TEST(FullPipeline, CaptureDetectIkCompressTransferReconstruct) {
    // Sender: pose the subject, render the rig, detect keypoints.
    const body::Pose gtPose =
        body::MotionGenerator(body::MotionKind::Wave, sharedModel().shape()).poseAt(0.7);
    capture::RigConfig rigCfg;
    rigCfg.addNoise = false;
    const capture::CaptureRig rig(rigCfg);
    const auto frames = rig.capture(sharedModel().deform(gtPose), 5);
    const auto detection = capture::detectKeypoints3DDirect(rig, frames, gtPose, 5);

    // Align to the parametric model and serialize (the 1.91 KB payload).
    body::IkOptions ik;
    ik.shape = sharedModel().shape();
    const auto fit = body::fitPoseToKeypoints(detection.positions,
                                              detection.confidence, ik);
    const auto payload = body::serializePose(fit.pose);
    ASSERT_EQ(payload.size(), body::kPosePayloadBytes);

    // Compress and push through the simulated Internet.
    const auto compressed = compress::lzcCompress(payload);
    EXPECT_LT(compressed.size(), payload.size());
    net::LinkConfig linkCfg;
    linkCfg.lossRate = 0.02;
    net::LinkSimulator link(linkCfg);
    const auto transfer = link.sendMessage(compressed.size(), 0.0);
    ASSERT_TRUE(transfer.delivered);

    // Receiver: decompress, deserialize, reconstruct, score.
    const auto decompressed = compress::lzcDecompress(compressed);
    ASSERT_TRUE(decompressed.has_value());
    const auto pose = body::deserializePose(*decompressed);
    ASSERT_TRUE(pose.has_value());
    recon::ReconstructionOptions ro;
    ro.resolution = 48;
    ro.shape = sharedModel().shape();
    ro.device = recon::DeviceProfile::host();
    const auto result = recon::reconstructFromPose(*pose, ro);
    ASSERT_TRUE(result.success);

    const auto err =
        mesh::compareMeshes(sharedModel().deform(gtPose), result.mesh, 8000);
    // Detector noise + IK + implicit-surface floor: centimetre class.
    EXPECT_LT(err.chamfer, 0.03);
}

TEST(FullPipeline, TexturedReconstructionViaProjectionMapping) {
    // Section 3.1's proposed texture path: reconstruct geometry from
    // keypoints, then align the delivered ground-truth texture.
    const body::Pose pose =
        body::MotionGenerator(body::MotionKind::Talk, sharedModel().shape()).poseAt(0.4);
    recon::ReconstructionOptions ro;
    ro.resolution = 40;
    ro.shape = sharedModel().shape();
    ro.device = recon::DeviceProfile::host();
    auto result = recon::reconstructFromPose(pose, ro);
    ASSERT_TRUE(result.success);

    const mesh::TriMesh gt = sharedModel().deform(pose);
    const double projDist = recon::projectTexture(result.mesh, gt);
    ASSERT_TRUE(result.mesh.hasColors());
    EXPECT_LT(projDist, 0.05);
}

TEST(FullPipeline, FoveatedSessionRespectsGazeDirection) {
    // A viewer looking at the subject's head should receive the head at
    // full mesh quality.
    core::FoveatedOptions opt;
    opt.fovealRadiusDeg = 10.0;
    opt.peripheralResolution = 32;
    auto channel = core::makeFoveatedChannel(opt);

    core::FrameContext ctx;
    ctx.pose = body::Pose{};
    ctx.pose.shape = sharedModel().shape();
    ctx.model = &sharedModel();
    ctx.viewerHead = {geom::Quat::identity(), {0.0f, 0.6f, -2.0f}};  // eye level
    ctx.viewerGazeDeg = {0.0f, 0.0f};

    const auto decoded = channel->decode(channel->encode(ctx));
    ASSERT_TRUE(decoded.valid);
    // Head region vertex density should exceed the peripheral-only recon.
    core::FoveatedOptions noFovea = opt;
    noFovea.fovealRadiusDeg = 0.0;
    auto plain = core::makeFoveatedChannel(noFovea);
    const auto plainDecoded = plain->decode(plain->encode(ctx));
    ASSERT_TRUE(plainDecoded.valid);
    auto headVerts = [](const mesh::TriMesh& m) {
        std::size_t n = 0;
        for (const auto& v : m.vertices)
            if (v.y > 0.5f) ++n;
        return n;
    };
    EXPECT_GT(headVerts(decoded.mesh), headVerts(plainDecoded.mesh));
}

TEST(FullPipeline, LossyLinkTextChannelRecoversViaKeyframes) {
    // Drop the first (keyframe) packet; the decoder must refuse deltas
    // until the encoder is asked for a fresh keyframe.
    core::TextChannelOptions opt;
    opt.reconstructMesh = false;
    auto sender = core::makeTextChannel(opt);
    auto receiver = core::makeTextChannel(opt);

    const body::MotionGenerator gen(body::MotionKind::Talk);
    core::FrameContext ctx;
    ctx.model = &sharedModel();

    ctx.pose = gen.poseAt(0.0);
    ctx.pose.frameId = 0;
    const auto keyframe = sender->encode(ctx);  // lost in transit

    ctx.pose = gen.poseAt(0.2);
    ctx.pose.frameId = 1;
    const auto delta = sender->encode(ctx);
    EXPECT_FALSE(receiver->decode(delta).valid);  // no state yet

    // Sender-side recovery: reset forces a keyframe.
    sender->reset();
    ctx.pose = gen.poseAt(0.3);
    ctx.pose.frameId = 2;
    const auto recovery = sender->encode(ctx);
    EXPECT_TRUE(receiver->decode(recovery).valid);
    (void)keyframe;
}

TEST(FullPipeline, QoERanksChannelsSensiblyOnNarrowLink) {
    // On a 5 Mbps link the keypoint channel must beat raw mesh streaming.
    core::SessionConfig cfg;
    cfg.frames = 10;
    cfg.link.bandwidth = net::BandwidthTrace::constant(5e6);
    cfg.qualityEvalInterval = 5;
    cfg.qualitySamples = 3000;
    cfg.dropWhenBusy = false;

    auto keypoint = core::makeKeypointChannel({.reconResolution = 32});
    const auto kpStats = core::runSession(*keypoint, sharedModel(), cfg);
    auto raw = core::makeTraditionalChannel({false, false});
    const auto rawStats = core::runSession(*raw, sharedModel(), cfg);

    EXPECT_GT(core::computeQoE(kpStats).mos, core::computeQoE(rawStats).mos);
}

TEST(FullPipeline, SessionOverFluctuatingLink) {
    core::SessionConfig cfg;
    cfg.frames = 30;
    cfg.link.bandwidth = net::BandwidthTrace::sine(2e6, 30e6, 0.5);
    cfg.link.jitterStddevS = 0.003;
    cfg.link.lossRate = 0.01;
    auto channel = core::makeKeypointChannel({.reconResolution = 16});
    const auto stats = core::runSession(*channel, sharedModel(), cfg);
    // The tiny payload survives even the 2 Mbps troughs.
    EXPECT_EQ(stats.deliveredFrames + stats.droppedReceiverFrames +
                  stats.droppedSenderFrames,
              30u);
    EXPECT_GT(stats.deliveredFrames, 20u);
}

TEST(FullPipeline, DetectorDropoutSurvivesEndToEnd) {
    // Heavy occlusion: half the cameras removed; pipeline must still
    // produce a usable reconstruction from the surviving joints.
    const body::Pose gtPose =
        body::MotionGenerator(body::MotionKind::Collaborate, sharedModel().shape())
            .poseAt(2.0);
    capture::RigConfig rigCfg;
    rigCfg.cameraCount = 2;  // stereo only
    rigCfg.addNoise = false;
    const capture::CaptureRig rig(rigCfg);
    const auto frames = rig.capture(sharedModel().deform(gtPose), 9);
    const auto detection = capture::detectKeypoints3DDirect(rig, frames, gtPose, 9);

    std::array<float, body::kJointCount> conf = detection.confidence;
    const auto fit = body::fitPoseToKeypoints(detection.positions, conf,
                                              {sharedModel().shape(), 0.05f});
    recon::ReconstructionOptions ro;
    ro.resolution = 32;
    ro.shape = sharedModel().shape();
    const auto result = recon::reconstructFromPose(fit.pose, ro);
    ASSERT_TRUE(result.success);
    const auto err =
        mesh::compareMeshes(sharedModel().deform(gtPose), result.mesh, 5000);
    EXPECT_LT(err.chamfer, 0.08);
}

}  // namespace
}  // namespace semholo
