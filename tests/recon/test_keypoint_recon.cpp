#include "semholo/recon/keypoint_recon.hpp"

#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/mesh/sampling.hpp"

namespace semholo::recon {
namespace {

using body::MotionGenerator;
using body::MotionKind;
using body::Pose;

TEST(DeviceProfile, MemoryFeasibilityMatchesFigure4) {
    const DeviceProfile laptop = DeviceProfile::laptop();
    const DeviceProfile workstation = DeviceProfile::workstation();
    // Laptop handles 128 and 256 but not 512 or 1024 (paper, section 4.2).
    EXPECT_TRUE(laptop.fitsInMemory(reconstructionWorkingSetBytes(128)));
    EXPECT_TRUE(laptop.fitsInMemory(reconstructionWorkingSetBytes(256)));
    EXPECT_FALSE(laptop.fitsInMemory(reconstructionWorkingSetBytes(512)));
    EXPECT_FALSE(laptop.fitsInMemory(reconstructionWorkingSetBytes(1024)));
    // Workstation handles all four.
    EXPECT_TRUE(workstation.fitsInMemory(reconstructionWorkingSetBytes(1024)));
}

TEST(DeviceProfile, HostUncapped) {
    EXPECT_TRUE(DeviceProfile::host().fitsInMemory(1ull << 60));
    EXPECT_DOUBLE_EQ(DeviceProfile::host().scaleMs(10.0), 10.0);
    EXPECT_GT(DeviceProfile::laptop().scaleMs(10.0), 10.0);  // slower device
}

TEST(Reconstruction, FromPoseProducesClosedMesh) {
    const Pose pose = MotionGenerator(MotionKind::Wave).poseAt(0.5);
    ReconstructionOptions opt;
    opt.resolution = 48;
    const auto result = reconstructFromPose(pose, opt);
    ASSERT_TRUE(result.success) << result.failureReason;
    EXPECT_GT(result.mesh.triangleCount(), 500u);
    EXPECT_EQ(result.mesh.countBoundaryEdges(), 0u);
    EXPECT_GT(result.fieldSampleMs, 0.0);
    EXPECT_GT(result.extractMs, 0.0);
}

TEST(Reconstruction, LaptopFailsAtHighResolutionInDenseMode) {
    ReconstructionOptions opt;
    opt.resolution = 512;
    opt.device = DeviceProfile::laptop();
    opt.mode = ReconMode::Dense;  // legacy path: full (R+1)^3 working set
    const auto result = reconstructFromPose(Pose{}, opt);
    EXPECT_FALSE(result.success);
    EXPECT_NE(result.failureReason.find("out of memory"), std::string::npos);
    EXPECT_TRUE(result.mesh.empty());
}

TEST(Reconstruction, SparseModeFitsLaptopAtHighResolution) {
    // The sparse working set touches only ~surface-proportional blocks, so
    // the resolutions Figure 4 marks laptop-infeasible become feasible.
    const DeviceProfile laptop = DeviceProfile::laptop();
    EXPECT_FALSE(laptop.fitsInMemory(
        reconstructionWorkingSetBytes(512, ReconMode::Dense)));
    EXPECT_TRUE(laptop.fitsInMemory(
        reconstructionWorkingSetBytes(512, ReconMode::Sparse)));
    EXPECT_TRUE(laptop.fitsInMemory(
        reconstructionWorkingSetBytes(1024, ReconMode::Sparse)));
    // Sparse still costs more than the bare grid: blocks near the surface
    // are fully evaluated.
    EXPECT_GT(reconstructionWorkingSetBytes(512, ReconMode::Sparse),
              static_cast<std::uint64_t>(513) * 513 * 513 * 4);
}

TEST(Reconstruction, QualityImprovesWithResolution) {
    // Figure 2: higher output resolution recovers more detail.
    const body::BodyModel model(body::ShapeParams{}, 72);
    const Pose pose = MotionGenerator(MotionKind::Talk).poseAt(0.6);
    const mesh::TriMesh groundTruth = model.deform(pose);

    ReconstructionOptions lo, hi;
    lo.resolution = 24;
    hi.resolution = 72;
    const auto reconLo = reconstructFromPose(pose, lo);
    const auto reconHi = reconstructFromPose(pose, hi);
    ASSERT_TRUE(reconLo.success && reconHi.success);
    const auto errLo = mesh::compareMeshes(groundTruth, reconLo.mesh, 8000);
    const auto errHi = mesh::compareMeshes(groundTruth, reconHi.mesh, 8000);
    EXPECT_LT(errHi.chamfer, errLo.chamfer);
}

TEST(Reconstruction, QualitySaturates) {
    // Figure 2: 512 ~ 1024 — beyond some resolution the missing clothing
    // detail dominates and quality stops improving proportionally.
    const body::BodyModel model(body::ShapeParams{}, 72);
    const Pose pose;
    const mesh::TriMesh groundTruth = model.deform(pose);

    ReconstructionOptions mid, high;
    mid.resolution = 64;
    high.resolution = 96;
    const auto reconMid = reconstructFromPose(pose, mid);
    const auto reconHigh = reconstructFromPose(pose, high);
    ASSERT_TRUE(reconMid.success && reconHigh.success);
    const double errMid = mesh::compareMeshes(groundTruth, reconMid.mesh, 8000).chamfer;
    const double errHigh =
        mesh::compareMeshes(groundTruth, reconHigh.mesh, 8000).chamfer;
    // Improvement from 64 -> 96 is much smaller than 1.5x.
    EXPECT_LT(errHigh, errMid * 1.05);
    EXPECT_GT(errHigh, errMid * 0.4);
}

TEST(Reconstruction, CostScalesRoughlyCubically) {
    // Figure 4: dense reconstruction time is dominated by the O(R^3) field
    // pass. Pinned to Dense — the sparse path's whole point is to break
    // this scaling.
    ReconstructionOptions a, b;
    a.mode = ReconMode::Dense;
    b.mode = ReconMode::Dense;
    a.resolution = 32;
    b.resolution = 64;
    const auto ra = reconstructFromPose(Pose{}, a);
    const auto rb = reconstructFromPose(Pose{}, b);
    ASSERT_TRUE(ra.success && rb.success);
    const double ratio = rb.fieldSampleMs / std::max(1e-9, ra.fieldSampleMs);
    // 2x resolution => ~8x field cost; allow generous slack for timer noise.
    EXPECT_GT(ratio, 3.0);
}

TEST(Reconstruction, FromKeypointsMatchesGroundTruthPose) {
    const Pose pose = MotionGenerator(MotionKind::Collaborate).poseAt(2.5);
    const auto kps = body::jointKeypoints(pose);
    std::array<float, kJointCount> conf;
    conf.fill(1.0f);
    ReconstructionOptions opt;
    opt.resolution = 48;
    const auto result = reconstructFromKeypoints(kps, conf, opt);
    ASSERT_TRUE(result.success);
    EXPECT_GT(result.ikMs, 0.0);

    // Compare against the direct-from-pose reconstruction.
    const auto direct = reconstructFromPose(pose, opt);
    const auto err = mesh::compareMeshes(direct.mesh, result.mesh, 6000);
    EXPECT_LT(err.chamfer, 0.03);
}

TEST(Reconstruction, MissingFoldsAreTheQualityFloor) {
    // The ground-truth template has clothing folds; reconstruction from
    // keypoints cannot recover them at any resolution (section 4.2).
    const body::BodyModel model(body::ShapeParams{}, 72);
    const Pose pose;
    const mesh::TriMesh groundTruth = model.deform(pose);
    ReconstructionOptions opt;
    opt.resolution = 96;
    const auto recon = reconstructFromPose(pose, opt);
    ASSERT_TRUE(recon.success);
    const auto err = mesh::compareMeshes(groundTruth, recon.mesh, 10000);
    // Error floor at (roughly) the fold amplitude, not at zero.
    EXPECT_GT(err.chamfer, 0.002);
}

}  // namespace
}  // namespace semholo::recon
