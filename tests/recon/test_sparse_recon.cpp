#include "semholo/recon/sparse_recon.hpp"

#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/mesh/sampling.hpp"

namespace semholo::recon {
namespace {

using body::MotionGenerator;
using body::MotionKind;
using body::Pose;

void expectIdenticalMeshes(const mesh::TriMesh& a, const mesh::TriMesh& b) {
    ASSERT_EQ(a.vertexCount(), b.vertexCount());
    ASSERT_EQ(a.triangleCount(), b.triangleCount());
    for (std::size_t i = 0; i < a.vertexCount(); ++i) {
        EXPECT_EQ(a.vertices[i].x, b.vertices[i].x);
        EXPECT_EQ(a.vertices[i].y, b.vertices[i].y);
        EXPECT_EQ(a.vertices[i].z, b.vertices[i].z);
    }
    for (std::size_t i = 0; i < a.triangleCount(); ++i) {
        EXPECT_EQ(a.triangles[i].a, b.triangles[i].a);
        EXPECT_EQ(a.triangles[i].b, b.triangles[i].b);
        EXPECT_EQ(a.triangles[i].c, b.triangles[i].c);
    }
}

// With bone pruning disabled the sparse pipeline's field evaluates
// bit-identically to the dense path's, and the block-skip certificate is
// exact — so the reconstructions must agree bit for bit, including for
// poses with active expression coefficients (the face-warp region is the
// trickiest part of the certificate).
TEST(SparseRecon, BitIdenticalToDenseAcrossPosesAndResolutions) {
    const Pose poses[] = {Pose{}, MotionGenerator(MotionKind::Wave).poseAt(0.7),
                          MotionGenerator(MotionKind::Talk).poseAt(0.5)};
    for (const Pose& pose : poses) {
        for (const int res : {32, 48}) {
            ReconstructionOptions dense;
            dense.resolution = res;
            dense.mode = ReconMode::Dense;
            ReconstructionOptions sparse;
            sparse.resolution = res;
            sparse.mode = ReconMode::Sparse;
            sparse.bonePruning = false;  // bit-reproducible field required
            const auto rd = reconstructFromPose(pose, dense);
            const auto rs = reconstructFromPose(pose, sparse);
            ASSERT_TRUE(rd.success && rs.success);
            EXPECT_GT(rs.stats.blocksSkipped, 0u);
            expectIdenticalMeshes(rd.mesh, rs.mesh);
        }
    }
}

// Bone pruning changes each skipped smooth-min step by at most one
// rounding step, so the surface moves by (at most) float rounding.
// compareMeshes' point-to-point sampling has a resolution floor, so we
// measure exact point-to-surface distance instead.
TEST(SparseRecon, BonePruningStaysWithinTolerance) {
    const Pose pose = MotionGenerator(MotionKind::Wave).poseAt(0.3);
    ReconstructionOptions exact;
    exact.resolution = 48;
    exact.mode = ReconMode::Sparse;
    exact.bonePruning = false;
    ReconstructionOptions pruned = exact;
    pruned.bonePruning = true;
    const auto re = reconstructFromPose(pose, exact);
    const auto rp = reconstructFromPose(pose, pruned);
    ASSERT_TRUE(re.success && rp.success);
    EXPECT_GT(rp.stats.bonesPruned, 0u);
    const double err =
        mesh::pointToMeshError(mesh::sampleSurface(rp.mesh, 5000), re.mesh);
    EXPECT_LT(err, 5e-4);
}

TEST(SparseRecon, DeterministicAcrossWorkerCounts) {
    const Pose pose = MotionGenerator(MotionKind::Collaborate).poseAt(1.2);
    ReconstructionOptions opt;
    opt.resolution = 40;
    opt.mode = ReconMode::Sparse;

    core::ThreadPool one(1), two(2), four(4);
    opt.pool = &one;
    const auto r1 = reconstructFromPose(pose, opt);
    opt.pool = &two;
    const auto r2 = reconstructFromPose(pose, opt);
    opt.pool = &four;
    const auto r4 = reconstructFromPose(pose, opt);
    ASSERT_TRUE(r1.success && r2.success && r4.success);
    expectIdenticalMeshes(r1.mesh, r2.mesh);
    expectIdenticalMeshes(r1.mesh, r4.mesh);
}

TEST(SparseRecon, StaticPoseReconstructsFromCache) {
    const Pose pose = MotionGenerator(MotionKind::Talk).poseAt(0.4);
    SparseReconstructorOptions opt;
    opt.recon.resolution = 40;
    SparseReconstructor recon(opt);

    const auto first = recon.reconstruct(pose);
    ASSERT_TRUE(first.success);
    EXPECT_EQ(first.stats.blocksCached, 0u);

    const auto second = recon.reconstruct(pose);
    ASSERT_TRUE(second.success);
    // Nothing moved: every block re-used, zero field evaluations.
    EXPECT_EQ(second.stats.blocksCached, second.stats.blocksTotal);
    EXPECT_EQ(second.stats.nodesEvaluated, 0u);
    expectIdenticalMeshes(first.mesh, second.mesh);
}

TEST(SparseRecon, MotionInvalidatesOnlyMovedBlocks) {
    // Hand-built poses (no MotionGenerator): breathing sway moves every
    // joint a little, but here only the right forearm moves, so blocks
    // away from the arm have zero supporting-capsule drift and must stay
    // cached — and because their supporting capsules are exactly still,
    // the cached reconstruction is bit-identical to an uncached one.
    Pose rest;
    Pose bent = rest;
    bent.rotation(body::JointId::RightElbow).z = -0.9f;
    bent.rotation(body::JointId::RightWrist).z = 0.3f;

    SparseReconstructorOptions opt;
    opt.recon.resolution = 64;
    opt.recon.blockSize = 4;  // tighter guard radius -> tighter support
    SparseReconstructor recon(opt);
    ASSERT_TRUE(recon.reconstruct(rest).success);
    const auto cached = recon.reconstruct(bent);
    ASSERT_TRUE(cached.success);
    EXPECT_GT(cached.stats.blocksCached, 0u);
    EXPECT_LT(cached.stats.blocksCached, cached.stats.blocksTotal);

    // Same persistent grid, cache flushed: the uncached reference.
    SparseReconstructor reference(opt);
    ASSERT_TRUE(reference.reconstruct(rest).success);
    reference.invalidate();
    const auto fresh = reference.reconstruct(bent);
    ASSERT_TRUE(fresh.success);
    EXPECT_EQ(fresh.stats.blocksCached, 0u);
    expectIdenticalMeshes(fresh.mesh, cached.mesh);
}

TEST(SparseRecon, ExpressionChangeInvalidatesFaceBlocks) {
    Pose neutral;
    Pose smiling;
    smiling.expression.coeffs[0] = 1.0;  // jaw open
    smiling.expression.coeffs[2] = 1.0;  // smile

    SparseReconstructorOptions opt;
    opt.recon.resolution = 40;
    SparseReconstructor recon(opt);
    ASSERT_TRUE(recon.reconstruct(neutral).success);
    const auto changed = recon.reconstruct(smiling);
    ASSERT_TRUE(changed.success);
    // The skeleton did not move, but face-region blocks must re-sample.
    EXPECT_GT(changed.stats.blocksCached, 0u);
    EXPECT_LT(changed.stats.blocksCached, changed.stats.blocksTotal);

    // The expression warp is gated to the face region, so blocks kept
    // from cache are unaffected by it and the result matches an uncached
    // reconstruction on the same grid bit for bit.
    SparseReconstructor reference(opt);
    ASSERT_TRUE(reference.reconstruct(neutral).success);
    reference.invalidate();
    const auto fresh = reference.reconstruct(smiling);
    ASSERT_TRUE(fresh.success);
    expectIdenticalMeshes(fresh.mesh, changed.mesh);
}

TEST(SparseRecon, InvalidateDropsCache) {
    const Pose pose = MotionGenerator(MotionKind::Talk).poseAt(0.2);
    SparseReconstructorOptions opt;
    opt.recon.resolution = 32;
    SparseReconstructor recon(opt);
    ASSERT_TRUE(recon.reconstruct(pose).success);
    recon.invalidate();
    const auto after = recon.reconstruct(pose);
    ASSERT_TRUE(after.success);
    EXPECT_EQ(after.stats.blocksCached, 0u);
}

TEST(SparseRecon, GridRebuildsWhenPoseEscapesBounds) {
    SparseReconstructorOptions opt;
    opt.recon.resolution = 32;
    opt.motionMargin = 0.05f;  // tight bounds so a big move forces rebuild
    SparseReconstructor recon(opt);

    Pose atOrigin;
    ASSERT_TRUE(recon.reconstruct(atOrigin).success);
    EXPECT_EQ(recon.gridRebuilds(), 0u);

    Pose farAway;
    farAway.rootTranslation = {2.0f, 0.0f, 0.0f};
    const auto moved = recon.reconstruct(farAway);
    ASSERT_TRUE(moved.success);
    EXPECT_EQ(recon.gridRebuilds(), 1u);
    EXPECT_EQ(moved.stats.blocksCached, 0u);  // rebuild flushes the cache
}

TEST(SparseRecon, RespectsDeviceMemoryGate) {
    SparseReconstructorOptions opt;
    opt.recon.resolution = 4096;  // absurd: even sparse cannot fit
    opt.recon.device = DeviceProfile::laptop();
    SparseReconstructor recon(opt);
    const auto result = recon.reconstruct(Pose{});
    EXPECT_FALSE(result.success);
    EXPECT_NE(result.failureReason.find("out of memory"), std::string::npos);
}

}  // namespace
}  // namespace semholo::recon
