// Property tests for the octree certificate hierarchy: a certified node
// must never contain a surface crossing anywhere a descendant block's
// guard region reaches, and the sparse octree+batch pipeline must
// extract byte-identical meshes to a dense pass at every resolution.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/mesh/blocksampler.hpp"
#include "semholo/mesh/isosurface.hpp"

namespace semholo::recon {
namespace {

using body::BodyField;
using body::BodyFieldOptions;
using body::MotionGenerator;
using body::MotionKind;
using body::Pose;
using geom::Vec3f;
using mesh::BlockSampler;
using mesh::Vec3i;
using mesh::VoxelGrid;

// Enumerate octree nodes over the block grid exactly the way
// BlockSampler::descend splits: inclusive block-coordinate ranges,
// octants split at lo + (hi - lo) / 2.
void collectNodes(Vec3i lo, Vec3i hi,
                  std::vector<std::pair<Vec3i, Vec3i>>& nodes) {
    nodes.emplace_back(lo, hi);
    if (lo.x == hi.x && lo.y == hi.y && lo.z == hi.z) return;
    const Vec3i mid{lo.x + (hi.x - lo.x) / 2, lo.y + (hi.y - lo.y) / 2,
                    lo.z + (hi.z - lo.z) / 2};
    for (int oz = 0; oz < 2; ++oz) {
        for (int oy = 0; oy < 2; ++oy) {
            for (int ox = 0; ox < 2; ++ox) {
                const Vec3i clo{ox ? mid.x + 1 : lo.x, oy ? mid.y + 1 : lo.y,
                                oz ? mid.z + 1 : lo.z};
                const Vec3i chi{ox ? hi.x : mid.x, oy ? hi.y : mid.y,
                                oz ? hi.z : mid.z};
                if (clo.x > chi.x || clo.y > chi.y || clo.z > chi.z) continue;
                if (clo.x == lo.x && clo.y == lo.y && clo.z == lo.z &&
                    chi.x == hi.x && chi.y == hi.y && chi.z == hi.z)
                    continue;  // degenerate split: node did not shrink
                collectNodes(clo, chi, nodes);
            }
        }
    }
}

TEST(OctreeCertificates, CertifiedNodesContainNoSurfaceCrossing) {
    std::mt19937 rng(17);
    std::uniform_real_distribution<float> ut(0.0f, 2.0f);
    std::uniform_real_distribution<float> u01(0.0f, 1.0f);
    std::normal_distribution<float> gauss(0.0f, 1.0f);
    const MotionKind kinds[] = {MotionKind::Idle, MotionKind::Wave,
                                MotionKind::Talk, MotionKind::Collaborate};
    std::size_t certified = 0;
    for (int trial = 0; trial < 6; ++trial) {
        const Pose pose =
            MotionGenerator(kinds[trial % 4]).poseAt(ut(rng));
        BodyFieldOptions opt;
        opt.clothingDetail = (trial % 2) == 1;  // certificate must cover folds
        const BodyField body =
            body::makeBodyField(pose, body::Skeleton::canonical(), opt);
        const int res = 16 + 8 * (trial % 3);   // 16, 24, 32
        const int blockSize = (trial % 2) ? 4 : 8;
        VoxelGrid grid(body.bounds, {res, res, res});
        BlockSampler sampler(grid, blockSize);
        const Vec3i bg = sampler.blockGrid();

        std::vector<std::pair<Vec3i, Vec3i>> nodes;
        collectNodes({0, 0, 0}, {bg.x - 1, bg.y - 1, bg.z - 1}, nodes);
        for (const auto& [lo, hi] : nodes) {
            Vec3f center;
            float radius = 0.0f;
            sampler.nodeBall(lo, hi, center, radius);
            // The ball must contain every descendant block's guard box —
            // that containment is what lets one coarse test stand in for
            // all of them.
            for (int z = lo.z; z <= hi.z; ++z) {
                for (int y = lo.y; y <= hi.y; ++y) {
                    for (int x = lo.x; x <= hi.x; ++x) {
                        const int b = x + bg.x * (y + bg.y * z);
                        const geom::AABB gb = sampler.blockGuardBounds(b);
                        for (int corner = 0; corner < 8; ++corner) {
                            const Vec3f c{corner & 1 ? gb.hi.x : gb.lo.x,
                                          corner & 2 ? gb.hi.y : gb.lo.y,
                                          corner & 4 ? gb.hi.z : gb.lo.z};
                            EXPECT_LE((c - center).norm(), radius + 1e-4f);
                        }
                    }
                }
            }
            if (!body.certificate(center, radius, 0.0f)) continue;
            ++certified;
            // The certificate claims no zero crossing within 'radius' of
            // 'center': the field must keep the center's sign at random
            // probes throughout the ball.
            const float centerValue = body.field(center);
            ASSERT_NE(centerValue, 0.0f);
            for (int probe = 0; probe < 32; ++probe) {
                Vec3f dir{gauss(rng), gauss(rng), gauss(rng)};
                const float n = dir.norm();
                if (n < 1e-6f) continue;
                const float r = radius * std::cbrt(u01(rng));
                const Vec3f p = center + dir * (r / n);
                const float v = body.field(p);
                ASSERT_NE(v, 0.0f);
                ASSERT_GT(v * centerValue, 0.0f)
                    << "crossing inside certified ball, trial " << trial;
            }
        }
    }
    // The property is vacuous if nothing ever certifies.
    EXPECT_GT(certified, 100u);
}

void expectIdenticalMeshes(const mesh::TriMesh& a, const mesh::TriMesh& b) {
    ASSERT_EQ(a.vertexCount(), b.vertexCount());
    ASSERT_EQ(a.triangleCount(), b.triangleCount());
    for (std::size_t i = 0; i < a.vertexCount(); ++i) {
        ASSERT_EQ(a.vertices[i].x, b.vertices[i].x);
        ASSERT_EQ(a.vertices[i].y, b.vertices[i].y);
        ASSERT_EQ(a.vertices[i].z, b.vertices[i].z);
    }
    for (std::size_t i = 0; i < a.triangleCount(); ++i) {
        ASSERT_EQ(a.triangles[i].a, b.triangles[i].a);
        ASSERT_EQ(a.triangles[i].b, b.triangles[i].b);
        ASSERT_EQ(a.triangles[i].c, b.triangles[i].c);
    }
}

TEST(OctreeCertificates, SparseOctreeBatchExtractionMatchesDense) {
    // Random poses x resolutions x block sizes: the full production
    // stack (octree descent, coarse fills, SIMD batch evaluation) must
    // extract the same mesh, byte for byte, as a dense serial pass.
    std::mt19937 rng(23);
    std::uniform_real_distribution<float> ut(0.0f, 2.0f);
    const MotionKind kinds[] = {MotionKind::Walk, MotionKind::Talk,
                                MotionKind::Wave};
    for (int trial = 0; trial < 3; ++trial) {
        const Pose pose = MotionGenerator(kinds[trial]).poseAt(ut(rng));
        BodyFieldOptions opt;
        opt.bonePruning = false;  // bit-reproducible field
        const BodyField body =
            body::makeBodyField(pose, body::Skeleton::canonical(), opt);
        const int res = 24 + 9 * trial;  // 24, 33, 42
        const int blockSize = (trial % 2) ? 8 : 4;

        VoxelGrid denseGrid(body.bounds, {res, res, res});
        denseGrid.sample(body.field);
        const auto denseMesh = mesh::extractIsoSurface(denseGrid);

        VoxelGrid sparseGrid(body.bounds, {res, res, res});
        BlockSampler sampler(sparseGrid, blockSize);
        mesh::FieldSampleOptions so;
        so.blockSize = blockSize;
        so.lipschitz = body.lipschitz;
        so.margin = body.margin;
        so.certificate = [&body](Vec3f center, float radius) {
            return body.certificate(center, radius, 0.0f);
        };
        so.batch = body.batch;
        so.hierarchical = true;
        const auto stats = sampler.sample(body.field, so);
        EXPECT_GT(stats.blocksCoarseFilled, 0u) << "octree never engaged";
        const auto sparseMesh = mesh::extractIsoSurface(sparseGrid, sampler);
        expectIdenticalMeshes(denseMesh, sparseMesh);
    }
}

}  // namespace
}  // namespace semholo::recon
