#include "semholo/recon/texture.hpp"

#include <gtest/gtest.h>

#include "semholo/body/body_model.hpp"
#include "semholo/recon/keypoint_recon.hpp"

namespace semholo::recon {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 64};
    return model;
}

TEST(ProjectTexture, TransfersRegionColours) {
    const mesh::TriMesh& reference = sharedModel().templateMesh();
    ReconstructionOptions opt;
    opt.resolution = 48;
    auto recon = reconstructFromPose(body::Pose{}, opt);
    ASSERT_TRUE(recon.success);

    const double meanDist = projectTexture(recon.mesh, reference);
    ASSERT_TRUE(recon.mesh.hasColors());
    EXPECT_GT(meanDist, 0.0);
    EXPECT_LT(meanDist, 0.05);  // reconstruction is geometrically close

    // Head vertices get skin, thigh vertices get trousers.
    geom::Vec3f headColor{}, legColor{};
    int headN = 0, legN = 0;
    for (std::size_t i = 0; i < recon.mesh.vertexCount(); ++i) {
        const auto& v = recon.mesh.vertices[i];
        if (v.y > 0.6f) {
            headColor += recon.mesh.colors[i];
            ++headN;
        }
        if (v.y < -0.3f && v.y > -0.7f) {
            legColor += recon.mesh.colors[i];
            ++legN;
        }
    }
    ASSERT_GT(headN, 0);
    ASSERT_GT(legN, 0);
    headColor /= static_cast<float>(headN);
    legColor /= static_cast<float>(legN);
    EXPECT_GT((headColor - legColor).norm(), 0.2f);
}

TEST(ProjectTexture, NoColorsOnReferenceIsNoop) {
    mesh::TriMesh target = mesh::makeUVSphere(1.0f, 8, 16);
    const mesh::TriMesh plain = mesh::makeUVSphere(1.0f, 8, 16);
    EXPECT_DOUBLE_EQ(projectTexture(target, plain), 0.0);
    EXPECT_FALSE(target.hasColors());
}

TEST(LearnedTexture, LosesHighFrequencyDetail) {
    // Figure 3: the learned texture misses fine detail. The smoothed
    // (capacity-limited) texture must differ from the ground truth much
    // more than a re-projected texture does.
    mesh::TriMesh groundTruth = sharedModel().templateMesh();
    mesh::TriMesh learned = groundTruth;
    applyLearnedTexture(learned);
    const double learnedErr = colorError(groundTruth, learned);
    EXPECT_GT(learnedErr, 0.01);

    // But the learned texture still keeps the low-frequency regions: the
    // mean colour shift stays bounded.
    EXPECT_LT(learnedErr, 0.5);
}

TEST(LearnedTexture, LargerRadiusLosesMore) {
    mesh::TriMesh gt = sharedModel().templateMesh();
    mesh::TriMesh mild = gt, strong = gt;
    LearnedTextureOptions a, b;
    a.radiusFraction = 0.02f;
    b.radiusFraction = 0.08f;
    applyLearnedTexture(mild, a);
    applyLearnedTexture(strong, b);
    EXPECT_GT(colorError(gt, strong), colorError(gt, mild));
}

TEST(ColorError, IdenticalZeroDifferentPositive) {
    const mesh::TriMesh& m = sharedModel().templateMesh();
    EXPECT_DOUBLE_EQ(colorError(m, m), 0.0);
    mesh::TriMesh shifted = m;
    for (auto& c : shifted.colors) c.x = geom::clamp(c.x + 0.2f, 0.0f, 1.0f);
    EXPECT_GT(colorError(m, shifted), 0.1);
}

TEST(ColorError, MismatchedLayoutsSafe) {
    const mesh::TriMesh a = mesh::makeUVSphere(1.0f, 8, 16);
    const mesh::TriMesh b = mesh::makeUVSphere(1.0f, 4, 8);
    EXPECT_DOUBLE_EQ(colorError(a, b), 0.0);
}

}  // namespace
}  // namespace semholo::recon
