#include "semholo/nerf/field.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace semholo::nerf {
namespace {

TEST(PositionalEncoding, DimensionAndContent) {
    const int levels = 4;
    const auto enc = positionalEncoding({0.5f, -0.25f, 1.0f}, levels);
    ASSERT_EQ(static_cast<int>(enc.size()), positionalEncodingDim(levels));
    EXPECT_FLOAT_EQ(enc[0], 0.5f);
    EXPECT_FLOAT_EQ(enc[1], -0.25f);
    EXPECT_FLOAT_EQ(enc[2], 1.0f);
    // First sin/cos triple at frequency 1.
    EXPECT_NEAR(enc[3], std::sin(0.5f), 1e-6f);
    EXPECT_NEAR(enc[4], std::cos(0.5f), 1e-6f);
}

TEST(PositionalEncoding, HighFrequencySeparatesNearbyPoints) {
    const int levels = 6;
    const auto a = positionalEncoding({0.50f, 0, 0}, levels);
    const auto b = positionalEncoding({0.55f, 0, 0}, levels);
    float rawDiff = std::fabs(a[0] - b[0]);
    float highDiff = std::fabs(a[a.size() - 6] - b[b.size() - 6]);
    // The highest frequency amplifies the small positional difference.
    EXPECT_GT(highDiff, rawDiff);
}

TEST(RadianceField, OutputsInValidRanges) {
    const RadianceField field;
    for (const auto p : {Vec3f{0, 0, 0}, Vec3f{1, 2, 3}, Vec3f{-5, 0.1f, 2}}) {
        const FieldSample s = field.query(p);
        EXPECT_GE(s.color.x, 0.0f);
        EXPECT_LE(s.color.x, 1.0f);
        EXPECT_GE(s.color.y, 0.0f);
        EXPECT_LE(s.color.z, 1.0f);
        EXPECT_GE(s.density, 0.0f);
    }
}

TEST(RadianceField, TrainingHeadGradientsFlow) {
    RadianceField field;
    const Vec3f p{0.3f, 0.2f, 0.1f};
    MlpActivations acts;
    std::vector<float> raw;
    const FieldSample before = field.queryForTraining(p, 1.0f, acts, raw);

    // Push colour towards red and density up for a few steps.
    AdamConfig adam;
    adam.learningRate = 5e-2f;
    for (int i = 0; i < 30; ++i) {
        MlpActivations a2;
        std::vector<float> r2;
        const FieldSample s = field.queryForTraining(p, 1.0f, a2, r2);
        field.zeroGradients();
        const Vec3f dColor{s.color.x - 1.0f, s.color.y, s.color.z};  // target red
        const float dDensity = s.density - 5.0f;                     // target dense
        field.backward(p, a2, r2, dColor * 2.0f, dDensity * 2.0f);
        field.adamStep(adam, 1);
    }
    const FieldSample after = field.query(p);
    EXPECT_GT(after.color.x, before.color.x);
    EXPECT_GT(after.density, before.density);
}

TEST(RadianceField, ModelBytesShrinkWithWidth) {
    const RadianceField field;
    const std::size_t full = field.modelBytes(1.0f);
    const std::size_t half = field.modelBytes(0.5f);
    const std::size_t quarter = field.modelBytes(0.25f);
    EXPECT_GT(full, half);
    EXPECT_GT(half, quarter);
    // Hidden-to-hidden weights dominate: half width is ~1/4 the params.
    EXPECT_LT(static_cast<double>(half), 0.45 * static_cast<double>(full));
}

TEST(RadianceField, SlimmableQueriesValid) {
    const RadianceField field;
    for (const float frac : {0.25f, 0.5f, 1.0f}) {
        const FieldSample s = field.query({0.1f, 0.2f, 0.3f}, frac);
        EXPECT_TRUE(std::isfinite(s.density));
        EXPECT_TRUE(std::isfinite(s.color.x));
    }
}

}  // namespace
}  // namespace semholo::nerf
