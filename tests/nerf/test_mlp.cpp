#include "semholo/nerf/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace semholo::nerf {
namespace {

TEST(Mlp, OutputDimensionsAndDeterminism) {
    MlpConfig cfg;
    cfg.inputDim = 5;
    cfg.outputDim = 3;
    const Mlp a(cfg), b(cfg);
    const std::vector<float> x{0.1f, -0.2f, 0.3f, 0.0f, 1.0f};
    const auto ya = a.forward(x);
    const auto yb = b.forward(x);
    ASSERT_EQ(ya.size(), 3u);
    EXPECT_EQ(ya, yb);  // same seed, same init
}

TEST(Mlp, DifferentSeedsDiffer) {
    MlpConfig a, b;
    b.seed = 99;
    const std::vector<float> x{0.5f, 0.5f, 0.5f};
    EXPECT_NE(Mlp(a).forward(x), Mlp(b).forward(x));
}

TEST(Mlp, GradientMatchesFiniteDifference) {
    MlpConfig cfg;
    cfg.inputDim = 3;
    cfg.outputDim = 2;
    cfg.hiddenWidth = 8;
    cfg.hiddenLayers = 2;
    Mlp mlp(cfg);
    const std::vector<float> x{0.3f, -0.7f, 0.2f};

    // Loss = 0.5 * |y|^2, dL/dy = y.
    MlpActivations acts;
    const auto y = mlp.forward(x, 1.0f, acts);
    mlp.zeroGradients();
    const auto dIn = mlp.backward(x, acts, y);
    ASSERT_EQ(dIn.size(), 3u);

    // Finite-difference on the input.
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < x.size(); ++i) {
        auto xp = x, xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        auto lossOf = [&](const std::vector<float>& in) {
            const auto out = mlp.forward(in);
            float l = 0.0f;
            for (const float v : out) l += 0.5f * v * v;
            return l;
        };
        const float numeric = (lossOf(xp) - lossOf(xm)) / (2.0f * eps);
        EXPECT_NEAR(dIn[i], numeric, 2e-2f * std::max(1.0f, std::fabs(numeric)));
    }
}

TEST(Mlp, LearnsLinearFunction) {
    MlpConfig cfg;
    cfg.inputDim = 2;
    cfg.outputDim = 1;
    cfg.hiddenWidth = 16;
    cfg.hiddenLayers = 2;
    Mlp mlp(cfg);
    AdamConfig adam;
    adam.learningRate = 5e-3f;

    std::mt19937 rng(4);
    std::uniform_real_distribution<float> uni(-1.0f, 1.0f);
    double lastLoss = 0.0;
    for (int step = 0; step < 800; ++step) {
        mlp.zeroGradients();
        double loss = 0.0;
        const std::size_t batch = 16;
        for (std::size_t i = 0; i < batch; ++i) {
            const std::vector<float> x{uni(rng), uni(rng)};
            const float target = 0.7f * x[0] - 0.3f * x[1] + 0.1f;
            MlpActivations acts;
            const auto y = mlp.forward(x, 1.0f, acts);
            const float err = y[0] - target;
            loss += 0.5 * err * err;
            mlp.backward(x, acts, std::vector<float>{err});
        }
        mlp.adamStep(adam, batch);
        lastLoss = loss / batch;
    }
    EXPECT_LT(lastLoss, 1e-3);
}

TEST(Mlp, SlimmableWidthsProduceValidOutputs) {
    MlpConfig cfg;
    cfg.inputDim = 4;
    cfg.outputDim = 2;
    cfg.hiddenWidth = 32;
    const Mlp mlp(cfg);
    const std::vector<float> x{0.1f, 0.2f, 0.3f, 0.4f};
    for (const float frac : {0.25f, 0.5f, 0.75f, 1.0f}) {
        const auto y = mlp.forward(x, frac);
        ASSERT_EQ(y.size(), 2u);
        for (const float v : y) EXPECT_TRUE(std::isfinite(v));
    }
    // Narrow and full outputs differ (more units contribute).
    EXPECT_NE(mlp.forward(x, 0.25f), mlp.forward(x, 1.0f));
}

TEST(Mlp, EffectiveWidthRounding) {
    MlpConfig cfg;
    cfg.hiddenWidth = 32;
    const Mlp mlp(cfg);
    EXPECT_EQ(mlp.effectiveWidth(1.0f), 32);
    EXPECT_EQ(mlp.effectiveWidth(0.5f), 16);
    EXPECT_EQ(mlp.effectiveWidth(0.01f), 1);
    EXPECT_EQ(mlp.effectiveWidth(0.0f), 32);   // 0 means "full"
    EXPECT_EQ(mlp.effectiveWidth(2.0f), 32);   // clamped
}

TEST(Mlp, NarrowSubnetTrainsNarrowSlice) {
    // Training at width 0.5 must not change the narrow forward output's
    // dependence structure: the narrow output changes, and the full
    // network still works.
    MlpConfig cfg;
    cfg.inputDim = 2;
    cfg.outputDim = 1;
    cfg.hiddenWidth = 16;
    Mlp mlp(cfg);
    const std::vector<float> x{0.4f, -0.6f};
    const auto beforeNarrow = mlp.forward(x, 0.5f);
    AdamConfig adam;
    for (int i = 0; i < 20; ++i) {
        mlp.zeroGradients();
        MlpActivations acts;
        const auto y = mlp.forward(x, 0.5f, acts);
        mlp.backward(x, acts, std::vector<float>{y[0] - 1.0f});
        mlp.adamStep(adam, 1);
    }
    const auto afterNarrow = mlp.forward(x, 0.5f);
    EXPECT_NE(beforeNarrow, afterNarrow);
    EXPECT_TRUE(std::isfinite(mlp.forward(x, 1.0f)[0]));
}

TEST(Mlp, SerializeRoundTrip) {
    MlpConfig cfg;
    cfg.inputDim = 3;
    cfg.outputDim = 2;
    Mlp a(cfg);
    Mlp b(cfg);
    // Perturb a, then copy to b via serialization.
    AdamConfig adam;
    MlpActivations acts;
    const std::vector<float> x{1.0f, 2.0f, 3.0f};
    a.zeroGradients();
    const auto y = a.forward(x, 1.0f, acts);
    a.backward(x, acts, y);
    a.adamStep(adam, 1);
    ASSERT_NE(a.forward(x), b.forward(x));

    ASSERT_TRUE(b.deserialize(a.serialize()));
    EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(Mlp, DeserializeRejectsWrongSize) {
    Mlp mlp(MlpConfig{});
    std::vector<std::uint8_t> bad(13, 0);
    EXPECT_FALSE(mlp.deserialize(bad));
}

TEST(Mlp, ParameterCount) {
    MlpConfig cfg;
    cfg.inputDim = 10;
    cfg.outputDim = 4;
    cfg.hiddenWidth = 32;
    cfg.hiddenLayers = 2;
    const Mlp mlp(cfg);
    // (10*32+32) + (32*32+32) + (32*4+4)
    EXPECT_EQ(mlp.parameterCount(), 10u * 32 + 32 + 32u * 32 + 32 + 32u * 4 + 4);
}

}  // namespace
}  // namespace semholo::nerf
