#include "semholo/nerf/renderer.hpp"

#include <gtest/gtest.h>

#include "semholo/nerf/trainer.hpp"

namespace semholo::nerf {
namespace {

using capture::RGBImage;
using geom::CameraIntrinsics;

// A tiny analytic scene: a glowing red ball of radius 0.5 at the origin,
// rendered by direct ray marching for ground truth.
RGBImage referenceBallImage(const Camera& cam) {
    RGBImage img(cam.intrinsics.width, cam.intrinsics.height);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const geom::Ray ray = cam.pixelRayWorld(
                {static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f});
            // Sphere intersection.
            const float b = 2.0f * ray.origin.dot(ray.direction);
            const float c = ray.origin.norm2() - 0.25f;
            const float disc = b * b - 4.0f * c;
            img.at(x, y) = disc > 0.0f ? geom::Vec3f{0.9f, 0.1f, 0.1f}
                                       : geom::Vec3f{0.0f, 0.0f, 0.0f};
        }
    }
    return img;
}

Camera ballCamera(float angle, int w = 24, int h = 18) {
    const geom::Vec3f eye{3.0f * std::sin(angle), 0.3f, 3.0f * std::cos(angle)};
    return Camera::lookAt(eye, {0, 0, 0}, {0, 1, 0},
                          CameraIntrinsics::fromFov(w, h, 0.7f));
}

TrainerConfig fastConfig() {
    TrainerConfig cfg;
    cfg.render.near = 1.5f;
    cfg.render.far = 4.5f;
    cfg.render.samplesPerRay = 16;
    cfg.raysPerStep = 64;
    cfg.adam.learningRate = 5e-3f;
    return cfg;
}

TEST(Renderer, EmptyFieldRendersBackground) {
    // A fresh field has near-uniform low density; with a bright
    // background, rays mostly pass through.
    RadianceField field;
    RenderOptions opt;
    opt.background = {0.2f, 0.4f, 0.6f};
    opt.samplesPerRay = 8;
    const geom::Vec3f c = renderRay(field, {{0, 0, -3}, {0, 0, 1}}, opt);
    EXPECT_TRUE(std::isfinite(c.x));
    EXPECT_GE(c.minCoeff(), 0.0f);
}

TEST(Renderer, RenderImageDimensions) {
    RadianceField field;
    RenderOptions opt;
    opt.samplesPerRay = 4;
    const Camera cam = ballCamera(0.0f, 16, 12);
    const RGBImage img = renderImage(field, cam, opt);
    EXPECT_EQ(img.width(), 16);
    EXPECT_EQ(img.height(), 12);
}

TEST(Renderer, TrainStepReducesLoss) {
    FieldConfig fc;
    fc.hiddenWidth = 24;
    fc.hiddenLayers = 2;
    fc.encodingLevels = 3;
    RadianceField field(fc);
    const TrainerConfig cfg = fastConfig();

    const Camera cam = ballCamera(0.0f);
    const RGBImage ref = referenceBallImage(cam);
    std::vector<TrainRay> rays;
    for (int y = 0; y < ref.height(); ++y)
        for (int x = 0; x < ref.width(); ++x)
            rays.push_back({cam.pixelRayWorld({static_cast<float>(x) + 0.5f,
                                               static_cast<float>(y) + 0.5f}),
                            ref.at(x, y)});

    double first = 0.0, last = 0.0;
    for (int step = 0; step < 60; ++step) {
        const double loss = trainStep(field, rays, cfg.render, cfg.adam);
        if (step == 0) first = loss;
        last = loss;
    }
    EXPECT_LT(last, first * 0.7);
}

TEST(Trainer, ColdStartLearnsScene) {
    FieldConfig fc;
    fc.hiddenWidth = 32;
    fc.hiddenLayers = 2;
    fc.encodingLevels = 3;
    RadianceField field(fc);
    NerfTrainer trainer(field, fastConfig());

    std::vector<TrainView> views;
    for (const float a : {0.0f, 2.1f, 4.2f})
        views.push_back({ballCamera(a), referenceBallImage(ballCamera(a))});

    const double psnrBefore = trainer.evaluatePSNR(views[0]);
    const auto stats = trainer.pretrain(views, 120);
    EXPECT_GT(stats.steps, 0);
    EXPECT_GT(stats.wallMs, 0.0);
    const double psnrAfter = trainer.evaluatePSNR(views[0]);
    EXPECT_GT(psnrAfter, psnrBefore + 2.0);  // clearly learned something
}

TEST(Trainer, ChangedPixelCountDetectsMotion) {
    RGBImage a(10, 10, {0.5f, 0.5f, 0.5f});
    RGBImage b = a;
    EXPECT_EQ(changedPixelCount(a, b, 0.02f), 0u);
    b.at(3, 4) = {1.0f, 0.5f, 0.5f};
    b.at(7, 1) = {0.0f, 0.5f, 0.5f};
    EXPECT_EQ(changedPixelCount(a, b, 0.02f), 2u);
    // Mismatched sizes: everything counts as changed.
    RGBImage c(4, 4);
    EXPECT_EQ(changedPixelCount(a, c, 0.02f), 16u);
}

TEST(Trainer, FineTuneOnChangesUsesOnlyChangedRays) {
    FieldConfig fc;
    fc.hiddenWidth = 16;
    fc.hiddenLayers = 2;
    fc.encodingLevels = 2;
    RadianceField field(fc);
    NerfTrainer trainer(field, fastConfig());

    const Camera cam = ballCamera(0.0f);
    RGBImage prev = referenceBallImage(cam);
    RGBImage cur = prev;
    // Change a small patch.
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x) cur.at(x, y) = {0.0f, 1.0f, 0.0f};

    const auto stats =
        trainer.fineTuneOnChanges({{cam, prev}}, {{cam, cur}}, 5, 0.02f);
    EXPECT_EQ(stats.steps, 5);
    // Pool had only 9 rays; each step uses at most that many.
    EXPECT_LE(stats.raysUsed, 9u * 5u);
    EXPECT_GT(stats.raysUsed, 0u);
}

TEST(Trainer, NoChangesNoWork) {
    RadianceField field;
    NerfTrainer trainer(field, fastConfig());
    const Camera cam = ballCamera(0.0f);
    const RGBImage img = referenceBallImage(cam);
    const auto stats = trainer.fineTuneOnChanges({{cam, img}}, {{cam, img}}, 10);
    EXPECT_EQ(stats.steps, 0);
    EXPECT_EQ(stats.raysUsed, 0u);
}

TEST(Trainer, NarrowWidthFasterPerStep) {
    // Section 3.2: smaller sub-networks fine-tune faster. Compare wall
    // time of the same number of steps at 0.25 vs 1.0 width.
    FieldConfig fc;
    fc.hiddenWidth = 64;
    fc.hiddenLayers = 3;
    RadianceField field(fc);

    const Camera cam = ballCamera(0.0f);
    const RGBImage ref = referenceBallImage(cam);
    std::vector<TrainView> views{{cam, ref}};

    TrainerConfig narrowCfg = fastConfig();
    narrowCfg.render.widthFraction = 0.25f;
    TrainerConfig fullCfg = fastConfig();
    fullCfg.render.widthFraction = 1.0f;

    NerfTrainer narrow(field, narrowCfg);
    NerfTrainer full(field, fullCfg);
    const auto statsNarrow = narrow.pretrain(views, 10);
    const auto statsFull = full.pretrain(views, 10);
    EXPECT_LT(statsNarrow.wallMs, statsFull.wallMs);
}

}  // namespace
}  // namespace semholo::nerf
