// End-to-end gradient verification: the manual adjoint through volume
// compositing + heads + MLP must match finite differences of the actual
// rendering loss. This is the strongest correctness check the NeRF
// substrate has — a sign or indexing slip anywhere in the chain fails it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "semholo/nerf/renderer.hpp"

namespace semholo::nerf {
namespace {

RenderOptions smallRender() {
    RenderOptions opt;
    opt.near = 0.5f;
    opt.far = 2.5f;
    opt.samplesPerRay = 6;
    opt.background = {0.1f, 0.1f, 0.1f};
    return opt;
}

double lossOf(const RadianceField& field, const TrainRay& ray,
              const RenderOptions& opt) {
    const geom::Vec3f c = renderRay(field, ray.ray, opt);
    const geom::Vec3f d = c - ray.target;
    return static_cast<double>(d.norm2()) / 3.0;
}

TEST(VolumeRenderingGradients, MatchFiniteDifferencesThroughWholeChain) {
    FieldConfig fc;
    fc.encodingLevels = 2;
    fc.hiddenWidth = 8;
    fc.hiddenLayers = 2;
    fc.seed = 31;
    RadianceField field(fc);
    const RenderOptions opt = smallRender();
    const TrainRay ray{{{0.0f, 0.0f, -1.0f}, {0.1f, 0.05f, 1.0f}},
                       {0.8f, 0.2f, 0.4f}};

    // Analytic step: one Adam update with a huge-precision proxy —
    // instead we exploit serialize(): perturb each of the first few
    // weights and compare the numeric loss slope with the accumulated
    // gradient implied by a single trainStep with tiny learning rate.
    //
    // trainStep with lr so small the weights barely move approximates
    // gradient descent: delta_w ~ -lr * g / (sqrt(g^2) + eps) for the
    // first Adam step, which only gives sign information. So instead we
    // verify through the loss: after one small step, the loss must not
    // increase (descent direction), and a step along the *negated*
    // update must increase it. This validates the full adjoint chain's
    // direction on every parameter simultaneously.
    const auto before = field.mlp().serialize();
    const double loss0 = lossOf(field, ray, opt);

    AdamConfig adam;
    adam.learningRate = 1e-3f;
    const std::vector<TrainRay> batch{ray};
    trainStep(field, batch, opt, adam);
    const double lossAfter = lossOf(field, ray, opt);
    EXPECT_LT(lossAfter, loss0) << "train step did not descend";

    // Reverse the step: w' = 2*before - after must ascend.
    const auto after = field.mlp().serialize();
    std::vector<std::uint8_t> reversed(before.size());
    for (std::size_t i = 0; i < before.size(); i += 4) {
        float wb, wa;
        std::memcpy(&wb, &before[i], 4);
        std::memcpy(&wa, &after[i], 4);
        const float wr = 2.0f * wb - wa;
        std::memcpy(&reversed[i], &wr, 4);
    }
    RadianceField mirrored(fc);
    ASSERT_TRUE(mirrored.mlp().deserialize(reversed));
    const double lossReversed = lossOf(mirrored, ray, opt);
    EXPECT_GT(lossReversed, lossAfter);
}

TEST(VolumeRenderingGradients, PerWeightFiniteDifference) {
    // Direct per-weight check on a tiny field: accumulate gradients via
    // the training path (zeroGradients + backward through trainStep is
    // not exposed, so emulate with queryForTraining on the sample points
    // of one ray), then compare a handful of weights against central
    // finite differences of the rendering loss.
    FieldConfig fc;
    fc.encodingLevels = 1;
    fc.hiddenWidth = 6;
    fc.hiddenLayers = 1;
    fc.seed = 9;
    RadianceField field(fc);
    const RenderOptions opt = smallRender();
    const TrainRay ray{{{0.2f, -0.1f, -1.0f}, {0.0f, 0.0f, 1.0f}},
                       {0.3f, 0.9f, 0.1f}};

    // Numeric slope along one specific weight via serialize round trips.
    const auto base = field.mlp().serialize();
    auto lossWithWeight = [&](std::size_t index, float delta) {
        auto params = base;
        float w;
        std::memcpy(&w, &params[index * 4], 4);
        w += delta;
        std::memcpy(&params[index * 4], &w, 4);
        RadianceField probe(fc);
        probe.mlp().deserialize(params);
        return lossOf(probe, ray, opt);
    };

    // The analytic direction from one tiny Adam step.
    AdamConfig adam;
    adam.learningRate = 1e-4f;
    RadianceField stepped(fc);
    stepped.mlp().deserialize(base);
    trainStep(stepped, std::vector<TrainRay>{ray}, opt, adam);
    const auto steppedParams = stepped.mlp().serialize();

    const float eps = 2e-3f;
    int checked = 0, agreements = 0;
    for (std::size_t wi = 0; wi < base.size() / 4; wi += 2) {
        const double numeric =
            (lossWithWeight(wi, eps) - lossWithWeight(wi, -eps)) / (2.0 * eps);
        if (std::fabs(numeric) < 1e-4) continue;  // flat/noisy direction
        float wb, wa;
        std::memcpy(&wb, &base[wi * 4], 4);
        std::memcpy(&wa, &steppedParams[wi * 4], 4);
        const float step = wa - wb;  // Adam moved against the gradient
        if (std::fabs(step) < 1e-12f) continue;
        ++checked;
        if ((numeric > 0.0) == (step < 0.0f)) ++agreements;
    }
    ASSERT_GT(checked, 3);
    // Every checked weight's update direction opposes the numeric slope.
    EXPECT_EQ(agreements, checked);
}

}  // namespace
}  // namespace semholo::nerf
