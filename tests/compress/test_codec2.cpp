#include "semholo/compress/codec2.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "semholo/body/animation.hpp"
#include "semholo/body/pose.hpp"

namespace semholo::compress {
namespace {

std::vector<std::uint8_t> bytesOf(const std::string& s) {
    return {s.begin(), s.end()};
}

std::vector<std::uint8_t> poseStream(body::MotionKind kind, int frames) {
    const body::MotionGenerator gen(kind);
    std::vector<std::uint8_t> out;
    for (const body::Pose& pose : gen.sequence(static_cast<std::size_t>(frames)))
        for (const std::uint8_t b : body::serializePose(pose)) out.push_back(b);
    return out;
}

const std::vector<std::vector<FilterOp>> kChains = {
    {},
    {FilterOp::ByteTranspose},
    {FilterOp::ByteTranspose, FilterOp::DeltaDiff},
    {FilterOp::ByteTranspose, FilterOp::XorDiff},
    {FilterOp::Bitshuffle},
    {FilterOp::Bitshuffle, FilterOp::DeltaDiff},
    {FilterOp::DeltaDiff},
};

TEST(Codec2, EveryChainBackendOptionComboRoundTrips) {
    const auto stream = poseStream(body::MotionKind::Talk, 4);
    const auto text = bytesOf("semantic holographic communication caption text");
    for (const auto& ops : kChains) {
        for (const EntropyBackend backend :
             {EntropyBackend::Store, EntropyBackend::Lzc}) {
            for (const int steps : {1, 64, 256}) {
                for (const int ctxBits : {0, 2, 3, 9}) {
                    Codec2Options options;
                    options.filters.ops = ops;
                    options.filters.stride = 8;
                    options.backend = backend;
                    options.lzc.maxChainSteps = steps;
                    options.lzc.literalContextBits = ctxBits;
                    for (const auto* data : {&stream, &text}) {
                        const auto container = codec2Encode(*data, options);
                        const auto back = codec2Decode(container);
                        ASSERT_TRUE(back.has_value())
                            << filterChainName(options.filters);
                        EXPECT_EQ(*back, *data)
                            << filterChainName(options.filters);
                    }
                }
            }
        }
    }
}

TEST(Codec2, DecodeNeedsNoOptions) {
    // The container self-describes: decode sees only bytes, never the
    // encoder's Codec2Options. Encode with deliberately odd settings.
    const auto data = poseStream(body::MotionKind::Collaborate, 2);
    Codec2Options odd;
    odd.filters.ops = {FilterOp::Bitshuffle, FilterOp::XorDiff};
    odd.filters.stride = 16;
    odd.lzc.maxChainSteps = 7;
    odd.lzc.literalContextBits = 1;
    const auto container = codec2Encode(data, odd);
    const auto back = codec2Decode(container);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
}

TEST(Codec2, EmptyInputRoundTrips) {
    for (const EntropyBackend backend :
         {EntropyBackend::Store, EntropyBackend::Lzc}) {
        Codec2Options options = poseCodecDefaults();
        options.backend = backend;
        const auto container = codec2Encode({}, options);
        const auto back = codec2Decode(container);
        ASSERT_TRUE(back.has_value());
        EXPECT_TRUE(back->empty());
    }
}

TEST(Codec2, DefaultPoseChainBeatsPlainLzcOnPoseStream) {
    // The point of the filter stage (ROADMAP "Keypoint codec v2"): the
    // transpose+delta chain must strictly improve the ratio a bare lzc
    // pass achieves on the serialized pose stream.
    const auto stream = poseStream(body::MotionKind::Talk, 16);
    Codec2Options plain = textCodecDefaults();  // lzc, no filters
    const auto plainBytes = codec2Encode(stream, plain).size();
    const auto filteredBytes =
        codec2Encode(stream, poseCodecDefaults()).size();
    EXPECT_LT(filteredBytes, plainBytes);
}

TEST(Codec2, UnknownHeaderBytesRejected) {
    const auto container = codec2Encode(bytesOf("payload"), poseCodecDefaults());
    {
        auto bad = container;
        bad[0] = 0x00;  // magic
        EXPECT_FALSE(codec2Decode(bad).has_value());
    }
    {
        auto bad = container;
        bad[1] = kCodec2Version + 1;  // future version
        EXPECT_FALSE(codec2Decode(bad).has_value());
    }
    {
        auto bad = container;
        bad[2] = 9;  // unknown backend
        EXPECT_FALSE(codec2Decode(bad).has_value());
    }
    {
        auto bad = container;
        bad[3] = 0;  // zero stride
        EXPECT_FALSE(codec2Decode(bad).has_value());
    }
    {
        auto bad = container;
        bad[4] = 200;  // absurd filter count
        EXPECT_FALSE(codec2Decode(bad).has_value());
    }
    {
        auto bad = container;
        bad[5] = 99;  // unknown filter op byte
        EXPECT_FALSE(codec2Decode(bad).has_value());
    }
}

TEST(Codec2, MalformedEncodeOptionsDegradeToDecodableStream) {
    // A zero-stride chain cannot be honored; the encoder must still
    // produce a container the decoder accepts (filters dropped), never
    // an undecodable stream.
    const auto data = bytesOf("robustness of the encode path");
    Codec2Options broken = poseCodecDefaults();
    broken.filters.stride = 0;
    const auto container = codec2Encode(data, broken);
    const auto back = codec2Decode(container);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
}

TEST(Codec2, CorruptionFuzzNeverCrashes) {
    const auto data = poseStream(body::MotionKind::Wave, 2);
    for (const EntropyBackend backend :
         {EntropyBackend::Store, EntropyBackend::Lzc}) {
        Codec2Options options = poseCodecDefaults();
        options.backend = backend;
        const auto container = codec2Encode(data, options);

        // Truncations at every length must not crash. There is no
        // integrity hash by design, so a cut through the range-coder
        // tail may still decode — but the lzc backend's size header
        // pins the output length, so any successful decode has the
        // original size. (Store has no explicit size: a truncated store
        // container legitimately decodes to a shorter byte string.)
        for (std::size_t len = 0; len < container.size(); ++len) {
            const auto back =
                codec2Decode(std::span(container).subspan(0, len));
            if (back.has_value() && backend == EntropyBackend::Lzc)
                EXPECT_EQ(back->size(), data.size());
        }
        // Single-bit flips across the whole container: must not crash.
        for (std::size_t bit = 0; bit < container.size() * 8; bit += 7) {
            auto corrupt = container;
            corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
            (void)codec2Decode(corrupt);
        }
    }
    // Random garbage of assorted sizes.
    std::mt19937 rng(31);
    std::uniform_int_distribution<int> uni(0, 255);
    for (int i = 0; i < 200; ++i) {
        std::vector<std::uint8_t> garbage(static_cast<std::size_t>(uni(rng)));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(uni(rng));
        (void)codec2Decode(garbage);
    }
}

}  // namespace
}  // namespace semholo::compress
