#include "semholo/compress/lzc.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "semholo/body/animation.hpp"
#include "semholo/body/pose.hpp"

namespace semholo::compress {
namespace {

std::vector<std::uint8_t> bytesOf(const std::string& s) {
    return {s.begin(), s.end()};
}

void expectRoundTrip(const std::vector<std::uint8_t>& data) {
    const auto compressed = lzcCompress(data);
    const auto back = lzcDecompress(compressed);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), data.size());
    EXPECT_EQ(*back, data);
}

TEST(Lzc, EmptyInput) {
    const auto compressed = lzcCompress({});
    const auto back = lzcDecompress(compressed);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(Lzc, SingleByte) { expectRoundTrip({42}); }

TEST(Lzc, ShortText) { expectRoundTrip(bytesOf("hello world")); }

TEST(Lzc, RepetitiveTextCompressesWell) {
    std::string s;
    for (int i = 0; i < 200; ++i) s += "holographic communication ";
    const auto data = bytesOf(s);
    const auto compressed = lzcCompress(data);
    expectRoundTrip(data);
    EXPECT_LT(compressed.size(), data.size() / 10);
}

TEST(Lzc, AllSameByte) {
    std::vector<std::uint8_t> data(100000, 0xAB);
    const auto compressed = lzcCompress(data);
    expectRoundTrip(data);
    EXPECT_LT(compressed.size(), 600u);
}

TEST(Lzc, RandomBytesRoundTripWithoutBlowup) {
    std::mt19937 rng(9);
    std::uniform_int_distribution<int> uni(0, 255);
    std::vector<std::uint8_t> data(50000);
    for (auto& b : data) b = static_cast<std::uint8_t>(uni(rng));
    const auto compressed = lzcCompress(data);
    expectRoundTrip(data);
    // Incompressible data must not expand by more than ~6%.
    EXPECT_LT(compressed.size(), data.size() * 106 / 100);
}

TEST(Lzc, StructuredBinaryRoundTrip) {
    // Little-endian floats with slowly varying values (pose-like data).
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 5000; ++i) {
        const float f = std::sin(static_cast<float>(i) * 0.01f);
        const auto* p = reinterpret_cast<const std::uint8_t*>(&f);
        data.insert(data.end(), p, p + 4);
    }
    expectRoundTrip(data);
}

TEST(Lzc, PosePayloadReachesPaperRatio) {
    // Table 2: LZMA shrinks the 1.91 KB pose payload to ~1.23 KB (x1.55).
    // Our animated poses have many near-zero doubles; require >= x1.3.
    const body::MotionGenerator gen(body::MotionKind::Talk);
    const auto payload = body::serializePose(gen.poseAt(0.5));
    const auto compressed = lzcCompress(payload);
    expectRoundTrip(payload);
    EXPECT_LT(compressed.size(), payload.size() * 10 / 13);
}

TEST(Lzc, TruncatedInputRejected) {
    const auto compressed = lzcCompress(bytesOf("some compressible payload data"));
    // Header truncated.
    EXPECT_FALSE(lzcDecompress(std::span(compressed).subspan(0, 3)).has_value());
}

TEST(Lzc, CorruptSizeHeaderRejected) {
    auto compressed = lzcCompress(bytesOf("abc"));
    compressed[3] = 0x7F;  // absurd size
    EXPECT_FALSE(lzcDecompress(compressed).has_value());
}

TEST(Lzc, LongMatchesAcrossWindow) {
    // A long periodic pattern with period > min match length.
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 60000; ++i)
        data.push_back(static_cast<std::uint8_t>((i * 7) % 253));
    expectRoundTrip(data);
}

TEST(Lzc, BinaryWithEmbeddedZeros) {
    std::vector<std::uint8_t> data(1000, 0);
    data[500] = 1;
    expectRoundTrip(data);
}

class LzcSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LzcSizeSweep, RoundTripAtManySizes) {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> uni(0, 60);
    std::vector<std::uint8_t> data(GetParam());
    for (auto& b : data) b = static_cast<std::uint8_t>(uni(rng));
    expectRoundTrip(data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzcSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 15, 64, 255, 1024, 4095,
                                           65536, 100001));

}  // namespace
}  // namespace semholo::compress
