#include "semholo/compress/lzc.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>

#include "semholo/body/animation.hpp"
#include "semholo/body/pose.hpp"

namespace semholo::compress {
namespace {

std::vector<std::uint8_t> bytesOf(const std::string& s) {
    return {s.begin(), s.end()};
}

void expectRoundTrip(const std::vector<std::uint8_t>& data) {
    const auto compressed = lzcCompress(data);
    const auto back = lzcDecompress(compressed);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), data.size());
    EXPECT_EQ(*back, data);
}

TEST(Lzc, EmptyInput) {
    const auto compressed = lzcCompress({});
    const auto back = lzcDecompress(compressed);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(Lzc, SingleByte) { expectRoundTrip({42}); }

TEST(Lzc, ShortText) { expectRoundTrip(bytesOf("hello world")); }

TEST(Lzc, RepetitiveTextCompressesWell) {
    std::string s;
    for (int i = 0; i < 200; ++i) s += "holographic communication ";
    const auto data = bytesOf(s);
    const auto compressed = lzcCompress(data);
    expectRoundTrip(data);
    EXPECT_LT(compressed.size(), data.size() / 10);
}

TEST(Lzc, AllSameByte) {
    std::vector<std::uint8_t> data(100000, 0xAB);
    const auto compressed = lzcCompress(data);
    expectRoundTrip(data);
    EXPECT_LT(compressed.size(), 600u);
}

TEST(Lzc, RandomBytesRoundTripWithoutBlowup) {
    std::mt19937 rng(9);
    std::uniform_int_distribution<int> uni(0, 255);
    std::vector<std::uint8_t> data(50000);
    for (auto& b : data) b = static_cast<std::uint8_t>(uni(rng));
    const auto compressed = lzcCompress(data);
    expectRoundTrip(data);
    // Incompressible data must not expand by more than ~6%.
    EXPECT_LT(compressed.size(), data.size() * 106 / 100);
}

TEST(Lzc, StructuredBinaryRoundTrip) {
    // Little-endian floats with slowly varying values (pose-like data).
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 5000; ++i) {
        const float f = std::sin(static_cast<float>(i) * 0.01f);
        const auto* p = reinterpret_cast<const std::uint8_t*>(&f);
        data.insert(data.end(), p, p + 4);
    }
    expectRoundTrip(data);
}

TEST(Lzc, PosePayloadReachesPaperRatio) {
    // Table 2: LZMA shrinks the 1.91 KB pose payload to ~1.23 KB (x1.55).
    // Our animated poses have many near-zero doubles; require >= x1.3.
    const body::MotionGenerator gen(body::MotionKind::Talk);
    const auto payload = body::serializePose(gen.poseAt(0.5));
    const auto compressed = lzcCompress(payload);
    expectRoundTrip(payload);
    EXPECT_LT(compressed.size(), payload.size() * 10 / 13);
}

TEST(Lzc, TruncatedInputRejected) {
    const auto compressed = lzcCompress(bytesOf("some compressible payload data"));
    // Header truncated.
    EXPECT_FALSE(lzcDecompress(std::span(compressed).subspan(0, 3)).has_value());
    EXPECT_FALSE(
        lzcDecompress(std::span(compressed).subspan(0, kLzcHeaderBytes - 1))
            .has_value());
}

TEST(Lzc, CorruptSizeHeaderRejected) {
    auto compressed = lzcCompress(bytesOf("abc"));
    compressed[4] = 0x7F;  // absurd size (top byte of the u32le size)
    EXPECT_FALSE(lzcDecompress(compressed).has_value());
}

TEST(Lzc, UnknownFormatByteRejected) {
    auto compressed = lzcCompress(bytesOf("format check payload"));
    ASSERT_EQ(compressed[0] & kLzcFormatMask, kLzcFormatTag);
    for (const std::uint8_t bad : {0x00, 0x10, 0x24, 0x40, 0xFF}) {
        auto corrupt = compressed;
        corrupt[0] = bad;
        EXPECT_FALSE(lzcDecompress(corrupt).has_value())
            << "format byte " << static_cast<int>(bad) << " accepted";
    }
}

TEST(Lzc, HeaderCarriesEncoderContextBits) {
    // The regression this wire format exists for: any non-default
    // literalContextBits used to corrupt the round trip because the
    // decoder hardcoded the default. The format byte must carry the
    // clamped setting.
    const auto data = bytesOf("the quick brown fox jumps over the lazy dog");
    for (int bits = 0; bits <= kLzcMaxLiteralContextBits; ++bits) {
        LzcOptions options;
        options.literalContextBits = bits;
        const auto compressed = lzcCompress(data, options);
        EXPECT_EQ(compressed[0] & ~kLzcFormatMask, bits);
        const auto back = lzcDecompress(compressed);
        ASSERT_TRUE(back.has_value()) << "bits=" << bits;
        EXPECT_EQ(*back, data) << "bits=" << bits;
    }
}

TEST(Lzc, HugeSizeHeaderDoesNotPreallocate) {
    // A tiny packet claiming a ~1 GiB payload must fail cleanly (the
    // initial reserve is capped, the payload exhausts immediately).
    std::vector<std::uint8_t> packet = {
        static_cast<std::uint8_t>(kLzcFormatTag | 3),
        0xFF, 0xFF, 0xFF, 0x3F,  // size = 2^30 - 1: passes the size guard
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
    EXPECT_FALSE(lzcDecompress(packet).has_value());
}

// Options grid: every (literalContextBits x maxChainSteps) pair must
// round-trip bit-exactly — including the formerly-corrupting
// out-of-range context values and degenerate chain depths.
class LzcOptionsGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LzcOptionsGrid, RoundTripsPoseAndStructuredData) {
    LzcOptions options;
    options.literalContextBits = std::get<0>(GetParam());
    options.maxChainSteps = std::get<1>(GetParam());

    const body::MotionGenerator gen(body::MotionKind::Talk);
    const auto pose = body::serializePose(gen.poseAt(0.25));
    std::vector<std::vector<std::uint8_t>> datasets = {pose,
                                                       bytesOf("aaaaabbbbbab")};
    std::mt19937 rng(77);
    std::uniform_int_distribution<int> uni(0, 255);
    datasets.emplace_back(4096);
    for (auto& b : datasets.back()) b = static_cast<std::uint8_t>(uni(rng));

    for (const auto& data : datasets) {
        const auto compressed = lzcCompress(data, options);
        const auto back = lzcDecompress(compressed);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, data);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LzcOptionsGrid,
    ::testing::Combine(
        // Includes values that used to alias contexts (> 3) or shift by
        // more than the byte width (< 0) before clamping existed.
        ::testing::Values(-2, 0, 1, 2, 3, 4, 8, 100),
        ::testing::Values(0, 1, 4, 64, 1024)));

TEST(Lzc, CorruptionFuzzNeverCrashes) {
    // Bit flips, truncations and garbage tails on a real compressed pose
    // payload: decode must return nullopt or the exact original — never
    // crash or trip the sanitizers.
    const body::MotionGenerator gen(body::MotionKind::Wave);
    const auto data = body::serializePose(gen.poseAt(1.0));
    const auto compressed = lzcCompress(data);

    for (std::size_t bit = 0; bit < compressed.size() * 8; bit += 5) {
        auto corrupt = compressed;
        corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        const auto back = lzcDecompress(corrupt);  // must not crash / UB
        // A flip that breaks the format tag must be rejected outright
        // (the codec carries no integrity hash, so payload flips may
        // still decode to some byte string — that is by design).
        if ((corrupt[0] & kLzcFormatMask) != kLzcFormatTag)
            EXPECT_FALSE(back.has_value());
    }
    // Truncations at every length: no integrity hash means a cut
    // through the range-coder tail may still decode, but the size
    // header pins the output length of any successful decode.
    for (std::size_t len = 0; len < compressed.size(); ++len) {
        const auto back =
            lzcDecompress(std::span(compressed).subspan(0, len));
        if (back.has_value()) EXPECT_EQ(back->size(), data.size());
    }
    std::mt19937 rng(123);
    std::uniform_int_distribution<int> uni(0, 255);
    for (int i = 0; i < 200; ++i) {
        std::vector<std::uint8_t> garbage(
            static_cast<std::size_t>(uni(rng)) + 5);
        for (auto& b : garbage) b = static_cast<std::uint8_t>(uni(rng));
        (void)lzcDecompress(garbage);  // must not crash / UB
    }
}

TEST(Lzc, LongMatchesAcrossWindow) {
    // A long periodic pattern with period > min match length.
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 60000; ++i)
        data.push_back(static_cast<std::uint8_t>((i * 7) % 253));
    expectRoundTrip(data);
}

TEST(Lzc, BinaryWithEmbeddedZeros) {
    std::vector<std::uint8_t> data(1000, 0);
    data[500] = 1;
    expectRoundTrip(data);
}

class LzcSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LzcSizeSweep, RoundTripAtManySizes) {
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> uni(0, 60);
    std::vector<std::uint8_t> data(GetParam());
    for (auto& b : data) b = static_cast<std::uint8_t>(uni(rng));
    expectRoundTrip(data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzcSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 15, 64, 255, 1024, 4095,
                                           65536, 100001));

}  // namespace
}  // namespace semholo::compress
