#include "semholo/compress/texturecodec.hpp"

#include <gtest/gtest.h>

#include <random>

#include "semholo/body/body_model.hpp"

namespace semholo::compress {
namespace {

using geom::Vec3f;

TEST(TextureCodec, RoundTripCount) {
    std::vector<Vec3f> colors(100, Vec3f{0.5f, 0.25f, 0.75f});
    const auto back = decodeColorBlocks(encodeColorBlocks(colors));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), colors.size());
}

TEST(TextureCodec, ConstantColorNearlyExact) {
    std::vector<Vec3f> colors(64, Vec3f{0.6f, 0.3f, 0.9f});
    const auto back = decodeColorBlocks(encodeColorBlocks(colors));
    ASSERT_TRUE(back.has_value());
    for (const Vec3f& c : *back)
        EXPECT_LE((c - colors[0]).norm(), 0.03f);  // 565 quantisation only
}

TEST(TextureCodec, GradientWellApproximated) {
    std::vector<Vec3f> colors;
    for (int i = 0; i < 160; ++i) {
        const float t = static_cast<float>(i % 16) / 15.0f;
        colors.push_back({t, t * 0.5f, 1.0f - t});
    }
    const auto back = decodeColorBlocks(encodeColorBlocks(colors));
    ASSERT_TRUE(back.has_value());
    double meanErr = 0.0;
    for (std::size_t i = 0; i < colors.size(); ++i)
        meanErr += (colors[i] - (*back)[i]).norm();
    meanErr /= static_cast<double>(colors.size());
    EXPECT_LT(meanErr, 0.12);
}

TEST(TextureCodec, CompressionRatioAbout12x) {
    // 16 samples -> 8 bytes vs 192 raw bytes = 24x on float RGB
    // (equivalently 6x vs 8-bit RGB). Header amortises on larger inputs.
    std::vector<Vec3f> colors(16000, Vec3f{0.1f, 0.2f, 0.3f});
    const auto data = encodeColorBlocks(colors);
    EXPECT_GT(colorBlockRatio(colors.size(), data.size()), 20.0);
}

TEST(TextureCodec, PartialLastBlock) {
    std::vector<Vec3f> colors(19, Vec3f{0.9f, 0.1f, 0.4f});
    const auto back = decodeColorBlocks(encodeColorBlocks(colors));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), 19u);
}

TEST(TextureCodec, EmptyInput) {
    const auto back = decodeColorBlocks(encodeColorBlocks({}));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(TextureCodec, GarbageRejected) {
    std::vector<std::uint8_t> garbage(40, 0x77);
    EXPECT_FALSE(decodeColorBlocks(garbage).has_value());
}

TEST(TextureCodec, TruncatedRejected) {
    std::vector<Vec3f> colors(64, Vec3f{0.5f, 0.5f, 0.5f});
    const auto data = encodeColorBlocks(colors);
    EXPECT_FALSE(
        decodeColorBlocks(std::span(data).subspan(0, data.size() - 10)).has_value());
}

TEST(TextureCodec, GroundTruthAlbedoPreservesRegions) {
    // Texture of the body template: skin vs shirt vs trousers must stay
    // distinguishable after block compression.
    std::vector<Vec3f> colors;
    for (int i = 0; i < 64; ++i) colors.push_back(body::groundTruthAlbedo({0, 0.7f, 0.05f}));
    for (int i = 0; i < 64; ++i) colors.push_back(body::groundTruthAlbedo({0, 0.2f, 0.05f}));
    const auto back = decodeColorBlocks(encodeColorBlocks(colors));
    ASSERT_TRUE(back.has_value());
    EXPECT_GT(((*back)[0] - (*back)[100]).norm(), 0.2f);
}

TEST(TextureCodec, RandomNoiseBoundedError) {
    std::mt19937 rng(12);
    std::uniform_real_distribution<float> uni(0.0f, 1.0f);
    std::vector<Vec3f> colors(320);
    for (Vec3f& c : colors) c = {uni(rng), uni(rng), uni(rng)};
    const auto back = decodeColorBlocks(encodeColorBlocks(colors));
    ASSERT_TRUE(back.has_value());
    // Lossy, but every sample stays within the unit colour cube diagonal.
    for (std::size_t i = 0; i < colors.size(); ++i)
        EXPECT_LE((colors[i] - (*back)[i]).norm(), 1.0f);
}

}  // namespace
}  // namespace semholo::compress
