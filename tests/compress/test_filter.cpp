#include "semholo/compress/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace semholo::compress {
namespace {

std::vector<std::uint8_t> randomBytes(std::size_t n, std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> uni(0, 255);
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(uni(rng));
    return data;
}

std::vector<std::uint8_t> doubleLanes(std::size_t count) {
    // Slowly varying doubles: the pose payload's byte-lane structure.
    std::vector<std::uint8_t> data;
    for (std::size_t i = 0; i < count; ++i) {
        const double d = std::sin(static_cast<double>(i) * 0.01) * 0.25;
        const auto* p = reinterpret_cast<const std::uint8_t*>(&d);
        data.insert(data.end(), p, p + sizeof(double));
    }
    return data;
}

void expectInverts(const FilterChain& chain,
                   const std::vector<std::uint8_t>& data) {
    const auto filtered = applyFilters(chain, data);
    ASSERT_EQ(filtered.size(), data.size());
    const auto back = invertFilters(chain, filtered);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data) << filterChainName(chain) << " stride "
                           << static_cast<int>(chain.stride) << " n "
                           << data.size();
}

const std::vector<std::vector<FilterOp>> kAllChains = {
    {},
    {FilterOp::ByteTranspose},
    {FilterOp::DeltaDiff},
    {FilterOp::XorDiff},
    {FilterOp::Bitshuffle},
    {FilterOp::ByteTranspose, FilterOp::DeltaDiff},
    {FilterOp::ByteTranspose, FilterOp::XorDiff},
    {FilterOp::Bitshuffle, FilterOp::DeltaDiff},
    {FilterOp::DeltaDiff, FilterOp::ByteTranspose, FilterOp::XorDiff,
     FilterOp::Bitshuffle},
};

TEST(Filter, EveryChainInvertsAtManySizesAndStrides) {
    for (const auto& ops : kAllChains) {
        for (const std::uint8_t stride : {1, 2, 4, 8, 16}) {
            FilterChain chain{.ops = ops, .stride = stride};
            for (const std::size_t n :
                 {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
                  std::size_t{9}, std::size_t{63}, std::size_t{64},
                  std::size_t{65}, std::size_t{1000}, std::size_t{1956}}) {
                expectInverts(chain, randomBytes(n, 17u + static_cast<unsigned>(n)));
            }
        }
    }
}

TEST(Filter, PoseLikeDoublesInvert) {
    for (const auto& ops : kAllChains) {
        FilterChain chain{.ops = ops, .stride = 8};
        expectInverts(chain, doubleLanes(244));
    }
}

TEST(Filter, TransposeGroupsLanes) {
    // 3 elements of stride 4: lane bytes become contiguous planes.
    const std::vector<std::uint8_t> data = {0, 1, 2, 3, 10, 11, 12, 13,
                                            20, 21, 22, 23};
    FilterChain chain{.ops = {FilterOp::ByteTranspose}, .stride = 4};
    const auto filtered = applyFilters(chain, data);
    const std::vector<std::uint8_t> expected = {0, 10, 20, 1, 11, 21,
                                                2, 12, 22, 3, 13, 23};
    EXPECT_EQ(filtered, expected);
}

TEST(Filter, TransposeTailPassesThrough) {
    // 9 bytes at stride 4: one whole element + 5 tail bytes unchanged in
    // place (the transform only permutes the element-aligned prefix...
    // prefix is 2 elements = 8 bytes here, tail is 1 byte).
    const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8, 99};
    FilterChain chain{.ops = {FilterOp::ByteTranspose}, .stride = 4};
    const auto filtered = applyFilters(chain, data);
    ASSERT_EQ(filtered.size(), data.size());
    EXPECT_EQ(filtered.back(), 99);
    expectInverts(chain, data);
}

TEST(Filter, DeltaMakesConstantRunsZero) {
    const std::vector<std::uint8_t> data(64, 42);
    FilterChain chain{.ops = {FilterOp::DeltaDiff}, .stride = 1};
    const auto filtered = applyFilters(chain, data);
    EXPECT_EQ(filtered[0], 42);
    for (std::size_t i = 1; i < filtered.size(); ++i)
        EXPECT_EQ(filtered[i], 0u);
}

TEST(Filter, XorMakesConstantRunsZero) {
    const std::vector<std::uint8_t> data(64, 0xA5);
    FilterChain chain{.ops = {FilterOp::XorDiff}, .stride = 1};
    const auto filtered = applyFilters(chain, data);
    EXPECT_EQ(filtered[0], 0xA5);
    for (std::size_t i = 1; i < filtered.size(); ++i)
        EXPECT_EQ(filtered[i], 0u);
}

TEST(Filter, BitshuffleIsAPureBitPermutation) {
    const auto data = randomBytes(512, 5);
    FilterChain chain{.ops = {FilterOp::Bitshuffle}, .stride = 8};
    const auto filtered = applyFilters(chain, data);
    // Population count is preserved by any bit permutation.
    auto popcount = [](const std::vector<std::uint8_t>& v) {
        int bits = 0;
        for (const std::uint8_t b : v) bits += __builtin_popcount(b);
        return bits;
    };
    EXPECT_EQ(popcount(filtered), popcount(data));
    expectInverts(chain, data);
}

TEST(Filter, BitshuffleMatchesScalarReferenceEverywhere) {
    // The 8-rows-at-a-time transpose path must be byte-identical to the
    // bit-at-a-time reference on every alignment shape: rows % 8 from 0
    // through 7, odd strides, tails, and the empty prefix.
    std::uint32_t seed = 100;
    for (const std::size_t stride : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
        for (const std::size_t rows : {0u, 1u, 5u, 8u, 9u, 16u, 63u, 64u, 200u}) {
            for (const std::size_t tail : {0u, 1u, 3u}) {
                const std::size_t n = rows * stride + tail;
                if (n == 0) continue;
                const auto data = randomBytes(n, seed++);
                FilterChain chain{.ops = {FilterOp::Bitshuffle},
                                  .stride = static_cast<std::uint8_t>(stride)};
                const auto fast = applyFilters(chain, data);
                std::vector<std::uint8_t> ref(n);
                detail::bitshuffleScalar(data, ref.data(), stride);
                ASSERT_EQ(fast, ref) << "stride " << stride << " rows " << rows
                                     << " tail " << tail;
                const auto back = invertFilters(chain, fast);
                ASSERT_TRUE(back.has_value());
                std::vector<std::uint8_t> refBack(n);
                detail::unbitshuffleScalar(fast, refBack.data(), stride);
                ASSERT_EQ(*back, refBack) << "stride " << stride << " rows "
                                          << rows << " tail " << tail;
                ASSERT_EQ(*back, data);
            }
        }
    }
}

TEST(Filter, MalformedChainRejectedOnInvert) {
    FilterChain zeroStride{.ops = {FilterOp::ByteTranspose}, .stride = 0};
    EXPECT_FALSE(invertFilters(zeroStride, randomBytes(16, 1)).has_value());
    FilterChain overlong;
    overlong.stride = 8;
    overlong.ops.assign(kMaxFilterChainOps + 1, FilterOp::DeltaDiff);
    EXPECT_FALSE(invertFilters(overlong, randomBytes(16, 2)).has_value());
}

TEST(Filter, ChainNames) {
    EXPECT_EQ(filterChainName(FilterChain{}), "none");
    FilterChain chain{.ops = {FilterOp::ByteTranspose, FilterOp::DeltaDiff},
                      .stride = 8};
    EXPECT_EQ(filterChainName(chain), "transpose+delta");
    EXPECT_TRUE(isValidFilterOp(static_cast<std::uint8_t>(FilterOp::Bitshuffle)));
    EXPECT_FALSE(isValidFilterOp(0));
    EXPECT_FALSE(isValidFilterOp(200));
}

}  // namespace
}  // namespace semholo::compress
