#include "semholo/compress/rangecoder.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace semholo::compress {
namespace {

TEST(RangeCoder, SingleBitsRoundTrip) {
    RangeEncoder enc;
    BitProb p;
    const std::vector<int> bits{0, 1, 1, 0, 1, 0, 0, 0, 1, 1};
    for (const int b : bits) enc.encodeBit(p, b);
    enc.finish();
    const auto data = enc.take();

    RangeDecoder dec(data);
    BitProb q;
    for (const int b : bits) EXPECT_EQ(dec.decodeBit(q), b);
}

TEST(RangeCoder, RandomBitStreamRoundTrip) {
    std::mt19937 rng(3);
    std::bernoulli_distribution bit(0.3);
    std::vector<int> bits(5000);
    for (auto& b : bits) b = bit(rng) ? 1 : 0;

    RangeEncoder enc;
    BitProb p;
    for (const int b : bits) enc.encodeBit(p, b);
    enc.finish();
    const auto data = enc.take();

    RangeDecoder dec(data);
    BitProb q;
    for (const int b : bits) ASSERT_EQ(dec.decodeBit(q), b);
}

TEST(RangeCoder, AdaptiveCoderBeatsOneBitPerSymbolOnSkewedData) {
    // 95% zeros: the adaptive model must compress well below 1 bit/symbol.
    std::mt19937 rng(4);
    std::bernoulli_distribution bit(0.05);
    const std::size_t n = 20000;
    RangeEncoder enc;
    BitProb p;
    for (std::size_t i = 0; i < n; ++i) enc.encodeBit(p, bit(rng) ? 1 : 0);
    enc.finish();
    EXPECT_LT(enc.take().size(), n / 8 / 2);  // < 0.5 bit per symbol
}

TEST(RangeCoder, DirectBitsRoundTrip) {
    std::mt19937 rng(5);
    std::uniform_int_distribution<std::uint32_t> uni(0, 0xFFFFFF);
    std::vector<std::uint32_t> values(500);
    for (auto& v : values) v = uni(rng);

    RangeEncoder enc;
    for (const auto v : values) enc.encodeDirect(v, 24);
    enc.finish();
    const auto data = enc.take();

    RangeDecoder dec(data);
    for (const auto v : values) ASSERT_EQ(dec.decodeDirect(24), v);
}

TEST(RangeCoder, TreeRoundTrip) {
    std::mt19937 rng(6);
    std::uniform_int_distribution<std::uint32_t> uni(0, 255);
    std::vector<std::uint32_t> values(2000);
    for (auto& v : values) v = uni(rng);

    std::vector<BitProb> encTree(255), decTree(255);
    RangeEncoder enc;
    for (const auto v : values) enc.encodeTree(encTree, v, 8);
    enc.finish();
    const auto data = enc.take();

    RangeDecoder dec(data);
    for (const auto v : values) ASSERT_EQ(dec.decodeTree(decTree, 8), v);
}

TEST(RangeCoder, MixedOperationsRoundTrip) {
    RangeEncoder enc;
    BitProb p;
    std::vector<BitProb> encTree(15);
    enc.encodeBit(p, 1);
    enc.encodeDirect(0x5A, 8);
    enc.encodeTree(encTree, 11, 4);
    enc.encodeBit(p, 0);
    enc.finish();
    const auto data = enc.take();

    RangeDecoder dec(data);
    BitProb q;
    std::vector<BitProb> decTree(15);
    EXPECT_EQ(dec.decodeBit(q), 1);
    EXPECT_EQ(dec.decodeDirect(8), 0x5Au);
    EXPECT_EQ(dec.decodeTree(decTree, 4), 11u);
    EXPECT_EQ(dec.decodeBit(q), 0);
}

}  // namespace
}  // namespace semholo::compress
