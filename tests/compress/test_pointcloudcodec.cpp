#include "semholo/compress/pointcloudcodec.hpp"

#include <gtest/gtest.h>

#include <random>

#include "semholo/body/body_model.hpp"
#include "semholo/mesh/kdtree.hpp"
#include "semholo/mesh/sampling.hpp"

namespace semholo::compress {
namespace {

using mesh::PointCloud;

PointCloud randomCloud(std::size_t n, std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> uni(-1.0f, 1.0f);
    PointCloud pc;
    for (std::size_t i = 0; i < n; ++i)
        pc.addPoint({uni(rng), uni(rng), uni(rng)});
    return pc;
}

TEST(PointCloudCodec, EmptyCloud) {
    const auto back = decodePointCloud(encodePointCloud(PointCloud{}));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(PointCloudCodec, SinglePoint) {
    PointCloud pc;
    pc.addPoint({1.5f, -0.5f, 2.0f});
    const auto back = decodePointCloud(encodePointCloud(pc));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), 1u);
    // Degenerate extent: the point maps to the cell centre at the origin
    // corner; error bounded by a cell.
    EXPECT_LE((back->points[0] - pc.points[0]).norm(), 0.01f);
}

TEST(PointCloudCodec, RoundTripErrorBoundedByDepth) {
    const PointCloud pc = randomCloud(5000, 3);
    for (const int depth : {6, 8, 10}) {
        PointCloudCodecOptions opt;
        opt.depth = depth;
        opt.encodeColors = false;
        const auto back = decodePointCloud(encodePointCloud(pc, opt));
        ASSERT_TRUE(back.has_value());
        const float bound = pointCloudQuantizationError(pc, depth);
        const mesh::KdTree tree(back->points);
        for (std::size_t i = 0; i < pc.size(); i += 37) {
            const auto hit = tree.nearest(pc.points[i]);
            EXPECT_LE(std::sqrt(hit.distance2), bound * 1.01f)
                << "depth " << depth;
        }
    }
}

TEST(PointCloudCodec, DeeperOctreeLessError) {
    const PointCloud pc = randomCloud(2000, 7);
    auto meanErr = [&](int depth) {
        PointCloudCodecOptions opt;
        opt.depth = depth;
        const auto back = decodePointCloud(encodePointCloud(pc, opt));
        const mesh::KdTree tree(back->points);
        double err = 0.0;
        for (const auto& p : pc.points)
            err += std::sqrt(tree.nearest(p).distance2);
        return err / static_cast<double>(pc.size());
    };
    EXPECT_LT(meanErr(10), meanErr(6) * 0.2);
}

TEST(PointCloudCodec, MergesCoincidentPoints) {
    PointCloud pc;
    for (int i = 0; i < 100; ++i) pc.addPoint({0.5f, 0.5f, 0.5f});
    pc.addPoint({-1, -1, -1});
    pc.addPoint({1, 1, 1});
    const auto back = decodePointCloud(encodePointCloud(pc));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), 3u);  // duplicates collapse into one leaf
}

TEST(PointCloudCodec, ColorsAveragedPerLeaf) {
    PointCloud pc;
    pc.addPoint({0.5f, 0.5f, 0.5f}, {1.0f, 0.0f, 0.0f});
    pc.addPoint({0.5f, 0.5f, 0.5f}, {0.0f, 0.0f, 1.0f});
    pc.addPoint({-1.0f, -1.0f, -1.0f}, {0.0f, 1.0f, 0.0f});
    pc.addPoint({1.0f, 1.0f, 1.0f}, {1.0f, 1.0f, 1.0f});
    const auto back = decodePointCloud(encodePointCloud(pc));
    ASSERT_TRUE(back.has_value());
    ASSERT_TRUE(back->hasColors());
    // Find the merged leaf and check the averaged purple.
    bool found = false;
    for (std::size_t i = 0; i < back->size(); ++i) {
        if ((back->points[i] - geom::Vec3f{0.5f, 0.5f, 0.5f}).norm() < 0.02f) {
            EXPECT_NEAR(back->colors[i].x, 0.5f, 0.05f);
            EXPECT_NEAR(back->colors[i].z, 0.5f, 0.05f);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(PointCloudCodec, CompressionBeatsRawOnSurfaceClouds) {
    // Surface-sampled clouds (the capture pipeline's output) have strong
    // octree coherence: expect clearly better than raw float storage.
    const body::BodyModel model(body::ShapeParams{}, 40);
    const PointCloud pc = mesh::sampleSurface(model.templateMesh(), 20000, 5);
    PointCloudCodecOptions opt;
    opt.depth = 9;
    opt.encodeColors = false;
    const auto data = encodePointCloud(pc, opt);
    const double ratio =
        static_cast<double>(pc.size() * sizeof(geom::Vec3f)) /
        static_cast<double>(data.size());
    EXPECT_GT(ratio, 8.0);
    // And the decoded cloud stays on the body surface.
    const auto back = decodePointCloud(data);
    ASSERT_TRUE(back.has_value());
    EXPECT_GT(back->size(), 10000u);
}

TEST(PointCloudCodec, GarbageRejected) {
    std::vector<std::uint8_t> garbage(64, 0x3C);
    EXPECT_FALSE(decodePointCloud(garbage).has_value());
}

TEST(PointCloudCodec, TruncatedRejected) {
    const auto data = encodePointCloud(randomCloud(500, 9));
    EXPECT_FALSE(
        decodePointCloud(std::span(data).subspan(0, data.size() / 3)).has_value());
}

class PointCloudDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PointCloudDepthSweep, RoundTripAtDepth) {
    const PointCloud pc = randomCloud(1500, 21);
    PointCloudCodecOptions opt;
    opt.depth = GetParam();
    const auto back = decodePointCloud(encodePointCloud(pc, opt));
    ASSERT_TRUE(back.has_value());
    EXPECT_GT(back->size(), 0u);
    EXPECT_LE(back->size(), pc.size());
}

INSTANTIATE_TEST_SUITE_P(Depths, PointCloudDepthSweep,
                         ::testing::Values(1, 2, 4, 8, 12, 14));

}  // namespace
}  // namespace semholo::compress
