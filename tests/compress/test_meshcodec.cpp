#include "semholo/compress/meshcodec.hpp"

#include <gtest/gtest.h>

#include "semholo/body/body_model.hpp"
#include "semholo/mesh/isosurface.hpp"
#include "semholo/mesh/metrics.hpp"

namespace semholo::compress {
namespace {

using mesh::TriMesh;

TriMesh testSphere() {
    return mesh::makeUVSphere(0.8f, 24, 48, {0.2f, -0.1f, 0.4f});
}

TEST(MeshCodec, RoundTripPreservesTopology) {
    const TriMesh m = testSphere();
    const auto data = encodeMesh(m);
    const auto back = decodeMesh(data);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->vertexCount(), m.vertexCount());
    EXPECT_EQ(back->triangleCount(), m.triangleCount());
    for (std::size_t i = 0; i < m.triangleCount(); ++i)
        EXPECT_EQ(back->triangles[i], m.triangles[i]);
}

TEST(MeshCodec, PositionErrorBoundedByQuantization) {
    const TriMesh m = testSphere();
    MeshCodecOptions opt;
    opt.positionBits = 11;
    const auto back = decodeMesh(encodeMesh(m, opt));
    ASSERT_TRUE(back.has_value());
    const float bound = quantizationError(m, opt.positionBits);
    for (std::size_t i = 0; i < m.vertexCount(); ++i)
        EXPECT_LE((back->vertices[i] - m.vertices[i]).norm(), bound * 1.01f);
}

TEST(MeshCodec, MoreBitsLessError) {
    const TriMesh m = testSphere();
    MeshCodecOptions lo, hi;
    lo.positionBits = 8;
    hi.positionBits = 14;
    const auto backLo = decodeMesh(encodeMesh(m, lo));
    const auto backHi = decodeMesh(encodeMesh(m, hi));
    ASSERT_TRUE(backLo && backHi);
    double errLo = 0.0, errHi = 0.0;
    for (std::size_t i = 0; i < m.vertexCount(); ++i) {
        errLo += (backLo->vertices[i] - m.vertices[i]).norm();
        errHi += (backHi->vertices[i] - m.vertices[i]).norm();
    }
    EXPECT_LT(errHi, errLo * 0.1);
}

TEST(MeshCodec, AchievesDracoClassRatioOnBodyMesh) {
    // Table 2: Draco shrinks the raw body mesh ~9.4x (397.7 -> 42.1 KB).
    const body::BodyModel model(body::ShapeParams{}, 72);
    const TriMesh m = model.templateMesh();
    MeshCodecOptions opt;
    opt.encodeColors = false;
    const auto data = encodeMesh(m, opt);
    const double ratio =
        static_cast<double>(m.rawGeometryBytes()) / static_cast<double>(data.size());
    EXPECT_GT(ratio, 6.0);
}

TEST(MeshCodec, DecodedBodyMeshGeometricallyClose) {
    const body::BodyModel model(body::ShapeParams{}, 56);
    const TriMesh m = model.templateMesh();
    const auto back = decodeMesh(encodeMesh(m));
    ASSERT_TRUE(back.has_value());
    // Direct per-vertex error: well under two millimetres on a ~2 m
    // model at 11 bits (mesh-sampled Chamfer would be dominated by the
    // sampling spacing, not the codec).
    double meanErr = 0.0;
    for (std::size_t i = 0; i < m.vertexCount(); ++i)
        meanErr += (back->vertices[i] - m.vertices[i]).norm();
    meanErr /= static_cast<double>(m.vertexCount());
    EXPECT_LT(meanErr, 1.5e-3);
}

TEST(MeshCodec, ColorsRoundTrip) {
    TriMesh m = testSphere();
    m.colors.resize(m.vertexCount());
    for (std::size_t i = 0; i < m.vertexCount(); ++i)
        m.colors[i] = {static_cast<float>(i % 7) / 7.0f, 0.5f,
                       static_cast<float>(i % 3) / 3.0f};
    const auto back = decodeMesh(encodeMesh(m));
    ASSERT_TRUE(back.has_value());
    ASSERT_TRUE(back->hasColors());
    for (std::size_t i = 0; i < m.vertexCount(); ++i)
        EXPECT_LE((back->colors[i] - m.colors[i]).norm(), 0.06f);  // 5-bit channels
}

TEST(MeshCodec, ColorsSkippedWhenDisabled) {
    TriMesh m = testSphere();
    m.colors.assign(m.vertexCount(), geom::Vec3f{1, 0, 0});
    MeshCodecOptions opt;
    opt.encodeColors = false;
    const auto back = decodeMesh(encodeMesh(m, opt));
    ASSERT_TRUE(back.has_value());
    EXPECT_FALSE(back->hasColors());
}

TEST(MeshCodec, EmptyMesh) {
    const TriMesh empty;
    const auto back = decodeMesh(encodeMesh(empty));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(MeshCodec, GarbageRejected) {
    std::vector<std::uint8_t> garbage(100, 0x5A);
    EXPECT_FALSE(decodeMesh(garbage).has_value());
}

TEST(MeshCodec, TruncatedStreamRejected) {
    const auto data = encodeMesh(testSphere());
    EXPECT_FALSE(decodeMesh(std::span(data).subspan(0, data.size() / 2)).has_value());
}

TEST(MeshCodec, DegenerateFlatMeshSurvives) {
    // All vertices in a plane (zero extent on one axis).
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
    m.triangles = {{0, 1, 2}, {1, 3, 2}};
    const auto back = decodeMesh(encodeMesh(m));
    ASSERT_TRUE(back.has_value());
    for (std::size_t i = 0; i < m.vertexCount(); ++i)
        EXPECT_LE((back->vertices[i] - m.vertices[i]).norm(), 1e-3f);
}

class MeshCodecBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(MeshCodecBitSweep, ErrorMatchesBitDepth) {
    const TriMesh m = testSphere();
    MeshCodecOptions opt;
    opt.positionBits = GetParam();
    const auto back = decodeMesh(encodeMesh(m, opt));
    ASSERT_TRUE(back.has_value());
    const float bound = quantizationError(m, GetParam());
    for (std::size_t i = 0; i < m.vertexCount(); i += 17)
        EXPECT_LE((back->vertices[i] - m.vertices[i]).norm(), bound * 1.01f);
}

INSTANTIATE_TEST_SUITE_P(Bits, MeshCodecBitSweep, ::testing::Values(6, 8, 10, 12, 16));

}  // namespace
}  // namespace semholo::compress
