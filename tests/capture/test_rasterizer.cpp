#include "semholo/capture/rasterizer.hpp"

#include <gtest/gtest.h>

#include "semholo/mesh/metrics.hpp"

namespace semholo::capture {
namespace {

using geom::Camera;
using geom::CameraIntrinsics;
using geom::Vec3f;

Camera frontCamera(int w = 160, int h = 120) {
    return Camera::lookAt({0, 0, -3}, {0, 0, 0}, {0, 1, 0},
                          CameraIntrinsics::fromFov(w, h, 1.0f));
}

TEST(Rasterizer, SphereCoversCenterOfImage) {
    const auto sphere = mesh::makeUVSphere(0.5f, 16, 32);
    const RGBDFrame frame = rasterize(sphere, frontCamera());
    // Centre pixel hit at depth ~2.5 (camera at z=-3, surface at z=-0.5).
    const float z = frame.depth.at(80, 60);
    EXPECT_NEAR(z, 2.5f, 0.05f);
    // Corner pixel empty.
    EXPECT_EQ(frame.depth.at(2, 2), 0.0f);
}

TEST(Rasterizer, DepthIsNearestSurface) {
    // Two spheres, one behind the other: depth must be the front one.
    auto front = mesh::makeUVSphere(0.3f, 16, 32, {0, 0, -1});
    const auto back = mesh::makeUVSphere(0.6f, 16, 32, {0, 0, 2});
    front.append(back);
    const DepthImage depth = rasterizeDepth(front, frontCamera());
    EXPECT_NEAR(depth.at(80, 60), 3.0f - 1.0f - 0.3f, 0.05f);
}

TEST(Rasterizer, ColorsInterpolated) {
    auto sphere = mesh::makeUVSphere(0.5f, 16, 32);
    sphere.colors.assign(sphere.vertexCount(), Vec3f{1.0f, 0.0f, 0.0f});
    RasterizerOptions opt;
    opt.shade = false;
    const RGBDFrame frame = rasterize(sphere, frontCamera(), opt);
    const Vec3f c = frame.color.at(80, 60);
    EXPECT_NEAR(c.x, 1.0f, 1e-4f);
    EXPECT_NEAR(c.y, 0.0f, 1e-4f);
}

TEST(Rasterizer, BackgroundPreserved) {
    RasterizerOptions opt;
    opt.background = {0.1f, 0.2f, 0.3f};
    const RGBDFrame frame = rasterize(mesh::makeUVSphere(0.2f, 8, 16), frontCamera(), opt);
    const Vec3f bg = frame.color.at(0, 0);
    EXPECT_NEAR(bg.x, 0.1f, 1e-5f);
    EXPECT_NEAR(bg.z, 0.3f, 1e-5f);
}

TEST(Rasterizer, ShadingDarkensGrazingAngles) {
    auto sphere = mesh::makeUVSphere(0.5f, 32, 64);
    sphere.colors.assign(sphere.vertexCount(), Vec3f{1.0f, 1.0f, 1.0f});
    const RGBDFrame frame = rasterize(sphere, frontCamera());
    // Centre faces the camera head-on; find a lit pixel near the rim.
    const float center = frame.color.at(80, 60).x;
    float rim = 1.0f;
    for (int x = 0; x < 160; ++x) {
        if (frame.depth.at(x, 60) > 0.0f) {
            rim = frame.color.at(x, 60).x;
            break;
        }
    }
    EXPECT_GT(center, rim);
}

TEST(Rasterizer, UnprojectRoundTripsGeometry) {
    const auto sphere = mesh::makeUVSphere(0.5f, 24, 48);
    const Camera cam = frontCamera(320, 240);
    const RGBDFrame frame = rasterize(sphere, cam);
    const mesh::PointCloud cloud = unprojectToCloud(frame, cam, 2);
    ASSERT_GT(cloud.size(), 100u);
    // All back-projected points lie on the visible hemisphere surface.
    for (const Vec3f& p : cloud.points) EXPECT_NEAR(p.norm(), 0.5f, 0.02f);
}

TEST(Rasterizer, EmptyMeshRendersEmpty) {
    const RGBDFrame frame = rasterize(mesh::TriMesh{}, frontCamera());
    for (const float z : frame.depth.data()) EXPECT_EQ(z, 0.0f);
}

TEST(Image, MAEAndPSNR) {
    RGBImage a(8, 8, {0.5f, 0.5f, 0.5f});
    RGBImage b = a;
    EXPECT_GT(imagePSNR(a, b), 1e8);
    EXPECT_DOUBLE_EQ(imageMAE(a, b), 0.0);
    for (auto& c : b.data()) c.x += 0.1f;
    EXPECT_NEAR(imageMAE(a, b), 0.1 / 3.0, 1e-6);
    EXPECT_LT(imagePSNR(a, b), 30.0);
    EXPECT_GT(imagePSNR(a, b), 20.0);
}

TEST(Image, BoundsAndAccess) {
    Image<int> img(4, 3, 7);
    EXPECT_EQ(img.pixelCount(), 12u);
    EXPECT_EQ(img.at(3, 2), 7);
    img.at(1, 1) = 42;
    EXPECT_EQ(img.at(1, 1), 42);
    EXPECT_TRUE(img.inBounds(0, 0));
    EXPECT_FALSE(img.inBounds(4, 0));
    EXPECT_FALSE(img.inBounds(0, 3));
}

}  // namespace
}  // namespace semholo::capture
