#include "semholo/capture/keypoints.hpp"

#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/body/ik.hpp"

namespace semholo::capture {
namespace {

class KeypointFixture : public ::testing::Test {
protected:
    static const body::BodyModel& model() {
        static const body::BodyModel m{body::ShapeParams{}, 56};
        return m;
    }
    static const CaptureRig& rig() {
        static const CaptureRig r = [] {
            RigConfig cfg;
            cfg.addNoise = false;  // detector noise is modelled separately
            return CaptureRig(cfg);
        }();
        return r;
    }
    static std::vector<RGBDFrame> framesFor(const body::Pose& pose) {
        return rig().capture(model().deform(pose), 11);
    }
};

TEST_F(KeypointFixture, DirectDetectionAccurate) {
    const body::Pose pose = body::MotionGenerator(body::MotionKind::Wave).poseAt(0.4);
    const auto frames = framesFor(pose);
    const auto obs = detectKeypoints3DDirect(rig(), frames, pose, 1);
    EXPECT_LT(keypointError(obs, pose), 0.02);
    // Most joints observed.
    std::size_t seen = 0;
    for (const float c : obs.confidence)
        if (c > 0.0f) ++seen;
    EXPECT_GT(seen, kJointCount * 3 / 4);
}

TEST_F(KeypointFixture, LiftedDetectionLessAccurateThanDirect) {
    const body::Pose pose = body::MotionGenerator(body::MotionKind::Talk).poseAt(0.8);
    const auto frames = framesFor(pose);
    double errLifted = 0.0, errDirect = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        errLifted += keypointError(detectKeypoints2DLifted(rig(), frames, pose, seed), pose);
        errDirect += keypointError(detectKeypoints3DDirect(rig(), frames, pose, seed), pose);
    }
    // Section 2.3: direct RGB-D extraction is more accurate than the
    // 2D-then-lift route.
    EXPECT_LT(errDirect, errLifted);
}

TEST_F(KeypointFixture, LiftedDetectionSlowerThanDirect) {
    const body::Pose pose;
    const auto frames = framesFor(pose);
    const auto lifted = detectKeypoints2DLifted(rig(), frames, pose, 1);
    const auto direct = detectKeypoints3DDirect(rig(), frames, pose, 1);
    EXPECT_GT(lifted.simulatedLatencyMs, direct.simulatedLatencyMs);
    EXPECT_GT(direct.simulatedLatencyMs, 0.0);
}

TEST_F(KeypointFixture, ConfidenceReflectsVisibility) {
    const body::Pose pose;
    const auto frames = framesFor(pose);
    const auto obs = detectKeypoints3DDirect(rig(), frames, pose, 2);
    for (const float c : obs.confidence) {
        EXPECT_GE(c, 0.0f);
        EXPECT_LE(c, 1.0f);
    }
    // Large body joints should be seen by most cameras.
    EXPECT_GT(obs.confidence[body::index(body::JointId::Pelvis)], 0.4f);
    EXPECT_GT(obs.confidence[body::index(body::JointId::Head)], 0.4f);
}

TEST_F(KeypointFixture, DetectionFeedsIkEndToEnd) {
    // Integration: capture -> detect -> IK -> keypoints close the loop.
    const body::Pose pose = body::MotionGenerator(body::MotionKind::Collaborate).poseAt(1.2);
    const auto frames = framesFor(pose);
    const auto obs = detectKeypoints3DDirect(rig(), frames, pose, 3);
    const auto fit = body::fitPoseToKeypoints(obs.positions, obs.confidence);
    const auto recovered = body::jointKeypoints(fit.pose);
    const auto gt = body::jointKeypoints(pose);
    double meanErr = 0.0;
    int n = 0;
    for (std::size_t j = 0; j < kJointCount; ++j) {
        if (obs.confidence[j] < 0.05f) continue;
        meanErr += (recovered[j] - gt[j]).norm();
        ++n;
    }
    ASSERT_GT(n, 0);
    EXPECT_LT(meanErr / n, 0.05);
}

TEST_F(KeypointFixture, ErrorIgnoresDroppedJoints) {
    const body::Pose pose;
    KeypointObservation obs;
    obs.confidence.fill(0.0f);
    obs.confidence[0] = 1.0f;
    obs.positions[0] = body::jointKeypoints(pose)[0];
    EXPECT_NEAR(keypointError(obs, pose), 0.0, 1e-6);
}

TEST_F(KeypointFixture, Deterministic) {
    const body::Pose pose = body::MotionGenerator(body::MotionKind::Walk).poseAt(0.3);
    const auto frames = framesFor(pose);
    const auto a = detectKeypoints3DDirect(rig(), frames, pose, 9);
    const auto b = detectKeypoints3DDirect(rig(), frames, pose, 9);
    for (std::size_t j = 0; j < kJointCount; ++j) {
        EXPECT_EQ(a.positions[j], b.positions[j]);
        EXPECT_EQ(a.confidence[j], b.confidence[j]);
    }
}

}  // namespace
}  // namespace semholo::capture
