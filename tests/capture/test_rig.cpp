#include "semholo/capture/rig.hpp"

#include <gtest/gtest.h>

#include "semholo/body/body_model.hpp"
#include "semholo/mesh/metrics.hpp"

namespace semholo::capture {
namespace {

TEST(Noise, DepthNoisePerturbsWithinModel) {
    DepthImage depth(64, 64, 2.0f);
    DepthNoiseModel model;
    model.dropoutRate = 0.0f;
    applyDepthNoise(depth, model, 1);
    double meanAbs = 0.0;
    for (const float z : depth.data()) {
        EXPECT_GT(z, 1.9f);
        EXPECT_LT(z, 2.1f);
        meanAbs += std::fabs(z - 2.0f);
    }
    meanAbs /= depth.data().size();
    EXPECT_GT(meanAbs, 1e-4);  // noise actually applied
}

TEST(Noise, DropoutRemovesReturns) {
    DepthImage depth(100, 100, 2.0f);
    DepthNoiseModel model;
    model.dropoutRate = 0.5f;
    applyDepthNoise(depth, model, 3);
    std::size_t dropped = 0;
    for (const float z : depth.data())
        if (z == 0.0f) ++dropped;
    EXPECT_GT(dropped, 4000u);
    EXPECT_LT(dropped, 6000u);
}

TEST(Noise, OutOfRangeDropped) {
    DepthImage depth(8, 8, 20.0f);  // beyond maxRange
    applyDepthNoise(depth, DepthNoiseModel{}, 5);
    for (const float z : depth.data()) EXPECT_EQ(z, 0.0f);
}

TEST(Noise, NoiseGrowsWithRange) {
    DepthNoiseModel model;
    model.dropoutRate = 0.0f;
    model.quantizationStep = 0.0f;
    DepthImage near(64, 64, 1.0f), far(64, 64, 5.0f);
    applyDepthNoise(near, model, 7);
    applyDepthNoise(far, model, 7);
    auto meanAbsDev = [](const DepthImage& img, float ref) {
        double s = 0.0;
        for (const float z : img.data()) s += std::fabs(z - ref);
        return s / img.data().size();
    };
    EXPECT_GT(meanAbsDev(far, 5.0f), meanAbsDev(near, 1.0f) * 3.0);
}

TEST(Noise, ColorNoiseStaysInRange) {
    RGBImage img(32, 32, {0.95f, 0.5f, 0.02f});
    applyColorNoise(img, {0.05f}, 9);
    for (const auto& c : img.data()) {
        EXPECT_GE(c.x, 0.0f);
        EXPECT_LE(c.x, 1.0f);
        EXPECT_GE(c.z, 0.0f);
    }
}

TEST(Noise, Deterministic) {
    DepthImage a(16, 16, 2.0f), b(16, 16, 2.0f);
    applyDepthNoise(a, DepthNoiseModel{}, 42);
    applyDepthNoise(b, DepthNoiseModel{}, 42);
    EXPECT_EQ(a.data(), b.data());
}

TEST(CaptureRig, CamerasOnRingLookingIn) {
    RigConfig cfg;
    cfg.cameraCount = 6;
    const CaptureRig rig(cfg);
    ASSERT_EQ(rig.cameras().size(), 6u);
    for (const auto& cam : rig.cameras()) {
        const geom::Vec3f eye = cam.worldFromCamera.translation;
        EXPECT_NEAR((geom::Vec2f{eye.x, eye.z}.norm()), cfg.ringRadius, 1e-4f);
        // Subject at origin projects to the image centre.
        geom::Vec2f pix;
        float depth;
        ASSERT_TRUE(cam.projectWorld({0, 0, 0}, pix, depth));
        EXPECT_NEAR(pix.x, cam.intrinsics.cx, 1.0f);
    }
}

class RigFixture : public ::testing::Test {
protected:
    static const body::BodyModel& model() {
        static const body::BodyModel m{body::ShapeParams{}, 56};
        return m;
    }
};

TEST_F(RigFixture, CaptureSeesSubjectFromAllViews) {
    RigConfig cfg;
    cfg.addNoise = false;
    const CaptureRig rig(cfg);
    const auto frames = rig.capture(model().templateMesh(), 1);
    ASSERT_EQ(frames.size(), 4u);
    for (const auto& f : frames) {
        std::size_t hits = 0;
        for (const float z : f.depth.data())
            if (z > 0.0f) ++hits;
        EXPECT_GT(hits, f.depth.data().size() / 50);
    }
}

TEST_F(RigFixture, FusedCloudLiesOnSubject) {
    RigConfig cfg;
    cfg.addNoise = false;
    const CaptureRig rig(cfg);
    const auto cloud = rig.captureCloud(model().templateMesh(), 1);
    ASSERT_GT(cloud.size(), 500u);
    const double err = mesh::pointToMeshError(cloud, model().templateMesh());
    EXPECT_LT(err, 0.01);
}

TEST_F(RigFixture, NoisyFusionStillAccurate) {
    const CaptureRig rig;  // noise on
    const auto cloud = rig.captureCloud(model().templateMesh(), 2);
    ASSERT_GT(cloud.size(), 500u);
    const double err = mesh::pointToMeshError(cloud, model().templateMesh());
    EXPECT_LT(err, 0.03);
}

TEST_F(RigFixture, FusionCoversBody) {
    RigConfig cfg;
    cfg.addNoise = false;
    const CaptureRig rig(cfg);
    const auto cloud = rig.captureCloud(model().templateMesh(), 1);
    const auto bounds = cloud.bounds();
    // Full height visible across the ring of cameras.
    EXPECT_GT(bounds.extent().y, 1.3f);
}

}  // namespace
}  // namespace semholo::capture
