#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/body/ik.hpp"
#include "semholo/capture/keypoints.hpp"

namespace semholo::capture {
namespace {

TEST(KeypointSets, CountsAndNames) {
    EXPECT_EQ(keypointSetCount(KeypointSet::Body25), 25u);
    EXPECT_EQ(keypointSetCount(KeypointSet::Extended40), 37u);
    EXPECT_EQ(keypointSetCount(KeypointSet::Full55), 55u);
    EXPECT_EQ(keypointSetName(KeypointSet::Body25), "body-25");
    EXPECT_EQ(keypointSetName(KeypointSet::Full55), "full-55");
}

TEST(KeypointSets, MasksAreNested) {
    const auto body = keypointSetMask(KeypointSet::Body25);
    const auto ext = keypointSetMask(KeypointSet::Extended40);
    const auto full = keypointSetMask(KeypointSet::Full55);
    for (std::size_t j = 0; j < body::kJointCount; ++j) {
        if (body[j]) EXPECT_TRUE(ext[j]) << j;
        if (ext[j]) EXPECT_TRUE(full[j]) << j;
        EXPECT_TRUE(full[j]);
    }
}

TEST(KeypointSets, BodySetExcludesFingers) {
    const auto mask = keypointSetMask(KeypointSet::Body25);
    EXPECT_FALSE(mask[body::index(body::JointId::LeftIndex2)]);
    EXPECT_FALSE(mask[body::index(body::JointId::RightPinky3)]);
    EXPECT_TRUE(mask[body::index(body::JointId::LeftWrist)]);
    EXPECT_TRUE(mask[body::index(body::JointId::Head)]);
}

class KeypointSetFixture : public ::testing::Test {
protected:
    static const body::BodyModel& model() {
        static const body::BodyModel m{body::ShapeParams{}, 48};
        return m;
    }
    static const CaptureRig& rig() {
        static const CaptureRig r = [] {
            RigConfig cfg;
            cfg.addNoise = false;
            return CaptureRig(cfg);
        }();
        return r;
    }
};

TEST_F(KeypointSetFixture, SmallerSetsDetectFewerJoints) {
    const body::Pose pose =
        body::MotionGenerator(body::MotionKind::Wave, model().shape()).poseAt(0.5);
    const auto frames = rig().capture(model().deform(pose), 3);
    const auto body25 =
        detectKeypoints3DDirect(rig(), frames, pose, 1, {}, {}, KeypointSet::Body25);
    const auto full =
        detectKeypoints3DDirect(rig(), frames, pose, 1, {}, {}, KeypointSet::Full55);
    std::size_t seen25 = 0, seen55 = 0;
    for (std::size_t j = 0; j < kJointCount; ++j) {
        if (body25.confidence[j] > 0.0f) ++seen25;
        if (full.confidence[j] > 0.0f) ++seen55;
    }
    EXPECT_LT(seen25, seen55);
    EXPECT_LE(seen25, 25u);
}

TEST_F(KeypointSetFixture, RicherSetsCostMoreSimulatedLatency) {
    const body::Pose pose;
    const auto frames = rig().capture(model().deform(pose), 4);
    const auto body25 =
        detectKeypoints3DDirect(rig(), frames, pose, 1, {}, {}, KeypointSet::Body25);
    const auto ext =
        detectKeypoints3DDirect(rig(), frames, pose, 1, {}, {}, KeypointSet::Extended40);
    const auto full =
        detectKeypoints3DDirect(rig(), frames, pose, 1, {}, {}, KeypointSet::Full55);
    EXPECT_LT(body25.simulatedLatencyMs, ext.simulatedLatencyMs);
    EXPECT_LT(ext.simulatedLatencyMs, full.simulatedLatencyMs);
}

TEST_F(KeypointSetFixture, HandPoseRecoveryNeedsHandKeypoints) {
    // A finger-curl pose: the body-only set cannot recover it, the full
    // set can — the section 3.1 keypoint-count/quality trade-off.
    body::Pose pose;
    pose.shape = model().shape();
    for (const auto j : {body::JointId::RightIndex1, body::JointId::RightIndex2,
                         body::JointId::RightMiddle1, body::JointId::RightMiddle2})
        pose.rotation(j) = {0, 0, 1.2f};

    const auto frames = rig().capture(model().deform(pose), 7);
    const auto obsBody =
        detectKeypoints3DDirect(rig(), frames, pose, 2, {}, {}, KeypointSet::Body25);
    const auto obsFull =
        detectKeypoints3DDirect(rig(), frames, pose, 2, {}, {}, KeypointSet::Full55);

    body::IkOptions ik;
    ik.shape = model().shape();
    const auto fitBody =
        body::fitPoseToKeypoints(obsBody.positions, obsBody.confidence, ik);
    const auto fitFull =
        body::fitPoseToKeypoints(obsFull.positions, obsFull.confidence, ik);

    // Fingertip position error of the recovered poses.
    const auto gtKps = body::jointKeypoints(pose);
    const auto tipIdx = body::index(body::JointId::RightIndex3);
    const float errBody =
        (body::jointKeypoints(fitBody.pose)[tipIdx] - gtKps[tipIdx]).norm();
    const float errFull =
        (body::jointKeypoints(fitFull.pose)[tipIdx] - gtKps[tipIdx]).norm();
    EXPECT_LT(errFull, errBody * 0.7f);
}

}  // namespace
}  // namespace semholo::capture
