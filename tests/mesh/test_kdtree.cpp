#include "semholo/mesh/kdtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace semholo::mesh {
namespace {

std::vector<Vec3f> randomPoints(std::size_t n, std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> uni(-10.0f, 10.0f);
    std::vector<Vec3f> pts(n);
    for (auto& p : pts) p = {uni(rng), uni(rng), uni(rng)};
    return pts;
}

std::uint32_t bruteForceNearest(const std::vector<Vec3f>& pts, Vec3f q) {
    std::uint32_t best = 0;
    float bestD = std::numeric_limits<float>::max();
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
        const float d = (pts[i] - q).norm2();
        if (d < bestD) {
            bestD = d;
            best = i;
        }
    }
    return best;
}

TEST(KdTree, EmptyTree) {
    KdTree tree;
    EXPECT_TRUE(tree.empty());
    EXPECT_FALSE(tree.nearest({0, 0, 0}).valid());
    EXPECT_TRUE(tree.kNearest({0, 0, 0}, 3).empty());
    EXPECT_TRUE(tree.radiusSearch({0, 0, 0}, 1.0f).empty());
}

TEST(KdTree, SinglePoint) {
    const std::vector<Vec3f> pts{{1, 2, 3}};
    KdTree tree(pts);
    const auto hit = tree.nearest({0, 0, 0});
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.index, 0u);
    EXPECT_NEAR(hit.distance2, 14.0f, 1e-4f);
}

TEST(KdTree, NearestMatchesBruteForce) {
    const auto pts = randomPoints(2000, 42);
    KdTree tree(pts);
    std::mt19937 rng(43);
    std::uniform_real_distribution<float> uni(-12.0f, 12.0f);
    for (int trial = 0; trial < 200; ++trial) {
        const Vec3f q{uni(rng), uni(rng), uni(rng)};
        const auto hit = tree.nearest(q);
        ASSERT_TRUE(hit.valid());
        const std::uint32_t expect = bruteForceNearest(pts, q);
        EXPECT_NEAR(hit.distance2, (pts[expect] - q).norm2(), 1e-4f);
    }
}

TEST(KdTree, KNearestSortedAndCorrect) {
    const auto pts = randomPoints(500, 7);
    KdTree tree(pts);
    const Vec3f q{1, 1, 1};
    const std::size_t k = 10;
    const auto hits = tree.kNearest(q, k);
    ASSERT_EQ(hits.size(), k);
    // Sorted ascending.
    for (std::size_t i = 1; i < hits.size(); ++i)
        EXPECT_LE(hits[i - 1].distance2, hits[i].distance2);
    // Matches brute force set.
    std::vector<float> all;
    for (const auto& p : pts) all.push_back((p - q).norm2());
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < k; ++i) EXPECT_NEAR(hits[i].distance2, all[i], 1e-4f);
}

TEST(KdTree, KNearestClampsToSize) {
    const auto pts = randomPoints(5, 9);
    KdTree tree(pts);
    EXPECT_EQ(tree.kNearest({0, 0, 0}, 10).size(), 5u);
}

TEST(KdTree, RadiusSearchMatchesBruteForce) {
    const auto pts = randomPoints(1000, 11);
    KdTree tree(pts);
    const Vec3f q{0.5f, -0.5f, 2.0f};
    const float radius = 3.0f;
    auto found = tree.radiusSearch(q, radius);
    std::sort(found.begin(), found.end());
    std::vector<std::uint32_t> expect;
    for (std::uint32_t i = 0; i < pts.size(); ++i)
        if ((pts[i] - q).norm2() <= radius * radius) expect.push_back(i);
    EXPECT_EQ(found, expect);
}

TEST(KdTree, DuplicatePointsAllFound) {
    std::vector<Vec3f> pts(20, Vec3f{1, 1, 1});
    KdTree tree(pts);
    EXPECT_EQ(tree.radiusSearch({1, 1, 1}, 0.1f).size(), 20u);
    EXPECT_TRUE(tree.nearest({1, 1, 1}).valid());
}

TEST(KdTree, PointAccessor) {
    const auto pts = randomPoints(50, 13);
    KdTree tree(pts);
    const auto hit = tree.nearest(pts[25]);
    EXPECT_EQ(tree.point(hit.index), pts[25]);
}

}  // namespace
}  // namespace semholo::mesh
