#include "semholo/mesh/pointcloud.hpp"

#include <gtest/gtest.h>

#include <random>

namespace semholo::mesh {
namespace {

TEST(PointCloud, AddAndBounds) {
    PointCloud pc;
    pc.addPoint({0, 0, 0});
    pc.addPoint({1, 2, 3});
    EXPECT_EQ(pc.size(), 2u);
    EXPECT_EQ(pc.bounds().hi, (Vec3f{1, 2, 3}));
    EXPECT_EQ(pc.centroid(), (Vec3f{0.5f, 1.0f, 1.5f}));
}

TEST(PointCloud, ColorsTracked) {
    PointCloud pc;
    pc.addPoint({0, 0, 0}, {1, 0, 0});
    EXPECT_TRUE(pc.hasColors());
    pc.addPoint({1, 1, 1}, {0, 1, 0});
    EXPECT_TRUE(pc.hasColors());
}

TEST(PointCloud, TransformMovesPointsAndRotatesNormals) {
    PointCloud pc;
    pc.points = {{1, 0, 0}};
    pc.normals = {{1, 0, 0}};
    pc.transform({geom::Quat::fromAxisAngle({0, 0, static_cast<float>(M_PI) / 2}),
                  {0, 0, 5}});
    EXPECT_NEAR(pc.points[0].y, 1.0f, 1e-5f);
    EXPECT_NEAR(pc.points[0].z, 5.0f, 1e-5f);
    EXPECT_NEAR(pc.normals[0].y, 1.0f, 1e-5f);
    // Normals are directions: no translation applied.
    EXPECT_NEAR(pc.normals[0].z, 0.0f, 1e-5f);
}

TEST(PointCloud, AppendConcatenates) {
    PointCloud a, b;
    a.addPoint({0, 0, 0});
    b.addPoint({1, 1, 1});
    b.addPoint({2, 2, 2});
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
}

TEST(PointCloud, AppendDropsMismatchedAttributes) {
    PointCloud a, b;
    a.addPoint({0, 0, 0}, {1, 1, 1});
    b.addPoint({1, 1, 1});  // no colour
    a.append(b);
    EXPECT_FALSE(a.hasColors());
}

TEST(PointCloud, VoxelDownsampleReducesAndAverages) {
    PointCloud pc;
    // Four points in one voxel, one far away.
    pc.points = {{0.1f, 0.1f, 0.1f},
                 {0.2f, 0.1f, 0.1f},
                 {0.1f, 0.2f, 0.1f},
                 {0.2f, 0.2f, 0.1f},
                 {10, 10, 10}};
    const PointCloud down = pc.voxelDownsample(1.0f);
    EXPECT_EQ(down.size(), 2u);
    // One of the outputs is the average of the cluster.
    bool foundCluster = false;
    for (const Vec3f& p : down.points) {
        if ((p - Vec3f{0.15f, 0.15f, 0.1f}).norm() < 1e-5f) foundCluster = true;
    }
    EXPECT_TRUE(foundCluster);
}

TEST(PointCloud, VoxelDownsampleDeterministicCount) {
    std::mt19937 rng(21);
    std::uniform_real_distribution<float> uni(0.0f, 4.0f);
    PointCloud pc;
    for (int i = 0; i < 5000; ++i) pc.addPoint({uni(rng), uni(rng), uni(rng)});
    const PointCloud d1 = pc.voxelDownsample(0.5f);
    const PointCloud d2 = pc.voxelDownsample(0.5f);
    EXPECT_EQ(d1.size(), d2.size());
    // 8x8x8 voxel lattice bounds the output size.
    EXPECT_LE(d1.size(), 9u * 9u * 9u);
    EXPECT_GT(d1.size(), 100u);
}

TEST(PointCloud, OutlierRemovalDropsIsolatedPoint) {
    std::mt19937 rng(33);
    std::normal_distribution<float> gauss(0.0f, 0.1f);
    PointCloud pc;
    for (int i = 0; i < 500; ++i) pc.addPoint({gauss(rng), gauss(rng), gauss(rng)});
    pc.addPoint({50, 50, 50});  // blatant outlier
    const PointCloud cleaned = pc.removeStatisticalOutliers(8, 2.0f);
    EXPECT_LT(cleaned.size(), pc.size());
    for (const Vec3f& p : cleaned.points) EXPECT_LT(p.norm(), 10.0f);
}

TEST(PointCloud, OutlierRemovalKeepsSmallClouds) {
    PointCloud pc;
    pc.addPoint({0, 0, 0});
    pc.addPoint({1, 0, 0});
    const PointCloud cleaned = pc.removeStatisticalOutliers(8, 1.0f);
    EXPECT_EQ(cleaned.size(), 2u);
}

TEST(PointCloud, RawBytesCountsAttributes) {
    PointCloud pc;
    pc.points = {{0, 0, 0}, {1, 1, 1}};
    EXPECT_EQ(pc.rawBytes(), 2 * sizeof(Vec3f));
    pc.colors = {{1, 0, 0}, {0, 1, 0}};
    EXPECT_EQ(pc.rawBytes(), 4 * sizeof(Vec3f));
}

}  // namespace
}  // namespace semholo::mesh
