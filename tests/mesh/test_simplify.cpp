#include "semholo/mesh/simplify.hpp"

#include <gtest/gtest.h>

#include "semholo/mesh/isosurface.hpp"
#include "semholo/mesh/metrics.hpp"

namespace semholo::mesh {
namespace {

TriMesh denseSphere() { return makeUVSphere(1.0f, 32, 64); }

TEST(Simplify, ReachesTargetTriangleBudget) {
    const TriMesh sphere = denseSphere();
    SimplifyOptions opt;
    opt.targetTriangles = 500;
    const auto result = simplify(sphere, opt);
    EXPECT_LE(result.mesh.triangleCount(), 520u);  // small overshoot allowed
    EXPECT_GT(result.mesh.triangleCount(), 100u);
    EXPECT_GT(result.collapsesApplied, 0u);
}

TEST(Simplify, AlreadySmallMeshUntouched) {
    const TriMesh box = makeBox({1, 1, 1});
    SimplifyOptions opt;
    opt.targetTriangles = 100;
    const auto result = simplify(box, opt);
    EXPECT_EQ(result.mesh.triangleCount(), 12u);
    EXPECT_EQ(result.collapsesApplied, 0u);
}

TEST(Simplify, ShapePreservedWithinTolerance) {
    const TriMesh sphere = denseSphere();
    SimplifyOptions opt;
    opt.targetTriangles = 400;
    const auto result = simplify(sphere, opt);
    // Simplified sphere still a sphere: radius error bounded.
    for (const auto& v : result.mesh.vertices)
        EXPECT_NEAR(v.norm(), 1.0f, 0.06f);
    const auto err = compareMeshes(sphere, result.mesh, 8000);
    EXPECT_LT(err.chamfer, 0.03);
}

TEST(Simplify, ProgressiveLadderMonotone) {
    const TriMesh sphere = denseSphere();
    double prevErr = 0.0;
    std::size_t prevTris = sphere.triangleCount();
    for (const std::size_t target : {2000u, 800u, 300u}) {
        SimplifyOptions opt;
        opt.targetTriangles = target;
        const auto result = simplify(sphere, opt);
        EXPECT_LT(result.mesh.triangleCount(), prevTris);
        prevTris = result.mesh.triangleCount();
        const double err = compareMeshes(sphere, result.mesh, 6000).chamfer;
        EXPECT_GE(err, prevErr * 0.5);  // coarser = not dramatically better
        prevErr = err;
    }
    EXPECT_GT(prevErr, 0.0);
}

TEST(Simplify, ColorsSurvive) {
    TriMesh sphere = denseSphere();
    sphere.colors.resize(sphere.vertexCount());
    for (std::size_t i = 0; i < sphere.vertexCount(); ++i)
        sphere.colors[i] = sphere.vertices[i].y > 0 ? geom::Vec3f{1, 0, 0}
                                                    : geom::Vec3f{0, 0, 1};
    SimplifyOptions opt;
    opt.targetTriangles = 600;
    const auto result = simplify(sphere, opt);
    ASSERT_TRUE(result.mesh.hasColors());
    // The hemisphere colouring survives: top vertices red-ish, bottom blue-ish.
    for (std::size_t i = 0; i < result.mesh.vertexCount(); ++i) {
        const auto& v = result.mesh.vertices[i];
        const auto& c = result.mesh.colors[i];
        if (v.y > 0.4f) EXPECT_GT(c.x, c.z);
        if (v.y < -0.4f) EXPECT_GT(c.z, c.x);
    }
}

TEST(Simplify, ClosedMeshStaysMostlyClosed) {
    const TriMesh sphere = denseSphere();
    SimplifyOptions opt;
    opt.targetTriangles = 800;
    const auto result = simplify(sphere, opt);
    // Greedy collapse on a closed surface should not open large holes.
    EXPECT_LT(result.mesh.countBoundaryEdges(), result.mesh.triangleCount() / 20);
}

TEST(Simplify, IndicesValidAfterCompaction) {
    const TriMesh blob = extractIsoSurface(
        [](geom::Vec3f p) { return p.norm() - 0.8f; },
        [] {
            geom::AABB b;
            b.expand({-1, -1, -1});
            b.expand({1, 1, 1});
            return b;
        }(),
        20);
    SimplifyOptions opt;
    opt.targetTriangles = blob.triangleCount() / 4;
    const auto result = simplify(blob, opt);
    for (const Triangle& t : result.mesh.triangles) {
        EXPECT_LT(t.a, result.mesh.vertexCount());
        EXPECT_LT(t.b, result.mesh.vertexCount());
        EXPECT_LT(t.c, result.mesh.vertexCount());
        EXPECT_NE(t.a, t.b);
        EXPECT_NE(t.b, t.c);
        EXPECT_NE(t.a, t.c);
    }
}

TEST(Simplify, EmptyMeshSafe) {
    const auto result = simplify(TriMesh{});
    EXPECT_TRUE(result.mesh.empty());
}

}  // namespace
}  // namespace semholo::mesh
