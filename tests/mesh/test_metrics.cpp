#include "semholo/mesh/metrics.hpp"

#include <gtest/gtest.h>

#include <random>

#include "semholo/mesh/sampling.hpp"

namespace semholo::mesh {
namespace {

TEST(Metrics, IdenticalCloudsZeroError) {
    PointCloud pc;
    pc.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 1}};
    const auto stats = compareClouds(pc, pc);
    EXPECT_DOUBLE_EQ(stats.chamfer, 0.0);
    EXPECT_DOUBLE_EQ(stats.hausdorff, 0.0);
    EXPECT_GT(stats.psnr, 1e8);  // "infinite"
}

TEST(Metrics, TranslatedCloudHasExpectedDistance) {
    PointCloud a, b;
    for (int i = 0; i < 10; ++i)
        a.addPoint({static_cast<float>(i) * 10.0f, 0, 0});
    b = a;
    for (Vec3f& p : b.points) p.y += 2.0f;
    const auto stats = compareClouds(a, b);
    // Every nearest neighbour is exactly 2 away.
    EXPECT_NEAR(stats.chamfer, 2.0, 1e-5);
    EXPECT_NEAR(stats.hausdorff, 2.0, 1e-5);
    EXPECT_NEAR(stats.rmse, 2.0, 1e-5);
}

TEST(Metrics, AsymmetricDirectionsReported) {
    PointCloud a, b;
    a.addPoint({0, 0, 0});
    b.addPoint({0, 0, 0});
    b.addPoint({5, 0, 0});  // extra far point only in b
    const auto stats = compareClouds(a, b);
    EXPECT_NEAR(stats.meanForward, 0.0, 1e-6);   // a -> b perfect
    EXPECT_NEAR(stats.meanBackward, 2.5, 1e-6);  // b -> a averages 0 and 5
    EXPECT_NEAR(stats.hausdorff, 5.0, 1e-6);
}

TEST(Metrics, NormalConsistencyPerfectWhenAligned) {
    PointCloud a;
    a.points = {{0, 0, 0}, {1, 0, 0}};
    a.normals = {{0, 1, 0}, {0, 1, 0}};
    const auto stats = compareClouds(a, a);
    EXPECT_NEAR(stats.normalConsistency, 1.0, 1e-6);
}

TEST(Metrics, NormalConsistencyZeroWhenOrthogonal) {
    PointCloud a, b;
    a.points = {{0, 0, 0}};
    a.normals = {{0, 1, 0}};
    b.points = {{0, 0, 0}};
    b.normals = {{1, 0, 0}};
    const auto stats = compareClouds(a, b);
    EXPECT_NEAR(stats.normalConsistency, 0.0, 1e-6);
}

TEST(Metrics, PsnrDecreasesWithError) {
    PointCloud a;
    for (int i = 0; i < 100; ++i)
        a.addPoint({static_cast<float>(i % 10), static_cast<float>(i / 10), 0});
    PointCloud small = a, large = a;
    for (Vec3f& p : small.points) p.z += 0.01f;
    for (Vec3f& p : large.points) p.z += 1.0f;
    const auto sSmall = compareClouds(a, small);
    const auto sLarge = compareClouds(a, large);
    EXPECT_GT(sSmall.psnr, sLarge.psnr);
}

TEST(Metrics, CompareMeshesSelfIsTiny) {
    const TriMesh s = makeUVSphere(1.0f, 24, 48);
    const auto stats = compareMeshes(s, s, 4000);
    // Different sample draws of the same surface: error is bounded by the
    // sample spacing (~1/sqrt(density) ~ 0.03 for 4000 points on 4*pi).
    EXPECT_LT(stats.chamfer, 0.05);
}

TEST(Metrics, CompareMeshesDetectsScaleDifference) {
    const TriMesh a = makeUVSphere(1.0f, 24, 48);
    const TriMesh b = makeUVSphere(1.2f, 24, 48);
    const auto stats = compareMeshes(a, b, 4000);
    EXPECT_NEAR(stats.chamfer, 0.2, 0.05);
}

TEST(Metrics, PointToMeshErrorZeroOnSurface) {
    const TriMesh box = makeBox({1, 1, 1});
    PointCloud onSurface = sampleSurface(box, 500, 3);
    EXPECT_NEAR(pointToMeshError(onSurface, box), 0.0, 1e-5);
}

TEST(Metrics, PointToMeshErrorMeasuresOffset) {
    const TriMesh box = makeBox({1, 1, 1});
    PointCloud pc;
    pc.addPoint({0, 0, 2});  // 1 above the +z face
    EXPECT_NEAR(pointToMeshError(pc, box), 1.0, 1e-4);
}

TEST(Metrics, EmptyInputsSafe) {
    PointCloud empty;
    PointCloud one;
    one.addPoint({0, 0, 0});
    const auto stats = compareClouds(empty, one);
    EXPECT_DOUBLE_EQ(stats.chamfer, 0.0);
    EXPECT_DOUBLE_EQ(pointToMeshError(empty, makeBox({1, 1, 1})), 0.0);
}

TEST(Sampling, SurfaceSamplesLieOnMesh) {
    const TriMesh box = makeBox({1, 2, 0.5f});
    const PointCloud pc = sampleSurface(box, 1000, 17);
    ASSERT_EQ(pc.size(), 1000u);
    EXPECT_NEAR(pointToMeshError(pc, box), 0.0, 1e-5);
    EXPECT_TRUE(pc.hasNormals());
}

TEST(Sampling, DeterministicGivenSeed) {
    const TriMesh s = makeUVSphere(1.0f, 16, 32);
    const PointCloud a = sampleSurface(s, 100, 5);
    const PointCloud b = sampleSurface(s, 100, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.points[i], b.points[i]);
}

TEST(Sampling, AreaWeighting) {
    // A mesh with one huge and one tiny triangle: nearly all samples should
    // land on the huge one.
    TriMesh m;
    m.vertices = {{0, 0, 0},         {10, 0, 0}, {0, 10, 0},
                  {100, 100, 100},   {100.1f, 100, 100}, {100, 100.1f, 100}};
    m.triangles = {{0, 1, 2}, {3, 4, 5}};
    const PointCloud pc = sampleSurface(m, 1000, 23);
    std::size_t onBig = 0;
    for (const Vec3f& p : pc.points)
        if (p.norm() < 50.0f) ++onBig;
    EXPECT_GT(onBig, 990u);
}

TEST(Sampling, DecimateByDistanceEnforcesSpacing) {
    std::mt19937 rng(77);
    std::uniform_real_distribution<float> uni(0.0f, 1.0f);
    PointCloud pc;
    for (int i = 0; i < 2000; ++i) pc.addPoint({uni(rng), uni(rng), uni(rng)});
    const float minDist = 0.2f;
    const PointCloud dec = decimateByDistance(pc, minDist);
    EXPECT_LT(dec.size(), pc.size());
    for (std::size_t i = 0; i < dec.size(); ++i)
        for (std::size_t j = i + 1; j < dec.size(); ++j)
            EXPECT_GE((dec.points[i] - dec.points[j]).norm(), minDist * 0.999f);
}

}  // namespace
}  // namespace semholo::mesh
