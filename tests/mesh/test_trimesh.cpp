#include "semholo/mesh/trimesh.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace semholo::mesh {
namespace {

TEST(TriMesh, BoxProperties) {
    const TriMesh box = makeBox({1, 1, 1});
    EXPECT_EQ(box.vertexCount(), 8u);
    EXPECT_EQ(box.triangleCount(), 12u);
    EXPECT_NEAR(box.surfaceArea(), 24.0, 1e-4);
    EXPECT_EQ(box.countBoundaryEdges(), 0u);
    EXPECT_EQ(box.countNonManifoldEdges(), 0u);
}

TEST(TriMesh, BoundsAndCentroid) {
    const TriMesh box = makeBox({1, 2, 3}, {10, 0, 0});
    const AABB b = box.bounds();
    EXPECT_EQ(b.lo, (Vec3f{9, -2, -3}));
    EXPECT_EQ(b.hi, (Vec3f{11, 2, 3}));
    const Vec3f c = box.centroid();
    EXPECT_NEAR(c.x, 10.0f, 1e-5f);
    EXPECT_NEAR(c.y, 0.0f, 1e-5f);
}

TEST(TriMesh, SphereAreaApproximatesAnalytic) {
    const float r = 2.0f;
    const TriMesh s = makeUVSphere(r, 32, 64);
    const double analytic = 4.0 * M_PI * r * r;
    EXPECT_NEAR(s.surfaceArea(), analytic, analytic * 0.01);
}

TEST(TriMesh, SphereNormalsPointOutward) {
    const TriMesh s = makeUVSphere(1.0f, 16, 32);
    for (const Triangle& t : s.triangles) {
        const Vec3f c = (s.vertices[t.a] + s.vertices[t.b] + s.vertices[t.c]) / 3.0f;
        EXPECT_GT(s.triangleNormal(t).dot(c.normalized()), 0.0f);
    }
}

TEST(TriMesh, ComputeVertexNormalsOnSphere) {
    TriMesh s = makeUVSphere(1.0f, 24, 48);
    s.normals.clear();
    s.computeVertexNormals();
    ASSERT_TRUE(s.hasNormals());
    // On a sphere the vertex normal should be close to the radial
    // direction. Pole-ring vertices touch a single sliver triangle whose
    // face normal tilts, so skip the first and last rings.
    const std::size_t ring = 48 + 1;
    for (std::size_t i = ring; i + ring < s.vertexCount(); ++i) {
        const float d = s.normals[i].dot(s.vertices[i].normalized());
        EXPECT_GT(d, 0.98f);
    }
}

TEST(TriMesh, TransformPreservesShape) {
    TriMesh box = makeBox({1, 1, 1});
    const double areaBefore = box.surfaceArea();
    box.transform({geom::Quat::fromAxisAngle({0.3f, 0.9f, -0.4f}), {5, -2, 1}});
    EXPECT_NEAR(box.surfaceArea(), areaBefore, 1e-3);
    const Vec3f c = box.centroid();
    EXPECT_NEAR((c - Vec3f{5, -2, 1}).norm(), 0.0f, 1e-4f);
}

TEST(TriMesh, WeldMergesDuplicates) {
    TriMesh m;
    // Two triangles sharing an edge but with duplicated vertices.
    m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
    m.triangles = {{0, 1, 2}, {3, 5, 4}};
    const std::size_t removed = m.weldVertices(1e-6f);
    EXPECT_EQ(removed, 2u);
    EXPECT_EQ(m.vertexCount(), 4u);
    EXPECT_EQ(m.triangleCount(), 2u);
    // The shared edge is now actually shared.
    EXPECT_EQ(m.countBoundaryEdges(), 4u);
}

TEST(TriMesh, RemoveDegenerateTriangles) {
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
    m.triangles = {{0, 1, 2}, {0, 0, 1}, {1, 1, 1}};
    EXPECT_EQ(m.removeDegenerateTriangles(), 2u);
    EXPECT_EQ(m.triangleCount(), 1u);
}

TEST(TriMesh, AppendOffsetsIndices) {
    TriMesh a = makeBox({1, 1, 1});
    const TriMesh b = makeBox({1, 1, 1}, {5, 0, 0});
    const std::size_t vertsA = a.vertexCount();
    a.append(b);
    EXPECT_EQ(a.vertexCount(), vertsA + b.vertexCount());
    EXPECT_EQ(a.triangleCount(), 24u);
    // All indices valid.
    for (const Triangle& t : a.triangles) {
        EXPECT_LT(t.a, a.vertexCount());
        EXPECT_LT(t.b, a.vertexCount());
        EXPECT_LT(t.c, a.vertexCount());
    }
    // Still two closed components.
    EXPECT_EQ(a.countBoundaryEdges(), 0u);
}

TEST(TriMesh, CylinderIsClosed) {
    const TriMesh c = makeCylinder(1.0f, 2.0f, 32);
    // Caps + side; after welding the seam it should be closed.
    TriMesh welded = c;
    welded.weldVertices(1e-6f);
    EXPECT_EQ(welded.countBoundaryEdges(), 0u);
}

TEST(TriMesh, RawGeometryBytes) {
    const TriMesh box = makeBox({1, 1, 1});
    EXPECT_EQ(box.rawGeometryBytes(), 8 * sizeof(Vec3f) + 12 * sizeof(Triangle));
}

TEST(TriMesh, ClearResetsEverything) {
    TriMesh m = makeUVSphere(1.0f, 8, 8);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.triangleCount(), 0u);
    EXPECT_FALSE(m.hasNormals());
}

}  // namespace
}  // namespace semholo::mesh
