#include "semholo/mesh/blocksampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/isosurface.hpp"

namespace semholo::mesh {
namespace {

// Exact metric SDF (Lipschitz constant 1) of a sphere.
ScalarField sphereField(Vec3f center, float radius) {
    return [center, radius](Vec3f p) { return (p - center).norm() - radius; };
}

geom::AABB unitBounds() {
    return {{-1.0f, -1.0f, -1.0f}, {1.0f, 1.0f, 1.0f}};
}

// Meshes must agree vertex-for-vertex, triangle-for-triangle: the sparse
// guarantee is bit-identity, not approximate equality.
void expectIdenticalMeshes(const TriMesh& a, const TriMesh& b) {
    ASSERT_EQ(a.vertexCount(), b.vertexCount());
    ASSERT_EQ(a.triangleCount(), b.triangleCount());
    for (std::size_t i = 0; i < a.vertexCount(); ++i) {
        EXPECT_EQ(a.vertices[i].x, b.vertices[i].x);
        EXPECT_EQ(a.vertices[i].y, b.vertices[i].y);
        EXPECT_EQ(a.vertices[i].z, b.vertices[i].z);
    }
    for (std::size_t i = 0; i < a.triangleCount(); ++i) {
        EXPECT_EQ(a.triangles[i].a, b.triangles[i].a);
        EXPECT_EQ(a.triangles[i].b, b.triangles[i].b);
        EXPECT_EQ(a.triangles[i].c, b.triangles[i].c);
    }
}

TEST(BlockSampler, SparseGridMatchesDenseWhereSampled) {
    const auto field = sphereField({0.1f, -0.05f, 0.0f}, 0.4f);
    const int res = 33;
    VoxelGrid dense(unitBounds(), {res, res, res});
    dense.sample(field);

    VoxelGrid sparse(unitBounds(), {res, res, res});
    BlockSampler sampler(sparse, 8);
    FieldSampleOptions opt;  // lipschitz 1.0 exact for the sphere SDF
    const FieldSampleStats stats = sampler.sample(field, opt);

    EXPECT_GT(stats.blocksSkipped, 0u);
    EXPECT_GT(stats.blocksSampled, 0u);
    EXPECT_EQ(stats.blocksSkipped + stats.blocksSampled, stats.blocksTotal);
    EXPECT_LT(stats.nodesEvaluated, stats.nodesTotal);

    // Where blocks were fully sampled the values are bit-identical; where
    // skipped, the fill keeps the certified sign.
    for (int z = 0; z <= res; ++z)
        for (int y = 0; y <= res; ++y)
            for (int x = 0; x <= res; ++x) {
                const float dv = dense.at(x, y, z);
                const float sv = sparse.at(x, y, z);
                if (dv != sv) {
                    EXPECT_GT(dv * sv, 0.0f)
                        << "filled node changed sign at " << x << "," << y << "," << z;
                }
            }
}

TEST(BlockSampler, SparseExtractionBitIdenticalToDense) {
    const auto field = sphereField({0.0f, 0.0f, 0.0f}, 0.55f);
    for (const int res : {16, 33, 48}) {
        const TriMesh dense = extractIsoSurface(field, unitBounds(), res);

        FieldSampleOptions opt;
        FieldSampleStats stats;
        const TriMesh sparse =
            extractIsoSurface(field, unitBounds(), res, {}, opt, &stats);
        EXPECT_GT(stats.blocksSkipped, 0u) << "res " << res;
        expectIdenticalMeshes(dense, sparse);
    }
}

TEST(BlockSampler, DeterministicAcrossWorkerCounts) {
    const auto field = sphereField({-0.2f, 0.15f, 0.1f}, 0.5f);
    const int res = 40;

    VoxelGrid serial(unitBounds(), {res, res, res});
    BlockSampler serialSampler(serial, 8);
    FieldSampleOptions serialOpt;
    serialSampler.sample(field, serialOpt);

    for (const std::size_t workers : {2u, 4u}) {
        core::ThreadPool pool(workers);
        VoxelGrid parallel(unitBounds(), {res, res, res});
        BlockSampler parallelSampler(parallel, 8);
        FieldSampleOptions opt;
        opt.pool = &pool;
        parallelSampler.sample(field, opt);
        for (int z = 0; z <= res; ++z)
            for (int y = 0; y <= res; ++y)
                for (int x = 0; x <= res; ++x)
                    ASSERT_EQ(serial.at(x, y, z), parallel.at(x, y, z))
                        << "workers=" << workers;
    }
}

TEST(BlockSampler, PruningOffMatchesDenseEverywhere) {
    const auto field = sphereField({0.0f, 0.0f, 0.0f}, 0.45f);
    const int res = 24;
    VoxelGrid dense(unitBounds(), {res, res, res});
    dense.sample(field);

    VoxelGrid sparse(unitBounds(), {res, res, res});
    BlockSampler sampler(sparse, 8);
    FieldSampleOptions opt;
    opt.blockPruning = false;
    const FieldSampleStats stats = sampler.sample(field, opt);
    EXPECT_EQ(stats.blocksSkipped, 0u);
    EXPECT_EQ(stats.nodesEvaluated, stats.nodesTotal);
    for (int z = 0; z <= res; ++z)
        for (int y = 0; y <= res; ++y)
            for (int x = 0; x <= res; ++x)
                ASSERT_EQ(dense.at(x, y, z), sparse.at(x, y, z));
}

TEST(BlockSampler, AnalyticCertificateSkipsAndStaysExact) {
    const Vec3f center{0.05f, 0.0f, -0.1f};
    const float radius = 0.5f;
    const auto field = sphereField(center, radius);
    const int res = 33;

    const TriMesh dense = extractIsoSurface(field, unitBounds(), res);

    FieldSampleOptions opt;
    // Analytic certificate for the sphere: the ball around the block
    // center misses the iso-surface when |distance at center| > radius.
    opt.certificate = [center, radius](Vec3f c, float r) {
        return std::fabs((c - center).norm() - radius) > r;
    };
    FieldSampleStats stats;
    const TriMesh sparse = extractIsoSurface(field, unitBounds(), res, {}, opt, &stats);
    EXPECT_GT(stats.blocksSkipped, 0u);
    expectIdenticalMeshes(dense, sparse);
}

TEST(BlockSampler, DirtyMaskSkipsCleanBlocks) {
    const auto field = sphereField({0.0f, 0.0f, 0.0f}, 0.5f);
    const int res = 24;
    VoxelGrid grid(unitBounds(), {res, res, res});
    BlockSampler sampler(grid, 8);
    FieldSampleOptions opt;
    const FieldSampleStats first = sampler.sample(field, opt);
    EXPECT_EQ(first.blocksCached, 0u);

    // All-clean mask: nothing is touched, everything counts as cached.
    std::vector<std::uint8_t> clean(static_cast<std::size_t>(sampler.blockCount()), 0);
    const FieldSampleStats second = sampler.sample(field, opt, &clean);
    EXPECT_EQ(second.blocksCached, first.blocksTotal);
    EXPECT_EQ(second.nodesEvaluated, 0u);
    EXPECT_EQ(second.nodesTotal, first.nodesTotal);
}

TEST(BlockSampler, CellBlockCoversWholeGrid) {
    VoxelGrid grid(unitBounds(), {20, 20, 20});
    BlockSampler sampler(grid, 8);
    // Every cell must map to a valid block whose guard region contains it.
    for (int z = 0; z < 20; ++z)
        for (int y = 0; y < 20; ++y)
            for (int x = 0; x < 20; ++x) {
                const int b = sampler.cellBlock(x, y, z);
                ASSERT_GE(b, 0);
                ASSERT_LT(b, sampler.blockCount());
            }
}

}  // namespace
}  // namespace semholo::mesh
