#include "semholo/mesh/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace semholo::mesh {
namespace {

class IoTest : public ::testing::Test {
protected:
    std::string tmpPath(const std::string& name) {
        const auto dir = std::filesystem::temp_directory_path() / "semholo_io_test";
        std::filesystem::create_directories(dir);
        return (dir / name).string();
    }
};

TEST_F(IoTest, ObjRoundTrip) {
    const TriMesh original = makeUVSphere(1.0f, 8, 16);
    const std::string path = tmpPath("sphere.obj");
    ASSERT_TRUE(saveOBJ(original, path));

    TriMesh loaded;
    ASSERT_TRUE(loadOBJ(path, loaded));
    ASSERT_EQ(loaded.vertexCount(), original.vertexCount());
    ASSERT_EQ(loaded.triangleCount(), original.triangleCount());
    for (std::size_t i = 0; i < loaded.vertexCount(); ++i)
        EXPECT_NEAR((loaded.vertices[i] - original.vertices[i]).norm(), 0.0f, 1e-4f);
    EXPECT_TRUE(loaded.hasNormals());
    EXPECT_TRUE(loaded.hasUVs());
}

TEST_F(IoTest, ObjTriangulatesQuads) {
    const std::string path = tmpPath("quad.obj");
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n", f);
        std::fclose(f);
    }
    TriMesh m;
    ASSERT_TRUE(loadOBJ(path, m));
    EXPECT_EQ(m.vertexCount(), 4u);
    EXPECT_EQ(m.triangleCount(), 2u);
}

TEST_F(IoTest, ObjNegativeIndices) {
    const std::string path = tmpPath("neg.obj");
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n", f);
        std::fclose(f);
    }
    TriMesh m;
    ASSERT_TRUE(loadOBJ(path, m));
    ASSERT_EQ(m.triangleCount(), 1u);
    EXPECT_EQ(m.triangles[0].a, 0u);
    EXPECT_EQ(m.triangles[0].c, 2u);
}

TEST_F(IoTest, PlyMeshRoundTrip) {
    TriMesh original = makeBox({1, 1, 1});
    original.colors.assign(original.vertexCount(), Vec3f{1.0f, 0.5f, 0.0f});
    const std::string path = tmpPath("box.ply");
    ASSERT_TRUE(savePLY(original, path));

    TriMesh loaded;
    ASSERT_TRUE(loadPLY(path, loaded));
    ASSERT_EQ(loaded.vertexCount(), original.vertexCount());
    EXPECT_EQ(loaded.triangleCount(), original.triangleCount());
    ASSERT_TRUE(loaded.hasColors());
    EXPECT_NEAR(loaded.colors[0].x, 1.0f, 0.01f);
    EXPECT_NEAR(loaded.colors[0].y, 0.5f, 0.01f);
}

TEST_F(IoTest, PlyPointCloudWrites) {
    PointCloud pc;
    pc.addPoint({0, 0, 0}, {1, 0, 0});
    pc.addPoint({1, 2, 3}, {0, 1, 0});
    const std::string path = tmpPath("cloud.ply");
    ASSERT_TRUE(savePLY(pc, path));
    EXPECT_GT(std::filesystem::file_size(path), 0u);
}

TEST_F(IoTest, MissingFileFails) {
    TriMesh m;
    EXPECT_FALSE(loadOBJ(tmpPath("does_not_exist.obj"), m));
    EXPECT_FALSE(loadPLY(tmpPath("does_not_exist.ply"), m));
}

TEST_F(IoTest, NonPlyFileRejected) {
    const std::string path = tmpPath("not_a_ply.ply");
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("hello world\n", f);
        std::fclose(f);
    }
    TriMesh m;
    EXPECT_FALSE(loadPLY(path, m));
}

}  // namespace
}  // namespace semholo::mesh
