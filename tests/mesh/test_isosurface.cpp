#include "semholo/mesh/isosurface.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "semholo/mesh/metrics.hpp"
#include "semholo/mesh/sampling.hpp"

namespace semholo::mesh {
namespace {

ScalarField sphereSDF(Vec3f center, float radius) {
    return [=](Vec3f p) { return (p - center).norm() - radius; };
}

geom::AABB cube(float half) {
    geom::AABB b;
    b.expand({-half, -half, -half});
    b.expand({half, half, half});
    return b;
}

TEST(IsoSurface, SphereIsWatertight) {
    const TriMesh m = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 24);
    ASSERT_GT(m.triangleCount(), 0u);
    EXPECT_EQ(m.countBoundaryEdges(), 0u);
    EXPECT_EQ(m.countNonManifoldEdges(), 0u);
}

TEST(IsoSurface, SphereRadiusAccurate) {
    const float radius = 1.0f;
    const TriMesh m = extractIsoSurface(sphereSDF({}, radius), cube(1.5f), 48);
    for (const Vec3f& v : m.vertices) EXPECT_NEAR(v.norm(), radius, 0.01f);
}

TEST(IsoSurface, SphereAreaConvergesWithResolution) {
    const double analytic = 4.0 * M_PI;
    const TriMesh lo = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 16);
    const TriMesh hi = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 64);
    const double errLo = std::fabs(lo.surfaceArea() - analytic);
    const double errHi = std::fabs(hi.surfaceArea() - analytic);
    EXPECT_LT(errHi, errLo);
    EXPECT_NEAR(hi.surfaceArea(), analytic, analytic * 0.02);
}

TEST(IsoSurface, NormalsPointOutward) {
    const TriMesh m = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 32);
    std::size_t outward = 0;
    for (const Triangle& t : m.triangles) {
        const Vec3f c = (m.vertices[t.a] + m.vertices[t.b] + m.vertices[t.c]) / 3.0f;
        if (m.triangleNormal(t).dot(c.normalized()) > 0.0f) ++outward;
    }
    // All triangles should face outward for an SDF (negative inside).
    EXPECT_EQ(outward, m.triangleCount());
}

TEST(IsoSurface, OffsetSphereCenterRespected) {
    const Vec3f center{0.4f, -0.2f, 0.3f};
    geom::AABB b = cube(2.0f);
    const TriMesh m = extractIsoSurface(sphereSDF(center, 0.8f), b, 40);
    for (const Vec3f& v : m.vertices) EXPECT_NEAR((v - center).norm(), 0.8f, 0.015f);
}

TEST(IsoSurface, EmptyFieldGivesEmptyMesh) {
    // Field entirely positive: no crossing.
    const TriMesh m =
        extractIsoSurface([](Vec3f) { return 1.0f; }, cube(1.0f), 16);
    EXPECT_TRUE(m.empty());
}

TEST(IsoSurface, FullFieldGivesEmptyMesh) {
    const TriMesh m =
        extractIsoSurface([](Vec3f) { return -1.0f; }, cube(1.0f), 16);
    EXPECT_TRUE(m.empty());
}

TEST(IsoSurface, NonZeroIsoValue) {
    // Extracting sdf = -0.2 of a unit sphere gives a sphere of radius 0.8.
    IsoSurfaceOptions opt;
    opt.isoValue = -0.2f;
    const TriMesh m = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 40, opt);
    for (const Vec3f& v : m.vertices) EXPECT_NEAR(v.norm(), 0.8f, 0.012f);
}

TEST(IsoSurface, TwoBlobsProduceTwoComponents) {
    // Union of two disjoint spheres: still watertight.
    const ScalarField field = [](Vec3f p) {
        const float a = (p - Vec3f{-0.8f, 0, 0}).norm() - 0.5f;
        const float b = (p - Vec3f{0.8f, 0, 0}).norm() - 0.5f;
        return std::min(a, b);
    };
    const TriMesh m = extractIsoSurface(field, cube(1.6f), 40);
    EXPECT_EQ(m.countBoundaryEdges(), 0u);
    const double analytic = 2.0 * 4.0 * M_PI * 0.25;
    EXPECT_NEAR(m.surfaceArea(), analytic, analytic * 0.05);
}

TEST(IsoSurface, ResolutionControlsVertexBudget) {
    const TriMesh lo = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 12);
    const TriMesh hi = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 48);
    EXPECT_GT(hi.vertexCount(), lo.vertexCount() * 8);
}

TEST(IsoSurface, ChamferToAnalyticSphereDecreasesWithResolution) {
    const TriMesh reference = makeUVSphere(1.0f, 48, 96);
    const TriMesh lo = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 12);
    const TriMesh hi = extractIsoSurface(sphereSDF({}, 1.0f), cube(1.5f), 48);
    const auto errLo = compareMeshes(reference, lo, 5000);
    const auto errHi = compareMeshes(reference, hi, 5000);
    EXPECT_LT(errHi.chamfer, errLo.chamfer);
}

TEST(IsoSurface, GridInterpolationMatchesFieldForLinear) {
    // For a linear field, trilinear interpolation is exact.
    VoxelGrid grid(cube(1.0f), {8, 8, 8});
    grid.sample([](Vec3f p) { return 2.0f * p.x - p.y + 0.5f * p.z + 0.25f; });
    EXPECT_NEAR(grid.interpolate({0.3f, -0.2f, 0.1f}),
                2.0f * 0.3f + 0.2f + 0.05f + 0.25f, 1e-4f);
}

}  // namespace
}  // namespace semholo::mesh
