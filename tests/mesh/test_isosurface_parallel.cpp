// Tests for the two-pass block-local table-driven extractor: canonical
// equivalence with the retained legacy extractor, byte-identity across
// worker counts, topology reuse through IsoExtractCache, batch-sampled
// grid identity, and the degenerate/no-crossing edge cases.
#include "semholo/mesh/isosurface.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/blocksampler.hpp"

namespace semholo::mesh {
namespace {

geom::AABB unitBounds() {
    return {{-1.0f, -1.0f, -1.0f}, {1.0f, 1.0f, 1.0f}};
}

ScalarField sphereField(Vec3f center, float radius) {
    return [center, radius](Vec3f p) { return (p - center).norm() - radius; };
}

// Capsule SDF between two endpoints — the primitive the body field is
// built from, so extraction sees production-like curvature.
ScalarField capsuleField(Vec3f a, Vec3f b, float radius) {
    return [a, b, radius](Vec3f p) {
        const Vec3f ab = b - a;
        const Vec3f ap = p - a;
        const float denom = ab.dot(ab);
        float t = denom > 0.0f ? ap.dot(ab) / denom : 0.0f;
        t = t < 0.0f ? 0.0f : (t > 1.0f ? 1.0f : t);
        return (p - (a + ab * t)).norm() - radius;
    };
}

// Smooth union of two spheres: a field whose iso-surface changes
// topology with the iso value (one blob vs two).
ScalarField blobField() {
    const auto f1 = sphereField({-0.35f, 0.0f, 0.0f}, 0.4f);
    const auto f2 = sphereField({0.35f, 0.1f, -0.05f}, 0.35f);
    return [f1, f2](Vec3f p) {
        const float a = f1(p), b = f2(p);
        const float k = 0.15f;
        const float h = std::fmax(k - std::fabs(a - b), 0.0f) / k;
        return std::fmin(a, b) - h * h * k * 0.25f;
    };
}

void expectIdenticalMeshes(const TriMesh& a, const TriMesh& b) {
    ASSERT_EQ(a.vertexCount(), b.vertexCount());
    ASSERT_EQ(a.triangleCount(), b.triangleCount());
    for (std::size_t i = 0; i < a.vertexCount(); ++i) {
        ASSERT_EQ(a.vertices[i].x, b.vertices[i].x) << "vertex " << i;
        ASSERT_EQ(a.vertices[i].y, b.vertices[i].y) << "vertex " << i;
        ASSERT_EQ(a.vertices[i].z, b.vertices[i].z) << "vertex " << i;
    }
    for (std::size_t i = 0; i < a.triangleCount(); ++i) {
        ASSERT_EQ(a.triangles[i].a, b.triangles[i].a) << "triangle " << i;
        ASSERT_EQ(a.triangles[i].b, b.triangles[i].b) << "triangle " << i;
        ASSERT_EQ(a.triangles[i].c, b.triangles[i].c) << "triangle " << i;
    }
}

void expectSameTriangleSet(const TriMesh& a, const TriMesh& b) {
    const auto soupA = canonicalTriangleSoup(a);
    const auto soupB = canonicalTriangleSoup(b);
    ASSERT_EQ(soupA.size(), soupB.size());
    for (std::size_t i = 0; i < soupA.size(); ++i)
        for (int v = 0; v < 3; ++v) {
            ASSERT_EQ(soupA[i][v].x, soupB[i][v].x) << "triangle " << i;
            ASSERT_EQ(soupA[i][v].y, soupB[i][v].y) << "triangle " << i;
            ASSERT_EQ(soupA[i][v].z, soupB[i][v].z) << "triangle " << i;
        }
}

TEST(IsoSurfaceParallel, ByteIdenticalAcrossWorkerCounts) {
    const auto field = blobField();
    const int res = 48;
    VoxelGrid grid(unitBounds(), {res, res, res});
    grid.sample(field);

    const TriMesh serial = extractIsoSurface(grid);
    for (const std::size_t workers : {1u, 2u, 8u}) {
        core::ThreadPool pool(workers);
        IsoSurfaceOptions opt;
        opt.pool = &pool;
        const TriMesh pooled = extractIsoSurface(grid, opt);
        expectIdenticalMeshes(serial, pooled);
    }
}

TEST(IsoSurfaceParallel, MatchesLegacyAcrossFieldsAndIsoValues) {
    struct Case {
        const char* name;
        ScalarField field;
    };
    const Case cases[] = {
        {"sphere", sphereField({0.1f, -0.05f, 0.08f}, 0.55f)},
        {"capsule", capsuleField({-0.4f, -0.3f, 0.0f}, {0.35f, 0.4f, 0.1f}, 0.25f)},
        {"blobs", blobField()},
    };
    for (const Case& c : cases)
        for (const int res : {16, 33})
            for (const float iso : {0.0f, 0.08f, -0.05f}) {
                SCOPED_TRACE(std::string(c.name) + " res " +
                             std::to_string(res) + " iso " + std::to_string(iso));
                VoxelGrid grid(unitBounds(), {res, res, res});
                grid.sample(c.field);
                IsoSurfaceOptions opt;
                opt.isoValue = iso;
                // The triangle-set guarantee is on the pre-weld output;
                // welding may pick different epsilon-merge representatives
                // depending on emission order.
                opt.weldVertices = false;
                const TriMesh legacy = extractIsoSurfaceLegacy(grid, opt);
                const TriMesh block = extractIsoSurface(grid, opt);
                ASSERT_GT(block.triangleCount(), 0u)
                    << c.name << " res " << res << " iso " << iso;
                expectSameTriangleSet(legacy, block);
            }
}

TEST(IsoSurfaceParallel, SparseMatchesLegacySparse) {
    const auto field = sphereField({0.0f, 0.05f, -0.1f}, 0.5f);
    const int res = 40;
    VoxelGrid grid(unitBounds(), {res, res, res});
    BlockSampler sampler(grid, 8);
    FieldSampleOptions sampling;  // lipschitz 1.0 exact for the sphere SDF
    sampler.sample(field, sampling);

    IsoSurfaceOptions opt;  // pre-weld comparison, as in the other suites
    opt.weldVertices = false;
    const TriMesh legacy = extractIsoSurfaceLegacy(grid, sampler, opt);
    const TriMesh block = extractIsoSurface(grid, sampler, opt);
    ASSERT_GT(block.triangleCount(), 0u);
    expectSameTriangleSet(legacy, block);
}

TEST(IsoSurfaceParallel, BlockDecompositionDoesNotChangeOutput) {
    // The dense path (no sampler, kDenseBlockSize tiles) and the sparse
    // path (sampler-sized tiles) must emit identical bytes — the
    // canonical ordering is decomposition-independent.
    const auto field = blobField();
    const int res = 40;
    VoxelGrid dense(unitBounds(), {res, res, res});
    dense.sample(field);

    VoxelGrid sparse(unitBounds(), {res, res, res});
    for (const int blockSize : {4, 8, 16}) {
        BlockSampler sampler(sparse, blockSize);
        FieldSampleOptions sampling;
        sampling.blockPruning = false;  // grids identical node-for-node
        sampler.sample(field, sampling);
        expectIdenticalMeshes(extractIsoSurface(dense),
                              extractIsoSurface(sparse, sampler));
    }
}

TEST(IsoSurfaceParallel, TopologyReuseIsByteIdentical) {
    const auto field = sphereField({0.02f, -0.03f, 0.0f}, 0.45f);
    const int res = 33;
    VoxelGrid grid(unitBounds(), {res, res, res});
    BlockSampler sampler(grid, 8);
    FieldSampleOptions sampling;
    sampler.sample(field, sampling);

    IsoSurfaceOptions opt;
    IsoExtractCache cache;
    ExtractStats first, second;
    const TriMesh cold = extractIsoSurface(grid, &sampler, opt, &cache, &first);
    EXPECT_EQ(first.reusedTopologyBlocks, 0u);
    EXPECT_GT(first.activeCells, 0u);

    const TriMesh warm = extractIsoSurface(grid, &sampler, opt, &cache, &second);
    EXPECT_GT(second.reusedTopologyBlocks, 0u);
    // Every worked block reuses on an unchanged grid (the reuse counter
    // also covers worked blocks that turned out geometry-free).
    EXPECT_GE(second.reusedTopologyBlocks, second.blocksExtracted);
    EXPECT_EQ(second.activeCells, first.activeCells);
    expectIdenticalMeshes(cold, warm);
}

TEST(IsoSurfaceParallel, TopologyReuseRecomputesVertexPositions) {
    // Scale the field by a spatially varying positive factor: every node
    // keeps its sign (so all topology is reusable) but the crossing
    // parameter t changes, so reused blocks must still re-interpolate.
    const auto field = sphereField({0.0f, 0.0f, 0.0f}, 0.5f);
    const auto warped = [field](Vec3f p) {
        return field(p) * (1.0f + 0.25f * std::sin(3.0f * p.x + p.y));
    };
    const int res = 33;
    VoxelGrid grid(unitBounds(), {res, res, res});
    BlockSampler sampler(grid, 8);
    FieldSampleOptions sampling;
    sampling.blockPruning = false;  // both passes sample every node

    IsoSurfaceOptions opt;
    IsoExtractCache cache;
    ExtractStats stats;
    sampler.sample(field, sampling);
    const TriMesh original = extractIsoSurface(grid, &sampler, opt, &cache, &stats);

    sampler.sample(ScalarField(warped), sampling);
    const TriMesh moved = extractIsoSurface(grid, &sampler, opt, &cache, &stats);
    EXPECT_GT(stats.reusedTopologyBlocks, 0u);

    // Same topology as a cache-free extraction of the warped grid, and
    // byte-identical to it (positions were recomputed, not reused).
    const TriMesh fresh = extractIsoSurface(grid, &sampler, opt, nullptr, nullptr);
    expectIdenticalMeshes(moved, fresh);

    // The warp really moved vertices, so the test is not vacuous.
    ASSERT_EQ(moved.vertexCount(), original.vertexCount());
    bool anyMoved = false;
    for (std::size_t i = 0; i < moved.vertexCount() && !anyMoved; ++i)
        anyMoved = moved.vertices[i].x != original.vertices[i].x ||
                   moved.vertices[i].y != original.vertices[i].y ||
                   moved.vertices[i].z != original.vertices[i].z;
    EXPECT_TRUE(anyMoved);
}

TEST(IsoSurfaceParallel, CacheInvalidatesOnIsoValueChange) {
    const auto field = sphereField({0.0f, 0.0f, 0.0f}, 0.5f);
    const int res = 24;
    VoxelGrid grid(unitBounds(), {res, res, res});
    grid.sample(field);

    IsoSurfaceOptions opt;
    IsoExtractCache cache;
    ExtractStats stats;
    extractIsoSurface(grid, nullptr, opt, &cache, &stats);

    opt.isoValue = 0.1f;
    const TriMesh shifted = extractIsoSurface(grid, nullptr, opt, &cache, &stats);
    EXPECT_EQ(stats.reusedTopologyBlocks, 0u);
    expectIdenticalMeshes(shifted, extractIsoSurface(grid, opt));
}

TEST(IsoSurfaceParallel, NoCrossingProducesEmptyMesh) {
    const int res = 16;
    for (const float value : {1.0f, -1.0f}) {
        VoxelGrid grid(unitBounds(), {res, res, res});
        grid.sample([value](Vec3f) { return value; });
        const TriMesh m = extractIsoSurface(grid);
        EXPECT_EQ(m.vertexCount(), 0u);
        EXPECT_EQ(m.triangleCount(), 0u);
        expectSameTriangleSet(extractIsoSurfaceLegacy(grid), m);
    }
}

TEST(IsoSurfaceParallel, SurfaceClippedByGridBoundary) {
    // Sphere larger than the bounds: the iso-surface exits through every
    // face, exercising the clamped halo rows at the grid edge.
    const auto field = sphereField({0.3f, 0.2f, -0.25f}, 1.1f);
    for (const int res : {15, 32}) {
        VoxelGrid grid(unitBounds(), {res, res, res});
        grid.sample(field);
        const TriMesh legacy = extractIsoSurfaceLegacy(grid);
        const TriMesh block = extractIsoSurface(grid);
        ASSERT_GT(block.triangleCount(), 0u) << "res " << res;
        expectSameTriangleSet(legacy, block);
    }
}

TEST(IsoSurfaceParallel, BatchSampledConvenienceIsByteIdentical) {
    // The dense convenience overload routed through a bit-identical
    // BatchScalarField must produce the same mesh as the scalar path.
    const Vec3f center{0.05f, -0.1f, 0.0f};
    const float radius = 0.5f;
    const auto field = sphereField(center, radius);
    const int res = 33;

    const TriMesh scalar = extractIsoSurface(field, unitBounds(), res);

    IsoSurfaceOptions opt;
    opt.batch = [center, radius](const float* xs, const float* ys,
                                 const float* zs, float* out, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = (Vec3f{xs[i], ys[i], zs[i]} - center).norm() - radius;
    };
    const TriMesh batched = extractIsoSurface(field, unitBounds(), res, opt);
    expectIdenticalMeshes(scalar, batched);

    core::ThreadPool pool(4);
    opt.pool = &pool;
    const TriMesh pooled = extractIsoSurface(field, unitBounds(), res, opt);
    expectIdenticalMeshes(scalar, pooled);
}

TEST(IsoSurfaceParallel, WeldOptOutKeepsTriangleSet) {
    const auto field = capsuleField({-0.3f, 0.0f, 0.0f}, {0.3f, 0.2f, 0.0f}, 0.3f);
    const int res = 33;
    VoxelGrid grid(unitBounds(), {res, res, res});
    grid.sample(field);

    IsoSurfaceOptions welded;  // default weldVertices = true
    IsoSurfaceOptions unwelded;
    unwelded.weldVertices = false;
    const TriMesh a = extractIsoSurface(grid, welded);
    const TriMesh b = extractIsoSurface(grid, unwelded);
    // Node-edge dedup already welds shared cell/block boundaries, so for
    // a smooth field missing the nodes the weld pass must be a no-op.
    expectIdenticalMeshes(a, b);
    expectSameTriangleSet(a, b);
}

TEST(IsoSurfaceParallel, StatsCountActiveCellsAndOutput) {
    const auto field = sphereField({0.0f, 0.0f, 0.0f}, 0.5f);
    const int res = 24;
    VoxelGrid grid(unitBounds(), {res, res, res});
    grid.sample(field);

    IsoSurfaceOptions opt;
    opt.weldVertices = false;
    ExtractStats stats;
    const TriMesh m = extractIsoSurface(grid, nullptr, opt, nullptr, &stats);
    EXPECT_GT(stats.blocksTotal, 0u);
    EXPECT_GT(stats.blocksExtracted, 0u);
    EXPECT_LE(stats.blocksExtracted, stats.blocksTotal);
    EXPECT_GT(stats.activeCells, 0u);
    // Pre-cleanup counters bound the final mesh from above (degenerate
    // removal may drop triangles but never adds).
    EXPECT_GE(stats.vertices, m.vertexCount());
    EXPECT_GE(stats.triangles, m.triangleCount());
}

}  // namespace
}  // namespace semholo::mesh
