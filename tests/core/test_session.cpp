#include "semholo/core/session.hpp"

#include <gtest/gtest.h>

#include "semholo/core/qoe.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 56};
    return model;
}

SessionConfig fastConfig(std::size_t frames = 20) {
    SessionConfig cfg;
    cfg.frames = frames;
    cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
    cfg.link.jitterStddevS = 0.0;
    // Tests assert per-frame accounting; live drop behaviour has its own
    // dedicated test below.
    cfg.dropWhenBusy = false;
    return cfg;
}

TEST(Session, KeypointSessionDeliversAllFrames) {
    KeypointChannelOptions opt;
    opt.reconResolution = 24;
    auto channel = makeKeypointChannel(opt);
    const auto stats = runSession(*channel, sharedModel(), fastConfig());
    EXPECT_EQ(stats.frames.size(), 20u);
    EXPECT_EQ(stats.deliveredFrames, 20u);
    EXPECT_EQ(stats.decodedFrames, 20u);
    EXPECT_GT(stats.meanBytesPerFrame, 100.0);
    EXPECT_GT(stats.meanE2eMs, 0.0);
    EXPECT_GT(stats.achievableFps, 0.0);
}

TEST(Session, KeypointBandwidthMatchesTable2) {
    // Table 2: compressed keypoint stream ~0.30 Mbps at 30 FPS.
    KeypointChannelOptions opt;
    opt.reconResolution = 16;
    auto channel = makeKeypointChannel(opt);
    const auto stats = runSession(*channel, sharedModel(), fastConfig(30));
    EXPECT_LT(stats.bandwidthMbps, 0.5);
    EXPECT_GT(stats.bandwidthMbps, 0.1);
}

TEST(Session, TraditionalBandwidthMatchesTable2) {
    // Raw mesh ~95 Mbps at 30 FPS (we accept the same order of magnitude).
    TraditionalOptions opt;
    opt.compress = false;
    auto channel = makeTraditionalChannel(opt);
    SessionConfig cfg = fastConfig(10);
    cfg.link.bandwidth = net::BandwidthTrace::constant(1e9);  // uncongested
    const auto stats = runSession(*channel, sharedModel(), cfg);
    EXPECT_GT(stats.bandwidthMbps, 40.0);
}

TEST(Session, QualityEvaluationSampled) {
    KeypointChannelOptions opt;
    opt.reconResolution = 32;
    auto channel = makeKeypointChannel(opt);
    SessionConfig cfg = fastConfig(10);
    cfg.qualityEvalInterval = 5;
    cfg.qualitySamples = 2000;
    const auto stats = runSession(*channel, sharedModel(), cfg);
    EXPECT_FALSE(std::isnan(stats.meanChamfer));
    EXPECT_GT(stats.meanChamfer, 0.0);
    EXPECT_LT(stats.meanChamfer, 0.1);
    std::size_t evaluated = 0;
    for (const auto& f : stats.frames)
        if (!std::isnan(f.chamfer)) ++evaluated;
    EXPECT_EQ(evaluated, 2u);
}

TEST(Session, NarrowLinkStallsTraditionalNotKeypoint) {
    SessionConfig cfg = fastConfig(15);
    cfg.link.bandwidth = net::BandwidthTrace::constant(5e6);  // 5 Mbps

    auto keypoint = makeKeypointChannel({.reconResolution = 16});
    const auto kp = runSession(*keypoint, sharedModel(), cfg);
    auto traditional = makeTraditionalChannel({false, false});
    const auto trad = runSession(*traditional, sharedModel(), cfg);

    EXPECT_LT(kp.meanTransferMs, 50.0);
    EXPECT_EQ(kp.deliveredFrames, 15u);
    // Raw mesh frames (~400 KB) overflow the 256 KB bottleneck queue
    // within a single message: none of them survive the narrow link.
    EXPECT_EQ(trad.deliveredFrames, 0u);
    EXPECT_GT(trad.telemetry.counters.queueDrops, 0u);
}

TEST(Session, LossyLinkStillDeliversWithArq) {
    SessionConfig cfg = fastConfig(15);
    cfg.link.lossRate = 0.05;
    auto channel = makeKeypointChannel({.reconResolution = 16});
    const auto stats = runSession(*channel, sharedModel(), cfg);
    EXPECT_EQ(stats.deliveredFrames, 15u);
}

TEST(Session, DropWhenBusySkipsFramesForSlowStages) {
    // A channel whose reconstruction is far slower than the frame
    // interval must shed frames in live mode — the paper's <1 FPS
    // reconstruction cannot keep up with a 30 FPS capture.
    TextChannelOptions opt;
    opt.reconResolution = 64;  // slow on purpose
    auto channel = makeTextChannel(opt);
    SessionConfig cfg = fastConfig(12);
    cfg.dropWhenBusy = true;
    const auto stats = runSession(*channel, sharedModel(), cfg);
    EXPECT_GT(stats.droppedSenderFrames + stats.droppedReceiverFrames, 0u);
    EXPECT_LT(stats.decodedFrames, 12u);
    // Processed frames still have bounded end-to-end latency.
    for (const auto& f : stats.frames) {
        if (!f.decoded) continue;
        EXPECT_LT(f.e2eMs, 3000.0);
    }
}

TEST(Session, QueueingModeProcessesEveryFrame) {
    TextChannelOptions opt;
    opt.reconResolution = 32;
    opt.reconstructMesh = false;
    auto channel = makeTextChannel(opt);
    SessionConfig cfg = fastConfig(8);
    cfg.dropWhenBusy = false;
    const auto stats = runSession(*channel, sharedModel(), cfg);
    EXPECT_EQ(stats.droppedSenderFrames, 0u);
    EXPECT_EQ(stats.deliveredFrames, 8u);
}

TEST(Session, FullRunOutageYieldsFiniteZeroAggregates) {
    // A link that is down for the whole session (full-run outage): every
    // frame is captured, encoded and sent, none is delivered or decoded.
    // The finalize contract is 0 (or NaN where documented), never a
    // division by zero or an infinity.
    SessionConfig cfg = fastConfig(12);
    cfg.transfer.reliable = false;  // no ARQ riding out the outage
    cfg.link.lossRate = 1.0;        // link down for the whole run
    auto channel = makeKeypointChannel({.reconResolution = 16});
    const auto stats = runSession(*channel, sharedModel(), cfg);

    EXPECT_EQ(stats.frames.size(), 12u);
    EXPECT_EQ(stats.deliveredFrames, 0u);
    EXPECT_EQ(stats.decodedFrames, 0u);
    // Sender-side aggregates still exist (frames were encoded and sent)…
    EXPECT_GT(stats.meanBytesPerFrame, 0.0);
    EXPECT_GT(stats.bandwidthMbps, 0.0);
    // …receiver-side aggregates are zero by contract, not NaN/inf.
    EXPECT_EQ(stats.meanE2eMs, 0.0);
    EXPECT_EQ(stats.p95E2eMs, 0.0);
    EXPECT_EQ(stats.meanReconMs, 0.0);
    EXPECT_EQ(stats.achievableFps, 0.0);
    // Quality was never evaluated: NaN by contract.
    EXPECT_TRUE(std::isnan(stats.meanChamfer));
    EXPECT_FALSE(std::isinf(stats.meanTransferMs));
    EXPECT_EQ(stats.telemetry.counters.framesDelivered, 0u);
    EXPECT_EQ(stats.telemetry.counters.packetsDelivered, 0u);
    EXPECT_EQ(stats.telemetry.counters.packets,
              stats.telemetry.counters.packetsUnrecovered);
}

TEST(Session, ZeroFrameSessionIsAllZeroAggregates) {
    // frames == 0 exercises the sent == 0 and zero-span branches.
    SessionConfig cfg = fastConfig(0);
    auto channel = makeKeypointChannel({.reconResolution = 16});
    const auto stats = runSession(*channel, sharedModel(), cfg);
    EXPECT_TRUE(stats.frames.empty());
    EXPECT_EQ(stats.meanBytesPerFrame, 0.0);
    EXPECT_EQ(stats.bandwidthMbps, 0.0);
    EXPECT_EQ(stats.meanE2eMs, 0.0);
    EXPECT_EQ(stats.achievableFps, 0.0);
    EXPECT_TRUE(std::isnan(stats.meanChamfer));
}

TEST(QoE, PerfectSessionScoresHigh) {
    SessionStats stats;
    stats.frames.resize(30);
    stats.deliveredFrames = 30;
    stats.meanE2eMs = 40.0;
    stats.achievableFps = 60.0;
    stats.meanChamfer = 0.003;
    const auto qoe = computeQoE(stats);
    EXPECT_GT(qoe.mos, 4.0);
    EXPECT_NEAR(qoe.qualityTerm, 1.0, 1e-6);
    EXPECT_NEAR(qoe.latencyTerm, 1.0, 1e-6);
}

TEST(QoE, LatencyDegradesScore) {
    SessionStats fast, slow;
    fast.frames.resize(10);
    slow.frames.resize(10);
    fast.deliveredFrames = slow.deliveredFrames = 10;
    fast.achievableFps = slow.achievableFps = 30.0;
    fast.meanChamfer = slow.meanChamfer = 0.01;
    fast.meanE2eMs = 50.0;
    slow.meanE2eMs = 800.0;
    EXPECT_GT(computeQoE(fast).mos, computeQoE(slow).mos + 0.5);
}

TEST(QoE, LowFpsPenalized) {
    SessionStats smooth, choppy;
    smooth.frames.resize(10);
    choppy.frames.resize(10);
    smooth.deliveredFrames = choppy.deliveredFrames = 10;
    smooth.meanE2eMs = choppy.meanE2eMs = 50.0;
    smooth.meanChamfer = choppy.meanChamfer = 0.01;
    smooth.achievableFps = 30.0;
    choppy.achievableFps = 1.0;  // the paper's <1 FPS reconstruction
    EXPECT_GT(computeQoE(smooth).mos, computeQoE(choppy).mos);
}

TEST(QoE, UndeliveredFramesCollapseScore) {
    SessionStats stats;
    stats.frames.resize(10);
    stats.deliveredFrames = 0;
    stats.meanE2eMs = 50.0;
    stats.achievableFps = 30.0;
    EXPECT_DOUBLE_EQ(computeQoE(stats).mos, 0.0);
}

TEST(QoE, NeutralQualityWhenUnevaluated) {
    SessionStats stats;
    stats.frames.resize(5);
    stats.deliveredFrames = 5;
    stats.meanE2eMs = 50.0;
    stats.achievableFps = 30.0;
    const auto qoe = computeQoE(stats);
    EXPECT_NEAR(qoe.qualityTerm, 0.5, 1e-9);
}

}  // namespace
}  // namespace semholo::core
