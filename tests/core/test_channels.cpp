#include "semholo/core/channel.hpp"

#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"
#include "semholo/mesh/metrics.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 64};
    return model;
}

FrameContext makeFrame(double t = 0.5,
                       body::MotionKind kind = body::MotionKind::Talk) {
    FrameContext ctx;
    ctx.pose = body::MotionGenerator(kind).poseAt(t);
    ctx.pose.frameId = 7;
    ctx.model = &sharedModel();
    ctx.timestamp = t;
    ctx.viewerHead = {geom::Quat::identity(), {0.0f, 0.2f, -2.5f}};
    return ctx;
}

TEST(TraditionalChannel, RawRoundTripExact) {
    TraditionalOptions opt;
    opt.compress = false;
    auto channel = makeTraditionalChannel(opt);
    const FrameContext ctx = makeFrame();
    const auto encoded = channel->encode(ctx);
    const auto decoded = channel->decode(encoded);
    ASSERT_TRUE(decoded.valid);
    const mesh::TriMesh gt = ctx.groundTruth();
    ASSERT_EQ(decoded.mesh.vertexCount(), gt.vertexCount());
    for (std::size_t i = 0; i < gt.vertexCount(); i += 37)
        EXPECT_EQ(decoded.mesh.vertices[i], gt.vertices[i]);
}

TEST(TraditionalChannel, RawPayloadMatchesTable2Scale) {
    // Table 2: untextured body mesh ~397.7 KB per frame raw.
    TraditionalOptions opt;
    opt.compress = false;
    auto channel = makeTraditionalChannel(opt);
    const auto encoded = channel->encode(makeFrame());
    EXPECT_GT(encoded.bytes(), 150u * 1024u);
    EXPECT_LT(encoded.bytes(), 900u * 1024u);
}

TEST(TraditionalChannel, CompressionShrinksByDracoFactor) {
    auto raw = makeTraditionalChannel({false, false});
    auto compressed = makeTraditionalChannel({true, false});
    const FrameContext ctx = makeFrame();
    const auto rawBytes = raw->encode(ctx).bytes();
    const auto compBytes = compressed->encode(ctx).bytes();
    // Table 2 reports ~9.4x with Draco; require the same class.
    EXPECT_GT(static_cast<double>(rawBytes) / static_cast<double>(compBytes), 6.0);
    const auto decoded = compressed->decode(compressed->encode(ctx));
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.mesh.triangleCount(), ctx.groundTruth().triangleCount());
}

TEST(KeypointChannel, PayloadMatchesPaper) {
    KeypointChannelOptions opt;
    opt.compressPayload = false;
    auto channel = makeKeypointChannel(opt);
    const auto encoded = channel->encode(makeFrame());
    EXPECT_EQ(encoded.bytes(), body::kPosePayloadBytes);  // 1.91 KB
    // Compressed payload lands near the paper's 1.23 KB.
    opt.compressPayload = true;
    auto compressed = makeKeypointChannel(opt);
    const auto small = compressed->encode(makeFrame());
    EXPECT_LT(small.bytes(), body::kPosePayloadBytes * 10 / 13);
}

TEST(KeypointChannel, DecodeReconstructsBody) {
    KeypointChannelOptions opt;
    opt.reconResolution = 40;
    auto channel = makeKeypointChannel(opt);
    const FrameContext ctx = makeFrame();
    const auto decoded = channel->decode(channel->encode(ctx));
    ASSERT_TRUE(decoded.valid);
    EXPECT_GT(decoded.mesh.triangleCount(), 500u);
    // Close to the ground-truth capture mesh.
    const auto err = mesh::compareMeshes(ctx.groundTruth(), decoded.mesh, 5000);
    EXPECT_LT(err.chamfer, 0.05);
    EXPECT_GT(decoded.reconMs(), 0.0);
}

TEST(KeypointChannel, CorruptPayloadInvalid) {
    auto channel = makeKeypointChannel({});
    EncodedFrame bogus;
    bogus.data.assign(50, 0xAB);
    EXPECT_FALSE(channel->decode(bogus).valid);
}

TEST(TextChannel, SmallestPayloadOfAll) {
    TextChannelOptions topt;
    topt.reconstructMesh = false;
    auto text = makeTextChannel(topt);
    auto keypoint = makeKeypointChannel({});
    const FrameContext ctx = makeFrame();
    const auto textBytes = text->encode(ctx).bytes();
    const auto kpBytes = keypoint->encode(ctx).bytes();
    EXPECT_LT(textBytes, kpBytes);
}

TEST(TextChannel, DecodeProducesMeshAndSimulatedCosts) {
    TextChannelOptions opt;
    opt.reconResolution = 32;
    auto channel = makeTextChannel(opt);
    const FrameContext ctx = makeFrame();
    const auto encoded = channel->encode(ctx);
    EXPECT_GT(encoded.simulatedExtractMs, 0.0);  // captioning is "H"
    const auto decoded = channel->decode(encoded);
    ASSERT_TRUE(decoded.valid);
    EXPECT_GT(decoded.mesh.triangleCount(), 100u);
    EXPECT_GT(decoded.simulatedReconMs, 0.0);  // text-to-3D is "H"
}

TEST(TextChannel, DeltaFramesShrinkAfterKeyframe) {
    TextChannelOptions opt;
    opt.reconstructMesh = false;
    auto channel = makeTextChannel(opt);
    const body::MotionGenerator gen(body::MotionKind::Talk);
    std::size_t keyBytes = 0, deltaBytes = 0;
    for (int f = 0; f < 5; ++f) {
        FrameContext ctx;
        ctx.pose = gen.poseAt(f / 30.0);
        ctx.pose.frameId = static_cast<std::uint32_t>(f);
        ctx.model = &sharedModel();
        const auto encoded = channel->encode(ctx);
        const auto decoded = channel->decode(encoded);
        EXPECT_TRUE(decoded.valid);
        if (f == 0)
            keyBytes = encoded.bytes();
        else
            deltaBytes += encoded.bytes();
    }
    EXPECT_LT(deltaBytes / 4, keyBytes);
}

TEST(FoveatedChannel, BytesBetweenKeypointAndTraditional) {
    auto foveated = makeFoveatedChannel({});
    auto keypoint = makeKeypointChannel({});
    auto traditional = makeTraditionalChannel({true, false});
    const FrameContext ctx = makeFrame();
    const auto fb = foveated->encode(ctx).bytes();
    const auto kb = keypoint->encode(ctx).bytes();
    const auto tb = traditional->encode(ctx).bytes();
    EXPECT_GT(fb, kb);   // carries a real mesh region
    EXPECT_LT(fb, tb);   // but far less than the full mesh
}

TEST(FoveatedChannel, WiderFoveaMoreBytes) {
    FoveatedOptions narrow, wide;
    narrow.fovealRadiusDeg = 4.0;
    wide.fovealRadiusDeg = 15.0;
    auto narrowCh = makeFoveatedChannel(narrow);
    auto wideCh = makeFoveatedChannel(wide);
    const FrameContext ctx = makeFrame();
    EXPECT_LT(narrowCh->encode(ctx).bytes(), wideCh->encode(ctx).bytes());
}

TEST(FoveatedChannel, DecodeCombinesFovealAndPeripheral) {
    FoveatedOptions opt;
    opt.peripheralResolution = 28;
    auto channel = makeFoveatedChannel(opt);
    const FrameContext ctx = makeFrame();
    const auto decoded = channel->decode(channel->encode(ctx));
    ASSERT_TRUE(decoded.valid);
    EXPECT_GT(decoded.mesh.triangleCount(), 500u);
}

TEST(ImageChannel, EncodesCompressedViews) {
    ImageChannelOptions opt;
    opt.viewCount = 2;
    opt.imageWidth = 24;
    opt.imageHeight = 18;
    opt.pretrainSteps = 20;
    auto channel = makeImageChannel(opt);
    const FrameContext ctx = makeFrame();
    const auto encoded = channel->encode(ctx);
    // Two 24x18 views at ~0.5 B/pixel plus headers.
    EXPECT_GT(encoded.bytes(), 100u);
    EXPECT_LT(encoded.bytes(), 3000u);
}

TEST(ImageChannel, DecodeRendersNovelView) {
    ImageChannelOptions opt;
    opt.viewCount = 2;
    opt.imageWidth = 20;
    opt.imageHeight = 15;
    opt.pretrainSteps = 15;
    opt.fineTuneSteps = 3;
    auto channel = makeImageChannel(opt);
    const FrameContext ctx = makeFrame();
    const auto first = channel->decode(channel->encode(ctx));
    ASSERT_TRUE(first.valid);
    EXPECT_EQ(first.view.width(), 20);
    EXPECT_EQ(first.view.height(), 15);
    EXPECT_TRUE(first.mesh.empty());  // image semantics renders, no mesh
    // Second frame uses the fine-tune path.
    FrameContext next = makeFrame(0.6);
    next.pose.frameId = 8;
    const auto second = channel->decode(channel->encode(next));
    EXPECT_TRUE(second.valid);
}

TEST(Channels, NamesAreDistinct) {
    EXPECT_NE(makeKeypointChannel({})->name(), makeTextChannel({})->name());
    EXPECT_NE(makeTraditionalChannel({})->name(),
              makeTraditionalChannel({false, false})->name());
}

}  // namespace
}  // namespace semholo::core
