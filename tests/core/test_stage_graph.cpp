// Event-driven stage-graph conference runtime: the straggler scenario
// (heterogeneous per-user encode/decode costs over synthetic channels)
// must stay byte-identical between the serial and pipelined executors at
// every worker count and pipeline depth, and the deterministic schedule
// comparison must show the stage graph strictly beating the legacy
// per-tick barrier on exactly that scenario. Also covers the pipeline
// telemetry surfaced through MultiSessionStats::pipeline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "semholo/core/conference.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 24};
    return model;
}

// A straggler mix: one encode-heavy user, one decode-heavy user, two in
// between. Under the legacy barrier every tick costs max(enc) + max(dec)
// regardless of who is slow where; the stage graph de-staggers the
// per-user chains, whose worst cost is only max(enc_u + dec_u).
struct UserCost {
    double extractMs;
    double reconMs;
};
const std::vector<UserCost>& stragglerCosts() {
    static const std::vector<UserCost> costs{
        {12.0, 2.0}, {2.0, 12.0}, {6.0, 6.0}, {3.0, 3.0}};
    return costs;
}

ConferenceConfig stragglerConference(std::size_t workers, std::size_t depth) {
    ConferenceConfig conf;
    conf.session.frames = 40;
    conf.session.fps = 30.0;
    conf.session.timing = TimingModel::Simulated;
    conf.session.transfer.reliable = false;
    conf.session.workers = workers;
    conf.session.link.bandwidth = net::BandwidthTrace::constant(8e6);
    conf.session.link.propagationDelayS = 0.01;
    conf.session.link.jitterStddevS = 0.0;
    conf.session.link.queueCapacityBytes = 32 * 1024;
    conf.session.link.faults.outages.push_back({0.4, 0.3});
    conf.session.degradation.enabled = true;
    conf.session.degradation.maxLevel = 3;
    conf.session.degradation.downgradeAfter = 2;
    conf.session.degradation.upgradeAfter = 8;
    conf.arbiter.strategy = ArbiterStrategy::MaxMin;
    conf.enableDownlinks = true;
    conf.downlink.bandwidth = net::BandwidthTrace::constant(50e6);
    conf.downlink.jitterStddevS = 0.0;
    conf.downlink.queueCapacityBytes = 512 * 1024;
    conf.pipelineDepth = depth;
    for (const UserCost& c : stragglerCosts()) {
        Participant p;
        p.channel = {"synthetic",
                     {{"payloadBytes", 24 * 1024},
                      {"simulatedExtractMs", c.extractMs},
                      {"simulatedReconMs", c.reconMs}}};
        conf.participants.push_back(std::move(p));
    }
    return conf;
}

void expectSameFrames(const MultiSessionStats& a, const MultiSessionStats& b) {
    ASSERT_EQ(a.perUser.size(), b.perUser.size());
    for (std::size_t u = 0; u < a.perUser.size(); ++u) {
        const auto& fa = a.perUser[u].frames;
        const auto& fb = b.perUser[u].frames;
        ASSERT_EQ(fa.size(), fb.size()) << "user " << u;
        for (std::size_t f = 0; f < fa.size(); ++f) {
            EXPECT_EQ(fa[f].bytes, fb[f].bytes) << "user " << u << " frame " << f;
            EXPECT_EQ(fa[f].delivered, fb[f].delivered)
                << "user " << u << " frame " << f;
            EXPECT_EQ(fa[f].droppedAtSender, fb[f].droppedAtSender)
                << "user " << u << " frame " << f;
            EXPECT_EQ(fa[f].droppedAtReceiver, fb[f].droppedAtReceiver)
                << "user " << u << " frame " << f;
            EXPECT_DOUBLE_EQ(fa[f].transferMs, fb[f].transferMs)
                << "user " << u << " frame " << f;
            EXPECT_DOUBLE_EQ(fa[f].e2eMs, fb[f].e2eMs)
                << "user " << u << " frame " << f;
        }
    }
}

// ---- Byte identity ---------------------------------------------------------

TEST(StageGraph, StragglerByteIdentityAcrossWorkersAndDepths) {
    // The reference is the serial run at depth 1 — the legacy barrier
    // schedule. Every (workers, depth) combination must reproduce it
    // exactly: pipeline depth and worker count change scheduling only.
    const auto reference = runConference(stragglerConference(1, 1),
                                         sharedModel());
    ASSERT_EQ(reference.perUser.size(), stragglerCosts().size());
    EXPECT_GT(reference.perUser[0].deliveredFrames, 0u);
    for (const std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
        for (const std::size_t workers :
             {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " depth=" + std::to_string(depth));
            const auto run = runConference(stragglerConference(workers, depth),
                                           sharedModel());
            expectSameFrames(reference, run);
            ASSERT_EQ(run.downlinks.size(), reference.downlinks.size());
            for (std::size_t v = 0; v < run.downlinks.size(); ++v) {
                EXPECT_EQ(run.downlinks[v].bytesForwarded,
                          reference.downlinks[v].bytesForwarded);
                EXPECT_EQ(run.downlinks[v].packets,
                          reference.downlinks[v].packets);
            }
            EXPECT_EQ(run.serverFanoutBytes, reference.serverFanoutBytes);
            EXPECT_DOUBLE_EQ(run.fairnessIndex, reference.fairnessIndex);
        }
    }
}

// ---- Pipeline telemetry ----------------------------------------------------

TEST(StageGraph, PipelineStatsDescribeTheGraph) {
    const auto stats =
        runConference(stragglerConference(8, 4), sharedModel());
    const PipelineStats& p = stats.pipeline;
    EXPECT_TRUE(p.eventDriven);
    EXPECT_EQ(p.workers, 8u);
    EXPECT_EQ(p.pipelineDepth, 4u);
    EXPECT_GT(p.nodes, 0u);
    EXPECT_GT(p.edges, p.nodes);  // every non-root node has >= 1 edge in
    EXPECT_GE(p.maxTicksInFlight, 1u);
    EXPECT_LE(p.maxTicksInFlight, p.pipelineDepth);
    EXPECT_GT(p.wallMs, 0.0);
    // One stage row per kind in play, in stage order, each with release
    // latency samples for every node.
    std::vector<std::string> names;
    for (const PipelineStageStats& s : p.stages) {
        names.push_back(s.stage);
        EXPECT_GT(s.nodes, 0u);
        EXPECT_EQ(s.releaseLatencyMs.count(), s.nodes);
        EXPECT_GE(s.maxConcurrent, 1u);
    }
    const std::vector<std::string> expected{"arbiter", "encode", "uplink",
                                            "downlink", "decode", "retire"};
    EXPECT_EQ(names, expected);
    // 40 ticks x 4 users of encode/uplink/decode nodes.
    for (const PipelineStageStats& s : p.stages) {
        if (s.stage == "encode" || s.stage == "uplink" || s.stage == "decode") {
            EXPECT_EQ(s.nodes, 40u * 4u);
        }
    }
}

TEST(StageGraph, SerialRunReportsBarrierEquivalentSchedule) {
    // Depth 1 serial: the stage graph *is* the barrier schedule, and the
    // deterministic comparison at one worker must agree — both models
    // degenerate to the cost sum.
    const auto stats =
        runConference(stragglerConference(1, 1), sharedModel());
    const PipelineStats& p = stats.pipeline;
    EXPECT_FALSE(p.eventDriven);
    EXPECT_EQ(p.workers, 1u);
    EXPECT_EQ(p.maxTicksInFlight, 1u);
    EXPECT_NEAR(p.simulatedStageGraphMs, p.simulatedBarrierMs,
                1e-6 * p.simulatedBarrierMs);
    EXPECT_NEAR(p.simulatedSpeedup, 1.0, 1e-9);
}

// ---- Deterministic pipelining win ------------------------------------------

TEST(StageGraph, StragglersPipelineStrictlyBetterThanBarrier) {
    // The schedule comparison is a pure function of (graph, recorded
    // simulated costs, workers) — runner-independent and exact. With the
    // straggler mix at 8 workers the barrier pays max(enc) + max(dec)
    // = 24 ms per tick while the stage graph pays at worst the heaviest
    // per-user chain (14 ms), so the speedup must clear 1.3x and idle
    // time must strictly shrink.
    const auto stats =
        runConference(stragglerConference(8, 4), sharedModel());
    const PipelineStats& p = stats.pipeline;
    EXPECT_GT(p.simulatedBarrierMs, 0.0);
    EXPECT_GT(p.simulatedStageGraphMs, 0.0);
    EXPECT_GE(p.simulatedSpeedup, 1.3);
    EXPECT_LT(p.simulatedIdleMs, p.simulatedBarrierIdleMs);

    // Depth 1 forbids cross-tick overlap: the same mix at the same
    // worker count must collapse to (near) barrier performance, so the
    // win demonstrably comes from pipeline depth, not from the executor.
    const auto depth1 =
        runConference(stragglerConference(8, 1), sharedModel());
    EXPECT_NEAR(depth1.pipeline.simulatedSpeedup, 1.0, 0.05);
    EXPECT_GT(p.simulatedSpeedup, depth1.pipeline.simulatedSpeedup + 0.25);
}

}  // namespace
}  // namespace semholo::core
