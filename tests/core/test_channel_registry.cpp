#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "semholo/core/channel.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 24};
    return model;
}

FrameContext frameAt(double t) {
    static const body::MotionGenerator motion(body::MotionKind::Talk,
                                              sharedModel().shape());
    FrameContext ctx;
    ctx.pose = motion.poseAt(t);
    ctx.pose.frameId = 0;
    ctx.model = &sharedModel();
    ctx.timestamp = t;
    return ctx;
}

ChannelSpec cheapSpec(const std::string& kind) {
    ChannelSpec spec{kind, {}};
    if (kind == "keypoint" || kind == "text")
        spec.params = {{"reconResolution", 12}};
    else if (kind == "foveated")
        spec.params = {{"peripheralResolution", 12}};
    else if (kind == "image")
        spec.params = {{"viewCount", 1},    {"imageWidth", 8},
                       {"imageHeight", 6},  {"pretrainSteps", 2},
                       {"fineTuneSteps", 1}};
    else if (kind == "vector")
        spec.params = {{"latentDim", 8}, {"trainingFrames", 10}};
    return spec;
}

TEST(ChannelRegistry, ListsAllKindsSorted) {
    const auto kinds = listChannelKinds();
    const std::vector<std::string> expected{
        "adaptive-mesh", "foveated",    "image", "keypoint",
        "synthetic",     "text",        "traditional", "vector"};
    EXPECT_EQ(kinds, expected);
    EXPECT_TRUE(std::is_sorted(kinds.begin(), kinds.end()));
}

TEST(ChannelRegistry, RoundTripEncodeDecodeEveryKind) {
    for (const std::string& kind : listChannelKinds()) {
        SCOPED_TRACE(kind);
        auto channel = makeChannel(cheapSpec(kind), &sharedModel());
        ASSERT_NE(channel, nullptr);
        EXPECT_FALSE(channel->name().empty());
        channel->reset();
        const EncodedFrame encoded = channel->encode(frameAt(0.5));
        EXPECT_GT(encoded.bytes(), 0u);
        const DecodedFrame decoded = channel->decode(encoded);
        EXPECT_TRUE(decoded.valid);
        // Every kind except image semantics and the synthetic cost-model
        // channel reconstructs geometry.
        if (kind != "image" && kind != "synthetic") {
            EXPECT_FALSE(decoded.mesh.empty());
        }
    }
}

TEST(ChannelRegistry, WrapperFactoriesMatchSpecConstruction) {
    KeypointChannelOptions opt;
    opt.reconResolution = 24;
    auto viaFactory = makeKeypointChannel(opt);
    auto viaSpec = makeChannel({"keypoint", {{"reconResolution", 24}}});
    const FrameContext ctx = frameAt(0.25);
    EXPECT_EQ(viaFactory->encode(ctx).bytes(), viaSpec->encode(ctx).bytes());
    EXPECT_EQ(viaFactory->name(), viaSpec->name());
}

TEST(ChannelRegistry, DefaultsMatchOptionStructDefaults) {
    auto viaFactory = makeTraditionalChannel({});
    auto viaSpec = makeChannel({"traditional", {}});
    const FrameContext ctx = frameAt(0.1);
    EXPECT_EQ(viaFactory->encode(ctx).bytes(), viaSpec->encode(ctx).bytes());
}

TEST(ChannelRegistry, UnknownKindThrows) {
    EXPECT_THROW(makeChannel({"holograms-over-carrier-pigeon", {}}),
                 std::invalid_argument);
    EXPECT_THROW(listChannelParams("nope"), std::invalid_argument);
}

TEST(ChannelRegistry, UnknownParamThrows) {
    EXPECT_THROW(makeChannel({"keypoint", {{"reconResoluton", 24}}}),
                 std::invalid_argument);
}

TEST(ChannelRegistry, ModelBoundKindRequiresModel) {
    EXPECT_THROW(makeChannel({"vector", {}}), std::invalid_argument);
    EXPECT_NE(makeChannel({"vector", {{"latentDim", 8}, {"trainingFrames", 10}}},
                          &sharedModel()),
              nullptr);
}

TEST(ChannelRegistry, ListChannelParamsNamesOptionFields) {
    const auto params = listChannelParams("keypoint");
    EXPECT_NE(std::find(params.begin(), params.end(), "reconResolution"),
              params.end());
    EXPECT_NE(std::find(params.begin(), params.end(), "compressPayload"),
              params.end());
}

}  // namespace
}  // namespace semholo::core
