#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/mesh/metrics.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 40};
    return model;
}

FrameContext frameFor(body::MotionKind kind, double t) {
    FrameContext ctx;
    ctx.pose = body::MotionGenerator(kind, sharedModel().shape()).poseAt(t);
    ctx.pose.frameId = 3;
    ctx.model = &sharedModel();
    return ctx;
}

VectorChannelOptions fastOptions() {
    VectorChannelOptions opt;
    opt.latentDim = 24;
    opt.trainingFrames = 30;
    opt.trainingMotion = body::MotionKind::Talk;
    return opt;
}

TEST(VectorChannel, PayloadIsLatentSized) {
    // The payload is the latent vector (2 bytes per kept component plus
    // a 4-byte frame id); the trained basis keeps at most latentDim and
    // at least the handful of components the training motion spans.
    auto channel = makeVectorChannel(sharedModel(), fastOptions());
    const auto encoded = channel->encode(frameFor(body::MotionKind::Talk, 0.4));
    EXPECT_LE(encoded.bytes(), 4u + 24u * 2u);
    EXPECT_GE(encoded.bytes(), 4u + 4u * 2u);
}

TEST(VectorChannel, InDistributionReconstructionIsReasonable) {
    auto channel = makeVectorChannel(sharedModel(), fastOptions());
    const FrameContext ctx = frameFor(body::MotionKind::Talk, 0.5);
    const auto decoded = channel->decode(channel->encode(ctx));
    ASSERT_TRUE(decoded.valid);
    ASSERT_EQ(decoded.mesh.vertexCount(), sharedModel().templateMesh().vertexCount());
    const auto err = mesh::compareMeshes(ctx.groundTruth(), decoded.mesh, 5000);
    // The basis saw this motion family: centimetre-class error.
    EXPECT_LT(err.chamfer, 0.02);
}

TEST(VectorChannel, OutOfDistributionDegradesBadly) {
    // Section 2.2: vector semantics "yields poor visual quality" — the
    // linear basis fitted on talking cannot express a raised arm.
    auto channel = makeVectorChannel(sharedModel(), fastOptions());
    const FrameContext inDist = frameFor(body::MotionKind::Talk, 0.5);
    const FrameContext outDist = frameFor(body::MotionKind::Wave, 0.5);
    const auto inErr = mesh::compareMeshes(
        inDist.groundTruth(), channel->decode(channel->encode(inDist)).mesh, 4000);
    const auto outErr = mesh::compareMeshes(
        outDist.groundTruth(), channel->decode(channel->encode(outDist)).mesh, 4000);
    // The failure is localised (the raised arm), so the worst-case error
    // explodes while the body-averaged Chamfer still worsens measurably.
    EXPECT_GT(outErr.hausdorff, inErr.hausdorff * 2.0);
    EXPECT_GT(outErr.chamfer, inErr.chamfer * 1.2);
}

TEST(VectorChannel, MoreComponentsLessError) {
    VectorChannelOptions small = fastOptions(), large = fastOptions();
    small.latentDim = 4;
    large.latentDim = 24;
    auto chSmall = makeVectorChannel(sharedModel(), small);
    auto chLarge = makeVectorChannel(sharedModel(), large);
    const FrameContext ctx = frameFor(body::MotionKind::Talk, 0.8);
    const auto errSmall =
        mesh::compareMeshes(ctx.groundTruth(),
                            chSmall->decode(chSmall->encode(ctx)).mesh, 4000)
            .chamfer;
    const auto errLarge =
        mesh::compareMeshes(ctx.groundTruth(),
                            chLarge->decode(chLarge->encode(ctx)).mesh, 4000)
            .chamfer;
    EXPECT_LT(errLarge, errSmall);
}

TEST(VectorChannel, WrongSubjectRejected) {
    auto channel = makeVectorChannel(sharedModel(), fastOptions());
    const body::BodyModel other{body::ShapeParams{}, 24};  // different topology
    FrameContext ctx;
    ctx.pose = body::Pose{};
    ctx.model = &other;
    const auto encoded = channel->encode(ctx);
    EXPECT_TRUE(encoded.data.empty());
    EXPECT_FALSE(channel->decode(encoded).valid);
}

TEST(VectorChannel, CorruptPayloadRejected) {
    auto channel = makeVectorChannel(sharedModel(), fastOptions());
    EncodedFrame bogus;
    bogus.data.assign(7, 0x11);
    EXPECT_FALSE(channel->decode(bogus).valid);
}

TEST(FoveatedChannel, SaccadicOmissionShrinksPayload) {
    FoveatedOptions opt;
    opt.fovealRadiusDeg = 12.0;
    auto channel = makeFoveatedChannel(opt);
    FrameContext ctx = frameFor(body::MotionKind::Talk, 0.4);
    ctx.viewerHead = {geom::Quat::identity(), {0.0f, 0.2f, -2.5f}};

    ctx.viewerGazeState = gaze::EyeMovement::Fixation;
    const auto fixated = channel->encode(ctx);
    ctx.viewerGazeState = gaze::EyeMovement::Saccade;
    ctx.viewerPredictedLandingDeg = {0.0f, 0.0f};
    const auto inSaccade = channel->encode(ctx);
    EXPECT_LT(inSaccade.bytes(), fixated.bytes());

    // Disabling omission removes the saving.
    opt.saccadicOmission = false;
    auto noOmission = makeFoveatedChannel(opt);
    const auto plain = noOmission->encode(ctx);
    EXPECT_GT(plain.bytes(), inSaccade.bytes());
}

TEST(FoveatedChannel, SaccadePrefetchAimsAtLanding) {
    // During a saccade towards the head, the reduced foveal stream must
    // cover the *landing* region, not the mid-flight gaze direction.
    FoveatedOptions opt;
    opt.fovealRadiusDeg = 10.0;
    auto channel = makeFoveatedChannel(opt);
    FrameContext ctx = frameFor(body::MotionKind::Idle, 0.0);
    ctx.viewerHead = {geom::Quat::identity(), {0.0f, 0.6f, -2.0f}};
    ctx.viewerGazeState = gaze::EyeMovement::Saccade;
    ctx.viewerGazeDeg = {25.0f, -10.0f};            // mid-flight, off-body
    ctx.viewerPredictedLandingDeg = {0.0f, 0.0f};   // landing on the head
    const auto decoded = channel->decode(channel->encode(ctx));
    ASSERT_TRUE(decoded.valid);
    // Head-region vertices present at full-mesh density: compare with a
    // no-fovea baseline.
    FoveatedOptions none = opt;
    none.fovealRadiusDeg = 0.0;
    auto plain = makeFoveatedChannel(none);
    const auto plainDecoded = plain->decode(plain->encode(ctx));
    auto headVerts = [](const mesh::TriMesh& m) {
        std::size_t n = 0;
        for (const auto& v : m.vertices)
            if (v.y > 0.5f) ++n;
        return n;
    };
    EXPECT_GT(headVerts(decoded.mesh), headVerts(plainDecoded.mesh));
}

}  // namespace
}  // namespace semholo::core
