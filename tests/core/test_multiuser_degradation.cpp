// Multi-user closed-loop degradation: the tick scheduler must give
// every conference participant the same per-frame feedback contract a
// single-user session has — per-user DegradationPolicy decisions that
// engage under congestion and improve delivery — while the serial and
// parallel engines stay byte-identical under TimingModel::Simulated at
// any worker count, with per-user link attribution that conserves
// packets across users.
// These tests intentionally exercise the deprecated
// runMultiUserSession shim: it must stay byte-identical to the
// conference engine it forwards to.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "semholo/core/session.hpp"

namespace semholo::core {
namespace {

// Coarse template: the LOD ladder caps rung sizes via ladderTriangles,
// so frame bytes (and the congestion dynamics the suite asserts) do not
// depend on the base resolution — but QEM ladder construction per
// channel does, and this suite runs under TSan in CI.
const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 28};
    return model;
}

std::vector<SemanticChannel*> raw(
    const std::vector<std::unique_ptr<SemanticChannel>>& owned) {
    std::vector<SemanticChannel*> out;
    for (const auto& c : owned) out.push_back(c.get());
    return out;
}

std::vector<std::unique_ptr<SemanticChannel>> adaptiveFleet(std::size_t n) {
    AdaptiveMeshOptions opt;
    opt.ladderTriangles = {400, 1500, 6000};
    std::vector<std::unique_ptr<SemanticChannel>> out;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(makeAdaptiveMeshChannel(opt));
    return out;
}

// A conference that the estimator-only loop cannot survive: the shared
// bottleneck queue is shallower than one top-rung frame, so top-rung
// frames tail-drop mid-message and produce no throughput sample, and a
// scripted outage + deep collapse keep killing frames outright. Only
// the failure-driven DegradationPolicy sees those events.
SessionConfig congestedConference(std::size_t frames = 90) {
    SessionConfig cfg;
    cfg.frames = frames;
    cfg.fps = 30.0;
    cfg.timing = TimingModel::Simulated;
    cfg.transfer.reliable = false;  // live streaming: late frames are dead
    cfg.link.bandwidth = net::BandwidthTrace::constant(8e6);
    cfg.link.propagationDelayS = 0.01;
    cfg.link.jitterStddevS = 0.0;
    cfg.link.lossRate = 0.0;
    cfg.link.queueCapacityBytes = 16 * 1024;
    cfg.link.faults.outages.push_back({1.0, 0.5});
    cfg.link.faults.collapses.push_back({2.0, 1.0, 0.08});
    return cfg;
}

DegradationConfig fastPolicy() {
    DegradationConfig cfg;
    cfg.enabled = true;
    cfg.maxLevel = 3;
    cfg.downgradeAfter = 2;
    cfg.upgradeAfter = 8;
    return cfg;
}

std::size_t deliveredTotal(const MultiSessionStats& stats) {
    std::size_t n = 0;
    for (const SessionStats& s : stats.perUser) n += s.deliveredFrames;
    return n;
}

TEST(MultiUserDegradation, PerUserAdaptationEngagesAndImprovesDelivery) {
    constexpr std::size_t kUsers = 3;
    SessionConfig off = congestedConference();
    SessionConfig on = congestedConference();
    on.degradation = fastPolicy();

    auto fleetOff = adaptiveFleet(kUsers);
    auto fleetOn = adaptiveFleet(kUsers);
    const auto statsOff =
        runMultiUserSession(raw(fleetOff), sharedModel(), off);
    const auto statsOn = runMultiUserSession(raw(fleetOn), sharedModel(), on);

    // Every participant's own policy reacted — the per-user loop exists.
    ASSERT_EQ(statsOn.fairness.size(), kUsers);
    for (const UserFairnessStats& f : statsOn.fairness) {
        EXPECT_GT(f.degradations, 0u) << "user " << f.user;
    }
    EXPECT_GT(statsOn.telemetry.counters.degradations, 0u);
    EXPECT_EQ(statsOff.telemetry.counters.degradations, 0u);
    // Closing the loop delivers strictly more frames through the same
    // faults for the conference as a whole.
    EXPECT_GT(deliveredTotal(statsOn), deliveredTotal(statsOff));
}

TEST(MultiUserDegradation, SerialAndParallelByteIdenticalUnderStress) {
    constexpr std::size_t kUsers = 3;
    SessionConfig cfg = congestedConference(45);
    cfg.degradation = fastPolicy();

    std::vector<MultiSessionStats> results;
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        auto fleet = adaptiveFleet(kUsers);
        cfg.workers = workers;
        results.push_back(runMultiUserSession(raw(fleet), sharedModel(), cfg));
    }

    const MultiSessionStats& serial = results[0];
    for (std::size_t r = 1; r < results.size(); ++r) {
        const MultiSessionStats& parallel = results[r];
        SCOPED_TRACE("workers slot " + std::to_string(r));
        ASSERT_EQ(serial.perUser.size(), parallel.perUser.size());
        for (std::size_t u = 0; u < serial.perUser.size(); ++u) {
            const auto& a = serial.perUser[u].frames;
            const auto& b = parallel.perUser[u].frames;
            ASSERT_EQ(a.size(), b.size()) << "user " << u;
            for (std::size_t f = 0; f < a.size(); ++f) {
                SCOPED_TRACE("user " + std::to_string(u) + " frame " +
                             std::to_string(f));
                EXPECT_EQ(a[f].bytes, b[f].bytes);
                EXPECT_EQ(a[f].delivered, b[f].delivered);
                EXPECT_EQ(a[f].droppedAtSender, b[f].droppedAtSender);
                EXPECT_EQ(a[f].droppedAtReceiver, b[f].droppedAtReceiver);
                EXPECT_DOUBLE_EQ(a[f].transferMs, b[f].transferMs);
                EXPECT_DOUBLE_EQ(a[f].e2eMs, b[f].e2eMs);
            }
            // Per-user degradation decisions are part of the contract.
            EXPECT_EQ(serial.fairness[u].degradations,
                      parallel.fairness[u].degradations);
            EXPECT_EQ(serial.fairness[u].upgrades, parallel.fairness[u].upgrades);
            EXPECT_EQ(serial.fairness[u].finalDegradationLevel,
                      parallel.fairness[u].finalDegradationLevel);
        }
        EXPECT_EQ(serial.telemetry.counters.degradations,
                  parallel.telemetry.counters.degradations);
        EXPECT_DOUBLE_EQ(serial.aggregateMbps, parallel.aggregateMbps);
        EXPECT_DOUBLE_EQ(serial.fairnessIndex, parallel.fairnessIndex);
    }
}

TEST(MultiUserDegradation, PacketConservationAcrossUsers) {
    constexpr std::size_t kUsers = 4;
    SessionConfig cfg = congestedConference(45);
    cfg.degradation = fastPolicy();
    cfg.link.lossRate = 0.05;  // exercise the loss path too

    auto fleet = adaptiveFleet(kUsers);
    const auto stats = runMultiUserSession(raw(fleet), sharedModel(), cfg);

    std::uint64_t packets = 0, delivered = 0, unrecovered = 0, bytes = 0;
    for (const SessionStats& s : stats.perUser) {
        const auto& c = s.telemetry.counters;
        // Per-user conservation: every packet attributed to this user
        // either reached the receiver or is accounted as unrecovered.
        EXPECT_EQ(c.packets, c.packetsDelivered + c.packetsUnrecovered);
        packets += c.packets;
        delivered += c.packetsDelivered;
        unrecovered += c.packetsUnrecovered;
        bytes += c.bytesSent;
    }
    // The per-user attribution is complete: the merged (shared-link)
    // totals are exactly the per-user sums.
    EXPECT_GT(packets, 0u);
    EXPECT_EQ(stats.telemetry.counters.packets, packets);
    EXPECT_EQ(stats.telemetry.counters.packetsDelivered, delivered);
    EXPECT_EQ(stats.telemetry.counters.packetsUnrecovered, unrecovered);
    EXPECT_EQ(stats.telemetry.counters.bytesSent, bytes);
    EXPECT_EQ(packets, delivered + unrecovered);
}

TEST(MultiUserDegradation, FairnessAccountingConsistent) {
    constexpr std::size_t kUsers = 3;
    SessionConfig cfg = congestedConference(45);
    cfg.degradation = fastPolicy();

    auto fleet = adaptiveFleet(kUsers);
    const auto stats = runMultiUserSession(raw(fleet), sharedModel(), cfg);

    ASSERT_EQ(stats.fairness.size(), kUsers);
    double shareSum = 0.0;
    for (std::size_t u = 0; u < kUsers; ++u) {
        const UserFairnessStats& f = stats.fairness[u];
        EXPECT_EQ(f.user, u);
        EXPECT_EQ(f.capturedFrames, cfg.frames);
        EXPECT_EQ(f.deliveredFrames, stats.perUser[u].deliveredFrames);
        EXPECT_NEAR(f.deliveryRatio,
                    static_cast<double>(f.deliveredFrames) /
                        static_cast<double>(cfg.frames),
                    1e-12);
        EXPECT_GE(f.bandwidthShare, 0.0);
        EXPECT_LE(f.bandwidthShare, 1.0);
        EXPECT_LE(f.finalDegradationLevel, cfg.degradation.maxLevel);
        shareSum += f.bandwidthShare;
    }
    EXPECT_NEAR(shareSum, 1.0, 1e-9);
    EXPECT_GT(stats.fairnessIndex, 0.0);
    EXPECT_LE(stats.fairnessIndex, 1.0 + 1e-12);

    // The JSON export carries the fairness block.
    const std::string json = toJsonValue(stats);
    EXPECT_NE(json.find("\"fairness_index\""), std::string::npos);
    EXPECT_NE(json.find("\"delivery_ratio\""), std::string::npos);
    EXPECT_NE(json.find("\"bandwidth_share\""), std::string::npos);
    EXPECT_NE(json.find("\"final_degradation_level\""), std::string::npos);
    EXPECT_NE(json.find("\"packets_delivered\""), std::string::npos);
}

TEST(MultiUserDegradation, DisabledPolicyKeepsCountersZeroAndFairnessFilled) {
    constexpr std::size_t kUsers = 2;
    const SessionConfig cfg = congestedConference(30);

    auto fleet = adaptiveFleet(kUsers);
    const auto stats = runMultiUserSession(raw(fleet), sharedModel(), cfg);
    ASSERT_EQ(stats.fairness.size(), kUsers);
    for (const UserFairnessStats& f : stats.fairness) {
        EXPECT_EQ(f.degradations, 0u);
        EXPECT_EQ(f.upgrades, 0u);
        EXPECT_EQ(f.finalDegradationLevel, 0u);
    }
}

}  // namespace
}  // namespace semholo::core
