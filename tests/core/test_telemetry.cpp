#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "semholo/core/telemetry.hpp"

namespace semholo::core::telemetry {
namespace {

TEST(Histogram, NearestRankPercentiles) {
    Histogram h;
    for (int v = 1; v <= 100; ++v) h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.p95(), 95.0);
    EXPECT_DOUBLE_EQ(h.p99(), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsSafe) {
    const Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.p95(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, MergeConcatenatesSamples) {
    Histogram a, b;
    a.record(1.0);
    a.record(2.0);
    b.record(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    // Percentiles stay correct after interleaved record/merge.
    a.record(0.5);
    EXPECT_DOUBLE_EQ(a.percentile(0), 0.5);
}

// Regression test for the lazy-sort data race: percentile() on a const
// Histogram used to rebuild the sorted cache without synchronisation, so
// concurrent readers (the parallel engine's telemetry aggregation) raced
// on sorted_/sortedValid_. All accessors are now internally locked; this
// test drives concurrent record + percentile + merge + copy and is run
// under TSan in CI (ctest -R Histogram).
TEST(Histogram, ConcurrentRecordPercentileAndMergeAreSafe) {
    Histogram shared;
    for (int v = 1; v <= 64; ++v) shared.record(v);

    constexpr int kThreads = 8;
    constexpr int kIters = 400;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&shared, t] {
            Histogram local;
            for (int i = 0; i < kIters; ++i) {
                switch (t % 4) {
                    case 0:  // writer
                        shared.record(static_cast<double>(i % 100));
                        break;
                    case 1: {  // percentile reader (lazy-sort path)
                        const double p = shared.percentile(95);
                        EXPECT_GE(p, 0.0);
                        break;
                    }
                    case 2:  // merger
                        local.record(static_cast<double>(i));
                        shared.merge(local);
                        break;
                    default: {  // copier + cheap readers
                        const Histogram snapshot = shared;
                        EXPECT_LE(snapshot.min(), snapshot.max());
                        EXPECT_GE(shared.count(), 64u);
                        break;
                    }
                }
            }
        });
    }
    for (std::thread& th : threads) th.join();

    EXPECT_GE(shared.count(), 64u);
    EXPECT_DOUBLE_EQ(shared.min(), 0.0);
    // The cache still converges to correct order once quiescent.
    EXPECT_GE(shared.percentile(100), shared.percentile(50));
}

TEST(Histogram, SelfMergeDoublesSamples) {
    Histogram h;
    h.record(1.0);
    h.record(3.0);
    h.merge(h);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 3.0);
}

TEST(Counters, MergeSumsEveryField) {
    Counters a, b;
    a.framesCaptured = 3;
    a.retransmissions = 2;
    a.packetsDelivered = 9;
    b.framesCaptured = 4;
    b.queueDrops = 5;
    b.packetsDelivered = 11;
    a.merge(b);
    EXPECT_EQ(a.framesCaptured, 7u);
    EXPECT_EQ(a.retransmissions, 2u);
    EXPECT_EQ(a.queueDrops, 5u);
    EXPECT_EQ(a.packetsDelivered, 20u);
}

TEST(SessionTelemetryJson, ContainsStagesAndCounters) {
    SessionTelemetry t;
    t.encodeMs.record(1.5);
    t.encodeMs.record(2.5);
    t.counters.framesCaptured = 2;
    t.counters.retransmissions = 1;
    const std::string json = t.toJson();
    EXPECT_NE(json.find("\"stages\""), std::string::npos);
    EXPECT_NE(json.find("\"encode_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"retransmissions\":1"), std::string::npos);
    EXPECT_NE(json.find("\"frames_captured\":2"), std::string::npos);
}

TEST(SessionTelemetryJson, WritesFile) {
    SessionTelemetry t;
    t.decodeMs.record(4.0);
    const std::string path = "telemetry_test_out.json";
    ASSERT_TRUE(t.writeJson(path));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("\"decode_ms\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(JsonWriter, NestedObjectsArraysAndEscaping) {
    JsonWriter w;
    w.beginObject()
        .field("name", std::string("multi\"user\n"))
        .field("speedup", 2.5)
        .beginArray("rows")
        .beginObject()
        .field("users", std::uint64_t{8})
        .endObject()
        .beginObject()
        .field("users", std::uint64_t{4})
        .endObject()
        .endArray()
        .raw("telemetry", "{\"inner\":1}")
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"multi\\\"user\\n\",\"speedup\":2.5,"
              "\"rows\":[{\"users\":8},{\"users\":4}],"
              "\"telemetry\":{\"inner\":1}}");
}

}  // namespace
}  // namespace semholo::core::telemetry
