#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "semholo/core/telemetry.hpp"

namespace semholo::core::telemetry {
namespace {

TEST(Histogram, NearestRankPercentiles) {
    Histogram h;
    for (int v = 1; v <= 100; ++v) h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.p95(), 95.0);
    EXPECT_DOUBLE_EQ(h.p99(), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyIsSafe) {
    const Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.p95(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, MergeConcatenatesSamples) {
    Histogram a, b;
    a.record(1.0);
    a.record(2.0);
    b.record(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    // Percentiles stay correct after interleaved record/merge.
    a.record(0.5);
    EXPECT_DOUBLE_EQ(a.percentile(0), 0.5);
}

TEST(Counters, MergeSumsEveryField) {
    Counters a, b;
    a.framesCaptured = 3;
    a.retransmissions = 2;
    b.framesCaptured = 4;
    b.queueDrops = 5;
    a.merge(b);
    EXPECT_EQ(a.framesCaptured, 7u);
    EXPECT_EQ(a.retransmissions, 2u);
    EXPECT_EQ(a.queueDrops, 5u);
}

TEST(SessionTelemetryJson, ContainsStagesAndCounters) {
    SessionTelemetry t;
    t.encodeMs.record(1.5);
    t.encodeMs.record(2.5);
    t.counters.framesCaptured = 2;
    t.counters.retransmissions = 1;
    const std::string json = t.toJson();
    EXPECT_NE(json.find("\"stages\""), std::string::npos);
    EXPECT_NE(json.find("\"encode_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"retransmissions\":1"), std::string::npos);
    EXPECT_NE(json.find("\"frames_captured\":2"), std::string::npos);
}

TEST(SessionTelemetryJson, WritesFile) {
    SessionTelemetry t;
    t.decodeMs.record(4.0);
    const std::string path = "telemetry_test_out.json";
    ASSERT_TRUE(t.writeJson(path));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("\"decode_ms\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(JsonWriter, NestedObjectsArraysAndEscaping) {
    JsonWriter w;
    w.beginObject()
        .field("name", std::string("multi\"user\n"))
        .field("speedup", 2.5)
        .beginArray("rows")
        .beginObject()
        .field("users", std::uint64_t{8})
        .endObject()
        .beginObject()
        .field("users", std::uint64_t{4})
        .endObject()
        .endArray()
        .raw("telemetry", "{\"inner\":1}")
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"multi\\\"user\\n\",\"speedup\":2.5,"
              "\"rows\":[{\"users\":8},{\"users\":4}],"
              "\"telemetry\":{\"inner\":1}}");
}

}  // namespace
}  // namespace semholo::core::telemetry
