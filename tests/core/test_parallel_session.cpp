// The parallel engine's contract: under TimingModel::Simulated,
// workers=1 (exact legacy serial path) and workers=N produce identical
// per-frame byte/delivery/drop sequences for every registered channel
// kind, identical Chamfer samples, and identical aggregates.
// These tests intentionally exercise the deprecated
// runMultiUserSession shim: it must stay byte-identical to the
// conference engine it forwards to.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include <gtest/gtest.h>

#include <memory>

#include "semholo/core/session.hpp"
#include "semholo/core/thread_pool.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 24};
    return model;
}

// Cheap parameterisations so every kind runs in test time.
ChannelSpec cheapSpec(const std::string& kind) {
    ChannelSpec spec{kind, {}};
    if (kind == "keypoint" || kind == "text")
        spec.params = {{"reconResolution", 12}};
    else if (kind == "foveated")
        spec.params = {{"peripheralResolution", 12}};
    else if (kind == "image")
        spec.params = {{"viewCount", 1},    {"imageWidth", 8},
                       {"imageHeight", 6},  {"pretrainSteps", 2},
                       {"fineTuneSteps", 1}};
    else if (kind == "vector")
        spec.params = {{"latentDim", 8}, {"trainingFrames", 10}};
    return spec;
}

SessionConfig deterministicConfig(std::size_t frames) {
    SessionConfig cfg;
    cfg.frames = frames;
    cfg.timing = TimingModel::Simulated;
    cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
    cfg.link.lossRate = 0.02;  // exercise the loss/retransmission path
    return cfg;
}

void expectIdenticalFrames(const SessionStats& a, const SessionStats& b,
                           const std::string& label) {
    ASSERT_EQ(a.frames.size(), b.frames.size()) << label;
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
        SCOPED_TRACE(label + " frame " + std::to_string(f));
        EXPECT_EQ(a.frames[f].frameId, b.frames[f].frameId);
        EXPECT_EQ(a.frames[f].bytes, b.frames[f].bytes);
        EXPECT_EQ(a.frames[f].delivered, b.frames[f].delivered);
        EXPECT_EQ(a.frames[f].decoded, b.frames[f].decoded);
        EXPECT_EQ(a.frames[f].droppedAtSender, b.frames[f].droppedAtSender);
        EXPECT_EQ(a.frames[f].droppedAtReceiver, b.frames[f].droppedAtReceiver);
        EXPECT_DOUBLE_EQ(a.frames[f].transferMs, b.frames[f].transferMs);
        EXPECT_DOUBLE_EQ(a.frames[f].e2eMs, b.frames[f].e2eMs);
        if (std::isnan(a.frames[f].chamfer))
            EXPECT_TRUE(std::isnan(b.frames[f].chamfer));
        else
            EXPECT_DOUBLE_EQ(a.frames[f].chamfer, b.frames[f].chamfer);
    }
}

TEST(ParallelSession, MultiUserDeterministicAcrossWorkerCountsAllKinds) {
    for (const std::string& kind : listChannelKinds()) {
        SCOPED_TRACE(kind);
        SessionConfig cfg = deterministicConfig(5);

        MultiSessionStats results[2];
        int slot = 0;
        for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
            // Fresh channels per engine run: identical construction from
            // the same spec, so any divergence is the engine's.
            std::vector<std::unique_ptr<SemanticChannel>> owned;
            std::vector<SemanticChannel*> channels;
            for (int u = 0; u < 2; ++u) {
                owned.push_back(makeChannel(cheapSpec(kind), &sharedModel()));
                channels.push_back(owned.back().get());
            }
            cfg.workers = workers;
            results[slot++] = runMultiUserSession(channels, sharedModel(), cfg);
        }

        ASSERT_EQ(results[0].perUser.size(), results[1].perUser.size());
        for (std::size_t u = 0; u < results[0].perUser.size(); ++u)
            expectIdenticalFrames(results[0].perUser[u], results[1].perUser[u],
                                  kind + " user " + std::to_string(u));
        EXPECT_DOUBLE_EQ(results[0].aggregateMbps, results[1].aggregateMbps);
        EXPECT_DOUBLE_EQ(results[0].meanE2eMs, results[1].meanE2eMs);
    }
}

TEST(ParallelSession, SingleUserDeterministicWithParallelQualityEval) {
    SessionConfig cfg = deterministicConfig(8);
    cfg.qualityEvalInterval = 2;
    cfg.qualitySamples = 500;

    SessionStats results[2];
    int slot = 0;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        auto channel = makeChannel(cheapSpec("keypoint"));
        cfg.workers = workers;
        results[slot++] = runSession(*channel, sharedModel(), cfg);
    }
    expectIdenticalFrames(results[0], results[1], "single-user keypoint");
    // Both engines evaluated the same frames and agree on the mean.
    EXPECT_FALSE(std::isnan(results[0].meanChamfer));
    EXPECT_DOUBLE_EQ(results[0].meanChamfer, results[1].meanChamfer);
}

TEST(ParallelSession, SenderDropsAreDeterministicUnderSimulatedTiming) {
    // simulatedDetectMs of 50 ms against a 30 FPS capture clock forces
    // every other frame to drop at the sender, independent of wall time.
    SessionConfig cfg = deterministicConfig(8);
    cfg.dropWhenBusy = true;
    ChannelSpec spec{"keypoint",
                     {{"reconResolution", 12}, {"simulatedDetectMs", 50.0}}};

    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        std::vector<std::unique_ptr<SemanticChannel>> owned;
        std::vector<SemanticChannel*> channels;
        owned.push_back(makeChannel(spec));
        channels.push_back(owned.back().get());
        cfg.workers = workers;
        const auto stats = runMultiUserSession(channels, sharedModel(), cfg);
        const auto& frames = stats.perUser[0].frames;
        ASSERT_EQ(frames.size(), 8u);
        for (std::size_t f = 0; f < frames.size(); ++f) {
            // 50 ms busy > 33.3 ms frame interval: frames 1, 3, 5, 7 drop.
            EXPECT_EQ(frames[f].droppedAtSender, f % 2 == 1)
                << "workers=" << workers << " frame " << f;
        }
    }
}

TEST(ParallelSession, ChannelResetInvokedBySessionStart) {
    // Text deltas are stateful: the first encode after reset() is a
    // keyframe. Reusing one channel across sessions must re-key, which
    // only happens if the engine calls reset().
    auto channel = makeChannel(cheapSpec("text"));
    SessionConfig cfg = deterministicConfig(3);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        cfg.workers = workers;
        const auto first = runSession(*channel, sharedModel(), cfg);
        const auto second = runSession(*channel, sharedModel(), cfg);
        ASSERT_FALSE(first.frames.empty());
        ASSERT_FALSE(second.frames.empty());
        // Identical sessions byte-for-byte implies state was reset.
        for (std::size_t f = 0; f < first.frames.size(); ++f)
            EXPECT_EQ(first.frames[f].bytes, second.frames[f].bytes)
                << "workers=" << workers << " frame " << f;
    }
}

TEST(ParallelSession, TelemetryPopulatedByBothEngines) {
    SessionConfig cfg = deterministicConfig(6);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        std::vector<std::unique_ptr<SemanticChannel>> owned;
        std::vector<SemanticChannel*> channels;
        for (int u = 0; u < 2; ++u) {
            owned.push_back(makeChannel(cheapSpec("keypoint")));
            channels.push_back(owned.back().get());
        }
        cfg.workers = workers;
        const auto stats = runMultiUserSession(channels, sharedModel(), cfg);
        const auto& t = stats.telemetry;
        EXPECT_EQ(t.counters.framesCaptured, 12u) << "workers=" << workers;
        EXPECT_GT(t.counters.packets, 0u);
        EXPECT_GT(t.counters.bytesSent, 0u);
        EXPECT_EQ(t.encodeMs.count(), t.bytesPerFrame.count());
        EXPECT_GT(t.e2eMs.count(), 0u);
        EXPECT_EQ(t.queueDepthBytes.count(), t.encodeMs.count());
        EXPECT_GE(t.encodeMs.p99(), t.encodeMs.p50());
        const std::string json = t.toJson();
        EXPECT_NE(json.find("\"encode_ms\""), std::string::npos);
        EXPECT_NE(json.find("\"p95\""), std::string::npos);
        EXPECT_NE(json.find("\"queue_drops\""), std::string::npos);
    }
}

TEST(ThreadPool, RunsSubmittedTasksAndParallelFor) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);

    std::vector<int> out(64, 0);
    pool.parallelFor(out.size(), [&](std::size_t i) {
        out[i] = static_cast<int>(i) * 2;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 2);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

}  // namespace
}  // namespace semholo::core
