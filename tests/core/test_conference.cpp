// SFU conference engine: the ConferenceConfig entry API, the downlink
// fan-out accounting (per-viewer bytes sum to the server totals, packet
// conservation on every uplink and downlink), the serial/parallel
// byte-identity contract with downlinks and arbitration enabled, the
// subscription ladder, the BandwidthArbiter allocation properties, and
// the legacy runMultiUserSession shim's equivalence to the conference
// engine.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "semholo/core/conference.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 24};
    return model;
}

// A congested conference: a shared uplink too narrow for every
// adaptive-mesh participant's top rung, faults included, degradation on.
ConferenceConfig congestedConference(std::size_t users,
                                     ArbiterStrategy strategy,
                                     bool downlinks) {
    ConferenceConfig conf;
    conf.session.frames = 40;
    conf.session.fps = 30.0;
    conf.session.timing = TimingModel::Simulated;
    conf.session.transfer.reliable = false;
    conf.session.link.bandwidth = net::BandwidthTrace::constant(8e6);
    conf.session.link.propagationDelayS = 0.01;
    conf.session.link.jitterStddevS = 0.0;
    conf.session.link.queueCapacityBytes = 16 * 1024;
    conf.session.link.faults.outages.push_back({0.4, 0.3});
    conf.session.degradation.enabled = true;
    conf.session.degradation.maxLevel = 3;
    conf.session.degradation.downgradeAfter = 2;
    conf.session.degradation.upgradeAfter = 8;
    conf.arbiter.strategy = strategy;
    conf.enableDownlinks = downlinks;
    conf.downlink.bandwidth = net::BandwidthTrace::constant(50e6);
    conf.downlink.jitterStddevS = 0.0;
    conf.downlink.queueCapacityBytes = 512 * 1024;
    conf.participants.resize(users);
    for (auto& p : conf.participants)
        p.channel = {"adaptive-mesh", {}};
    return conf;
}

void expectSameFrames(const MultiSessionStats& a, const MultiSessionStats& b) {
    ASSERT_EQ(a.perUser.size(), b.perUser.size());
    for (std::size_t u = 0; u < a.perUser.size(); ++u) {
        const auto& fa = a.perUser[u].frames;
        const auto& fb = b.perUser[u].frames;
        ASSERT_EQ(fa.size(), fb.size()) << "user " << u;
        for (std::size_t f = 0; f < fa.size(); ++f) {
            EXPECT_EQ(fa[f].bytes, fb[f].bytes) << "user " << u << " frame " << f;
            EXPECT_EQ(fa[f].delivered, fb[f].delivered)
                << "user " << u << " frame " << f;
            EXPECT_EQ(fa[f].droppedAtSender, fb[f].droppedAtSender)
                << "user " << u << " frame " << f;
            EXPECT_EQ(fa[f].droppedAtReceiver, fb[f].droppedAtReceiver)
                << "user " << u << " frame " << f;
        }
    }
}

// ---- Entry API -------------------------------------------------------------

TEST(Conference, EmptyConferenceYieldsEmptyStats) {
    ConferenceConfig conf;
    const auto stats = runConference(conf, sharedModel());
    EXPECT_TRUE(stats.perUser.empty());
    EXPECT_TRUE(stats.downlinks.empty());
    EXPECT_DOUBLE_EQ(stats.fairnessIndex, 1.0);
}

TEST(Conference, ParticipantWithoutChannelThrows) {
    ConferenceConfig conf;
    conf.participants.resize(1);  // neither spec kind nor factory
    EXPECT_THROW(runConference(conf, sharedModel()), std::invalid_argument);
}

TEST(Conference, ChannelFactoryOverridesSpec) {
    ConferenceConfig conf;
    conf.session.frames = 4;
    conf.session.timing = TimingModel::Simulated;
    conf.session.link.bandwidth = net::BandwidthTrace::constant(25e6);
    conf.session.link.jitterStddevS = 0.0;
    conf.enableDownlinks = false;
    conf.participants.resize(1);
    conf.participants[0].channel = {"does-not-exist", {}};  // would throw
    bool factoryUsed = false;
    conf.participants[0].channelFactory =
        [&factoryUsed](const body::BodyModel&) {
            factoryUsed = true;
            return makeKeypointChannel({});
        };
    const auto stats = runConference(conf, sharedModel());
    EXPECT_TRUE(factoryUsed);
    EXPECT_EQ(stats.perUser.size(), 1u);
    EXPECT_GT(stats.perUser[0].deliveredFrames, 0u);
}

TEST(Conference, LegacyShimMatchesConferenceEngine) {
    // The deprecated runMultiUserSession must be the conference engine
    // with the pre-SFU topology: shared uplink, no downlinks, no
    // arbiter — byte-identical frames, not just similar aggregates.
    SessionConfig base;
    base.frames = 12;
    base.timing = TimingModel::Simulated;
    base.link.bandwidth = net::BandwidthTrace::constant(25e6);
    base.link.jitterStddevS = 0.0;
    base.degradation.enabled = true;

    std::vector<std::unique_ptr<SemanticChannel>> owned;
    std::vector<SemanticChannel*> channels;
    for (std::size_t u = 0; u < 3; ++u) {
        owned.push_back(makeKeypointChannel({}));
        channels.push_back(owned.back().get());
    }
    const auto legacy = runMultiUserSession(channels, sharedModel(), base);

    ConferenceConfig conf;
    conf.session = base;
    conf.sharedUplink = true;
    conf.enableDownlinks = false;
    conf.participants.resize(3);
    for (auto& p : conf.participants) p.channel = {"keypoint", {}};
    const auto modern = runConference(conf, sharedModel());

    expectSameFrames(legacy, modern);
    EXPECT_TRUE(legacy.downlinks.empty());
    EXPECT_TRUE(modern.downlinks.empty());
    EXPECT_DOUBLE_EQ(legacy.fairnessIndex, modern.fairnessIndex);
}

// ---- Downlink fan-out accounting -------------------------------------------

TEST(Conference, DownlinkBytesSumToServerFanoutTotals) {
    const auto stats = runConference(
        congestedConference(3, ArbiterStrategy::MaxMin, true), sharedModel());
    ASSERT_EQ(stats.downlinks.size(), 3u);

    std::uint64_t bytes = 0, frames = 0;
    for (const DownlinkStats& d : stats.downlinks) {
        // Each viewer subscribes to the other N-1 streams by default.
        ASSERT_EQ(d.streams.size(), 2u);
        std::uint64_t streamBytes = 0, streamFrames = 0;
        for (const DownlinkStreamStats& s : d.streams) {
            EXPECT_NE(s.source, d.viewer);
            streamBytes += s.bytesForwarded;
            streamFrames += s.framesForwarded;
        }
        // Per-viewer totals are the sums of their per-stream entries.
        EXPECT_EQ(streamBytes, d.bytesForwarded);
        EXPECT_EQ(streamFrames, d.framesForwarded);
        bytes += d.bytesForwarded;
        frames += d.framesForwarded;
    }
    EXPECT_EQ(bytes, stats.serverFanoutBytes);
    EXPECT_EQ(frames, stats.serverFanoutFrames);
    EXPECT_GT(stats.serverFanoutFrames, 0u);

    // Every delivered uplink frame is forwarded to the other 2 viewers.
    std::uint64_t delivered = 0;
    for (const auto& u : stats.perUser) delivered += u.deliveredFrames;
    EXPECT_EQ(stats.serverFanoutFrames, delivered * 2);

    // fanoutShare partitions the fan-out bytes.
    double share = 0.0;
    for (const DownlinkStats& d : stats.downlinks) share += d.fanoutShare;
    EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(Conference, PacketConservationOnEveryUplinkAndDownlink) {
    const auto stats = runConference(
        congestedConference(3, ArbiterStrategy::None, true), sharedModel());
    for (const SessionStats& u : stats.perUser) {
        const auto& c = u.telemetry.counters;
        EXPECT_GT(c.packets, 0u);
        EXPECT_EQ(c.packets, c.packetsDelivered + c.packetsUnrecovered);
    }
    for (const DownlinkStats& d : stats.downlinks) {
        EXPECT_GT(d.packets, 0u);
        EXPECT_EQ(d.packets, d.packetsDelivered + d.packetsUnrecovered);
        for (const DownlinkStreamStats& s : d.streams)
            EXPECT_EQ(s.packets, s.packetsDelivered + s.packetsUnrecovered);
    }
}

TEST(Conference, PerUserUplinksConservePacketsToo) {
    auto conf = congestedConference(3, ArbiterStrategy::MaxMin, true);
    conf.sharedUplink = false;
    net::LinkConfig narrow = conf.session.link;
    narrow.bandwidth = net::BandwidthTrace::constant(2e6);
    conf.participants[1].uplink = narrow;  // one user on a worse access link
    const auto stats = runConference(conf, sharedModel());
    for (const SessionStats& u : stats.perUser) {
        const auto& c = u.telemetry.counters;
        EXPECT_EQ(c.packets, c.packetsDelivered + c.packetsUnrecovered);
    }
}

// ---- Engine byte-identity with the full SFU topology -----------------------

TEST(Conference, SerialAndParallelIdenticalWithDownlinksAndArbiter) {
    std::vector<MultiSessionStats> results;
    for (const std::size_t workers : {1u, 2u, 8u}) {
        auto conf = congestedConference(4, ArbiterStrategy::MaxMin, true);
        conf.session.workers = workers;
        results.push_back(runConference(conf, sharedModel()));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        expectSameFrames(results[0], results[i]);
        ASSERT_EQ(results[0].downlinks.size(), results[i].downlinks.size());
        for (std::size_t v = 0; v < results[0].downlinks.size(); ++v) {
            const DownlinkStats& a = results[0].downlinks[v];
            const DownlinkStats& b = results[i].downlinks[v];
            EXPECT_EQ(a.bytesForwarded, b.bytesForwarded) << "viewer " << v;
            EXPECT_EQ(a.bytesDelivered, b.bytesDelivered) << "viewer " << v;
            EXPECT_EQ(a.packets, b.packets) << "viewer " << v;
        }
        EXPECT_EQ(results[0].serverFanoutBytes, results[i].serverFanoutBytes);
    }
}

// ---- Subscription ladder ---------------------------------------------------

TEST(Conference, SubscriptionLadderDefaultsToEverythingFullQuality) {
    SubscriptionLadder ladder;
    EXPECT_EQ(ladder.scaleForPosition(0), 1.0);
    EXPECT_EQ(ladder.scaleForPosition(41), 1.0);
}

TEST(Conference, SubscriptionLadderRungsAndUnsubscribedTail) {
    SubscriptionLadder ladder;
    ladder.rungs = {{2, 1.0}, {1, 0.25}};  // 2 full, 1 thinned, rest dropped
    EXPECT_EQ(ladder.scaleForPosition(0), 1.0);
    EXPECT_EQ(ladder.scaleForPosition(1), 1.0);
    EXPECT_EQ(ladder.scaleForPosition(2), 0.25);
    EXPECT_FALSE(ladder.scaleForPosition(3).has_value());
}

TEST(Conference, SubscriptionLadderThinsDownlinkBytes) {
    auto conf = congestedConference(3, ArbiterStrategy::None, true);
    // Viewer 0 takes one full stream and one at a quarter of the bytes;
    // viewer 1 unsubscribes from everything past the first stream.
    conf.participants[0].subscription.rungs = {{1, 1.0}, {1, 0.25}};
    conf.participants[1].subscription.rungs = {{1, 1.0}};
    const auto stats = runConference(conf, sharedModel());

    const DownlinkStats& v0 = stats.downlinks[0];
    ASSERT_EQ(v0.streams.size(), 2u);
    // Same source frames were forwarded to both subscriptions, so the
    // thinned stream carries ~25% of the full stream's per-frame bytes.
    const DownlinkStats& v2 = stats.downlinks[2];  // default: both full
    ASSERT_EQ(v2.streams.size(), 2u);

    const DownlinkStats& v1 = stats.downlinks[1];
    ASSERT_EQ(v1.streams.size(), 1u);  // unsubscribed tail dropped
    EXPECT_EQ(v1.streams[0].source, 0u);

    // The quarter-scale subscription forwards fewer bytes than the same
    // source at full quality on viewer 2's downlink.
    const DownlinkStreamStats* v0thin = nullptr;
    for (const auto& s : v0.streams)
        if (s.source == 2) v0thin = &s;
    ASSERT_NE(v0thin, nullptr);
    const DownlinkStreamStats* v2full = nullptr;
    for (const auto& s : v2.streams)
        if (s.source == 1) v2full = &s;
    ASSERT_NE(v2full, nullptr);
    EXPECT_LT(v0thin->bytesForwarded,
              v0.streams[0].bytesForwarded);  // thinner than its full peer
}

// ---- Arbiter fairness ------------------------------------------------------

TEST(Conference, MaxMinArbiterEqualizesCongestedDelivery) {
    const auto off = runConference(
        congestedConference(3, ArbiterStrategy::None, false), sharedModel());
    const auto on = runConference(
        congestedConference(3, ArbiterStrategy::MaxMin, false), sharedModel());
    // Arbitration must not reduce aggregate delivery and must report the
    // targets it handed out.
    std::size_t offDelivered = 0, onDelivered = 0;
    for (const auto& u : off.perUser) offDelivered += u.deliveredFrames;
    for (const auto& u : on.perUser) onDelivered += u.deliveredFrames;
    EXPECT_GE(onDelivered, offDelivered);
    EXPECT_GE(on.fairnessIndex, off.fairnessIndex);
    for (const UserFairnessStats& f : on.fairness)
        EXPECT_GT(f.targetRateMbps, 0.0);
    for (const UserFairnessStats& f : off.fairness)
        EXPECT_DOUBLE_EQ(f.targetRateMbps, 0.0);
}

// ---- BandwidthArbiter::allocate unit tests ---------------------------------

TEST(ConferenceArbiter, MaxMinSplitsEquallyAmongGreedyUsers) {
    BandwidthArbiter arbiter({ArbiterStrategy::MaxMin, 0.9, 0.0});
    const auto t = arbiter.allocate(9e6, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0});
    ASSERT_EQ(t.size(), 3u);
    for (double x : t) EXPECT_NEAR(x, 2.7e6, 1.0);
}

TEST(ConferenceArbiter, MaxMinRedistributesUnusedShare) {
    BandwidthArbiter arbiter({ArbiterStrategy::MaxMin, 1.0, 0.0});
    // User 0 only wants 1 Mbps of the 9; the rest split the remainder.
    const auto t = arbiter.allocate(9e6, {1e6, 0.0, 0.0}, {0.0, 0.0, 0.0});
    EXPECT_NEAR(t[0], 1e6, 1.0);
    EXPECT_NEAR(t[1], 4e6, 1.0);
    EXPECT_NEAR(t[2], 4e6, 1.0);
}

TEST(ConferenceArbiter, AllocationsRespectTheFloor) {
    BandwidthArbiter arbiter({ArbiterStrategy::MaxMin, 0.9, 64e3});
    // Outage: zero capacity still yields the probe floor.
    const auto t = arbiter.allocate(0.0, {1e6, 1e6}, {0.0, 0.0});
    for (double x : t) EXPECT_DOUBLE_EQ(x, 64e3);
}

TEST(ConferenceArbiter, ProportionalFairFavorsStarvedUsers) {
    BandwidthArbiter arbiter({ArbiterStrategy::ProportionalFair, 1.0, 0.0});
    // User 0 has been getting 8 Mbps, user 1 only 1 Mbps: the starved
    // user receives the larger grant.
    const auto t = arbiter.allocate(9e6, {0.0, 0.0}, {8e6, 1e6});
    EXPECT_GT(t[1], t[0]);
    EXPECT_NEAR(t[0] + t[1], 9e6, 1.0);
}

TEST(ConferenceArbiter, NoneHandsEveryoneTheWholeBudget) {
    BandwidthArbiter arbiter({ArbiterStrategy::None, 0.5, 0.0});
    const auto t = arbiter.allocate(10e6, {0.0, 0.0}, {0.0, 0.0});
    for (double x : t) EXPECT_DOUBLE_EQ(x, 5e6);
}

}  // namespace
}  // namespace semholo::core
