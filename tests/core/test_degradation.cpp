// DegradationPolicy unit behaviour plus the closed loop end-to-end:
// under injected link faults a degradation-enabled session keeps
// delivering frames where the estimator-only feedback loop stalls, and
// the serial and parallel engines make identical decisions.
#include <gtest/gtest.h>

#include "semholo/core/session.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 40};
    return model;
}

DegradationConfig fastPolicy() {
    DegradationConfig cfg;
    cfg.enabled = true;
    cfg.maxLevel = 3;
    cfg.downgradeAfter = 2;
    cfg.upgradeAfter = 8;
    return cfg;
}

LinkObservation congestedObs() {
    LinkObservation obs;
    obs.delivered = false;
    return obs;
}

LinkObservation cleanObs() {
    LinkObservation obs;
    obs.delivered = true;
    obs.transferS = 0.01;
    return obs;
}

TEST(DegradationPolicy, StepsDownUnderSustainedCongestion) {
    DegradationPolicy policy(fastPolicy(), 30.0, 256 * 1024);
    EXPECT_EQ(policy.level(), 0u);
    EXPECT_DOUBLE_EQ(policy.bandwidthScale(), 1.0);
    std::uint32_t frame = 0;
    // One congested frame holds (hysteresis)...
    EXPECT_EQ(policy.observe(frame++, congestedObs()), DegradationAction::Hold);
    // ...the second steps down.
    EXPECT_EQ(policy.observe(frame++, congestedObs()),
              DegradationAction::StepDown);
    EXPECT_EQ(policy.level(), 1u);
    EXPECT_DOUBLE_EQ(policy.bandwidthScale(), 0.5);
    // Sustained congestion walks to the floor and stays there.
    for (int i = 0; i < 12; ++i) policy.observe(frame++, congestedObs());
    EXPECT_EQ(policy.level(), 3u);
    EXPECT_DOUBLE_EQ(policy.bandwidthScale(), 0.125);
    EXPECT_EQ(policy.downgrades(), 3u);
    EXPECT_EQ(policy.decisions().size(), 3u);
}

TEST(DegradationPolicy, RecoversAfterCleanStreak) {
    DegradationPolicy policy(fastPolicy(), 30.0, 256 * 1024);
    std::uint32_t frame = 0;
    for (int i = 0; i < 4; ++i) policy.observe(frame++, congestedObs());
    ASSERT_EQ(policy.level(), 2u);
    // upgradeAfter clean frames per step back up.
    DegradationAction last = DegradationAction::Hold;
    for (int i = 0; i < 8; ++i) last = policy.observe(frame++, cleanObs());
    EXPECT_EQ(last, DegradationAction::StepUp);
    EXPECT_EQ(policy.level(), 1u);
    for (int i = 0; i < 8; ++i) policy.observe(frame++, cleanObs());
    EXPECT_EQ(policy.level(), 0u);
    EXPECT_EQ(policy.upgrades(), 2u);
    // A congested blip resets the clean streak.
    for (int i = 0; i < 4; ++i) policy.observe(frame++, congestedObs());
    for (int i = 0; i < 7; ++i) policy.observe(frame++, cleanObs());
    EXPECT_EQ(policy.observe(frame++, congestedObs()), DegradationAction::Hold);
    EXPECT_EQ(policy.level(), 2u);
}

TEST(DegradationPolicy, CongestionSignals) {
    const DegradationConfig cfg = fastPolicy();
    DegradationPolicy policy(cfg, 30.0, 100 * 1024);
    std::uint32_t frame = 0;
    // Each signal alone trips the congestion detector: two frames with
    // queue drops / fault events / slow transfer / deep backlog step down.
    LinkObservation drops = cleanObs();
    drops.queueDrops = 3;
    policy.observe(frame++, drops);
    EXPECT_EQ(policy.observe(frame++, drops), DegradationAction::StepDown);

    DegradationPolicy p2(cfg, 30.0, 100 * 1024);
    LinkObservation slow = cleanObs();
    slow.transferS = 0.5;  // far beyond 2 frame intervals at 30 fps
    p2.observe(frame++, slow);
    EXPECT_EQ(p2.observe(frame++, slow), DegradationAction::StepDown);

    DegradationPolicy p3(cfg, 30.0, 100 * 1024);
    LinkObservation deep = cleanObs();
    deep.queuedBytesAtSend = 90 * 1024;  // > 50% of capacity
    p3.observe(frame++, deep);
    EXPECT_EQ(p3.observe(frame++, deep), DegradationAction::StepDown);

    DegradationPolicy p4(cfg, 30.0, 100 * 1024);
    LinkObservation faulted = cleanObs();
    faulted.faultEvents = 1;
    p4.observe(frame++, faulted);
    EXPECT_EQ(p4.observe(frame++, faulted), DegradationAction::StepDown);
}

TEST(DegradationPolicy, DisabledPolicyNeverActs) {
    DegradationConfig cfg = fastPolicy();
    cfg.enabled = false;
    DegradationPolicy policy(cfg, 30.0, 256 * 1024);
    for (std::uint32_t f = 0; f < 20; ++f)
        EXPECT_EQ(policy.observe(f, congestedObs()), DegradationAction::Hold);
    EXPECT_EQ(policy.level(), 0u);
    EXPECT_TRUE(policy.decisions().empty());
}

TEST(DegradationPolicy, LongSoakKeepsBoundedHistoryAndExactCounters) {
    // Oscillate congested/clean bursts long enough to generate far more
    // transitions than the history cap holds: memory must stay bounded
    // (ring buffer) while the lifetime counters stay exact.
    DegradationConfig cfg = fastPolicy();
    cfg.maxLevel = 1;  // every burst pair is one down + one up
    DegradationPolicy policy(cfg, 30.0, 256 * 1024);
    std::uint32_t frame = 0;
    const std::size_t cycles = DegradationPolicy::kDecisionHistoryCap * 3;
    for (std::size_t c = 0; c < cycles; ++c) {
        for (int i = 0; i < 2; ++i) policy.observe(frame++, congestedObs());
        for (int i = 0; i < 8; ++i) policy.observe(frame++, cleanObs());
    }
    EXPECT_EQ(policy.downgrades(), cycles);
    EXPECT_EQ(policy.upgrades(), cycles);
    EXPECT_EQ(policy.decisionsRecorded(), 2 * cycles);
    const auto decisions = policy.decisions();
    ASSERT_EQ(decisions.size(), DegradationPolicy::kDecisionHistoryCap);
    // Oldest-first: frame ids ascend strictly across the retained window,
    // and the newest retained decision is the last transition made.
    for (std::size_t i = 1; i < decisions.size(); ++i)
        EXPECT_LT(decisions[i - 1].frameId, decisions[i].frameId);
    EXPECT_EQ(decisions.back().action, DegradationAction::StepUp);
    EXPECT_EQ(decisions.back().level, 0u);

    policy.reset();
    EXPECT_TRUE(policy.decisions().empty());
    EXPECT_EQ(policy.decisionsRecorded(), 0u);
}

TEST(DegradationPolicy, PinnedAtMaxLevelStillUpgradesAfterLongCongestion) {
    // Regression shape for the unclamped-streak hazard: millions of
    // congested frames while pinned at maxLevel must neither overflow
    // the streak counter nor distort the recovery hysteresis — exactly
    // upgradeAfter clean frames still produce exactly one StepUp.
    const DegradationConfig cfg = fastPolicy();
    DegradationPolicy policy(cfg, 30.0, 256 * 1024);
    std::uint32_t frame = 0;
    for (int i = 0; i < 1'000'000; ++i) policy.observe(frame++, congestedObs());
    ASSERT_EQ(policy.level(), cfg.maxLevel);
    EXPECT_EQ(policy.downgrades(), cfg.maxLevel);
    for (int i = 0; i < cfg.upgradeAfter - 1; ++i)
        EXPECT_EQ(policy.observe(frame++, cleanObs()), DegradationAction::Hold);
    EXPECT_EQ(policy.observe(frame++, cleanObs()), DegradationAction::StepUp);
    EXPECT_EQ(policy.level(), cfg.maxLevel - 1);
    // And a long clean run at level 0 is just as safe the other way.
    for (int i = 0; i < 1'000'000; ++i) policy.observe(frame++, cleanObs());
    EXPECT_EQ(policy.level(), 0u);
    EXPECT_EQ(policy.upgrades(), cfg.maxLevel);
}

// ---- Closed loop through the session engines -----------------------------

SessionConfig faultySessionConfig() {
    SessionConfig cfg;
    cfg.frames = 120;
    cfg.fps = 30.0;
    cfg.timing = TimingModel::Simulated;
    cfg.transfer.reliable = false;  // live streaming: late frames are dead
    // Sized against the {400,1500,6000}-triangle ladder (~2/7/23 KB per
    // frame): the 16 KB bottleneck queue is shallower than one top-rung
    // frame, so top-rung frames always tail-drop mid-message and produce
    // no throughput sample. The estimator-only loop ramps up on floor
    // samples (8 Mbps link), jumps to the top rung, and then stalls —
    // every frame fails, no sample ever arrives to correct the estimate.
    // The degradation policy sees the failures directly and steps down.
    cfg.link.bandwidth = net::BandwidthTrace::constant(8e6);
    cfg.link.propagationDelayS = 0.01;
    cfg.link.jitterStddevS = 0.0;
    cfg.link.lossRate = 0.0;
    cfg.link.queueCapacityBytes = 16 * 1024;
    // A mid-session outage followed by a deep bandwidth collapse.
    cfg.link.faults.outages.push_back({1.0, 0.5});
    cfg.link.faults.collapses.push_back({2.0, 1.0, 0.08});
    return cfg;
}

AdaptiveMeshOptions smallLadder() {
    AdaptiveMeshOptions opt;
    opt.ladderTriangles = {400, 1500, 6000};
    return opt;
}

TEST(DegradationSession, ClosedLoopOutperformsEstimatorOnlyUnderFaults) {
    SessionConfig off = faultySessionConfig();
    SessionConfig on = faultySessionConfig();
    on.degradation = fastPolicy();

    auto chOff = makeAdaptiveMeshChannel(smallLadder());
    auto chOn = makeAdaptiveMeshChannel(smallLadder());
    const auto statsOff = runSession(*chOff, sharedModel(), off);
    const auto statsOn = runSession(*chOn, sharedModel(), on);

    // The policy reacted and its decisions landed in telemetry.
    EXPECT_GT(statsOn.telemetry.counters.degradations, 0u);
    EXPECT_GT(statsOn.telemetry.counters.faultEvents, 0u);
    EXPECT_EQ(statsOff.telemetry.counters.degradations, 0u);
    // Closing the loop delivers more frames through the same faults.
    EXPECT_GT(statsOn.deliveredFrames, statsOff.deliveredFrames);
}

TEST(DegradationSession, SerialAndParallelEnginesDecideIdentically) {
    SessionConfig cfg = faultySessionConfig();
    cfg.frames = 60;
    cfg.degradation = fastPolicy();

    SessionStats results[2];
    int slot = 0;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
        cfg.workers = workers;
        auto channel = makeAdaptiveMeshChannel(smallLadder());
        results[slot++] = runSession(*channel, sharedModel(), cfg);
    }
    const SessionStats& serial = results[0];
    const SessionStats& parallel = results[1];
    ASSERT_EQ(serial.frames.size(), parallel.frames.size());
    for (std::size_t f = 0; f < serial.frames.size(); ++f) {
        SCOPED_TRACE(f);
        EXPECT_EQ(serial.frames[f].bytes, parallel.frames[f].bytes);
        EXPECT_EQ(serial.frames[f].delivered, parallel.frames[f].delivered);
        EXPECT_DOUBLE_EQ(serial.frames[f].transferMs,
                         parallel.frames[f].transferMs);
    }
    EXPECT_EQ(serial.telemetry.counters.degradations,
              parallel.telemetry.counters.degradations);
    EXPECT_EQ(serial.telemetry.counters.upgrades,
              parallel.telemetry.counters.upgrades);
    EXPECT_EQ(serial.telemetry.counters.faultEvents,
              parallel.telemetry.counters.faultEvents);
}

}  // namespace
}  // namespace semholo::core
