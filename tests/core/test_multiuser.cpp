// These tests intentionally exercise the deprecated
// runMultiUserSession shim: it must stay byte-identical to the
// conference engine it forwards to.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include <gtest/gtest.h>

#include <memory>

#include "semholo/core/session.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 40};
    return model;
}

std::vector<std::unique_ptr<SemanticChannel>> makeKeypointFleet(std::size_t n,
                                                                int resolution = 16) {
    std::vector<std::unique_ptr<SemanticChannel>> out;
    for (std::size_t i = 0; i < n; ++i) {
        KeypointChannelOptions opt;
        opt.reconResolution = resolution;
        out.push_back(makeKeypointChannel(opt));
    }
    return out;
}

std::vector<SemanticChannel*> raw(
    const std::vector<std::unique_ptr<SemanticChannel>>& owned) {
    std::vector<SemanticChannel*> out;
    for (const auto& c : owned) out.push_back(c.get());
    return out;
}

SessionConfig baseConfig(std::size_t frames = 10) {
    SessionConfig cfg;
    cfg.frames = frames;
    cfg.link.bandwidth = net::BandwidthTrace::constant(25e6);
    cfg.link.jitterStddevS = 0.0;
    cfg.dropWhenBusy = false;
    return cfg;
}

TEST(MultiUser, EmptyChannelListSafe) {
    const auto stats = runMultiUserSession({}, sharedModel(), baseConfig());
    EXPECT_TRUE(stats.perUser.empty());
    EXPECT_DOUBLE_EQ(stats.aggregateMbps, 0.0);
}

TEST(MultiUser, SingleUserMatchesSoloSessionScale) {
    auto fleet = makeKeypointFleet(1);
    const auto multi = runMultiUserSession(raw(fleet), sharedModel(), baseConfig());
    ASSERT_EQ(multi.perUser.size(), 1u);
    const auto& s = multi.perUser[0];
    EXPECT_EQ(s.deliveredFrames, 10u);
    EXPECT_NEAR(multi.aggregateMbps, s.bandwidthMbps, 1e-9);
    EXPECT_GT(s.meanBytesPerFrame, 100.0);
}

TEST(MultiUser, AggregateBandwidthScalesWithUsers) {
    auto two = makeKeypointFleet(2);
    auto four = makeKeypointFleet(4);
    const auto s2 = runMultiUserSession(raw(two), sharedModel(), baseConfig());
    const auto s4 = runMultiUserSession(raw(four), sharedModel(), baseConfig());
    EXPECT_NEAR(s4.aggregateMbps, 2.0 * s2.aggregateMbps, 0.3 * s2.aggregateMbps);
}

TEST(MultiUser, DistinctMotionSeedsPerUser) {
    auto fleet = makeKeypointFleet(2);
    const auto stats = runMultiUserSession(raw(fleet), sharedModel(), baseConfig());
    // Different seeds -> different poses -> (slightly) different
    // compressed payload sizes on at least one frame.
    bool differs = false;
    for (std::size_t f = 0; f < stats.perUser[0].frames.size(); ++f)
        if (stats.perUser[0].frames[f].bytes != stats.perUser[1].frames[f].bytes)
            differs = true;
    EXPECT_TRUE(differs);
}

TEST(MultiUser, SharedBottleneckCongestsHeavyChannels) {
    // Four raw-mesh users through 25 Mbps: latency must blow up relative
    // to a single user.
    auto makeMeshFleet = [](std::size_t n) {
        std::vector<std::unique_ptr<SemanticChannel>> out;
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(makeTraditionalChannel({false, false}));
        return out;
    };
    auto one = makeMeshFleet(1);
    auto four = makeMeshFleet(4);
    SessionConfig cfg = baseConfig(6);
    cfg.link.queueCapacityBytes = 8 * 1024 * 1024;
    const auto s1 = runMultiUserSession(raw(one), sharedModel(), cfg);
    const auto s4 = runMultiUserSession(raw(four), sharedModel(), cfg);
    EXPECT_GT(s4.meanE2eMs, s1.meanE2eMs * 2.0);
}

TEST(MultiUser, KeypointFleetMeetsLatencyBudget) {
    auto fleet = makeKeypointFleet(6);
    const auto stats = runMultiUserSession(raw(fleet), sharedModel(), baseConfig());
    EXPECT_EQ(stats.usersWithinLatency(200.0), 6u);
    EXPECT_LT(stats.aggregateMbps, 3.0);
}

}  // namespace
}  // namespace semholo::core
