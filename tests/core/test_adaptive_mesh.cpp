#include <gtest/gtest.h>

#include "semholo/core/session.hpp"
#include "semholo/mesh/metrics.hpp"

namespace semholo::core {
namespace {

const body::BodyModel& sharedModel() {
    static const body::BodyModel model{body::ShapeParams{}, 40};
    return model;
}

FrameContext frameAt(double t, double bandwidthBps) {
    FrameContext ctx;
    ctx.pose = body::MotionGenerator(body::MotionKind::Talk, sharedModel().shape())
                   .poseAt(t);
    ctx.model = &sharedModel();
    ctx.estimatedBandwidthBps = bandwidthBps;
    return ctx;
}

AdaptiveMeshOptions smallLadder() {
    AdaptiveMeshOptions opt;
    opt.ladderTriangles = {400, 1500, 6000};
    return opt;
}

TEST(AdaptiveMesh, ColdStartUsesLowestLod) {
    auto channel = makeAdaptiveMeshChannel(smallLadder());
    const auto encoded = channel->encode(frameAt(0.0, 0.0));
    const auto decoded = channel->decode(encoded);
    ASSERT_TRUE(decoded.valid);
    EXPECT_LE(decoded.mesh.triangleCount(), 450u);
}

TEST(AdaptiveMesh, HighBandwidthPicksHighLod) {
    auto channel = makeAdaptiveMeshChannel(smallLadder());
    channel->encode(frameAt(0.0, 0.0));  // calibrate ladder
    const auto rich = channel->decode(channel->encode(frameAt(0.1, 500e6)));
    const auto poor = channel->decode(channel->encode(frameAt(0.2, 0.5e6)));
    ASSERT_TRUE(rich.valid && poor.valid);
    EXPECT_GT(rich.mesh.triangleCount(), poor.mesh.triangleCount() * 3);
    // Bytes follow the LOD.
    const auto richBytes = channel->encode(frameAt(0.3, 500e6)).bytes();
    const auto poorBytes = channel->encode(frameAt(0.4, 0.5e6)).bytes();
    EXPECT_GT(richBytes, poorBytes * 2);
}

TEST(AdaptiveMesh, LodQualityOrdering) {
    auto channel = makeAdaptiveMeshChannel(smallLadder());
    channel->encode(frameAt(0.0, 0.0));
    const FrameContext ctx = frameAt(0.5, 0.0);
    const mesh::TriMesh gt = ctx.groundTruth();
    const auto low = channel->decode(channel->encode(frameAt(0.5, 0.5e6)));
    const auto high = channel->decode(channel->encode(frameAt(0.5, 500e6)));
    ASSERT_TRUE(low.valid && high.valid);
    const double errLow = mesh::compareMeshes(gt, low.mesh, 5000).chamfer;
    const double errHigh = mesh::compareMeshes(gt, high.mesh, 5000).chamfer;
    EXPECT_LT(errHigh, errLow);
}

TEST(AdaptiveMesh, SessionFeedbackLoopAdapts) {
    // Over a live session the throughput estimator kicks in after the
    // first frame and the channel climbs the ladder on a fat link while
    // staying low on a thin one.
    auto fat = makeAdaptiveMeshChannel(smallLadder());
    auto thin = makeAdaptiveMeshChannel(smallLadder());
    SessionConfig cfg;
    cfg.frames = 6;
    cfg.dropWhenBusy = false;
    cfg.link.jitterStddevS = 0.0;

    cfg.link.bandwidth = net::BandwidthTrace::constant(200e6);
    const auto statsFat = runSession(*fat, sharedModel(), cfg);
    cfg.link.bandwidth = net::BandwidthTrace::constant(2e6);
    cfg.link.queueCapacityBytes = 4 * 1024 * 1024;
    const auto statsThin = runSession(*thin, sharedModel(), cfg);

    // Skip the cold-start frame when comparing steady-state bytes.
    double fatBytes = 0.0, thinBytes = 0.0;
    for (std::size_t f = 2; f < 6; ++f) {
        fatBytes += static_cast<double>(statsFat.frames[f].bytes);
        thinBytes += static_cast<double>(statsThin.frames[f].bytes);
    }
    EXPECT_GT(fatBytes, thinBytes * 2);
    EXPECT_EQ(statsThin.deliveredFrames, 6u);  // never overcommits the link
}

TEST(AdaptiveMesh, ResetRecalibrates) {
    auto channel = makeAdaptiveMeshChannel(smallLadder());
    channel->encode(frameAt(0.0, 500e6));
    channel->reset();
    // After reset the first frame is a cold start again (lowest LOD).
    const auto decoded = channel->decode(channel->encode(frameAt(0.1, 0.0)));
    ASSERT_TRUE(decoded.valid);
    EXPECT_LE(decoded.mesh.triangleCount(), 450u);
}

}  // namespace
}  // namespace semholo::core
