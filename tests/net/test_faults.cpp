// Fault-injection layer: outage windows stall the bottleneck, bandwidth
// collapses stretch it, Gilbert-Elliott burst loss clusters packet
// losses — all deterministic under the link seed.
#include "semholo/net/simulator.hpp"

#include <gtest/gtest.h>

namespace semholo::net {
namespace {

LinkConfig faultFreeLink(double bps, double propDelay = 0.01) {
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::constant(bps);
    cfg.propagationDelayS = propDelay;
    cfg.jitterStddevS = 0.0;
    cfg.lossRate = 0.0;
    cfg.queueCapacityBytes = 10 * 1024 * 1024;
    return cfg;
}

TEST(FaultSchedule, RateMultiplierComposesWindows) {
    FaultSchedule faults;
    faults.outages.push_back({1.0, 0.5});
    faults.collapses.push_back({2.0, 1.0, 0.25});
    faults.collapses.push_back({2.5, 1.0, 0.5});
    EXPECT_DOUBLE_EQ(faults.rateMultiplier(0.5), 1.0);
    EXPECT_DOUBLE_EQ(faults.rateMultiplier(1.2), 0.0);
    EXPECT_TRUE(faults.inOutage(1.2));
    EXPECT_DOUBLE_EQ(faults.rateMultiplier(2.1), 0.25);
    EXPECT_DOUBLE_EQ(faults.rateMultiplier(2.7), 0.125);  // overlap composes
    EXPECT_DOUBLE_EQ(faults.rateMultiplier(3.2), 0.5);
}

TEST(FaultSchedule, OutageStallsDeliveryUntilWindowEnds) {
    LinkConfig cfg = faultFreeLink(10e6);
    cfg.faults.outages.push_back({1.0, 0.5});
    LinkSimulator sim(cfg);
    // Sent mid-outage: the packets sit in the queue until the link
    // returns, then drain normally.
    const auto r = sim.sendMessage(10000, 1.1);
    ASSERT_TRUE(r.delivered);
    EXPECT_GE(r.completionTime, 1.5);
    EXPECT_LT(r.completionTime, 1.6);
    EXPECT_EQ(r.faultEvents, 1u);
}

TEST(FaultSchedule, OutageOverflowsBoundedQueue) {
    LinkConfig cfg = faultFreeLink(10e6);
    cfg.queueCapacityBytes = 20 * 1024;
    cfg.faults.outages.push_back({1.0, 1.0});
    LinkSimulator sim(cfg);
    TransferOptions opt;
    opt.reliable = false;
    std::size_t drops = 0;
    // 30 fps of 10 KB frames into a dead link: the 20 KB queue fills
    // after two frames and the rest tail-drop.
    for (int f = 0; f < 15; ++f)
        drops += sim.sendMessage(10000, 1.0 + f / 30.0, opt).droppedAtQueue;
    EXPECT_GT(drops, 5u);
}

TEST(FaultSchedule, CollapseStretchesTransfers) {
    LinkConfig cfg = faultFreeLink(10e6, 0.0);
    cfg.faults.collapses.push_back({1.0, 2.0, 0.1});
    LinkSimulator sim(cfg);
    const auto before = sim.sendMessage(100000, 0.0);
    const auto during = sim.sendMessage(100000, 1.0);
    ASSERT_TRUE(before.delivered && during.delivered);
    // 100 KB at 10 Mbps = 80 ms; at 1 Mbps = 800 ms.
    EXPECT_NEAR(before.durationS(), 0.08, 0.002);
    EXPECT_NEAR(during.durationS(), 0.8, 0.02);
    EXPECT_EQ(during.faultEvents, 1u);
}

TEST(FaultSchedule, GilbertElliottClustersLosses) {
    LinkConfig cfg = faultFreeLink(10e6);
    cfg.faults.burstLoss.enabled = true;
    cfg.faults.burstLoss.pGoodToBad = 0.05;
    cfg.faults.burstLoss.pBadToGood = 0.2;
    cfg.faults.burstLoss.lossBad = 0.6;
    cfg.seed = 17;
    LinkSimulator sim(cfg);
    TransferOptions opt;
    opt.reliable = false;
    std::size_t lost = 0, packets = 0, bursts = 0;
    for (int m = 0; m < 20; ++m) {
        const auto r = sim.sendMessage(70000, m * 0.1, opt);
        lost += r.lostPackets;
        packets += r.packets;
        bursts += r.faultEvents;
    }
    EXPECT_GT(lost, 0u);
    EXPECT_GT(bursts, 0u);
    // Loss fraction sits near the chain's stationary bad-state share
    // times lossBad (~12%), far above an i.i.d.-free link.
    EXPECT_GT(static_cast<double>(lost) / static_cast<double>(packets), 0.02);
    EXPECT_LT(static_cast<double>(lost) / static_cast<double>(packets), 0.4);
}

TEST(FaultSchedule, FaultWindowsCountedOncePerSimulator) {
    LinkConfig cfg = faultFreeLink(10e6);
    cfg.faults.outages.push_back({0.5, 0.2});
    LinkSimulator sim(cfg);
    std::size_t events = 0;
    // Both messages overlap the same outage window; it is reported once.
    events += sim.sendMessage(50000, 0.45).faultEvents;
    events += sim.sendMessage(50000, 0.55).faultEvents;
    events += sim.sendMessage(50000, 1.5).faultEvents;
    EXPECT_EQ(events, 1u);
}

TEST(FaultSchedule, DeterministicUnderSeed) {
    LinkConfig cfg = faultFreeLink(10e6);
    cfg.jitterStddevS = 0.003;
    cfg.lossRate = 0.02;
    cfg.faults.outages.push_back({0.4, 0.3});
    cfg.faults.collapses.push_back({1.0, 0.5, 0.2});
    cfg.faults.burstLoss.enabled = true;
    cfg.faults.burstLoss.pGoodToBad = 0.03;
    cfg.seed = 23;
    LinkSimulator a(cfg), b(cfg);
    for (int m = 0; m < 12; ++m) {
        const double t = m * 0.15;
        const auto ra = a.sendMessage(90000, t);
        const auto rb = b.sendMessage(90000, t);
        EXPECT_DOUBLE_EQ(ra.completionTime, rb.completionTime);
        EXPECT_EQ(ra.deliveredPackets, rb.deliveredPackets);
        EXPECT_EQ(ra.lostPackets, rb.lostPackets);
        EXPECT_EQ(ra.retransmissions, rb.retransmissions);
        EXPECT_EQ(ra.droppedAtQueue, rb.droppedAtQueue);
        EXPECT_EQ(ra.faultEvents, rb.faultEvents);
    }
}

TEST(FaultSchedule, TransferEndingExactlyAtWindowStartCountsNoEvent) {
    // faultEvents uses half-open windows on both sides: a transfer
    // occupying [start, end) against a window [s, s+d). All times below
    // are exact doubles (1000 bytes = 8000 bits at 32 kbps = 0.25 s), so
    // the transfer sent at 0.75 finishes precisely at the outage start.
    // The old overlap test ('end >= s') counted it.
    LinkConfig cfg = faultFreeLink(32e3, 0.0);
    cfg.faults.outages.push_back({1.0, 0.5});
    LinkSimulator sim(cfg);
    const auto r = sim.sendMessage(1000, 0.75);
    ASSERT_TRUE(r.delivered);
    EXPECT_DOUBLE_EQ(r.completionTime, 1.0);
    EXPECT_EQ(r.faultEvents, 0u);
}

TEST(FaultSchedule, TransferStartingExactlyAtWindowEndCountsNoEvent) {
    LinkConfig cfg = faultFreeLink(32e3, 0.0);
    cfg.faults.outages.push_back({1.0, 0.5});
    LinkSimulator sim(cfg);
    const auto r = sim.sendMessage(1000, 1.5);  // window is [1.0, 1.5)
    ASSERT_TRUE(r.delivered);
    EXPECT_DOUBLE_EQ(r.completionTime, 1.75);
    EXPECT_EQ(r.faultEvents, 0u);
}

TEST(FaultSchedule, TransferCrossingTheWindowCountsOneEvent) {
    LinkConfig cfg = faultFreeLink(32e3, 0.0);
    cfg.faults.outages.push_back({1.0, 0.5});
    LinkSimulator sim(cfg);
    // Sent at 0.9: drains 3200 bits before the outage, stalls through
    // it, finishes the remaining 4800 bits after 1.5.
    const auto r = sim.sendMessage(1000, 0.9);
    ASSERT_TRUE(r.delivered);
    EXPECT_DOUBLE_EQ(r.completionTime, 1.65);
    EXPECT_EQ(r.faultEvents, 1u);
}

TEST(FaultSchedule, EffectiveRateReflectsFaults) {
    LinkConfig cfg = faultFreeLink(10e6);
    cfg.faults.outages.push_back({1.0, 0.5});
    cfg.faults.collapses.push_back({2.0, 1.0, 0.3});
    const LinkSimulator sim(cfg);
    EXPECT_DOUBLE_EQ(sim.effectiveRateAt(0.5), 10e6);
    EXPECT_DOUBLE_EQ(sim.effectiveRateAt(1.2), 0.0);
    EXPECT_DOUBLE_EQ(sim.effectiveRateAt(2.5), 3e6);
}

}  // namespace
}  // namespace semholo::net
