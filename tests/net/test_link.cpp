#include "semholo/net/link.hpp"

#include <gtest/gtest.h>

namespace semholo::net {
namespace {

TEST(BandwidthTrace, ConstantRate) {
    const auto trace = BandwidthTrace::constant(10e6);
    EXPECT_DOUBLE_EQ(trace.rateAt(0.0), 10e6);
    EXPECT_DOUBLE_EQ(trace.rateAt(123.4), 10e6);
    EXPECT_DOUBLE_EQ(trace.minRate(), 10e6);
    EXPECT_DOUBLE_EQ(trace.meanRate(), 10e6);
}

TEST(BandwidthTrace, SquareAlternates) {
    const auto trace = BandwidthTrace::square(20e6, 5e6, 1.0);
    EXPECT_DOUBLE_EQ(trace.rateAt(0.5), 20e6);
    EXPECT_DOUBLE_EQ(trace.rateAt(1.5), 5e6);
    EXPECT_DOUBLE_EQ(trace.rateAt(2.5), 20e6);  // cycles
    EXPECT_DOUBLE_EQ(trace.minRate(), 5e6);
}

TEST(BandwidthTrace, SineBounded) {
    const auto trace = BandwidthTrace::sine(2e6, 10e6, 4.0);
    for (double t = 0.0; t < 8.0; t += 0.05) {
        EXPECT_GE(trace.rateAt(t), 2e6 - 1.0);
        EXPECT_LE(trace.rateAt(t), 10e6 + 1.0);
    }
    EXPECT_NEAR(trace.meanRate(), 6e6, 0.5e6);
}

TEST(BandwidthTrace, RandomWalkBoundedAndDeterministic) {
    const auto a = BandwidthTrace::randomWalk(10e6, 1e6, 20e6, 0.1, 30.0, 7);
    const auto b = BandwidthTrace::randomWalk(10e6, 1e6, 20e6, 0.1, 30.0, 7);
    for (double t = 0.0; t < 30.0; t += 0.3) {
        EXPECT_DOUBLE_EQ(a.rateAt(t), b.rateAt(t));
        EXPECT_GE(a.rateAt(t), 1e6);
        EXPECT_LE(a.rateAt(t), 20e6);
    }
}

TEST(BandwidthTrace, NegativeTimeClamped) {
    const auto trace = BandwidthTrace::square(20e6, 5e6, 1.0);
    EXPECT_DOUBLE_EQ(trace.rateAt(-5.0), trace.rateAt(0.0));
}

}  // namespace
}  // namespace semholo::net
