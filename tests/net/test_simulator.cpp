#include "semholo/net/simulator.hpp"

#include <gtest/gtest.h>

namespace semholo::net {
namespace {

LinkConfig cleanLink(double bps, double propDelay = 0.02) {
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::constant(bps);
    cfg.propagationDelayS = propDelay;
    cfg.jitterStddevS = 0.0;
    cfg.lossRate = 0.0;
    cfg.queueCapacityBytes = 10 * 1024 * 1024;
    return cfg;
}

TEST(LinkSimulator, TransferTimeMatchesSerializationPlusPropagation) {
    LinkSimulator sim(cleanLink(8e6, 0.01));  // 1 MB/s
    const std::size_t bytes = 100000;
    const auto result = sim.sendMessage(bytes, 0.0);
    ASSERT_TRUE(result.delivered);
    // 100 KB at 1 MB/s = 0.1 s serialization + 0.01 s propagation.
    EXPECT_NEAR(result.completionTime, 0.11, 0.002);
    EXPECT_NEAR(result.throughputBps(), 8e6 * (0.1 / 0.11), 0.5e6);
}

TEST(LinkSimulator, ZeroBytesDeliveredInstantly) {
    LinkSimulator sim(cleanLink(1e6));
    const auto result = sim.sendMessage(0, 5.0);
    EXPECT_TRUE(result.delivered);
    EXPECT_NEAR(result.completionTime, 5.0 + 0.02, 1e-9);
}

TEST(LinkSimulator, BackToBackMessagesQueue) {
    LinkSimulator sim(cleanLink(8e6, 0.0));
    const auto first = sim.sendMessage(100000, 0.0);
    const auto second = sim.sendMessage(100000, 0.0);  // sent at same instant
    // The second message serialises after the first.
    EXPECT_NEAR(second.completionTime, first.completionTime + 0.1, 0.005);
}

TEST(LinkSimulator, HigherBandwidthFaster) {
    LinkSimulator slow(cleanLink(5e6));
    LinkSimulator fast(cleanLink(50e6));
    const auto rs = slow.sendMessage(500000, 0.0);
    const auto rf = fast.sendMessage(500000, 0.0);
    EXPECT_GT(rs.durationS(), rf.durationS() * 5.0);
}

TEST(LinkSimulator, LossCausesRetransmissionsButDelivers) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.lossRate = 0.1;
    cfg.seed = 3;
    LinkSimulator sim(cfg);
    const auto result = sim.sendMessage(500000, 0.0);
    EXPECT_TRUE(result.delivered);
    EXPECT_GT(result.lostPackets, 0u);
    EXPECT_GT(result.retransmissions, 0u);
    // Slower than the loss-free equivalent.
    LinkSimulator clean(cleanLink(10e6));
    EXPECT_GT(result.durationS(), clean.sendMessage(500000, 0.0).durationS());
}

TEST(LinkSimulator, UnreliableModeDropsInsteadOfRetrying) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.lossRate = 0.2;
    cfg.seed = 5;
    LinkSimulator sim(cfg);
    TransferOptions opt;
    opt.reliable = false;
    const auto result = sim.sendMessage(500000, 0.0, opt);
    EXPECT_GT(result.lostPackets, 0u);
    EXPECT_EQ(result.retransmissions, 0u);
    EXPECT_FALSE(result.delivered);
}

TEST(LinkSimulator, JitterDelaysArrivalOnly) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.jitterStddevS = 0.005;
    LinkSimulator noisy(cfg);
    LinkSimulator clean(cleanLink(10e6));
    const auto rn = noisy.sendMessage(50000, 0.0);
    const auto rc = clean.sendMessage(50000, 0.0);
    EXPECT_GE(rn.completionTime, rc.completionTime - 1e-9);
}

TEST(LinkSimulator, PacketizationCountsMtus) {
    LinkSimulator sim(cleanLink(10e6));
    const auto result = sim.sendMessage(kMtuBytes * 3 + 10, 0.0);
    EXPECT_EQ(result.packets, 4u);
}

TEST(LinkSimulator, VaryingBandwidthSlowsLowPhase) {
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::square(50e6, 2e6, 10.0);
    cfg.propagationDelayS = 0.0;
    cfg.jitterStddevS = 0.0;
    LinkSimulator sim(cfg);
    // During the high phase.
    const auto fast = sim.sendMessage(250000, 0.0);
    // During the low phase.
    const auto slow = sim.sendMessage(250000, 12.0);
    EXPECT_GT(slow.durationS(), fast.durationS() * 5.0);
}

TEST(LinkSimulator, DeterministicGivenSeed) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.lossRate = 0.05;
    cfg.jitterStddevS = 0.003;
    LinkSimulator a(cfg), b(cfg);
    const auto ra = a.sendMessage(200000, 0.0);
    const auto rb = b.sendMessage(200000, 0.0);
    EXPECT_DOUBLE_EQ(ra.completionTime, rb.completionTime);
    EXPECT_EQ(ra.retransmissions, rb.retransmissions);
}

TEST(LinkSimulator, ThirtyFpsKeypointStreamFitsNarrowLink) {
    // Table 2 scenario: 0.46 Mbps keypoint stream over a 1 Mbps link at
    // 30 FPS never builds a queue.
    LinkSimulator sim(cleanLink(1e6, 0.02));
    double maxLatency = 0.0;
    for (int f = 0; f < 90; ++f) {
        const double t = f / 30.0;
        const auto r = sim.sendMessage(1956, t);  // pose payload
        ASSERT_TRUE(r.delivered);
        maxLatency = std::max(maxLatency, r.completionTime - t);
    }
    EXPECT_LT(maxLatency, 0.05);
}

TEST(LinkSimulator, ThirtyFpsRawMeshOverwhelmsBroadband) {
    // Table 2: 95.4 Mbps of raw mesh over 25 Mbps broadband falls behind.
    LinkSimulator sim(cleanLink(25e6, 0.02));
    double lastLatency = 0.0;
    for (int f = 0; f < 30; ++f) {
        const double t = f / 30.0;
        const auto r = sim.sendMessage(397700, t);
        lastLatency = r.completionTime - t;
    }
    // Latency grows far beyond one frame interval: unsustainable.
    EXPECT_GT(lastLatency, 1.0);
}

}  // namespace
}  // namespace semholo::net
