#include "semholo/net/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace semholo::net {
namespace {

LinkConfig cleanLink(double bps, double propDelay = 0.02) {
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::constant(bps);
    cfg.propagationDelayS = propDelay;
    cfg.jitterStddevS = 0.0;
    cfg.lossRate = 0.0;
    cfg.queueCapacityBytes = 10 * 1024 * 1024;
    return cfg;
}

TEST(LinkSimulator, TransferTimeMatchesSerializationPlusPropagation) {
    LinkSimulator sim(cleanLink(8e6, 0.01));  // 1 MB/s
    const std::size_t bytes = 100000;
    const auto result = sim.sendMessage(bytes, 0.0);
    ASSERT_TRUE(result.delivered);
    // 100 KB at 1 MB/s = 0.1 s serialization + 0.01 s propagation.
    EXPECT_NEAR(result.completionTime, 0.11, 0.002);
    EXPECT_NEAR(result.throughputBps(), 8e6 * (0.1 / 0.11), 0.5e6);
}

TEST(LinkSimulator, ZeroBytesDeliveredInstantly) {
    LinkSimulator sim(cleanLink(1e6));
    const auto result = sim.sendMessage(0, 5.0);
    EXPECT_TRUE(result.delivered);
    EXPECT_NEAR(result.completionTime, 5.0 + 0.02, 1e-9);
}

TEST(LinkSimulator, BackToBackMessagesQueue) {
    LinkSimulator sim(cleanLink(8e6, 0.0));
    const auto first = sim.sendMessage(100000, 0.0);
    const auto second = sim.sendMessage(100000, 0.0);  // sent at same instant
    // The second message serialises after the first.
    EXPECT_NEAR(second.completionTime, first.completionTime + 0.1, 0.005);
}

TEST(LinkSimulator, HigherBandwidthFaster) {
    LinkSimulator slow(cleanLink(5e6));
    LinkSimulator fast(cleanLink(50e6));
    const auto rs = slow.sendMessage(500000, 0.0);
    const auto rf = fast.sendMessage(500000, 0.0);
    EXPECT_GT(rs.durationS(), rf.durationS() * 5.0);
}

TEST(LinkSimulator, LossCausesRetransmissionsButDelivers) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.lossRate = 0.1;
    cfg.seed = 3;
    LinkSimulator sim(cfg);
    const auto result = sim.sendMessage(500000, 0.0);
    EXPECT_TRUE(result.delivered);
    EXPECT_GT(result.lostPackets, 0u);
    EXPECT_GT(result.retransmissions, 0u);
    // Slower than the loss-free equivalent.
    LinkSimulator clean(cleanLink(10e6));
    EXPECT_GT(result.durationS(), clean.sendMessage(500000, 0.0).durationS());
}

TEST(LinkSimulator, UnreliableModeDropsInsteadOfRetrying) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.lossRate = 0.2;
    cfg.seed = 5;
    LinkSimulator sim(cfg);
    TransferOptions opt;
    opt.reliable = false;
    const auto result = sim.sendMessage(500000, 0.0, opt);
    EXPECT_GT(result.lostPackets, 0u);
    EXPECT_EQ(result.retransmissions, 0u);
    EXPECT_FALSE(result.delivered);
}

TEST(LinkSimulator, JitterDelaysArrivalOnly) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.jitterStddevS = 0.005;
    LinkSimulator noisy(cfg);
    LinkSimulator clean(cleanLink(10e6));
    const auto rn = noisy.sendMessage(50000, 0.0);
    const auto rc = clean.sendMessage(50000, 0.0);
    EXPECT_GE(rn.completionTime, rc.completionTime - 1e-9);
}

TEST(LinkSimulator, PacketizationCountsMtus) {
    LinkSimulator sim(cleanLink(10e6));
    const auto result = sim.sendMessage(kMtuBytes * 3 + 10, 0.0);
    EXPECT_EQ(result.packets, 4u);
}

TEST(LinkSimulator, VaryingBandwidthSlowsLowPhase) {
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::square(50e6, 2e6, 10.0);
    cfg.propagationDelayS = 0.0;
    cfg.jitterStddevS = 0.0;
    LinkSimulator sim(cfg);
    // During the high phase.
    const auto fast = sim.sendMessage(250000, 0.0);
    // During the low phase.
    const auto slow = sim.sendMessage(250000, 12.0);
    EXPECT_GT(slow.durationS(), fast.durationS() * 5.0);
}

TEST(LinkSimulator, DeterministicGivenSeed) {
    LinkConfig cfg = cleanLink(10e6);
    cfg.lossRate = 0.05;
    cfg.jitterStddevS = 0.003;
    LinkSimulator a(cfg), b(cfg);
    const auto ra = a.sendMessage(200000, 0.0);
    const auto rb = b.sendMessage(200000, 0.0);
    EXPECT_DOUBLE_EQ(ra.completionTime, rb.completionTime);
    EXPECT_EQ(ra.retransmissions, rb.retransmissions);
}

TEST(LinkSimulator, ThirtyFpsKeypointStreamFitsNarrowLink) {
    // Table 2 scenario: 0.46 Mbps keypoint stream over a 1 Mbps link at
    // 30 FPS never builds a queue.
    LinkSimulator sim(cleanLink(1e6, 0.02));
    double maxLatency = 0.0;
    for (int f = 0; f < 90; ++f) {
        const double t = f / 30.0;
        const auto r = sim.sendMessage(1956, t);  // pose payload
        ASSERT_TRUE(r.delivered);
        maxLatency = std::max(maxLatency, r.completionTime - t);
    }
    EXPECT_LT(maxLatency, 0.05);
}

// ---- Regression tests for the packet-event rebuild ----------------------

TEST(LinkSimulator, IntraMessageTailDropFires) {
    // A single message larger than the queue capacity must overflow the
    // bottleneck mid-message: its own leading packets are the backlog.
    // (The old model only refreshed occupancy at message end, so a
    // 400 KB burst could never overflow a 256 KB queue by itself.)
    LinkConfig cfg = cleanLink(8e6, 0.0);
    cfg.queueCapacityBytes = 64 * 1024;
    LinkSimulator sim(cfg);
    TransferOptions opt;
    opt.reliable = false;
    const auto result = sim.sendMessage(400000, 0.0, opt);
    EXPECT_GT(result.droppedAtQueue, 0u);
    EXPECT_FALSE(result.delivered);
    // The accepted prefix roughly fills the queue.
    EXPECT_GT(result.deliveredPackets, 40u);
    EXPECT_EQ(result.packets,
              result.deliveredPackets + result.unrecoveredPackets);
}

TEST(LinkSimulator, ReliableQueueDropsIncurDelay) {
    // A reliable sender whose packets are tail-dropped re-enqueues them
    // after the detection RTT — the drop costs time instead of being
    // transmitted anyway with zero penalty.
    LinkConfig roomy = cleanLink(8e6, 0.02);
    LinkConfig cramped = roomy;
    cramped.queueCapacityBytes = 32 * 1024;
    const std::size_t bytes = 200000;
    const auto unconstrained = LinkSimulator(roomy).sendMessage(bytes, 0.0);
    const auto constrained = LinkSimulator(cramped).sendMessage(bytes, 0.0);
    ASSERT_TRUE(unconstrained.delivered);
    ASSERT_TRUE(constrained.delivered);
    EXPECT_GT(constrained.droppedAtQueue, 0u);
    EXPECT_GT(constrained.retransmissions, 0u);
    // At least one detection RTT slower than the uncongested transfer.
    EXPECT_GT(constrained.completionTime,
              unconstrained.completionTime + 2.0 * roomy.propagationDelayS - 1e-9);
    EXPECT_EQ(constrained.deliveredPackets, constrained.packets);
}

TEST(LinkSimulator, JitterMeanPreservesPropagationDelay) {
    // delay = max(0, propagation + N(0, sigma)) keeps the mean one-way
    // delay at the propagation delay (the old max(0, jitter) truncation
    // inflated it by sigma/sqrt(2*pi)).
    LinkConfig cfg = cleanLink(10e6, 0.02);
    cfg.jitterStddevS = 0.002;
    LinkSimulator sim(cfg);
    const double serialization = 1400.0 * 8.0 / 10e6;
    double sumDelay = 0.0;
    const int messages = 3000;
    for (int i = 0; i < messages; ++i) {
        const double t = i * 0.01;  // spaced out: no queueing
        const auto r = sim.sendMessage(1400, t);
        ASSERT_TRUE(r.delivered);
        sumDelay += r.completionTime - t - serialization;
    }
    const double meanDelay = sumDelay / messages;
    EXPECT_NEAR(meanDelay, cfg.propagationDelayS,
                0.02 * cfg.propagationDelayS);
}

TEST(LinkSimulator, QueuedBytesIntegratesTraceAcrossRateSteps) {
    // 8 Mbps for 1 s, then 0.8 Mbps: backlog must be the integral of the
    // trace over [time, busyUntil), not busyUntil-minus-time at the
    // instantaneous rate (10x off right after the step).
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::square(8e6, 0.8e6, 1.0);
    cfg.propagationDelayS = 0.0;
    cfg.jitterStddevS = 0.0;
    cfg.queueCapacityBytes = 16 * 1024 * 1024;
    LinkSimulator sim(cfg);
    sim.sendMessage(1100000, 0.0);  // 1 MB in the high phase + 0.1 MB low
    EXPECT_NEAR(sim.queueBusyUntil(), 2.0, 1e-6);
    // At t=0.5: 0.5 s of high phase (500 KB) + 1 s of low (100 KB) left.
    EXPECT_NEAR(static_cast<double>(sim.queuedBytesAt(0.5)), 600000.0, 1500.0);
    // At t=1.5: half the low phase remains.
    EXPECT_NEAR(static_cast<double>(sim.queuedBytesAt(1.5)), 50000.0, 1500.0);
    EXPECT_EQ(sim.queuedBytesAt(2.5), 0u);
}

TEST(LinkSimulator, PacketConservationInvariant) {
    // packets == deliveredPackets + unrecoveredPackets in every mode.
    struct Case {
        double lossRate;
        bool reliable;
        std::size_t capacity;
    };
    const Case cases[] = {{0.0, true, 10u << 20},
                          {0.1, true, 10u << 20},
                          {0.3, false, 10u << 20},
                          {0.0, false, 32 * 1024},
                          {0.15, true, 32 * 1024}};
    int idx = 0;
    for (const Case& c : cases) {
        SCOPED_TRACE(idx++);
        LinkConfig cfg = cleanLink(10e6);
        cfg.lossRate = c.lossRate;
        cfg.queueCapacityBytes = c.capacity;
        cfg.seed = 11;
        LinkSimulator sim(cfg);
        TransferOptions opt;
        opt.reliable = c.reliable;
        for (int m = 0; m < 6; ++m) {
            const auto r = sim.sendMessage(180000, m * 0.05, opt);
            EXPECT_EQ(r.packets, r.deliveredPackets + r.unrecoveredPackets);
            EXPECT_EQ(r.delivered, r.unrecoveredPackets == 0);
            if (!c.reliable) {
                EXPECT_EQ(r.retransmissions, 0u);
            }
        }
    }
}

TEST(LinkSimulator, CompletionTimesMonotoneInSendTime) {
    // Reliable ARQ is stop-and-wait: each retransmission blocks the FIFO
    // for an RTT, so the offered load must leave slack for that dead air.
    LinkConfig cfg = cleanLink(10e6);
    cfg.lossRate = 0.08;
    cfg.jitterStddevS = 0.0;
    cfg.seed = 9;
    LinkSimulator sim(cfg);
    double previous = 0.0;
    for (int m = 0; m < 50; ++m) {
        const auto r = sim.sendMessage(30000, m * 0.1);
        ASSERT_TRUE(r.delivered);
        EXPECT_GE(r.completionTime, previous - 1e-12);
        previous = r.completionTime;
    }
}

TEST(LinkSimulator, GoodputNeverExceedsTraceCapacity) {
    // Delivered bytes all crossed the bottleneck, so goodput over the
    // transfer window is bounded by the trace's peak rate.
    LinkConfig cfg;
    cfg.bandwidth = BandwidthTrace::square(8e6, 2e6, 0.5);
    cfg.propagationDelayS = 0.0;
    cfg.jitterStddevS = 0.0;
    cfg.lossRate = 0.1;
    cfg.queueCapacityBytes = 64 * 1024;
    cfg.seed = 21;
    LinkSimulator sim(cfg);
    TransferOptions opt;
    opt.reliable = false;
    for (int m = 0; m < 8; ++m) {
        const auto r = sim.sendMessage(150000, m * 0.2, opt);
        if (r.deliveredPackets == 0 || r.durationS() <= 0.0) continue;
        const double goodputBps =
            static_cast<double>(r.deliveredPackets * kMtuBytes) * 8.0 /
            r.durationS();
        EXPECT_LE(goodputBps, cfg.bandwidth.maxRate() * 1.01);
    }
}

TEST(LinkSimulator, DrainDeadlineAdvancesAtLargeTimestamps) {
    // Regression: drainDeadline walks bandwidth-trace segments via
    // nextBoundaryAfter, which computes (floor(t/iv) + 1) * iv. Once
    // floor(t/iv) passes 2^53 the +1 is lost to double rounding, the
    // "next" boundary lands at or before t, and — unlike integrateBits,
    // which always had an FP-advance guard — the drain walk spun forever
    // (t never reached the 1e7 horizon). A fine-grained trace interval
    // makes this reachable at very ordinary send times.
    const double iv = 1e-10;

    // Replicate the boundary formula to find a genuinely stalling send
    // time; exact FP behaviour decides which timestamps collapse, so
    // search instead of hard-coding one.
    double stall = -1.0;
    double t = 1.0e6;
    for (int i = 0; i < 200000 && t < 9.9e6; ++i, t += 0.1) {
        const double next = (std::floor(t / iv + 1e-9) + 1.0) * iv;
        if (next <= t) {
            stall = t;
            break;
        }
    }
    ASSERT_GT(stall, 0.0) << "no collapsing timestamp found for iv=" << iv;

    LinkConfig cfg = cleanLink(8e6, 0.0);
    cfg.bandwidth = BandwidthTrace(std::vector<double>{8e6}, iv);
    LinkSimulator sim(cfg);
    // Pre-fix this call never returned. The guard ends the walk at the
    // stalled boundary instead; completion stays finite and ordered.
    const auto r = sim.sendMessage(20000, stall);
    EXPECT_TRUE(std::isfinite(r.completionTime));
    EXPECT_GE(r.completionTime, stall);
}

TEST(LinkSimulator, ThirtyFpsRawMeshOverwhelmsBroadband) {
    // Table 2: 95.4 Mbps of raw mesh over 25 Mbps broadband falls behind.
    LinkSimulator sim(cleanLink(25e6, 0.02));
    double lastLatency = 0.0;
    for (int f = 0; f < 30; ++f) {
        const double t = f / 30.0;
        const auto r = sim.sendMessage(397700, t);
        lastLatency = r.completionTime - t;
    }
    // Latency grows far beyond one frame interval: unsustainable.
    EXPECT_GT(lastLatency, 1.0);
}

}  // namespace
}  // namespace semholo::net
