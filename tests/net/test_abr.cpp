#include "semholo/net/abr.hpp"

#include <gtest/gtest.h>

#include "semholo/net/link.hpp"

namespace semholo::net {
namespace {

std::vector<QualityLevel> testLadder() {
    return {{"low", 1e6, 1.0}, {"mid", 5e6, 2.0}, {"high", 20e6, 3.0},
            {"ultra", 80e6, 4.0}};
}

TEST(EwmaEstimator, ConvergesToConstantInput) {
    EwmaEstimator est(0.3);
    EXPECT_FALSE(est.hasEstimate());
    for (int i = 0; i < 50; ++i) est.addSample(7e6);
    EXPECT_NEAR(est.estimate(), 7e6, 1.0);
}

TEST(EwmaEstimator, TracksChanges) {
    EwmaEstimator est(0.5);
    est.addSample(10e6);
    est.addSample(2e6);
    EXPECT_LT(est.estimate(), 10e6);
    EXPECT_GT(est.estimate(), 2e6);
}

TEST(HarmonicEstimator, RobustToSpikes) {
    HarmonicEstimator est(5);
    for (int i = 0; i < 4; ++i) est.addSample(5e6);
    est.addSample(500e6);  // spike
    // Harmonic mean stays close to the typical rate.
    EXPECT_LT(est.estimate(), 8e6);
    EXPECT_GT(est.estimate(), 5e6);
}

TEST(HarmonicEstimator, WindowSlides) {
    HarmonicEstimator est(2);
    est.addSample(1e6);
    est.addSample(10e6);
    est.addSample(10e6);  // evicts the 1e6 sample
    EXPECT_NEAR(est.estimate(), 10e6, 1.0);
}

TEST(HarmonicEstimator, IgnoresNonPositive) {
    HarmonicEstimator est(3);
    est.addSample(0.0);
    est.addSample(-5.0);
    EXPECT_FALSE(est.hasEstimate());
    EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
}

TEST(RateBasedAbr, PicksHighestSustainableLevel) {
    const RateBasedAbr abr(testLadder(), 0.9);
    EXPECT_EQ(abr.ladder()[abr.chooseLevel(100e6)].name, "ultra");
    EXPECT_EQ(abr.ladder()[abr.chooseLevel(25e6)].name, "high");
    EXPECT_EQ(abr.ladder()[abr.chooseLevel(6e6)].name, "mid");
    EXPECT_EQ(abr.ladder()[abr.chooseLevel(0.5e6)].name, "low");  // floor
}

TEST(RateBasedAbr, SafetyMarginApplied) {
    const RateBasedAbr abr(testLadder(), 0.5);
    // 20 Mbps level requires estimate >= 40 Mbps at 0.5 safety.
    EXPECT_EQ(abr.ladder()[abr.chooseLevel(39e6)].name, "mid");
    EXPECT_EQ(abr.ladder()[abr.chooseLevel(41e6)].name, "high");
}

TEST(RateBasedAbr, UnsortedLadderHandled) {
    auto ladder = testLadder();
    std::swap(ladder[0], ladder[3]);
    const RateBasedAbr abr(ladder, 0.9);
    EXPECT_EQ(abr.ladder()[abr.chooseLevel(6e6)].name, "mid");
}

TEST(BufferAwareAbr, FullBufferAllowsHigherLevel) {
    const BufferAwareAbr abr(testLadder(), 0.2, 0.9);
    const double estimate = 22e6;  // borderline for "high" (20 Mbps)
    const std::size_t starving = abr.chooseLevel(estimate, 0.0);
    const std::size_t healthy = abr.chooseLevel(estimate, 0.4);
    EXPECT_GT(healthy, starving);
}

TEST(BufferAwareAbr, CriticalBufferForcesDowngrade) {
    const BufferAwareAbr abr(testLadder(), 0.2, 0.9);
    const std::size_t normal = abr.chooseLevel(100e6, 0.2);
    const std::size_t panic = abr.chooseLevel(100e6, 0.01);
    EXPECT_LT(panic, normal);
}

TEST(BufferAwareAbr, NeverBelowFloor) {
    const BufferAwareAbr abr(testLadder(), 0.2, 0.9);
    EXPECT_EQ(abr.chooseLevel(0.1e6, 0.0), 0u);
}

TEST(RateBasedAbr, ColdStartZeroEstimatePicksFloor) {
    // estimate()==0 before the first sample: the controller must sit at
    // the ladder floor instead of misbehaving on the zero.
    const RateBasedAbr rate(testLadder(), 0.9);
    EXPECT_EQ(rate.chooseLevel(0.0), 0u);
    const BufferAwareAbr buffered(testLadder(), 0.2, 0.9);
    EXPECT_EQ(buffered.chooseLevel(0.0, 0.0), 0u);
    EXPECT_EQ(buffered.chooseLevel(0.0, 1.0), 0u);
    const HarmonicEstimator cold(5);
    EXPECT_DOUBLE_EQ(cold.estimate(), 0.0);
    EXPECT_EQ(rate.chooseLevel(cold.estimate()), 0u);
}

TEST(RateBasedAbr, TracksSquareTraceTransitions) {
    // Feed the estimator throughput samples as the trace steps
    // high -> low -> high; the chosen level must follow with the
    // estimator's window lag and recover fully.
    const auto trace = BandwidthTrace::square(25e6, 2e6, 1.0);
    const RateBasedAbr abr(testLadder(), 0.9);
    HarmonicEstimator est(5);
    std::vector<std::size_t> levels;
    for (int i = 0; i < 60; ++i) {
        const double t = i / 20.0;  // 3 s: high [0,1), low [1,2), high [2,3)
        est.addSample(trace.rateAt(t));
        levels.push_back(abr.chooseLevel(est.estimate()));
    }
    const std::size_t highPhase = levels[15];   // steady high
    const std::size_t lowPhase = levels[39];    // end of low phase
    const std::size_t recovered = levels[59];   // back in high
    EXPECT_GT(highPhase, lowPhase);
    EXPECT_EQ(recovered, highPhase);
    // The harmonic mean drags the estimate down quickly on the drop:
    // within its 5-sample window the level has already fallen.
    EXPECT_LE(levels[25], highPhase);
}

TEST(BufferAwareAbr, TraceTransitionWithDrainingBuffer) {
    const auto trace = BandwidthTrace::square(25e6, 2e6, 1.0);
    const BufferAwareAbr abr(testLadder(), 0.3, 0.9);
    HarmonicEstimator est(4);
    double bufferS = 0.3;
    std::size_t duringCollapse = 99;
    for (int i = 0; i < 40; ++i) {
        const double t = i / 20.0;
        est.addSample(trace.rateAt(t));
        const std::size_t level = abr.chooseLevel(est.estimate(), bufferS);
        // Crude buffer dynamics: the low phase drains it.
        bufferS = trace.rateAt(t) > 10e6 ? 0.3 : std::max(0.0, bufferS - 0.05);
        if (i == 39) duringCollapse = level;
    }
    // Low estimate + drained buffer pins the controller to the floor.
    EXPECT_EQ(duringCollapse, 0u);
}

}  // namespace
}  // namespace semholo::net
