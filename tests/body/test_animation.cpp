#include "semholo/body/animation.hpp"

#include <gtest/gtest.h>

namespace semholo::body {
namespace {

TEST(Motion, Deterministic) {
    const MotionGenerator a(MotionKind::Walk, {}, 7);
    const MotionGenerator b(MotionKind::Walk, {}, 7);
    for (double t : {0.0, 0.5, 1.7}) {
        EXPECT_NEAR(poseDistance(a.poseAt(t), b.poseAt(t)), 0.0f, 1e-7f);
    }
}

TEST(Motion, SeedChangesTalkExpression) {
    const MotionGenerator a(MotionKind::Talk, {}, 1);
    const MotionGenerator b(MotionKind::Talk, {}, 2);
    bool differs = false;
    for (double t : {0.3, 0.7, 1.1}) {
        if (std::fabs(a.poseAt(t).expression.coeffs[0] -
                      b.poseAt(t).expression.coeffs[0]) > 1e-3)
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Motion, SequenceLengthAndFrameIds) {
    const MotionGenerator gen(MotionKind::Wave);
    const auto seq = gen.sequence(90, 30.0);
    ASSERT_EQ(seq.size(), 90u);
    for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(seq[i].frameId, i);
}

TEST(Motion, WalkSwingsLegsOutOfPhase) {
    const MotionGenerator gen(MotionKind::Walk);
    // At a swing extreme, left and right hips rotate opposite ways.
    bool sawOpposite = false;
    for (double t = 0.0; t < 1.2; t += 0.05) {
        const Pose p = gen.poseAt(t);
        const float l = p.rotation(JointId::LeftHip).x;
        const float r = p.rotation(JointId::RightHip).x;
        if (l * r < -0.01f) sawOpposite = true;
    }
    EXPECT_TRUE(sawOpposite);
}

TEST(Motion, WaveRaisesRightArm) {
    const Pose p = MotionGenerator(MotionKind::Wave).poseAt(0.5);
    const auto kps = jointKeypoints(p);
    // The waving wrist ends up above the shoulder.
    EXPECT_GT(kps[index(JointId::RightWrist)].y,
              kps[index(JointId::RightShoulder)].y);
}

TEST(Motion, TalkDrivesJawAndExpression) {
    const MotionGenerator gen(MotionKind::Talk);
    double maxJaw = 0.0;
    for (double t = 0.0; t < 1.0; t += 0.02)
        maxJaw = std::max(maxJaw, gen.poseAt(t).expression.coeffs[0]);
    EXPECT_GT(maxJaw, 0.5);
}

TEST(Motion, PosesAreTemporallySmooth) {
    // Frame-to-frame pose distance at 30 FPS stays small: the paper's
    // inter-frame-similarity assumption (section 3.3).
    for (const MotionKind kind : {MotionKind::Idle, MotionKind::Walk, MotionKind::Wave,
                                  MotionKind::Talk, MotionKind::Collaborate}) {
        const MotionGenerator gen(kind);
        const auto seq = gen.sequence(60, 30.0);
        for (std::size_t i = 1; i < seq.size(); ++i) {
            EXPECT_LT(poseDistance(seq[i - 1], seq[i]), 0.4f)
                << motionName(kind) << " frame " << i;
        }
    }
}

TEST(Motion, CollaborateReachesAllPhases) {
    const MotionGenerator gen(MotionKind::Collaborate);
    // Pointing phase: right shoulder rotated; reach phase: both shoulders
    // flexed; manipulate phase: wrists active.
    const Pose point = gen.poseAt(1.5);
    const Pose reach = gen.poseAt(3.5);
    const Pose manip = gen.poseAt(5.0);
    EXPECT_LT(point.rotation(JointId::RightShoulder).z, -0.5f);
    EXPECT_LT(reach.rotation(JointId::LeftShoulder).x, -0.5f);
    EXPECT_NE(manip.rotation(JointId::RightWrist).x, 0.0f);
}

TEST(Motion, NamesAreStable) {
    EXPECT_EQ(motionName(MotionKind::Idle), "idle");
    EXPECT_EQ(motionName(MotionKind::Collaborate), "collaborate");
}

}  // namespace
}  // namespace semholo::body
