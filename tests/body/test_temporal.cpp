#include "semholo/body/temporal.hpp"

#include <gtest/gtest.h>

#include <random>

#include "semholo/body/animation.hpp"

namespace semholo::body {
namespace {

TEST(PoseFilter, FirstSamplePassesThrough) {
    PoseFilter filter;
    const Pose p = MotionGenerator(MotionKind::Wave).poseAt(0.3);
    const Pose out = filter.filter(p, 0.0);
    EXPECT_NEAR(poseDistance(out, p), 0.0f, 1e-6f);
    EXPECT_TRUE(filter.primed());
}

TEST(PoseFilter, SuppressesJitterOnStaticPose) {
    // A static pose observed with additive noise: the filtered stream
    // must have lower variance than the raw observations.
    const Pose truth = MotionGenerator(MotionKind::Idle).poseAt(0.0);
    std::mt19937 rng(5);
    std::normal_distribution<float> noise(0.0f, 0.03f);

    PoseFilter filter;
    double rawErr = 0.0, filteredErr = 0.0;
    for (int f = 0; f < 60; ++f) {
        Pose observed = truth;
        for (auto& r : observed.jointRotations)
            r += {noise(rng), noise(rng), noise(rng)};
        const Pose smoothed = filter.filter(observed, f / 30.0);
        if (f < 10) continue;  // let the filter settle
        rawErr += poseDistance(observed, truth);
        filteredErr += poseDistance(smoothed, truth);
    }
    EXPECT_LT(filteredErr, rawErr * 0.7);
}

TEST(PoseFilter, TracksFastMotionWithoutExcessLag) {
    // One-Euro property: during fast motion the filter follows closely.
    const MotionGenerator gen(MotionKind::Wave);
    PoseFilter filter;
    double lag = 0.0;
    int counted = 0;
    for (int f = 0; f < 90; ++f) {
        const double t = f / 30.0;
        const Pose truth = gen.poseAt(t);
        const Pose smoothed = filter.filter(truth, t);
        if (f < 10) continue;
        lag += poseDistance(smoothed, truth);
        ++counted;
    }
    // Mean lag under ~0.1 rad RMS while the arm waves at 1.6 Hz.
    EXPECT_LT(lag / counted, 0.1);
}

TEST(PoseFilter, NonMonotonicTimestampIgnored) {
    PoseFilter filter;
    const Pose a = MotionGenerator(MotionKind::Talk).poseAt(0.1);
    const Pose b = MotionGenerator(MotionKind::Talk).poseAt(0.9);
    filter.filter(a, 1.0);
    const Pose out = filter.filter(b, 0.5);  // goes backwards
    EXPECT_NEAR(poseDistance(out, a), 0.0f, 1e-6f);
}

TEST(PoseFilter, ResetForgetsState) {
    PoseFilter filter;
    filter.filter(MotionGenerator(MotionKind::Wave).poseAt(0.2), 0.0);
    filter.reset();
    EXPECT_FALSE(filter.primed());
    const Pose p = MotionGenerator(MotionKind::Walk).poseAt(0.7);
    EXPECT_NEAR(poseDistance(filter.filter(p, 0.0), p), 0.0f, 1e-6f);
}

TEST(PosePredictor, ExactForConstantVelocity) {
    // A joint rotating at constant angular velocity extrapolates exactly.
    Pose p0, p1;
    p0.rotation(JointId::LeftElbow) = {0, 0, 0.2f};
    p1.rotation(JointId::LeftElbow) = {0, 0, 0.4f};
    p0.rootTranslation = {0, 0, 0};
    p1.rootTranslation = {0.1f, 0, 0};
    const auto predicted = predictPose(p0, 0.0, p1, 0.1, 0.1);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_NEAR(predicted->rotation(JointId::LeftElbow).z, 0.6f, 1e-3f);
    EXPECT_NEAR(predicted->rootTranslation.x, 0.2f, 1e-5f);
}

TEST(PosePredictor, RejectsNonPositiveDt) {
    const Pose p;
    EXPECT_FALSE(predictPose(p, 1.0, p, 1.0, 0.1).has_value());
    EXPECT_FALSE(predictPose(p, 2.0, p, 1.0, 0.1).has_value());
}

TEST(PosePredictor, ReducesLatencyErrorOnRealMotion) {
    // The latency-hiding use case: render predictPose(t - d, t, d)
    // instead of the stale pose from time t. Prediction must beat
    // rendering the stale pose for a one-frame-ish horizon.
    const MotionGenerator gen(MotionKind::Wave);
    const double horizon = 0.066;  // two frames of latency
    double staleErr = 0.0, predErr = 0.0;
    for (int f = 2; f < 40; ++f) {
        const double t = f / 30.0;
        const Pose prev = gen.poseAt(t - 1.0 / 30.0);
        const Pose latest = gen.poseAt(t);
        const Pose future = gen.poseAt(t + horizon);
        const auto predicted = predictPose(prev, t - 1.0 / 30.0, latest, t, horizon);
        ASSERT_TRUE(predicted.has_value());
        staleErr += keypointDistance(latest, future);
        predErr += keypointDistance(*predicted, future);
    }
    EXPECT_LT(predErr, staleErr);
}

TEST(PosePredictor, ExpressionExtrapolates) {
    Pose p0, p1;
    p0.expression.coeffs[0] = 0.2;
    p1.expression.coeffs[0] = 0.4;
    const auto predicted = predictPose(p0, 0.0, p1, 0.1, 0.05);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_NEAR(predicted->expression.coeffs[0], 0.5, 1e-6);
}

TEST(KeypointDistance, ZeroForIdentical) {
    const Pose p = MotionGenerator(MotionKind::Collaborate).poseAt(1.0);
    EXPECT_NEAR(keypointDistance(p, p), 0.0, 1e-9);
    Pose q = p;
    q.rootTranslation.x += 1.0f;
    EXPECT_NEAR(keypointDistance(p, q), 1.0, 1e-4);
}

}  // namespace
}  // namespace semholo::body
