#include "semholo/body/skeleton.hpp"

#include <gtest/gtest.h>

#include <set>

namespace semholo::body {
namespace {

TEST(Skeleton, Has55Joints) {
    EXPECT_EQ(kJointCount, 55u);
    EXPECT_EQ(Skeleton::canonical().size(), 55u);
}

TEST(Skeleton, ParentsPrecedeChildren) {
    const Skeleton& sk = Skeleton::canonical();
    for (const Joint& j : sk.joints()) {
        EXPECT_LE(index(j.parent), index(j.id))
            << "joint " << j.name << " has a later parent";
    }
}

TEST(Skeleton, SingleRoot) {
    const Skeleton& sk = Skeleton::canonical();
    std::size_t roots = 0;
    for (const Joint& j : sk.joints())
        if (sk.isRoot(j.id)) ++roots;
    EXPECT_EQ(roots, 1u);
    EXPECT_TRUE(sk.isRoot(JointId::Pelvis));
}

TEST(Skeleton, AllJointsReachableFromRoot) {
    const Skeleton& sk = Skeleton::canonical();
    std::set<std::size_t> visited{index(JointId::Pelvis)};
    // Walk in topological order; parent must already be visited.
    for (const Joint& j : sk.joints()) {
        if (sk.isRoot(j.id)) continue;
        EXPECT_TRUE(visited.count(index(j.parent))) << j.name;
        visited.insert(index(j.id));
    }
    EXPECT_EQ(visited.size(), kJointCount);
}

TEST(Skeleton, NamesUnique) {
    const Skeleton& sk = Skeleton::canonical();
    std::set<std::string_view> names;
    for (const Joint& j : sk.joints()) names.insert(j.name);
    EXPECT_EQ(names.size(), kJointCount);
}

TEST(Skeleton, RestPoseIsPlausiblyHuman) {
    const Skeleton& sk = Skeleton::canonical();
    // Head above pelvis, feet below.
    EXPECT_GT(sk.restPosition(JointId::Head).y, 0.5f);
    EXPECT_LT(sk.restPosition(JointId::LeftFoot).y, -0.8f);
    // T-pose: wrists out along +-x, roughly at shoulder height.
    EXPECT_GT(sk.restPosition(JointId::LeftWrist).x, 0.5f);
    EXPECT_LT(sk.restPosition(JointId::RightWrist).x, -0.5f);
    const float shoulderY = sk.restPosition(JointId::LeftShoulder).y;
    EXPECT_NEAR(sk.restPosition(JointId::LeftWrist).y, shoulderY, 0.05f);
    // Total height ~1.6-1.8 m.
    const float height =
        sk.restPosition(JointId::Head).y - sk.restPosition(JointId::LeftFoot).y + 0.2f;
    EXPECT_GT(height, 1.5f);
    EXPECT_LT(height, 2.0f);
}

TEST(Skeleton, LeftRightSymmetry) {
    const Skeleton& sk = Skeleton::canonical();
    const auto mirror = [](Vec3f v) { return Vec3f{-v.x, v.y, v.z}; };
    const std::pair<JointId, JointId> pairs[] = {
        {JointId::LeftShoulder, JointId::RightShoulder},
        {JointId::LeftElbow, JointId::RightElbow},
        {JointId::LeftWrist, JointId::RightWrist},
        {JointId::LeftHip, JointId::RightHip},
        {JointId::LeftKnee, JointId::RightKnee},
        {JointId::LeftAnkle, JointId::RightAnkle},
        {JointId::LeftIndex3, JointId::RightIndex3},
    };
    for (const auto& [l, r] : pairs) {
        const Vec3f lm = mirror(sk.restPosition(l));
        const Vec3f rp = sk.restPosition(r);
        EXPECT_NEAR((lm - rp).norm(), 0.0f, 1e-5f)
            << sk.name(l) << " vs " << sk.name(r);
    }
}

TEST(Skeleton, HandsHaveFifteenJointsEach) {
    std::size_t left = 0, right = 0;
    for (std::size_t i = index(JointId::LeftThumb1); i <= index(JointId::LeftPinky3);
         ++i)
        ++left;
    for (std::size_t i = index(JointId::RightThumb1); i <= index(JointId::RightPinky3);
         ++i)
        ++right;
    EXPECT_EQ(left, 15u);
    EXPECT_EQ(right, 15u);
}

TEST(CanonicalBones, ExcludeEyesIncludeFingers) {
    const auto& bones = canonicalBones();
    // 54 non-root joints minus 2 eyes = 52 bones.
    EXPECT_EQ(bones.size(), 52u);
    for (const Bone& b : bones) {
        EXPECT_NE(b.child, JointId::LeftEye);
        EXPECT_NE(b.child, JointId::RightEye);
        EXPECT_GT(b.radiusAtChild, 0.0f);
        EXPECT_GT(b.radiusAtParent, 0.0f);
    }
}

TEST(Skeleton, ChildrenListsConsistent) {
    const Skeleton& sk = Skeleton::canonical();
    std::size_t totalChildren = 0;
    for (const auto& kids : sk.children()) totalChildren += kids.size();
    // Every non-root joint appears exactly once as a child.
    EXPECT_EQ(totalChildren, kJointCount - 1);
}

}  // namespace
}  // namespace semholo::body
