#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"

namespace semholo::body {
namespace {

using geom::Vec3f;

std::vector<Vec3f> randomPoints(const geom::AABB& bounds, std::size_t n,
                                std::uint32_t seed) {
    std::mt19937 rng(seed);
    // Pad outward so lanes also hit the pruning fast path far from the
    // body, not just the blended interior.
    const Vec3f lo = bounds.lo - Vec3f{0.3f, 0.3f, 0.3f};
    const Vec3f hi = bounds.hi + Vec3f{0.3f, 0.3f, 0.3f};
    std::uniform_real_distribution<float> ux(lo.x, hi.x);
    std::uniform_real_distribution<float> uy(lo.y, hi.y);
    std::uniform_real_distribution<float> uz(lo.z, hi.z);
    std::vector<Vec3f> pts(n);
    for (auto& p : pts) p = {ux(rng), uy(rng), uz(rng)};
    return pts;
}

// The batch kernel must return, per point, EXACTLY the bits the scalar
// field returns — zero tolerance. That is the determinism contract that
// keeps sparse reconstruction byte-identical to dense whichever backend
// (scalar, AVX2) the dispatcher picked on this host; any widening here
// (FMA contraction, reassociation) is a build bug, not slack to absorb.
void expectBatchBitIdentical(const Pose& pose, const BodyFieldOptions& options,
                             std::uint32_t seed) {
    const BodyField body = makeBodyField(pose, Skeleton::canonical(), options);
    ASSERT_TRUE(body.batch);
    // Odd count exercises the padded tail lanes.
    const auto pts = randomPoints(body.bounds, 1003, seed);
    std::vector<float> xs, ys, zs;
    for (const Vec3f& p : pts) {
        xs.push_back(p.x);
        ys.push_back(p.y);
        zs.push_back(p.z);
    }
    std::vector<float> batched(pts.size());
    body.batch(xs.data(), ys.data(), zs.data(), batched.data(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(batched[i], body.field(pts[i])) << "point " << i;
    }
}

TEST(BodyBatch, BitIdenticalToScalarFieldPlain) {
    BodyFieldOptions opt;
    opt.bonePruning = false;
    expectBatchBitIdentical(Pose{}, opt, 1);
}

TEST(BodyBatch, BitIdenticalToScalarFieldWithPruning) {
    BodyFieldOptions opt;
    opt.bonePruning = true;
    expectBatchBitIdentical(MotionGenerator(MotionKind::Wave).poseAt(0.7), opt, 2);
}

TEST(BodyBatch, BitIdenticalToScalarFieldWithExpression) {
    // Talk drives jaw/expression coefficients: the per-lane scalar
    // face-warp pre-pass must agree with the scalar path bit for bit.
    BodyFieldOptions opt;
    opt.bonePruning = true;
    expectBatchBitIdentical(MotionGenerator(MotionKind::Talk).poseAt(0.5), opt, 3);
}

TEST(BodyBatch, BitIdenticalToScalarFieldWithClothing) {
    BodyFieldOptions opt;
    opt.bonePruning = true;
    opt.clothingDetail = true;
    expectBatchBitIdentical(MotionGenerator(MotionKind::Collaborate).poseAt(1.1),
                            opt, 4);
}

TEST(BodyBatch, CountersMatchScalarTallies) {
    const Pose pose = MotionGenerator(MotionKind::Wave).poseAt(0.4);
    BodyFieldOptions opt;
    opt.bonePruning = true;
    // Scalar pass tallies.
    const BodyField scalarBody = makeBodyField(pose, Skeleton::canonical(), opt);
    const auto pts = randomPoints(scalarBody.bounds, 512, 5);
    for (const Vec3f& p : pts) scalarBody.field(p);
    // Batch pass over the same points on a fresh field.
    const BodyField batchBody = makeBodyField(pose, Skeleton::canonical(), opt);
    std::vector<float> xs, ys, zs, out(pts.size());
    for (const Vec3f& p : pts) {
        xs.push_back(p.x);
        ys.push_back(p.y);
        zs.push_back(p.z);
    }
    batchBody.batch(xs.data(), ys.data(), zs.data(), out.data(), pts.size());
    EXPECT_EQ(batchBody.stats->bonesBlended(), scalarBody.stats->bonesBlended());
    EXPECT_EQ(batchBody.stats->bonesPruned(), scalarBody.stats->bonesPruned());
}

TEST(BodyBatch, BackendNameIsReported) {
    const char* name = bodyBatchBackend();
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(std::string(name) == "avx2" || std::string(name) == "scalar" ||
                std::string(name) == "neon")
        << name;
}

}  // namespace
}  // namespace semholo::body
