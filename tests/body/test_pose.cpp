#include "semholo/body/pose.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace semholo::body {
namespace {

Pose randomPose(std::uint32_t seed, float amplitude = 0.6f) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> uni(-amplitude, amplitude);
    Pose p;
    for (Vec3f& r : p.jointRotations) r = {uni(rng), uni(rng), uni(rng)};
    p.rootTranslation = {uni(rng), uni(rng), uni(rng)};
    for (double& b : p.shape.betas) b = uni(rng);
    for (double& e : p.expression.coeffs) e = uni(rng);
    p.frameId = seed;
    return p;
}

TEST(PosePayload, ExactlyMatchesPaperSize) {
    // Table 2: 1.91 KB per frame before compression.
    const auto bytes = serializePose(Pose{});
    EXPECT_EQ(bytes.size(), kPosePayloadBytes);
    EXPECT_EQ(bytes.size(), 1956u);
    EXPECT_NEAR(static_cast<double>(bytes.size()) / 1024.0, 1.91, 0.01);
}

TEST(PosePayload, RoundTripLossless) {
    const Pose original = randomPose(42);
    const auto bytes = serializePose(original);
    const auto decoded = deserializePose(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->frameId, original.frameId);
    for (std::size_t i = 0; i < kJointCount; ++i)
        EXPECT_EQ(decoded->jointRotations[i], original.jointRotations[i]);
    EXPECT_EQ(decoded->rootTranslation, original.rootTranslation);
    EXPECT_EQ(decoded->shape, original.shape);
    EXPECT_EQ(decoded->expression, original.expression);
}

TEST(PosePayload, WrongSizeRejected) {
    auto bytes = serializePose(Pose{});
    bytes.pop_back();
    EXPECT_FALSE(deserializePose(bytes).has_value());
    bytes.push_back(0);
    bytes.push_back(0);
    EXPECT_FALSE(deserializePose(bytes).has_value());
}

TEST(ForwardKinematics, RestPoseMatchesSkeleton) {
    const Skeleton& sk = Skeleton::canonical();
    const SkeletonState state = forwardKinematics(Pose{});
    for (const Joint& j : sk.joints()) {
        const Vec3f p = state.position(j.id);
        const Vec3f expect = sk.restPosition(j.id);
        EXPECT_NEAR((p - expect).norm(), 0.0f, 1e-5f) << j.name;
    }
}

TEST(ForwardKinematics, RootTranslationMovesEverything) {
    Pose p;
    p.rootTranslation = {1, 2, 3};
    const SkeletonState state = forwardKinematics(p);
    const Skeleton& sk = Skeleton::canonical();
    for (const Joint& j : sk.joints()) {
        const Vec3f expect = sk.restPosition(j.id) + Vec3f{1, 2, 3};
        EXPECT_NEAR((state.position(j.id) - expect).norm(), 0.0f, 1e-4f);
    }
}

TEST(ForwardKinematics, ElbowRotationMovesWristOnly) {
    Pose p;
    p.rotation(JointId::LeftElbow) = {0, 0, -1.2f};  // bend the left elbow
    const SkeletonState state = forwardKinematics(p);
    const Skeleton& sk = Skeleton::canonical();
    // Shoulder unchanged.
    EXPECT_NEAR(
        (state.position(JointId::LeftShoulder) - sk.restPosition(JointId::LeftShoulder))
            .norm(),
        0.0f, 1e-5f);
    // Elbow joint position unchanged (rotation is about the joint).
    EXPECT_NEAR(
        (state.position(JointId::LeftElbow) - sk.restPosition(JointId::LeftElbow)).norm(),
        0.0f, 1e-5f);
    // Wrist moved, but forearm length preserved.
    const float forearmRest =
        (sk.restPosition(JointId::LeftWrist) - sk.restPosition(JointId::LeftElbow))
            .norm();
    const float forearmPosed =
        (state.position(JointId::LeftWrist) - state.position(JointId::LeftElbow)).norm();
    EXPECT_NEAR(forearmPosed, forearmRest, 1e-5f);
    EXPECT_GT(
        (state.position(JointId::LeftWrist) - sk.restPosition(JointId::LeftWrist)).norm(),
        0.1f);
}

TEST(ForwardKinematics, BoneLengthsInvariantUnderPose) {
    const Skeleton& sk = Skeleton::canonical();
    for (std::uint32_t seed : {1u, 2u, 3u}) {
        const Pose p = randomPose(seed);
        const SkeletonState state = forwardKinematics(p);
        for (const Joint& j : sk.joints()) {
            if (sk.isRoot(j.id)) continue;
            const float rest = j.restOffset.norm() * boneScale(p.shape, j.id);
            const float posed =
                (state.position(j.id) - state.position(j.parent)).norm();
            EXPECT_NEAR(posed, rest, 1e-4f) << j.name;
        }
    }
}

TEST(ForwardKinematics, ShapeBetaZeroScalesHeight) {
    Pose tall;
    tall.shape.betas[0] = 3.0;
    Pose rest;
    const SkeletonState tallState = forwardKinematics(tall);
    const SkeletonState restState = forwardKinematics(rest);
    EXPECT_GT(tallState.position(JointId::Head).y,
              restState.position(JointId::Head).y);
    EXPECT_LT(tallState.position(JointId::LeftFoot).y,
              restState.position(JointId::LeftFoot).y);
}

TEST(BoneScale, PositiveForReasonableBetas) {
    std::mt19937 rng(5);
    std::uniform_real_distribution<double> uni(-4.0, 4.0);
    for (int trial = 0; trial < 100; ++trial) {
        ShapeParams shape;
        for (double& b : shape.betas) b = uni(rng);
        for (std::size_t j = 0; j < kJointCount; ++j)
            EXPECT_GT(boneScale(shape, static_cast<JointId>(j)), 0.0f);
    }
}

TEST(JointKeypoints, MatchesForwardKinematics) {
    const Pose p = randomPose(9);
    const auto kps = jointKeypoints(p);
    const SkeletonState state = forwardKinematics(p);
    for (std::size_t i = 0; i < kJointCount; ++i)
        EXPECT_EQ(kps[i], state.worldFromJoint[i].translation);
}

TEST(InterpolatePoses, EndpointsAndContinuity) {
    const Pose a = randomPose(1);
    const Pose b = randomPose(2);
    EXPECT_NEAR(poseDistance(interpolatePoses(a, b, 0.0f), a), 0.0f, 1e-4f);
    EXPECT_NEAR(poseDistance(interpolatePoses(a, b, 1.0f), b), 0.0f, 1e-4f);
    // Midpoint lies between the endpoints.
    const Pose mid = interpolatePoses(a, b, 0.5f);
    EXPECT_LT(poseDistance(mid, a), poseDistance(b, a));
}

TEST(PoseDistance, ZeroForIdenticalSymmetricOtherwise) {
    const Pose a = randomPose(3);
    const Pose b = randomPose(4);
    EXPECT_NEAR(poseDistance(a, a), 0.0f, 1e-6f);
    EXPECT_NEAR(poseDistance(a, b), poseDistance(b, a), 1e-5f);
    EXPECT_GT(poseDistance(a, b), 0.0f);
}

}  // namespace
}  // namespace semholo::body
