#include "semholo/body/body_model.hpp"

#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"
#include "semholo/mesh/isosurface.hpp"
#include "semholo/mesh/metrics.hpp"
#include "semholo/mesh/sampling.hpp"

namespace semholo::body {
namespace {

// Template construction is expensive; share one across tests.
const BodyModel& sharedModel() {
    static const BodyModel model{ShapeParams{}, 72};
    return model;
}

TEST(BodySignedDistance, NegativeInsidePositiveOutside) {
    const Pose rest;
    const auto sdf = bodySignedDistance(rest);
    // Torso centre is inside.
    EXPECT_LT(sdf({0.0f, 0.2f, 0.0f}), 0.0f);
    // Head centre is inside.
    EXPECT_LT(sdf({0.0f, 0.62f, 0.0f}), 0.0f);
    // Far away is outside.
    EXPECT_GT(sdf({2.0f, 0.0f, 0.0f}), 0.5f);
    EXPECT_GT(sdf({0.0f, 3.0f, 0.0f}), 0.5f);
}

TEST(BodySignedDistance, TracksPose) {
    Pose bent;
    bent.rotation(JointId::LeftElbow) = {0, 0, -1.4f};
    const auto sdfRest = bodySignedDistance(Pose{});
    const auto sdfBent = bodySignedDistance(bent);
    // The rest-pose wrist location is inside at rest but empties out when
    // the elbow bends.
    const Vec3f wristRest = Skeleton::canonical().restPosition(JointId::LeftWrist);
    EXPECT_LT(sdfRest(wristRest), 0.01f);
    EXPECT_GT(sdfBent(wristRest), 0.02f);
}

TEST(BodyBounds, ContainsAllKeypoints) {
    const MotionGenerator gen(MotionKind::Collaborate);
    for (double t : {0.0, 1.0, 3.0, 5.0}) {
        const Pose p = gen.poseAt(t);
        const auto box = bodyBounds(p);
        for (const Vec3f& kp : jointKeypoints(p)) EXPECT_TRUE(box.contains(kp));
    }
}

TEST(BodyModel, TemplateIsClosedAndHumanSized) {
    const TriMesh& tmpl = sharedModel().templateMesh();
    ASSERT_GT(tmpl.triangleCount(), 1000u);
    EXPECT_EQ(tmpl.countBoundaryEdges(), 0u);
    const auto box = tmpl.bounds();
    // Standing human: ~1.7 m tall, arm span ~1.5+ m in T-pose.
    EXPECT_GT(box.extent().y, 1.4f);
    EXPECT_GT(box.extent().x, 1.2f);
}

TEST(BodyModel, TemplateHasTexture) {
    const TriMesh& tmpl = sharedModel().templateMesh();
    ASSERT_TRUE(tmpl.hasColors());
    // The texture must not be constant (skin + clothes bands).
    Vec3f lo{1, 1, 1}, hi{0, 0, 0};
    for (const Vec3f& c : tmpl.colors) {
        lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
        hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
    }
    EXPECT_GT((hi - lo).norm(), 0.3f);
}

TEST(BodyModel, SkinWeightsNormalized) {
    for (const SkinWeights& w : sharedModel().skinWeights()) {
        float sum = 0.0f;
        for (const float wk : w.weights) {
            EXPECT_GE(wk, 0.0f);
            sum += wk;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-4f);
        for (const std::uint16_t j : w.joints) EXPECT_LT(j, kJointCount);
    }
}

TEST(BodyModel, DeformAtRestIsNearTemplate) {
    const BodyModel& model = sharedModel();
    Pose rest;
    rest.shape = model.shape();
    const TriMesh deformed = model.deform(rest);
    ASSERT_EQ(deformed.vertexCount(), model.templateMesh().vertexCount());
    double maxDrift = 0.0;
    for (std::size_t i = 0; i < deformed.vertexCount(); ++i)
        maxDrift = std::max(
            maxDrift, static_cast<double>(
                          (deformed.vertices[i] - model.templateMesh().vertices[i])
                              .norm()));
    EXPECT_LT(maxDrift, 1e-4);
}

TEST(BodyModel, DeformMovesArmWithElbow) {
    const BodyModel& model = sharedModel();
    Pose bent;
    bent.shape = model.shape();
    bent.rotation(JointId::LeftElbow) = {0, 0, -1.4f};
    const TriMesh deformed = model.deform(bent);

    // Vertices near the rest wrist should move; torso should not.
    const Vec3f wrist = Skeleton::canonical().restPosition(JointId::LeftWrist);
    const Vec3f chest{0.0f, 0.3f, 0.0f};
    double wristMove = 0.0, chestMove = 0.0;
    std::size_t wristN = 0, chestN = 0;
    for (std::size_t i = 0; i < deformed.vertexCount(); ++i) {
        const Vec3f& rest = model.templateMesh().vertices[i];
        const double move = (deformed.vertices[i] - rest).norm();
        if ((rest - wrist).norm() < 0.08f) {
            wristMove += move;
            ++wristN;
        }
        if ((rest - chest).norm() < 0.12f) {
            chestMove += move;
            ++chestN;
        }
    }
    ASSERT_GT(wristN, 0u);
    ASSERT_GT(chestN, 0u);
    EXPECT_GT(wristMove / static_cast<double>(wristN), 0.05);
    EXPECT_LT(chestMove / static_cast<double>(chestN), 0.02);
}

TEST(BodyModel, DeformedMeshStaysNearImplicitSurface) {
    // The LBS-deformed template and the posed implicit field describe the
    // same body: sampled surface points should have small field values.
    const BodyModel& model = sharedModel();
    const MotionGenerator gen(MotionKind::Wave);
    const Pose p = gen.poseAt(0.4);
    const TriMesh deformed = model.deform(p);
    const auto sdf = bodySignedDistance(p);
    const auto samples = mesh::sampleSurface(deformed, 400, 5);
    double meanAbs = 0.0;
    for (const Vec3f& s : samples.points) meanAbs += std::fabs(sdf(s));
    meanAbs /= static_cast<double>(samples.size());
    EXPECT_LT(meanAbs, 0.05);
}

TEST(ExpressionOffset, JawOpenPullsLowerFaceDown) {
    ExpressionParams expr;
    expr.coeffs[0] = 1.0;  // jaw open
    // Just below the mouth centre.
    const Vec3f lowerLip{0.0f, 0.645f, 0.10f};
    const Vec3f offset = expressionOffset(lowerLip, expr);
    EXPECT_LT(offset.y, 0.0f);
    // A point on the torso is unaffected.
    EXPECT_EQ(expressionOffset({0.0f, 0.0f, 0.1f}, expr), (Vec3f{}));
}

TEST(ExpressionOffset, PoutPushesLipsForward) {
    ExpressionParams expr;
    expr.coeffs[1] = 1.0;
    const Vec3f lips{0.0f, 0.66f, 0.10f};
    EXPECT_GT(expressionOffset(lips, expr).z, 0.0f);
}

TEST(ExpressionOffset, SmileSpreadsCornersOutward) {
    ExpressionParams expr;
    expr.coeffs[2] = 1.0;
    const Vec3f leftCorner{0.02f, 0.66f, 0.10f};
    const Vec3f rightCorner{-0.02f, 0.66f, 0.10f};
    EXPECT_GT(expressionOffset(leftCorner, expr).x, 0.0f);
    EXPECT_LT(expressionOffset(rightCorner, expr).x, 0.0f);
}

TEST(GroundTruthAlbedo, RegionsDiffer) {
    const Vec3f head = groundTruthAlbedo({0.0f, 0.7f, 0.05f});
    const Vec3f chest = groundTruthAlbedo({0.0f, 0.2f, 0.05f});
    const Vec3f leg = groundTruthAlbedo({0.05f, -0.5f, 0.0f});
    EXPECT_GT((head - chest).norm(), 0.2f);
    EXPECT_GT((chest - leg).norm(), 0.2f);
}

TEST(BodyModel, HigherResolutionTemplateHasMoreDetail) {
    const BodyModel lo(ShapeParams{}, 40);
    EXPECT_GT(sharedModel().templateMesh().vertexCount(),
              lo.templateMesh().vertexCount() * 2);
}

}  // namespace
}  // namespace semholo::body
