#include "semholo/body/ik.hpp"

#include <gtest/gtest.h>

#include <random>

#include "semholo/body/animation.hpp"

namespace semholo::body {
namespace {

TEST(Ik, RecoversRestPose) {
    const auto kps = jointKeypoints(Pose{});
    const IkResult result = fitPoseToKeypoints(kps);
    EXPECT_LT(result.residual, 1e-3f);
    EXPECT_LT(poseDistance(result.pose, Pose{}), 0.05f);
}

TEST(Ik, RecoversRootTranslation) {
    Pose p;
    p.rootTranslation = {0.5f, 0.1f, -0.8f};
    const IkResult result = fitPoseToKeypoints(jointKeypoints(p));
    EXPECT_NEAR((result.pose.rootTranslation - p.rootTranslation).norm(), 0.0f, 1e-4f);
}

TEST(Ik, RecoversElbowBend) {
    Pose p;
    p.rotation(JointId::LeftElbow) = {0, 0, -1.0f};
    const auto kps = jointKeypoints(p);
    const IkResult result = fitPoseToKeypoints(kps);
    // Keypoints of the fitted pose must land near the observations —
    // that is the quantity that matters downstream.
    const auto recovered = jointKeypoints(result.pose);
    EXPECT_LT(result.residual, 0.01f);
    EXPECT_NEAR((recovered[index(JointId::LeftWrist)] -
                 kps[index(JointId::LeftWrist)])
                    .norm(),
                0.0f, 0.02f);
}

TEST(Ik, KeypointResidualSmallAcrossMotions) {
    for (const MotionKind kind :
         {MotionKind::Walk, MotionKind::Wave, MotionKind::Talk,
          MotionKind::Collaborate}) {
        const MotionGenerator gen(kind);
        for (double t : {0.2, 0.9, 2.1, 4.4}) {
            const Pose p = gen.poseAt(t);
            const IkResult result = fitPoseToKeypoints(jointKeypoints(p));
            EXPECT_LT(result.residual, 0.03f)
                << motionName(kind) << " at t=" << t;
        }
    }
}

TEST(Ik, RobustToModerateNoise) {
    const MotionGenerator gen(MotionKind::Wave);
    const Pose p = gen.poseAt(1.0);
    auto kps = jointKeypoints(p);
    std::mt19937 rng(17);
    std::normal_distribution<float> noise(0.0f, 0.005f);  // 5 mm
    for (Vec3f& kp : kps) kp += {noise(rng), noise(rng), noise(rng)};
    const IkResult result = fitPoseToKeypoints(kps);
    // Residual on the same order as the injected noise.
    EXPECT_LT(result.residual, 0.05f);
}

TEST(Ik, LowConfidenceJointsIgnored) {
    const Pose p = MotionGenerator(MotionKind::Walk).poseAt(0.7);
    auto kps = jointKeypoints(p);
    std::array<float, kJointCount> conf;
    conf.fill(1.0f);
    // Corrupt a dropped-out keypoint badly; with zero confidence the fit
    // must not chase it.
    kps[index(JointId::RightWrist)] = {100, 100, 100};
    conf[index(JointId::RightWrist)] = 0.0f;
    const IkResult result = fitPoseToKeypoints(kps, conf);
    EXPECT_LT(result.residual, 0.05f);
}

TEST(Ik, ShapeAwareFit) {
    Pose p;
    p.shape.betas[0] = 2.0;  // taller subject
    p.rotation(JointId::LeftShoulder) = {0.4f, 0, 0};
    IkOptions opt;
    opt.shape = p.shape;
    const IkResult result = fitPoseToKeypoints(jointKeypoints(p), opt);
    EXPECT_LT(result.residual, 0.02f);
}

TEST(Ik, ResidualReportedHonestly) {
    // Feeding garbage keypoints must produce a large residual, not a
    // silent bad fit.
    std::array<Vec3f, kJointCount> kps;
    std::mt19937 rng(23);
    std::uniform_real_distribution<float> uni(-1.0f, 1.0f);
    for (Vec3f& kp : kps) kp = {uni(rng), uni(rng), uni(rng)};
    const IkResult result = fitPoseToKeypoints(kps);
    EXPECT_GT(result.residual, 0.05f);
}

}  // namespace
}  // namespace semholo::body
