#include "semholo/gaze/foveation.hpp"

#include <gtest/gtest.h>

namespace semholo::gaze {
namespace {

using geom::RigidTransform;
using geom::Vec3f;

TEST(GazeRay, StraightAheadIsPlusZ) {
    const geom::Ray ray = gazeRay(RigidTransform::identity(), {0, 0});
    EXPECT_NEAR(ray.direction.z, 1.0f, 1e-5f);
    EXPECT_NEAR(ray.direction.x, 0.0f, 1e-5f);
}

TEST(GazeRay, AzimuthRotatesRight) {
    const geom::Ray ray = gazeRay(RigidTransform::identity(), {90, 0});
    EXPECT_NEAR(ray.direction.x, 1.0f, 1e-5f);
    EXPECT_NEAR(ray.direction.z, 0.0f, 1e-5f);
}

TEST(GazeRay, ElevationLooksUp) {
    const geom::Ray ray = gazeRay(RigidTransform::identity(), {0, 45});
    EXPECT_GT(ray.direction.y, 0.5f);
}

TEST(GazeRay, HeadPoseApplied) {
    RigidTransform head;
    head.translation = {1, 2, 3};
    const geom::Ray ray = gazeRay(head, {0, 0});
    EXPECT_EQ(ray.origin, (Vec3f{1, 2, 3}));
}

TEST(Foveation, PartitionSplitsByEccentricity) {
    // Viewer at -5z looking at a sphere at origin: only the part of the
    // sphere within the foveal cone is foveal.
    const auto sphere = mesh::makeUVSphere(0.5f, 24, 48);
    RigidTransform head;
    head.translation = {0, 0, -5};
    const geom::Ray gaze = gazeRay(head, {0, 0});
    FoveationConfig cfg;
    cfg.fovealRadiusDeg = 4.0;
    const auto part = partitionMesh(sphere, gaze, cfg);
    EXPECT_GT(part.fovealVertices.size(), 0u);
    EXPECT_GT(part.peripheralVertices.size(), 0u);
    EXPECT_EQ(part.fovealVertices.size() + part.peripheralVertices.size(),
              sphere.vertexCount());
    // tan(4 deg) * 5 =~ 0.35 lateral radius: all foveal vertices near axis.
    for (const auto vi : part.fovealVertices) {
        const Vec3f& v = sphere.vertices[vi];
        EXPECT_LT(std::hypot(v.x, v.y), 0.4f);
    }
}

TEST(Foveation, WiderConeMoreFoveal) {
    const auto sphere = mesh::makeUVSphere(0.5f, 16, 32);
    RigidTransform head;
    head.translation = {0, 0, -5};
    const geom::Ray gaze = gazeRay(head, {0, 0});
    FoveationConfig narrow, wide;
    narrow.fovealRadiusDeg = 3.0;
    wide.fovealRadiusDeg = 12.0;
    EXPECT_GT(partitionMesh(sphere, gaze, wide).fovealFraction,
              partitionMesh(sphere, gaze, narrow).fovealFraction);
}

TEST(Foveation, GazeDirectionMatters) {
    const auto sphere = mesh::makeUVSphere(0.5f, 16, 32);
    RigidTransform head;
    head.translation = {0, 0, -5};
    FoveationConfig cfg;
    cfg.fovealRadiusDeg = 5.0;
    // Looking 30 degrees off to the side misses the sphere entirely.
    const auto off = partitionMesh(sphere, gazeRay(head, {30, 0}), cfg);
    EXPECT_EQ(off.fovealVertices.size(), 0u);
}

TEST(Foveation, ExtractFovealMeshConsistent) {
    const auto sphere = mesh::makeUVSphere(0.5f, 24, 48);
    RigidTransform head;
    head.translation = {0, 0, -5};
    const auto part = partitionMesh(sphere, gazeRay(head, {0, 0}), {});
    const auto sub = extractFovealMesh(sphere, part);
    EXPECT_EQ(sub.vertexCount(), part.fovealVertices.size());
    EXPECT_EQ(sub.triangleCount(), part.fovealTriangles.size());
    for (const auto& t : sub.triangles) {
        EXPECT_LT(t.a, sub.vertexCount());
        EXPECT_LT(t.b, sub.vertexCount());
        EXPECT_LT(t.c, sub.vertexCount());
    }
}

TEST(Foveation, EmptyMeshSafe) {
    const auto part = partitionMesh(mesh::TriMesh{}, geom::Ray{{0, 0, 0}, {0, 0, 1}});
    EXPECT_EQ(part.fovealVertices.size(), 0u);
    EXPECT_DOUBLE_EQ(part.fovealFraction, 0.0);
}

}  // namespace
}  // namespace semholo::gaze
