#include "semholo/gaze/gaze.hpp"

#include <gtest/gtest.h>

namespace semholo::gaze {
namespace {

TEST(GazeStream, SampleRateAndDuration) {
    GazeModelConfig cfg;
    const auto samples = generateGazeStream(2.0, cfg, 1);
    ASSERT_GT(samples.size(), 200u);
    EXPECT_NEAR(static_cast<double>(samples.size()), 2.0 * cfg.sampleRateHz, 15.0);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GT(samples[i].time, samples[i - 1].time);
}

TEST(GazeStream, Deterministic) {
    const auto a = generateGazeStream(1.0, {}, 42);
    const auto b = generateGazeStream(1.0, {}, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].angles, b[i].angles);
}

TEST(GazeStream, StaysWithinFov) {
    GazeModelConfig cfg;
    cfg.fovHalfAngleDeg = 20.0;
    const auto samples = generateGazeStream(10.0, cfg, 3);
    for (const auto& s : samples) {
        EXPECT_LE(std::fabs(s.angles.x), 20.0f + 1e-3f);
        EXPECT_LE(std::fabs(s.angles.y), 20.0f + 1e-3f);
    }
}

TEST(GazeStream, ContainsAllThreeMovementTypes) {
    GazeModelConfig cfg;
    cfg.pursuitProbability = 0.5;
    const auto samples = generateGazeStream(20.0, cfg, 7);
    const auto events = classifyGaze(samples);
    bool fix = false, pur = false, sac = false;
    for (const auto& e : events) {
        if (e.type == EyeMovement::Fixation) fix = true;
        if (e.type == EyeMovement::SmoothPursuit) pur = true;
        if (e.type == EyeMovement::Saccade) sac = true;
    }
    EXPECT_TRUE(fix);
    EXPECT_TRUE(pur);
    EXPECT_TRUE(sac);
}

TEST(Classifier, VelocityBandsRespected) {
    // Hand-built stream: still, slow drift, fast jump.
    std::vector<GazeSample> samples;
    double t = 0.0;
    const double dt = 1.0 / 100.0;
    for (int i = 0; i < 30; ++i, t += dt) samples.push_back({t, {0, 0}});
    Vec2f g{0, 0};
    for (int i = 0; i < 30; ++i, t += dt) {
        g.x += 0.1f;  // 10 deg/s: pursuit band
        samples.push_back({t, g});
    }
    for (int i = 0; i < 10; ++i, t += dt) {
        g.x += 3.0f;  // 300 deg/s: saccade band
        samples.push_back({t, g});
    }
    const auto events = classifyGaze(samples);
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(events.front().type, EyeMovement::Fixation);
    EXPECT_EQ(events[1].type, EyeMovement::SmoothPursuit);
    EXPECT_EQ(events.back().type, EyeMovement::Saccade);
}

TEST(Classifier, EmptyAndTinyInputs) {
    EXPECT_TRUE(classifyGaze({}).empty());
    EXPECT_TRUE(classifyGaze({{0.0, {0, 0}}}).empty());
}

TEST(AngularVelocity, Basic) {
    const GazeSample a{0.0, {0, 0}};
    const GazeSample b{0.1, {1, 0}};
    EXPECT_NEAR(angularVelocity(a, b), 10.0, 1e-6);
    EXPECT_DOUBLE_EQ(angularVelocity(b, a), 0.0);  // non-positive dt
}

TEST(SaccadePrediction, LandsNearTrueTarget) {
    // Find a saccade in a generated stream and predict from its first
    // 40% of samples; landing error should beat naive extrapolation of
    // the current position.
    GazeModelConfig cfg;
    cfg.pursuitProbability = 0.0;
    const auto samples = generateGazeStream(20.0, cfg, 11);
    const auto events = classifyGaze(samples);
    int tested = 0;
    double predErr = 0.0, naiveErr = 0.0;
    for (const auto& e : events) {
        if (e.type != EyeMovement::Saccade) continue;
        if (e.endIndex - e.beginIndex < 5) continue;
        const std::size_t mid = e.beginIndex + (e.endIndex - e.beginIndex) * 2 / 5;
        const auto pred = predictSaccadeLanding(samples, e.beginIndex, mid);
        if (!pred.valid) continue;
        const Vec2f truth = samples[e.endIndex].angles;
        predErr += (pred.predicted - truth).norm();
        naiveErr += (samples[mid].angles - truth).norm();
        ++tested;
    }
    ASSERT_GT(tested, 2);
    // Ballistic prediction beats "assume gaze stays where it is now".
    EXPECT_LT(predErr, naiveErr);
}

TEST(SaccadePrediction, InvalidOnDegenerateInput) {
    const std::vector<GazeSample> samples{{0.0, {0, 0}}, {0.01, {0, 0}}};
    EXPECT_FALSE(predictSaccadeLanding(samples, 0, 0).valid);
    EXPECT_FALSE(predictSaccadeLanding(samples, 0, 5).valid);
    // Zero velocity: no direction signal.
    EXPECT_FALSE(predictSaccadeLanding(samples, 0, 1).valid);
}

}  // namespace
}  // namespace semholo::gaze
