#include "semholo/textsem/delta.hpp"

#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"

namespace semholo::textsem {
namespace {

using body::MotionGenerator;
using body::MotionKind;
using body::Pose;

TEST(Delta, FirstFrameIsKeyframe) {
    DeltaEncoder enc;
    const auto packet = enc.encode(Pose{});
    EXPECT_TRUE(packet.keyframe);
    EXPECT_TRUE(packet.globalPresent);
    EXPECT_EQ(packet.cellsEncoded(), kCellCount);
}

TEST(Delta, UnchangedFrameSendsNothing) {
    DeltaEncoder enc;
    Pose pose;
    enc.encode(pose);
    pose.frameId = 1;  // frame id changes but quantised content does not
    const auto packet = enc.encode(pose);
    EXPECT_FALSE(packet.keyframe);
    EXPECT_EQ(packet.channelMask, 0u);
}

TEST(Delta, OnlyChangedCellTransmitted) {
    DeltaEncoder enc;
    Pose pose;
    enc.encode(pose);
    pose.rotation(body::JointId::LeftElbow) = {0, 0, -1.0f};
    pose.frameId = 1;
    const auto packet = enc.encode(pose);
    EXPECT_FALSE(packet.keyframe);
    EXPECT_EQ(packet.cellsEncoded(), 1u);
    EXPECT_TRUE(packet.channelMask &
                (1u << static_cast<std::size_t>(BodyCell::LeftArm)));
}

TEST(Delta, EncodeDecodeRoundTripOverSequence) {
    const MotionGenerator gen(MotionKind::Talk);
    DeltaEncoder enc;
    DeltaDecoder dec;
    const auto poses = gen.sequence(30, 30.0);
    for (const Pose& pose : poses) {
        const auto packet = enc.encode(pose);
        const auto decoded = dec.decode(packet);
        ASSERT_TRUE(decoded.has_value()) << "frame " << pose.frameId;
        EXPECT_EQ(decoded->frameId, pose.frameId);
        EXPECT_LT(body::poseDistance(pose, *decoded), 0.08f)
            << "frame " << pose.frameId;
    }
}

TEST(Delta, DeltaFramesSmallerThanKeyframes) {
    const MotionGenerator gen(MotionKind::Talk);
    DeltaEncoder enc;
    const auto poses = gen.sequence(30, 30.0);
    std::size_t keyBytes = 0, deltaBytes = 0, deltaCount = 0;
    for (const Pose& pose : poses) {
        const auto packet = enc.encode(pose);
        if (packet.keyframe) {
            keyBytes = packet.wireBytes();
        } else {
            deltaBytes += packet.wireBytes();
            ++deltaCount;
        }
    }
    ASSERT_GT(deltaCount, 0u);
    EXPECT_LT(deltaBytes / deltaCount, keyBytes);
}

TEST(Delta, DeltaReducesSimulatedInference) {
    // Section 3.3: encoding only changed cells cuts extraction and
    // reconstruction cost.
    const MotionGenerator gen(MotionKind::Wave);  // only one arm moves
    DeltaEncoder enc;
    const auto poses = gen.sequence(20, 30.0);
    double fullCost = 0.0, deltaCost = 0.0;
    for (const Pose& pose : poses) {
        const auto packet = enc.encode(pose);
        fullCost += reconCostMs(kCellCount);
        deltaCost += reconCostMs(packet.cellsEncoded());
    }
    EXPECT_LT(deltaCost, fullCost * 0.8);
}

TEST(Delta, DecoderRequiresKeyframeFirst) {
    DeltaEncoder enc;
    DeltaDecoder dec;
    Pose pose;
    enc.encode(pose);  // keyframe consumed by nobody
    pose.rotation(body::JointId::LeftElbow) = {0, 0, -1.0f};
    pose.frameId = 1;
    const auto delta = enc.encode(pose);
    EXPECT_FALSE(dec.decode(delta).has_value());
}

TEST(Delta, ForceKeyframeRecovers) {
    const MotionGenerator gen(MotionKind::Walk);
    DeltaEncoder enc;
    DeltaDecoder dec;
    enc.encode(gen.poseAt(0.0));  // lost keyframe
    const Pose pose = gen.poseAt(0.5);
    const auto packet = enc.encode(pose, /*forceKeyframe=*/true);
    EXPECT_TRUE(packet.keyframe);
    const auto decoded = dec.decode(packet);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_LT(body::poseDistance(pose, *decoded), 0.08f);
}

TEST(Delta, CorruptPayloadRejected) {
    DeltaEncoder enc;
    auto packet = enc.encode(Pose{});
    packet.payload.assign(10, 0xFF);
    DeltaDecoder dec;
    EXPECT_FALSE(dec.decode(packet).has_value());
}

TEST(Delta, StateResetsCleanly) {
    DeltaEncoder enc;
    DeltaDecoder dec;
    enc.encode(Pose{});
    enc.reset();
    const auto packet = enc.encode(Pose{});
    EXPECT_TRUE(packet.keyframe);  // reset forces a new keyframe
    dec.reset();
    EXPECT_TRUE(dec.decode(packet).has_value());
}

}  // namespace
}  // namespace semholo::textsem
