#include "semholo/textsem/captioner.hpp"

#include <gtest/gtest.h>

#include "semholo/body/animation.hpp"

namespace semholo::textsem {
namespace {

using body::JointId;
using body::MotionGenerator;
using body::MotionKind;
using body::Pose;

TEST(CellMapping, EveryJointHasACell) {
    for (std::size_t j = 0; j < body::kJointCount; ++j) {
        const BodyCell cell = cellOfJoint(static_cast<JointId>(j));
        EXPECT_LT(static_cast<std::size_t>(cell), kCellCount);
    }
    EXPECT_EQ(cellOfJoint(JointId::LeftIndex2), BodyCell::LeftHand);
    EXPECT_EQ(cellOfJoint(JointId::RightElbow), BodyCell::RightArm);
    EXPECT_EQ(cellOfJoint(JointId::Jaw), BodyCell::HeadFace);
    EXPECT_EQ(cellOfJoint(JointId::Spine2), BodyCell::Torso);
    EXPECT_EQ(cellOfJoint(JointId::LeftKnee), BodyCell::LeftLeg);
}

TEST(Caption, RestPoseIsCompact) {
    const TextFrame frame = captionPose(Pose{});
    // Rest pose: no joint entries, just the global channel.
    EXPECT_FALSE(frame.global.empty());
    for (const auto& c : frame.cells) EXPECT_TRUE(c.empty());
    EXPECT_LT(frame.totalBytes(), 100u);
}

TEST(Caption, RoundTripWithinQuantization) {
    const MotionGenerator gen(MotionKind::Collaborate);
    for (const double t : {0.3, 1.7, 4.9}) {
        const Pose pose = gen.poseAt(t);
        const TextFrame frame = captionPose(pose);
        const auto decoded = parseCaption(frame);
        ASSERT_TRUE(decoded.has_value()) << "t=" << t;
        // 3-degree quantisation => per-joint error bounded by ~0.05 rad
        // (sqrt(3)/2 * step); pose distance stays small.
        EXPECT_LT(body::poseDistance(pose, *decoded), 0.06f) << "t=" << t;
        EXPECT_LT((pose.rootTranslation - decoded->rootTranslation).norm(), 0.02f);
    }
}

TEST(Caption, ExpressionCarriedOnHeadChannel) {
    Pose pose;
    pose.expression.coeffs[0] = 0.8;  // jaw open
    pose.expression.coeffs[2] = 0.5;  // smile
    const TextFrame frame = captionPose(pose);
    const auto& head = frame.cells[static_cast<std::size_t>(BodyCell::HeadFace)];
    EXPECT_NE(head.find("expr"), std::string::npos);
    const auto decoded = parseCaption(frame);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_NEAR(decoded->expression.coeffs[0], 0.8, 0.05);
    EXPECT_NEAR(decoded->expression.coeffs[2], 0.5, 0.05);
}

TEST(Caption, OnlyMovedCellsProduceText) {
    Pose pose;
    pose.rotation(JointId::LeftElbow) = {0, 0, -1.0f};
    const TextFrame frame = captionPose(pose);
    EXPECT_FALSE(frame.cells[static_cast<std::size_t>(BodyCell::LeftArm)].empty());
    EXPECT_TRUE(frame.cells[static_cast<std::size_t>(BodyCell::RightArm)].empty());
    EXPECT_TRUE(frame.cells[static_cast<std::size_t>(BodyCell::LeftLeg)].empty());
}

TEST(Caption, CoarserQualityShorterText) {
    const Pose pose = MotionGenerator(MotionKind::Wave).poseAt(0.6);
    CaptionOptions fine, coarse;
    for (auto& q : fine.quality) q.angleStepDeg = 1.0;
    for (auto& q : coarse.quality) q.angleStepDeg = 10.0;
    const auto fineFrame = captionPose(pose, fine);
    const auto coarseFrame = captionPose(pose, coarse);
    EXPECT_LT(coarseFrame.totalBytes(), fineFrame.totalBytes());
    // And coarser quality means larger reconstruction error.
    const auto fineDec = parseCaption(fineFrame, {}, fine);
    const auto coarseDec = parseCaption(coarseFrame, {}, coarse);
    ASSERT_TRUE(fineDec && coarseDec);
    EXPECT_LT(body::poseDistance(pose, *fineDec), body::poseDistance(pose, *coarseDec));
}

TEST(Caption, TextIsSmallVersusPosePayload) {
    // Table 1: text semantics has "L" (low) data size.
    const Pose pose = MotionGenerator(MotionKind::Talk).poseAt(1.0);
    const TextFrame frame = captionPose(pose);
    EXPECT_LT(frame.totalBytes(), body::kPosePayloadBytes);
}

TEST(Caption, MalformedInputsRejected) {
    TextFrame bad;
    bad.global = "not_global: nothing";
    EXPECT_FALSE(parseCaption(bad).has_value());

    TextFrame badJoint = captionPose(Pose{});
    badJoint.cells[0] = "torso: no_such_joint 1 2 3;";
    EXPECT_FALSE(parseCaption(badJoint).has_value());

    TextFrame truncated = captionPose(Pose{});
    truncated.cells[2] = "left_arm: left_elbow 4 5";  // missing z
    EXPECT_FALSE(parseCaption(truncated).has_value());
}

TEST(CostModel, DeltaCellsCostLess) {
    EXPECT_LT(captionCostMs(1), captionCostMs(8));
    EXPECT_LT(reconCostMs(0), reconCostMs(8));
    // Full-frame reconstruction is "H": above one 30 FPS frame budget.
    EXPECT_GT(reconCostMs(kCellCount), 1000.0 / 30.0);
}

TEST(Caption, ConcatenatedContainsAllChannels) {
    Pose pose;
    pose.rotation(JointId::LeftKnee) = {1.0f, 0, 0};
    const TextFrame frame = captionPose(pose);
    const std::string all = frame.concatenated();
    EXPECT_NE(all.find("global:"), std::string::npos);
    EXPECT_NE(all.find("left_leg:"), std::string::npos);
}

}  // namespace
}  // namespace semholo::textsem
