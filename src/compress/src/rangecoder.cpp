#include "semholo/compress/rangecoder.hpp"

namespace semholo::compress {

namespace {
constexpr std::uint32_t kTopValue = 1u << 24;
constexpr int kProbBits = 11;
constexpr int kMoveBits = 5;
}  // namespace

void RangeEncoder::shiftLow() {
    if (low_ < 0xFF000000ull || low_ >= (1ull << 32)) {
        const auto carry = static_cast<std::uint8_t>(low_ >> 32);
        while (cacheSize_ != 0) {
            out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
            cache_ = 0xFF;
            --cacheSize_;
        }
        cache_ = static_cast<std::uint8_t>(low_ >> 24);
        cacheSize_ = 0;
    }
    ++cacheSize_;
    low_ = (low_ << 8) & 0xFFFFFFFFull;
}

void RangeEncoder::encodeBit(BitProb& prob, int bit) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob.p;
    if (bit == 0) {
        range_ = bound;
        prob.p = static_cast<std::uint16_t>(prob.p +
                                            (((1u << kProbBits) - prob.p) >> kMoveBits));
    } else {
        low_ += bound;
        range_ -= bound;
        prob.p = static_cast<std::uint16_t>(prob.p - (prob.p >> kMoveBits));
    }
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }
}

void RangeEncoder::encodeDirect(std::uint32_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
        range_ >>= 1;
        if ((value >> i) & 1u) low_ += range_;
        while (range_ < kTopValue) {
            range_ <<= 8;
            shiftLow();
        }
    }
}

void RangeEncoder::encodeTree(std::span<BitProb> tree, std::uint32_t value, int bits) {
    std::uint32_t node = 1;
    for (int i = bits - 1; i >= 0; --i) {
        const int bit = static_cast<int>((value >> i) & 1u);
        encodeBit(tree[node - 1], bit);
        node = (node << 1) | static_cast<std::uint32_t>(bit);
    }
}

void RangeEncoder::finish() {
    for (int i = 0; i < 5; ++i) shiftLow();
}

RangeDecoder::RangeDecoder(std::span<const std::uint8_t> data) : data_(data) {
    nextByte();  // first byte emitted by the encoder is always 0
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | nextByte();
}

std::uint8_t RangeDecoder::nextByte() {
    const std::uint8_t b = pos_ < data_.size() ? data_[pos_] : 0;
    ++pos_;
    return b;
}

int RangeDecoder::decodeBit(BitProb& prob) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob.p;
    int bit;
    if (code_ < bound) {
        range_ = bound;
        prob.p = static_cast<std::uint16_t>(prob.p +
                                            (((1u << kProbBits) - prob.p) >> kMoveBits));
        bit = 0;
    } else {
        code_ -= bound;
        range_ -= bound;
        prob.p = static_cast<std::uint16_t>(prob.p - (prob.p >> kMoveBits));
        bit = 1;
    }
    while (range_ < kTopValue) {
        range_ <<= 8;
        code_ = (code_ << 8) | nextByte();
    }
    return bit;
}

std::uint32_t RangeDecoder::decodeDirect(int bits) {
    std::uint32_t value = 0;
    for (int i = 0; i < bits; ++i) {
        range_ >>= 1;
        std::uint32_t bit = 0;
        if (code_ >= range_) {
            code_ -= range_;
            bit = 1;
        }
        value = (value << 1) | bit;
        while (range_ < kTopValue) {
            range_ <<= 8;
            code_ = (code_ << 8) | nextByte();
        }
    }
    return value;
}

std::uint32_t RangeDecoder::decodeTree(std::span<BitProb> tree, int bits) {
    std::uint32_t node = 1;
    for (int i = 0; i < bits; ++i)
        node = (node << 1) | static_cast<std::uint32_t>(decodeBit(tree[node - 1]));
    return node - (1u << bits);
}

}  // namespace semholo::compress
