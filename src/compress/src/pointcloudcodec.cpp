#include "semholo/compress/pointcloudcodec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "semholo/compress/lzc.hpp"

namespace semholo::compress {

namespace {

constexpr std::uint32_t kMagic = 0x53485043;  // "SHPC"

using geom::Vec3f;

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putF32(std::vector<std::uint8_t>& out, float f) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    putU32(out, bits);
}

std::uint16_t pack565(Vec3f c) {
    const auto r = static_cast<std::uint16_t>(geom::clamp(c.x, 0.0f, 1.0f) * 31.0f + 0.5f);
    const auto g = static_cast<std::uint16_t>(geom::clamp(c.y, 0.0f, 1.0f) * 63.0f + 0.5f);
    const auto b = static_cast<std::uint16_t>(geom::clamp(c.z, 0.0f, 1.0f) * 31.0f + 0.5f);
    return static_cast<std::uint16_t>((r << 11) | (g << 5) | b);
}

Vec3f unpack565(std::uint16_t v) {
    return {static_cast<float>((v >> 11) & 31) / 31.0f,
            static_cast<float>((v >> 5) & 63) / 63.0f,
            static_cast<float>(v & 31) / 31.0f};
}

// Morton (z-order) keys: sorting leaves by Morton code keeps all
// descendants of a node contiguous, so breadth-first occupancy masks can
// be emitted with a single linear sweep per level. Octant bit layout:
// bit2 = x, bit1 = y, bit0 = z.
std::uint64_t mortonEncode(std::uint64_t x, std::uint64_t y, std::uint64_t z,
                           int depth) {
    std::uint64_t key = 0;
    for (int i = 0; i < depth; ++i) {
        key |= ((x >> i) & 1ull) << (3 * i + 2);
        key |= ((y >> i) & 1ull) << (3 * i + 1);
        key |= ((z >> i) & 1ull) << (3 * i);
    }
    return key;
}

void mortonDecode(std::uint64_t key, int depth, std::uint64_t& x, std::uint64_t& y,
                  std::uint64_t& z) {
    x = y = z = 0;
    for (int i = 0; i < depth; ++i) {
        x |= ((key >> (3 * i + 2)) & 1ull) << i;
        y |= ((key >> (3 * i + 1)) & 1ull) << i;
        z |= ((key >> (3 * i)) & 1ull) << i;
    }
}

struct Reader {
    std::span<const std::uint8_t> data;
    std::size_t pos{0};
    bool fail{false};

    std::uint8_t u8() {
        if (pos >= data.size()) {
            fail = true;
            return 0;
        }
        return data[pos++];
    }
    std::uint32_t u32() {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }
    float f32() {
        const std::uint32_t bits = u32();
        float f;
        std::memcpy(&f, &bits, sizeof(f));
        return f;
    }
    std::uint16_t u16() {
        return static_cast<std::uint16_t>(u8() | (static_cast<std::uint16_t>(u8()) << 8));
    }
};

}  // namespace

float pointCloudQuantizationError(const mesh::PointCloud& cloud, int depth) {
    const auto ext = cloud.bounds().extent();
    const float maxExt = std::max({ext.x, ext.y, ext.z, 1e-9f});
    const float cell = maxExt / static_cast<float>(1u << depth);
    return cell * 0.8660254f;  // half-diagonal
}

std::vector<std::uint8_t> encodePointCloud(const mesh::PointCloud& cloud,
                                           const PointCloudCodecOptions& options) {
    const int depth = geom::clamp(options.depth, 1, 20);
    const bool colors = options.encodeColors && cloud.hasColors();
    const auto bounds = cloud.bounds();
    const Vec3f lo = cloud.empty() ? Vec3f{} : bounds.lo;
    const Vec3f ext = cloud.empty() ? Vec3f{} : bounds.extent();
    const auto res = static_cast<float>(1u << depth);

    // Quantise into Morton-keyed leaf cells, averaging merged colours.
    struct Leaf {
        Vec3f colorSum{};
        std::uint32_t count{};
    };
    std::map<std::uint64_t, Leaf> leaves;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3f& p = cloud.points[i];
        auto cellOf = [&](float v, float l, float e) {
            const float norm = e > 0.0f ? (v - l) / e : 0.0f;
            return static_cast<std::uint64_t>(
                geom::clamp(norm * res, 0.0f, res - 1.0f));
        };
        const std::uint64_t key =
            mortonEncode(cellOf(p.x, lo.x, ext.x), cellOf(p.y, lo.y, ext.y),
                         cellOf(p.z, lo.z, ext.z), depth);
        Leaf& leaf = leaves[key];
        if (colors) leaf.colorSum += cloud.colors[i];
        ++leaf.count;
    }

    std::vector<std::uint8_t> raw;
    putU32(raw, kMagic);
    putU32(raw, static_cast<std::uint32_t>(depth) | (colors ? 0x80000000u : 0u));
    putU32(raw, static_cast<std::uint32_t>(leaves.size()));
    putF32(raw, lo.x);
    putF32(raw, lo.y);
    putF32(raw, lo.z);
    putF32(raw, ext.x);
    putF32(raw, ext.y);
    putF32(raw, ext.z);

    if (!leaves.empty()) {
        // Breadth-first occupancy. Level-l node key = leaf Morton key
        // shifted right by 3*(depth-l); map order is already Morton order
        // at every level, and descendants stay contiguous.
        std::vector<std::uint64_t> level{0};  // root
        for (int l = 0; l < depth; ++l) {
            const int childShift = 3 * (depth - l - 1);
            std::vector<std::uint64_t> next;
            std::uint64_t prevChildKey = ~0ull;
            for (const auto& [leafKey, leaf] : leaves) {
                const std::uint64_t childKey = leafKey >> childShift;
                if (childKey != prevChildKey) {
                    next.push_back(childKey);
                    prevChildKey = childKey;
                }
            }
            std::size_t childIdx = 0;
            for (const std::uint64_t nodeKey : level) {
                std::uint8_t mask = 0;
                while (childIdx < next.size() && (next[childIdx] >> 3) == nodeKey) {
                    mask |= static_cast<std::uint8_t>(1u << (next[childIdx] & 7ull));
                    ++childIdx;
                }
                raw.push_back(mask);
            }
            level = std::move(next);
        }

        if (colors) {
            for (const auto& [key, leaf] : leaves) {
                const std::uint16_t packed =
                    pack565(leaf.colorSum / static_cast<float>(leaf.count));
                raw.push_back(static_cast<std::uint8_t>(packed & 0xFF));
                raw.push_back(static_cast<std::uint8_t>(packed >> 8));
            }
        }
    }

    return lzcCompress(raw);
}

std::optional<mesh::PointCloud> decodePointCloud(std::span<const std::uint8_t> data) {
    const auto rawOpt = lzcDecompress(data);
    if (!rawOpt) return std::nullopt;
    Reader r{*rawOpt};
    if (r.u32() != kMagic) return std::nullopt;
    const std::uint32_t depthWord = r.u32();
    const int depth = static_cast<int>(depthWord & 0x7FFFFFFFu);
    const bool colors = (depthWord & 0x80000000u) != 0;
    if (depth < 1 || depth > 20) return std::nullopt;
    const std::uint32_t leafCount = r.u32();
    const Vec3f lo{r.f32(), r.f32(), r.f32()};
    const Vec3f ext{r.f32(), r.f32(), r.f32()};
    if (r.fail) return std::nullopt;

    mesh::PointCloud out;
    if (leafCount == 0) return out;

    std::vector<std::uint64_t> level{0};
    for (int l = 0; l < depth; ++l) {
        std::vector<std::uint64_t> next;
        next.reserve(level.size() * 2);
        for (const std::uint64_t nodeKey : level) {
            const std::uint8_t mask = r.u8();
            if (r.fail) return std::nullopt;
            for (int child = 0; child < 8; ++child)
                if (mask & (1u << child))
                    next.push_back((nodeKey << 3) |
                                   static_cast<std::uint64_t>(child));
        }
        level = std::move(next);
    }
    if (level.size() != leafCount) return std::nullopt;

    const float cell = 1.0f / static_cast<float>(1u << depth);
    out.points.reserve(leafCount);
    for (const std::uint64_t key : level) {
        std::uint64_t x, y, z;
        mortonDecode(key, depth, x, y, z);
        out.points.push_back(
            {lo.x + (static_cast<float>(x) + 0.5f) * cell * ext.x,
             lo.y + (static_cast<float>(y) + 0.5f) * cell * ext.y,
             lo.z + (static_cast<float>(z) + 0.5f) * cell * ext.z});
    }
    if (colors) {
        out.colors.reserve(leafCount);
        for (std::uint32_t i = 0; i < leafCount; ++i) {
            const std::uint16_t packed = r.u16();
            if (r.fail) return std::nullopt;
            out.colors.push_back(unpack565(packed));
        }
    }
    return out;
}

}  // namespace semholo::compress
