#include "semholo/compress/filter.hpp"

#include <cstring>

#include "semholo/geometry/simd.hpp"

namespace semholo::compress {

namespace {

// Transpose/bitshuffle operate on the largest prefix that is a whole
// number of 'stride'-byte elements; trailing remainder bytes pass
// through unchanged (the pose payload's 4-byte frame id shifts the
// lanes by a constant offset, which keeps them consistent — only the
// final partial element, if any, is left in place).

void byteTranspose(std::span<const std::uint8_t> src, std::uint8_t* dst,
                   std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    for (std::size_t lane = 0; lane < stride; ++lane) {
        const std::uint8_t* in = src.data() + lane;
        std::uint8_t* out = dst + lane * rows;
        for (std::size_t r = 0; r < rows; ++r) {
            out[r] = *in;
            in += stride;
        }
    }
    for (std::size_t i = rows * stride; i < src.size(); ++i) dst[i] = src[i];
}

void byteUntranspose(std::span<const std::uint8_t> src, std::uint8_t* dst,
                     std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    for (std::size_t lane = 0; lane < stride; ++lane) {
        const std::uint8_t* in = src.data() + lane * rows;
        std::uint8_t* out = dst + lane;
        for (std::size_t r = 0; r < rows; ++r) {
            *out = in[r];
            out += stride;
        }
    }
    for (std::size_t i = rows * stride; i < src.size(); ++i) dst[i] = src[i];
}

void deltaEncode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t v = data[i];
        data[i] = static_cast<std::uint8_t>(v - prev);
        prev = v;
    }
}

void deltaDecode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        prev = static_cast<std::uint8_t>(prev + data[i]);
        data[i] = prev;
    }
}

void xorEncode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t v = data[i];
        data[i] = static_cast<std::uint8_t>(v ^ prev);
        prev = v;
    }
}

void xorDecode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        prev = static_cast<std::uint8_t>(prev ^ data[i]);
        data[i] = prev;
    }
}

// Bit-plane shuffle over whole elements: output bit (plane * rows + r)
// is bit 'plane' of element r, planes packed back to back. The prefix
// holds exactly rows * stride * 8 bits, so no per-plane padding is
// needed and the transform is a bit permutation (trivially invertible).
//
// The production path lifts 8 rows of one byte lane into a 64-bit word
// and transposes the 8x8 bit matrix in ~20 ALU ops
// (geom::simd::bitTranspose8x8), turning the reference path's
// bit-at-a-time inner loop into one byte store per plane. Because
// 'rows' need not be a multiple of 8, plane runs start at arbitrary
// bit offsets; the offset (plane * rows + r0) & 7 is constant across
// chunks of a plane, so each transposed byte lands with one shift and
// at most two ORs into pre-zeroed output.
void bitshuffle(std::span<const std::uint8_t> src, std::uint8_t* dst,
                std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    const std::size_t prefix = rows * stride;
    std::memset(dst, 0, prefix);
    const std::size_t rows8 = rows & ~std::size_t{7};
    for (std::size_t laneByte = 0; laneByte < stride; ++laneByte) {
        const std::uint8_t* in = src.data() + laneByte;
        for (std::size_t r0 = 0; r0 < rows8; r0 += 8) {
            std::uint64_t x = 0;
            for (int k = 0; k < 8; ++k)
                x |= static_cast<std::uint64_t>(in[(r0 + k) * stride]) << (8 * k);
            const std::uint64_t y = geom::simd::bitTranspose8x8(x);
            for (int bit = 0; bit < 8; ++bit) {
                const std::uint8_t v = static_cast<std::uint8_t>(y >> (8 * bit));
                const std::size_t pos = (laneByte * 8 + bit) * rows + r0;
                const int shift = static_cast<int>(pos & 7);
                dst[pos >> 3] |= static_cast<std::uint8_t>(v << shift);
                if (shift != 0)
                    dst[(pos >> 3) + 1] |= static_cast<std::uint8_t>(v >> (8 - shift));
            }
        }
        // Rows past the last full chunk of 8, bit at a time.
        for (int bit = 0; bit < 8; ++bit) {
            for (std::size_t r = rows8; r < rows; ++r) {
                const int v = (in[r * stride] >> bit) & 1;
                const std::size_t outBit = (laneByte * 8 + bit) * rows + r;
                dst[outBit >> 3] |=
                    static_cast<std::uint8_t>(v << static_cast<int>(outBit & 7));
            }
        }
    }
    for (std::size_t i = prefix; i < src.size(); ++i) dst[i] = src[i];
}

void unbitshuffle(std::span<const std::uint8_t> src, std::uint8_t* dst,
                  std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    const std::size_t prefix = rows * stride;
    std::memset(dst, 0, prefix);
    const std::size_t rows8 = rows & ~std::size_t{7};
    for (std::size_t laneByte = 0; laneByte < stride; ++laneByte) {
        std::uint8_t* out = dst + laneByte;
        for (std::size_t r0 = 0; r0 < rows8; r0 += 8) {
            std::uint64_t x = 0;
            for (int bit = 0; bit < 8; ++bit) {
                const std::size_t pos = (laneByte * 8 + bit) * rows + r0;
                const int shift = static_cast<int>(pos & 7);
                std::uint8_t v = static_cast<std::uint8_t>(src[pos >> 3] >> shift);
                if (shift != 0)
                    v |= static_cast<std::uint8_t>(src[(pos >> 3) + 1] << (8 - shift));
                x |= static_cast<std::uint64_t>(v) << (8 * bit);
            }
            const std::uint64_t y = geom::simd::bitTranspose8x8(x);
            for (int k = 0; k < 8; ++k)
                out[(r0 + k) * stride] = static_cast<std::uint8_t>(y >> (8 * k));
        }
        for (int bit = 0; bit < 8; ++bit) {
            for (std::size_t r = rows8; r < rows; ++r) {
                const std::size_t inBit = (laneByte * 8 + bit) * rows + r;
                const int v = (src[inBit >> 3] >> static_cast<int>(inBit & 7)) & 1;
                out[r * stride] |= static_cast<std::uint8_t>(v << bit);
            }
        }
    }
    for (std::size_t i = prefix; i < src.size(); ++i) dst[i] = src[i];
}

bool chainValid(const FilterChain& chain) {
    if (chain.stride == 0) return false;
    if (chain.ops.size() > kMaxFilterChainOps) return false;
    for (const FilterOp op : chain.ops)
        if (!isValidFilterOp(static_cast<std::uint8_t>(op))) return false;
    return true;
}

}  // namespace

namespace detail {

void bitshuffleScalar(std::span<const std::uint8_t> src, std::uint8_t* dst,
                      std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    const std::size_t prefix = rows * stride;
    for (std::size_t i = 0; i < prefix; ++i) dst[i] = 0;
    for (std::size_t plane = 0; plane < stride * 8; ++plane) {
        const std::size_t laneByte = plane >> 3;
        const int bit = static_cast<int>(plane & 7);
        for (std::size_t r = 0; r < rows; ++r) {
            const int v = (src[r * stride + laneByte] >> bit) & 1;
            const std::size_t outBit = plane * rows + r;
            dst[outBit >> 3] |=
                static_cast<std::uint8_t>(v << static_cast<int>(outBit & 7));
        }
    }
    for (std::size_t i = prefix; i < src.size(); ++i) dst[i] = src[i];
}

void unbitshuffleScalar(std::span<const std::uint8_t> src, std::uint8_t* dst,
                        std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    const std::size_t prefix = rows * stride;
    for (std::size_t i = 0; i < prefix; ++i) dst[i] = 0;
    for (std::size_t plane = 0; plane < stride * 8; ++plane) {
        const std::size_t laneByte = plane >> 3;
        const int bit = static_cast<int>(plane & 7);
        for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t inBit = plane * rows + r;
            const int v = (src[inBit >> 3] >> static_cast<int>(inBit & 7)) & 1;
            dst[r * stride + laneByte] |=
                static_cast<std::uint8_t>(v << bit);
        }
    }
    for (std::size_t i = prefix; i < src.size(); ++i) dst[i] = src[i];
}

}  // namespace detail

bool isValidFilterOp(std::uint8_t raw) {
    return raw >= static_cast<std::uint8_t>(FilterOp::ByteTranspose) &&
           raw <= static_cast<std::uint8_t>(FilterOp::Bitshuffle);
}

std::string filterOpName(FilterOp op) {
    switch (op) {
        case FilterOp::ByteTranspose: return "transpose";
        case FilterOp::DeltaDiff: return "delta";
        case FilterOp::XorDiff: return "xor";
        case FilterOp::Bitshuffle: return "bitshuffle";
    }
    return "unknown";
}

std::string filterChainName(const FilterChain& chain) {
    if (chain.ops.empty()) return "none";
    std::string name;
    for (const FilterOp op : chain.ops) {
        if (!name.empty()) name += '+';
        name += filterOpName(op);
    }
    return name;
}

std::vector<std::uint8_t> applyFilters(const FilterChain& chain,
                                       std::span<const std::uint8_t> data) {
    std::vector<std::uint8_t> cur(data.begin(), data.end());
    if (!chainValid(chain) || data.empty()) return cur;
    std::vector<std::uint8_t> tmp(data.size());
    for (const FilterOp op : chain.ops) {
        switch (op) {
            case FilterOp::ByteTranspose:
                byteTranspose(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
            case FilterOp::DeltaDiff:
                deltaEncode(cur.data(), cur.size());
                break;
            case FilterOp::XorDiff:
                xorEncode(cur.data(), cur.size());
                break;
            case FilterOp::Bitshuffle:
                bitshuffle(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
        }
    }
    return cur;
}

std::optional<std::vector<std::uint8_t>> invertFilters(
    const FilterChain& chain, std::span<const std::uint8_t> data) {
    if (!chainValid(chain)) return std::nullopt;
    std::vector<std::uint8_t> cur(data.begin(), data.end());
    if (data.empty()) return cur;
    std::vector<std::uint8_t> tmp(data.size());
    for (auto it = chain.ops.rbegin(); it != chain.ops.rend(); ++it) {
        switch (*it) {
            case FilterOp::ByteTranspose:
                byteUntranspose(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
            case FilterOp::DeltaDiff:
                deltaDecode(cur.data(), cur.size());
                break;
            case FilterOp::XorDiff:
                xorDecode(cur.data(), cur.size());
                break;
            case FilterOp::Bitshuffle:
                unbitshuffle(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
        }
    }
    return cur;
}

}  // namespace semholo::compress
