#include "semholo/compress/filter.hpp"

namespace semholo::compress {

namespace {

// Transpose/bitshuffle operate on the largest prefix that is a whole
// number of 'stride'-byte elements; trailing remainder bytes pass
// through unchanged (the pose payload's 4-byte frame id shifts the
// lanes by a constant offset, which keeps them consistent — only the
// final partial element, if any, is left in place).

void byteTranspose(std::span<const std::uint8_t> src, std::uint8_t* dst,
                   std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    for (std::size_t lane = 0; lane < stride; ++lane) {
        const std::uint8_t* in = src.data() + lane;
        std::uint8_t* out = dst + lane * rows;
        for (std::size_t r = 0; r < rows; ++r) {
            out[r] = *in;
            in += stride;
        }
    }
    for (std::size_t i = rows * stride; i < src.size(); ++i) dst[i] = src[i];
}

void byteUntranspose(std::span<const std::uint8_t> src, std::uint8_t* dst,
                     std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    for (std::size_t lane = 0; lane < stride; ++lane) {
        const std::uint8_t* in = src.data() + lane * rows;
        std::uint8_t* out = dst + lane;
        for (std::size_t r = 0; r < rows; ++r) {
            *out = in[r];
            out += stride;
        }
    }
    for (std::size_t i = rows * stride; i < src.size(); ++i) dst[i] = src[i];
}

void deltaEncode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t v = data[i];
        data[i] = static_cast<std::uint8_t>(v - prev);
        prev = v;
    }
}

void deltaDecode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        prev = static_cast<std::uint8_t>(prev + data[i]);
        data[i] = prev;
    }
}

void xorEncode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t v = data[i];
        data[i] = static_cast<std::uint8_t>(v ^ prev);
        prev = v;
    }
}

void xorDecode(std::uint8_t* data, std::size_t n) {
    std::uint8_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        prev = static_cast<std::uint8_t>(prev ^ data[i]);
        data[i] = prev;
    }
}

// Bit-plane shuffle over whole elements: output bit (plane * rows + r)
// is bit 'plane' of element r, planes packed back to back. The prefix
// holds exactly rows * stride * 8 bits, so no per-plane padding is
// needed and the transform is a bit permutation (trivially invertible).
void bitshuffle(std::span<const std::uint8_t> src, std::uint8_t* dst,
                std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    const std::size_t prefix = rows * stride;
    for (std::size_t i = 0; i < prefix; ++i) dst[i] = 0;
    for (std::size_t plane = 0; plane < stride * 8; ++plane) {
        const std::size_t laneByte = plane >> 3;
        const int bit = static_cast<int>(plane & 7);
        for (std::size_t r = 0; r < rows; ++r) {
            const int v = (src[r * stride + laneByte] >> bit) & 1;
            const std::size_t outBit = plane * rows + r;
            dst[outBit >> 3] |=
                static_cast<std::uint8_t>(v << static_cast<int>(outBit & 7));
        }
    }
    for (std::size_t i = prefix; i < src.size(); ++i) dst[i] = src[i];
}

void unbitshuffle(std::span<const std::uint8_t> src, std::uint8_t* dst,
                  std::size_t stride) {
    const std::size_t rows = src.size() / stride;
    const std::size_t prefix = rows * stride;
    for (std::size_t i = 0; i < prefix; ++i) dst[i] = 0;
    for (std::size_t plane = 0; plane < stride * 8; ++plane) {
        const std::size_t laneByte = plane >> 3;
        const int bit = static_cast<int>(plane & 7);
        for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t inBit = plane * rows + r;
            const int v = (src[inBit >> 3] >> static_cast<int>(inBit & 7)) & 1;
            dst[r * stride + laneByte] |=
                static_cast<std::uint8_t>(v << bit);
        }
    }
    for (std::size_t i = prefix; i < src.size(); ++i) dst[i] = src[i];
}

bool chainValid(const FilterChain& chain) {
    if (chain.stride == 0) return false;
    if (chain.ops.size() > kMaxFilterChainOps) return false;
    for (const FilterOp op : chain.ops)
        if (!isValidFilterOp(static_cast<std::uint8_t>(op))) return false;
    return true;
}

}  // namespace

bool isValidFilterOp(std::uint8_t raw) {
    return raw >= static_cast<std::uint8_t>(FilterOp::ByteTranspose) &&
           raw <= static_cast<std::uint8_t>(FilterOp::Bitshuffle);
}

std::string filterOpName(FilterOp op) {
    switch (op) {
        case FilterOp::ByteTranspose: return "transpose";
        case FilterOp::DeltaDiff: return "delta";
        case FilterOp::XorDiff: return "xor";
        case FilterOp::Bitshuffle: return "bitshuffle";
    }
    return "unknown";
}

std::string filterChainName(const FilterChain& chain) {
    if (chain.ops.empty()) return "none";
    std::string name;
    for (const FilterOp op : chain.ops) {
        if (!name.empty()) name += '+';
        name += filterOpName(op);
    }
    return name;
}

std::vector<std::uint8_t> applyFilters(const FilterChain& chain,
                                       std::span<const std::uint8_t> data) {
    std::vector<std::uint8_t> cur(data.begin(), data.end());
    if (!chainValid(chain) || data.empty()) return cur;
    std::vector<std::uint8_t> tmp(data.size());
    for (const FilterOp op : chain.ops) {
        switch (op) {
            case FilterOp::ByteTranspose:
                byteTranspose(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
            case FilterOp::DeltaDiff:
                deltaEncode(cur.data(), cur.size());
                break;
            case FilterOp::XorDiff:
                xorEncode(cur.data(), cur.size());
                break;
            case FilterOp::Bitshuffle:
                bitshuffle(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
        }
    }
    return cur;
}

std::optional<std::vector<std::uint8_t>> invertFilters(
    const FilterChain& chain, std::span<const std::uint8_t> data) {
    if (!chainValid(chain)) return std::nullopt;
    std::vector<std::uint8_t> cur(data.begin(), data.end());
    if (data.empty()) return cur;
    std::vector<std::uint8_t> tmp(data.size());
    for (auto it = chain.ops.rbegin(); it != chain.ops.rend(); ++it) {
        switch (*it) {
            case FilterOp::ByteTranspose:
                byteUntranspose(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
            case FilterOp::DeltaDiff:
                deltaDecode(cur.data(), cur.size());
                break;
            case FilterOp::XorDiff:
                xorDecode(cur.data(), cur.size());
                break;
            case FilterOp::Bitshuffle:
                unbitshuffle(cur, tmp.data(), chain.stride);
                cur.swap(tmp);
                break;
        }
    }
    return cur;
}

}  // namespace semholo::compress
