#include "semholo/compress/meshcodec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "semholo/compress/lzc.hpp"

namespace semholo::compress {

namespace {

constexpr std::uint32_t kMagic = 0x53484D43;  // "SHMC"

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putF32(std::vector<std::uint8_t>& out, float f) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    putU32(out, bits);
}

// Zigzag + LEB128 varint for signed deltas.
void putVarint(std::vector<std::uint8_t>& out, std::int64_t v) {
    std::uint64_t z = (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63);
    while (z >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(z) | 0x80);
        z >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(z));
}

struct Reader {
    std::span<const std::uint8_t> data;
    std::size_t pos{0};
    bool fail{false};

    std::uint32_t u32() {
        if (pos + 4 > data.size()) {
            fail = true;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    }
    float f32() {
        const std::uint32_t bits = u32();
        float f;
        std::memcpy(&f, &bits, sizeof(f));
        return f;
    }
    std::int64_t varint() {
        std::uint64_t z = 0;
        int shift = 0;
        while (true) {
            if (pos >= data.size() || shift > 63) {
                fail = true;
                return 0;
            }
            const std::uint8_t b = data[pos++];
            z |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80)) break;
            shift += 7;
        }
        return static_cast<std::int64_t>(z >> 1) ^
               -static_cast<std::int64_t>(z & 1);
    }
};

}  // namespace

float quantizationError(const mesh::TriMesh& m, int positionBits) {
    const auto ext = m.bounds().extent();
    const float maxExt = std::max({ext.x, ext.y, ext.z, 1e-9f});
    const float step = maxExt / static_cast<float>((1u << positionBits) - 1);
    // Half-step per axis; sqrt(3)/2 along the diagonal.
    return step * 0.8660254f;
}

std::vector<std::uint8_t> encodeMesh(const mesh::TriMesh& m,
                                     const MeshCodecOptions& options) {
    std::vector<std::uint8_t> raw;
    const auto bounds = m.bounds();
    const geom::Vec3f lo = m.empty() ? geom::Vec3f{} : bounds.lo;
    const geom::Vec3f ext = m.empty() ? geom::Vec3f{} : bounds.extent();
    const int bits = geom::clamp(options.positionBits, 4, 24);
    const auto maxQ = static_cast<float>((1u << bits) - 1);
    const bool colors = options.encodeColors && m.hasColors();

    putU32(raw, kMagic);
    putU32(raw, static_cast<std::uint32_t>(m.vertexCount()));
    putU32(raw, static_cast<std::uint32_t>(m.triangleCount()));
    putU32(raw, static_cast<std::uint32_t>(bits) | (colors ? 0x80000000u : 0u));
    putF32(raw, lo.x);
    putF32(raw, lo.y);
    putF32(raw, lo.z);
    putF32(raw, ext.x);
    putF32(raw, ext.y);
    putF32(raw, ext.z);

    // Positions: quantise then delta-code against the previous vertex.
    // Iso-surface output is spatially coherent so deltas stay small.
    std::array<std::int64_t, 3> prevQ{0, 0, 0};
    for (const geom::Vec3f& v : m.vertices) {
        for (int a = 0; a < 3; ++a) {
            const float extA = ext[static_cast<std::size_t>(a)];
            const float norm =
                extA > 0.0f
                    ? (v[static_cast<std::size_t>(a)] - lo[static_cast<std::size_t>(a)]) /
                          extA
                    : 0.0f;
            const auto q = static_cast<std::int64_t>(
                std::lround(geom::clamp(norm, 0.0f, 1.0f) * maxQ));
            putVarint(raw, q - prevQ[static_cast<std::size_t>(a)]);
            prevQ[static_cast<std::size_t>(a)] = q;
        }
    }

    // Connectivity: high-watermark coding. Each index is stored as
    // (watermark - index); indices near the recently created vertices
    // yield small values.
    std::int64_t watermark = 0;
    for (const mesh::Triangle& t : m.triangles) {
        for (const std::uint32_t idx : {t.a, t.b, t.c}) {
            putVarint(raw, watermark - static_cast<std::int64_t>(idx));
            watermark = std::max(watermark, static_cast<std::int64_t>(idx) + 1);
        }
    }

    if (colors) {
        std::array<std::int64_t, 3> prevC{0, 0, 0};
        for (const geom::Vec3f& c : m.colors) {
            for (int a = 0; a < 3; ++a) {
                const auto q = static_cast<std::int64_t>(std::lround(
                    geom::clamp(c[static_cast<std::size_t>(a)], 0.0f, 1.0f) * 31.0f));
                putVarint(raw, q - prevC[static_cast<std::size_t>(a)]);
                prevC[static_cast<std::size_t>(a)] = q;
            }
        }
    }

    // Entropy-code the prediction residual stream.
    return lzcCompress(raw);
}

std::optional<mesh::TriMesh> decodeMesh(std::span<const std::uint8_t> data) {
    const auto rawOpt = lzcDecompress(data);
    if (!rawOpt) return std::nullopt;
    Reader r{*rawOpt};

    if (r.u32() != kMagic) return std::nullopt;
    const std::uint32_t nv = r.u32();
    const std::uint32_t nt = r.u32();
    const std::uint32_t bitsWord = r.u32();
    const int bits = static_cast<int>(bitsWord & 0x7FFFFFFFu);
    const bool colors = (bitsWord & 0x80000000u) != 0;
    if (bits < 4 || bits > 24) return std::nullopt;
    geom::Vec3f lo{r.f32(), r.f32(), r.f32()};
    geom::Vec3f ext{r.f32(), r.f32(), r.f32()};
    if (r.fail) return std::nullopt;
    const auto maxQ = static_cast<float>((1u << bits) - 1);

    mesh::TriMesh out;
    out.vertices.reserve(nv);
    std::array<std::int64_t, 3> prevQ{0, 0, 0};
    for (std::uint32_t i = 0; i < nv; ++i) {
        geom::Vec3f v;
        for (int a = 0; a < 3; ++a) {
            prevQ[static_cast<std::size_t>(a)] += r.varint();
            const float norm =
                static_cast<float>(prevQ[static_cast<std::size_t>(a)]) / maxQ;
            v[static_cast<std::size_t>(a)] =
                lo[static_cast<std::size_t>(a)] +
                norm * ext[static_cast<std::size_t>(a)];
        }
        if (r.fail) return std::nullopt;
        out.vertices.push_back(v);
    }

    out.triangles.reserve(nt);
    std::int64_t watermark = 0;
    for (std::uint32_t i = 0; i < nt; ++i) {
        std::array<std::uint32_t, 3> idx{};
        for (int k = 0; k < 3; ++k) {
            const std::int64_t v = watermark - r.varint();
            if (r.fail || v < 0 || v >= static_cast<std::int64_t>(nv))
                return std::nullopt;
            idx[static_cast<std::size_t>(k)] = static_cast<std::uint32_t>(v);
            watermark = std::max(watermark, v + 1);
        }
        out.triangles.push_back({idx[0], idx[1], idx[2]});
    }

    if (colors) {
        out.colors.reserve(nv);
        std::array<std::int64_t, 3> prevC{0, 0, 0};
        for (std::uint32_t i = 0; i < nv; ++i) {
            geom::Vec3f c;
            for (int a = 0; a < 3; ++a) {
                prevC[static_cast<std::size_t>(a)] += r.varint();
                c[static_cast<std::size_t>(a)] = geom::clamp(
                    static_cast<float>(prevC[static_cast<std::size_t>(a)]) / 31.0f,
                    0.0f, 1.0f);
            }
            if (r.fail) return std::nullopt;
            out.colors.push_back(c);
        }
    }

    out.computeVertexNormals();
    return out;
}

}  // namespace semholo::compress
