#include "semholo/compress/lzc.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>

#include "semholo/compress/rangecoder.hpp"

namespace semholo::compress {

namespace {

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 273;
constexpr int kLenBits = 9;        // match length - kMinMatch in [0, 271)
constexpr int kDistSlotBits = 5;   // distance slot 0..31
constexpr std::uint32_t kWindow = 1u << 20;
constexpr std::uint32_t kHashSize = 1u << 16;
// Initial output reservation cap: the size header is untrusted until
// the payload actually decodes, so never pre-allocate more than this.
constexpr std::size_t kMaxInitialReserve = 64u * 1024u;

std::uint32_t hash3(const std::uint8_t* p) {
    // Multiplicative hash over 3 bytes.
    const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> 16;
}

// Distance is coded as a 5-bit slot (bit length) + raw low bits: the
// LZMA "distance slot" scheme with a flat low-bit model.
int distanceSlot(std::uint32_t dist) {
    int bits = 0;
    while ((dist >> bits) > 1) ++bits;
    return bits;
}

struct Models {
    BitProb isMatch[2]{};  // context: previous op was match?
    // Literal contexts: prev byte's top 'literalContextBits' bits. The
    // clamped option selects how many of the 8 rows are live; encoder
    // and decoder derive the same count from the stream's format byte.
    std::array<std::array<BitProb, 256>, 1 << kLzcMaxLiteralContextBits> literal{};
    std::array<BitProb, (1u << kLenBits) - 1> len{};
    std::array<BitProb, (1u << kDistSlotBits) - 1> distSlot{};
};

void putU32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

int lzcClampedLiteralContextBits(int literalContextBits) {
    return std::clamp(literalContextBits, 0, kLzcMaxLiteralContextBits);
}

std::vector<std::uint8_t> lzcCompress(std::span<const std::uint8_t> data,
                                      const LzcOptions& options) {
    const int ctxBits = lzcClampedLiteralContextBits(options.literalContextBits);
    std::vector<std::uint8_t> header;
    header.push_back(
        static_cast<std::uint8_t>(kLzcFormatTag | static_cast<unsigned>(ctxBits)));
    putU32le(header, static_cast<std::uint32_t>(data.size()));
    if (data.empty()) return header;

    auto models = std::make_unique<Models>();
    RangeEncoder enc;

    // Hash-chain match finder.
    std::vector<std::int32_t> head(kHashSize, -1);
    std::vector<std::int32_t> prev(data.size(), -1);

    const int ctxShift = 8 - ctxBits;
    std::size_t pos = 0;
    bool lastWasMatch = false;
    while (pos < data.size()) {
        // Find the best match at 'pos'.
        std::uint32_t bestLen = 0, bestDist = 0;
        if (pos + kMinMatch <= data.size()) {
            const std::uint32_t h = hash3(&data[pos]);
            std::int32_t cand = head[h];
            int steps = options.maxChainSteps;
            while (cand >= 0 && steps-- > 0 &&
                   pos - static_cast<std::size_t>(cand) <= kWindow) {
                const std::size_t cpos = static_cast<std::size_t>(cand);
                const std::size_t maxLen =
                    std::min<std::size_t>(kMaxMatch, data.size() - pos);
                std::size_t len = 0;
                while (len < maxLen && data[cpos + len] == data[pos + len]) ++len;
                if (len >= kMinMatch && len > bestLen) {
                    bestLen = static_cast<std::uint32_t>(len);
                    bestDist = static_cast<std::uint32_t>(pos - cpos);
                    if (len == maxLen) break;
                }
                cand = prev[cpos];
            }
        }

        if (bestLen >= kMinMatch) {
            enc.encodeBit(models->isMatch[lastWasMatch ? 1 : 0], 1);
            enc.encodeTree(models->len, bestLen - kMinMatch, kLenBits);
            const int slot = distanceSlot(bestDist);
            enc.encodeTree(models->distSlot, static_cast<std::uint32_t>(slot),
                           kDistSlotBits);
            if (slot > 0)
                enc.encodeDirect(bestDist & ((1u << slot) - 1u), slot);
            // Insert all covered positions into the hash chains.
            const std::size_t end = pos + bestLen;
            while (pos < end && pos + kMinMatch <= data.size()) {
                const std::uint32_t h = hash3(&data[pos]);
                prev[pos] = head[h];
                head[h] = static_cast<std::int32_t>(pos);
                ++pos;
            }
            pos = end;
            lastWasMatch = true;
        } else {
            enc.encodeBit(models->isMatch[lastWasMatch ? 1 : 0], 0);
            const std::uint8_t ctx =
                pos > 0 ? static_cast<std::uint8_t>(data[pos - 1] >> ctxShift) : 0;
            enc.encodeTree(std::span<BitProb>(models->literal[ctx].data(), 256),
                           data[pos], 8);
            if (pos + kMinMatch <= data.size()) {
                const std::uint32_t h = hash3(&data[pos]);
                prev[pos] = head[h];
                head[h] = static_cast<std::int32_t>(pos);
            }
            ++pos;
            lastWasMatch = false;
        }
    }

    enc.finish();
    std::vector<std::uint8_t> out = std::move(header);
    const auto payload = enc.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

std::optional<std::vector<std::uint8_t>> lzcDecompress(
    std::span<const std::uint8_t> compressed) {
    if (compressed.size() < kLzcHeaderBytes) return std::nullopt;
    const std::uint8_t format = compressed[0];
    if ((format & kLzcFormatMask) != kLzcFormatTag) return std::nullopt;
    const int ctxBits = static_cast<int>(format & ~kLzcFormatMask);
    std::uint32_t size = 0;
    for (int i = 0; i < 4; ++i)
        size |= static_cast<std::uint32_t>(compressed[1 + i]) << (8 * i);
    std::vector<std::uint8_t> out;
    if (size == 0) return out;
    // Guard against absurd headers (corrupt input).
    if (size > (1u << 30)) return std::nullopt;
    // The size is still untrusted until the payload decodes: cap the
    // up-front allocation so a ~12-byte corrupt packet cannot force a
    // 1 GiB reserve; the vector grows geometrically past the cap.
    out.reserve(std::min<std::size_t>(size, kMaxInitialReserve));

    auto models = std::make_unique<Models>();
    RangeDecoder dec(compressed.subspan(kLzcHeaderBytes));
    const int ctxShift = 8 - ctxBits;

    bool lastWasMatch = false;
    while (out.size() < size) {
        if (dec.exhausted()) return std::nullopt;
        if (dec.decodeBit(models->isMatch[lastWasMatch ? 1 : 0]) == 1) {
            const std::uint32_t len =
                dec.decodeTree(models->len, kLenBits) + kMinMatch;
            const int slot =
                static_cast<int>(dec.decodeTree(models->distSlot, kDistSlotBits));
            std::uint32_t dist = slot > 0 ? (1u << slot) | dec.decodeDirect(slot) : 1u;
            if (dist > out.size()) return std::nullopt;
            if (out.size() + len > size) return std::nullopt;
            const std::size_t from = out.size() - dist;
            for (std::uint32_t i = 0; i < len; ++i) out.push_back(out[from + i]);
            lastWasMatch = true;
        } else {
            const std::uint8_t ctx =
                out.empty() ? 0 : static_cast<std::uint8_t>(out.back() >> ctxShift);
            out.push_back(static_cast<std::uint8_t>(dec.decodeTree(
                std::span<BitProb>(models->literal[ctx].data(), 256), 8)));
            lastWasMatch = false;
        }
    }
    return out;
}

}  // namespace semholo::compress
