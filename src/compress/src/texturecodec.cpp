#include "semholo/compress/texturecodec.hpp"

#include <algorithm>
#include <cmath>

namespace semholo::compress {

namespace {

constexpr std::size_t kBlock = 16;
constexpr std::uint32_t kMagic = 0x53485443;  // "SHTC"

using geom::Vec3f;

std::uint16_t pack565(Vec3f c) {
    const auto r = static_cast<std::uint16_t>(geom::clamp(c.x, 0.0f, 1.0f) * 31.0f + 0.5f);
    const auto g = static_cast<std::uint16_t>(geom::clamp(c.y, 0.0f, 1.0f) * 63.0f + 0.5f);
    const auto b = static_cast<std::uint16_t>(geom::clamp(c.z, 0.0f, 1.0f) * 31.0f + 0.5f);
    return static_cast<std::uint16_t>((r << 11) | (g << 5) | b);
}

Vec3f unpack565(std::uint16_t v) {
    return {static_cast<float>((v >> 11) & 31) / 31.0f,
            static_cast<float>((v >> 5) & 63) / 63.0f,
            static_cast<float>(v & 31) / 31.0f};
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

std::vector<std::uint8_t> encodeColorBlocks(std::span<const Vec3f> colors) {
    std::vector<std::uint8_t> out;
    putU32(out, kMagic);
    putU32(out, static_cast<std::uint32_t>(colors.size()));

    for (std::size_t start = 0; start < colors.size(); start += kBlock) {
        const std::size_t n = std::min(kBlock, colors.size() - start);
        const auto block = colors.subspan(start, n);

        // Endpoint selection: principal span approximated by the pair of
        // min/max luminance-projected colours.
        Vec3f mean{};
        for (const Vec3f& c : block) mean += c;
        mean /= static_cast<float>(n);
        // Covariance principal axis via one power iteration from the
        // diagonal seed — cheap and adequate for 16 samples.
        Vec3f axis{1, 1, 1};
        for (int it = 0; it < 4; ++it) {
            Vec3f next{};
            for (const Vec3f& c : block) {
                const Vec3f d = c - mean;
                next += d * d.dot(axis);
            }
            if (next.norm2() < 1e-12f) break;
            axis = next.normalized();
        }
        float tMin = 0.0f, tMax = 0.0f;
        for (const Vec3f& c : block) {
            const float t = (c - mean).dot(axis);
            tMin = std::min(tMin, t);
            tMax = std::max(tMax, t);
        }
        const Vec3f e0 = mean + axis * tMin;
        const Vec3f e1 = mean + axis * tMax;
        const std::uint16_t p0 = pack565(e0);
        const std::uint16_t p1 = pack565(e1);
        putU16(out, p0);
        putU16(out, p1);

        // 2-bit index per sample along the 4-point palette.
        const Vec3f q0 = unpack565(p0), q1 = unpack565(p1);
        const Vec3f palette[4] = {q0, geom::lerp(q0, q1, 1.0f / 3.0f),
                                  geom::lerp(q0, q1, 2.0f / 3.0f), q1};
        std::uint32_t indices = 0;
        for (std::size_t i = 0; i < n; ++i) {
            int best = 0;
            float bestD = std::numeric_limits<float>::max();
            for (int k = 0; k < 4; ++k) {
                const float d = (block[i] - palette[k]).norm2();
                if (d < bestD) {
                    bestD = d;
                    best = k;
                }
            }
            indices |= static_cast<std::uint32_t>(best) << (2 * i);
        }
        putU32(out, indices);
    }
    return out;
}

std::optional<std::vector<Vec3f>> decodeColorBlocks(
    std::span<const std::uint8_t> data) {
    if (data.size() < 8) return std::nullopt;
    std::size_t pos = 0;
    auto u32 = [&]() {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    };
    auto u16 = [&]() {
        std::uint16_t v = static_cast<std::uint16_t>(data[pos] |
                                                     (data[pos + 1] << 8));
        pos += 2;
        return v;
    };
    if (u32() != kMagic) return std::nullopt;
    const std::uint32_t count = u32();
    const std::size_t blocks = (count + kBlock - 1) / kBlock;
    if (data.size() < 8 + blocks * 8) return std::nullopt;

    std::vector<Vec3f> out;
    out.reserve(count);
    for (std::size_t b = 0; b < blocks; ++b) {
        const Vec3f q0 = unpack565(u16());
        const Vec3f q1 = unpack565(u16());
        const std::uint32_t indices = u32();
        const Vec3f palette[4] = {q0, geom::lerp(q0, q1, 1.0f / 3.0f),
                                  geom::lerp(q0, q1, 2.0f / 3.0f), q1};
        const std::size_t n = std::min(kBlock, static_cast<std::size_t>(count) - out.size());
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(palette[(indices >> (2 * i)) & 3]);
    }
    return out;
}

double colorBlockRatio(std::size_t colorCount, std::size_t encodedBytes) {
    if (encodedBytes == 0) return 0.0;
    return static_cast<double>(colorCount * sizeof(Vec3f)) /
           static_cast<double>(encodedBytes);
}

}  // namespace semholo::compress
