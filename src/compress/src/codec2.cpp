#include "semholo/compress/codec2.hpp"

namespace semholo::compress {

namespace {

constexpr std::size_t kFixedHeaderBytes = 5;

bool chainEncodable(const FilterChain& chain) {
    if (chain.stride == 0) return false;
    if (chain.ops.size() > kMaxFilterChainOps) return false;
    for (const FilterOp op : chain.ops)
        if (!isValidFilterOp(static_cast<std::uint8_t>(op))) return false;
    return true;
}

}  // namespace

Codec2Options poseCodecDefaults() {
    Codec2Options options;
    // The Pareto sweep's pick on the serialized pose stream: splitting
    // the 8-byte double lanes alone beats transpose+delta there (the
    // range coder's context modeling already captures the smooth
    // per-lane drift; differencing only whitens it).
    options.filters.ops = {FilterOp::ByteTranspose};
    options.filters.stride = 8;
    options.backend = EntropyBackend::Lzc;
    return options;
}

Codec2Options textCodecDefaults() {
    Codec2Options options;
    options.backend = EntropyBackend::Lzc;
    return options;
}

std::vector<std::uint8_t> codec2Encode(std::span<const std::uint8_t> data,
                                       const Codec2Options& options) {
    FilterChain chain = options.filters;
    if (!chainEncodable(chain)) chain = FilterChain{.ops = {}, .stride = 1};

    std::vector<std::uint8_t> out;
    out.reserve(kFixedHeaderBytes + chain.ops.size() + data.size() / 2 + 16);
    out.push_back(kCodec2Magic);
    out.push_back(kCodec2Version);
    out.push_back(static_cast<std::uint8_t>(options.backend));
    out.push_back(chain.stride);
    out.push_back(static_cast<std::uint8_t>(chain.ops.size()));
    for (const FilterOp op : chain.ops)
        out.push_back(static_cast<std::uint8_t>(op));

    const std::vector<std::uint8_t> filtered = applyFilters(chain, data);
    if (options.backend == EntropyBackend::Store) {
        out.insert(out.end(), filtered.begin(), filtered.end());
    } else {
        const auto payload = lzcCompress(filtered, options.lzc);
        out.insert(out.end(), payload.begin(), payload.end());
    }
    return out;
}

std::optional<std::vector<std::uint8_t>> codec2Decode(
    std::span<const std::uint8_t> container) {
    if (container.size() < kFixedHeaderBytes) return std::nullopt;
    if (container[0] != kCodec2Magic) return std::nullopt;
    if (container[1] != kCodec2Version) return std::nullopt;
    const std::uint8_t backendRaw = container[2];
    if (backendRaw > static_cast<std::uint8_t>(EntropyBackend::Lzc))
        return std::nullopt;
    const auto backend = static_cast<EntropyBackend>(backendRaw);

    FilterChain chain;
    chain.stride = container[3];
    if (chain.stride == 0) return std::nullopt;
    const std::size_t opCount = container[4];
    if (opCount > kMaxFilterChainOps) return std::nullopt;
    if (container.size() < kFixedHeaderBytes + opCount) return std::nullopt;
    for (std::size_t i = 0; i < opCount; ++i) {
        const std::uint8_t raw = container[kFixedHeaderBytes + i];
        if (!isValidFilterOp(raw)) return std::nullopt;
        chain.ops.push_back(static_cast<FilterOp>(raw));
    }

    const auto payload = container.subspan(kFixedHeaderBytes + opCount);
    if (backend == EntropyBackend::Store)
        return invertFilters(chain, payload);
    const auto filtered = lzcDecompress(payload);
    if (!filtered) return std::nullopt;
    return invertFilters(chain, *filtered);
}

}  // namespace semholo::compress
