// Codec v2: the versioned container that composes a pre-filter chain
// (semholo/compress/filter.hpp) with an entropy backend. The container
// header self-describes every decode parameter — backend, element
// stride, and filter chain — and the lzc backend stream carries its own
// options byte, so decoding needs nothing out of band: the encoder's
// parameters always travel with the bytes. This is the keypoint/foveated
// pose wire format and the text-delta payload format.
//
// Layout:
//   [0] magic 0xC2            [1] container version (1)
//   [2] backend               [3] element stride (>= 1)
//   [4] filter op count k     [5..5+k) filter op bytes
//   [5+k..] backend payload (lzc stream, or raw filtered bytes for
//           Store — filters are size-preserving so the length is
//           implied by the container)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "semholo/compress/filter.hpp"
#include "semholo/compress/lzc.hpp"

namespace semholo::compress {

enum class EntropyBackend : std::uint8_t {
    Store = 0,  // filters only: raw filtered bytes (for GB/s paths and
                // as the sweep's filter-throughput baseline)
    Lzc = 1,    // the LZMA-class range coder
};

inline constexpr std::uint8_t kCodec2Magic = 0xC2;
inline constexpr std::uint8_t kCodec2Version = 1;

struct Codec2Options {
    FilterChain filters{};
    EntropyBackend backend{EntropyBackend::Lzc};
    LzcOptions lzc{};
};

// Default pipeline for the serialized pose stream: split the 8-byte
// double lanes, then entropy-code (the sweep's Pareto pick for the
// Table-2 keypoint payload).
Codec2Options poseCodecDefaults();

// Default pipeline for text payloads: no filters (byte lanes carry no
// meaning in UTF-8 captions), lzc backend.
Codec2Options textCodecDefaults();

// Encode 'data' into a self-describing container. A malformed filter
// chain in 'options' (zero stride, overlong, unknown op) degrades to no
// filtering rather than producing an undecodable stream.
std::vector<std::uint8_t> codec2Encode(std::span<const std::uint8_t> data,
                                       const Codec2Options& options = {});

// Decode a container; every parameter comes from the header. Returns
// nullopt on unknown magic/version/backend/filter bytes, malformed
// chains, or a corrupt backend payload.
std::optional<std::vector<std::uint8_t>> codec2Decode(
    std::span<const std::uint8_t> container);

}  // namespace semholo::compress
