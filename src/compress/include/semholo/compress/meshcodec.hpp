// Draco-class lossy mesh codec: position quantisation within the mesh
// bounds, delta prediction along the (spatially coherent) vertex order,
// high-watermark connectivity coding, and LZC entropy coding on top.
// This is the "traditional communication w/ compression" path of
// Table 2 (~10x on raw geometry, quantisation-bounded error).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "semholo/mesh/trimesh.hpp"

namespace semholo::compress {

struct MeshCodecOptions {
    // Bits per position component (Draco default is 11).
    int positionBits{11};
    // Encode per-vertex colours (5 bits/channel) when the mesh has them.
    bool encodeColors{true};
};

std::vector<std::uint8_t> encodeMesh(const mesh::TriMesh& m,
                                     const MeshCodecOptions& options = {});

std::optional<mesh::TriMesh> decodeMesh(std::span<const std::uint8_t> data);

// Worst-case positional error of the quantisation for a given mesh and
// bit depth (half a quantisation step along the box diagonal).
float quantizationError(const mesh::TriMesh& m, int positionBits);

}  // namespace semholo::compress
