// LZC: an LZMA-class lossless compressor (LZ77 hash-chain match finder
// feeding the adaptive binary range coder). Used wherever the paper uses
// LZMA — most importantly compressing the 1.91 KB keypoint payload of
// Table 2 — and as the entropy backend of the mesh and text codecs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace semholo::compress {

struct LzcOptions {
    // Maximum match-finder chain walks per position (speed/ratio knob).
    int maxChainSteps{64};
    // Context bits of the previous byte used for literal coding.
    int literalContextBits{3};
};

// Compress 'data'. Output embeds the uncompressed size.
std::vector<std::uint8_t> lzcCompress(std::span<const std::uint8_t> data,
                                      const LzcOptions& options = {});

// Decompress; returns nullopt on malformed input.
std::optional<std::vector<std::uint8_t>> lzcDecompress(
    std::span<const std::uint8_t> compressed);

}  // namespace semholo::compress
