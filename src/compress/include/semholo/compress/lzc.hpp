// LZC: an LZMA-class lossless compressor (LZ77 hash-chain match finder
// feeding the adaptive binary range coder). Used wherever the paper uses
// LZMA — most importantly compressing the 1.91 KB keypoint payload of
// Table 2 — and as the entropy backend of the mesh and text codecs.
//
// Wire format v2 (one byte of self-description): every stream starts
// with a format byte carrying the wire version and the encoder's
// literal-context setting, so decompression needs no out-of-band
// options. v1 streams (raw size header only) are no longer produced or
// accepted; every producer in this repo compresses and decompresses
// with the same build.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace semholo::compress {

struct LzcOptions {
    // Maximum match-finder chain walks per position (speed/ratio knob).
    int maxChainSteps{64};
    // Context bits of the previous byte used for literal coding.
    // Valid range is [0, 3] (the literal model has at most 8 contexts);
    // out-of-range values are clamped before use, so encoder and
    // decoder agree by construction.
    int literalContextBits{3};
};

// The literal-context range the literal model actually supports.
inline constexpr int kLzcMaxLiteralContextBits = 3;

// 'literalContextBits' clamped to the supported [0, 3] range — the
// single source of truth both the encoder and the decoder use.
int lzcClampedLiteralContextBits(int literalContextBits);

// Wire layout: [format byte][u32le uncompressed size][range-coded
// payload]. The format byte is (kLzcFormatTag | literalContextBits).
inline constexpr std::uint8_t kLzcFormatTag = 0x20;   // high nibble: wire v2
inline constexpr std::uint8_t kLzcFormatMask = 0xFC;  // low 2 bits: ctx bits
inline constexpr std::size_t kLzcHeaderBytes = 5;

// Compress 'data'. Output embeds the format byte and uncompressed size.
std::vector<std::uint8_t> lzcCompress(std::span<const std::uint8_t> data,
                                      const LzcOptions& options = {});

// Decompress; returns nullopt on malformed input (short or unknown
// header, absurd size, truncated or corrupt payload). All decode
// parameters come from the stream header — never from caller options.
std::optional<std::vector<std::uint8_t>> lzcDecompress(
    std::span<const std::uint8_t> compressed);

}  // namespace semholo::compress
