// Composable pre-filters for structured float streams (the codec v2
// front end, modeled on aras-p/float_compr_tester): byte-transpose /
// stream-split across per-element byte lanes, byte-wise delta and xor
// diffing, and a bit-plane shuffle. Every filter is lossless and
// size-preserving, so a chain can run ahead of any entropy backend and
// be inverted exactly on decode. The serialized pose payload is rows of
// 8-byte doubles whose high bytes barely change frame to frame —
// grouping those lanes (transpose/bitshuffle) and differencing them
// (delta/xor) is what lets a generic LZ pass approach
// structured-float-codec ratios.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace semholo::compress {

enum class FilterOp : std::uint8_t {
    // Stream-split: byte lane b of every 'stride'-byte element becomes
    // one contiguous plane (lane-major order).
    ByteTranspose = 1,
    // Byte-wise difference with the previous byte (prev starts at 0).
    DeltaDiff = 2,
    // Byte-wise xor with the previous byte (prev starts at 0).
    XorDiff = 3,
    // Bit-plane shuffle: bit p of every 'stride'-byte element becomes a
    // contiguous run of bits (plane-major order).
    Bitshuffle = 4,
};

bool isValidFilterOp(std::uint8_t raw);
std::string filterOpName(FilterOp op);

// An ordered filter chain plus the element stride (bytes per logical
// element) the transpose/bitshuffle stages split on. Chains are applied
// front to back on encode and inverted back to front on decode.
struct FilterChain {
    std::vector<FilterOp> ops;
    std::uint8_t stride{8};  // sizeof(double): the pose payload lanes

    bool empty() const { return ops.empty(); }
};

// Longest chain a codec v2 container may carry (sanity bound for
// untrusted headers; real chains are 1-3 ops).
inline constexpr std::size_t kMaxFilterChainOps = 8;

// Human-readable chain label, e.g. "transpose+delta" or "none".
std::string filterChainName(const FilterChain& chain);

namespace detail {
// Reference bit-plane shuffle, one bit at a time. The production path
// runs 8 rows per step through a 64-bit transpose; tests assert the two
// stay byte-identical on every (size, stride) shape. 'dst' must hold
// src.size() bytes.
void bitshuffleScalar(std::span<const std::uint8_t> src, std::uint8_t* dst,
                      std::size_t stride);
void unbitshuffleScalar(std::span<const std::uint8_t> src, std::uint8_t* dst,
                        std::size_t stride);
}  // namespace detail

// Apply the chain front to back. Output size always equals input size.
std::vector<std::uint8_t> applyFilters(const FilterChain& chain,
                                       std::span<const std::uint8_t> data);

// Invert the chain back to front. Returns nullopt only for a malformed
// chain (stride 0 or too many ops) — data itself cannot fail since all
// filters are bijections.
std::optional<std::vector<std::uint8_t>> invertFilters(
    const FilterChain& chain, std::span<const std::uint8_t> data);

}  // namespace semholo::compress
