// Adaptive binary range coder, the entropy-coding core of the LZMA-class
// codec (DESIGN.md: stand-in for the paper's LZMA keypoint compression).
// Probabilities are 11-bit adaptive counters exactly as in LZMA.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace semholo::compress {

// Adaptive probability of a bit being 0, in [0, 2048).
struct BitProb {
    std::uint16_t p{1024};
};

class RangeEncoder {
public:
    void encodeBit(BitProb& prob, int bit);
    // Encode 'bits' raw bits of 'value' (MSB first) at probability 1/2.
    void encodeDirect(std::uint32_t value, int bits);
    // Encode a value in [0, 2^bits) through an adaptive bit tree of
    // (1 << bits) - 1 probabilities.
    void encodeTree(std::span<BitProb> tree, std::uint32_t value, int bits);
    // Flush remaining state; call exactly once, then take().
    void finish();
    std::vector<std::uint8_t> take() { return std::move(out_); }
    std::size_t sizeBytes() const { return out_.size(); }

private:
    void shiftLow();

    std::uint64_t low_{0};
    std::uint32_t range_{0xFFFFFFFFu};
    std::uint8_t cache_{0};
    std::uint64_t cacheSize_{1};
    std::vector<std::uint8_t> out_;
};

class RangeDecoder {
public:
    explicit RangeDecoder(std::span<const std::uint8_t> data);

    int decodeBit(BitProb& prob);
    std::uint32_t decodeDirect(int bits);
    std::uint32_t decodeTree(std::span<BitProb> tree, int bits);
    bool exhausted() const { return pos_ > data_.size() + 8; }

private:
    std::uint8_t nextByte();

    std::span<const std::uint8_t> data_;
    std::size_t pos_{0};
    std::uint32_t range_{0xFFFFFFFFu};
    std::uint32_t code_{0};
};

}  // namespace semholo::compress
