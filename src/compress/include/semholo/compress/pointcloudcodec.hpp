// Octree point-cloud codec (G-PCC/real-time-PCC class): points are
// quantised into an octree over the cloud bounds; occupancy is coded
// breadth-first, one child-mask byte per internal node, entropy-coded
// with LZC. Optional per-point colours ride along in leaf order. This is
// the "point cloud" half of the paper's traditional volumetric formats
// (section 2.1), complementing the mesh codec.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "semholo/mesh/pointcloud.hpp"

namespace semholo::compress {

struct PointCloudCodecOptions {
    // Octree depth: resolution is 2^depth cells per axis (depth 9 ~
    // 512^3, comparable to Draco's 11-bit quantisation on one axis).
    int depth{9};
    bool encodeColors{true};
};

std::vector<std::uint8_t> encodePointCloud(const mesh::PointCloud& cloud,
                                           const PointCloudCodecOptions& options = {});

std::optional<mesh::PointCloud> decodePointCloud(std::span<const std::uint8_t> data);

// Worst-case positional error at a given depth for a given cloud
// (half-diagonal of a leaf cell).
float pointCloudQuantizationError(const mesh::PointCloud& cloud, int depth);

}  // namespace semholo::compress
