// Block texture codec (BC1/ASTC-class): groups of 16 RGB samples are
// approximated by two endpoint colours and per-sample 2-bit indices on
// the segment between them — 4 bits/sample vs 96 raw. Used for the
// "directly deliver the compressed 2D texture" path of section 3.1.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "semholo/geometry/vec.hpp"

namespace semholo::compress {

// Encode a flat sequence of RGB colours (e.g. per-vertex colours in
// vertex order, or image scanlines). Lossy.
std::vector<std::uint8_t> encodeColorBlocks(std::span<const geom::Vec3f> colors);

std::optional<std::vector<geom::Vec3f>> decodeColorBlocks(
    std::span<const std::uint8_t> data);

// Compression ratio of the block codec (raw float RGB : encoded).
double colorBlockRatio(std::size_t colorCount, std::size_t encodedBytes);

}  // namespace semholo::compress
