// Internal: SoA capsule data + batch-kernel entry points for the SIMD
// body-field evaluation (see geometry/simd.hpp for the lane types and
// the determinism contract). The kernel source (body_batch_kernel.inl)
// is compiled once per ISA flavor — body_batch_base.cpp for the portable
// baseline and body_batch_avx2.cpp (x86, -mavx2) for the wide path —
// and makeBodyField dispatches to the widest kernel the CPU supports.
//
// Every kernel evaluates, per lane, the exact float-operation sequence
// of the scalar field closure in body_model.cpp: results are
// bit-identical to calling BodyField::field point by point, including
// the per-lane bone-pruning decisions (each lane keeps its own running
// distance, so a lane prunes a capsule exactly when the scalar path
// would).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "semholo/body/body_model.hpp"

namespace semholo::body::detail {

// Capsule + prune-box constants in structure-of-arrays form so kernels
// broadcast one scalar per capsule instead of gathering.
struct BodyBatchData {
    // Segment endpoints a, precomputed ab = b - a and |ab|^2.
    std::vector<float> ax, ay, az;
    std::vector<float> abx, aby, abz;
    std::vector<float> len2;
    // End radii: ra and drr = rb - ra (the lerp coefficients).
    std::vector<float> ra, drr;
    // Prune boxes (segment AABB) + larger end radius.
    std::vector<float> lox, loy, loz, hix, hiy, hiz, rmax;
    std::size_t count{0};

    bool bonePruning{true};
    bool hasExpression{false};
    ExpressionParams expr{};
    geom::RigidTransform headXf{}, headInv{};
    Vec3f headRest{};
    bool clothingDetail{false};
    float clothingAmplitude{0.0f};
    geom::RigidTransform rootInv{};
};

// Procedural clothing folds (shared by the scalar closure and the batch
// kernels): high-frequency displacement confined to the clothed body
// regions, in the pelvis-local frame so folds move with the root.
inline float clothingFoldDisplacement(Vec3f pLocal, float amplitude) {
    if (pLocal.y > 0.45f || pLocal.y < -0.95f) return 0.0f;  // skin regions
    return amplitude * std::sin(55.0f * pLocal.y) *
           std::sin(35.0f * pLocal.x + 20.0f * pLocal.z);
}

// Evaluate the body field at n SoA query points; adds the capsule blend
// / prune tallies for the batch to 'blended' / 'pruned'.
void evaluateBodyBatchBaseline(const BodyBatchData& data, const float* xs,
                               const float* ys, const float* zs, float* out,
                               std::size_t n, std::uint64_t& blended,
                               std::uint64_t& pruned);
#if defined(SEMHOLO_HAVE_AVX2_KERNELS)
void evaluateBodyBatchAvx2(const BodyBatchData& data, const float* xs,
                           const float* ys, const float* zs, float* out,
                           std::size_t n, std::uint64_t& blended,
                           std::uint64_t& pruned);
#endif

}  // namespace semholo::body::detail
