#include "semholo/body/body_model.hpp"

#include <algorithm>
#include <cmath>

#include "body_batch.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/geometry/simd.hpp"
#include "semholo/mesh/isosurface.hpp"

namespace semholo::body {

namespace {

// Polynomial smooth minimum (Quilez): blends capsule fields organically.
float smin(float a, float b, float k) {
    const float h = geom::clamp(0.5f + 0.5f * (b - a) / k, 0.0f, 1.0f);
    return geom::lerp(b, a, h) - k * h * (1.0f - h);
}

// Distance to a capsule with linearly varying radius (a "round cone").
float capsuleDistance(Vec3f p, Vec3f a, Vec3f b, float ra, float rb) {
    float t;
    const float d = geom::pointSegmentDistance(p, a, b, t);
    return d - geom::lerp(ra, rb, t);
}

// Girth multiplier from shape betas (beta[2] = overall girth).
float girth(const ShapeParams& shape) {
    return 1.0f + 0.06f * static_cast<float>(shape.betas[2]);
}

struct PosedBone {
    Vec3f a, b;
    float ra, rb;
};

std::vector<PosedBone> posedBones(const SkeletonState& state, const ShapeParams& shape,
                                  const Skeleton& skeleton) {
    std::vector<PosedBone> out;
    const float g = girth(shape);
    for (const Bone& bone : canonicalBones()) {
        const Vec3f a = state.worldFromJoint[index(bone.parent)].translation;
        const Vec3f b = state.worldFromJoint[index(bone.child)].translation;
        out.push_back({a, b, bone.radiusAtParent * g, bone.radiusAtChild * g});
    }
    // Head: a sphere centred slightly above the head joint.
    const Vec3f headPos = state.worldFromJoint[index(JointId::Head)].translation;
    const Vec3f headUp =
        state.worldFromJoint[index(JointId::Head)].rotation.rotate({0, 1, 0});
    out.push_back({headPos + headUp * 0.04f, headPos + headUp * 0.09f, 0.105f * g,
                   0.095f * g});
    // Torso volume: widen the spine capsules with two extra "slabs".
    const Vec3f spine1 = state.worldFromJoint[index(JointId::Spine1)].translation;
    const Vec3f spine3 = state.worldFromJoint[index(JointId::Spine3)].translation;
    const Vec3f right =
        state.worldFromJoint[index(JointId::Spine2)].rotation.rotate({1, 0, 0});
    out.push_back({spine1 + right * 0.06f, spine3 + right * 0.07f, 0.09f * g, 0.09f * g});
    out.push_back({spine1 - right * 0.06f, spine3 - right * 0.07f, 0.09f * g, 0.09f * g});
    (void)skeleton;
    return out;
}

}  // namespace

Vec3f expressionOffset(Vec3f restPosition, const ExpressionParams& expression) {
    // Face region in the rest pose: around the head at (0, ~0.70, ~+0.09).
    const Vec3f mouthCenter{0.0f, 0.66f, 0.10f};
    const Vec3f browCenter{0.0f, 0.75f, 0.10f};
    const float dMouth = (restPosition - mouthCenter).norm();
    const float dBrow = (restPosition - browCenter).norm();
    Vec3f offset{};
    // Jaw open: pull the lower-lip region down.
    if (dMouth < 0.06f && restPosition.y < mouthCenter.y) {
        const float w = 1.0f - dMouth / 0.06f;
        offset.y -= 0.02f * w * static_cast<float>(expression.coeffs[0]);
    }
    // Pout: push the lip region forward (+z).
    if (dMouth < 0.045f) {
        const float w = 1.0f - dMouth / 0.045f;
        offset.z += 0.015f * w * static_cast<float>(expression.coeffs[1]);
    }
    // Smile: stretch mouth corners outward in x.
    if (dMouth < 0.07f) {
        const float w = 1.0f - dMouth / 0.07f;
        offset.x += 0.012f * w * static_cast<float>(expression.coeffs[2]) *
                    (restPosition.x >= 0.0f ? 1.0f : -1.0f);
    }
    // Brow raise.
    if (dBrow < 0.05f && restPosition.y > browCenter.y - 0.01f) {
        const float w = 1.0f - dBrow / 0.05f;
        offset.y += 0.008f * w * static_cast<float>(expression.coeffs[3]);
    }
    return offset;
}

using detail::clothingFoldDisplacement;

ScalarField bodySignedDistance(const Pose& pose, const Skeleton& skeleton,
                               const BodyFieldOptions& options) {
    const SkeletonState state = forwardKinematics(pose, skeleton);
    auto bones = posedBones(state, pose.shape, skeleton);
    const ExpressionParams expr = pose.expression;

    // Rest-space face anchors posed into world space for expression
    // displacement of the implicit surface.
    const RigidTransform headXf = state.worldFromJoint[index(JointId::Head)];
    const Vec3f headRest = Skeleton::canonical().restPosition(JointId::Head);
    const RigidTransform rootInv =
        state.worldFromJoint[index(JointId::Pelvis)].inverse();

    return [bones = std::move(bones), expr, headXf, headRest, rootInv,
            options](Vec3f p) {
        // Expression: warp the query point near the face inverse to the
        // desired offset (standard implicit-deformation trick).
        const Vec3f pHeadLocal = headXf.inverse().apply(p) + headRest;
        const Vec3f offset = expressionOffset(pHeadLocal, expr);
        Vec3f q = p;
        if (offset.norm2() > 0.0f) q = p - headXf.applyVector(offset);

        float d = std::numeric_limits<float>::max();
        for (const PosedBone& b : bones)
            d = smin(d, capsuleDistance(q, b.a, b.b, b.ra, b.rb), kFieldBlend);
        if (options.clothingDetail)
            d += clothingFoldDisplacement(rootInv.apply(p),
                                          options.clothingAmplitude);
        return d;
    };
}

// ---- BodyFieldStats ------------------------------------------------------

namespace {

std::atomic<unsigned> gStatsShardCounter{0};

// Each thread claims its own shard once, so the per-evaluation counter
// updates are uncontended relaxed adds.
unsigned thisThreadShard() {
    static thread_local const unsigned shard =
        gStatsShardCounter.fetch_add(1, std::memory_order_relaxed);
    return shard;
}

}  // namespace

void BodyFieldStats::add(std::uint32_t blended, std::uint32_t pruned) noexcept {
    Shard& s = shards_[thisThreadShard() % kShards];
    s.blended.fetch_add(blended, std::memory_order_relaxed);
    s.pruned.fetch_add(pruned, std::memory_order_relaxed);
}

std::uint64_t BodyFieldStats::bonesBlended() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.blended.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t BodyFieldStats::bonesPruned() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.pruned.load(std::memory_order_relaxed);
    return total;
}

void BodyFieldStats::reset() noexcept {
    for (Shard& s : shards_) {
        s.blended.store(0, std::memory_order_relaxed);
        s.pruned.store(0, std::memory_order_relaxed);
    }
}

// ---- makeBodyField -------------------------------------------------------

namespace {

// Conservative per-capsule data for the per-query skip test: the
// segment's axis-aligned box plus the larger end radius. For any point,
// capsuleDistance >= dist(point, segment box) - rmax, so
//   dist2(q, box) > (d + kFieldBlend + rmax)^2
// certifies the capsule's smooth-min contribution is the identity.
struct BonePruneData {
    Vec3f lo, hi;
    float rmax;
};

float aabbDistance2(Vec3f p, Vec3f lo, Vec3f hi) {
    const float dx = std::max({lo.x - p.x, 0.0f, p.x - hi.x});
    const float dy = std::max({lo.y - p.y, 0.0f, p.y - hi.y});
    const float dz = std::max({lo.z - p.z, 0.0f, p.z - hi.z});
    return dx * dx + dy * dy + dz * dz;
}

using BatchKernel = void (*)(const detail::BodyBatchData&, const float*,
                             const float*, const float*, float*, std::size_t,
                             std::uint64_t&, std::uint64_t&);

BatchKernel pickBatchKernel() {
#if defined(SEMHOLO_HAVE_AVX2_KERNELS)
    if (!geom::simd::forcedScalar() && geom::simd::cpuHasAvx2())
        return &detail::evaluateBodyBatchAvx2;
#endif
    return &detail::evaluateBodyBatchBaseline;
}

}  // namespace

const char* bodyBatchBackend() {
#if defined(SEMHOLO_HAVE_AVX2_KERNELS)
    if (!geom::simd::forcedScalar() && geom::simd::cpuHasAvx2()) return "avx2";
#endif
    if (geom::simd::forcedScalar()) return "scalar";
    return geom::simd::backendName(geom::simd::baselineBackend());
}

BodyField makeBodyField(const Pose& pose, const Skeleton& skeleton,
                        const BodyFieldOptions& options) {
    const SkeletonState state = forwardKinematics(pose, skeleton);
    const std::vector<PosedBone> bones = posedBones(state, pose.shape, skeleton);
    const ExpressionParams expr = pose.expression;
    const RigidTransform headXf = state.worldFromJoint[index(JointId::Head)];
    const RigidTransform headInv = headXf.inverse();
    const Vec3f headRest = Skeleton::canonical().restPosition(JointId::Head);
    const RigidTransform rootInv =
        state.worldFromJoint[index(JointId::Pelvis)].inverse();

    BodyField out;
    out.stats = std::make_shared<BodyFieldStats>();
    out.capsules.reserve(bones.size());
    std::vector<BonePruneData> prune;
    prune.reserve(bones.size());
    // Round-cone Lipschitz constant: the radius lerp along the segment
    // adds |ra - rb| / length to the unit distance gradient. The
    // smooth-min fold is a convex combination of its inputs, so the
    // folded field inherits the worst capsule constant.
    float capsuleLip = 1.0f;
    for (const PosedBone& b : bones) {
        out.capsules.push_back({b.a, b.b, b.ra, b.rb});
        BonePruneData bd;
        bd.lo = {std::min(b.a.x, b.b.x), std::min(b.a.y, b.b.y),
                 std::min(b.a.z, b.b.z)};
        bd.hi = {std::max(b.a.x, b.b.x), std::max(b.a.y, b.b.y),
                 std::max(b.a.z, b.b.z)};
        bd.rmax = std::max(b.ra, b.rb);
        prune.push_back(bd);
        const float len = (b.b - b.a).norm();
        if (len > 1e-6f)
            capsuleLip = std::max(capsuleLip, 1.0f + std::fabs(b.ra - b.rb) / len);
    }

    // Expression warp: the query offset's gradient bound multiplies into
    // the composed field's Lipschitz constant; its region gates (jaw
    // y-gate, smile sign flip, brow gate) contribute bounded jumps that
    // go into the margin instead. Constants follow expressionOffset:
    // amplitude / falloff-radius per component.
    const float a0 = std::fabs(static_cast<float>(expr.coeffs[0]));
    const float a1 = std::fabs(static_cast<float>(expr.coeffs[1]));
    const float a2 = std::fabs(static_cast<float>(expr.coeffs[2]));
    const float a3 = std::fabs(static_cast<float>(expr.coeffs[3]));
    const float offsetLip =
        (0.02f / 0.06f) * a0 + (0.015f / 0.045f) * a1 + (0.012f / 0.07f) * a2 +
        (0.008f / 0.05f) * a3;
    const float offsetJump = 0.02f * a0 + 0.024f * a2 + 0.008f * a3;
    float lipschitz = capsuleLip * (1.0f + offsetLip);
    float margin = capsuleLip * offsetJump;
    if (options.clothingDetail) {
        // |grad| <= amplitude * max(55, hypot(35, 20)) = 55 * amplitude;
        // the clothed-region y-gates jump by at most the amplitude.
        lipschitz += 55.0f * options.clothingAmplitude;
        margin += options.clothingAmplitude;
    }
    out.lipschitz = lipschitz * 1.02f;  // slack for rounding in the bound
    out.margin = margin + 1e-4f;

    geom::AABB bounds;
    for (const auto& xf : state.worldFromJoint) bounds.expand(xf.translation);
    bounds.inflate(0.18f);
    out.bounds = bounds;

    // Rest-space box covering every expressionOffset falloff region
    // (mouth sphere radius 0.07 around y=0.66, brow sphere radius 0.05
    // around y=0.75, both at z=0.10), inflated by the largest possible
    // offset; posed into world space through the head transform.
    {
        const geom::AABB faceRest{{-0.07f, 0.59f, 0.03f}, {0.07f, 0.80f, 0.17f}};
        geom::AABB face;
        for (int corner = 0; corner < 8; ++corner) {
            const Vec3f local{corner & 1 ? faceRest.hi.x : faceRest.lo.x,
                              corner & 2 ? faceRest.hi.y : faceRest.lo.y,
                              corner & 4 ? faceRest.hi.z : faceRest.lo.z};
            face.expand(headXf.apply(local - headRest));
        }
        face.inflate(0.03f);
        out.faceBounds = face;
    }

    const bool hasExpression = a0 > 0.0f || a1 > 0.0f || a2 > 0.0f || a3 > 0.0f;

    out.field = [bones, prune, expr, hasExpression, headXf,
                 headInv, headRest, rootInv, options,
                 stats = out.stats](Vec3f p) {
        Vec3f q = p;
        if (hasExpression) {
            const Vec3f pHeadLocal = headInv.apply(p) + headRest;
            const Vec3f offset = expressionOffset(pHeadLocal, expr);
            if (offset.norm2() > 0.0f) q = p - headXf.applyVector(offset);
        }
        float d = std::numeric_limits<float>::max();
        std::uint32_t blended = 0;
        std::uint32_t pruned = 0;
        for (std::size_t i = 0; i < bones.size(); ++i) {
            if (options.bonePruning) {
                const BonePruneData& bd = prune[i];
                const float t = d + kFieldBlend + bd.rmax;
                if (t < 0.0f || aabbDistance2(q, bd.lo, bd.hi) > t * t) {
                    ++pruned;
                    continue;
                }
            }
            const PosedBone& b = bones[i];
            d = smin(d, capsuleDistance(q, b.a, b.b, b.ra, b.rb), kFieldBlend);
            ++blended;
        }
        if (options.clothingDetail)
            d += clothingFoldDisplacement(rootInv.apply(p),
                                          options.clothingAmplitude);
        stats->add(blended, pruned);
        return d;
    };

    // SoA batch evaluator: same math, eight lanes at a time. The kernel
    // mirrors the closure above operation for operation, so batch and
    // per-point results are bit-identical (the test suites assert this).
    {
        auto data = std::make_shared<detail::BodyBatchData>();
        data->count = bones.size();
        for (const PosedBone& b : bones) {
            data->ax.push_back(b.a.x);
            data->ay.push_back(b.a.y);
            data->az.push_back(b.a.z);
            const Vec3f ab = b.b - b.a;
            data->abx.push_back(ab.x);
            data->aby.push_back(ab.y);
            data->abz.push_back(ab.z);
            data->len2.push_back(ab.norm2());
            data->ra.push_back(b.ra);
            data->drr.push_back(b.rb - b.ra);
        }
        for (const BonePruneData& bd : prune) {
            data->lox.push_back(bd.lo.x);
            data->loy.push_back(bd.lo.y);
            data->loz.push_back(bd.lo.z);
            data->hix.push_back(bd.hi.x);
            data->hiy.push_back(bd.hi.y);
            data->hiz.push_back(bd.hi.z);
            data->rmax.push_back(bd.rmax);
        }
        data->bonePruning = options.bonePruning;
        data->hasExpression = hasExpression;
        data->expr = expr;
        data->headXf = headXf;
        data->headInv = headInv;
        data->headRest = headRest;
        data->clothingDetail = options.clothingDetail;
        data->clothingAmplitude = options.clothingAmplitude;
        data->rootInv = rootInv;
        const BatchKernel kernel = pickBatchKernel();
        out.batch = [data, kernel, stats = out.stats](
                        const float* xs, const float* ys, const float* zs,
                        float* vals, std::size_t n) {
            std::uint64_t blended = 0;
            std::uint64_t pruned = 0;
            kernel(*data, xs, ys, zs, vals, n, blended, pruned);
            stats->add(static_cast<std::uint32_t>(blended),
                       static_cast<std::uint32_t>(pruned));
        };
    }

    // Analytic block certificate. For any query q within 'radius' of the
    // center c, with crude (but 1-Lipschitz-in-q) per-capsule bounds:
    //   capsuleDistance_i(q) >= dist(q, segBox_i) - rmax_i
    //                        >= dist(c, segBox_i) - rmax_i - radius
    //   capsuleDistance_i(q) <= min(|q-a_i| - ra_i, |q-b_i| - rb_i)
    //                        <= min(|c-a_i| - ra_i, |c-b_i| - rb_i) + radius
    // and the smooth-min fold satisfies min_i - kFieldBlend <= f <= min_i,
    // so one pass over the capsules brackets f over the whole ball. The
    // expression warp shifts the query by at most 'maxWarp' but only for
    // points inside the face region, and the clothing displacement adds
    // at most its amplitude: both widen the bracket only when they can
    // apply. No global cone-slope constant ever enters, which is what
    // keeps the shell of unskippable blocks thin for expressive poses.
    const float maxWarp =
        0.02f * a0 + 0.015f * a1 + 0.012f * a2 + 0.008f * a3;
    const float clothingSlack =
        options.clothingDetail ? options.clothingAmplitude : 0.0f;
    out.certificate = [capsules = out.capsules, face = out.faceBounds, maxWarp,
                       clothingSlack](Vec3f center, float radius,
                                      float slack) -> bool {
        float r = radius;
        if (maxWarp > 0.0f &&
            aabbDistance2(center, face.lo, face.hi) <= radius * radius)
            r += maxWarp;
        const float clear = r + slack + clothingSlack + 1e-4f;
        float lb = std::numeric_limits<float>::max();  // min_i capsule lower bound
        float ub = std::numeric_limits<float>::max();  // min_i capsule upper bound
        for (const PosedCapsule& c : capsules) {
            const Vec3f lo{std::min(c.a.x, c.b.x), std::min(c.a.y, c.b.y),
                           std::min(c.a.z, c.b.z)};
            const Vec3f hi{std::max(c.a.x, c.b.x), std::max(c.a.y, c.b.y),
                           std::max(c.a.z, c.b.z)};
            lb = std::min(
                lb, std::sqrt(aabbDistance2(center, lo, hi)) - std::max(c.ra, c.rb));
            ub = std::min(ub, std::min((center - c.a).norm() - c.ra,
                                       (center - c.b).norm() - c.rb));
        }
        // Exterior: f >= lb - radius - kFieldBlend > slack over the ball.
        if (lb - kFieldBlend > clear) return true;
        // Interior: f <= ub + radius < -slack over the ball.
        if (ub < -clear) return true;
        return false;
    };
    return out;
}

geom::AABB bodyBounds(const Pose& pose, const Skeleton& skeleton) {
    const SkeletonState state = forwardKinematics(pose, skeleton);
    geom::AABB box;
    for (const auto& xf : state.worldFromJoint) box.expand(xf.translation);
    box.inflate(0.18f);  // largest capsule radius + blend margin
    return box;
}

BodyModel::BodyModel(const ShapeParams& shape, int templateResolution) : shape_(shape) {
    Pose rest;
    rest.shape = shape;
    restState_ = forwardKinematics(rest);
    // The capture-quality template carries clothing-fold detail that
    // keypoint-based reconstruction cannot represent (Figure 2 gap).
    BodyFieldOptions fieldOpt;
    fieldOpt.clothingDetail = true;
    // Bone pruning off: the template feeds byte-exact payload-size
    // expectations downstream, so sampling must reproduce the legacy
    // field bit for bit. Block pruning + the worker pool are certified
    // value-preserving, so they stay on.
    fieldOpt.bonePruning = false;
    const BodyField body = makeBodyField(rest, Skeleton::canonical(), fieldOpt);
    mesh::FieldSampleOptions sampling;
    sampling.pool = &core::sharedPool();
    sampling.lipschitz = body.lipschitz;
    sampling.margin = body.margin;
    sampling.certificate = [&body](Vec3f center, float radius) {
        return body.certificate(center, radius, 0.0f);
    };
    // The batch evaluator is the field's bit-identical SoA companion, so
    // routing sampled blocks through it keeps the byte-exact guarantee.
    sampling.batch = body.batch;
    template_ = mesh::extractIsoSurface(body.field, bodyBounds(rest),
                                        templateResolution, {}, sampling);
    computeSkinWeights();
    paintTexture();
}

void BodyModel::computeSkinWeights() {
    const auto& bones = canonicalBones();
    const float g = girth(shape_);
    weights_.resize(template_.vertexCount());
    for (std::size_t vi = 0; vi < template_.vertexCount(); ++vi) {
        const Vec3f v = template_.vertices[vi];
        // Distance to each bone's surface; keep the best four.
        std::array<std::pair<float, std::uint16_t>, 4> best;
        best.fill({std::numeric_limits<float>::max(), 0});
        for (const Bone& bone : bones) {
            const Vec3f a = restState_.worldFromJoint[index(bone.parent)].translation;
            const Vec3f b = restState_.worldFromJoint[index(bone.child)].translation;
            const float d = std::max(
                0.0f, capsuleDistance(v, a, b, bone.radiusAtParent * g,
                                      bone.radiusAtChild * g));
            // Weight attaches to the child joint (the bone's own joint).
            const auto j = static_cast<std::uint16_t>(index(bone.child));
            if (d < best[3].first) {
                best[3] = {d, j};
                std::sort(best.begin(), best.end(),
                          [](const auto& x, const auto& y) { return x.first < y.first; });
            }
        }
        SkinWeights w;
        float total = 0.0f;
        const float sigma = 0.07f;
        for (std::size_t k = 0; k < 4; ++k) {
            const float wk = std::exp(-best[k].first * best[k].first / (sigma * sigma));
            w.joints[k] = best[k].second;
            w.weights[k] = wk;
            total += wk;
        }
        if (total < 1e-9f) {
            w.weights = {1, 0, 0, 0};
        } else {
            for (float& wk : w.weights) wk /= total;
        }
        weights_[vi] = w;
    }
}

Vec3f groundTruthAlbedo(Vec3f p) {
    // Skin / clothing bands with high-frequency detail so texture error is
    // measurable: shirt between shoulders and hips, trousers below, skin
    // elsewhere; stripes give the "folds" detail the learned texture loses.
    const Vec3f skin{0.87f, 0.67f, 0.53f};
    const Vec3f shirt{0.20f, 0.35f, 0.65f};
    const Vec3f trousers{0.25f, 0.22f, 0.20f};
    Vec3f base = skin;
    if (p.y < -0.05f && p.y > -0.95f) base = trousers;
    if (p.y >= -0.05f && p.y < 0.42f && std::fabs(p.x) < 0.35f) base = shirt;
    // High-frequency stripe detail (simulates cloth folds).
    const float stripes = 0.06f * std::sin(60.0f * p.y) * std::sin(40.0f * p.x);
    return {geom::clamp(base.x + stripes, 0.0f, 1.0f),
            geom::clamp(base.y + stripes, 0.0f, 1.0f),
            geom::clamp(base.z + stripes, 0.0f, 1.0f)};
}

void BodyModel::paintTexture() {
    template_.colors.resize(template_.vertexCount());
    for (std::size_t i = 0; i < template_.vertexCount(); ++i)
        template_.colors[i] = groundTruthAlbedo(template_.vertices[i]);
}

TriMesh BodyModel::deform(const Pose& pose) const {
    TriMesh out = template_;
    const SkeletonState state = forwardKinematics(pose);

    // Per-joint skinning transforms: world(pose) * world(rest)^-1.
    std::array<RigidTransform, kJointCount> skin;
    for (std::size_t j = 0; j < kJointCount; ++j)
        skin[j] = state.worldFromJoint[j] * restState_.worldFromJoint[j].inverse();

    for (std::size_t vi = 0; vi < out.vertexCount(); ++vi) {
        const Vec3f rest = template_.vertices[vi] +
                           expressionOffset(template_.vertices[vi], pose.expression);
        const SkinWeights& w = weights_[vi];
        Vec3f blended{};
        for (std::size_t k = 0; k < 4; ++k) {
            if (w.weights[k] <= 0.0f) continue;
            blended += skin[w.joints[k]].apply(rest) * w.weights[k];
        }
        out.vertices[vi] = blended;
    }
    out.computeVertexNormals();
    return out;
}

}  // namespace semholo::body
