// AVX2 flavor of the batch kernel: same source, compiled with -mavx2 so
// the f32xN<8> lane loops lower to single 256-bit instructions. Only
// added to the build on x86 when the compiler supports the flag (see
// src/body/CMakeLists.txt); selected at runtime via cpuid.
//
// Note -mavx2 deliberately does NOT come with -mfma: fused multiply-add
// would change lane results versus the scalar reference and break the
// bit-identity contract documented in geometry/simd.hpp.
#define SEMHOLO_BODY_BATCH_FN evaluateBodyBatchAvx2
#include "body_batch_kernel.inl"
