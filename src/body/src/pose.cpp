#include "semholo/body/pose.hpp"

#include <cmath>
#include <cstring>

namespace semholo::body {

namespace {

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void putF64(std::vector<std::uint8_t>& out, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

std::uint32_t getU32(std::span<const std::uint8_t> in, std::size_t& off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[off++]) << (8 * i);
    return v;
}

double getF64(std::span<const std::uint8_t> in, std::size_t& off) {
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(in[off++]) << (8 * i);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

}  // namespace

std::vector<std::uint8_t> serializePose(const Pose& pose) {
    std::vector<std::uint8_t> out;
    out.reserve(kPosePayloadBytes);
    putU32(out, pose.frameId);
    for (const Vec3f& r : pose.jointRotations) {
        putF64(out, r.x);
        putF64(out, r.y);
        putF64(out, r.z);
    }
    putF64(out, pose.rootTranslation.x);
    putF64(out, pose.rootTranslation.y);
    putF64(out, pose.rootTranslation.z);
    for (const double b : pose.shape.betas) putF64(out, b);
    for (const double e : pose.expression.coeffs) putF64(out, e);
    return out;
}

std::optional<Pose> deserializePose(std::span<const std::uint8_t> bytes) {
    if (bytes.size() != kPosePayloadBytes) return std::nullopt;
    Pose pose;
    std::size_t off = 0;
    pose.frameId = getU32(bytes, off);
    for (Vec3f& r : pose.jointRotations) {
        r.x = static_cast<float>(getF64(bytes, off));
        r.y = static_cast<float>(getF64(bytes, off));
        r.z = static_cast<float>(getF64(bytes, off));
    }
    pose.rootTranslation.x = static_cast<float>(getF64(bytes, off));
    pose.rootTranslation.y = static_cast<float>(getF64(bytes, off));
    pose.rootTranslation.z = static_cast<float>(getF64(bytes, off));
    for (double& b : pose.shape.betas) b = getF64(bytes, off);
    for (double& e : pose.expression.coeffs) e = getF64(bytes, off);
    return pose;
}

float boneScale(const ShapeParams& shape, JointId joint) {
    // beta[0]: global stature; beta[1]: limb (arm+leg) length;
    // beta[2] affects torso height. Coefficients are small so the scale
    // stays positive for |beta| < 5.
    const auto b = shape.betas;
    float scale = 1.0f + 0.05f * static_cast<float>(b[0]);
    const std::size_t j = index(joint);
    const bool isArm = (j >= index(JointId::LeftClavicle) &&
                        j <= index(JointId::RightWrist)) ||
                       j >= index(JointId::LeftThumb1);
    const bool isLeg =
        j >= index(JointId::LeftHip) && j <= index(JointId::RightFoot);
    const bool isTorso = j >= index(JointId::Spine1) && j <= index(JointId::Head);
    if (isArm || isLeg) scale *= 1.0f + 0.04f * static_cast<float>(b[1]);
    if (isTorso) scale *= 1.0f + 0.03f * static_cast<float>(b[2]);
    // Higher betas perturb smaller groups; keep the mapping deterministic.
    scale *= 1.0f + 0.005f * static_cast<float>(b[3 + (j % 13)]) *
                        static_cast<float>((j % 7) + 1) / 7.0f;
    return std::max(0.2f, scale);
}

SkeletonState forwardKinematics(const Pose& pose, const Skeleton& skeleton) {
    SkeletonState state;
    for (const Joint& j : skeleton.joints()) {
        const std::size_t i = index(j.id);
        const Quat localRot = Quat::fromAxisAngle(pose.jointRotations[i]);
        if (skeleton.isRoot(j.id)) {
            state.worldFromJoint[i] = {localRot, pose.rootTranslation};
            continue;
        }
        const RigidTransform& parent = state.worldFromJoint[index(j.parent)];
        const Vec3f offset = j.restOffset * boneScale(pose.shape, j.id);
        // Child frame: rotate about the child joint located at
        // parent * offset.
        state.worldFromJoint[i] = {
            (parent.rotation * localRot).normalized(),
            parent.apply(offset),
        };
    }
    return state;
}

std::array<Vec3f, kJointCount> jointKeypoints(const Pose& pose) {
    const SkeletonState state = forwardKinematics(pose);
    std::array<Vec3f, kJointCount> out;
    for (std::size_t i = 0; i < kJointCount; ++i)
        out[i] = state.worldFromJoint[i].translation;
    return out;
}

Pose interpolatePoses(const Pose& a, const Pose& b, float t) {
    Pose out = t < 0.5f ? a : b;
    for (std::size_t i = 0; i < kJointCount; ++i) {
        const Quat qa = Quat::fromAxisAngle(a.jointRotations[i]);
        const Quat qb = Quat::fromAxisAngle(b.jointRotations[i]);
        out.jointRotations[i] = slerp(qa, qb, t).toAxisAngle();
    }
    out.rootTranslation = geom::lerp(a.rootTranslation, b.rootTranslation, t);
    for (std::size_t i = 0; i < out.expression.coeffs.size(); ++i)
        out.expression.coeffs[i] = geom::lerp(a.expression.coeffs[i],
                                              b.expression.coeffs[i],
                                              static_cast<double>(t));
    return out;
}

float poseDistance(const Pose& a, const Pose& b) {
    float sumSq = 0.0f;
    for (std::size_t i = 0; i < kJointCount; ++i) {
        const float d = geom::angularDistance(Quat::fromAxisAngle(a.jointRotations[i]),
                                              Quat::fromAxisAngle(b.jointRotations[i]));
        sumSq += d * d;
    }
    return std::sqrt(sumSq / static_cast<float>(kJointCount));
}

}  // namespace semholo::body
