#include "semholo/body/ik.hpp"

#include <cmath>

namespace semholo::body {

namespace {

// Rotation mapping the frame spanned by (a1, a2) onto (b1, b2): primary
// axis matched exactly, secondary matched as closely as the orthogonality
// constraint allows.
Quat frameAlign(Vec3f a1, Vec3f a2, Vec3f b1, Vec3f b2) {
    const Quat primary = Quat::fromTwoVectors(a1, b1);
    // Twist about b1 to bring the rotated a2 towards b2.
    const Vec3f a2r = primary.rotate(a2);
    // Project both onto the plane orthogonal to b1.
    const Vec3f axis = b1.normalized();
    const Vec3f p1 = (a2r - axis * a2r.dot(axis));
    const Vec3f p2 = (b2 - axis * b2.dot(axis));
    if (p1.norm2() < 1e-10f || p2.norm2() < 1e-10f) return primary;
    const Quat twist = Quat::fromTwoVectors(p1, p2);
    return (twist * primary).normalized();
}

}  // namespace

IkResult fitPoseToKeypoints(const std::array<Vec3f, kJointCount>& keypoints,
                            const std::array<float, kJointCount>& confidence,
                            const IkOptions& options) {
    const Skeleton& sk = Skeleton::canonical();
    Pose pose;
    pose.shape = options.shape;
    if (confidence[index(JointId::Pelvis)] >= options.minConfidence) {
        pose.rootTranslation = keypoints[index(JointId::Pelvis)];
    } else {
        // Pelvis dropped: estimate the root as the mean offset between
        // the usable observations and their rest positions.
        Vec3f sum{};
        int n = 0;
        for (std::size_t i = 0; i < kJointCount; ++i) {
            if (confidence[i] < options.minConfidence) continue;
            sum += keypoints[i] - sk.restPosition(static_cast<JointId>(i));
            ++n;
        }
        pose.rootTranslation = n > 0 ? sum / static_cast<float>(n) : Vec3f{};
    }

    // World rotations chosen per joint, root to leaves.
    std::array<Quat, kJointCount> worldRot;
    worldRot.fill(Quat::identity());

    auto usable = [&](JointId id) {
        return confidence[index(id)] >= options.minConfidence;
    };

    for (const Joint& j : sk.joints()) {
        const std::size_t ji = index(j.id);
        const auto& children = sk.children()[ji];

        // Gather usable child observations.
        Vec3f restDir1{}, restDir2{}, obsDir1{}, obsDir2{};
        int found = 0;
        for (const JointId c : children) {
            if (!usable(c) || !usable(j.id)) continue;
            const Vec3f rest = sk.joint(c).restOffset;
            if (rest.norm2() < 1e-10f) continue;
            const Vec3f obs = keypoints[index(c)] - keypoints[ji];
            if (obs.norm2() < 1e-10f) continue;
            if (found == 0) {
                restDir1 = rest.normalized();
                obsDir1 = obs.normalized();
            } else if (found == 1) {
                // Skip nearly collinear second axes (no twist signal).
                if (std::fabs(rest.normalized().dot(restDir1)) > 0.98f) continue;
                restDir2 = rest.normalized();
                obsDir2 = obs.normalized();
            }
            ++found;
            if (found >= 2) break;
        }

        if (found == 0) {
            // No observation: inherit parent rotation (local identity).
            worldRot[ji] = sk.isRoot(j.id) ? Quat::identity()
                                           : worldRot[index(j.parent)];
        } else if (found == 1) {
            worldRot[ji] = Quat::fromTwoVectors(restDir1, obsDir1);
        } else {
            worldRot[ji] = frameAlign(restDir1, restDir2, obsDir1, obsDir2);
        }

        const Quat parentRot =
            sk.isRoot(j.id) ? Quat::identity() : worldRot[index(j.parent)];
        pose.jointRotations[ji] =
            (parentRot.conjugate() * worldRot[ji]).normalized().toAxisAngle();
    }

    // Residual: RMS keypoint error of the recovered pose.
    const auto recovered = jointKeypoints(pose);
    float sumSq = 0.0f;
    int n = 0;
    for (std::size_t i = 0; i < kJointCount; ++i) {
        if (confidence[i] < options.minConfidence) continue;
        sumSq += (recovered[i] - keypoints[i]).norm2();
        ++n;
    }
    return {pose, n > 0 ? std::sqrt(sumSq / static_cast<float>(n)) : 0.0f};
}

IkResult fitPoseToKeypoints(const std::array<Vec3f, kJointCount>& keypoints,
                            const IkOptions& options) {
    std::array<float, kJointCount> ones;
    ones.fill(1.0f);
    return fitPoseToKeypoints(keypoints, ones, options);
}

}  // namespace semholo::body
