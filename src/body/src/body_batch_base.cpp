// Portable baseline batch kernel: compiled with the project's default
// architecture flags (SSE2 on x86-64, NEON on aarch64, scalar elsewhere).
#define SEMHOLO_BODY_BATCH_FN evaluateBodyBatchBaseline
#include "body_batch_kernel.inl"
