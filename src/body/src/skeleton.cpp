#include "semholo/body/skeleton.hpp"

namespace semholo::body {

namespace {

struct JointSpec {
    JointId id;
    JointId parent;
    Vec3f offset;
    float radius;
    std::string_view name;
};

// Canonical T-pose, metres. +y up, +x to the model's left, +z forward.
// Proportions follow standard anthropometric tables for a 1.7 m adult.
constexpr float kShoulderY = 0.40f;  // above pelvis
const JointSpec kSpecs[] = {
    {JointId::Pelvis, JointId::Pelvis, {0.0f, 0.0f, 0.0f}, 0.11f, "pelvis"},
    {JointId::Spine1, JointId::Pelvis, {0.0f, 0.12f, 0.0f}, 0.10f, "spine1"},
    {JointId::Spine2, JointId::Spine1, {0.0f, 0.13f, 0.0f}, 0.11f, "spine2"},
    {JointId::Spine3, JointId::Spine2, {0.0f, 0.13f, 0.0f}, 0.12f, "spine3"},
    {JointId::Neck, JointId::Spine3, {0.0f, 0.10f, 0.0f}, 0.05f, "neck"},
    {JointId::Head, JointId::Neck, {0.0f, 0.10f, 0.0f}, 0.10f, "head"},
    {JointId::Jaw, JointId::Head, {0.0f, -0.02f, 0.06f}, 0.03f, "jaw"},
    {JointId::LeftEye, JointId::Head, {0.032f, 0.04f, 0.08f}, 0.012f, "left_eye"},
    {JointId::RightEye, JointId::Head, {-0.032f, 0.04f, 0.08f}, 0.012f, "right_eye"},
    {JointId::LeftClavicle, JointId::Spine3, {0.02f, kShoulderY - 0.38f + 0.06f, 0.0f},
     0.04f, "left_clavicle"},
    {JointId::LeftShoulder, JointId::LeftClavicle, {0.16f, 0.0f, 0.0f}, 0.05f,
     "left_shoulder"},
    {JointId::LeftElbow, JointId::LeftShoulder, {0.28f, 0.0f, 0.0f}, 0.04f,
     "left_elbow"},
    {JointId::LeftWrist, JointId::LeftElbow, {0.25f, 0.0f, 0.0f}, 0.03f, "left_wrist"},
    {JointId::RightClavicle, JointId::Spine3, {-0.02f, kShoulderY - 0.38f + 0.06f, 0.0f},
     0.04f, "right_clavicle"},
    {JointId::RightShoulder, JointId::RightClavicle, {-0.16f, 0.0f, 0.0f}, 0.05f,
     "right_shoulder"},
    {JointId::RightElbow, JointId::RightShoulder, {-0.28f, 0.0f, 0.0f}, 0.04f,
     "right_elbow"},
    {JointId::RightWrist, JointId::RightElbow, {-0.25f, 0.0f, 0.0f}, 0.03f,
     "right_wrist"},
    {JointId::LeftHip, JointId::Pelvis, {0.09f, -0.06f, 0.0f}, 0.08f, "left_hip"},
    {JointId::LeftKnee, JointId::LeftHip, {0.0f, -0.42f, 0.0f}, 0.06f, "left_knee"},
    {JointId::LeftAnkle, JointId::LeftKnee, {0.0f, -0.40f, 0.0f}, 0.04f, "left_ankle"},
    {JointId::LeftFoot, JointId::LeftAnkle, {0.0f, -0.06f, 0.12f}, 0.03f, "left_foot"},
    {JointId::RightHip, JointId::Pelvis, {-0.09f, -0.06f, 0.0f}, 0.08f, "right_hip"},
    {JointId::RightKnee, JointId::RightHip, {0.0f, -0.42f, 0.0f}, 0.06f, "right_knee"},
    {JointId::RightAnkle, JointId::RightKnee, {0.0f, -0.40f, 0.0f}, 0.04f,
     "right_ankle"},
    {JointId::RightFoot, JointId::RightAnkle, {0.0f, -0.06f, 0.12f}, 0.03f,
     "right_foot"},
    // Left hand. The wrist is at x=+0.71 in the T-pose; fingers extend +x.
    {JointId::LeftThumb1, JointId::LeftWrist, {0.03f, -0.01f, 0.025f}, 0.012f,
     "left_thumb1"},
    {JointId::LeftThumb2, JointId::LeftThumb1, {0.032f, 0.0f, 0.012f}, 0.010f,
     "left_thumb2"},
    {JointId::LeftThumb3, JointId::LeftThumb2, {0.028f, 0.0f, 0.008f}, 0.009f,
     "left_thumb3"},
    {JointId::LeftIndex1, JointId::LeftWrist, {0.09f, 0.0f, 0.025f}, 0.011f,
     "left_index1"},
    {JointId::LeftIndex2, JointId::LeftIndex1, {0.035f, 0.0f, 0.0f}, 0.009f,
     "left_index2"},
    {JointId::LeftIndex3, JointId::LeftIndex2, {0.025f, 0.0f, 0.0f}, 0.008f,
     "left_index3"},
    {JointId::LeftMiddle1, JointId::LeftWrist, {0.095f, 0.0f, 0.008f}, 0.011f,
     "left_middle1"},
    {JointId::LeftMiddle2, JointId::LeftMiddle1, {0.04f, 0.0f, 0.0f}, 0.009f,
     "left_middle2"},
    {JointId::LeftMiddle3, JointId::LeftMiddle2, {0.028f, 0.0f, 0.0f}, 0.008f,
     "left_middle3"},
    {JointId::LeftRing1, JointId::LeftWrist, {0.09f, 0.0f, -0.01f}, 0.010f,
     "left_ring1"},
    {JointId::LeftRing2, JointId::LeftRing1, {0.036f, 0.0f, 0.0f}, 0.009f,
     "left_ring2"},
    {JointId::LeftRing3, JointId::LeftRing2, {0.026f, 0.0f, 0.0f}, 0.008f,
     "left_ring3"},
    {JointId::LeftPinky1, JointId::LeftWrist, {0.08f, 0.0f, -0.028f}, 0.009f,
     "left_pinky1"},
    {JointId::LeftPinky2, JointId::LeftPinky1, {0.028f, 0.0f, 0.0f}, 0.008f,
     "left_pinky2"},
    {JointId::LeftPinky3, JointId::LeftPinky2, {0.02f, 0.0f, 0.0f}, 0.007f,
     "left_pinky3"},
    // Right hand (mirrored in x).
    {JointId::RightThumb1, JointId::RightWrist, {-0.03f, -0.01f, 0.025f}, 0.012f,
     "right_thumb1"},
    {JointId::RightThumb2, JointId::RightThumb1, {-0.032f, 0.0f, 0.012f}, 0.010f,
     "right_thumb2"},
    {JointId::RightThumb3, JointId::RightThumb2, {-0.028f, 0.0f, 0.008f}, 0.009f,
     "right_thumb3"},
    {JointId::RightIndex1, JointId::RightWrist, {-0.09f, 0.0f, 0.025f}, 0.011f,
     "right_index1"},
    {JointId::RightIndex2, JointId::RightIndex1, {-0.035f, 0.0f, 0.0f}, 0.009f,
     "right_index2"},
    {JointId::RightIndex3, JointId::RightIndex2, {-0.025f, 0.0f, 0.0f}, 0.008f,
     "right_index3"},
    {JointId::RightMiddle1, JointId::RightWrist, {-0.095f, 0.0f, 0.008f}, 0.011f,
     "right_middle1"},
    {JointId::RightMiddle2, JointId::RightMiddle1, {-0.04f, 0.0f, 0.0f}, 0.009f,
     "right_middle2"},
    {JointId::RightMiddle3, JointId::RightMiddle2, {-0.028f, 0.0f, 0.0f}, 0.008f,
     "right_middle3"},
    {JointId::RightRing1, JointId::RightWrist, {-0.09f, 0.0f, -0.01f}, 0.010f,
     "right_ring1"},
    {JointId::RightRing2, JointId::RightRing1, {-0.036f, 0.0f, 0.0f}, 0.009f,
     "right_ring2"},
    {JointId::RightRing3, JointId::RightRing2, {-0.026f, 0.0f, 0.0f}, 0.008f,
     "right_ring3"},
    {JointId::RightPinky1, JointId::RightWrist, {-0.08f, 0.0f, -0.028f}, 0.009f,
     "right_pinky1"},
    {JointId::RightPinky2, JointId::RightPinky1, {-0.028f, 0.0f, 0.0f}, 0.008f,
     "right_pinky2"},
    {JointId::RightPinky3, JointId::RightPinky2, {-0.02f, 0.0f, 0.0f}, 0.007f,
     "right_pinky3"},
};

static_assert(std::size(kSpecs) == kJointCount, "joint table incomplete");

}  // namespace

Skeleton::Skeleton() {
    joints_.resize(kJointCount);
    restPositions_.resize(kJointCount);
    children_.resize(kJointCount);
    // Raise the torso so the pelvis sits at standing height; keeps the
    // model's feet near y = -0.9 and head near y = +0.75.
    for (const JointSpec& s : kSpecs) {
        Joint j;
        j.id = s.id;
        j.parent = s.parent;
        j.restOffset = s.offset;
        j.boneRadius = s.radius;
        j.name = s.name;
        joints_[index(s.id)] = j;
    }
    // Fix up the clavicle y-offsets: they hang off spine3 towards the
    // shoulders at roughly the same height.
    joints_[index(JointId::LeftClavicle)].restOffset = {0.06f, 0.06f, 0.0f};
    joints_[index(JointId::RightClavicle)].restOffset = {-0.06f, 0.06f, 0.0f};

    for (std::size_t i = 0; i < kJointCount; ++i) {
        const Joint& j = joints_[i];
        if (index(j.parent) == i) {
            restPositions_[i] = j.restOffset;
        } else {
            restPositions_[i] = restPositions_[index(j.parent)] + j.restOffset;
            children_[index(j.parent)].push_back(j.id);
        }
    }
}

const Skeleton& Skeleton::canonical() {
    static const Skeleton instance;
    return instance;
}

const std::vector<Bone>& canonicalBones() {
    static const std::vector<Bone> bones = [] {
        std::vector<Bone> out;
        const Skeleton& sk = Skeleton::canonical();
        for (const Joint& j : sk.joints()) {
            if (sk.isRoot(j.id)) continue;
            // Eyes are surface markers, not structural bones.
            if (j.id == JointId::LeftEye || j.id == JointId::RightEye) continue;
            const Joint& parent = sk.joint(j.parent);
            out.push_back({j.id, j.parent, parent.boneRadius, j.boneRadius});
        }
        return out;
    }();
    return bones;
}

}  // namespace semholo::body
