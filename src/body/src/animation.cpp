#include "semholo/body/animation.hpp"

#include <cmath>

namespace semholo::body {

namespace {

constexpr float kPi = 3.14159265358979f;

// Cheap deterministic per-seed phase offsets.
float phase(std::uint32_t seed, int channel) {
    const std::uint32_t h = (seed * 2654435761u) ^ (static_cast<std::uint32_t>(channel) *
                                                    2246822519u);
    return static_cast<float>(h % 6283u) / 1000.0f;
}

void applyBreathing(Pose& pose, float t, float amp) {
    pose.rotation(JointId::Spine2).z = amp * 0.02f * std::sin(t * 0.9f);
    pose.rotation(JointId::Spine3).x = amp * 0.015f * std::sin(t * 0.9f + 0.6f);
    pose.rotation(JointId::Neck).x = amp * 0.01f * std::sin(t * 1.1f);
    // Postural sway: every joint of a live human micro-moves, so every
    // serialized pose coefficient is non-zero — as in real mocap streams.
    // Amplitude stays below the text-captioner quantisation step.
    for (std::size_t j = 0; j < kJointCount; ++j) {
        const float fj = 0.7f + 0.05f * static_cast<float>(j % 11);
        const float pj = 0.37f * static_cast<float>(j);
        Vec3f& r = pose.jointRotations[j];
        r.x += amp * 0.006f * std::sin(fj * t + pj);
        r.y += amp * 0.005f * std::sin(1.3f * fj * t + 2.0f * pj);
        r.z += amp * 0.004f * std::sin(0.8f * fj * t + 3.0f * pj);
    }
}

void applyWalk(Pose& pose, float t) {
    const float w = 2.0f * kPi * 0.9f;  // ~0.9 Hz gait
    const float swing = 0.55f;
    pose.rotation(JointId::LeftHip).x = swing * std::sin(w * t);
    pose.rotation(JointId::RightHip).x = -swing * std::sin(w * t);
    pose.rotation(JointId::LeftKnee).x =
        0.7f * std::max(0.0f, -std::sin(w * t + 0.5f));
    pose.rotation(JointId::RightKnee).x =
        0.7f * std::max(0.0f, std::sin(w * t + 0.5f));
    // Counter-swinging arms (shoulder flexion about x).
    pose.rotation(JointId::LeftShoulder).x = -0.35f * std::sin(w * t);
    pose.rotation(JointId::RightShoulder).x = 0.35f * std::sin(w * t);
    pose.rotation(JointId::LeftElbow).x = -0.2f - 0.1f * std::sin(w * t);
    pose.rotation(JointId::RightElbow).x = -0.2f + 0.1f * std::sin(w * t);
    // Pelvis bob.
    pose.rootTranslation.y = 0.02f * std::sin(2.0f * w * t);
    pose.rotation(JointId::Pelvis).y = 0.08f * std::sin(w * t);
}

void applyWave(Pose& pose, float t) {
    // Right arm raised, forearm oscillating; T-pose arms point along +-x,
    // so raising means rotating the shoulder about z.
    pose.rotation(JointId::RightShoulder).z = -1.1f;
    pose.rotation(JointId::RightElbow).z = -0.5f + 0.45f * std::sin(2.0f * kPi * 1.6f * t);
    pose.rotation(JointId::RightWrist).z = 0.2f * std::sin(2.0f * kPi * 1.6f * t + 0.8f);
    // Finger curl oscillation on the waving hand.
    const float curl = 0.25f + 0.2f * std::sin(2.0f * kPi * 1.6f * t);
    for (const JointId j : {JointId::RightIndex2, JointId::RightMiddle2,
                            JointId::RightRing2, JointId::RightPinky2})
        pose.rotation(j).z = curl;
    // Left arm relaxed at the side.
    pose.rotation(JointId::LeftShoulder).z = 1.25f;
    pose.rotation(JointId::LeftElbow).z = 0.15f;
}

void applyTalk(Pose& pose, float t, std::uint32_t seed) {
    // Conversation: jaw, pout, smile and brows driven by layered sines so
    // expression channels carry measurable detail.
    const float p0 = phase(seed, 0), p1 = phase(seed, 1), p2 = phase(seed, 2);
    pose.expression.coeffs[0] =
        0.5 + 0.5 * std::sin(2.0f * kPi * 2.8f * t + p0);  // jaw ~ syllables
    pose.expression.coeffs[1] =
        std::max(0.0, 0.7 * std::sin(2.0f * kPi * 0.4f * t + p1));  // pout
    pose.expression.coeffs[2] =
        std::max(0.0, 0.8 * std::sin(2.0f * kPi * 0.23f * t + p2));  // smile
    pose.expression.coeffs[3] = 0.4 + 0.4 * std::sin(2.0f * kPi * 0.3f * t);
    // Fine-detail channels: high-frequency, low-amplitude.
    for (std::size_t c = 4; c < 20; ++c)
        pose.expression.coeffs[c] =
            0.15 * std::sin(2.0f * kPi * (1.0f + 0.13f * static_cast<float>(c)) * t +
                            phase(seed, static_cast<int>(c)));
    // Head gestures: nods and tilts.
    pose.rotation(JointId::Head).x = 0.1f * std::sin(2.0f * kPi * 0.5f * t + p1);
    pose.rotation(JointId::Head).z = 0.06f * std::sin(2.0f * kPi * 0.33f * t + p2);
    pose.rotation(JointId::Jaw).x =
        0.25f * static_cast<float>(pose.expression.coeffs[0]);
    // Arms relaxed.
    pose.rotation(JointId::LeftShoulder).z = 1.2f;
    pose.rotation(JointId::RightShoulder).z = -1.2f;
}

void applyCollaborate(Pose& pose, float t, std::uint32_t seed) {
    // Alternating phases: point at the shared object, reach, manipulate.
    const float cycle = std::fmod(t, 6.0f);
    applyTalk(pose, t, seed);  // collaborators talk while working
    if (cycle < 2.0f) {
        // Point forward with the right arm.
        const float s = geom::clamp(cycle, 0.0f, 1.0f);
        pose.rotation(JointId::RightShoulder).z = -0.9f * s;
        pose.rotation(JointId::RightShoulder).x = -0.7f * s;
        pose.rotation(JointId::RightElbow).z = -0.1f;
        // Index extended, other fingers curled.
        for (const JointId j : {JointId::RightMiddle1, JointId::RightRing1,
                                JointId::RightPinky1, JointId::RightThumb2})
            pose.rotation(j).z = 1.2f * s;
    } else if (cycle < 4.0f) {
        // Two-handed reach.
        const float s = geom::clamp(cycle - 2.0f, 0.0f, 1.0f);
        pose.rotation(JointId::RightShoulder).x = -1.0f * s;
        pose.rotation(JointId::LeftShoulder).x = -1.0f * s;
        pose.rotation(JointId::RightShoulder).z = -0.4f * s;
        pose.rotation(JointId::LeftShoulder).z = 0.4f * s;
        pose.rotation(JointId::Spine2).x = 0.25f * s;
    } else {
        // Manipulate: wrists rotating, fingers working.
        const float w = 2.0f * kPi * 1.2f * (t - 4.0f);
        pose.rotation(JointId::RightWrist).x = 0.4f * std::sin(w);
        pose.rotation(JointId::LeftWrist).x = 0.4f * std::sin(w + 1.2f);
        const float curl = 0.5f + 0.4f * std::sin(w);
        for (const JointId j :
             {JointId::RightIndex1, JointId::RightMiddle1, JointId::LeftIndex1,
              JointId::LeftMiddle1})
            pose.rotation(j).z = curl;
    }
}

}  // namespace

std::string motionName(MotionKind kind) {
    switch (kind) {
        case MotionKind::Idle: return "idle";
        case MotionKind::Walk: return "walk";
        case MotionKind::Wave: return "wave";
        case MotionKind::Talk: return "talk";
        case MotionKind::Collaborate: return "collaborate";
    }
    return "unknown";
}

MotionGenerator::MotionGenerator(MotionKind kind, ShapeParams shape, std::uint32_t seed)
    : kind_(kind), shape_(shape), seed_(seed) {}

Pose MotionGenerator::poseAt(double tSeconds) const {
    const auto t = static_cast<float>(tSeconds);
    Pose pose;
    pose.shape = shape_;
    applyBreathing(pose, t, 1.0f);
    switch (kind_) {
        case MotionKind::Idle:
            break;
        case MotionKind::Walk:
            applyWalk(pose, t);
            break;
        case MotionKind::Wave:
            applyWave(pose, t);
            break;
        case MotionKind::Talk:
            applyTalk(pose, t, seed_);
            break;
        case MotionKind::Collaborate:
            applyCollaborate(pose, t, seed_);
            break;
    }
    return pose;
}

std::vector<Pose> MotionGenerator::sequence(std::size_t frames, double fps) const {
    std::vector<Pose> out;
    out.reserve(frames);
    for (std::size_t i = 0; i < frames; ++i) {
        Pose p = poseAt(static_cast<double>(i) / fps);
        p.frameId = static_cast<std::uint32_t>(i);
        out.push_back(p);
    }
    return out;
}

}  // namespace semholo::body
