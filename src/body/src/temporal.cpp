#include "semholo/body/temporal.hpp"

#include <cmath>

namespace semholo::body {

namespace {

// One-Euro smoothing factor for a given cutoff and sample interval.
float alphaFor(double cutoffHz, double dt) {
    const double tau = 1.0 / (2.0 * M_PI * cutoffHz);
    return static_cast<float>(1.0 / (1.0 + tau / dt));
}

// Minimal-angle difference between two axis-angle rotations, expressed
// as an axis-angle "velocity" direction (log of the relative rotation).
Vec3f rotationDelta(const Vec3f& from, const Vec3f& to) {
    const geom::Quat qf = geom::Quat::fromAxisAngle(from);
    const geom::Quat qt = geom::Quat::fromAxisAngle(to);
    return (qt * qf.conjugate()).normalized().toAxisAngle();
}

Vec3f applyDelta(const Vec3f& base, const Vec3f& delta, float scale) {
    const geom::Quat qb = geom::Quat::fromAxisAngle(base);
    const geom::Quat qd = geom::Quat::fromAxisAngle(delta * scale);
    return (qd * qb).normalized().toAxisAngle();
}

}  // namespace

PoseFilter::PoseFilter(const PoseFilterConfig& config) : config_(config) {}

void PoseFilter::reset() {
    primed_ = false;
    velocity_ = {};
    rootVelocity_ = {};
}

Pose PoseFilter::filter(const Pose& observed, double timestamp) {
    if (!primed_) {
        state_ = observed;
        lastTime_ = timestamp;
        primed_ = true;
        return state_;
    }
    const double dt = timestamp - lastTime_;
    if (dt <= 0.0) return state_;
    lastTime_ = timestamp;

    const float dAlpha = alphaFor(config_.derivativeCutoffHz, dt);

    for (std::size_t j = 0; j < kJointCount; ++j) {
        // Raw angular velocity and its low-pass.
        const Vec3f delta = rotationDelta(state_.jointRotations[j],
                                          observed.jointRotations[j]);
        const Vec3f rawVel = delta / static_cast<float>(dt);
        velocity_[j] = geom::lerp(velocity_[j], rawVel, dAlpha);

        // Speed-adaptive cutoff: fast joints track, slow joints smooth.
        const double cutoff =
            config_.minCutoffHz + config_.beta * static_cast<double>(velocity_[j].norm());
        const float a = alphaFor(cutoff, dt);
        state_.jointRotations[j] = applyDelta(state_.jointRotations[j], delta, a);
    }

    {
        const Vec3f delta = observed.rootTranslation - state_.rootTranslation;
        const Vec3f rawVel = delta / static_cast<float>(dt);
        rootVelocity_ = geom::lerp(rootVelocity_, rawVel, dAlpha);
        const double cutoff =
            config_.minCutoffHz + config_.beta * static_cast<double>(rootVelocity_.norm());
        state_.rootTranslation += delta * alphaFor(cutoff, dt);
    }

    // Expression channels smooth with the rest-rate cutoff.
    const float ea = alphaFor(config_.minCutoffHz, dt);
    for (std::size_t e = 0; e < state_.expression.coeffs.size(); ++e)
        state_.expression.coeffs[e] = geom::lerp(
            state_.expression.coeffs[e], observed.expression.coeffs[e],
            static_cast<double>(ea));

    state_.shape = observed.shape;
    state_.frameId = observed.frameId;
    return state_;
}

std::optional<Pose> predictPose(const Pose& previous, double tPrev, const Pose& latest,
                                double tLatest, double horizonSeconds) {
    const double dt = tLatest - tPrev;
    if (dt <= 0.0) return std::nullopt;
    const float scale = static_cast<float>(horizonSeconds / dt);

    Pose out = latest;
    for (std::size_t j = 0; j < kJointCount; ++j) {
        const Vec3f delta =
            rotationDelta(previous.jointRotations[j], latest.jointRotations[j]);
        out.jointRotations[j] = applyDelta(latest.jointRotations[j], delta, scale);
    }
    out.rootTranslation =
        latest.rootTranslation +
        (latest.rootTranslation - previous.rootTranslation) * scale;
    for (std::size_t e = 0; e < out.expression.coeffs.size(); ++e) {
        const double v =
            latest.expression.coeffs[e] - previous.expression.coeffs[e];
        out.expression.coeffs[e] =
            latest.expression.coeffs[e] + v * static_cast<double>(scale);
    }
    return out;
}

double keypointDistance(const Pose& a, const Pose& b) {
    const auto ka = jointKeypoints(a);
    const auto kb = jointKeypoints(b);
    double total = 0.0;
    for (std::size_t j = 0; j < kJointCount; ++j) total += (ka[j] - kb[j]).norm();
    return total / static_cast<double>(kJointCount);
}

}  // namespace semholo::body
