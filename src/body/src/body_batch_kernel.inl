// Batch body-field kernel, included by body_batch_base.cpp /
// body_batch_avx2.cpp with SEMHOLO_BODY_BATCH_FN set to the entry-point
// name. The per-lane float sequence mirrors the scalar closure in
// body_model.cpp operation for operation (same associativity, same
// comparison order, no FMA) so each lane's result is bit-identical to a
// per-point BodyField::field call — the property the sparse pipeline's
// dense-extraction byte-identity tests pin down.

#include <algorithm>
#include <cstring>
#include <limits>

#include "body_batch.hpp"
#include "semholo/geometry/simd.hpp"

#ifndef SEMHOLO_BODY_BATCH_FN
#error "SEMHOLO_BODY_BATCH_FN must name the kernel entry point"
#endif

namespace semholo::body::detail {

namespace {

constexpr int kW = 8;  // one AVX2 register; 2x SSE/NEON on the baseline
using f32 = geom::simd::f32xN<kW>;
using b32 = geom::simd::b32xN<kW>;

}  // namespace

void SEMHOLO_BODY_BATCH_FN(const BodyBatchData& data, const float* xs,
                           const float* ys, const float* zs, float* out,
                           std::size_t n, std::uint64_t& blended,
                           std::uint64_t& pruned) {
    const f32 zero = f32::broadcast(0.0f);
    const f32 one = f32::broadcast(1.0f);
    const f32 half = f32::broadcast(0.5f);
    const f32 kBlend = f32::broadcast(kFieldBlend);

    std::uint64_t blendTally = 0;
    std::uint64_t pruneTally = 0;

    float bufX[kW], bufY[kW], bufZ[kW], bufOut[kW];
    float warpX[kW], warpY[kW], warpZ[kW];

    for (std::size_t base = 0; base < n; base += kW) {
        const int valid = static_cast<int>(std::min<std::size_t>(kW, n - base));
        // Original (unwarped) coordinates: the clothing displacement is a
        // function of the raw query point, not the expression-warped one.
        const float* origX = xs + base;
        const float* origY = ys + base;
        const float* origZ = zs + base;
        if (valid < kW) {
            // Pad the tail with the last valid point so every lane holds
            // finite data; padded lanes are never stored or counted.
            for (int i = 0; i < kW; ++i) {
                const std::size_t j =
                    base + static_cast<std::size_t>(std::min(i, valid - 1));
                bufX[i] = xs[j];
                bufY[i] = ys[j];
                bufZ[i] = zs[j];
            }
            origX = bufX;
            origY = bufY;
            origZ = bufZ;
        }

        const float* qxp = origX;
        const float* qyp = origY;
        const float* qzp = origZ;
        if (data.hasExpression) {
            // Expression warp is a short, branchy, face-local computation
            // — evaluated per lane with the exact scalar code path.
            for (int i = 0; i < kW; ++i) {
                const Vec3f p{origX[i], origY[i], origZ[i]};
                Vec3f q = p;
                const Vec3f pHeadLocal = data.headInv.apply(p) + data.headRest;
                const Vec3f offset = expressionOffset(pHeadLocal, data.expr);
                if (offset.norm2() > 0.0f) q = p - data.headXf.applyVector(offset);
                warpX[i] = q.x;
                warpY[i] = q.y;
                warpZ[i] = q.z;
            }
            qxp = warpX;
            qyp = warpY;
            qzp = warpZ;
        }

        const f32 qx = f32::load(qxp);
        const f32 qy = f32::load(qyp);
        const f32 qz = f32::load(qzp);

        b32 validMask;
        for (int i = 0; i < kW; ++i) validMask.lane[i] = i < valid ? -1 : 0;

        f32 d = f32::broadcast(std::numeric_limits<float>::max());
        for (std::size_t c = 0; c < data.count; ++c) {
            b32 pruneMask;
            for (int i = 0; i < kW; ++i) pruneMask.lane[i] = 0;
            if (data.bonePruning) {
                // Mirror: t = d + kFieldBlend + rmax; prune when t < 0
                // or aabbDistance2(q, lo, hi) > t * t.
                const f32 t = d + kBlend + f32::broadcast(data.rmax[c]);
                const f32 dx = geom::simd::max(
                    geom::simd::max(f32::broadcast(data.lox[c]) - qx, zero),
                    qx - f32::broadcast(data.hix[c]));
                const f32 dy = geom::simd::max(
                    geom::simd::max(f32::broadcast(data.loy[c]) - qy, zero),
                    qy - f32::broadcast(data.hiy[c]));
                const f32 dz = geom::simd::max(
                    geom::simd::max(f32::broadcast(data.loz[c]) - qz, zero),
                    qz - f32::broadcast(data.hiz[c]));
                const f32 dist2 = dx * dx + dy * dy + dz * dz;
                pruneMask = geom::simd::cmpLt(t, zero) |
                            geom::simd::cmpGt(dist2, t * t);
                if ((pruneMask | ~validMask).all()) {
                    pruneTally +=
                        static_cast<std::uint64_t>((pruneMask & validMask).count());
                    continue;
                }
            }

            // capsuleDistance: pointSegmentDistance with the same
            // degenerate-segment branch (len2 is per capsule, so the
            // branch is uniform across lanes), then the radius lerp.
            const f32 pax = qx - f32::broadcast(data.ax[c]);
            const f32 pay = qy - f32::broadcast(data.ay[c]);
            const f32 paz = qz - f32::broadcast(data.az[c]);
            f32 tSeg = zero;
            f32 segDist;
            if (data.len2[c] < 1e-12f) {
                segDist = geom::simd::sqrt(pax * pax + pay * pay + paz * paz);
            } else {
                const f32 abx = f32::broadcast(data.abx[c]);
                const f32 aby = f32::broadcast(data.aby[c]);
                const f32 abz = f32::broadcast(data.abz[c]);
                const f32 dot = pax * abx + pay * aby + paz * abz;
                tSeg = geom::simd::clamp(dot / f32::broadcast(data.len2[c]),
                                         zero, one);
                // q - (a + ab * t), then its norm.
                const f32 cx = f32::broadcast(data.ax[c]) + abx * tSeg;
                const f32 cy = f32::broadcast(data.ay[c]) + aby * tSeg;
                const f32 cz = f32::broadcast(data.az[c]) + abz * tSeg;
                const f32 ex = qx - cx;
                const f32 ey = qy - cy;
                const f32 ez = qz - cz;
                segDist = geom::simd::sqrt(ex * ex + ey * ey + ez * ez);
            }
            const f32 cd =
                segDist -
                (f32::broadcast(data.ra[c]) + f32::broadcast(data.drr[c]) * tSeg);

            // smin(d, cd, kFieldBlend) with the scalar's exact ordering:
            // h = clamp(0.5 + 0.5*(cd - d)/k, 0, 1);
            // result = lerp(cd, d, h) - k*h*(1 - h).
            const f32 h =
                geom::simd::clamp(half + half * (cd - d) / kBlend, zero, one);
            const f32 folded = (cd + (d - cd) * h) - kBlend * h * (one - h);

            if (data.bonePruning) {
                d = geom::simd::select(pruneMask, d, folded);
                pruneTally +=
                    static_cast<std::uint64_t>((pruneMask & validMask).count());
                blendTally +=
                    static_cast<std::uint64_t>((~pruneMask & validMask).count());
            } else {
                d = folded;
                blendTally += static_cast<std::uint64_t>(valid);
            }
        }

        d.store(bufOut);
        if (data.clothingDetail) {
            for (int i = 0; i < valid; ++i) {
                const Vec3f p{origX[i], origY[i], origZ[i]};
                bufOut[i] += clothingFoldDisplacement(data.rootInv.apply(p),
                                                      data.clothingAmplitude);
            }
        }
        std::memcpy(out + base, bufOut,
                    static_cast<std::size_t>(valid) * sizeof(float));
    }

    blended += blendTally;
    pruned += pruneTally;
}

}  // namespace semholo::body::detail
