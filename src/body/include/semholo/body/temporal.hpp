// Temporal pose processing (section 3.1's "non-parametric,
// temporal-aware framework" agenda item, and latency compensation for
// interactive sessions):
//
//  * PoseFilter — a One-Euro filter adapted to joint rotations: smooths
//    detector jitter at low speeds without lagging fast gestures. This
//    is the temporal-awareness the paper says single-frame model-free
//    methods (Pose2Mesh-class) lack.
//
//  * PosePredictor — constant-angular-velocity extrapolation used to
//    hide end-to-end latency: the receiver renders the pose predicted
//    for "now" rather than the pose captured one pipeline delay ago.
#pragma once

#include <optional>

#include "semholo/body/pose.hpp"

namespace semholo::body {

struct PoseFilterConfig {
    // One-Euro parameters: cutoff at rest and the speed coefficient.
    double minCutoffHz{1.0};
    double beta{0.5};
    double derivativeCutoffHz{1.0};
};

// Streaming One-Euro filter over joint rotations and root translation.
class PoseFilter {
public:
    explicit PoseFilter(const PoseFilterConfig& config = {});

    // Feed the next observed pose (monotonically increasing timestamps);
    // returns the smoothed pose.
    Pose filter(const Pose& observed, double timestamp);

    void reset();
    bool primed() const { return primed_; }

private:
    PoseFilterConfig config_;
    bool primed_{false};
    double lastTime_{0.0};
    Pose state_{};
    // Per-joint angular-velocity estimate (low-passed), rad/s.
    std::array<Vec3f, kJointCount> velocity_{};
    Vec3f rootVelocity_{};
};

// Extrapolate a pose 'horizonSeconds' beyond the newest of two samples,
// assuming constant angular velocity per joint (quaternion log-space)
// and constant root velocity. Returns nullopt when dt <= 0.
std::optional<Pose> predictPose(const Pose& previous, double tPrev, const Pose& latest,
                                double tLatest, double horizonSeconds);

// Mean per-joint position error (metres) of a pose against a reference
// pose — the latency-compensation quality metric.
double keypointDistance(const Pose& a, const Pose& b);

}  // namespace semholo::body
