// Pose and shape parameterisation plus forward kinematics.
//
// The serialized pose payload is the paper's keypoint-semantics wire
// format: "3D pose aligned with SMPL-X" at 1.91 KB per frame (Table 2).
// Our layout lands on exactly 1956 bytes = 1.91 KB: a 4-byte frame id
// followed by 244 doubles (55 joint axis-angle rotations, root
// translation, 16 shape betas, 60 expression coefficients).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "semholo/body/skeleton.hpp"
#include "semholo/geometry/quat.hpp"

namespace semholo::body {

using geom::Quat;

// Per-subject shape parameters (constant over a session).
struct ShapeParams {
    // Identity blendshape coefficients; ~N(0,1). beta[0] scales overall
    // height, beta[1] limb length, beta[2] girth; the rest perturb
    // individual bone groups.
    std::array<double, 16> betas{};
    bool operator==(const ShapeParams&) const = default;
};

// Facial expression coefficients (per frame). Drives the face region of
// the template; exercised by the Figure 3 texture/expression experiment.
struct ExpressionParams {
    // coeff[0] = jaw open, coeff[1] = mouth pout, coeff[2] = smile,
    // coeff[3] = brow raise; the rest are reserved fine-detail channels.
    std::array<double, 60> coeffs{};
    bool operator==(const ExpressionParams&) const = default;
};

struct Pose {
    // Axis-angle rotation of every joint relative to its parent.
    std::array<Vec3f, kJointCount> jointRotations{};
    Vec3f rootTranslation{};
    ShapeParams shape{};
    ExpressionParams expression{};
    std::uint32_t frameId{};

    Vec3f& rotation(JointId id) { return jointRotations[index(id)]; }
    const Vec3f& rotation(JointId id) const { return jointRotations[index(id)]; }

    static Pose rest() { return Pose{}; }
};

// Exact on-the-wire size of a serialized pose (1.91 KB, Table 2).
inline constexpr std::size_t kPosePayloadBytes = 4 + (165 + 3 + 16 + 60) * 8;
static_assert(kPosePayloadBytes == 1956);

std::vector<std::uint8_t> serializePose(const Pose& pose);
std::optional<Pose> deserializePose(std::span<const std::uint8_t> bytes);

// Result of forward kinematics: world transform of every joint, in
// topological order.
struct SkeletonState {
    std::array<RigidTransform, kJointCount> worldFromJoint{};

    Vec3f position(JointId id) const { return worldFromJoint[index(id)].translation; }
};

// Bone-length scaling derived from shape betas: multiplies each joint's
// rest offset. Deterministic and smooth in the betas.
float boneScale(const ShapeParams& shape, JointId joint);

// Forward kinematics over the canonical skeleton.
SkeletonState forwardKinematics(const Pose& pose,
                                const Skeleton& skeleton = Skeleton::canonical());

// All 55 world-space joint positions — the raw "3D keypoints" the
// detection stage produces and the reconstruction stage consumes.
std::array<Vec3f, kJointCount> jointKeypoints(const Pose& pose);

// Linear interpolation in parameter space (per-joint quaternion slerp).
Pose interpolatePoses(const Pose& a, const Pose& b, float t);

// Root-mean-square joint rotation distance between two poses (radians).
float poseDistance(const Pose& a, const Pose& b);

}  // namespace semholo::body
