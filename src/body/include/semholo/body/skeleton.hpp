// The SemHolo parametric humanoid skeleton.
//
// Substitution note (see DESIGN.md): the paper's proof-of-concept encodes
// keypoints into SMPL-X parameters. SMPL-X itself is a licensed model, so
// we define an SMPL-X-*shaped* synthetic skeleton from scratch: the same
// 55-joint layout (22 body joints, jaw, two eyes, and 15 joints per hand)
// with a canonical T-pose rest configuration. Everything downstream (pose
// payload size, LBS deformation, keypoint alignment) only depends on this
// structure, not on the licensed template.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "semholo/geometry/transform.hpp"
#include "semholo/geometry/vec.hpp"

namespace semholo::body {

using geom::RigidTransform;
using geom::Vec3f;

// Joint ids. Order matters: parents always precede children, so a single
// forward pass computes world transforms.
enum class JointId : std::uint8_t {
    Pelvis = 0,
    Spine1,
    Spine2,
    Spine3,
    Neck,
    Head,
    Jaw,
    LeftEye,
    RightEye,
    LeftClavicle,
    LeftShoulder,
    LeftElbow,
    LeftWrist,
    RightClavicle,
    RightShoulder,
    RightElbow,
    RightWrist,
    LeftHip,
    LeftKnee,
    LeftAnkle,
    LeftFoot,
    RightHip,
    RightKnee,
    RightAnkle,
    RightFoot,
    // Left hand: thumb, index, middle, ring, pinky x (proximal, middle, distal).
    LeftThumb1,
    LeftThumb2,
    LeftThumb3,
    LeftIndex1,
    LeftIndex2,
    LeftIndex3,
    LeftMiddle1,
    LeftMiddle2,
    LeftMiddle3,
    LeftRing1,
    LeftRing2,
    LeftRing3,
    LeftPinky1,
    LeftPinky2,
    LeftPinky3,
    // Right hand.
    RightThumb1,
    RightThumb2,
    RightThumb3,
    RightIndex1,
    RightIndex2,
    RightIndex3,
    RightMiddle1,
    RightMiddle2,
    RightMiddle3,
    RightRing1,
    RightRing2,
    RightRing3,
    RightPinky1,
    RightPinky2,
    RightPinky3,
    Count
};

inline constexpr std::size_t kJointCount = static_cast<std::size_t>(JointId::Count);
inline constexpr std::size_t kBodyJointCount = 25;  // joints before the hands

constexpr std::size_t index(JointId id) { return static_cast<std::size_t>(id); }

struct Joint {
    JointId id{};
    JointId parent{};         // == id for the root
    Vec3f restOffset{};       // offset from parent in the T-pose, metres
    float boneRadius{0.05f};  // capsule radius for the template surface
    std::string_view name{};
};

// Static description of the humanoid rig.
class Skeleton {
public:
    // Canonical adult skeleton (1.7 m tall) in T-pose, pelvis at origin.
    static const Skeleton& canonical();

    const std::vector<Joint>& joints() const { return joints_; }
    const Joint& joint(JointId id) const { return joints_[index(id)]; }
    std::size_t size() const { return joints_.size(); }
    bool isRoot(JointId id) const { return joint(id).parent == id; }

    // Rest position of every joint in model space (T-pose, pelvis origin).
    const std::vector<Vec3f>& restPositions() const { return restPositions_; }
    Vec3f restPosition(JointId id) const { return restPositions_[index(id)]; }

    // Children lists (topological order guaranteed by the enum order).
    const std::vector<std::vector<JointId>>& children() const { return children_; }

    std::string_view name(JointId id) const { return joint(id).name; }

private:
    Skeleton();

    std::vector<Joint> joints_;
    std::vector<Vec3f> restPositions_;
    std::vector<std::vector<JointId>> children_;
};

// The bones used to build the template surface: (joint, parent) pairs with
// capsule radii; excludes zero-length virtual bones like the eyes.
struct Bone {
    JointId child{};
    JointId parent{};
    float radiusAtParent{};
    float radiusAtChild{};
};

// All bones of the canonical skeleton with anthropometric radii.
const std::vector<Bone>& canonicalBones();

}  // namespace semholo::body
