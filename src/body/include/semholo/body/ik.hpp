// Keypoints -> pose alignment (inverse kinematics).
//
// The receiver in the keypoint pipeline gets 3D joint positions (possibly
// noisy, from the detector simulators) and must express them as SMPL-X-
// style pose parameters before reconstruction, exactly as the paper's
// proof-of-concept aligns detected keypoints with SMPL-X. We solve it
// hierarchically: each joint's world rotation is chosen to map its rest-
// pose child offsets onto the observed child directions (two-axis frame
// alignment when two or more children are available, shortest-arc
// otherwise); local rotations follow by composing with the parent.
#pragma once

#include <array>

#include "semholo/body/pose.hpp"

namespace semholo::body {

struct IkOptions {
    // Shape used for bone lengths during alignment (session constant).
    ShapeParams shape{};
    // Keypoints whose confidence is below this are ignored (their joints
    // inherit the parent direction). Matches detector dropout handling.
    float minConfidence{0.05f};
};

struct IkResult {
    Pose pose;
    // RMS distance between the observed keypoints and the keypoints of
    // the recovered pose (metres): the alignment residual.
    float residual{};
};

// Fit a pose to observed world-space keypoints. 'confidence' may be all
// ones when the detector does not provide it.
IkResult fitPoseToKeypoints(const std::array<Vec3f, kJointCount>& keypoints,
                            const std::array<float, kJointCount>& confidence,
                            const IkOptions& options = {});

IkResult fitPoseToKeypoints(const std::array<Vec3f, kJointCount>& keypoints,
                            const IkOptions& options = {});

}  // namespace semholo::body
