// The parametric body surface model.
//
// Two complementary representations, mirroring the paper's pipeline:
//
//  * BodyModel — an explicit template mesh built once per subject (shape
//    betas), deformed per frame with linear blend skinning. This plays
//    the role of the ground-truth capture mesh ("textured mesh generated
//    from RGB-D data", Fig. 2a): it is what the traditional pipeline
//    streams and what reconstructions are scored against.
//
//  * bodySignedDistance — an implicit skeleton-conditioned field for a
//    given pose. The keypoint-reconstruction path (X-Avatar stand-in)
//    evaluates this field on an R^3 grid and runs iso-surface extraction,
//    reproducing the resolution/quality/FPS trade-offs of Figs. 2 and 4.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "semholo/body/pose.hpp"
#include "semholo/body/skeleton.hpp"
#include "semholo/mesh/trimesh.hpp"
#include "semholo/mesh/voxelgrid.hpp"

namespace semholo::body {

using mesh::ScalarField;
using mesh::TriMesh;

// Smooth-minimum blending radius for the implicit body field; larger
// values merge limbs more organically.
inline constexpr float kFieldBlend = 0.02f;

struct BodyFieldOptions {
    // Add high-frequency clothing-fold displacement to the surface. The
    // ground-truth capture template enables this; reconstruction from
    // keypoints cannot (keypoints carry no garment information), which
    // is exactly the quality gap Figure 2 reports ("cannot recover the
    // details of the clothes, such as folds").
    bool clothingDetail{false};
    float clothingAmplitude{0.008f};
    // Per-query capsule pruning (makeBodyField only): skip capsules whose
    // conservative lower-bound distance proves the smooth-min blend would
    // leave the running value unchanged. The skip is mathematically exact
    // but differs from the unpruned fold by at most one rounding step per
    // skipped capsule; disable when bit-reproducible sampling against the
    // legacy field is required.
    bool bonePruning{true};
};

// Signed distance to the posed body surface: negative inside. Built from
// shape-scaled capsules along every bone plus head/torso ellipsoids, with
// expression-driven face offsets (jaw open, pout, smile).
ScalarField bodySignedDistance(const Pose& pose,
                               const Skeleton& skeleton = Skeleton::canonical(),
                               const BodyFieldOptions& options = {});

// Live instrumentation counters for a body field evaluated concurrently
// by sampler workers. Sharded per thread so the hot path stays
// uncontended; totals are exact.
class BodyFieldStats {
public:
    void add(std::uint32_t blended, std::uint32_t pruned) noexcept;
    std::uint64_t bonesBlended() const noexcept;
    std::uint64_t bonesPruned() const noexcept;
    void reset() noexcept;

private:
    static constexpr std::size_t kShards = 16;
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> blended{0};
        std::atomic<std::uint64_t> pruned{0};
    };
    std::array<Shard, kShards> shards_{};
};

// One posed capsule of the implicit body (bones, head sphere, torso
// slabs), exposed so callers can reason about which regions of space a
// skeleton change can affect (temporal block caching).
struct PosedCapsule {
    Vec3f a, b;
    float ra, rb;
};

// A body field packaged with the analytic bounds sparse sampling needs:
//  * lipschitz — conservative Lipschitz constant of the field (capsule
//    round-cones contribute 1 + |ra-rb|/length through the smooth-min
//    fold, the expression warp multiplies in its offset gradient, the
//    clothing displacement adds its own gradient bound);
//  * margin — bound on the field's bounded discontinuities (expression
//    region gates / smile sign flip, clothing region gates), added to
//    every block-skip certificate.
// With these, |field(c)| > lipschitz * r + margin certifies the field
// has no zero crossing within distance r of c.
struct BodyField {
    ScalarField field;  // thread-safe; shared by all sampler workers
    // SIMD batch evaluator (SoA points): bit-identical to calling
    // 'field' per point — including per-lane bone-pruning decisions —
    // on every backend (see geometry/simd.hpp for the determinism
    // contract). BlockSampler uses this for whole-block evaluation.
    mesh::BatchScalarField batch;
    float lipschitz{1.0f};
    float margin{0.0f};
    geom::AABB bounds;  // loose world bounds (same rule as bodyBounds)
    // World-space box outside which the expression warp is provably
    // zero — the only region an expression change can invalidate.
    geom::AABB faceBounds;
    std::vector<PosedCapsule> capsules;
    std::shared_ptr<BodyFieldStats> stats;  // counters for this field
    // Analytic block certificate: certificate(center, radius, slack) is
    // true when |field| provably exceeds 'slack' everywhere within
    // 'radius' of 'center'. Far tighter than the global lipschitz/margin
    // pair because it bounds the field from the posed capsules directly
    // (distance-to-AABB and distance-to-endpoint bounds are 1-Lipschitz
    // regardless of capsule cone slope) and pays the expression-warp
    // displacement only for regions the warp can actually reach. Feed it
    // to mesh::FieldSampleOptions::certificate with slack = any drift
    // tolerance a temporal cache allows before re-sampling.
    std::function<bool(Vec3f center, float radius, float slack)> certificate;
};

// Build the implicit body field for sparse/parallel sampling. The field
// evaluates identically to bodySignedDistance when options.bonePruning
// is false, and within one rounding step per skipped capsule otherwise.
BodyField makeBodyField(const Pose& pose,
                        const Skeleton& skeleton = Skeleton::canonical(),
                        const BodyFieldOptions& options = {});

// Loose world-space bounds of the posed body (for grid placement).
geom::AABB bodyBounds(const Pose& pose,
                      const Skeleton& skeleton = Skeleton::canonical());

// Name of the kernel BodyField::batch dispatches to on this machine:
// "avx2" when the CPU + build support it, else the baseline backend
// ("neon"/"scalar"). SEMHOLO_SIMD=scalar forces the baseline.
const char* bodyBatchBackend();

// Per-vertex skinning: up to 4 (joint, weight) pairs.
struct SkinWeights {
    std::array<std::uint16_t, 4> joints{};
    std::array<float, 4> weights{};
};

class BodyModel {
public:
    // Build the subject template in the rest pose. 'templateResolution'
    // is the iso-surface grid resolution for the template. The default
    // (47) yields ~10.5k vertices / ~21k triangles — the same scale as
    // the SMPL-X template the paper streams — so the raw per-frame mesh
    // payload lands on Table 2's ~398 KB.
    explicit BodyModel(const ShapeParams& shape, int templateResolution = 47);

    const TriMesh& templateMesh() const { return template_; }
    const ShapeParams& shape() const { return shape_; }
    const std::vector<SkinWeights>& skinWeights() const { return weights_; }

    // Deform the template to 'pose' with linear blend skinning and apply
    // expression displacements. The returned mesh carries the template's
    // per-vertex colours (the "ground-truth texture").
    TriMesh deform(const Pose& pose) const;

private:
    void computeSkinWeights();
    void paintTexture();

    ShapeParams shape_{};
    TriMesh template_;
    std::vector<SkinWeights> weights_;
    SkeletonState restState_{};
};

// Procedural ground-truth texture: skin tone with clothing bands; also
// used to score the Figure 3 learned-texture comparison.
Vec3f groundTruthAlbedo(Vec3f restPosition);

// Expression displacement applied to a rest-space point near the face.
Vec3f expressionOffset(Vec3f restPosition, const ExpressionParams& expression);

}  // namespace semholo::body
