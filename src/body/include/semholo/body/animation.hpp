// Procedural pose sequences standing in for captured motion data.
//
// The X-Avatar dataset the paper uses is real mocap; these generators
// produce deterministic, human-plausible motion (walking, waving,
// talking with facial expression, a remote-collaboration gesture mix)
// so every experiment has a reproducible workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "semholo/body/pose.hpp"

namespace semholo::body {

enum class MotionKind {
    Idle,        // subtle breathing sway
    Walk,        // gait cycle in place
    Wave,        // right-arm wave with finger motion
    Talk,        // jaw/expression-driven conversation, small head motion
    Collaborate, // pointing + reaching, the remote-collaboration workload
};

std::string motionName(MotionKind kind);

class MotionGenerator {
public:
    MotionGenerator(MotionKind kind, ShapeParams shape = {}, std::uint32_t seed = 1);

    // Pose at time t (seconds). Deterministic in (kind, shape, seed, t).
    Pose poseAt(double tSeconds) const;

    // Convenience: sample 'frames' poses at 'fps'.
    std::vector<Pose> sequence(std::size_t frames, double fps = 30.0) const;

    MotionKind kind() const { return kind_; }

private:
    MotionKind kind_;
    ShapeParams shape_;
    std::uint32_t seed_;
};

}  // namespace semholo::body
