// Eye-gaze simulation, classification and saccade landing prediction
// (section 3.1: foveated delivery needs to know where the user looks
// *next*, and saccades are the hard case).
//
// Substitution note: no MR headset eye tracker is available, so gaze
// streams come from a standard behavioural model — fixations with
// miniature drift, smooth pursuit at constant angular velocity, and
// ballistic saccades whose duration follows the main-sequence
// relationship (duration ~ 2.2 ms/deg * amplitude + 21 ms).
#pragma once

#include <cstdint>
#include <vector>

#include "semholo/geometry/vec.hpp"

namespace semholo::gaze {

using geom::Vec2f;

// One gaze sample: direction as (azimuth, elevation) in degrees relative
// to straight ahead, at 'time' seconds.
struct GazeSample {
    double time{};
    Vec2f angles{};
};

enum class EyeMovement { Fixation, SmoothPursuit, Saccade };

struct GazeEvent {
    EyeMovement type{};
    std::size_t beginIndex{};  // into the sample stream
    std::size_t endIndex{};    // inclusive
};

struct GazeModelConfig {
    double sampleRateHz{120.0};
    double fixationMeanDurationS{0.35};
    double fixationDriftDegPerS{0.8};
    double pursuitProbability{0.2};       // vs saccade at fixation end
    double pursuitSpeedDegPerS{12.0};
    double pursuitMeanDurationS{0.6};
    double saccadeMeanAmplitudeDeg{9.0};
    // Gaze stays within this field of view half-angle.
    double fovHalfAngleDeg{35.0};
};

// Deterministic synthetic gaze stream.
std::vector<GazeSample> generateGazeStream(double durationS,
                                           const GazeModelConfig& config,
                                           std::uint64_t seed);

// Velocity-threshold identification (I-VT with a pursuit band): samples
// below 'pursuitThreshold' deg/s are fixation, between the thresholds
// smooth pursuit, above 'saccadeThreshold' saccade.
struct IVTConfig {
    double pursuitThresholdDegPerS{5.0};
    double saccadeThresholdDegPerS{80.0};
    std::size_t minEventSamples{2};
};

std::vector<GazeEvent> classifyGaze(const std::vector<GazeSample>& samples,
                                    const IVTConfig& config = {});

// Ballistic landing-position prediction from the first samples of a
// saccade: amplitude is estimated from peak velocity via the inverse
// main-sequence relation, direction from the velocity vector.
struct LandingPrediction {
    Vec2f predicted{};
    bool valid{false};
};

LandingPrediction predictSaccadeLanding(const std::vector<GazeSample>& samples,
                                        std::size_t saccadeBegin,
                                        std::size_t currentIndex);

// Angular velocity (deg/s) between two samples.
double angularVelocity(const GazeSample& a, const GazeSample& b);

}  // namespace semholo::gaze
