// Foveated region selection over a mesh: given a viewer and a gaze
// direction, classify each vertex as foveal (needs full-quality mesh) or
// peripheral (keypoint reconstruction suffices). This drives the hybrid
// channel of section 3.1 and the foveation ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "semholo/gaze/gaze.hpp"
#include "semholo/geometry/camera.hpp"
#include "semholo/mesh/trimesh.hpp"

namespace semholo::gaze {

struct FoveationConfig {
    // Eccentricity threshold (degrees from the gaze ray) inside which
    // content is foveal; ~5 deg fovea + parafovea margin by default.
    double fovealRadiusDeg{7.5};
};

struct FoveatedPartition {
    std::vector<std::uint32_t> fovealVertices;
    std::vector<std::uint32_t> peripheralVertices;
    // Triangles all of whose vertices are foveal.
    std::vector<std::uint32_t> fovealTriangles;
    double fovealFraction{0.0};  // fovealVertices / total
};

// Gaze ray in world space from viewer pose + gaze angles (degrees).
geom::Ray gazeRay(const geom::RigidTransform& headPose, Vec2f gazeAnglesDeg);

// Partition mesh vertices by eccentricity from the gaze ray.
FoveatedPartition partitionMesh(const mesh::TriMesh& m, const geom::Ray& gaze,
                                const FoveationConfig& config = {});

// Extract the sub-mesh of foveal triangles (re-indexed, attributes kept).
mesh::TriMesh extractFovealMesh(const mesh::TriMesh& m,
                                const FoveatedPartition& partition);

}  // namespace semholo::gaze
