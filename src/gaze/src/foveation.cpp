#include "semholo/gaze/foveation.hpp"

#include <cmath>
#include <unordered_map>

namespace semholo::gaze {

geom::Ray gazeRay(const geom::RigidTransform& headPose, Vec2f gazeAnglesDeg) {
    const float az = gazeAnglesDeg.x * static_cast<float>(M_PI) / 180.0f;
    const float el = gazeAnglesDeg.y * static_cast<float>(M_PI) / 180.0f;
    // Head-local: +z forward, azimuth rotates about +y, elevation about +x.
    const geom::Vec3f local{std::sin(az) * std::cos(el), std::sin(el),
                            std::cos(az) * std::cos(el)};
    return {headPose.translation, headPose.applyVector(local).normalized()};
}

FoveatedPartition partitionMesh(const mesh::TriMesh& m, const geom::Ray& gaze,
                                const FoveationConfig& config) {
    FoveatedPartition out;
    if (m.empty()) return out;
    const float cosThreshold = std::cos(static_cast<float>(
        config.fovealRadiusDeg * M_PI / 180.0));

    std::vector<bool> isFoveal(m.vertexCount(), false);
    for (std::size_t i = 0; i < m.vertexCount(); ++i) {
        const geom::Vec3f toVertex = (m.vertices[i] - gaze.origin).normalized();
        const bool foveal = toVertex.dot(gaze.direction) >= cosThreshold;
        isFoveal[i] = foveal;
        if (foveal)
            out.fovealVertices.push_back(static_cast<std::uint32_t>(i));
        else
            out.peripheralVertices.push_back(static_cast<std::uint32_t>(i));
    }
    for (std::size_t t = 0; t < m.triangleCount(); ++t) {
        const mesh::Triangle& tri = m.triangles[t];
        if (isFoveal[tri.a] && isFoveal[tri.b] && isFoveal[tri.c])
            out.fovealTriangles.push_back(static_cast<std::uint32_t>(t));
    }
    out.fovealFraction = static_cast<double>(out.fovealVertices.size()) /
                         static_cast<double>(m.vertexCount());
    return out;
}

mesh::TriMesh extractFovealMesh(const mesh::TriMesh& m,
                                const FoveatedPartition& partition) {
    mesh::TriMesh out;
    std::unordered_map<std::uint32_t, std::uint32_t> remap;
    remap.reserve(partition.fovealVertices.size());
    const bool colors = m.hasColors();
    const bool normals = m.hasNormals();
    for (const std::uint32_t vi : partition.fovealVertices) {
        remap.emplace(vi, static_cast<std::uint32_t>(out.vertices.size()));
        out.vertices.push_back(m.vertices[vi]);
        if (colors) out.colors.push_back(m.colors[vi]);
        if (normals) out.normals.push_back(m.normals[vi]);
    }
    for (const std::uint32_t ti : partition.fovealTriangles) {
        const mesh::Triangle& t = m.triangles[ti];
        out.triangles.push_back({remap.at(t.a), remap.at(t.b), remap.at(t.c)});
    }
    return out;
}

}  // namespace semholo::gaze
