#include "semholo/gaze/gaze.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace semholo::gaze {

namespace {

// Main-sequence saccade duration: ~2.2 ms per degree + 21 ms intercept.
double saccadeDurationS(double amplitudeDeg) {
    return 0.021 + 0.0022 * amplitudeDeg;
}

// Peak velocity of a minimum-jerk saccade of amplitude A with the
// main-sequence duration: Vpeak = 1.875 * A / duration(A). Inverting for
// A given an observed peak velocity:
//   V * (0.021 + 0.0022 A) = 1.875 A  =>  A = 0.021 V / (1.875 - 0.0022 V)
// valid for V below the ~852 deg/s ceiling of this model.
double invertPeakVelocity(double peakVelocityDegPerS) {
    const double v = geom::clamp(peakVelocityDegPerS, 0.0, 800.0);
    return 0.021 * v / (1.875 - 0.0022 * v);
}

// Minimum-jerk-like saccade profile: position fraction as a function of
// normalized time, smooth acceleration and deceleration.
double saccadeProfile(double t01) {
    const double t = geom::clamp(t01, 0.0, 1.0);
    return t * t * t * (10.0 - 15.0 * t + 6.0 * t * t);
}

}  // namespace

std::vector<GazeSample> generateGazeStream(double durationS,
                                           const GazeModelConfig& config,
                                           std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> fixDur(1.0 / config.fixationMeanDurationS);
    std::exponential_distribution<double> purDur(1.0 / config.pursuitMeanDurationS);
    std::exponential_distribution<double> sacAmp(1.0 / config.saccadeMeanAmplitudeDeg);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::normal_distribution<double> drift(0.0, 1.0);
    std::uniform_real_distribution<float> angle(0.0f,
                                                2.0f * static_cast<float>(M_PI));

    const double dt = 1.0 / config.sampleRateHz;
    std::vector<GazeSample> samples;
    samples.reserve(static_cast<std::size_t>(durationS / dt) + 1);

    Vec2f gaze{0.0f, 0.0f};
    double t = 0.0;
    const auto fov = static_cast<float>(config.fovHalfAngleDeg);
    auto clampFov = [fov](Vec2f g) {
        return Vec2f{geom::clamp(g.x, -fov, fov), geom::clamp(g.y, -fov, fov)};
    };

    while (t < durationS) {
        // Fixation with miniature drift.
        const double fixEnd = t + std::max(0.08, fixDur(rng));
        const float driftSigma = static_cast<float>(
            config.fixationDriftDegPerS * dt);
        while (t < fixEnd && t < durationS) {
            gaze = clampFov(gaze + Vec2f{static_cast<float>(drift(rng)) * driftSigma,
                                         static_cast<float>(drift(rng)) * driftSigma});
            samples.push_back({t, gaze});
            t += dt;
        }
        if (t >= durationS) break;

        if (uni(rng) < config.pursuitProbability) {
            // Smooth pursuit: constant angular velocity in a random direction.
            const float a = angle(rng);
            const Vec2f vel{std::cos(a) * static_cast<float>(config.pursuitSpeedDegPerS),
                            std::sin(a) * static_cast<float>(config.pursuitSpeedDegPerS)};
            const double purEnd = t + std::max(0.2, purDur(rng));
            while (t < purEnd && t < durationS) {
                gaze = clampFov(gaze + vel * static_cast<float>(dt));
                samples.push_back({t, gaze});
                t += dt;
            }
        } else {
            // Ballistic saccade.
            const double amplitude = std::max(1.0, std::min(30.0, 2.0 + sacAmp(rng)));
            const float a = angle(rng);
            Vec2f target = clampFov(
                gaze + Vec2f{std::cos(a), std::sin(a)} * static_cast<float>(amplitude));
            const Vec2f start = gaze;
            const double dur = saccadeDurationS((target - start).norm());
            const double sacBegin = t;
            while (t < sacBegin + dur && t < durationS) {
                const double frac = saccadeProfile((t - sacBegin) / dur);
                gaze = geom::lerp(start, target, static_cast<float>(frac));
                samples.push_back({t, gaze});
                t += dt;
            }
            gaze = target;
        }
    }
    return samples;
}

double angularVelocity(const GazeSample& a, const GazeSample& b) {
    const double dt = b.time - a.time;
    if (dt <= 0.0) return 0.0;
    return static_cast<double>((b.angles - a.angles).norm()) / dt;
}

std::vector<GazeEvent> classifyGaze(const std::vector<GazeSample>& samples,
                                    const IVTConfig& config) {
    std::vector<GazeEvent> events;
    if (samples.size() < 2) return events;

    auto classify = [&](double v) {
        if (v >= config.saccadeThresholdDegPerS) return EyeMovement::Saccade;
        if (v >= config.pursuitThresholdDegPerS) return EyeMovement::SmoothPursuit;
        return EyeMovement::Fixation;
    };

    EyeMovement current = classify(angularVelocity(samples[0], samples[1]));
    std::size_t begin = 0;
    for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
        const EyeMovement m = classify(angularVelocity(samples[i], samples[i + 1]));
        if (m != current) {
            if (i - begin + 1 >= config.minEventSamples)
                events.push_back({current, begin, i});
            current = m;
            begin = i;
        }
    }
    events.push_back({current, begin, samples.size() - 1});
    return events;
}

LandingPrediction predictSaccadeLanding(const std::vector<GazeSample>& samples,
                                        std::size_t saccadeBegin,
                                        std::size_t currentIndex) {
    LandingPrediction out;
    if (currentIndex <= saccadeBegin || currentIndex >= samples.size()) return out;

    // Peak velocity observed so far and its direction.
    double peakV = 0.0;
    Vec2f dir{};
    for (std::size_t i = saccadeBegin; i < currentIndex; ++i) {
        const double v = angularVelocity(samples[i], samples[i + 1]);
        if (v > peakV) {
            peakV = v;
            dir = samples[i + 1].angles - samples[i].angles;
        }
    }
    if (peakV <= 0.0 || dir.norm2() <= 0.0f) return out;

    // The observed peak is a lower bound on the true peak before the
    // velocity apex; the profile inverse still gives a usable amplitude
    // estimate that improves as more samples arrive.
    const double amplitude = invertPeakVelocity(peakV);
    out.predicted = samples[saccadeBegin].angles +
                    dir.normalized() * static_cast<float>(amplitude);
    out.valid = true;
    return out;
}

}  // namespace semholo::gaze
