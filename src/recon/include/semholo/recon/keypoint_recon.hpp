// Keypoint-based mesh reconstruction — the X-Avatar stand-in at the heart
// of the paper's proof-of-concept (section 4).
//
// Input: keypoints (or an SMPL-X-style pose payload). Pipeline: align the
// keypoints to the parametric skeleton (IK), evaluate the skeleton-
// conditioned implicit field on an R^3 grid, and extract the iso-surface.
// The output resolution R in {128, 256, 512, 1024} is the Figure 2/4
// knob: field evaluation is O(R^3) and dominates, which is exactly why
// the paper measures <3 FPS at 128 and <1 FPS at higher resolutions.
#pragma once

#include <array>

#include "semholo/body/body_model.hpp"
#include "semholo/body/ik.hpp"
#include "semholo/capture/keypoints.hpp"
#include "semholo/recon/device_profile.hpp"

namespace semholo::core {
class ThreadPool;
}

namespace semholo::recon {

using body::kJointCount;
using mesh::TriMesh;

struct ReconstructionOptions {
    // Voxel grid resolution per axis (the paper's "output resolution").
    int resolution{128};
    // Shape parameters assumed for the subject (session constant).
    body::ShapeParams shape{};
    // Device the reconstruction nominally runs on; bounds grid memory.
    DeviceProfile device = DeviceProfile::workstation();
    // Field evaluation pipeline. Sparse tiles the grid into blocks,
    // skips blocks certified surface-free by the field's Lipschitz
    // bound, and fans the rest out over a worker pool; with bonePruning
    // off the mesh is bit-identical to Dense, with it on the surface
    // agrees to ~1e-4 (rounding only). Dense is the legacy serial path.
    ReconMode mode{ReconMode::Sparse};
    // Block edge length in nodes for sparse sampling. 0 picks a
    // resolution-dependent size (see resolveBlockSize): smaller blocks at
    // low resolutions so the guard radius shrinks enough for certificates
    // to fire — the octree amortizes the extra per-block tests.
    int blockSize{0};
    // Worker pool for sparse sampling; nullptr uses the process-wide
    // shared pool. Results do not depend on the pool's worker count.
    core::ThreadPool* pool{nullptr};
    // Per-query capsule pruning inside the field (sparse mode only).
    bool bonePruning{true};
    // Evaluate sampled blocks through BodyField::batch (SIMD lanes)
    // instead of one field call per node. Bit-identical output either
    // way; off is the scalar ablation row in bench_fig4.
    bool simdBatch{true};
    // Test skip certificates on a coarse-to-fine octree and key the
    // temporal cache's support scan on octree nodes (sparse mode only).
    // Off reverts to flat per-block tests — the other ablation row.
    bool octreeCertificates{true};
};

// The block size 'blockSize' resolves to at a given grid resolution
// (returns it unchanged when positive).
int resolveBlockSize(int blockSize, int resolution);

// Counters from one sparse reconstruction (all zero in dense mode).
struct ReconstructionStats {
    std::size_t blocksTotal{0};
    std::size_t blocksSampled{0};
    std::size_t blocksSkipped{0};   // certified surface-free, filled cheaply
    std::size_t blocksCached{0};    // reused from a previous frame
    std::size_t blocksCoarseFilled{0};  // skipped via a certified octree ancestor
    std::uint64_t nodesEvaluated{0};
    std::uint64_t nodesTotal{0};
    std::uint64_t certTests{0};     // analytic certificate invocations
    std::uint64_t bonesBlended{0};  // capsule blends actually executed
    std::uint64_t bonesPruned{0};   // capsule blends skipped via bounds
    // Extraction-stage counters (set in both modes — the block-local
    // extractor runs everywhere; reusedTopologyBlocks is only nonzero on
    // the temporal path, where SparseReconstructor keeps the topology
    // cache across frames).
    std::uint64_t activeCells{0};           // mixed-sign cells emitted from
    std::uint64_t reusedTopologyBlocks{0};  // blocks whose signs were unchanged
};

struct ReconstructionResult {
    TriMesh mesh;
    bool success{false};
    // "out of memory" when the device profile cannot hold the grid.
    std::string failureReason;
    // Wall-clock cost split (measured on this host).
    double ikMs{0.0};
    double fieldSampleMs{0.0};
    double extractMs{0.0};
    double totalMs() const { return ikMs + fieldSampleMs + extractMs; }
    double fps() const { return totalMs() > 0.0 ? 1000.0 / totalMs() : 0.0; }
    std::size_t gridBytes{0};
    ReconstructionStats stats;
};

// Reconstruct from raw keypoint observations (includes the IK stage).
ReconstructionResult reconstructFromKeypoints(
    const std::array<geom::Vec3f, kJointCount>& keypoints,
    const std::array<float, kJointCount>& confidence,
    const ReconstructionOptions& options = {});

// Reconstruct from an already-aligned pose payload (the wire format of
// Table 2; skips IK).
ReconstructionResult reconstructFromPose(const body::Pose& pose,
                                         const ReconstructionOptions& options = {});

}  // namespace semholo::recon
