// Temporal block cache over the sparse reconstruction pipeline.
//
// Animated sequences (body::MotionGenerator, session frames) change the
// implicit field only where the skeleton actually moved. This class owns
// a persistent voxel grid with fixed world bounds and, per frame,
// re-samples only the blocks whose *supporting* capsules moved beyond a
// tolerance since the block was last sampled:
//
//  * support — a capsule supports a block when its conservative
//    lower-bound distance to the block's guard region cannot be proven
//    greater than the region's smallest capsule upper bound plus the
//    smooth-min blend radius. Capsules outside the support set are
//    provably inert over the block: they cannot change a single node
//    value, so their motion never dirties the block.
//  * drift accounting — per block, the per-frame maxima of supporting
//    capsule movement (plus the expression-coefficient delta for blocks
//    inside the face region) accumulate since the last sample; the block
//    is re-sampled once the accumulated bound exceeds cacheTolerance.
//  * certificate safety — cacheTolerance is folded into the block-skip
//    margin, so a block certified surface-free stays certified under any
//    drift the cache can accrue before invalidation.
//
// Consequences: a static pose reconstructs bit-identically from cache
// with zero field evaluations after the first frame; a moving pose
// yields a mesh within ~cacheTolerance of a fresh sparse reconstruction;
// results never depend on the worker count.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "semholo/mesh/blocksampler.hpp"
#include "semholo/mesh/isosurface.hpp"
#include "semholo/recon/keypoint_recon.hpp"

namespace semholo::recon {

struct SparseReconstructorOptions {
    // Base reconstruction parameters; 'mode' is ignored (always sparse).
    ReconstructionOptions recon{};
    // Maximum field drift (metres) a cached block may accumulate before
    // it is re-sampled. 0 re-uses blocks only while their supporting
    // capsules are exactly still.
    float cacheTolerance{0.002f};
    // Extra world margin around the first pose's body bounds so the
    // persistent grid absorbs ordinary motion without a rebuild (which
    // flushes the cache).
    float motionMargin{0.35f};
};

class SparseReconstructor {
public:
    explicit SparseReconstructor(const SparseReconstructorOptions& options = {});

    // Reconstruct one frame, re-sampling only invalidated blocks. The
    // result's stats report cached/skipped/sampled block counts.
    ReconstructionResult reconstruct(const body::Pose& pose);

    // Drop every cached block (the next frame samples from scratch).
    void invalidate();

    const geom::AABB& gridBounds() const { return gridBounds_; }
    std::size_t framesReconstructed() const { return frames_; }
    // Times the persistent grid had to be rebuilt because a pose escaped
    // its bounds (each rebuild flushes the cache).
    std::size_t gridRebuilds() const { return rebuilds_; }

private:
    void rebuildGrid(const geom::AABB& bodyBounds);

    SparseReconstructorOptions options_;
    std::unique_ptr<mesh::VoxelGrid> grid_;
    std::unique_ptr<mesh::BlockSampler> sampler_;
    geom::AABB gridBounds_{};
    // Previous frame's capsules + face box for movement bounds.
    std::vector<body::PosedCapsule> prevCapsules_;
    geom::AABB prevFaceBounds_{};
    std::array<double, 4> prevExpression_{};  // the active coeffs (0..3)
    // Per block: accumulated worst-case field drift since last sample,
    // and last frame's support bitmask (bit i = capsule i supports).
    std::vector<float> accumDrift_;
    std::vector<std::uint64_t> prevSupport_;
    // Per-block extraction topology (active cells, case configs, row
    // counts), reused across frames whenever a block's node signs are
    // unchanged — the extractor then recomputes only vertex positions.
    // Flushed with the rest of the cache on rebuild/invalidate.
    mesh::IsoExtractCache extractCache_;
    bool haveFrame_{false};
    std::size_t frames_{0};
    std::size_t rebuilds_{0};
};

}  // namespace semholo::recon
