// Texture alignment for keypoint reconstructions (section 3.1, "High-
// quality Texture Alignment") and the learned-texture comparison of
// Figure 3.
//
// projectTexture implements the proposed solution: deliver the
// compressed ground-truth texture and align it to the reconstructed
// geometry with projection mapping (nearest-surface lookup against the
// textured reference, the projection-mapping + deformation scheme of
// [27, 28, 12]).
//
// learnedTexture stands in for X-Avatar's texture network: a low-pass
// (limited-capacity) approximation that keeps region colours but loses
// the high-frequency detail (cloth stripes), exactly the failure mode
// Figure 3 reports for learned appearance.
#pragma once

#include "semholo/mesh/trimesh.hpp"

namespace semholo::recon {

using mesh::TriMesh;

// Assign per-vertex colours to 'target' by projecting from the textured
// 'reference' surface (nearest sample among 'referenceSamples' surface
// points). Returns the mean projection distance (geometry inconsistency,
// the section 3.1 alignment challenge metric).
double projectTexture(TriMesh& target, const TriMesh& reference,
                      std::size_t referenceSamples = 40000);

struct LearnedTextureOptions {
    // Smoothing radius as a fraction of the mesh bounding diagonal.
    // Larger radius = lower network capacity = more detail lost.
    float radiusFraction{0.04f};
    std::size_t maxNeighbors{64};
};

// Replace the mesh's colours with a capacity-limited approximation.
void applyLearnedTexture(TriMesh& mesh, const LearnedTextureOptions& options = {});

// Mean per-vertex colour error between two meshes with identical
// vertex layouts.
double colorError(const TriMesh& a, const TriMesh& b);

}  // namespace semholo::recon
