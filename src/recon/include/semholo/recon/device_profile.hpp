// Nominal device profiles for the Figure 4 comparison. The paper runs
// X-Avatar on an NVIDIA A100 (80 GB workstation GPU) and reports that a
// laptop RTX 3080 cannot handle 512/1024 resolutions at all. We model a
// device as a memory budget (hard reconstruction-feasibility limit) plus
// a relative speed factor used to scale measured host timings into the
// device's nominal timings.
#pragma once

#include <cstddef>
#include <string>

namespace semholo::recon {

struct DeviceProfile {
    std::string name;
    std::size_t memoryBudgetBytes{};
    // Nominal speed relative to the measurement host (1.0 = this host).
    double relativeSpeed{1.0};

    // A100-class workstation: large memory, fast.
    static DeviceProfile workstation();
    // RTX-3080-laptop-class: 16 GB budget; at 512^3+ the dense field grid
    // plus intermediates exceed it, matching the paper's observation.
    static DeviceProfile laptop();
    // This host, no memory cap (for raw measurements).
    static DeviceProfile host();

    bool fitsInMemory(std::size_t bytes) const {
        return memoryBudgetBytes == 0 || bytes <= memoryBudgetBytes;
    }
    double scaleMs(double hostMs) const {
        return relativeSpeed > 0.0 ? hostMs / relativeSpeed : hostMs;
    }
};

// How the implicit field is evaluated on the grid.
enum class ReconMode {
    // Legacy path: every node evaluated serially, per-node feature
    // activations held for the whole grid.
    Dense,
    // Block-tiled path: Lipschitz-certified blocks are skipped, the rest
    // fan out over a worker pool, and per-node intermediates are only
    // materialised for the blocks that actually sample (~surface area).
    Sparse,
};

// Total working-set estimate for an R^3 reconstruction: grid nodes plus
// the intermediate structures of extraction (~4x the grid in practice).
std::size_t reconstructionWorkingSetBytes(int resolution);

// Mode-aware estimate. Dense matches the single-argument overload. In
// sparse mode the value grid is still dense (4 bytes/node) but the
// 15-floats-per-node intermediates exist only for surface blocks, whose
// fraction of the grid shrinks like blockSize / resolution.
std::size_t reconstructionWorkingSetBytes(int resolution, ReconMode mode,
                                          int blockSize = 8);

}  // namespace semholo::recon
