#include "semholo/recon/device_profile.hpp"

#include <algorithm>

namespace semholo::recon {

DeviceProfile DeviceProfile::workstation() {
    return {"a100-workstation", 80ull << 30, 1.0};
}

DeviceProfile DeviceProfile::laptop() {
    // RTX 3080 Laptop GPU, 8 GB variant; X-Avatar-style reconstruction at
    // 512^3 needs the dense feature grid + network activations, which
    // exceeds it (the paper: the laptop "cannot handle" 512 and 1024).
    return {"rtx3080-laptop", 8ull << 30, 0.45};
}

DeviceProfile DeviceProfile::host() { return {"host", 0, 1.0}; }

std::size_t reconstructionWorkingSetBytes(int resolution) {
    const auto r = static_cast<std::size_t>(resolution) + 1;
    const std::size_t gridBytes = r * r * r * sizeof(float);
    // SDF grid + per-voxel feature activations + extraction intermediates:
    // ~16 floats per node. With this model 256^3 -> ~1.1 GB (fits an 8 GB
    // laptop), 512^3 -> ~8.6 GB (exceeds it), 1024^3 -> ~69 GB (fits only
    // the 80 GB A100) — reproducing the Figure 4 feasibility pattern.
    return gridBytes * 16;
}

std::size_t reconstructionWorkingSetBytes(int resolution, ReconMode mode,
                                          int blockSize) {
    if (mode == ReconMode::Dense) return reconstructionWorkingSetBytes(resolution);
    const auto r = static_cast<std::size_t>(resolution) + 1;
    const std::size_t gridBytes = r * r * r * sizeof(float);
    // Surface blocks scale with the body's surface area: of the
    // (r/B)^3 blocks roughly c * (r/B)^2 intersect the surface, so the
    // occupied fraction is ~c * B / r (c ~= 3 for a human silhouette in
    // its bounding box; confirmed by the block counters in BENCH_fig4).
    // Only those blocks carry the 15-floats-per-node intermediates; the
    // 4-byte value grid stays dense. 512^3 -> ~0.9 GB and 1024^3 ->
    // ~5.8 GB: both inside the 8 GB laptop budget that dense mode blows
    // past (8.6 GB / 69 GB).
    const std::size_t b = blockSize > 0 ? static_cast<std::size_t>(blockSize) : 8;
    const double fraction =
        std::min(1.0, 3.0 * static_cast<double>(b) / static_cast<double>(r));
    return gridBytes +
           static_cast<std::size_t>(static_cast<double>(gridBytes) * 15.0 * fraction);
}

}  // namespace semholo::recon
