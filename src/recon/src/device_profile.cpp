#include "semholo/recon/device_profile.hpp"

namespace semholo::recon {

DeviceProfile DeviceProfile::workstation() {
    return {"a100-workstation", 80ull << 30, 1.0};
}

DeviceProfile DeviceProfile::laptop() {
    // RTX 3080 Laptop GPU, 8 GB variant; X-Avatar-style reconstruction at
    // 512^3 needs the dense feature grid + network activations, which
    // exceeds it (the paper: the laptop "cannot handle" 512 and 1024).
    return {"rtx3080-laptop", 8ull << 30, 0.45};
}

DeviceProfile DeviceProfile::host() { return {"host", 0, 1.0}; }

std::size_t reconstructionWorkingSetBytes(int resolution) {
    const auto r = static_cast<std::size_t>(resolution) + 1;
    const std::size_t gridBytes = r * r * r * sizeof(float);
    // SDF grid + per-voxel feature activations + extraction intermediates:
    // ~16 floats per node. With this model 256^3 -> ~1.1 GB (fits an 8 GB
    // laptop), 512^3 -> ~8.6 GB (exceeds it), 1024^3 -> ~69 GB (fits only
    // the 80 GB A100) — reproducing the Figure 4 feasibility pattern.
    return gridBytes * 16;
}

}  // namespace semholo::recon
