#include "semholo/recon/keypoint_recon.hpp"

#include <chrono>

#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/isosurface.hpp"

namespace semholo::recon {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

int resolveBlockSize(int blockSize, int resolution) {
    if (blockSize > 0) return blockSize;
    // The guard radius scales with blockSize * cellSize, and blocks only
    // skip when the certificate clears it: at low resolutions 8-node
    // blocks have guards so wide almost nothing certifies
    // (node_eval_fraction ~1 at 32^3/64^3 in BENCH_fig4). Halving the
    // edge quarters the guard; the octree keeps the 8x block count from
    // costing 8x certificate tests.
    return resolution <= 160 ? 4 : 8;
}

ReconstructionResult reconstructFromPose(const body::Pose& pose,
                                         const ReconstructionOptions& options) {
    ReconstructionResult result;
    const int blockSize = resolveBlockSize(options.blockSize, options.resolution);
    result.gridBytes = reconstructionWorkingSetBytes(options.resolution,
                                                     options.mode, blockSize);
    if (!options.device.fitsInMemory(result.gridBytes)) {
        result.failureReason = "out of memory on " + options.device.name;
        return result;
    }

    const mesh::Vec3i res{options.resolution, options.resolution,
                          options.resolution};

    if (options.mode == ReconMode::Dense) {
        // Keypoints carry no garment information: the reconstruction field
        // has no clothing detail (Figure 2's unrecoverable folds).
        const auto field = body::bodySignedDistance(pose);
        const auto bounds = body::bodyBounds(pose);

        auto t0 = std::chrono::steady_clock::now();
        mesh::VoxelGrid grid(bounds, res);
        grid.sample(field);
        result.fieldSampleMs = msSince(t0);

        t0 = std::chrono::steady_clock::now();
        // The extractor emits one vertex per crossing edge (shared
        // boundaries welded by construction) and the capsule field never
        // hits the iso value exactly at grid nodes, so the post-weld
        // pass is pure overhead here — skip it. Dense stays serial: it
        // is the single-core baseline the sparse speedup is gated
        // against.
        mesh::IsoSurfaceOptions iso;
        iso.weldVertices = false;
        mesh::ExtractStats es;
        result.mesh = mesh::extractIsoSurface(grid, nullptr, iso, nullptr, &es);
        result.stats.activeCells = es.activeCells;
        result.extractMs = msSince(t0);
    } else {
        body::BodyFieldOptions fieldOpt;
        fieldOpt.bonePruning = options.bonePruning;
        const body::BodyField body =
            body::makeBodyField(pose, body::Skeleton::canonical(), fieldOpt);

        mesh::FieldSampleOptions sampling;
        sampling.blockSize = blockSize;
        sampling.pool = options.pool != nullptr ? options.pool : &core::sharedPool();
        sampling.lipschitz = body.lipschitz;
        sampling.margin = body.margin;
        sampling.certificate = [&body](geom::Vec3f center, float radius) {
            return body.certificate(center, radius, 0.0f);
        };
        if (options.simdBatch) sampling.batch = body.batch;
        sampling.hierarchical = options.octreeCertificates;

        auto t0 = std::chrono::steady_clock::now();
        mesh::VoxelGrid grid(body.bounds, res);
        mesh::BlockSampler sampler(grid, sampling.blockSize);
        const mesh::FieldSampleStats fs = sampler.sample(body.field, sampling);
        result.fieldSampleMs = msSince(t0);

        result.stats.blocksTotal = fs.blocksTotal;
        result.stats.blocksSampled = fs.blocksSampled;
        result.stats.blocksSkipped = fs.blocksSkipped;
        result.stats.blocksCached = fs.blocksCached;
        result.stats.blocksCoarseFilled = fs.blocksCoarseFilled;
        result.stats.nodesEvaluated = fs.nodesEvaluated;
        result.stats.nodesTotal = fs.nodesTotal;
        result.stats.certTests = fs.certTests;
        result.stats.bonesBlended = body.stats->bonesBlended();
        result.stats.bonesPruned = body.stats->bonesPruned();

        t0 = std::chrono::steady_clock::now();
        // Same weld opt-out as dense (identical meshes either way); the
        // extraction fans out over the sampling pool — output is
        // byte-identical for any worker count.
        mesh::IsoSurfaceOptions iso;
        iso.weldVertices = false;
        iso.pool = sampling.pool;
        mesh::ExtractStats es;
        result.mesh = mesh::extractIsoSurface(grid, &sampler, iso, nullptr, &es);
        result.stats.activeCells = es.activeCells;
        result.stats.reusedTopologyBlocks = es.reusedTopologyBlocks;
        result.extractMs = msSince(t0);
    }
    result.success = !result.mesh.empty();
    if (!result.success) result.failureReason = "empty iso-surface";
    return result;
}

ReconstructionResult reconstructFromKeypoints(
    const std::array<geom::Vec3f, kJointCount>& keypoints,
    const std::array<float, kJointCount>& confidence,
    const ReconstructionOptions& options) {
    const auto t0 = std::chrono::steady_clock::now();
    body::IkOptions ik;
    ik.shape = options.shape;
    const body::IkResult fit = body::fitPoseToKeypoints(keypoints, confidence, ik);
    const double ikMs = msSince(t0);

    ReconstructionResult result = reconstructFromPose(fit.pose, options);
    result.ikMs = ikMs;
    return result;
}

}  // namespace semholo::recon
