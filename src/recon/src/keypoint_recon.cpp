#include "semholo/recon/keypoint_recon.hpp"

#include <chrono>

#include "semholo/mesh/isosurface.hpp"

namespace semholo::recon {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

ReconstructionResult reconstructFromPose(const body::Pose& pose,
                                         const ReconstructionOptions& options) {
    ReconstructionResult result;
    result.gridBytes = reconstructionWorkingSetBytes(options.resolution);
    if (!options.device.fitsInMemory(result.gridBytes)) {
        result.failureReason = "out of memory on " + options.device.name;
        return result;
    }

    // Keypoints carry no garment information: the reconstruction field
    // has no clothing detail (Figure 2's unrecoverable folds).
    const auto field = body::bodySignedDistance(pose);
    const auto bounds = body::bodyBounds(pose);

    auto t0 = std::chrono::steady_clock::now();
    mesh::VoxelGrid grid(bounds,
                         {options.resolution, options.resolution, options.resolution});
    grid.sample(field);
    result.fieldSampleMs = msSince(t0);

    t0 = std::chrono::steady_clock::now();
    result.mesh = mesh::extractIsoSurface(grid);
    result.extractMs = msSince(t0);
    result.success = !result.mesh.empty();
    if (!result.success) result.failureReason = "empty iso-surface";
    return result;
}

ReconstructionResult reconstructFromKeypoints(
    const std::array<geom::Vec3f, kJointCount>& keypoints,
    const std::array<float, kJointCount>& confidence,
    const ReconstructionOptions& options) {
    const auto t0 = std::chrono::steady_clock::now();
    body::IkOptions ik;
    ik.shape = options.shape;
    const body::IkResult fit = body::fitPoseToKeypoints(keypoints, confidence, ik);
    const double ikMs = msSince(t0);

    ReconstructionResult result = reconstructFromPose(fit.pose, options);
    result.ikMs = ikMs;
    return result;
}

}  // namespace semholo::recon
