#include "semholo/recon/texture.hpp"

#include <cmath>

#include "semholo/mesh/kdtree.hpp"
#include "semholo/mesh/sampling.hpp"

namespace semholo::recon {

double projectTexture(TriMesh& target, const TriMesh& reference,
                      std::size_t referenceSamples) {
    if (target.empty() || reference.empty() || !reference.hasColors()) return 0.0;
    const mesh::PointCloud samples =
        mesh::sampleSurface(reference, referenceSamples, 97);
    if (samples.empty() || !samples.hasColors()) return 0.0;
    const mesh::KdTree tree(samples.points);

    target.colors.resize(target.vertexCount());
    double totalDist = 0.0;
    for (std::size_t i = 0; i < target.vertexCount(); ++i) {
        const auto hit = tree.nearest(target.vertices[i]);
        target.colors[i] = samples.colors[hit.index];
        totalDist += std::sqrt(static_cast<double>(hit.distance2));
    }
    return totalDist / static_cast<double>(target.vertexCount());
}

void applyLearnedTexture(TriMesh& mesh, const LearnedTextureOptions& options) {
    if (!mesh.hasColors()) return;
    const float radius = options.radiusFraction * mesh.bounds().diagonal();
    const mesh::KdTree tree(mesh.vertices);
    std::vector<geom::Vec3f> smoothed(mesh.vertexCount());
    for (std::size_t i = 0; i < mesh.vertexCount(); ++i) {
        const auto neighbors = tree.radiusSearch(mesh.vertices[i], radius);
        geom::Vec3f sum{};
        float weight = 0.0f;
        std::size_t used = 0;
        for (const std::uint32_t n : neighbors) {
            if (used++ >= options.maxNeighbors) break;
            const float d = (mesh.vertices[n] - mesh.vertices[i]).norm();
            const float w = std::exp(-d * d / (radius * radius * 0.25f));
            sum += mesh.colors[n] * w;
            weight += w;
        }
        smoothed[i] = weight > 0.0f ? sum / weight : mesh.colors[i];
    }
    mesh.colors = std::move(smoothed);
}

double colorError(const TriMesh& a, const TriMesh& b) {
    if (!a.hasColors() || !b.hasColors() || a.vertexCount() != b.vertexCount())
        return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < a.vertexCount(); ++i)
        total += (a.colors[i] - b.colors[i]).norm();
    return total / static_cast<double>(a.vertexCount());
}

}  // namespace semholo::recon
