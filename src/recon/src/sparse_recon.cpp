#include "semholo/recon/sparse_recon.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>

#include "semholo/core/thread_pool.hpp"
#include "semholo/mesh/isosurface.hpp"

namespace semholo::recon {

namespace {

using geom::Vec3f;

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

float aabbDistance(Vec3f p, Vec3f lo, Vec3f hi) {
    const float dx = std::max({lo.x - p.x, 0.0f, p.x - hi.x});
    const float dy = std::max({lo.y - p.y, 0.0f, p.y - hi.y});
    const float dz = std::max({lo.z - p.z, 0.0f, p.z - hi.z});
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

// Conservative data per posed capsule for the block-support test.
struct CapsuleBounds {
    Vec3f lo, hi;   // segment AABB (no radius)
    float rmax;     // larger end radius: distance lower bounds
    float rmin;     // smaller end radius: distance upper bounds
};

CapsuleBounds capsuleBounds(const body::PosedCapsule& c) {
    CapsuleBounds b;
    b.lo = {std::min(c.a.x, c.b.x), std::min(c.a.y, c.b.y), std::min(c.a.z, c.b.z)};
    b.hi = {std::max(c.a.x, c.b.x), std::max(c.a.y, c.b.y), std::max(c.a.z, c.b.z)};
    b.rmax = std::max(c.ra, c.rb);
    b.rmin = std::min(c.ra, c.rb);
    return b;
}

// Bound on how much a capsule's distance field can change between two
// posings: endpoint displacement plus radius change.
float capsuleMovement(const body::PosedCapsule& now, const body::PosedCapsule& prev) {
    const float endpoints =
        std::max((now.a - prev.a).norm(), (now.b - prev.b).norm());
    const float radii =
        std::max(std::fabs(now.ra - prev.ra), std::fabs(now.rb - prev.rb));
    return endpoints + radii;
}

}  // namespace

SparseReconstructor::SparseReconstructor(const SparseReconstructorOptions& options)
    : options_(options) {
    options_.recon.mode = ReconMode::Sparse;
    options_.recon.blockSize =
        resolveBlockSize(options_.recon.blockSize, options_.recon.resolution);
}

void SparseReconstructor::invalidate() {
    haveFrame_ = false;
    prevCapsules_.clear();
    std::fill(accumDrift_.begin(), accumDrift_.end(), 0.0f);
    std::fill(prevSupport_.begin(), prevSupport_.end(), ~0ull);
    extractCache_.clear();
}

void SparseReconstructor::rebuildGrid(const geom::AABB& bodyBounds) {
    geom::AABB bounds = bodyBounds;
    bounds.inflate(options_.motionMargin);
    gridBounds_ = bounds;
    const int r = options_.recon.resolution;
    grid_ = std::make_unique<mesh::VoxelGrid>(bounds, mesh::Vec3i{r, r, r});
    sampler_ = std::make_unique<mesh::BlockSampler>(*grid_, options_.recon.blockSize);
    const auto blocks = static_cast<std::size_t>(sampler_->blockCount());
    accumDrift_.assign(blocks, 0.0f);
    prevSupport_.assign(blocks, ~0ull);
    extractCache_.clear();
    haveFrame_ = false;
    prevCapsules_.clear();
    if (frames_ > 0) ++rebuilds_;
}

ReconstructionResult SparseReconstructor::reconstruct(const body::Pose& pose) {
    const ReconstructionOptions& ro = options_.recon;
    ReconstructionResult result;
    result.gridBytes =
        reconstructionWorkingSetBytes(ro.resolution, ReconMode::Sparse, ro.blockSize);
    if (!ro.device.fitsInMemory(result.gridBytes)) {
        result.failureReason = "out of memory on " + ro.device.name;
        return result;
    }

    body::BodyFieldOptions fieldOpt;
    fieldOpt.bonePruning = ro.bonePruning;
    const body::BodyField body =
        body::makeBodyField(pose, body::Skeleton::canonical(), fieldOpt);

    if (grid_ == nullptr || !(gridBounds_.contains(body.bounds.lo) &&
                              gridBounds_.contains(body.bounds.hi)))
        rebuildGrid(body.bounds);

    const auto blocks = static_cast<std::size_t>(sampler_->blockCount());
    const std::size_t n = body.capsules.size();
    core::ThreadPool* pool = ro.pool != nullptr ? ro.pool : &core::sharedPool();

    const auto t0 = std::chrono::steady_clock::now();

    // Per-frame support sets + drift accounting. The support test is the
    // per-block analogue of the field's per-query bone pruning: capsule i
    // cannot change any node of the block's guard region when its
    // conservative lower-bound distance clears the region's smallest
    // capsule upper bound by the blend radius (3x slack covers the
    // smooth-min fold's bounded undershoot, d >= min - k).
    std::vector<std::uint8_t> dirty(blocks, 1);
    std::vector<std::uint64_t> support(blocks, ~0ull);
    const bool trackable = n > 0 && n <= 64;
    const bool cacheUsable =
        trackable && haveFrame_ && prevCapsules_.size() == n;

    std::vector<CapsuleBounds> caps;
    std::vector<float> moves;
    float exprDelta = 0.0f;
    if (trackable) {
        caps.reserve(n);
        for (const body::PosedCapsule& c : body.capsules)
            caps.push_back(capsuleBounds(c));
        if (cacheUsable) {
            moves.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                moves.push_back(capsuleMovement(body.capsules[i], prevCapsules_[i]));
            // Expression coefficient deltas shift the warp offset by at
            // most amplitude * |delta| inside the face region; through
            // the field that is bounded by the Lipschitz constant.
            const float dc0 = static_cast<float>(
                std::fabs(pose.expression.coeffs[0] - prevExpression_[0]));
            const float dc1 = static_cast<float>(
                std::fabs(pose.expression.coeffs[1] - prevExpression_[1]));
            const float dc2 = static_cast<float>(
                std::fabs(pose.expression.coeffs[2] - prevExpression_[2]));
            const float dc3 = static_cast<float>(
                std::fabs(pose.expression.coeffs[3] - prevExpression_[3]));
            exprDelta = body.lipschitz *
                        (0.02f * dc0 + 0.015f * dc1 + 0.012f * dc2 + 0.008f * dc3);
        }

        geom::AABB faceUnion = body.faceBounds;
        if (cacheUsable) faceUnion.expand(prevFaceBounds_);
        const float guard = sampler_->guardRadius();
        const float blend3 = 3.0f * body::kFieldBlend;

        // One block's support + drift bookkeeping, restricted to the
        // candidate capsules 'cand' (in the flat scan cand = all bits).
        // Candidate restriction is exact: a capsule excluded at an octree
        // ancestor provably neither enters the block's mask nor attains
        // its smallest upper bound, so masks equal the flat scan's.
        auto scanLeaf = [&](int block, std::uint64_t cand) {
            const auto b = static_cast<std::size_t>(block);
            const Vec3f center = sampler_->blockCenter(block);
            // Smallest capsule-distance upper bound at the center:
            // either endpoint is on the segment, so the nearer one
            // minus the smaller radius bounds the capsule distance.
            float ubMin = std::numeric_limits<float>::max();
            for (std::uint64_t m = cand; m != 0; m &= m - 1) {
                const auto i = static_cast<std::size_t>(std::countr_zero(m));
                const body::PosedCapsule& c = body.capsules[i];
                const float endDist =
                    std::min((center - c.a).norm(), (center - c.b).norm());
                ubMin = std::min(ubMin, endDist - caps[i].rmin);
            }
            const float threshold = ubMin + body.lipschitz * guard + blend3;

            std::uint64_t mask = 0;
            for (std::uint64_t m = cand; m != 0; m &= m - 1) {
                const auto i = static_cast<std::size_t>(std::countr_zero(m));
                const float lb = aabbDistance(center, caps[i].lo, caps[i].hi) -
                                 caps[i].rmax - guard;
                if (lb <= threshold) mask |= 1ull << i;
            }
            support[b] = mask;

            if (!cacheUsable) return;
            float drift = 0.0f;
            const std::uint64_t active = mask | prevSupport_[b];
            for (std::uint64_t m = active; m != 0; m &= m - 1)
                drift = std::max(
                    drift, moves[static_cast<std::size_t>(std::countr_zero(m))]);
            if (exprDelta > 0.0f &&
                sampler_->blockGuardBounds(block).intersects(faceUnion))
                drift += exprDelta;
            accumDrift_[b] += drift;
            dirty[b] = accumDrift_[b] > options_.cacheTolerance ? 1 : 0;
        };

        if (options_.recon.octreeCertificates) {
            // Octree-keyed scan: candidate capsule sets narrow on the way
            // down (one conservative test per capsule per node instead of
            // per block), and subtrees none of whose candidate or
            // previously-supporting capsules moved reuse last frame's
            // masks wholesale. Every verdict is provably identical to the
            // flat scan's; only the work is hierarchical.
            const std::uint64_t allMask =
                n >= 64 ? ~0ull : ((1ull << n) - 1ull);
            std::uint64_t movedMask = 0;
            if (cacheUsable)
                for (std::size_t i = 0; i < n; ++i)
                    if (moves[i] > 0.0f) movedMask |= 1ull << i;
            const mesh::Vec3i bg = sampler_->blockGrid();
            const auto blockAt = [&bg](int x, int y, int z) {
                return x + bg.x * (y + bg.y * z);
            };

            auto scanNode = [&](auto&& self, mesh::Vec3i lo, mesh::Vec3i hi,
                                std::uint64_t inherited) -> void {
                if (lo.x == hi.x && lo.y == hi.y && lo.z == hi.z) {
                    scanLeaf(blockAt(lo.x, lo.y, lo.z), inherited);
                    return;
                }
                Vec3f center;
                float radius;
                sampler_->nodeBall(lo, hi, center, radius);

                // Node-level candidate test. B + radius bounds every
                // descendant's ubMin from above (endpoint distances are
                // 1-Lipschitz in the query point), and each candidate
                // lower bound weakens by at most radius — so a capsule
                // failing this test fails every leaf test below. The
                // epsilon keeps float rounding from ever flipping an
                // exclusion the real-valued proof would not make.
                float B = std::numeric_limits<float>::max();
                for (std::uint64_t m = inherited; m != 0; m &= m - 1) {
                    const auto i =
                        static_cast<std::size_t>(std::countr_zero(m));
                    const body::PosedCapsule& c = body.capsules[i];
                    const float endDist =
                        std::min((center - c.a).norm(), (center - c.b).norm());
                    B = std::min(B, endDist - caps[i].rmin);
                }
                const float nodeThreshold = B + radius +
                                            body.lipschitz * guard + blend3 +
                                            1e-4f;
                std::uint64_t cand = 0;
                for (std::uint64_t m = inherited; m != 0; m &= m - 1) {
                    const auto i =
                        static_cast<std::size_t>(std::countr_zero(m));
                    const float lb =
                        aabbDistance(center, caps[i].lo, caps[i].hi) -
                        caps[i].rmax - guard - radius;
                    if (lb <= nodeThreshold) cand |= 1ull << i;
                }

                if (cacheUsable) {
                    std::uint64_t prevUnion = 0;
                    for (int z = lo.z; z <= hi.z; ++z)
                        for (int y = lo.y; y <= hi.y; ++y)
                            for (int x = lo.x; x <= hi.x; ++x)
                                prevUnion |= prevSupport_[static_cast<std::size_t>(
                                    blockAt(x, y, z))];
                    // The node ball contains every descendant guard box,
                    // so a ball clear of the face union means no leaf
                    // pays the expression term either.
                    const bool faceClear =
                        exprDelta <= 0.0f ||
                        aabbDistance(center, faceUnion.lo, faceUnion.hi) >
                            radius;
                    if (faceClear && (movedMask & (cand | prevUnion)) == 0) {
                        // Nothing that can touch this subtree moved:
                        // masks are unchanged and drift increments are
                        // zero, frame over frame.
                        for (int z = lo.z; z <= hi.z; ++z)
                            for (int y = lo.y; y <= hi.y; ++y)
                                for (int x = lo.x; x <= hi.x; ++x) {
                                    const auto b = static_cast<std::size_t>(
                                        blockAt(x, y, z));
                                    support[b] = prevSupport_[b];
                                    dirty[b] = accumDrift_[b] >
                                                       options_.cacheTolerance
                                                   ? 1
                                                   : 0;
                                }
                        return;
                    }
                } else if (cand == 0) {
                    // Fresh frame (everything dirty anyway): no capsule
                    // can support any block below.
                    for (int z = lo.z; z <= hi.z; ++z)
                        for (int y = lo.y; y <= hi.y; ++y)
                            for (int x = lo.x; x <= hi.x; ++x)
                                support[static_cast<std::size_t>(
                                    blockAt(x, y, z))] = 0;
                    return;
                }

                const mesh::Vec3i mid{lo.x + (hi.x - lo.x) / 2,
                                      lo.y + (hi.y - lo.y) / 2,
                                      lo.z + (hi.z - lo.z) / 2};
                for (int oz = 0; oz < 2; ++oz)
                    for (int oy = 0; oy < 2; ++oy)
                        for (int ox = 0; ox < 2; ++ox) {
                            const mesh::Vec3i clo{ox ? mid.x + 1 : lo.x,
                                                  oy ? mid.y + 1 : lo.y,
                                                  oz ? mid.z + 1 : lo.z};
                            const mesh::Vec3i chi{ox ? hi.x : mid.x,
                                                  oy ? hi.y : mid.y,
                                                  oz ? hi.z : mid.z};
                            if (clo.x > chi.x || clo.y > chi.y ||
                                clo.z > chi.z)
                                continue;
                            self(self, clo, chi, cand);
                        }
            };
            scanNode(scanNode, {0, 0, 0},
                     {bg.x - 1, bg.y - 1, bg.z - 1}, allMask);
        } else {
            const std::uint64_t allMask =
                n >= 64 ? ~0ull : ((1ull << n) - 1ull);
            auto scanBlocks = [&](std::size_t begin, std::size_t end) {
                for (std::size_t b = begin; b < end; ++b)
                    scanLeaf(static_cast<int>(b), allMask);
            };
            const std::size_t chunks = std::min<std::size_t>(
                blocks, std::max<std::size_t>(1, pool->size() * 4));
            if (chunks <= 1) {
                scanBlocks(0, blocks);
            } else {
                pool->parallelFor(chunks, [&](std::size_t c) {
                    scanBlocks(blocks * c / chunks, blocks * (c + 1) / chunks);
                });
            }
        }
    }

    mesh::FieldSampleOptions sampling;
    sampling.blockSize = ro.blockSize;
    sampling.pool = pool;
    sampling.lipschitz = body.lipschitz;
    // A cached block may drift up to cacheTolerance before invalidation;
    // widening every skip certificate by it keeps skipped blocks
    // crossing-free for as long as the cache may hold them.
    sampling.margin = body.margin + options_.cacheTolerance;
    sampling.certificate = [&body, slack = options_.cacheTolerance](
                               geom::Vec3f center, float radius) {
        return body.certificate(center, radius, slack);
    };
    if (ro.simdBatch) sampling.batch = body.batch;
    sampling.hierarchical = ro.octreeCertificates;
    const mesh::FieldSampleStats fs =
        sampler_->sample(body.field, sampling, cacheUsable ? &dirty : nullptr);
    result.fieldSampleMs = msSince(t0);

    if (cacheUsable) {
        for (std::size_t b = 0; b < blocks; ++b)
            if (dirty[b] != 0) accumDrift_[b] = 0.0f;
    } else {
        std::fill(accumDrift_.begin(), accumDrift_.end(), 0.0f);
    }
    prevSupport_ = std::move(support);
    prevCapsules_ = body.capsules;
    prevFaceBounds_ = body.faceBounds;
    prevExpression_ = {pose.expression.coeffs[0], pose.expression.coeffs[1],
                       pose.expression.coeffs[2], pose.expression.coeffs[3]};
    haveFrame_ = true;
    ++frames_;

    result.stats.blocksTotal = fs.blocksTotal;
    result.stats.blocksSampled = fs.blocksSampled;
    result.stats.blocksSkipped = fs.blocksSkipped;
    result.stats.blocksCached = fs.blocksCached;
    result.stats.blocksCoarseFilled = fs.blocksCoarseFilled;
    result.stats.nodesEvaluated = fs.nodesEvaluated;
    result.stats.nodesTotal = fs.nodesTotal;
    result.stats.certTests = fs.certTests;
    result.stats.bonesBlended = body.stats->bonesBlended();
    result.stats.bonesPruned = body.stats->bonesPruned();

    const auto t1 = std::chrono::steady_clock::now();
    // Block-local extraction over the persistent grid: weld skipped (one
    // vertex per crossing edge by construction), worker fan-out over the
    // sampling pool, and the per-block topology cache carried across
    // frames — a block whose node signs did not change re-emits from its
    // cached active-cell list, recomputing only vertex positions.
    mesh::IsoSurfaceOptions iso;
    iso.weldVertices = false;
    iso.pool = pool;
    mesh::ExtractStats es;
    result.mesh =
        mesh::extractIsoSurface(*grid_, sampler_.get(), iso, &extractCache_, &es);
    result.stats.activeCells = es.activeCells;
    result.stats.reusedTopologyBlocks = es.reusedTopologyBlocks;
    result.extractMs = msSince(t1);
    result.success = !result.mesh.empty();
    if (!result.success) result.failureReason = "empty iso-surface";
    return result;
}

}  // namespace semholo::recon
