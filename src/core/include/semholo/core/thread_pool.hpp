// Fixed-size worker pool used by the parallel session engine and by any
// bench that wants to fan work out across cores. Deliberately minimal:
// submit() returns a std::future, tasks run FIFO, the pool joins on
// destruction. Determinism is the caller's job — the engine keeps
// order-sensitive stages (the shared LinkSimulator) on one thread and
// only fans out per-user / per-frame work whose results are merged in a
// fixed order.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace semholo::core {

class ThreadPool {
public:
    // 'workers' == 0 picks hardware_concurrency (at least 1).
    explicit ThreadPool(std::size_t workers = 0) {
        if (workers == 0) workers = defaultWorkers();
        threads_.reserve(workers);
        for (std::size_t i = 0; i < workers; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (std::thread& t : threads_) t.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return threads_.size(); }

    static std::size_t defaultWorkers() {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<std::size_t>(hw);
    }

    // Enqueue a callable; the returned future yields its result (or
    // rethrows its exception).
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    // Run fn(i) for i in [0, count) across the pool and wait for all.
    // Exceptions from any iteration are rethrown (first one wins).
    template <typename F>
    void parallelFor(std::size_t count, F&& fn) {
        std::vector<std::future<void>> futures;
        futures.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            futures.push_back(submit([&fn, i] { fn(i); }));
        for (auto& f : futures) f.get();
    }

private:
    void workerLoop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (stopping_ && queue_.empty()) return;
                task = std::move(queue_.front());
                queue_.pop();
            }
            task();
        }
    }

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_{false};
};

// Process-wide pool for library-internal data parallelism (field
// sampling, mesh metrics). Lazily created, lives for the process.
// Callers must not submit work to this pool from inside one of its own
// tasks (a blocked task waiting on a nested submission can deadlock the
// pool); session engines keep their own pools, so engine workers may
// safely block on sharedPool() futures.
inline ThreadPool& sharedPool() {
    static ThreadPool pool;
    return pool;
}

}  // namespace semholo::core
