// Per-stage telemetry for the session engines: wall-time histograms
// (exact p50/p95/p99 over recorded samples), counters for drops,
// retransmissions and queue depth, and a JSON exporter the bench
// harnesses write next to their tables (BENCH_*.json) so successive
// perf PRs have a measured trajectory to compare against.
//
// Thread model: a Histogram is internally synchronised — every accessor
// (including the lazily sorted percentile cache) takes the instance
// mutex, so concurrent record/merge/percentile calls from worker threads
// are safe. A Counters instance is NOT synchronised: the parallel engine
// gives each worker task its own instance and merge()s them on the
// coordinating thread; the sequenced link stage owns the link/queue
// counters outright.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace semholo::core::telemetry {

// Sample-retaining histogram: exact percentiles at bench scale (10^2..
// 10^5 samples per session), merge by concatenation. All members are
// thread-safe (guarded by an internal mutex) so telemetry may be queried
// while worker threads are still recording.
class Histogram {
public:
    Histogram() = default;
    Histogram(const Histogram& other);
    Histogram& operator=(const Histogram& other);

    void record(double value);
    void merge(const Histogram& other);

    std::size_t count() const;
    bool empty() const;
    double sum() const;
    double mean() const;
    double min() const;
    double max() const;
    // Nearest-rank percentile over recorded samples; p in [0, 100].
    // Returns 0 when empty.
    double percentile(double p) const;
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

private:
    // Caller must hold mutex_.
    const std::vector<double>& sortedLocked() const;

    mutable std::mutex mutex_;
    std::vector<double> samples_;
    // Sorted lazily on first percentile query after a mutation.
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_{false};
};

struct Counters {
    std::uint64_t framesCaptured{};
    std::uint64_t framesDelivered{};
    std::uint64_t framesDecoded{};
    std::uint64_t dropsAtSender{};     // extractor busy at capture time
    std::uint64_t dropsAtReceiver{};   // reconstructor busy at arrival
    std::uint64_t packets{};
    std::uint64_t packetsLost{};       // first-transmission losses
    std::uint64_t packetsDelivered{};  // reached the receiver
    std::uint64_t packetsUnrecovered{}; // never reached the receiver
    std::uint64_t retransmissions{};
    std::uint64_t queueDrops{};        // bottleneck tail drops (overflow)
    std::uint64_t bytesSent{};
    std::uint64_t faultEvents{};       // fault windows / burst onsets entered
    std::uint64_t degradations{};      // quality-ladder step-downs
    std::uint64_t upgrades{};          // quality-ladder step-ups
    // Sparse-reconstruction work accounting (zero on dense decode paths):
    // how much of the field pass the pruning/caching layers elided.
    std::uint64_t reconBlocksSkipped{};   // blocks certified crossing-free
    std::uint64_t reconBlocksCached{};    // blocks re-used from the cache
    std::uint64_t reconBonesPruned{};     // capsule blends skipped per query
    std::uint64_t reconNodesEvaluated{};  // field evaluations actually run
    std::uint64_t reconCertTests{};       // analytic certificate invocations
    // Extraction-stage accounting (block-local marching tetrahedra).
    std::uint64_t reconActiveCells{};           // mixed-sign cells emitted from
    std::uint64_t reconReusedTopologyBlocks{};  // sign-unchanged topology reuse

    void merge(const Counters& other);
};

// Everything one session (or one user of a multi-user session) records.
struct SessionTelemetry {
    Histogram encodeMs;          // sender extraction + encoding wall time
    Histogram transferMs;        // link queue + serialisation + propagation
    Histogram decodeMs;          // receiver reconstruction wall time
    Histogram qualityMs;         // Chamfer-eval mesh sampling wall time
    Histogram e2eMs;             // capture-to-render per delivered frame
    Histogram bytesPerFrame;     // wire payload sizes
    Histogram queueDepthBytes;   // bottleneck backlog sampled at each send
    Counters counters;

    void merge(const SessionTelemetry& other);
    // JSON object: {"stages": {name: {count,mean,min,max,p50,p95,p99}},
    //               "counters": {...}}.
    std::string toJson(int indent = 0) const;
    bool writeJson(const std::string& path) const;
};

// Schema version stamped into every BENCH_*.json document (a top-level
// "schema_version" field), so downstream consumers of the CI artifacts
// can detect layout changes. Bump when a bench document's structure
// changes incompatibly.
//   1: implicit pre-versioned layouts.
//   2: unified toJsonValue(T) convention; conference documents carry
//      fairness[].target_rate_mbps and downlinks[] fan-out accounting.
//   3: codec v2 filter pipeline + Pareto sweep documents.
//   4: per-stage extraction counters (extract_ms histograms,
//      active_cells, reused_topology_blocks; recon_active_cells /
//      recon_reused_topology_blocks in session counters) and the
//      BENCH_fig4 "extraction" section gating the within-run
//      block-extractor vs legacy speedup.
//   5: conference documents carry the stage-graph "pipeline" section
//      (node/edge counts, per-stage occupancy and release latency,
//      ticks-in-flight, and the deterministic stage-graph vs tick-barrier
//      schedule comparison) in every MultiSessionStats value, plus the
//      BENCH_conference "straggler_pipeline" section gating the
//      within-run pipelined-vs-barrier tick throughput.
inline constexpr std::uint64_t kBenchSchemaVersion = 5;

// Minimal JSON document builder shared by the bench exporters, so ad-hoc
// bench output (speedups, per-row results) lands in the same files as
// the engine telemetry without a JSON dependency.
class JsonWriter {
public:
    JsonWriter& beginObject(const std::string& key = {});
    JsonWriter& endObject();
    JsonWriter& beginArray(const std::string& key = {});
    JsonWriter& endArray();
    JsonWriter& field(const std::string& key, double value);
    JsonWriter& field(const std::string& key, std::uint64_t value);
    JsonWriter& field(const std::string& key, const std::string& value);
    JsonWriter& raw(const std::string& key, const std::string& jsonValue);
    std::string str() const { return out_; }

private:
    void comma();
    void keyPrefix(const std::string& key);

    std::string out_;
    std::vector<bool> needComma_;
};

// Render a SessionTelemetry as a JSON value (used by JsonWriter::raw to
// embed engine telemetry inside larger bench documents).
std::string toJsonValue(const SessionTelemetry& t);

}  // namespace semholo::core::telemetry
