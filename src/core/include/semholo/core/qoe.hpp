// Quality-of-experience model: combines reconstruction quality, end-to-
// end latency against the interactive bound (the paper's <100 ms
// requirement) and achieved frame rate into a single [0, 5] MOS-style
// score, so channels can be ranked the way the paper's Table 1 ranks
// semantics.
#pragma once

#include "semholo/core/session.hpp"

namespace semholo::core {

struct QoEModel {
    // Latency at or below this is free; beyond it the score decays.
    double latencyBudgetMs{100.0};
    double latencyHalfLifeMs{150.0};  // extra latency halving the latency term
    // Target interactive frame rate.
    double targetFps{30.0};
    // Chamfer distance (metres) mapping to quality 1.0 vs 0.0.
    double chamferExcellent{0.004};
    double chamferPoor{0.05};
    // Term weights (sum to 1): quality, latency, smoothness.
    double qualityWeight{0.5};
    double latencyWeight{0.3};
    double fpsWeight{0.2};
};

struct QoEBreakdown {
    double qualityTerm{};   // [0,1]
    double latencyTerm{};   // [0,1]
    double fpsTerm{};       // [0,1]
    double deliveryTerm{};  // fraction of frames delivered, scales the rest
    double mos{};           // [0,5]
};

QoEBreakdown computeQoE(const SessionStats& stats, const QoEModel& model = {});

}  // namespace semholo::core
