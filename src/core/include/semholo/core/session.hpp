// End-to-end telepresence session: sender pipeline -> simulated Internet
// path -> receiver pipeline, per-frame accounting of every Figure 1
// stage, and (optionally sampled) reconstruction quality against the
// ground-truth capture mesh.
#pragma once

#include <limits>

#include "semholo/body/animation.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/net/simulator.hpp"

namespace semholo::core {

struct SessionConfig {
    double fps{30.0};
    std::size_t frames{60};
    net::LinkConfig link{};
    net::TransferOptions transfer{};
    body::MotionKind motion{body::MotionKind::Talk};
    std::uint32_t motionSeed{1};
    // Evaluate decoded-mesh quality vs ground truth every N frames
    // (0 = never; quality evaluation costs mesh sampling time).
    std::size_t qualityEvalInterval{0};
    std::size_t qualitySamples{6000};
    // Viewer state fed to gaze-aware channels.
    geom::RigidTransform viewerHead{geom::Quat::identity(), {0.0f, 0.2f, -2.5f}};
    // Sender extraction and receiver reconstruction are single pipeline
    // stages: when true, a frame that arrives while its stage is still
    // busy with an earlier frame is dropped (live-streaming behaviour);
    // when false, frames queue and latency grows without bound for
    // stages slower than the frame interval.
    bool dropWhenBusy{true};
};

struct FrameStats {
    std::uint32_t frameId{};
    std::size_t bytes{};
    double extractMs{};    // measured + simulated sender inference
    double transferMs{};   // network (queue + serialisation + propagation)
    double reconMs{};      // measured + simulated receiver inference
    double e2eMs{};        // capture-to-render
    bool delivered{false};
    bool decoded{false};
    bool droppedAtSender{false};    // extractor still busy at capture time
    bool droppedAtReceiver{false};  // reconstructor still busy at arrival
    // Chamfer distance vs ground truth when evaluated, NaN otherwise.
    double chamfer{std::numeric_limits<double>::quiet_NaN()};
};

struct SessionStats {
    std::vector<FrameStats> frames;

    std::size_t deliveredFrames{};
    std::size_t decodedFrames{};
    std::size_t droppedSenderFrames{};
    std::size_t droppedReceiverFrames{};
    double meanBytesPerFrame{};
    double bandwidthMbps{};       // meanBytes * 8 * fps / 1e6
    double meanExtractMs{};
    double meanTransferMs{};
    double meanReconMs{};
    double meanE2eMs{};
    double p95E2eMs{};
    // Pipeline-limited frame rate: 1000 / mean(max(extract, recon)) —
    // stages pipeline across frames, so the slower stage bounds FPS.
    double achievableFps{};
    // Mean Chamfer over evaluated frames (NaN when never evaluated).
    double meanChamfer{std::numeric_limits<double>::quiet_NaN()};
};

// Run a one-way session (site A captures, site B renders).
SessionStats runSession(SemanticChannel& channel, const body::BodyModel& model,
                        const SessionConfig& config);

// ---- Multi-user sessions -------------------------------------------------
//
// N participants upload through one shared bottleneck (the conference-
// server model of the multi-user volumetric delivery literature the
// paper builds on). Every user runs their own channel instance and
// motion seed; their frames interleave on the shared link in capture
// order, so heavy channels congest each other.

struct MultiSessionStats {
    std::vector<SessionStats> perUser;
    double aggregateMbps{};
    double meanE2eMs{};
    // Users whose mean end-to-end latency meets 'budgetMs'.
    std::size_t usersWithinLatency(double budgetMs) const;
};

MultiSessionStats runMultiUserSession(
    const std::vector<SemanticChannel*>& channels, const body::BodyModel& model,
    const SessionConfig& base);

}  // namespace semholo::core
