// End-to-end telepresence session: sender pipeline -> simulated Internet
// path -> receiver pipeline, per-frame accounting of every Figure 1
// stage, and (optionally sampled) reconstruction quality against the
// ground-truth capture mesh.
//
// Two engines share the same semantics:
//
//  - the serial engine (workers == 1) runs everything on the calling
//    thread;
//  - the parallel engine (workers != 1) fans per-user work (encode,
//    decode + Chamfer sampling) across a worker pool, while the
//    shared-bottleneck LinkSimulator remains a single sequenced stage so
//    capture-order interleaving and congestion semantics match the
//    serial engine. In single-user runs the pool absorbs the per-frame
//    quality evaluation.
//
// Multi-user runs execute as a completion-event-driven stage graph
// (encode -> sequenced uplink ticket -> downlink fan-out -> decode per
// user and tick, with explicit dependency edges), so every participant's
// throughput estimator and DegradationPolicy observe their own link
// outcomes before their next tick encodes — the closed loop of the
// paper's semantic coordinator, at conference scale — while users whose
// feedback already landed may pipeline ahead of stragglers up to
// ConferenceConfig::pipelineDepth ticks.
//
// With TimingModel::Simulated the pipeline clock is fully deterministic,
// so `workers=1` and `workers=N` produce byte-identical per-frame
// bytes/delivered/dropped sequences (see tests/core/test_parallel_session).
#pragma once

#include <limits>

#include "semholo/body/animation.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/core/degradation.hpp"
#include "semholo/core/telemetry.hpp"
#include "semholo/net/simulator.hpp"

namespace semholo::core {

// What advances the pipeline availability clocks (extractor/recon busy
// times, link send times).
enum class TimingModel {
    // Measured wall time + simulated DL inference time (legacy). Wall
    // time varies run to run, so drop decisions and link timings are
    // only statistically reproducible.
    Measured,
    // Only the simulated (deterministic) stage costs drive the clocks;
    // measured wall time is still *reported* in FrameStats/telemetry but
    // never influences scheduling. Use for determinism tests and for
    // comparing engines bit-for-bit.
    Simulated,
};

struct SessionConfig {
    double fps{30.0};
    std::size_t frames{60};
    net::LinkConfig link{};
    net::TransferOptions transfer{};
    body::MotionKind motion{body::MotionKind::Talk};
    std::uint32_t motionSeed{1};
    // Evaluate decoded-mesh quality vs ground truth every N frames
    // (0 = never; quality evaluation costs mesh sampling time).
    std::size_t qualityEvalInterval{0};
    std::size_t qualitySamples{6000};
    // Viewer state fed to gaze-aware channels.
    geom::RigidTransform viewerHead{geom::Quat::identity(), {0.0f, 0.2f, -2.5f}};
    // Sender extraction and receiver reconstruction are single pipeline
    // stages: when true, a frame that arrives while its stage is still
    // busy with an earlier frame is dropped (live-streaming behaviour);
    // when false, frames queue and latency grows without bound for
    // stages slower than the frame interval.
    bool dropWhenBusy{true};
    // Worker threads for the parallel engine: 0 = hardware_concurrency,
    // 1 = exact legacy serial path.
    std::size_t workers{0};
    TimingModel timing{TimingModel::Measured};
    // Closed-loop graceful degradation: when enabled, every engine
    // (single- and multi-user, serial and parallel) runs a
    // DegradationPolicy over each frame's link outcome and scales the
    // bandwidth estimate fed to rate-adaptive channels, stepping quality
    // down under sustained congestion or injected faults and back up on
    // recovery. Transitions land in telemetry (counters.degradations /
    // upgrades). Multi-user sessions run one independent policy (and one
    // throughput estimator) per participant: the tick scheduler carries
    // each capture tick's messages over the shared link before any user
    // encodes the next tick, so each user observes their own link
    // outcomes — per-user closed-loop adaptation over a shared
    // bottleneck. Per-user transitions land in that user's telemetry and
    // in MultiSessionStats::fairness.
    DegradationConfig degradation{};
};

struct FrameStats {
    std::uint32_t frameId{};
    std::size_t bytes{};
    double extractMs{};    // measured + simulated sender inference
    double transferMs{};   // network (queue + serialisation + propagation)
    double reconMs{};      // measured + simulated receiver inference
    double e2eMs{};        // capture-to-render
    double qualityMs{};    // Chamfer-eval wall time (0 when not evaluated)
    bool delivered{false};
    bool decoded{false};
    bool droppedAtSender{false};    // extractor still busy at capture time
    bool droppedAtReceiver{false};  // reconstructor still busy at arrival
    // Chamfer distance vs ground truth when evaluated, NaN otherwise.
    double chamfer{std::numeric_limits<double>::quiet_NaN()};
    // Sparse-reconstruction work accounting for this frame's decode (all
    // zero on dense or image-only channels); summed into the session
    // telemetry counters.
    std::uint64_t reconBlocksSkipped{};
    std::uint64_t reconBlocksCached{};
    std::uint64_t reconBonesPruned{};
    std::uint64_t reconNodesEvaluated{};
    std::uint64_t reconCertTests{};
    std::uint64_t reconActiveCells{};
    std::uint64_t reconReusedTopologyBlocks{};
};

struct SessionStats {
    std::vector<FrameStats> frames;

    std::size_t deliveredFrames{};
    std::size_t decodedFrames{};
    std::size_t droppedSenderFrames{};
    std::size_t droppedReceiverFrames{};
    double meanBytesPerFrame{};
    double bandwidthMbps{};       // meanBytes * 8 * fps / 1e6
    double meanExtractMs{};
    double meanTransferMs{};
    double meanReconMs{};
    double meanE2eMs{};
    double p95E2eMs{};
    // Pipeline-limited frame rate: 1000 / mean(max(extract, recon)) —
    // stages pipeline across frames, so the slower stage bounds FPS.
    double achievableFps{};
    // Mean Chamfer over evaluated frames (NaN when never evaluated).
    double meanChamfer{std::numeric_limits<double>::quiet_NaN()};
    // Per-stage wall-time histograms (p50/p95/p99), drop/retransmission
    // counters, and bottleneck queue-depth samples for this session.
    telemetry::SessionTelemetry telemetry;
};

// Run a one-way session (site A captures, site B renders). Calls
// channel.reset() before the first frame; dispatches to the serial or
// parallel engine based on config.workers.
SessionStats runSession(SemanticChannel& channel, const body::BodyModel& model,
                        const SessionConfig& config);

// ---- Multi-user sessions -------------------------------------------------
//
// N participants upload through one shared bottleneck (the conference-
// server model of the multi-user volumetric delivery literature the
// paper builds on). Every user runs their own channel instance and
// motion seed; their frames interleave on the shared link in capture
// order, so heavy channels congest each other. Each channel is reset()
// before its first frame.
//
// Both engines are the same frame-tick scheduler: at each capture tick
// every user encodes that tick's frame (fanned across the worker pool by
// the parallel engine), the sequenced link stage carries the tick's
// messages in user order, each user's throughput estimator and
// DegradationPolicy observe their own link outcomes, and only then does
// the next tick encode — so conference participants get the same
// closed-loop feedback as single-user sessions. Under
// TimingModel::Simulated the serial and parallel engines are
// byte-identical at any worker count.

// Per-participant fairness accounting for one multi-user session: how
// delivery, bandwidth and the degradation ladder were shared.
struct UserFairnessStats {
    std::size_t user{};
    std::size_t capturedFrames{};
    std::size_t deliveredFrames{};
    // deliveredFrames / capturedFrames (0 when no frames captured).
    double deliveryRatio{};
    double bandwidthMbps{};
    // This user's fraction of all wire bytes across the conference
    // (0 when nothing was sent).
    double bandwidthShare{};
    double meanE2eMs{};
    std::uint64_t degradations{};
    std::uint64_t upgrades{};
    // Ladder level in effect when the session ended (0 = full quality).
    std::size_t finalDegradationLevel{};
    // Mean BandwidthArbiter target over the session (0 when no arbiter
    // ran): the uplink rate the conference server asked this user to
    // hold.
    double targetRateMbps{};
};

// ---- SFU downlink accounting ---------------------------------------------
//
// When a conference runs with downlinks enabled (runConference,
// semholo/core/conference.hpp), the server fans each delivered uplink
// frame back out to every subscribed viewer. One DownlinkStats per
// viewer, one DownlinkStreamStats per (viewer, source) subscription.

struct DownlinkStreamStats {
    std::size_t source{};              // publishing participant
    std::size_t framesForwarded{};     // frames the server put on this downlink
    std::size_t framesDelivered{};     // forwarded frames that arrived
    std::uint64_t bytesForwarded{};    // wire bytes the server forwarded
    std::uint64_t bytesDelivered{};    // wire bytes that arrived
    std::uint64_t packets{};
    std::uint64_t packetsDelivered{};
    std::uint64_t packetsUnrecovered{};
};

struct DownlinkStats {
    std::size_t viewer{};
    // Totals across this viewer's subscribed streams (sums of 'streams').
    std::size_t framesForwarded{};
    std::size_t framesDelivered{};
    std::uint64_t bytesForwarded{};
    std::uint64_t bytesDelivered{};
    std::uint64_t packets{};
    std::uint64_t packetsDelivered{};
    std::uint64_t packetsUnrecovered{};
    // This viewer's fraction of all bytes the server fanned out.
    double fanoutShare{};
    double meanTransferMs{};
    std::vector<DownlinkStreamStats> streams;
};

// ---- Stage-graph pipeline telemetry ----------------------------------------
//
// The conference engine executes as a completion-event-driven stage graph
// (see DESIGN.md "Event-driven conference stage graph"): every per-user
// frame is a chain of nodes (encode -> uplink ticket -> downlink fan-out
// -> decode) with explicit dependency edges, and a retire node per tick
// bounds how many ticks may be in flight (ConferenceConfig::pipelineDepth).
// These stats describe how deep the pipeline actually ran and what the
// event-driven schedule bought over the legacy per-tick barrier.

struct PipelineStageStats {
    std::string stage;  // "arbiter" | "encode" | "uplink" | "downlink" |
                        // "decode" | "retire"
    std::uint64_t nodes{};
    // Sum of node-body wall time (ms) spent in this stage.
    double busyMs{};
    // Peak number of this stage's nodes executing concurrently (1 for the
    // serial engine and for sequenced stages such as the uplink tickets).
    std::size_t maxConcurrent{};
    // Wall latency (ms) from a node's last dependency completing to the
    // node starting — queueing delay in the worker pool (0 when a node
    // starts the instant it is released).
    telemetry::Histogram releaseLatencyMs;
};

struct PipelineStats {
    // false: nodes ran in insertion order on the calling thread (serial
    // engine). true: nodes ran event-driven over the worker pool.
    bool eventDriven{false};
    std::size_t workers{1};
    std::size_t pipelineDepth{1};
    std::uint64_t nodes{};
    std::uint64_t edges{};
    // Peak capture ticks simultaneously in flight (bounded by
    // pipelineDepth); sampled at each encode-node release.
    std::size_t maxTicksInFlight{};
    telemetry::Histogram ticksInFlight;
    double wallMs{};  // wall time of the graph run itself
    // Deterministic list-schedule makespans over the recorded per-node
    // simulated stage costs at 'workers' workers: the event-driven DAG
    // schedule vs the legacy three-phase tick barrier on the *same*
    // workload. Pure functions of (graph, costs, workers), so the
    // speedup is runner-independent and CI-gateable.
    double simulatedStageGraphMs{};
    double simulatedBarrierMs{};
    double simulatedSpeedup{1.0};   // barrier / stage-graph
    double simulatedIdleMs{};        // workers*makespan - total cost (DAG)
    double simulatedBarrierIdleMs{}; // same, for the barrier schedule
    std::vector<PipelineStageStats> stages;
};

struct MultiSessionStats {
    std::vector<SessionStats> perUser;
    double aggregateMbps{};
    double meanE2eMs{};
    // Per-user fairness accounting (delivery ratio, bandwidth share,
    // degradation transitions), one entry per participant.
    std::vector<UserFairnessStats> fairness;
    // Jain's fairness index over per-user delivery ratios: 1 when every
    // participant gets the same delivery ratio, -> 1/N under starvation.
    double fairnessIndex{1.0};
    // Per-viewer downlink fan-out accounting; empty when the conference
    // ran without downlinks (including every legacy runMultiUserSession
    // call). sum(downlinks[v].bytesForwarded) == serverFanoutBytes.
    std::vector<DownlinkStats> downlinks;
    std::uint64_t serverFanoutFrames{};
    std::uint64_t serverFanoutBytes{};
    // Merged per-user telemetry plus the shared link's packet/queue
    // counters and queue-depth histogram. Link counters are attributed
    // per user (perUser[u].telemetry) by the link's senderTag and merged
    // here, so the totals equal the shared link's totals.
    telemetry::SessionTelemetry telemetry;
    // Stage-graph execution telemetry: node/edge counts, per-stage
    // occupancy and release latency, pipeline depth actually used, and
    // the deterministic stage-graph vs tick-barrier schedule comparison.
    PipelineStats pipeline;
    // Users whose mean end-to-end latency meets 'budgetMs'.
    std::size_t usersWithinLatency(double budgetMs) const;
};

// ---- JSON export ---------------------------------------------------------
//
// Every stats exporter follows one convention: a free toJsonValue(T)
// returning one JSON value as std::string, composable into larger bench
// documents via telemetry::JsonWriter::raw (the member
// SessionTelemetry::toJson survives only as a legacy alias of
// telemetry::toJsonValue).

// Aggregate figures plus the embedded telemetry for one session / one
// conference participant.
std::string toJsonValue(const SessionStats& stats);

// Aggregate figures, the per-user fairness array, the per-viewer
// downlink fan-out (when present), and the merged telemetry.
std::string toJsonValue(const MultiSessionStats& stats);

// Legacy multi-user entrypoint: runs the conference engine with the
// shared-uplink topology, downlink fan-out disabled and no arbiter —
// exactly the pre-SFU semantics. New code should build a
// ConferenceConfig of Participant descriptors instead
// (semholo/core/conference.hpp).
[[deprecated(
    "use runConference(const ConferenceConfig&, const body::BodyModel&) from "
    "semholo/core/conference.hpp")]]
MultiSessionStats runMultiUserSession(
    const std::vector<SemanticChannel*>& channels, const body::BodyModel& model,
    const SessionConfig& base);

}  // namespace semholo::core
