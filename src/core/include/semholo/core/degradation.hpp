// Closed-loop graceful degradation (the robustness side of section
// 3.2's rate adaption): a policy that watches per-frame link outcomes —
// delivery failures, queue pressure, fault-schedule events, transfer
// latency — and steps a channel down its quality ladder under sustained
// congestion, back up after sustained recovery.
//
// The policy acts through the throughput feedback the channels already
// consume: FrameContext::estimatedBandwidthBps is multiplied by
// bandwidthScale() (stepScale^level), so every rate-adaptive channel
// (adaptive-mesh LOD ladder, slimmable-NeRF image channel) degrades
// without knowing the policy exists. This closes the loop that pure
// throughput estimation leaves open: when congestion kills every frame,
// no throughput samples arrive and the estimator goes stale — the
// policy reacts to the failures themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace semholo::core {

struct DegradationConfig {
    bool enabled{false};
    // Deepest step-down level; level 0 applies no degradation.
    std::size_t maxLevel{3};
    // Bandwidth-estimate multiplier per level: scale = stepScale^level.
    double stepScale{0.5};
    // A frame counts as congested when its transfer took longer than
    // this many frame intervals...
    double latencyBudgetFrames{2.0};
    // ...or the bottleneck backlog at send exceeded this fraction of the
    // queue capacity, or it saw queue drops / unrecovered losses /
    // fault-window events, or it was simply not delivered.
    double queuePressure{0.5};
    int downgradeAfter{2};  // consecutive congested frames to step down
    int upgradeAfter{12};   // consecutive clean frames to step back up
    // When a conference BandwidthArbiter feeds the policy a target rate
    // (setTargetRateBps), a frame whose wire size exceeds
    // target * targetOvershoot per frame interval counts as congested —
    // the ladder enforces the arbiter's allocation even while the link
    // still delivers. Ignored when no target is set.
    double targetOvershoot{1.25};
};

// One frame's network outcome as seen by the session engine.
struct LinkObservation {
    bool delivered{false};
    double transferS{0.0};
    std::size_t unrecoveredPackets{0};
    std::size_t queueDrops{0};
    std::size_t faultEvents{0};
    std::size_t queuedBytesAtSend{0};
    // Wire bytes of the frame (0 when unknown); only consulted by the
    // target-rate check above.
    std::size_t bytes{0};
};

enum class DegradationAction { Hold, StepDown, StepUp };

struct DegradationDecision {
    std::uint32_t frameId{};
    DegradationAction action{DegradationAction::Hold};
    std::size_t level{};  // level in effect after the action
};

class DegradationPolicy {
public:
    DegradationPolicy(const DegradationConfig& config, double fps,
                      std::size_t queueCapacityBytes);

    // Feed one frame's link outcome; returns the action taken. Hold
    // decisions are not recorded (only transitions are).
    DegradationAction observe(std::uint32_t frameId, const LinkObservation& obs);

    std::size_t level() const { return level_; }
    // Multiplier for the bandwidth estimate fed to channels.
    double bandwidthScale() const;
    // Per-tick arbiter target rate (bps); 0 disables the target-aware
    // congestion check. Set by the conference engine each tick when a
    // BandwidthArbiter is active.
    void setTargetRateBps(double bps) { targetRateBps_ = bps; }
    double targetRateBps() const { return targetRateBps_; }
    std::size_t downgrades() const { return downgrades_; }
    std::size_t upgrades() const { return upgrades_; }
    // The most recent transitions (up to kDecisionHistoryCap), oldest
    // first. Long-running sessions keep a bounded window; the exact
    // lifetime transition counts stay in downgrades()/upgrades().
    std::vector<DegradationDecision> decisions() const;
    // Lifetime transition count (== downgrades() + upgrades()), which
    // may exceed decisions().size() once the history window wraps.
    std::size_t decisionsRecorded() const { return decisionsRecorded_; }
    void reset();

    // Bounded transition history: a soak pinned at maxLevel must not
    // grow memory with every oscillation.
    static constexpr std::size_t kDecisionHistoryCap = 256;

private:
    bool congested(const LinkObservation& obs) const;
    void recordDecision(const DegradationDecision& decision);

    DegradationConfig config_;
    double frameIntervalS_{1.0 / 30.0};
    std::size_t queueCapacityBytes_{0};
    double targetRateBps_{0.0};
    std::size_t level_{0};
    int badStreak_{0};
    int goodStreak_{0};
    std::size_t downgrades_{0};
    std::size_t upgrades_{0};
    // Ring buffer of the last kDecisionHistoryCap transitions.
    std::vector<DegradationDecision> decisionRing_;
    std::size_t decisionHead_{0};
    std::size_t decisionsRecorded_{0};
};

}  // namespace semholo::core
