// The SemHolo public API: semantic communication channels.
//
// A channel implements one column of the paper's Figure 1 pipeline: it
// turns the sender's captured state into a wire payload (semantic
// extraction + compression) and turns received payloads back into
// renderable content (reconstruction). Four semantic channels are
// provided — traditional (mesh), keypoint, text, image/NeRF — plus the
// foveated hybrid of section 3.1.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "semholo/body/animation.hpp"
#include "semholo/body/body_model.hpp"
#include "semholo/capture/image.hpp"
#include "semholo/compress/codec2.hpp"
#include "semholo/gaze/gaze.hpp"
#include "semholo/geometry/transform.hpp"
#include "semholo/mesh/trimesh.hpp"
#include "semholo/textsem/captioner.hpp"

namespace semholo::core {

// Everything the sender-side pipeline knows about one captured frame.
struct FrameContext {
    body::Pose pose;                     // aligned ground-truth pose
    const body::BodyModel* model{};      // subject template (session constant)
    double timestamp{0.0};
    // Receiver-side viewing state, fed back to the sender for foveated
    // and rate-adaptive channels.
    geom::RigidTransform viewerHead{};
    gaze::Vec2f viewerGazeDeg{};
    // Eye-movement classification of the current gaze sample and, during
    // a saccade, the predicted landing position (section 3.1: exploit
    // saccadic omission and aim the foveal region at the landing point).
    gaze::EyeMovement viewerGazeState{gaze::EyeMovement::Fixation};
    gaze::Vec2f viewerPredictedLandingDeg{};
    // Receiver throughput feedback (bps); 0 when no estimate yet. Rate-
    // adaptive channels pick their quality level from this. When the
    // session's DegradationPolicy is enabled, the engine pre-scales this
    // value down under sustained congestion or injected link faults, so
    // channels step down their ladder without any policy awareness.
    double estimatedBandwidthBps{0.0};

    // Ground-truth capture mesh for this frame (LBS-deformed template).
    mesh::TriMesh groundTruth() const;
};

struct EncodedFrame {
    std::uint32_t frameId{};
    std::vector<std::uint8_t> data;
    // Measured wall time of extraction+encoding on this host.
    double measuredExtractMs{0.0};
    // Simulated DL inference time where the real system would run a
    // model we replaced (detectors, captioners); 0 when not applicable.
    double simulatedExtractMs{0.0};
    double extractMs() const { return measuredExtractMs + simulatedExtractMs; }
    std::size_t bytes() const { return data.size(); }
};

struct DecodedFrame {
    bool valid{false};
    std::uint32_t frameId{};
    mesh::TriMesh mesh;             // empty for image-semantics output
    capture::RGBImage view;         // rendered novel view (image channel)
    double measuredReconMs{0.0};
    double simulatedReconMs{0.0};
    double reconMs() const { return measuredReconMs + simulatedReconMs; }
    // Sparse-reconstruction work accounting, copied from the
    // reconstructor's stats by mesh-producing channels (all zero on dense
    // or image-only decode paths). Aggregated into telemetry counters.
    std::uint64_t reconBlocksSkipped{0};
    std::uint64_t reconBlocksCached{0};
    std::uint64_t reconBonesPruned{0};
    std::uint64_t reconNodesEvaluated{0};
    std::uint64_t reconCertTests{0};
    std::uint64_t reconActiveCells{0};
    std::uint64_t reconReusedTopologyBlocks{0};
};

class SemanticChannel {
public:
    virtual ~SemanticChannel() = default;
    virtual std::string name() const = 0;
    virtual EncodedFrame encode(const FrameContext& frame) = 0;
    virtual DecodedFrame decode(const EncodedFrame& encoded) = 0;
    // Reset per-session state (delta history, NeRF weights...), leaving
    // the channel as if freshly constructed.
    //
    // Contract: the session engines (runSession / runMultiUserSession,
    // serial and parallel) invoke reset() once before a channel's first
    // frame, so a channel instance may be reused across sessions without
    // the caller constructing a fresh one. Stateful channels MUST
    // implement this; stateless channels inherit the no-op.
    virtual void reset() {}
};

// ---- Data-driven channel registry ----------------------------------------
//
// One spec describes any channel the framework provides, so sweeps and
// config files iterate over data instead of hand-wired factory calls:
//
//     core::ChannelSpec spec{"keypoint", {{"reconResolution", 24}}};
//     auto channel = core::makeChannel(spec);
//
// 'kind' is one of listChannelKinds(); 'params' maps option-struct field
// names to numeric values (booleans as 0/1), with unset keys taking the
// option struct's default. makeChannel throws std::invalid_argument on
// an unknown kind or an unknown param key (catching sweep typos early).
// The typed factories below remain as thin wrappers over the same
// implementations.

struct ChannelSpec {
    std::string kind;
    std::map<std::string, double> params;
};

// Registered kinds: "adaptive-mesh", "foveated", "image", "keypoint",
// "synthetic", "text", "traditional", "vector" (stable, sorted).
std::vector<std::string> listChannelKinds();

// Accepted param keys for one kind (throws on unknown kind).
std::vector<std::string> listChannelParams(const std::string& kind);

// Build a channel from a spec. 'model' is required by model-bound kinds
// (currently "vector", which learns its PCA basis from the subject);
// other kinds ignore it.
std::unique_ptr<SemanticChannel> makeChannel(const ChannelSpec& spec,
                                             const body::BodyModel* model = nullptr);

// ---- Channel factories -------------------------------------------------

struct TraditionalOptions {
    bool compress{true};   // Draco-class codec vs raw geometry
    bool withColors{false};
};
std::unique_ptr<SemanticChannel> makeTraditionalChannel(
    const TraditionalOptions& options = {});

struct KeypointChannelOptions {
    int reconResolution{64};
    bool compressPayload{true};  // codec v2 over the 1.91 KB pose payload
    // Filter chain + entropy backend for the pose payload. The container
    // self-describes, so the decode side needs no matching options.
    compress::Codec2Options codec = compress::poseCodecDefaults();
    body::ShapeParams shape{};
    // Simulated DL extraction latency added per frame (direct RGB-D
    // detection path; see capture::DetectorCostModel).
    double simulatedDetectMs{1.8};
};
std::unique_ptr<SemanticChannel> makeKeypointChannel(
    const KeypointChannelOptions& options = {});

struct TextChannelOptions {
    int reconResolution{48};
    textsem::CaptionOptions caption{};
    body::ShapeParams shape{};
    textsem::TextCostModel cost{};
    // Reconstruct geometry on decode (off when only byte counts matter).
    bool reconstructMesh{true};
};
std::unique_ptr<SemanticChannel> makeTextChannel(const TextChannelOptions& options = {});

struct ImageChannelOptions {
    // Sender-side camera ring and image resolution (the rate-adaptation
    // knob of section 3.2; width fraction of the slimmable field tracks
    // the resolution level).
    int viewCount{3};
    int imageWidth{32};
    int imageHeight{24};
    float nerfWidthFraction{1.0f};
    int pretrainSteps{150};       // cold-start session (first frame)
    int fineTuneSteps{15};        // per-frame continuous training
    float cameraRadius{2.6f};
    float fovY{0.8f};
    std::uint64_t seed{5};
};
// The image channel keeps receiver-side NeRF state across frames (cold
// start + fine-tune); construct one per session.
std::unique_ptr<SemanticChannel> makeImageChannel(const ImageChannelOptions& options = {});

struct FoveatedOptions {
    double fovealRadiusDeg{7.5};
    int peripheralResolution{32};
    body::ShapeParams shape{};
    bool compress{true};
    // Codec v2 pipeline for the peripheral pose payload (self-describing
    // container; see KeypointChannelOptions::codec).
    compress::Codec2Options codec = compress::poseCodecDefaults();
    // Saccadic omission (section 3.1): during a saccade vision is
    // suppressed, so the foveal mesh is omitted entirely (keypoints
    // only) and the *next* foveal region is aimed at the predicted
    // saccade landing position instead of the current gaze.
    bool saccadicOmission{true};
};
std::unique_ptr<SemanticChannel> makeFoveatedChannel(const FoveatedOptions& options = {});

// Rate-adaptive traditional channel: a level-of-detail ladder built with
// quadric-error-metric simplification; each frame picks the highest LOD
// the receiver-reported throughput sustains (rate-based ABR). This is
// what "optimising traditional delivery" (section 2.1, ViVo/GROOT-style
// adaptation) looks like in our framework — the strongest fair baseline
// for the semantic channels.
struct AdaptiveMeshOptions {
    // Triangle budgets of the LOD ladder, ascending quality.
    std::vector<std::size_t> ladderTriangles{1000, 4000, 12000, 50000};
    double fps{30.0};     // used to convert bytes/frame to a bitrate
    double safety{0.9};   // ABR safety margin
};
std::unique_ptr<SemanticChannel> makeAdaptiveMeshChannel(
    const AdaptiveMeshOptions& options = {});

// Vector semantics (section 2.2's related-work baseline, Zhu et al.):
// a linear autoencoder over the subject's mesh. The "encoder" projects
// the deformed mesh onto a PCA basis fitted offline to a training
// motion; the latent vector is the payload. The paper dismisses this
// family for limited compression ratio and poor visual quality — the
// vector-semantics ablation quantifies exactly that (in-distribution it
// works, out-of-distribution articulation breaks it).
struct VectorChannelOptions {
    int latentDim{64};
    std::size_t trainingFrames{90};
    body::MotionKind trainingMotion{body::MotionKind::Talk};
    std::uint32_t trainingSeed{1};
};
// The channel learns its basis from 'model' at construction; sessions
// must use the same model instance.
std::unique_ptr<SemanticChannel> makeVectorChannel(const body::BodyModel& model,
                                                   const VectorChannelOptions& options = {});

// Synthetic cost-model channel: a deterministic payload of 'payloadBytes'
// with configurable *simulated* encode/decode stage costs and no real
// extraction or reconstruction. Exists for scheduler studies — straggler
// scenarios mixing encode-heavy and decode-heavy participants exercise
// the conference stage graph without geometry work dominating the run.
// With rateAdaptive set, the payload shrinks to fit the reported
// bandwidth estimate (bytes = min(payloadBytes, est / 8 / fps), floored
// at minBytes), so degradation ladders and arbiter targets still bite.
struct SyntheticChannelOptions {
    std::size_t payloadBytes{4096};
    double simulatedExtractMs{2.0};
    double simulatedReconMs{2.0};
    bool rateAdaptive{true};
    double fps{30.0};
    std::size_t minBytes{64};
};
std::unique_ptr<SemanticChannel> makeSyntheticChannel(
    const SyntheticChannelOptions& options = {});

}  // namespace semholo::core
