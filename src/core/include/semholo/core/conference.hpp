// SFU conference sessions: the server-mediated topology of the paper's
// semantic coordinator (and of multi-client live-telepresence systems in
// the Van Holland et al. mould). Each participant uploads through an
// uplink to the conference server; the server fans the other N-1 streams
// back out over one downlink per viewer, thinned by that viewer's
// subscription ladder; and a BandwidthArbiter computes per-user target
// rates each tick (max-min or proportional-fair over the shared ingest
// bottleneck) that feed every participant's DegradationPolicy — replacing
// the uncoordinated first-to-recover-wins dynamics of N independent
// closed loops fighting over one queue.
//
// This is the conference entry API: a ConferenceConfig of owning
// Participant descriptors replaces the legacy raw-channel-pointer vector
// of runMultiUserSession (which survives as a deprecated shim that runs
// the same engine with downlinks and arbitration off).
#pragma once

#include <functional>
#include <optional>

#include "semholo/core/session.hpp"

namespace semholo::core {

// ---- Bandwidth arbiter ---------------------------------------------------

enum class ArbiterStrategy {
    // No cross-user coordination: every user chases its own throughput
    // estimate (the legacy dynamics).
    None,
    // Max-min fair water-filling over per-user demands: unused share of
    // underloaded users is redistributed until everyone is either
    // satisfied or at the common fair share.
    MaxMin,
    // Proportional-fair: shares weighted by the inverse of each user's
    // historical delivered throughput, so participants the link has been
    // starving get priority while satisfied demands still free up share.
    ProportionalFair,
};

struct ArbiterConfig {
    ArbiterStrategy strategy{ArbiterStrategy::None};
    // Fraction of the instantaneous bottleneck rate handed out as
    // targets (headroom for packet overhead and estimate error).
    double safety{0.9};
    // Per-user floor: no target falls below this, so a user in a fault
    // window still probes at a minimal rate instead of starving forever.
    double minRateBps{64e3};
};

// Per-tick target-rate computation. Pure function of its inputs (no
// internal state), exposed so the allocation properties are unit-testable
// without running a conference.
class BandwidthArbiter {
public:
    explicit BandwidthArbiter(const ArbiterConfig& config) : config_(config) {}

    // Allocate 'capacityBps * safety' across users. demandBps[u] is the
    // user's offered rate at current quality (<= 0 means unknown: treated
    // as greedy). meanThroughputBps[u] is the user's historical delivered
    // throughput (<= 0 when no estimate yet; only ProportionalFair
    // consults it). Returns one target per user, each floored at
    // minRateBps; for MaxMin/ProportionalFair the targets sum to at most
    // capacity * safety (up to that floor).
    std::vector<double> allocate(double capacityBps,
                                 const std::vector<double>& demandBps,
                                 const std::vector<double>& meanThroughputBps) const;

    const ArbiterConfig& config() const { return config_; }

private:
    ArbiterConfig config_;
};

// ---- Per-viewer subscription ladder --------------------------------------

// One rung subscribes the next 'streams' remote streams (in ascending
// source order, self excluded) at 'byteScale' of their wire size — the
// server forwards a thinned representation for rungs below full quality.
struct SubscriptionRung {
    std::size_t streams{std::numeric_limits<std::size_t>::max()};
    double byteScale{1.0};
};

struct SubscriptionLadder {
    // Empty = one implicit rung: every remote stream at full quality.
    std::vector<SubscriptionRung> rungs;

    // Byte scale for the remote stream at 'position' (0-based index into
    // this viewer's candidate list), or nullopt when the ladder does not
    // subscribe to it (positions past the last rung are unsubscribed).
    std::optional<double> scaleForPosition(std::size_t position) const;
};

// ---- Conference configuration --------------------------------------------

// One participant: which channel they publish (built on ChannelSpec, so
// conferences are data), their motion/viewing state, per-user link and
// degradation overrides, and their downlink subscription ladder. Unset
// optionals inherit the conference-wide SessionConfig defaults.
struct Participant {
    ChannelSpec channel;
    // Escape hatch for channels whose options a ChannelSpec cannot
    // express (vector-valued params like LOD ladders): when set, used
    // instead of 'channel'.
    std::function<std::unique_ptr<SemanticChannel>(const body::BodyModel&)>
        channelFactory;
    std::optional<std::uint32_t> motionSeed;  // default: session seed + index
    std::optional<geom::RigidTransform> viewerHead;
    // Per-user uplink (only consulted when sharedUplink is false).
    std::optional<net::LinkConfig> uplink;
    // This viewer's downlink from the server (default: ConferenceConfig::
    // downlink).
    std::optional<net::LinkConfig> downlink;
    // Per-user degradation ladder (default: session.degradation).
    std::optional<DegradationConfig> degradation;
    SubscriptionLadder subscription;
};

struct ConferenceConfig {
    std::vector<Participant> participants;
    // Conference-wide defaults: fps, frames, timing model, transfer
    // options, the shared-uplink LinkConfig (session.link), the default
    // degradation ladder, and workers for the parallel engine.
    SessionConfig session;
    ArbiterConfig arbiter;
    // true: all uplinks traverse one bottleneck LinkSimulator built from
    // session.link (the server-ingest model, where participants congest
    // each other). false: each participant gets their own uplink from
    // Participant::uplink (falling back to session.link).
    bool sharedUplink{true};
    // Model the downlink fan-out: one LinkSimulator per viewer carrying
    // the other N-1 streams, with per-(viewer, source) accounting in
    // MultiSessionStats::downlinks.
    bool enableDownlinks{true};
    // Default per-viewer downlink when Participant::downlink is unset.
    net::LinkConfig downlink{};
    // Maximum capture ticks in flight in the event-driven stage graph: a
    // user's tick f encode is released once its own tick f-1 feedback
    // (and decode) landed AND tick f-depth fully retired, so fast users
    // pipeline ahead of stragglers by up to this many ticks. 1 reproduces
    // the legacy per-tick barrier schedule. The value changes scheduling
    // only, never results: serial and pipelined runs are byte-identical
    // at any depth and any worker count.
    std::size_t pipelineDepth{4};
};

// Run an SFU conference: constructs each participant's channel from its
// descriptor (makeChannel, or the factory when set), then runs the
// frame-tick scheduler — serial or parallel by session.workers, with the
// same byte-identity contract as runSession. Per-downlink stream
// accounting lands in MultiSessionStats::downlinks; arbiter targets in
// MultiSessionStats::fairness.
MultiSessionStats runConference(const ConferenceConfig& config,
                                const body::BodyModel& model);

}  // namespace semholo::core
