// Parallel session engine. Multi-user runs delegate to the event-driven
// stage graph (multiuser_session.cpp / stage_graph.hpp): per-(tick, user)
// nodes released by their dependency edges, with each link's entry order
// preserved by a sequenced ticket chain fed in exactly the serial
// engine's (frame, user) order, so congestion semantics are identical
// and under TimingModel::Simulated the engine is bit-for-bit equivalent
// to the serial one (asserted by tests/core/test_parallel_session.cpp,
// tests/core/test_conference.cpp and tests/core/test_stage_graph.cpp).
//
// Single-user runs keep the sender/link/receiver loop on the calling
// thread (one channel's encode/decode state is inherently sequential)
// and fan the expensive per-frame quality evaluation out to the pool.
#include <chrono>
#include <future>
#include <utility>
#include <vector>

#include "semholo/core/session.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/net/abr.hpp"
#include "session_internal.hpp"

namespace semholo::core::internal {

namespace {

struct QualityResult {
    double chamfer{};
    double wallMs{};
};

}  // namespace

SessionStats runSessionParallel(SemanticChannel& channel,
                                const body::BodyModel& model,
                                const SessionConfig& config,
                                std::size_t workers) {
    SessionStats stats;
    stats.frames.reserve(config.frames);
    channel.reset();
    ThreadPool pool(workers);
    net::LinkSimulator link(config.link);
    observeLink(link, stats.telemetry);
    const body::MotionGenerator motion(config.motion, model.shape(),
                                       config.motionSeed);

    double extractorFreeAt = 0.0;
    double reconFreeAt = 0.0;
    net::HarmonicEstimator throughput(5);
    DegradationPolicy degrade(config.degradation, config.fps,
                              config.link.queueCapacityBytes);
    // Deferred quality evaluations: (frame index, pending result).
    std::vector<std::pair<std::size_t, std::future<QualityResult>>> pending;

    for (std::size_t f = 0; f < config.frames; ++f) {
        const double captureTime = static_cast<double>(f) / config.fps;
        FrameContext ctx;
        ctx.pose = motion.poseAt(captureTime);
        ctx.pose.frameId = static_cast<std::uint32_t>(f);
        ctx.model = &model;
        ctx.timestamp = captureTime;
        ctx.viewerHead = config.viewerHead;
        if (throughput.hasEstimate())
            ctx.estimatedBandwidthBps =
                throughput.estimate() * degrade.bandwidthScale();

        FrameStats frame;
        frame.frameId = ctx.pose.frameId;

        if (config.dropWhenBusy && extractorFreeAt > captureTime) {
            frame.droppedAtSender = true;
            stats.frames.push_back(std::move(frame));
            continue;
        }

        const EncodedFrame encoded = channel.encode(ctx);
        frame.bytes = encoded.bytes();
        frame.extractMs = encoded.extractMs();
        const double sendTime = std::max(captureTime, extractorFreeAt) +
                                clockExtractMs(encoded, config.timing) / 1000.0;
        extractorFreeAt = sendTime;

        const std::size_t queuedAtSend =
            config.degradation.enabled ? link.queuedBytesAt(sendTime) : 0;
        const auto transfer =
            link.sendMessage(encoded.bytes(), sendTime, config.transfer);
        frame.delivered = transfer.delivered;
        frame.transferMs = transfer.durationS() * 1000.0;
        if (transfer.delivered && encoded.bytes() > 0) {
            const double serialS = std::max(
                1e-5, transfer.durationS() - config.link.propagationDelayS);
            throughput.addSample(static_cast<double>(encoded.bytes()) * 8.0 /
                                 serialS);
        }
        if (config.degradation.enabled) {
            const DegradationAction action = degrade.observe(
                frame.frameId,
                {transfer.delivered, transfer.durationS(),
                 transfer.unrecoveredPackets, transfer.droppedAtQueue,
                 transfer.faultEvents, queuedAtSend});
            if (action == DegradationAction::StepDown)
                ++stats.telemetry.counters.degradations;
            else if (action == DegradationAction::StepUp)
                ++stats.telemetry.counters.upgrades;
        }

        if (transfer.delivered) {
            const double arrival = transfer.completionTime;
            if (config.dropWhenBusy && reconFreeAt > arrival) {
                frame.droppedAtReceiver = true;
                stats.frames.push_back(std::move(frame));
                continue;
            }
            DecodedFrame decoded = channel.decode(encoded);
            frame.decoded = decoded.valid;
            frame.reconMs = decoded.reconMs();
            copyReconCounters(frame, decoded);
            const double renderTime = std::max(arrival, reconFreeAt) +
                                      clockReconMs(decoded, config.timing) / 1000.0;
            reconFreeAt = renderTime;
            frame.e2eMs = (renderTime - captureTime) * 1000.0;
            if (decoded.valid && config.qualityEvalInterval > 0 &&
                f % config.qualityEvalInterval == 0 && !decoded.mesh.empty()) {
                pending.emplace_back(
                    stats.frames.size(),
                    pool.submit([&model, pose = ctx.pose,
                                 decodedMesh = std::move(decoded.mesh),
                                 samples = config.qualitySamples] {
                        FrameStats scratch;
                        evaluateQuality(scratch, model, pose, decodedMesh,
                                        samples);
                        return QualityResult{scratch.chamfer, scratch.qualityMs};
                    }));
            }
        } else {
            frame.e2eMs = (transfer.completionTime - captureTime) * 1000.0;
        }
        stats.frames.push_back(std::move(frame));
    }

    for (auto& [index, future] : pending) {
        const QualityResult result = future.get();
        stats.frames[index].chamfer = result.chamfer;
        stats.frames[index].qualityMs = result.wallMs;
    }
    finalizeSessionStats(stats, config);
    return stats;
}

}  // namespace semholo::core::internal
