// Parallel session engine: per-user sender/receiver pipelines run as
// worker-pool tasks; the shared-bottleneck LinkSimulator stays a single
// sequenced stage fed in exactly the serial engine's (frame, user)
// order, so congestion semantics are identical. Under
// TimingModel::Simulated the whole schedule is deterministic and the
// engine is bit-for-bit equivalent to the serial one (asserted by
// tests/core/test_parallel_session.cpp).
//
// Structure per multi-user run:
//
//   phase A (parallel, one task per user)   encode every frame, advance
//                                           the per-user extractor clock,
//                                           mark sender drops
//   phase B (sequenced, coordinator thread) shared link transfer in
//                                           capture order, telemetry
//                                           queue-depth sampling
//   phase C (parallel, one task per user)   decode delivered frames,
//                                           advance the recon clock,
//                                           Chamfer quality sampling
//
// Single-user runs keep the sender/link/receiver loop on the calling
// thread (one channel's encode/decode state is inherently sequential)
// and fan the expensive per-frame quality evaluation out to the pool.
#include <chrono>
#include <future>
#include <utility>
#include <vector>

#include "semholo/core/session.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/net/abr.hpp"
#include "session_internal.hpp"

namespace semholo::core::internal {

namespace {

struct QualityResult {
    double chamfer{};
    double wallMs{};
};

struct PipelinedFrame {
    FrameStats frame;
    EncodedFrame encoded;
    body::Pose pose;   // retained for receiver-side quality evaluation
    double captureTime{};
    double sendTime{};   // valid when not dropped at sender
    net::TransferResult transfer;
};

}  // namespace

SessionStats runSessionParallel(SemanticChannel& channel,
                                const body::BodyModel& model,
                                const SessionConfig& config,
                                std::size_t workers) {
    SessionStats stats;
    stats.frames.reserve(config.frames);
    channel.reset();
    ThreadPool pool(workers);
    net::LinkSimulator link(config.link);
    observeLink(link, stats.telemetry);
    const body::MotionGenerator motion(config.motion, model.shape(),
                                       config.motionSeed);

    double extractorFreeAt = 0.0;
    double reconFreeAt = 0.0;
    net::HarmonicEstimator throughput(5);
    DegradationPolicy degrade(config.degradation, config.fps,
                              config.link.queueCapacityBytes);
    // Deferred quality evaluations: (frame index, pending result).
    std::vector<std::pair<std::size_t, std::future<QualityResult>>> pending;

    for (std::size_t f = 0; f < config.frames; ++f) {
        const double captureTime = static_cast<double>(f) / config.fps;
        FrameContext ctx;
        ctx.pose = motion.poseAt(captureTime);
        ctx.pose.frameId = static_cast<std::uint32_t>(f);
        ctx.model = &model;
        ctx.timestamp = captureTime;
        ctx.viewerHead = config.viewerHead;
        if (throughput.hasEstimate())
            ctx.estimatedBandwidthBps =
                throughput.estimate() * degrade.bandwidthScale();

        FrameStats frame;
        frame.frameId = ctx.pose.frameId;

        if (config.dropWhenBusy && extractorFreeAt > captureTime) {
            frame.droppedAtSender = true;
            stats.frames.push_back(std::move(frame));
            continue;
        }

        const EncodedFrame encoded = channel.encode(ctx);
        frame.bytes = encoded.bytes();
        frame.extractMs = encoded.extractMs();
        const double sendTime = std::max(captureTime, extractorFreeAt) +
                                clockExtractMs(encoded, config.timing) / 1000.0;
        extractorFreeAt = sendTime;

        const std::size_t queuedAtSend =
            config.degradation.enabled ? link.queuedBytesAt(sendTime) : 0;
        const auto transfer =
            link.sendMessage(encoded.bytes(), sendTime, config.transfer);
        frame.delivered = transfer.delivered;
        frame.transferMs = transfer.durationS() * 1000.0;
        if (transfer.delivered && encoded.bytes() > 0) {
            const double serialS = std::max(
                1e-5, transfer.durationS() - config.link.propagationDelayS);
            throughput.addSample(static_cast<double>(encoded.bytes()) * 8.0 /
                                 serialS);
        }
        if (config.degradation.enabled) {
            const DegradationAction action = degrade.observe(
                frame.frameId,
                {transfer.delivered, transfer.durationS(),
                 transfer.unrecoveredPackets, transfer.droppedAtQueue,
                 transfer.faultEvents, queuedAtSend});
            if (action == DegradationAction::StepDown)
                ++stats.telemetry.counters.degradations;
            else if (action == DegradationAction::StepUp)
                ++stats.telemetry.counters.upgrades;
        }

        if (transfer.delivered) {
            const double arrival = transfer.completionTime;
            if (config.dropWhenBusy && reconFreeAt > arrival) {
                frame.droppedAtReceiver = true;
                stats.frames.push_back(std::move(frame));
                continue;
            }
            DecodedFrame decoded = channel.decode(encoded);
            frame.decoded = decoded.valid;
            frame.reconMs = decoded.reconMs();
            copyReconCounters(frame, decoded);
            const double renderTime = std::max(arrival, reconFreeAt) +
                                      clockReconMs(decoded, config.timing) / 1000.0;
            reconFreeAt = renderTime;
            frame.e2eMs = (renderTime - captureTime) * 1000.0;
            if (decoded.valid && config.qualityEvalInterval > 0 &&
                f % config.qualityEvalInterval == 0 && !decoded.mesh.empty()) {
                pending.emplace_back(
                    stats.frames.size(),
                    pool.submit([&model, pose = ctx.pose,
                                 decodedMesh = std::move(decoded.mesh),
                                 samples = config.qualitySamples] {
                        FrameStats scratch;
                        evaluateQuality(scratch, model, pose, decodedMesh,
                                        samples);
                        return QualityResult{scratch.chamfer, scratch.qualityMs};
                    }));
            }
        } else {
            frame.e2eMs = (transfer.completionTime - captureTime) * 1000.0;
        }
        stats.frames.push_back(std::move(frame));
    }

    for (auto& [index, future] : pending) {
        const QualityResult result = future.get();
        stats.frames[index].chamfer = result.chamfer;
        stats.frames[index].qualityMs = result.wallMs;
    }
    finalizeSessionStats(stats, config);
    return stats;
}

MultiSessionStats runMultiUserSessionParallel(
    const std::vector<SemanticChannel*>& channels, const body::BodyModel& model,
    const SessionConfig& base, std::size_t workers) {
    MultiSessionStats out;
    const std::size_t users = channels.size();
    out.perUser.resize(users);
    if (users == 0) return out;

    ThreadPool pool(workers);
    std::vector<std::vector<PipelinedFrame>> perUser(users);

    // Phase A: independent sender pipelines. Each user's extractor clock
    // only depends on their own encode history, so users fan out freely.
    pool.parallelFor(users, [&](std::size_t u) {
        channels[u]->reset();
        const body::MotionGenerator motion(
            base.motion, model.shape(),
            base.motionSeed + static_cast<std::uint32_t>(u));
        auto& mine = perUser[u];
        mine.resize(base.frames);
        double extractorFreeAt = 0.0;
        for (std::size_t f = 0; f < base.frames; ++f) {
            PipelinedFrame& p = mine[f];
            p.captureTime = static_cast<double>(f) / base.fps;
            p.frame.frameId = static_cast<std::uint32_t>(f);
            if (base.dropWhenBusy && extractorFreeAt > p.captureTime) {
                p.frame.droppedAtSender = true;
                continue;
            }
            FrameContext ctx;
            ctx.pose = motion.poseAt(p.captureTime);
            ctx.pose.frameId = p.frame.frameId;
            ctx.model = &model;
            ctx.timestamp = p.captureTime;
            ctx.viewerHead = base.viewerHead;
            p.encoded = channels[u]->encode(ctx);
            p.pose = std::move(ctx.pose);
            p.frame.bytes = p.encoded.bytes();
            p.frame.extractMs = p.encoded.extractMs();
            p.sendTime = std::max(p.captureTime, extractorFreeAt) +
                         clockExtractMs(p.encoded, base.timing) / 1000.0;
            extractorFreeAt = p.sendTime;
        }
    });

    // Phase B: the shared bottleneck is a sequenced stage — messages
    // enter in the serial engine's (frame, user) order so queueing,
    // loss RNG draws and congestion interleave identically.
    net::LinkSimulator shared(base.link);
    observeLink(shared, out.telemetry);
    for (std::size_t f = 0; f < base.frames; ++f) {
        for (std::size_t u = 0; u < users; ++u) {
            PipelinedFrame& p = perUser[u][f];
            if (p.frame.droppedAtSender) continue;
            p.transfer =
                shared.sendMessage(p.frame.bytes, p.sendTime, base.transfer);
        }
    }

    // Phase C: independent receiver pipelines (decode + quality eval);
    // the recon clock only depends on the user's own arrivals.
    pool.parallelFor(users, [&](std::size_t u) {
        double reconFreeAt = 0.0;
        SessionStats& s = out.perUser[u];
        s.frames.reserve(base.frames);
        for (std::size_t f = 0; f < base.frames; ++f) {
            PipelinedFrame& p = perUser[u][f];
            FrameStats frame = std::move(p.frame);
            if (frame.droppedAtSender) {
                s.frames.push_back(std::move(frame));
                continue;
            }
            frame.delivered = p.transfer.delivered;
            frame.transferMs = p.transfer.durationS() * 1000.0;
            if (p.transfer.delivered) {
                const double arrival = p.transfer.completionTime;
                if (base.dropWhenBusy && reconFreeAt > arrival) {
                    frame.droppedAtReceiver = true;
                } else {
                    const DecodedFrame decoded = channels[u]->decode(p.encoded);
                    frame.decoded = decoded.valid;
                    frame.reconMs = decoded.reconMs();
                    copyReconCounters(frame, decoded);
                    const double renderTime =
                        std::max(arrival, reconFreeAt) +
                        clockReconMs(decoded, base.timing) / 1000.0;
                    reconFreeAt = renderTime;
                    frame.e2eMs = (renderTime - p.captureTime) * 1000.0;
                    if (decoded.valid && base.qualityEvalInterval > 0 &&
                        f % base.qualityEvalInterval == 0 &&
                        !decoded.mesh.empty()) {
                        evaluateQuality(frame, model, p.pose, decoded.mesh,
                                        base.qualitySamples);
                    }
                }
            }
            s.frames.push_back(std::move(frame));
        }
    });

    finalizeMultiSessionStats(out, base);
    return out;
}

}  // namespace semholo::core::internal
