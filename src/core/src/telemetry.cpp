#include "semholo/core/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

namespace semholo::core::telemetry {

Histogram::Histogram(const Histogram& other) {
    std::lock_guard<std::mutex> lock(other.mutex_);
    samples_ = other.samples_;
}

Histogram& Histogram::operator=(const Histogram& other) {
    if (this == &other) return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    samples_ = other.samples_;
    sorted_.clear();
    sortedValid_ = false;
    return *this;
}

void Histogram::record(double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(value);
    sortedValid_ = false;
}

void Histogram::merge(const Histogram& other) {
    if (this == &other) {
        // Self-merge duplicates the sample set; copy first so the insert
        // does not read the vector it is growing.
        std::lock_guard<std::mutex> lock(mutex_);
        const std::vector<double> copy = samples_;
        samples_.insert(samples_.end(), copy.begin(), copy.end());
        sortedValid_ = false;
        return;
    }
    std::scoped_lock lock(mutex_, other.mutex_);
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sortedValid_ = false;
}

std::size_t Histogram::count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
}

bool Histogram::empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.empty();
}

double Histogram::sum() const {
    std::lock_guard<std::mutex> lock(mutex_);
    double s = 0.0;
    for (const double v : samples_) s += v;
    return s;
}

double Histogram::mean() const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (const double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
}

double Histogram::min() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.empty() ? 0.0
                            : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.empty() ? 0.0
                            : *std::max_element(samples_.begin(), samples_.end());
}

const std::vector<double>& Histogram::sortedLocked() const {
    if (!sortedValid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
    return sorted_;
}

double Histogram::percentile(double p) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty()) return 0.0;
    const auto& s = sortedLocked();
    const double clamped = std::clamp(p, 0.0, 100.0);
    // Nearest-rank: ceil(p/100 * N), 1-indexed.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(s.size())));
    return s[rank == 0 ? 0 : rank - 1];
}

void Counters::merge(const Counters& other) {
    framesCaptured += other.framesCaptured;
    framesDelivered += other.framesDelivered;
    framesDecoded += other.framesDecoded;
    dropsAtSender += other.dropsAtSender;
    dropsAtReceiver += other.dropsAtReceiver;
    packets += other.packets;
    packetsLost += other.packetsLost;
    packetsDelivered += other.packetsDelivered;
    packetsUnrecovered += other.packetsUnrecovered;
    retransmissions += other.retransmissions;
    queueDrops += other.queueDrops;
    bytesSent += other.bytesSent;
    faultEvents += other.faultEvents;
    degradations += other.degradations;
    upgrades += other.upgrades;
    reconBlocksSkipped += other.reconBlocksSkipped;
    reconBlocksCached += other.reconBlocksCached;
    reconBonesPruned += other.reconBonesPruned;
    reconNodesEvaluated += other.reconNodesEvaluated;
    reconCertTests += other.reconCertTests;
    reconActiveCells += other.reconActiveCells;
    reconReusedTopologyBlocks += other.reconReusedTopologyBlocks;
}

void SessionTelemetry::merge(const SessionTelemetry& other) {
    encodeMs.merge(other.encodeMs);
    transferMs.merge(other.transferMs);
    decodeMs.merge(other.decodeMs);
    qualityMs.merge(other.qualityMs);
    e2eMs.merge(other.e2eMs);
    bytesPerFrame.merge(other.bytesPerFrame);
    queueDepthBytes.merge(other.queueDepthBytes);
    counters.merge(other.counters);
}

namespace {

std::string formatNumber(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void appendStage(JsonWriter& w, const char* name, const Histogram& h) {
    w.beginObject(name)
        .field("count", static_cast<std::uint64_t>(h.count()))
        .field("mean", h.mean())
        .field("min", h.min())
        .field("max", h.max())
        .field("p50", h.p50())
        .field("p95", h.p95())
        .field("p99", h.p99())
        .endObject();
}

}  // namespace

std::string toJsonValue(const SessionTelemetry& t) {
    JsonWriter w;
    w.beginObject();
    w.beginObject("stages");
    appendStage(w, "encode_ms", t.encodeMs);
    appendStage(w, "transfer_ms", t.transferMs);
    appendStage(w, "decode_ms", t.decodeMs);
    appendStage(w, "quality_ms", t.qualityMs);
    appendStage(w, "e2e_ms", t.e2eMs);
    appendStage(w, "bytes_per_frame", t.bytesPerFrame);
    appendStage(w, "queue_depth_bytes", t.queueDepthBytes);
    w.endObject();
    w.beginObject("counters")
        .field("frames_captured", t.counters.framesCaptured)
        .field("frames_delivered", t.counters.framesDelivered)
        .field("frames_decoded", t.counters.framesDecoded)
        .field("drops_at_sender", t.counters.dropsAtSender)
        .field("drops_at_receiver", t.counters.dropsAtReceiver)
        .field("packets", t.counters.packets)
        .field("packets_lost", t.counters.packetsLost)
        .field("packets_delivered", t.counters.packetsDelivered)
        .field("packets_unrecovered", t.counters.packetsUnrecovered)
        .field("retransmissions", t.counters.retransmissions)
        .field("queue_drops", t.counters.queueDrops)
        .field("bytes_sent", t.counters.bytesSent)
        .field("fault_events", t.counters.faultEvents)
        .field("degradations", t.counters.degradations)
        .field("upgrades", t.counters.upgrades)
        .field("recon_blocks_skipped", t.counters.reconBlocksSkipped)
        .field("recon_blocks_cached", t.counters.reconBlocksCached)
        .field("recon_bones_pruned", t.counters.reconBonesPruned)
        .field("recon_nodes_evaluated", t.counters.reconNodesEvaluated)
        .field("recon_cert_tests", t.counters.reconCertTests)
        .field("recon_active_cells", t.counters.reconActiveCells)
        .field("recon_reused_topology_blocks", t.counters.reconReusedTopologyBlocks)
        .endObject();
    w.endObject();
    return w.str();
}

std::string SessionTelemetry::toJson(int) const { return toJsonValue(*this); }

bool SessionTelemetry::writeJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << toJson() << "\n";
    return static_cast<bool>(out);
}

// ---- JsonWriter ----------------------------------------------------------

void JsonWriter::comma() {
    if (!needComma_.empty()) {
        if (needComma_.back()) out_ += ",";
        needComma_.back() = true;
    }
}

void JsonWriter::keyPrefix(const std::string& key) {
    comma();
    if (!key.empty()) {
        out_ += "\"" + key + "\":";
    }
}

JsonWriter& JsonWriter::beginObject(const std::string& key) {
    keyPrefix(key);
    out_ += "{";
    needComma_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::endObject() {
    out_ += "}";
    if (!needComma_.empty()) needComma_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::beginArray(const std::string& key) {
    keyPrefix(key);
    out_ += "[";
    needComma_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::endArray() {
    out_ += "]";
    if (!needComma_.empty()) needComma_.pop_back();
    return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
    keyPrefix(key);
    out_ += formatNumber(value);
    return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, std::uint64_t value) {
    keyPrefix(key);
    out_ += std::to_string(value);
    return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const std::string& value) {
    keyPrefix(key);
    out_ += "\"";
    for (const char c : value) {
        switch (c) {
            case '"': out_ += "\\\""; break;
            case '\\': out_ += "\\\\"; break;
            case '\n': out_ += "\\n"; break;
            case '\t': out_ += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
        }
    }
    out_ += "\"";
    return *this;
}

JsonWriter& JsonWriter::raw(const std::string& key, const std::string& jsonValue) {
    keyPrefix(key);
    out_ += jsonValue;
    return *this;
}

}  // namespace semholo::core::telemetry
