// Multi-user session engine: a frame-tick feedback scheduler. The old
// engines ran three whole-session phases (encode every frame of every
// user, then carry everything over the link, then decode), which made
// per-frame feedback impossible — SessionConfig::degradation was
// silently ignored for conferences and rate-adaptive channels never saw
// a throughput sample. This engine restores the single-user feedback
// contract at conference scale by scheduling per capture tick:
//
//   tick f:  encode phase    every user encodes frame f (worker-pool
//                            fan-out when a pool is supplied; each
//                            user's extractor clock and channel state
//                            are theirs alone)
//            link phase      the shared LinkSimulator carries the
//                            tick's messages in user order on the
//                            coordinating thread — identical FIFO
//                            interleaving, loss RNG draws and
//                            congestion for serial and parallel runs —
//                            and, per message, each user's throughput
//                            estimator + DegradationPolicy observe that
//                            user's own outcome
//            decode phase    every user decodes their delivered frame,
//                            advances their recon clock and runs the
//                            (expensive) Chamfer quality eval
//
// Feedback observed at tick f scales the bandwidth estimate the user's
// channel sees at tick f+1, exactly like the single-user engines. Serial
// (pool == nullptr) and parallel runs execute the same per-user call
// sequence in the same order, so under TimingModel::Simulated they are
// byte-identical at any worker count (tests/core/
// test_multiuser_degradation.cpp stresses this with faults + degradation
// at workers 1/2/8).
//
// The shared link attributes every message to its sender via
// LinkSimulator's senderTag, so packet/queue counters land in that
// user's telemetry; MultiSessionStats::fairness summarises per-user
// delivery ratio, bandwidth share and degradation transitions.
#include <utility>
#include <vector>

#include "semholo/core/session.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/net/abr.hpp"
#include "session_internal.hpp"

namespace semholo::core::internal {

namespace {

// One user's frame in flight during a tick.
struct TickFrame {
    FrameStats frame;
    EncodedFrame encoded;
    body::Pose pose;  // retained for receiver-side quality evaluation
    double captureTime{};
    double sendTime{};  // valid when sent
    bool sent{false};
    net::TransferResult transfer;
};

// Per-user state that persists across ticks: the pipeline availability
// clocks and the closed-loop feedback (throughput estimator +
// degradation policy) every single-user session also carries.
struct UserState {
    double extractorFreeAt{0.0};
    double reconFreeAt{0.0};
    net::HarmonicEstimator throughput{5};
    DegradationPolicy degrade;

    UserState(const DegradationConfig& config, double fps,
              std::size_t queueCapacityBytes)
        : degrade(config, fps, queueCapacityBytes) {}
};

void fillFairness(MultiSessionStats& out, const std::vector<UserState>& state) {
    const std::size_t users = out.perUser.size();
    double totalBytes = 0.0;
    std::vector<double> userBytes(users, 0.0);
    for (std::size_t u = 0; u < users; ++u) {
        for (const FrameStats& frame : out.perUser[u].frames) {
            if (frame.droppedAtSender) continue;
            userBytes[u] += static_cast<double>(frame.bytes);
        }
        totalBytes += userBytes[u];
    }
    out.fairness.resize(users);
    double ratioSum = 0.0, ratioSqSum = 0.0;
    for (std::size_t u = 0; u < users; ++u) {
        const SessionStats& s = out.perUser[u];
        UserFairnessStats& f = out.fairness[u];
        f.user = u;
        f.capturedFrames = s.frames.size();
        f.deliveredFrames = s.deliveredFrames;
        f.deliveryRatio = f.capturedFrames > 0
                              ? static_cast<double>(f.deliveredFrames) /
                                    static_cast<double>(f.capturedFrames)
                              : 0.0;
        f.bandwidthMbps = s.bandwidthMbps;
        f.bandwidthShare = totalBytes > 0.0 ? userBytes[u] / totalBytes : 0.0;
        f.meanE2eMs = s.meanE2eMs;
        f.degradations = s.telemetry.counters.degradations;
        f.upgrades = s.telemetry.counters.upgrades;
        f.finalDegradationLevel = state[u].degrade.level();
        ratioSum += f.deliveryRatio;
        ratioSqSum += f.deliveryRatio * f.deliveryRatio;
    }
    // Jain's index over delivery ratios; all-equal (including all-zero)
    // counts as perfectly fair.
    const double denom = static_cast<double>(users) * ratioSqSum;
    out.fairnessIndex = denom > 0.0 ? ratioSum * ratioSum / denom : 1.0;
}

}  // namespace

MultiSessionStats runMultiUserSessionTicked(
    const std::vector<SemanticChannel*>& channels, const body::BodyModel& model,
    const SessionConfig& base, ThreadPool* pool) {
    MultiSessionStats out;
    const std::size_t users = channels.size();
    out.perUser.resize(users);
    if (users == 0) return out;

    net::LinkSimulator shared(base.link);
    // Attribute every message's packet/queue counters to its sender;
    // finalizeMultiSessionStats merges per-user telemetry back into
    // out.telemetry, so the aggregate still equals the link's totals.
    shared.setObserver([&out](const net::TransferResult& r,
                              std::size_t queuedBytes) {
        telemetry::SessionTelemetry& t =
            out.perUser[static_cast<std::size_t>(r.senderTag)].telemetry;
        t.counters.packets += r.packets;
        t.counters.packetsLost += r.lostPackets;
        t.counters.packetsDelivered += r.deliveredPackets;
        t.counters.packetsUnrecovered += r.unrecoveredPackets;
        t.counters.retransmissions += r.retransmissions;
        t.counters.queueDrops += r.droppedAtQueue;
        t.counters.bytesSent += r.bytes;
        t.counters.faultEvents += r.faultEvents;
        t.queueDepthBytes.record(static_cast<double>(queuedBytes));
    });

    std::vector<body::MotionGenerator> motions;
    std::vector<UserState> state;
    motions.reserve(users);
    state.reserve(users);
    for (std::size_t u = 0; u < users; ++u) {
        channels[u]->reset();
        motions.emplace_back(base.motion, model.shape(),
                             base.motionSeed + static_cast<std::uint32_t>(u));
        state.emplace_back(base.degradation, base.fps,
                           base.link.queueCapacityBytes);
        out.perUser[u].frames.reserve(base.frames);
    }

    std::vector<TickFrame> tick(users);
    const auto forEachUser = [&](auto&& fn) {
        if (pool != nullptr)
            pool->parallelFor(users, fn);
        else
            for (std::size_t u = 0; u < users; ++u) fn(u);
    };

    for (std::size_t f = 0; f < base.frames; ++f) {
        const double captureTime = static_cast<double>(f) / base.fps;

        // Encode phase: each user's encode touches only their own
        // channel, motion generator, clocks and feedback state.
        forEachUser([&](std::size_t u) {
            TickFrame& p = tick[u];
            p = TickFrame{};
            p.captureTime = captureTime;
            p.frame.frameId = static_cast<std::uint32_t>(f);
            UserState& us = state[u];
            if (base.dropWhenBusy && us.extractorFreeAt > captureTime) {
                p.frame.droppedAtSender = true;
                return;
            }
            FrameContext ctx;
            ctx.pose = motions[u].poseAt(captureTime);
            ctx.pose.frameId = p.frame.frameId;
            ctx.model = &model;
            ctx.timestamp = captureTime;
            ctx.viewerHead = base.viewerHead;
            if (us.throughput.hasEstimate())
                ctx.estimatedBandwidthBps =
                    us.throughput.estimate() * us.degrade.bandwidthScale();
            p.encoded = channels[u]->encode(ctx);
            p.pose = std::move(ctx.pose);
            p.frame.bytes = p.encoded.bytes();
            p.frame.extractMs = p.encoded.extractMs();
            p.sendTime = std::max(captureTime, us.extractorFreeAt) +
                         clockExtractMs(p.encoded, base.timing) / 1000.0;
            us.extractorFreeAt = p.sendTime;
            p.sent = true;
        });

        // Link + feedback phase: sequenced on the coordinating thread in
        // user order — the same (frame, user) interleaving the serial
        // engine always had, so FIFO queueing, loss RNG draws and
        // congestion are engine-independent. Each message's outcome
        // feeds that user's estimator and degradation policy before the
        // next tick encodes.
        for (std::size_t u = 0; u < users; ++u) {
            TickFrame& p = tick[u];
            if (!p.sent) continue;
            UserState& us = state[u];
            const std::size_t queuedAtSend =
                base.degradation.enabled ? shared.queuedBytesAt(p.sendTime) : 0;
            p.transfer = shared.sendMessage(p.frame.bytes, p.sendTime,
                                            base.transfer, u);
            p.frame.delivered = p.transfer.delivered;
            p.frame.transferMs = p.transfer.durationS() * 1000.0;
            if (p.transfer.delivered && p.frame.bytes > 0) {
                // Serialization-dominated throughput sample (propagation
                // subtracted), as in the single-user engines.
                const double serialS = std::max(
                    1e-5, p.transfer.durationS() - base.link.propagationDelayS);
                us.throughput.addSample(static_cast<double>(p.frame.bytes) *
                                        8.0 / serialS);
            }
            if (base.degradation.enabled) {
                const DegradationAction action = us.degrade.observe(
                    p.frame.frameId,
                    {p.transfer.delivered, p.transfer.durationS(),
                     p.transfer.unrecoveredPackets, p.transfer.droppedAtQueue,
                     p.transfer.faultEvents, queuedAtSend});
                if (action == DegradationAction::StepDown)
                    ++out.perUser[u].telemetry.counters.degradations;
                else if (action == DegradationAction::StepUp)
                    ++out.perUser[u].telemetry.counters.upgrades;
            }
        }

        // Decode phase: each user decodes their own arrival, advances
        // their recon clock and (when sampled) runs the Chamfer eval.
        forEachUser([&](std::size_t u) {
            TickFrame& p = tick[u];
            SessionStats& s = out.perUser[u];
            FrameStats frame = std::move(p.frame);
            if (frame.droppedAtSender) {
                s.frames.push_back(std::move(frame));
                return;
            }
            UserState& us = state[u];
            if (p.transfer.delivered) {
                const double arrival = p.transfer.completionTime;
                if (base.dropWhenBusy && us.reconFreeAt > arrival) {
                    frame.droppedAtReceiver = true;
                } else {
                    const DecodedFrame decoded = channels[u]->decode(p.encoded);
                    frame.decoded = decoded.valid;
                    frame.reconMs = decoded.reconMs();
                    copyReconCounters(frame, decoded);
                    const double renderTime =
                        std::max(arrival, us.reconFreeAt) +
                        clockReconMs(decoded, base.timing) / 1000.0;
                    us.reconFreeAt = renderTime;
                    frame.e2eMs = (renderTime - p.captureTime) * 1000.0;
                    if (decoded.valid && base.qualityEvalInterval > 0 &&
                        f % base.qualityEvalInterval == 0 &&
                        !decoded.mesh.empty()) {
                        evaluateQuality(frame, model, p.pose, decoded.mesh,
                                        base.qualitySamples);
                    }
                }
            } else {
                frame.e2eMs = (p.transfer.completionTime - p.captureTime) * 1000.0;
            }
            s.frames.push_back(std::move(frame));
        });
    }

    finalizeMultiSessionStats(out, base);
    fillFairness(out, state);
    return out;
}

}  // namespace semholo::core::internal

namespace semholo::core {

std::string toJsonValue(const MultiSessionStats& stats) {
    telemetry::JsonWriter w;
    w.beginObject();
    w.field("users", static_cast<std::uint64_t>(stats.perUser.size()));
    w.field("aggregate_mbps", stats.aggregateMbps);
    w.field("mean_e2e_ms", stats.meanE2eMs);
    w.field("fairness_index", stats.fairnessIndex);
    w.beginArray("fairness");
    for (const UserFairnessStats& f : stats.fairness) {
        w.beginObject()
            .field("user", static_cast<std::uint64_t>(f.user))
            .field("captured_frames", static_cast<std::uint64_t>(f.capturedFrames))
            .field("delivered_frames",
                   static_cast<std::uint64_t>(f.deliveredFrames))
            .field("delivery_ratio", f.deliveryRatio)
            .field("bandwidth_mbps", f.bandwidthMbps)
            .field("bandwidth_share", f.bandwidthShare)
            .field("mean_e2e_ms", f.meanE2eMs)
            .field("degradations", f.degradations)
            .field("upgrades", f.upgrades)
            .field("final_degradation_level",
                   static_cast<std::uint64_t>(f.finalDegradationLevel))
            .endObject();
    }
    w.endArray();
    w.raw("telemetry", telemetry::toJsonValue(stats.telemetry));
    w.endObject();
    return w.str();
}

}  // namespace semholo::core
