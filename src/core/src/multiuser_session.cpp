// SFU conference engine: a frame-tick feedback scheduler with downlink
// fan-out and cross-user bandwidth arbitration. Each capture tick runs
// five phases:
//
//   arbiter phase   (sequenced) when a BandwidthArbiter strategy is
//                   configured, compute per-user uplink target rates
//                   from the bottleneck's instantaneous capacity, each
//                   user's offered demand (last wire frame x fps) and
//                   historical delivered throughput; feed the targets
//                   into every participant's DegradationPolicy and cap
//                   the bandwidth estimate their channel sees.
//   encode phase    every user encodes frame f (worker-pool fan-out when
//                   a pool is supplied; each user's extractor clock and
//                   channel state are theirs alone).
//   uplink phase    (sequenced, user order) the tick's messages traverse
//                   the shared server-ingest bottleneck — or each user's
//                   own uplink when ConferenceConfig::sharedUplink is
//                   false — with identical FIFO interleaving, loss RNG
//                   draws and congestion for serial and parallel runs;
//                   per message, the sender's throughput estimator and
//                   DegradationPolicy observe that user's own outcome.
//   downlink phase  the server forwards every delivered frame to each
//                   subscribed viewer over that viewer's own downlink
//                   LinkSimulator, thinned by the viewer's subscription
//                   ladder (byteScale per rung). Fanned per viewer: all
//                   downlink state is viewer-local, so worker count
//                   cannot change the outcome.
//   decode phase    every user decodes their delivered frame, advances
//                   their recon clock and runs the (expensive) Chamfer
//                   quality eval. (The decode is the per-source
//                   reference decode — channels are stateful per stream,
//                   so viewers share the source's reconstruction; the
//                   downlink path accounts transport, not re-decode.)
//
// Feedback observed at tick f scales the bandwidth estimate the user's
// channel sees at tick f+1, exactly like the single-user engines. Serial
// (pool == nullptr) and parallel runs execute the same per-user call
// sequence in the same order, so under TimingModel::Simulated they are
// byte-identical at any worker count (tests/core/test_conference.cpp
// stresses this with downlinks + arbiter at workers 1/2/8).
//
// Uplink messages are attributed to their sender via LinkSimulator's
// senderTag; downlink messages carry (senderTag = source, receiverTag =
// viewer) so per-(viewer, source) stream accounting lands in
// MultiSessionStats::downlinks.
#include <algorithm>
#include <utility>
#include <vector>

#include "semholo/core/conference.hpp"
#include "semholo/core/session.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/net/abr.hpp"
#include "session_internal.hpp"

namespace semholo::core::internal {

namespace {

// One user's frame in flight during a tick.
struct TickFrame {
    FrameStats frame;
    EncodedFrame encoded;
    body::Pose pose;  // retained for receiver-side quality evaluation
    double captureTime{};
    double sendTime{};  // valid when sent
    bool sent{false};
    net::TransferResult transfer;
};

// Per-user state that persists across ticks: the pipeline availability
// clocks and the closed-loop feedback (throughput estimator +
// degradation policy) every single-user session also carries, plus the
// arbiter's demand estimate and target-rate accounting.
struct UserState {
    double extractorFreeAt{0.0};
    double reconFreeAt{0.0};
    net::HarmonicEstimator throughput{5};
    DegradationPolicy degrade;
    std::size_t lastSentBytes{0};  // arbiter demand: offered wire bytes
    double targetRateBps{0.0};     // arbiter target this tick (0 = none)
    double targetSumBps{0.0};
    std::size_t targetTicks{0};

    UserState(const DegradationConfig& config, double fps,
              std::size_t queueCapacityBytes)
        : degrade(config, fps, queueCapacityBytes) {}
};

// Per-viewer downlink state: the viewer's own LinkSimulator, a monotonic
// send clock (uplink completions are unordered across per-user uplinks),
// the resolved subscription list and the per-stream accounting.
struct DownlinkState {
    std::vector<net::LinkSimulator> link;  // 0 or 1 element (stable address)
    double clock{0.0};
    // (source, byteScale) in ascending source order.
    std::vector<std::pair<std::size_t, double>> subs;
    // source -> index into stats.streams (SIZE_MAX when unsubscribed).
    std::vector<std::size_t> streamIndex;
    DownlinkStats stats;
    double transferMsSum{0.0};
};

void fillFairness(MultiSessionStats& out, const std::vector<UserState>& state) {
    const std::size_t users = out.perUser.size();
    double totalBytes = 0.0;
    std::vector<double> userBytes(users, 0.0);
    for (std::size_t u = 0; u < users; ++u) {
        for (const FrameStats& frame : out.perUser[u].frames) {
            if (frame.droppedAtSender) continue;
            userBytes[u] += static_cast<double>(frame.bytes);
        }
        totalBytes += userBytes[u];
    }
    out.fairness.resize(users);
    double ratioSum = 0.0, ratioSqSum = 0.0;
    for (std::size_t u = 0; u < users; ++u) {
        const SessionStats& s = out.perUser[u];
        UserFairnessStats& f = out.fairness[u];
        f.user = u;
        f.capturedFrames = s.frames.size();
        f.deliveredFrames = s.deliveredFrames;
        f.deliveryRatio = f.capturedFrames > 0
                              ? static_cast<double>(f.deliveredFrames) /
                                    static_cast<double>(f.capturedFrames)
                              : 0.0;
        f.bandwidthMbps = s.bandwidthMbps;
        f.bandwidthShare = totalBytes > 0.0 ? userBytes[u] / totalBytes : 0.0;
        f.meanE2eMs = s.meanE2eMs;
        f.degradations = s.telemetry.counters.degradations;
        f.upgrades = s.telemetry.counters.upgrades;
        f.finalDegradationLevel = state[u].degrade.level();
        f.targetRateMbps = state[u].targetTicks > 0
                               ? state[u].targetSumBps /
                                     static_cast<double>(state[u].targetTicks) /
                                     1e6
                               : 0.0;
        ratioSum += f.deliveryRatio;
        ratioSqSum += f.deliveryRatio * f.deliveryRatio;
    }
    // Jain's index over delivery ratios; all-equal (including all-zero)
    // counts as perfectly fair.
    const double denom = static_cast<double>(users) * ratioSqSum;
    out.fairnessIndex = denom > 0.0 ? ratioSum * ratioSum / denom : 1.0;
}

}  // namespace

MultiSessionStats runConferenceTicked(
    const ConferenceConfig& conf, const std::vector<SemanticChannel*>& channels,
    const body::BodyModel& model, ThreadPool* pool) {
    const SessionConfig& base = conf.session;
    MultiSessionStats out;
    const std::size_t users = channels.size();
    out.perUser.resize(users);
    if (users == 0) return out;

    // ---- Uplink topology -------------------------------------------------
    // Shared mode: one server-ingest bottleneck every participant's
    // messages traverse (attributed per user by senderTag). Per-user
    // mode: each participant's own access link.
    std::vector<net::LinkSimulator> uplinks;
    if (conf.sharedUplink) {
        uplinks.emplace_back(base.link);
        uplinks[0].setObserver([&out](const net::TransferResult& r,
                                      std::size_t queuedBytes) {
            telemetry::SessionTelemetry& t =
                out.perUser[static_cast<std::size_t>(r.senderTag)].telemetry;
            t.counters.packets += r.packets;
            t.counters.packetsLost += r.lostPackets;
            t.counters.packetsDelivered += r.deliveredPackets;
            t.counters.packetsUnrecovered += r.unrecoveredPackets;
            t.counters.retransmissions += r.retransmissions;
            t.counters.queueDrops += r.droppedAtQueue;
            t.counters.bytesSent += r.bytes;
            t.counters.faultEvents += r.faultEvents;
            t.queueDepthBytes.record(static_cast<double>(queuedBytes));
        });
    } else {
        uplinks.reserve(users);
        for (std::size_t u = 0; u < users; ++u) {
            const Participant& p = conf.participants[u];
            uplinks.emplace_back(p.uplink.value_or(base.link));
        }
        for (std::size_t u = 0; u < users; ++u) {
            telemetry::SessionTelemetry& t = out.perUser[u].telemetry;
            uplinks[u].setObserver([&t](const net::TransferResult& r,
                                        std::size_t queuedBytes) {
                t.counters.packets += r.packets;
                t.counters.packetsLost += r.lostPackets;
                t.counters.packetsDelivered += r.deliveredPackets;
                t.counters.packetsUnrecovered += r.unrecoveredPackets;
                t.counters.retransmissions += r.retransmissions;
                t.counters.queueDrops += r.droppedAtQueue;
                t.counters.bytesSent += r.bytes;
                t.counters.faultEvents += r.faultEvents;
                t.queueDepthBytes.record(static_cast<double>(queuedBytes));
            });
        }
    }
    const auto uplinkFor = [&](std::size_t u) -> net::LinkSimulator& {
        return conf.sharedUplink ? uplinks[0] : uplinks[u];
    };

    // ---- Per-user session state -------------------------------------------
    std::vector<body::MotionGenerator> motions;
    std::vector<UserState> state;
    std::vector<geom::RigidTransform> heads;
    motions.reserve(users);
    state.reserve(users);
    heads.reserve(users);
    for (std::size_t u = 0; u < users; ++u) {
        const Participant& p = conf.participants[u];
        channels[u]->reset();
        motions.emplace_back(
            base.motion, model.shape(),
            p.motionSeed.value_or(base.motionSeed +
                                  static_cast<std::uint32_t>(u)));
        state.emplace_back(p.degradation.value_or(base.degradation), base.fps,
                           p.uplink && !conf.sharedUplink
                               ? p.uplink->queueCapacityBytes
                               : base.link.queueCapacityBytes);
        heads.push_back(p.viewerHead.value_or(base.viewerHead));
        out.perUser[u].frames.reserve(base.frames);
    }
    const auto degradationFor = [&](std::size_t u) -> const DegradationConfig& {
        return conf.participants[u].degradation ? *conf.participants[u].degradation
                                                : base.degradation;
    };

    // ---- Downlink fan-out state -------------------------------------------
    std::vector<DownlinkState> downs;
    if (conf.enableDownlinks) {
        downs.resize(users);
        for (std::size_t v = 0; v < users; ++v) {
            const Participant& p = conf.participants[v];
            DownlinkState& d = downs[v];
            d.link.emplace_back(p.downlink.value_or(conf.downlink));
            d.stats.viewer = v;
            d.streamIndex.assign(users, std::numeric_limits<std::size_t>::max());
            std::size_t position = 0;
            for (std::size_t u = 0; u < users; ++u) {
                if (u == v) continue;
                const auto scale = p.subscription.scaleForPosition(position++);
                if (!scale) continue;
                d.streamIndex[u] = d.subs.size();
                d.subs.emplace_back(u, *scale);
                DownlinkStreamStats ss;
                ss.source = u;
                d.stats.streams.push_back(ss);
            }
        }
    }

    // ---- Arbiter ----------------------------------------------------------
    const bool arbiterOn = conf.arbiter.strategy != ArbiterStrategy::None;
    const BandwidthArbiter arbiter(conf.arbiter);
    std::vector<double> demands(users, 0.0), meanTp(users, 0.0);

    std::vector<TickFrame> tick(users);
    const auto forEachUser = [&](auto&& fn) {
        if (pool != nullptr)
            pool->parallelFor(users, fn);
        else
            for (std::size_t u = 0; u < users; ++u) fn(u);
    };

    for (std::size_t f = 0; f < base.frames; ++f) {
        const double captureTime = static_cast<double>(f) / base.fps;

        // Arbiter phase (sequenced): per-user targets from the current
        // bottleneck capacity — effectiveRateAt folds the bandwidth
        // trace and fault schedule in, so an outage collapses everyone's
        // target and the ladders step down before the queue overflows.
        if (arbiterOn) {
            if (conf.sharedUplink) {
                const double capacity = uplinks[0].effectiveRateAt(captureTime);
                for (std::size_t u = 0; u < users; ++u) {
                    demands[u] = state[u].lastSentBytes > 0
                                     ? static_cast<double>(
                                           state[u].lastSentBytes) *
                                           8.0 * base.fps
                                     : 0.0;
                    meanTp[u] = state[u].throughput.hasEstimate()
                                    ? state[u].throughput.estimate()
                                    : 0.0;
                }
                const std::vector<double> targets =
                    arbiter.allocate(capacity, demands, meanTp);
                for (std::size_t u = 0; u < users; ++u) {
                    state[u].targetRateBps = targets[u];
                    state[u].degrade.setTargetRateBps(targets[u]);
                    state[u].targetSumBps += targets[u];
                    ++state[u].targetTicks;
                }
            } else {
                // Independent uplinks: each user's target is their own
                // link's instantaneous capacity with the safety margin.
                for (std::size_t u = 0; u < users; ++u) {
                    const double target = std::max(
                        conf.arbiter.minRateBps,
                        uplinkFor(u).effectiveRateAt(captureTime) *
                            conf.arbiter.safety);
                    state[u].targetRateBps = target;
                    state[u].degrade.setTargetRateBps(target);
                    state[u].targetSumBps += target;
                    ++state[u].targetTicks;
                }
            }
        }

        // Encode phase: each user's encode touches only their own
        // channel, motion generator, clocks and feedback state.
        forEachUser([&](std::size_t u) {
            TickFrame& p = tick[u];
            p = TickFrame{};
            p.captureTime = captureTime;
            p.frame.frameId = static_cast<std::uint32_t>(f);
            UserState& us = state[u];
            if (base.dropWhenBusy && us.extractorFreeAt > captureTime) {
                p.frame.droppedAtSender = true;
                return;
            }
            FrameContext ctx;
            ctx.pose = motions[u].poseAt(captureTime);
            ctx.pose.frameId = p.frame.frameId;
            ctx.model = &model;
            ctx.timestamp = captureTime;
            ctx.viewerHead = heads[u];
            // Bandwidth feedback: the throughput estimate, capped at the
            // arbiter's target when one is set (the target alone seeds
            // the loop before the first sample — rate-adaptive channels
            // start at their share instead of blasting the top rung).
            double est = us.throughput.hasEstimate() ? us.throughput.estimate()
                                                     : 0.0;
            if (us.targetRateBps > 0.0)
                est = est > 0.0 ? std::min(est, us.targetRateBps)
                                : us.targetRateBps;
            if (est > 0.0)
                ctx.estimatedBandwidthBps = est * us.degrade.bandwidthScale();
            p.encoded = channels[u]->encode(ctx);
            p.pose = std::move(ctx.pose);
            p.frame.bytes = p.encoded.bytes();
            p.frame.extractMs = p.encoded.extractMs();
            p.sendTime = std::max(captureTime, us.extractorFreeAt) +
                         clockExtractMs(p.encoded, base.timing) / 1000.0;
            us.extractorFreeAt = p.sendTime;
            p.sent = true;
        });

        // Uplink + feedback phase: sequenced on the coordinating thread
        // in user order — the same (frame, user) interleaving the serial
        // engine always had, so FIFO queueing, loss RNG draws and
        // congestion are engine-independent. Each message's outcome
        // feeds that user's estimator and degradation policy before the
        // next tick encodes.
        for (std::size_t u = 0; u < users; ++u) {
            TickFrame& p = tick[u];
            if (!p.sent) continue;
            UserState& us = state[u];
            net::LinkSimulator& link = uplinkFor(u);
            const std::size_t queuedAtSend =
                degradationFor(u).enabled || arbiterOn
                    ? link.queuedBytesAt(p.sendTime)
                    : 0;
            p.transfer =
                link.sendMessage(p.frame.bytes, p.sendTime, base.transfer, u);
            p.frame.delivered = p.transfer.delivered;
            p.frame.transferMs = p.transfer.durationS() * 1000.0;
            us.lastSentBytes = p.frame.bytes;
            if (p.transfer.delivered && p.frame.bytes > 0) {
                // Serialization-dominated throughput sample (propagation
                // subtracted), as in the single-user engines.
                const double serialS = std::max(
                    1e-5, p.transfer.durationS() -
                              link.config().propagationDelayS);
                us.throughput.addSample(static_cast<double>(p.frame.bytes) *
                                        8.0 / serialS);
            }
            if (degradationFor(u).enabled) {
                const DegradationAction action = us.degrade.observe(
                    p.frame.frameId,
                    {p.transfer.delivered, p.transfer.durationS(),
                     p.transfer.unrecoveredPackets, p.transfer.droppedAtQueue,
                     p.transfer.faultEvents, queuedAtSend, p.frame.bytes});
                if (action == DegradationAction::StepDown)
                    ++out.perUser[u].telemetry.counters.degradations;
                else if (action == DegradationAction::StepUp)
                    ++out.perUser[u].telemetry.counters.upgrades;
            }
        }

        // Downlink phase: the server fans every delivered frame out to
        // its subscribed viewers. Fanned per viewer — each viewer's
        // downlink simulator, clock and stream counters are theirs
        // alone, and the tick's uplink results are read-only here — so
        // serial and parallel runs stay byte-identical.
        if (conf.enableDownlinks) {
            forEachUser([&](std::size_t v) {
                DownlinkState& d = downs[v];
                for (const auto& [u, scale] : d.subs) {
                    const TickFrame& p = tick[u];
                    if (!p.sent || !p.transfer.delivered) continue;
                    const auto bytes = std::max<std::size_t>(
                        1, static_cast<std::size_t>(
                               static_cast<double>(p.frame.bytes) * scale));
                    // Forward when the server received the frame; the
                    // clock keeps per-viewer send times monotonic (per-
                    // user uplinks complete out of user order).
                    const double at = std::max(p.transfer.completionTime,
                                               d.clock);
                    const net::TransferResult r = d.link[0].sendMessage(
                        bytes, at, base.transfer, u, v);
                    d.clock = at;
                    DownlinkStreamStats& ss =
                        d.stats.streams[d.streamIndex[u]];
                    ++ss.framesForwarded;
                    ss.bytesForwarded += bytes;
                    ss.packets += r.packets;
                    ss.packetsDelivered += r.deliveredPackets;
                    ss.packetsUnrecovered += r.unrecoveredPackets;
                    if (r.delivered) {
                        ++ss.framesDelivered;
                        ss.bytesDelivered += bytes;
                    }
                    d.transferMsSum += r.durationS() * 1000.0;
                }
            });
        }

        // Decode phase: each user decodes their own arrival, advances
        // their recon clock and (when sampled) runs the Chamfer eval.
        forEachUser([&](std::size_t u) {
            TickFrame& p = tick[u];
            SessionStats& s = out.perUser[u];
            FrameStats frame = std::move(p.frame);
            if (frame.droppedAtSender) {
                s.frames.push_back(std::move(frame));
                return;
            }
            UserState& us = state[u];
            if (p.transfer.delivered) {
                const double arrival = p.transfer.completionTime;
                if (base.dropWhenBusy && us.reconFreeAt > arrival) {
                    frame.droppedAtReceiver = true;
                } else {
                    const DecodedFrame decoded = channels[u]->decode(p.encoded);
                    frame.decoded = decoded.valid;
                    frame.reconMs = decoded.reconMs();
                    copyReconCounters(frame, decoded);
                    const double renderTime =
                        std::max(arrival, us.reconFreeAt) +
                        clockReconMs(decoded, base.timing) / 1000.0;
                    us.reconFreeAt = renderTime;
                    frame.e2eMs = (renderTime - p.captureTime) * 1000.0;
                    if (decoded.valid && base.qualityEvalInterval > 0 &&
                        f % base.qualityEvalInterval == 0 &&
                        !decoded.mesh.empty()) {
                        evaluateQuality(frame, model, p.pose, decoded.mesh,
                                        base.qualitySamples);
                    }
                }
            } else {
                frame.e2eMs = (p.transfer.completionTime - p.captureTime) * 1000.0;
            }
            s.frames.push_back(std::move(frame));
        });
    }

    // Downlink rollup: per-viewer totals, the conference-wide fan-out
    // totals, and each viewer's share of the fanned-out bytes.
    if (conf.enableDownlinks) {
        out.downlinks.reserve(users);
        for (DownlinkState& d : downs) {
            for (const DownlinkStreamStats& ss : d.stats.streams) {
                d.stats.framesForwarded += ss.framesForwarded;
                d.stats.framesDelivered += ss.framesDelivered;
                d.stats.bytesForwarded += ss.bytesForwarded;
                d.stats.bytesDelivered += ss.bytesDelivered;
                d.stats.packets += ss.packets;
                d.stats.packetsDelivered += ss.packetsDelivered;
                d.stats.packetsUnrecovered += ss.packetsUnrecovered;
            }
            d.stats.meanTransferMs =
                d.stats.framesForwarded > 0
                    ? d.transferMsSum /
                          static_cast<double>(d.stats.framesForwarded)
                    : 0.0;
            out.serverFanoutFrames += d.stats.framesForwarded;
            out.serverFanoutBytes += d.stats.bytesForwarded;
            out.downlinks.push_back(std::move(d.stats));
        }
        for (DownlinkStats& d : out.downlinks)
            d.fanoutShare = out.serverFanoutBytes > 0
                                ? static_cast<double>(d.bytesForwarded) /
                                      static_cast<double>(out.serverFanoutBytes)
                                : 0.0;
    }

    finalizeMultiSessionStats(out, base);
    fillFairness(out, state);
    return out;
}

}  // namespace semholo::core::internal
