// SFU conference engine: a completion-event-driven stage graph. The
// legacy engine ran each capture tick as three barriered phases (encode
// fan-out, sequenced uplink, decode fan-out); this engine builds one
// explicit dependency DAG over typed per-(tick, user) nodes and lets an
// event-driven executor run every node the instant its dependencies
// complete — no phase barriers, no tick barriers.
//
// Node kinds per tick f (inserted in exactly the legacy phase order, so
// the serial executor *is* the legacy engine):
//
//   A(f) / A(f,u)  arbiter: per-user uplink target rates from the
//                  bottleneck's instantaneous capacity, offered demands
//                  (last wire frame x fps) and delivered-throughput
//                  history. Shared-uplink mode has one conference-wide
//                  node; per-user uplinks get one node per user.
//   E(f,u)         encode: the user's channel encodes frame f against
//                  their extractor clock and bandwidth feedback.
//   T(f,u)         uplink ticket: the frame traverses the shared
//                  server-ingest bottleneck (or the user's own uplink).
//                  Tickets form a chain — global in shared mode, per
//                  user otherwise — so the (frame, user) link-entry
//                  order, FIFO interleaving and loss RNG draws are
//                  identical for serial and pipelined runs. The outcome
//                  feeds the sender's estimator and DegradationPolicy.
//   L(f,v)         downlink fan-out: the server forwards the tick's
//                  delivered frames to viewer v over v's own downlink,
//                  thinned by v's subscription ladder.
//   D(f,u)         decode: the user decodes their delivered frame,
//                  advances their recon clock, runs the sampled Chamfer
//                  eval, and appends the tick's FrameStats.
//   R(f)           retire: join of every D(f,*) and L(f,*); recycles the
//                  tick's ring slot.
//
// Edges (the full byte-identity argument is in DESIGN.md):
//
//   A(f)   <- T(f-1,*)          targets read last-tick demand/throughput
//   E(f,u) <- A(f[,u]), D(f-1,u), R(f-depth)
//   T(f,u) <- E(f,u), previous ticket in its chain
//   L(f,v) <- T(f,u) per subscribed source, L(f-1,v)
//   D(f,u) <- T(f,u)            (D(f-1,u) order holds transitively)
//   R(f)   <- D(f,*), L(f,*), R(f-1)
//
// The payoff: a user's tick f+1 encode is released the moment its own
// tick f feedback lands (plus slot retirement), so enc-heavy and
// dec-heavy users de-stagger instead of all waiting for the slowest
// phase member — up to ConferenceConfig::pipelineDepth ticks in flight.
// Every mutable resource (a user's channel/clock/estimator/policy, a
// link's FIFO + RNG, a viewer's downlink, the arbiter inputs) is
// confined to a single dependency chain, so serial (pool == nullptr)
// and event-driven runs are byte-identical under TimingModel::Simulated
// at any worker count and any depth (tests/core/test_conference.cpp and
// test_stage_graph.cpp stress this with downlinks + arbiter).
//
// Uplink messages are attributed to their sender via LinkSimulator's
// senderTag; downlink messages carry (senderTag = source, receiverTag =
// viewer) so per-(viewer, source) stream accounting lands in
// MultiSessionStats::downlinks. Stage occupancy, release latency and
// ticks-in-flight land in MultiSessionStats::pipeline.
#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "semholo/core/conference.hpp"
#include "semholo/core/session.hpp"
#include "semholo/core/thread_pool.hpp"
#include "semholo/net/abr.hpp"
#include "session_internal.hpp"
#include "stage_graph.hpp"

namespace semholo::core::internal {

namespace {

// One user's frame in flight during a tick. Lives in a ring of
// pipelineDepth tick-slots; E(f,u) rewrites it, T(f,u) fills the
// transfer, L/D read it, R(f) retires the slot for tick f+depth.
struct TickFrame {
    FrameStats frame;
    EncodedFrame encoded;
    body::Pose pose;  // retained for receiver-side quality evaluation
    double captureTime{};
    double sendTime{};  // valid when sent
    bool sent{false};
    net::TransferResult transfer;
};

// Per-user state that persists across ticks: the pipeline availability
// clocks and the closed-loop feedback (throughput estimator +
// degradation policy) every single-user session also carries, plus the
// arbiter's demand estimate and target-rate accounting.
struct UserState {
    double extractorFreeAt{0.0};
    double reconFreeAt{0.0};
    net::HarmonicEstimator throughput{5};
    DegradationPolicy degrade;
    std::size_t lastSentBytes{0};  // arbiter demand: offered wire bytes
    double targetRateBps{0.0};     // arbiter target this tick (0 = none)
    double targetSumBps{0.0};
    std::size_t targetTicks{0};

    UserState(const DegradationConfig& config, double fps,
              std::size_t queueCapacityBytes)
        : degrade(config, fps, queueCapacityBytes) {}
};

// Per-viewer downlink state: the viewer's own LinkSimulator, a monotonic
// send clock (uplink completions are unordered across per-user uplinks),
// the resolved subscription list and the per-stream accounting.
struct DownlinkState {
    std::vector<net::LinkSimulator> link;  // 0 or 1 element (stable address)
    double clock{0.0};
    // (source, byteScale) in ascending source order.
    std::vector<std::pair<std::size_t, double>> subs;
    // source -> index into stats.streams (SIZE_MAX when unsubscribed).
    std::vector<std::size_t> streamIndex;
    DownlinkStats stats;
    double transferMsSum{0.0};
};

void fillFairness(MultiSessionStats& out, const std::vector<UserState>& state) {
    const std::size_t users = out.perUser.size();
    double totalBytes = 0.0;
    std::vector<double> userBytes(users, 0.0);
    for (std::size_t u = 0; u < users; ++u) {
        for (const FrameStats& frame : out.perUser[u].frames) {
            if (frame.droppedAtSender) continue;
            userBytes[u] += static_cast<double>(frame.bytes);
        }
        totalBytes += userBytes[u];
    }
    out.fairness.resize(users);
    double ratioSum = 0.0, ratioSqSum = 0.0;
    for (std::size_t u = 0; u < users; ++u) {
        const SessionStats& s = out.perUser[u];
        UserFairnessStats& f = out.fairness[u];
        f.user = u;
        f.capturedFrames = s.frames.size();
        f.deliveredFrames = s.deliveredFrames;
        f.deliveryRatio = f.capturedFrames > 0
                              ? static_cast<double>(f.deliveredFrames) /
                                    static_cast<double>(f.capturedFrames)
                              : 0.0;
        f.bandwidthMbps = s.bandwidthMbps;
        f.bandwidthShare = totalBytes > 0.0 ? userBytes[u] / totalBytes : 0.0;
        f.meanE2eMs = s.meanE2eMs;
        f.degradations = s.telemetry.counters.degradations;
        f.upgrades = s.telemetry.counters.upgrades;
        f.finalDegradationLevel = state[u].degrade.level();
        f.targetRateMbps = state[u].targetTicks > 0
                               ? state[u].targetSumBps /
                                     static_cast<double>(state[u].targetTicks) /
                                     1e6
                               : 0.0;
        ratioSum += f.deliveryRatio;
        ratioSqSum += f.deliveryRatio * f.deliveryRatio;
    }
    // Jain's index over delivery ratios; all-equal (including all-zero)
    // counts as perfectly fair.
    const double denom = static_cast<double>(users) * ratioSqSum;
    out.fairnessIndex = denom > 0.0 ? ratioSum * ratioSum / denom : 1.0;
}

}  // namespace

MultiSessionStats runConferenceTicked(
    const ConferenceConfig& conf, const std::vector<SemanticChannel*>& channels,
    const body::BodyModel& model, ThreadPool* pool) {
    const SessionConfig& base = conf.session;
    MultiSessionStats out;
    const std::size_t users = channels.size();
    out.perUser.resize(users);
    if (users == 0) return out;

    // ---- Uplink topology -------------------------------------------------
    // Shared mode: one server-ingest bottleneck every participant's
    // messages traverse (attributed per user by senderTag). Per-user
    // mode: each participant's own access link. Either way, the link's
    // observer only runs inside the link's ticket chain, so the per-user
    // counter writes are sequenced.
    std::vector<net::LinkSimulator> uplinks;
    if (conf.sharedUplink) {
        uplinks.emplace_back(base.link);
        uplinks[0].setObserver([&out](const net::TransferResult& r,
                                      std::size_t queuedBytes) {
            telemetry::SessionTelemetry& t =
                out.perUser[static_cast<std::size_t>(r.senderTag)].telemetry;
            t.counters.packets += r.packets;
            t.counters.packetsLost += r.lostPackets;
            t.counters.packetsDelivered += r.deliveredPackets;
            t.counters.packetsUnrecovered += r.unrecoveredPackets;
            t.counters.retransmissions += r.retransmissions;
            t.counters.queueDrops += r.droppedAtQueue;
            t.counters.bytesSent += r.bytes;
            t.counters.faultEvents += r.faultEvents;
            t.queueDepthBytes.record(static_cast<double>(queuedBytes));
        });
    } else {
        uplinks.reserve(users);
        for (std::size_t u = 0; u < users; ++u) {
            const Participant& p = conf.participants[u];
            uplinks.emplace_back(p.uplink.value_or(base.link));
        }
        for (std::size_t u = 0; u < users; ++u) {
            telemetry::SessionTelemetry& t = out.perUser[u].telemetry;
            uplinks[u].setObserver([&t](const net::TransferResult& r,
                                        std::size_t queuedBytes) {
                t.counters.packets += r.packets;
                t.counters.packetsLost += r.lostPackets;
                t.counters.packetsDelivered += r.deliveredPackets;
                t.counters.packetsUnrecovered += r.unrecoveredPackets;
                t.counters.retransmissions += r.retransmissions;
                t.counters.queueDrops += r.droppedAtQueue;
                t.counters.bytesSent += r.bytes;
                t.counters.faultEvents += r.faultEvents;
                t.queueDepthBytes.record(static_cast<double>(queuedBytes));
            });
        }
    }
    const auto uplinkFor = [&](std::size_t u) -> net::LinkSimulator& {
        return conf.sharedUplink ? uplinks[0] : uplinks[u];
    };

    // ---- Per-user session state -------------------------------------------
    std::vector<body::MotionGenerator> motions;
    std::vector<UserState> state;
    std::vector<geom::RigidTransform> heads;
    motions.reserve(users);
    state.reserve(users);
    heads.reserve(users);
    for (std::size_t u = 0; u < users; ++u) {
        const Participant& p = conf.participants[u];
        channels[u]->reset();
        motions.emplace_back(
            base.motion, model.shape(),
            p.motionSeed.value_or(base.motionSeed +
                                  static_cast<std::uint32_t>(u)));
        state.emplace_back(p.degradation.value_or(base.degradation), base.fps,
                           p.uplink && !conf.sharedUplink
                               ? p.uplink->queueCapacityBytes
                               : base.link.queueCapacityBytes);
        heads.push_back(p.viewerHead.value_or(base.viewerHead));
        out.perUser[u].frames.reserve(base.frames);
    }
    const auto degradationFor = [&](std::size_t u) -> const DegradationConfig& {
        return conf.participants[u].degradation ? *conf.participants[u].degradation
                                                : base.degradation;
    };

    // ---- Downlink fan-out state -------------------------------------------
    std::vector<DownlinkState> downs;
    if (conf.enableDownlinks) {
        downs.resize(users);
        for (std::size_t v = 0; v < users; ++v) {
            const Participant& p = conf.participants[v];
            DownlinkState& d = downs[v];
            d.link.emplace_back(p.downlink.value_or(conf.downlink));
            d.stats.viewer = v;
            d.streamIndex.assign(users, std::numeric_limits<std::size_t>::max());
            std::size_t position = 0;
            for (std::size_t u = 0; u < users; ++u) {
                if (u == v) continue;
                const auto scale = p.subscription.scaleForPosition(position++);
                if (!scale) continue;
                d.streamIndex[u] = d.subs.size();
                d.subs.emplace_back(u, *scale);
                DownlinkStreamStats ss;
                ss.source = u;
                d.stats.streams.push_back(ss);
            }
        }
    }

    // ---- Arbiter ----------------------------------------------------------
    const bool arbiterOn = conf.arbiter.strategy != ArbiterStrategy::None;
    const BandwidthArbiter arbiter(conf.arbiter);
    std::vector<double> demands(users, 0.0), meanTp(users, 0.0);

    // ---- Stage bodies ------------------------------------------------------
    // Each body captures the tick index and ring slot by value and every
    // engine resource by reference; the graph edges built below are what
    // make the captured-by-reference state race-free.
    const std::size_t depth = std::max<std::size_t>(1, conf.pipelineDepth);
    std::vector<std::vector<TickFrame>> ring(depth,
                                             std::vector<TickFrame>(users));

    const auto arbiterSharedBody = [&](double captureTime) {
        const double capacity = uplinks[0].effectiveRateAt(captureTime);
        for (std::size_t u = 0; u < users; ++u) {
            demands[u] = state[u].lastSentBytes > 0
                             ? static_cast<double>(state[u].lastSentBytes) *
                                   8.0 * base.fps
                             : 0.0;
            meanTp[u] = state[u].throughput.hasEstimate()
                            ? state[u].throughput.estimate()
                            : 0.0;
        }
        const std::vector<double> targets =
            arbiter.allocate(capacity, demands, meanTp);
        for (std::size_t u = 0; u < users; ++u) {
            state[u].targetRateBps = targets[u];
            state[u].degrade.setTargetRateBps(targets[u]);
            state[u].targetSumBps += targets[u];
            ++state[u].targetTicks;
        }
        return 0.0;
    };

    // Independent uplinks: each user's target is their own link's
    // instantaneous capacity with the safety margin.
    const auto arbiterUserBody = [&](std::size_t u, double captureTime) {
        const double target =
            std::max(conf.arbiter.minRateBps,
                     uplinkFor(u).effectiveRateAt(captureTime) *
                         conf.arbiter.safety);
        state[u].targetRateBps = target;
        state[u].degrade.setTargetRateBps(target);
        state[u].targetSumBps += target;
        ++state[u].targetTicks;
        return 0.0;
    };

    // Encode: touches only this user's channel, motion generator, clocks
    // and feedback state, plus the (retired) ring slot it rewrites.
    const auto encodeBody = [&](std::size_t f, std::size_t slot, std::size_t u,
                                double captureTime) {
        TickFrame& p = ring[slot][u];
        p = TickFrame{};
        p.captureTime = captureTime;
        p.frame.frameId = static_cast<std::uint32_t>(f);
        UserState& us = state[u];
        if (base.dropWhenBusy && us.extractorFreeAt > captureTime) {
            p.frame.droppedAtSender = true;
            return 0.0;
        }
        FrameContext ctx;
        ctx.pose = motions[u].poseAt(captureTime);
        ctx.pose.frameId = p.frame.frameId;
        ctx.model = &model;
        ctx.timestamp = captureTime;
        ctx.viewerHead = heads[u];
        // Bandwidth feedback: the throughput estimate, capped at the
        // arbiter's target when one is set (the target alone seeds the
        // loop before the first sample — rate-adaptive channels start at
        // their share instead of blasting the top rung).
        double est =
            us.throughput.hasEstimate() ? us.throughput.estimate() : 0.0;
        if (us.targetRateBps > 0.0)
            est = est > 0.0 ? std::min(est, us.targetRateBps)
                            : us.targetRateBps;
        if (est > 0.0)
            ctx.estimatedBandwidthBps = est * us.degrade.bandwidthScale();
        p.encoded = channels[u]->encode(ctx);
        p.pose = std::move(ctx.pose);
        p.frame.bytes = p.encoded.bytes();
        p.frame.extractMs = p.encoded.extractMs();
        const double stageMs = clockExtractMs(p.encoded, base.timing);
        p.sendTime = std::max(captureTime, us.extractorFreeAt) + stageMs / 1000.0;
        us.extractorFreeAt = p.sendTime;
        p.sent = true;
        return stageMs;
    };

    // Uplink ticket: the sequenced link stage. Runs inside its link's
    // ticket chain, so FIFO queueing, loss RNG draws and congestion see
    // the same (frame, user) entry order at any worker count; the
    // outcome feeds this user's estimator and degradation policy before
    // their next encode is released.
    const auto uplinkBody = [&](std::size_t slot, std::size_t u) {
        TickFrame& p = ring[slot][u];
        if (!p.sent) return 0.0;
        UserState& us = state[u];
        net::LinkSimulator& link = uplinkFor(u);
        const std::size_t queuedAtSend = degradationFor(u).enabled || arbiterOn
                                             ? link.queuedBytesAt(p.sendTime)
                                             : 0;
        p.transfer =
            link.sendMessage(p.frame.bytes, p.sendTime, base.transfer, u);
        p.frame.delivered = p.transfer.delivered;
        p.frame.transferMs = p.transfer.durationS() * 1000.0;
        us.lastSentBytes = p.frame.bytes;
        if (p.transfer.delivered && p.frame.bytes > 0) {
            // Serialization-dominated throughput sample (propagation
            // subtracted), as in the single-user engines.
            const double serialS =
                std::max(1e-5, p.transfer.durationS() -
                                   link.config().propagationDelayS);
            us.throughput.addSample(static_cast<double>(p.frame.bytes) * 8.0 /
                                    serialS);
        }
        if (degradationFor(u).enabled) {
            const DegradationAction action = us.degrade.observe(
                p.frame.frameId,
                {p.transfer.delivered, p.transfer.durationS(),
                 p.transfer.unrecoveredPackets, p.transfer.droppedAtQueue,
                 p.transfer.faultEvents, queuedAtSend, p.frame.bytes});
            if (action == DegradationAction::StepDown)
                ++out.perUser[u].telemetry.counters.degradations;
            else if (action == DegradationAction::StepUp)
                ++out.perUser[u].telemetry.counters.upgrades;
        }
        return 0.0;
    };

    // Downlink fan-out for one viewer: reads the tick's uplink results
    // (read-only — decode also reads them, concurrently), writes only
    // viewer-local state.
    const auto downlinkBody = [&](std::size_t slot, std::size_t v) {
        DownlinkState& d = downs[v];
        for (const auto& [u, scale] : d.subs) {
            const TickFrame& p = ring[slot][u];
            if (!p.sent || !p.transfer.delivered) continue;
            const auto bytes = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       static_cast<double>(p.frame.bytes) * scale));
            // Forward when the server received the frame; the clock
            // keeps per-viewer send times monotonic (per-user uplinks
            // complete out of user order).
            const double at = std::max(p.transfer.completionTime, d.clock);
            const net::TransferResult r =
                d.link[0].sendMessage(bytes, at, base.transfer, u, v);
            d.clock = at;
            DownlinkStreamStats& ss = d.stats.streams[d.streamIndex[u]];
            ++ss.framesForwarded;
            ss.bytesForwarded += bytes;
            ss.packets += r.packets;
            ss.packetsDelivered += r.deliveredPackets;
            ss.packetsUnrecovered += r.unrecoveredPackets;
            if (r.delivered) {
                ++ss.framesDelivered;
                ss.bytesDelivered += bytes;
            }
            d.transferMsSum += r.durationS() * 1000.0;
        }
        return 0.0;
    };

    // Decode: reads the ring slot (never writes it — the downlink nodes
    // of the same tick may still be reading), advances this user's recon
    // clock and (when sampled) runs the Chamfer eval.
    const auto decodeBody = [&](std::size_t f, std::size_t slot,
                                std::size_t u) {
        const TickFrame& p = ring[slot][u];
        SessionStats& s = out.perUser[u];
        FrameStats frame = p.frame;
        if (frame.droppedAtSender) {
            s.frames.push_back(std::move(frame));
            return 0.0;
        }
        UserState& us = state[u];
        double stageMs = 0.0;
        if (p.transfer.delivered) {
            const double arrival = p.transfer.completionTime;
            if (base.dropWhenBusy && us.reconFreeAt > arrival) {
                frame.droppedAtReceiver = true;
            } else {
                const DecodedFrame decoded = channels[u]->decode(p.encoded);
                frame.decoded = decoded.valid;
                frame.reconMs = decoded.reconMs();
                copyReconCounters(frame, decoded);
                stageMs = clockReconMs(decoded, base.timing);
                const double renderTime =
                    std::max(arrival, us.reconFreeAt) + stageMs / 1000.0;
                us.reconFreeAt = renderTime;
                frame.e2eMs = (renderTime - p.captureTime) * 1000.0;
                if (decoded.valid && base.qualityEvalInterval > 0 &&
                    f % base.qualityEvalInterval == 0 &&
                    !decoded.mesh.empty()) {
                    evaluateQuality(frame, model, p.pose, decoded.mesh,
                                    base.qualitySamples);
                }
            }
        } else {
            frame.e2eMs = (p.transfer.completionTime - p.captureTime) * 1000.0;
        }
        s.frames.push_back(std::move(frame));
        return stageMs;
    };

    // ---- Graph construction ------------------------------------------------
    // Nodes are inserted in the legacy per-tick phase order (arbiter,
    // encodes, tickets, downlinks, decodes, retire), so runSerial() is
    // the legacy schedule; the edges are everything runParallel() needs.
    StageGraph graph;
    constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> prevTicket(users, kNone);
    std::vector<std::size_t> prevDecode(users, kNone);
    std::vector<std::size_t> prevDown(users, kNone);
    std::vector<std::size_t> retireNodes;
    retireNodes.reserve(base.frames);
    std::size_t lastTicketGlobal = kNone;
    std::size_t prevRetire = kNone;
    std::vector<std::size_t> enc(users), tix(users), dec(users), downNodes;

    for (std::size_t f = 0; f < base.frames; ++f) {
        const std::size_t slot = f % depth;
        const double captureTime = static_cast<double>(f) / base.fps;
        const std::uint32_t tick = static_cast<std::uint32_t>(f);

        // Arbiter: needs every user's previous-tick ticket outcome. In
        // shared mode the global ticket chain makes one edge from the
        // last ticket suffice.
        std::size_t sharedArb = kNone;
        std::vector<std::size_t> userArb;
        if (arbiterOn) {
            if (conf.sharedUplink) {
                sharedArb = graph.addNode(
                    StageKind::Arbiter, tick, kNone,
                    [&, captureTime] { return arbiterSharedBody(captureTime); });
                if (lastTicketGlobal != kNone)
                    graph.addEdge(lastTicketGlobal, sharedArb);
            } else {
                userArb.assign(users, kNone);
                for (std::size_t u = 0; u < users; ++u) {
                    userArb[u] = graph.addNode(
                        StageKind::Arbiter, tick, u, [&, u, captureTime] {
                            return arbiterUserBody(u, captureTime);
                        });
                    if (prevTicket[u] != kNone)
                        graph.addEdge(prevTicket[u], userArb[u]);
                }
            }
        }

        // Encode: released by this user's own previous decode (channel
        // state + feedback), the tick's arbiter targets, and the retire
        // of the ring slot it reuses. That is the pipelining win — no
        // edge to any *other* user's tick f-1 work.
        for (std::size_t u = 0; u < users; ++u) {
            enc[u] = graph.addNode(StageKind::Encode, tick, u,
                                   [&, f, slot, u, captureTime] {
                                       return encodeBody(f, slot, u,
                                                         captureTime);
                                   });
            if (prevDecode[u] != kNone) graph.addEdge(prevDecode[u], enc[u]);
            const std::size_t arbNode =
                sharedArb != kNone ? sharedArb
                                   : (userArb.empty() ? kNone : userArb[u]);
            if (arbNode != kNone) graph.addEdge(arbNode, enc[u]);
            if (f >= depth) graph.addEdge(retireNodes[f - depth], enc[u]);
        }

        // Uplink tickets: the per-link entry-order chain.
        for (std::size_t u = 0; u < users; ++u) {
            tix[u] = graph.addNode(StageKind::Uplink, tick, u,
                                   [&, slot, u] { return uplinkBody(slot, u); });
            graph.addEdge(enc[u], tix[u]);
            if (conf.sharedUplink) {
                if (lastTicketGlobal != kNone)
                    graph.addEdge(lastTicketGlobal, tix[u]);
                lastTicketGlobal = tix[u];
            } else if (prevTicket[u] != kNone) {
                graph.addEdge(prevTicket[u], tix[u]);
            }
            prevTicket[u] = tix[u];
        }

        // Downlink fan-out: one node per viewer with subscriptions.
        downNodes.clear();
        if (conf.enableDownlinks) {
            for (std::size_t v = 0; v < users; ++v) {
                if (downs[v].subs.empty()) continue;
                const std::size_t node =
                    graph.addNode(StageKind::Downlink, tick, v, [&, slot, v] {
                        return downlinkBody(slot, v);
                    });
                for (const auto& [u, scale] : downs[v].subs) {
                    (void)scale;
                    graph.addEdge(tix[u], node);
                }
                if (prevDown[v] != kNone) graph.addEdge(prevDown[v], node);
                prevDown[v] = node;
                downNodes.push_back(node);
            }
        }

        // Decode. (The D(f-1,u) order needed for frames.push_back holds
        // transitively: D(f,u) <- T(f,u) <- E(f,u) <- D(f-1,u).)
        for (std::size_t u = 0; u < users; ++u) {
            dec[u] = graph.addNode(StageKind::Decode, tick, u,
                                   [&, f, slot, u] {
                                       return decodeBody(f, slot, u);
                                   });
            graph.addEdge(tix[u], dec[u]);
            prevDecode[u] = dec[u];
        }

        // Retire: the tick's completion join; releases its ring slot for
        // tick f + depth.
        const std::size_t retire =
            graph.addNode(StageKind::Retire, tick, kNone, [] { return 0.0; });
        for (std::size_t u = 0; u < users; ++u) graph.addEdge(dec[u], retire);
        for (const std::size_t node : downNodes) graph.addEdge(node, retire);
        if (prevRetire != kNone) graph.addEdge(prevRetire, retire);
        prevRetire = retire;
        retireNodes.push_back(retire);
    }

    // ---- Run ----------------------------------------------------------------
    if (pool != nullptr)
        graph.runParallel(*pool);
    else
        graph.runSerial();
    graph.fillStats(out.pipeline, pool != nullptr ? pool->size() : 1);
    out.pipeline.pipelineDepth = depth;

    // Downlink rollup: per-viewer totals, the conference-wide fan-out
    // totals, and each viewer's share of the fanned-out bytes.
    if (conf.enableDownlinks) {
        out.downlinks.reserve(users);
        for (DownlinkState& d : downs) {
            for (const DownlinkStreamStats& ss : d.stats.streams) {
                d.stats.framesForwarded += ss.framesForwarded;
                d.stats.framesDelivered += ss.framesDelivered;
                d.stats.bytesForwarded += ss.bytesForwarded;
                d.stats.bytesDelivered += ss.bytesDelivered;
                d.stats.packets += ss.packets;
                d.stats.packetsDelivered += ss.packetsDelivered;
                d.stats.packetsUnrecovered += ss.packetsUnrecovered;
            }
            d.stats.meanTransferMs =
                d.stats.framesForwarded > 0
                    ? d.transferMsSum /
                          static_cast<double>(d.stats.framesForwarded)
                    : 0.0;
            out.serverFanoutFrames += d.stats.framesForwarded;
            out.serverFanoutBytes += d.stats.bytesForwarded;
            out.downlinks.push_back(std::move(d.stats));
        }
        for (DownlinkStats& d : out.downlinks)
            d.fanoutShare = out.serverFanoutBytes > 0
                                ? static_cast<double>(d.bytesForwarded) /
                                      static_cast<double>(out.serverFanoutBytes)
                                : 0.0;
    }

    finalizeMultiSessionStats(out, base);
    fillFairness(out, state);
    return out;
}

}  // namespace semholo::core::internal
