#include "semholo/core/qoe.hpp"

#include <cmath>

namespace semholo::core {

QoEBreakdown computeQoE(const SessionStats& stats, const QoEModel& model) {
    QoEBreakdown out;

    // Quality from Chamfer: 1 at "excellent", 0 at "poor", log-linear in
    // between. Sessions that never evaluated quality get a neutral 0.5.
    if (std::isnan(stats.meanChamfer)) {
        out.qualityTerm = 0.5;
    } else {
        const double c =
            std::clamp(stats.meanChamfer, model.chamferExcellent, model.chamferPoor);
        out.qualityTerm = 1.0 - (std::log(c) - std::log(model.chamferExcellent)) /
                                    (std::log(model.chamferPoor) -
                                     std::log(model.chamferExcellent));
    }

    // Latency: exponential decay beyond the interactive budget.
    const double over = std::max(0.0, stats.meanE2eMs - model.latencyBudgetMs);
    out.latencyTerm = std::exp2(-over / model.latencyHalfLifeMs);

    // Smoothness: achieved pipeline FPS relative to the target.
    out.fpsTerm = std::clamp(stats.achievableFps / model.targetFps, 0.0, 1.0);

    // Delivery counts network failures only. Frames shed by a busy
    // pipeline stage are already captured by the smoothness term —
    // counting them here would double-penalise slow reconstruction.
    const std::size_t attempted = stats.frames.size() - stats.droppedSenderFrames -
                                  stats.droppedReceiverFrames;
    out.deliveryTerm = attempted == 0
                           ? 0.0
                           : static_cast<double>(stats.deliveredFrames) /
                                 static_cast<double>(attempted);

    const double weighted = model.qualityWeight * out.qualityTerm +
                            model.latencyWeight * out.latencyTerm +
                            model.fpsWeight * out.fpsTerm;
    out.mos = 5.0 * weighted * out.deliveryTerm;
    return out;
}

}  // namespace semholo::core
