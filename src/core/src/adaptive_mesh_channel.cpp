// Rate-adaptive traditional mesh streaming: QEM LOD ladder + mesh codec
// + rate-based ABR driven by the receiver's throughput feedback.
//
// LOD topology is built ONCE (first frame): each ladder level is a QEM
// simplification of the subject mesh plus a nearest-vertex
// correspondence back to the full mesh. Subsequent frames reuse the
// fixed LOD topology and only re-position its vertices from the deformed
// full mesh — the standard precomputed-LOD pipeline, so per-frame sender
// cost is codec-bound, not simplification-bound.
#include <chrono>

#include "semholo/compress/meshcodec.hpp"
#include "semholo/core/channel.hpp"
#include "semholo/mesh/kdtree.hpp"
#include "semholo/mesh/simplify.hpp"
#include "semholo/net/abr.hpp"

namespace semholo::core {

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

class AdaptiveMeshChannel final : public SemanticChannel {
public:
    explicit AdaptiveMeshChannel(const AdaptiveMeshOptions& options)
        : options_(options) {
        if (options_.ladderTriangles.empty()) options_.ladderTriangles = {4000};
        std::sort(options_.ladderTriangles.begin(), options_.ladderTriangles.end());
    }

    std::string name() const override { return "traditional-abr"; }

    EncodedFrame encode(const FrameContext& frame) override {
        EncodedFrame out;
        out.frameId = frame.pose.frameId;

        mesh::TriMesh gt = frame.groundTruth();
        gt.colors.clear();

        // One-time LOD-ladder construction: session setup (like a codec
        // handshake), deliberately excluded from the per-frame cost.
        if (levels_.empty()) calibrate(gt);

        const auto t0 = std::chrono::steady_clock::now();
        if (levels_.empty() || gt.vertexCount() != fullVertexCount_) {
            out.measuredExtractMs = msSince(t0);
            return out;  // wrong subject
        }

        const std::size_t levelIdx =
            frame.estimatedBandwidthBps > 0.0 && abr_
                ? abr_->chooseLevel(frame.estimatedBandwidthBps)
                : 0;  // cold start: lowest LOD
        lastLevel_ = levelIdx;
        const Level& level = levels_[levelIdx];

        // Re-skin the precomputed LOD topology from the deformed mesh.
        mesh::TriMesh lod;
        lod.triangles = level.triangles;
        lod.vertices.resize(level.vertexMap.size());
        for (std::size_t i = 0; i < level.vertexMap.size(); ++i)
            lod.vertices[i] = gt.vertices[level.vertexMap[i]];

        compress::MeshCodecOptions codec;
        codec.encodeColors = false;
        out.data = compress::encodeMesh(lod, codec);
        out.measuredExtractMs = msSince(t0);
        return out;
    }

    DecodedFrame decode(const EncodedFrame& encoded) override {
        DecodedFrame out;
        out.frameId = encoded.frameId;
        const auto t0 = std::chrono::steady_clock::now();
        auto m = compress::decodeMesh(encoded.data);
        if (m) {
            out.mesh = std::move(*m);
            out.valid = true;
        }
        out.measuredReconMs = msSince(t0);
        return out;
    }

    void reset() override {
        levels_.clear();
        abr_.reset();
        lastLevel_ = 0;
    }

    std::size_t lastLevel() const { return lastLevel_; }

private:
    struct Level {
        std::vector<mesh::Triangle> triangles;
        std::vector<std::uint32_t> vertexMap;  // LOD vertex -> full vertex
    };

    void calibrate(const mesh::TriMesh& gt) {
        fullVertexCount_ = gt.vertexCount();
        const mesh::KdTree fullTree(gt.vertices);

        std::vector<net::QualityLevel> ladder;
        compress::MeshCodecOptions codec;
        codec.encodeColors = false;
        for (const std::size_t budget : options_.ladderTriangles) {
            mesh::TriMesh lod = gt;
            if (gt.triangleCount() > budget) {
                mesh::SimplifyOptions so;
                so.targetTriangles = budget;
                lod = mesh::simplify(gt, so).mesh;
            }
            Level level;
            level.triangles = lod.triangles;
            level.vertexMap.reserve(lod.vertexCount());
            for (const auto& v : lod.vertices)
                level.vertexMap.push_back(fullTree.nearest(v).index);
            const auto bytes = compress::encodeMesh(lod, codec).size();
            ladder.push_back({"lod-" + std::to_string(budget),
                              static_cast<double>(bytes) * 8.0 * options_.fps,
                              static_cast<double>(budget)});
            levels_.push_back(std::move(level));
        }
        abr_.emplace(std::move(ladder), options_.safety);
    }

    AdaptiveMeshOptions options_;
    std::vector<Level> levels_;
    std::optional<net::RateBasedAbr> abr_;
    std::size_t fullVertexCount_{0};
    std::size_t lastLevel_{0};
};

}  // namespace

std::unique_ptr<SemanticChannel> makeAdaptiveMeshChannel(
    const AdaptiveMeshOptions& options) {
    return std::make_unique<AdaptiveMeshChannel>(options);
}

}  // namespace semholo::core
